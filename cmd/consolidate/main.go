// Command consolidate regenerates the Chapter 6 outputs of the
// consolidated Data Serving Platform: workload curves (Figs. 6-5..6-7),
// data growth and sync volumes (Figs. 6-10/6-11), CPU utilizations
// (Figs. 6-12/6-13), background-process response times (Fig. 6-14),
// operation response times by location (Figs. 6-15..6-20), WAN link
// utilization (Table 6.1) and the latency impact table (Table 6.2).
//
// Usage:
//
//	consolidate [-scale 0.25] [-start 0] [-end 24] [-threads N]
//
// The default quarter-scale full-day run takes a few minutes; pass
// -scale 1 for the full-size platform.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dispatch"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("consolidate: ")
	scale := flag.Float64("scale", 0.25, "population/capacity scale factor")
	start := flag.Int("start", 0, "first simulated GMT hour")
	end := flag.Int("end", 24, "last simulated GMT hour (exclusive)")
	threads := flag.Int("threads", 8, "H-Dispatch worker threads (0 = sequential engine)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	short := flag.Bool("short", false, "smoke run: one peak hour at reduced scale")
	flag.Parse()

	if *short {
		*scale, *start, *end = 0.05, 13, 14
	}
	cfg := scenarios.CaseConfig{
		Seed: *seed, Scale: *scale, StartHour: *start, EndHour: *end,
	}
	if *threads > 0 {
		cfg.Engine = dispatch.NewHDispatch(*threads, 0)
	}
	cs, err := scenarios.NewConsolidation(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Running consolidated platform, hours [%d, %d) GMT, scale %.2f ...\n",
		*start, *end, *scale)
	cs.Run()

	hours := *end - *start
	printWorkloadFigs(cs, hours)
	printGrowthAndVolumes(cs, hours)
	printCPUFigs(cs)
	printBackground(cs)
	printResponseFigs(cs)
	printTable61(cs)
	printTable62(cs)
}

func printWorkloadFigs(cs *scenarios.CaseStudy, hours int) {
	for _, fig := range []struct{ id, app string }{
		{"6-5", "CAD"}, {"6-6", "VIS"}, {"6-7", "PDM"},
	} {
		fmt.Printf("\nFig. %s: %s logged-in clients by DC (hourly, from %dh GMT)\n",
			fig.id, fig.app, cs.Cfg.StartHour)
		for _, dc := range cs.Inf.DCNames() {
			s := cs.Sim.Collector.Series(fig.app + ":" + dc + ":loggedin")
			if s == nil || s.Len() == 0 {
				continue
			}
			fmt.Printf("  %-4s %s peak %.0f\n", dc, metrics.Sparkline(s.Hourly(hours)), maxOf(s.Hourly(hours)))
		}
	}
}

func printGrowthAndVolumes(cs *scenarios.CaseStudy, hours int) {
	fmt.Printf("\nFig. 6-10: data growth (MB/hour) by DC\n")
	for _, dc := range cs.Inf.DCNames() {
		if _, ok := cs.Growth[dc]; !ok {
			continue
		}
		vals := make([]float64, hours)
		for h := 0; h < hours; h++ {
			vals[h] = cs.Growth.RateMBh(dc, float64(h)*3600+1800)
		}
		fmt.Printf("  %-4s %s peak %.0f MB/h\n", dc, metrics.Sparkline(vals), maxOf(vals))
	}
	d := cs.Sync["NA"]
	if d == nil {
		return
	}
	fmt.Printf("\nFig. 6-11: data volume (MB) transferred during Pull/Push phases to/from DNA by hour\n")
	for _, dc := range cs.Inf.DCNames() {
		if dc == "NA" {
			continue
		}
		pull := d.HourlyPullMB(dc, hours)
		push := d.HourlyPushMB(dc, hours)
		if maxOf(pull) > 0 {
			fmt.Printf("  %-4s pull %s peak %.0f MB/h\n", dc, metrics.Sparkline(pull), maxOf(pull))
		}
		if maxOf(push) > 0 {
			fmt.Printf("  %-4s push %s peak %.0f MB/h\n", dc, metrics.Sparkline(push), maxOf(push))
		}
	}
	fmt.Printf("  total pushed from DNA over the window: %.0f MB (scale %.2f)\n",
		d.DailyPushMB(), cs.Cfg.Scale)
}

func printCPUFigs(cs *scenarios.CaseStudy) {
	fmt.Printf("\nFig. 6-12: CPU utilization in DNA (paper peaks: app 73%%, db 32%%, idx 30%%, fs 31%%)\n")
	for _, tier := range []string{"app", "db", "idx", "fs"} {
		pct, hr := cs.PeakCPUPct("NA", tier)
		s := cs.CPUSeries("NA", tier)
		fmt.Printf("  T%-4s %s peak %.1f%% at %.1fh GMT\n",
			tier, metrics.Sparkline(s.V), pct, hr)
	}
	pct, hr := cs.PeakCPUPct("AUS", "fs")
	fmt.Printf("\nFig. 6-13: CPU utilization (Tfs) in DAUS: peak %.1f%% at %.1fh GMT (paper ~3.5%%)\n", pct, hr)
}

func printBackground(cs *scenarios.CaseStudy) {
	d := cs.Sync["NA"]
	ib := cs.Idx["NA"]
	fmt.Printf("\nFig. 6-14: background process response times\n")
	if d.Durations.Len() > 0 {
		fmt.Printf("  SYNCHREP   cycles %3d  durations %s  R^max_SR %.1f min (paper ~31)\n",
			d.Durations.Len(), metrics.Sparkline(d.Durations.V), d.MaxStalenessMin())
	}
	if ib.Durations.Len() > 0 {
		fmt.Printf("  INDEXBUILD builds %3d  durations %s  R^max_IB %.1f min (paper ~63)\n",
			ib.Durations.Len(), metrics.Sparkline(ib.Durations.V), ib.MaxUnsearchableMin())
	}
}

func printResponseFigs(cs *scenarios.CaseStudy) {
	for _, fig := range []struct {
		id, dc string
		apps   []string
	}{
		{"6-15..6-17", "NA", []string{"CAD", "VIS", "PDM"}},
		{"6-18..6-20", "AUS", []string{"CAD", "VIS", "PDM"}},
	} {
		fmt.Printf("\nFigs. %s: mean response times (s) in D%s\n", fig.id, fig.dc)
		for _, app := range fig.apps {
			for _, op := range refdata.CADOperations {
				name := app + " " + op
				if m, ok := cs.Sim.Responses.MeanAll(name, fig.dc); ok {
					fmt.Printf("  %-22s %8.2f  (n=%d)\n", name, m, cs.Sim.Responses.Count(name, fig.dc))
				}
			}
		}
	}
}

func printTable61(cs *scenarios.CaseStudy) {
	t := &metrics.Table{
		Title:   "\nTable 6.1: average utilization of allocated capacity 12:00-16:00 GMT (% | paper)",
		Headers: []string{"Link", "measured", "paper"},
	}
	for _, row := range []struct {
		from, to string
		key      string
	}{
		{"NA", "SA", "NA->SA"}, {"NA", "EU", "NA->EU"}, {"NA", "AS1", "NA->AS1"},
		{"EU", "AFR", "EU->AFR"}, {"EU", "AS1", "EU->AS1"},
		{"AS1", "AFR", "AS1->AFR"}, {"AS1", "AS2", "AS1->AS2"}, {"AS1", "AUS", "AS1->AUS"},
	} {
		t.AddRow("L"+row.key,
			fmt.Sprintf("%.0f", cs.LinkUtilPct(row.from, row.to, 12, 16)),
			fmt.Sprintf("%.0f", refdata.Table61LinkUtil[row.key]))
	}
	t.Fprint(os.Stdout)
}

func printTable62(cs *scenarios.CaseStudy) {
	t := &metrics.Table{
		Title:   "\nTable 6.2: response time variation for CAD operations caused by latency in DAUS",
		Headers: []string{"Operation", "R_NA (s)", "R_AUS (s)", "delta %", "paper delta %"},
	}
	for _, row := range refdata.Table62Latency {
		na, ok1 := cs.Sim.Responses.MeanAll("CAD "+row.Op, "NA")
		aus, ok2 := cs.Sim.Responses.MeanAll("CAD "+row.Op, "AUS")
		if !ok1 || !ok2 {
			t.AddRow(row.Op, "-", "-", "-", fmt.Sprintf("%.1f", row.DeltaPct))
			continue
		}
		t.AddRow(row.Op,
			fmt.Sprintf("%.2f", na),
			fmt.Sprintf("%.2f", aus),
			fmt.Sprintf("%.1f", (aus-na)/na*100),
			fmt.Sprintf("%.1f", row.DeltaPct))
	}
	t.Fprint(os.Stdout)
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
