// Command validate regenerates the Chapter 5 validation outputs: the
// canonical operation durations (Table 5.1), the concurrent-client and CPU
// utilization figures (Figs. 5-6..5-10), the steady-state statistics
// (Table 5.2) and the RMSE accuracy assessment (Table 5.3).
//
// Usage:
//
//	validate [-experiment 1|2|3|all] [-seed N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("validate: ")
	expFlag := flag.String("experiment", "all", "experiment to run: 1, 2, 3 or all")
	seed := flag.Uint64("seed", 42, "simulation seed")
	short := flag.Bool("short", false, "smoke run: one experiment over reduced windows")
	flag.Parse()

	printTable51()

	var indices []int
	if *short {
		indices = []int{0}
	} else if *expFlag == "all" {
		indices = []int{0, 1, 2}
	} else {
		n, err := strconv.Atoi(*expFlag)
		if err != nil || n < 1 || n > 3 {
			log.Fatalf("bad -experiment %q", *expFlag)
		}
		indices = []int{n - 1}
	}

	results := make([]*scenarios.ValidationResult, 0, len(indices))
	for _, idx := range indices {
		fmt.Printf("\nRunning %s ...\n", refdata.ValidationExperiments[idx].Name)
		cfg := scenarios.ValidationConfig{
			Experiment: idx,
			Seed:       *seed,
		}
		if *short {
			cfg.LaunchFor, cfg.RunFor = 60, 90
			cfg.SteadyStart, cfg.SteadyEnd = 20, 60
		}
		res, err := scenarios.RunValidation(cfg)
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		printFig56(res)
		printFigsCPU(res)
	}
	printTable52(results)
	printTable53(results)
}

// printTable51 reports Table 5.1 as encoded (the calibration targets).
func printTable51() {
	t := &metrics.Table{
		Title:   "Table 5.1: Duration of the operations by type and series (s)",
		Headers: []string{"Operation", "Light", "Average", "Heavy"},
	}
	for _, op := range refdata.CADOperations {
		t.AddRow(op,
			fmt.Sprintf("%.2f", refdata.Table51Durations[refdata.Light][op]),
			fmt.Sprintf("%.2f", refdata.Table51Durations[refdata.Average][op]),
			fmt.Sprintf("%.2f", refdata.Table51Durations[refdata.Heavy][op]))
	}
	t.AddRow("TOTAL",
		fmt.Sprintf("%.2f", refdata.SeriesTotal(refdata.Light)),
		fmt.Sprintf("%.2f", refdata.SeriesTotal(refdata.Average)),
		fmt.Sprintf("%.2f", refdata.SeriesTotal(refdata.Heavy)))
	t.Fprint(os.Stdout)
}

func printFig56(res *scenarios.ValidationResult) {
	fmt.Printf("\nFig. 5-6 (experiment %d): concurrent clients, simulated vs physical reference\n",
		res.Experiment+1)
	fmt.Printf("  simulated: %s\n", metrics.Sparkline(res.Clients.V))
	fmt.Printf("  physical:  %s\n", metrics.Sparkline(res.ReferenceClients.V))
	fmt.Printf("  steady-state mean: simulated %.1f, reference %.0f\n",
		res.Clients.Mean(res.Config.SteadyStart, res.Config.SteadyEnd),
		refdata.SteadyStateClients[res.Experiment])
}

func printFigsCPU(res *scenarios.ValidationResult) {
	figs := map[string]string{"app": "5-7", "db": "5-8", "fs": "5-9", "idx": "5-10"}
	for _, tier := range refdata.ValidationTiers {
		fmt.Printf("\nFig. %s (experiment %d): CPU utilization in T%s\n",
			figs[tier], res.Experiment+1, tier)
		fmt.Printf("  simulated: %s\n", metrics.Sparkline(res.CPU[tier].V))
		fmt.Printf("  physical:  %s\n", metrics.Sparkline(res.ReferenceCPU[tier].V))
	}
}

func printTable52(results []*scenarios.ValidationResult) {
	t := &metrics.Table{
		Title:   "\nTable 5.2: steady-state CPU utilization mean/std by experiment (% | physical reference in parentheses)",
		Headers: []string{"Experiment", "Tier", "mean sim", "mean phys", "std sim", "std phys"},
	}
	for _, res := range results {
		for _, tier := range refdata.ValidationTiers {
			ref := refdata.Table52Physical[res.Experiment][tier]
			t.AddRow(
				fmt.Sprintf("%d", res.Experiment+1), tier,
				fmt.Sprintf("%.2f", res.SteadyMean[tier]),
				fmt.Sprintf("%.2f", ref.Mean),
				fmt.Sprintf("%.2f", res.SteadyStd[tier]),
				fmt.Sprintf("%.2f", ref.Std))
		}
	}
	t.Fprint(os.Stdout)
}

func printTable53(results []*scenarios.ValidationResult) {
	t := &metrics.Table{
		Title:   "\nTable 5.3: RMSE by experiment and measurement (% | thesis value in parentheses)",
		Headers: []string{"Experiment", "cpu app", "cpu db", "cpu fs", "cpu idx", "#C", "R (vs canonical)"},
	}
	for _, res := range results {
		ref := refdata.Table53RMSE[res.Experiment]
		t.AddRow(fmt.Sprintf("%d", res.Experiment+1),
			fmt.Sprintf("%.1f (%.1f)", res.RMSECPU["app"], ref["cpu:app"]),
			fmt.Sprintf("%.1f (%.1f)", res.RMSECPU["db"], ref["cpu:db"]),
			fmt.Sprintf("%.1f (%.1f)", res.RMSECPU["fs"], ref["cpu:fs"]),
			fmt.Sprintf("%.1f (%.1f)", res.RMSECPU["idx"], ref["cpu:idx"]),
			fmt.Sprintf("%.1f (%.1f)", res.RMSEClients, ref["clients"]),
			fmt.Sprintf("%.1f (%.1f)", res.RespRMSEPct, ref["resp"]))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nNote: the thesis' R column compares loaded-vs-loaded response times;")
	fmt.Println("this reproduction compares loaded responses against the canonical Table 5.1")
	fmt.Println("durations, so queueing inflation is included (see EXPERIMENTS.md).")
}
