// Command multimaster regenerates the Chapter 7 outputs of the
// multiple-master Data Serving Platform: the access pattern matrix
// (Table 7.2), per-master pull/push volumes (Figs. 7-4/7-5), WAN link
// utilization (Table 7.3) and background-process response times in DNA
// (Fig. 7-6), with the Chapter 6 values for comparison.
//
// Usage:
//
//	multimaster [-scale 0.25] [-start 0] [-end 24] [-threads N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dispatch"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("multimaster: ")
	scale := flag.Float64("scale", 0.25, "population/capacity scale factor")
	start := flag.Int("start", 0, "first simulated GMT hour")
	end := flag.Int("end", 24, "last simulated GMT hour (exclusive)")
	threads := flag.Int("threads", 8, "H-Dispatch worker threads (0 = sequential engine)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	short := flag.Bool("short", false, "smoke run: one peak hour at reduced scale")
	flag.Parse()

	if *short {
		*scale, *start, *end = 0.05, 13, 14
	}
	printTable72()

	cfg := scenarios.CaseConfig{
		Seed: *seed, Scale: *scale, StartHour: *start, EndHour: *end,
	}
	if *threads > 0 {
		cfg.Engine = dispatch.NewHDispatch(*threads, 0)
	}
	cs, err := scenarios.NewMultiMaster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRunning multiple-master platform, hours [%d, %d) GMT, scale %.2f ...\n",
		*start, *end, *scale)
	cs.Run()

	hours := *end - *start
	printVolumes(cs, hours)
	printCPU(cs)
	printTable73(cs)
	printFig76(cs)
}

func printTable72() {
	t := &metrics.Table{
		Title:   "Table 7.2: access pattern matrix for the multiple master infrastructure (%)",
		Headers: []string{"Access\\Owner", "EU", "NA", "AUS", "SA", "AFR", "AS1"},
	}
	for _, from := range []string{"EU", "NA", "AUS", "SA", "AFR", "AS1"} {
		row := refdata.Table72APM[from]
		t.AddRow(from,
			fmt.Sprintf("%.2f", row["EU"]), fmt.Sprintf("%.2f", row["NA"]),
			fmt.Sprintf("%.2f", row["AUS"]), fmt.Sprintf("%.2f", row["SA"]),
			fmt.Sprintf("%.2f", row["AFR"]), fmt.Sprintf("%.2f", row["AS1"]))
	}
	t.Fprint(os.Stdout)
}

func printVolumes(cs *scenarios.CaseStudy, hours int) {
	for _, fig := range []struct{ id, master string }{
		{"7-4", "NA"}, {"7-5", "EU"},
	} {
		d := cs.Sync[fig.master]
		if d == nil {
			continue
		}
		fmt.Printf("\nFig. %s: data volume (MB) during Pull/Push phases to/from D%s by hour\n",
			fig.id, fig.master)
		for _, dc := range cs.Inf.DCNames() {
			if dc == fig.master {
				continue
			}
			pull := d.HourlyPullMB(dc, hours)
			push := d.HourlyPushMB(dc, hours)
			if maxOf(pull) > 0 {
				fmt.Printf("  %-4s pull %s peak %.0f MB/h\n", dc, metrics.Sparkline(pull), maxOf(pull))
			}
			if maxOf(push) > 0 {
				fmt.Printf("  %-4s push %s peak %.0f MB/h\n", dc, metrics.Sparkline(push), maxOf(push))
			}
		}
		fmt.Printf("  total pushed from D%s: %.0f MB (consolidated DNA pushed the whole corpus)\n",
			fig.master, d.DailyPushMB())
	}
}

func printCPU(cs *scenarios.CaseStudy) {
	fmt.Printf("\n§7.4.1: computational performance (paper: NA app 78%%, NA db 39%%, EU app 57%%, EU db 48%%)\n")
	for _, dc := range []string{"NA", "EU", "AS1", "SA", "AFR", "AUS"} {
		for _, tier := range []string{"app", "db"} {
			pct, hr := cs.PeakCPUPct(dc, tier)
			fmt.Printf("  %-4s T%-4s peak %5.1f%% at %.1fh GMT\n", dc, tier, pct, hr)
		}
	}
}

func printTable73(cs *scenarios.CaseStudy) {
	t := &metrics.Table{
		Title:   "\nTable 7.3: average utilization of allocated capacity 12:00-16:00 GMT (% | paper | Table 6.1)",
		Headers: []string{"Link", "measured", "paper 7.3", "paper 6.1"},
	}
	for _, row := range []struct {
		from, to string
		key      string
	}{
		{"NA", "SA", "NA->SA"}, {"NA", "EU", "NA->EU"}, {"NA", "AS1", "NA->AS1"},
		{"EU", "AFR", "EU->AFR"}, {"EU", "AS1", "EU->AS1"},
		{"AS1", "AFR", "AS1->AFR"}, {"AS1", "AS2", "AS1->AS2"}, {"AS1", "AUS", "AS1->AUS"},
	} {
		t.AddRow("L"+row.key,
			fmt.Sprintf("%.0f", cs.LinkUtilPct(row.from, row.to, 12, 16)),
			fmt.Sprintf("%.0f", refdata.Table73LinkUtil[row.key]),
			fmt.Sprintf("%.0f", refdata.Table61LinkUtil[row.key]))
	}
	t.Fprint(os.Stdout)
}

func printFig76(cs *scenarios.CaseStudy) {
	fmt.Printf("\nFig. 7-6: background process response times in DNA\n")
	d, ib := cs.Sync["NA"], cs.Idx["NA"]
	if d.Durations.Len() > 0 {
		fmt.Printf("  SYNCHREP   cycles %3d  %s  R^max_SR %.1f min (paper ~19, consolidated ~31)\n",
			d.Durations.Len(), metrics.Sparkline(d.Durations.V), d.MaxStalenessMin())
	}
	if ib.Durations.Len() > 0 {
		fmt.Printf("  INDEXBUILD builds %3d  %s  R^max_IB %.1f min (paper ~37, consolidated ~63)\n",
			ib.Durations.Len(), metrics.Sparkline(ib.Durations.V), ib.MaxUnsearchableMin())
	}
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
