// Command gdisim is the umbrella CLI of the GDISim reproduction. It runs
// the multicore-scalability experiments of Chapter 4 (Tables 4.1 and 4.2,
// Figs. 4-4 and 4-6), dispatches to the evaluation scenarios, and runs
// declarative scenario documents — single experiments or concurrent
// parameter sweeps — through the experiment compiler.
//
// Usage:
//
//	gdisim -table 4.1 [-minutes 2] [-scale 0.5]   # Scatter-Gather scaling
//	gdisim -table 4.2 [-minutes 2] [-scale 0.5]   # H-Dispatch scaling
//	gdisim -scenario validation|consolidation|multimaster
//	gdisim -doc scenario.json [-csv out.csv]      # run one scenario document
//	gdisim -doc scenario.json \
//	       -sweep dcs.NA.app.cores=8,16,32 \
//	       -sweep workloads.PDM.NA.ops=10,20 \
//	       [-workers 8] [-csv sweep.csv]          # concurrent parameter sweep
//
// The cross-cutting flags compose with the run modes above:
//
//	-shards N|auto   run on the sharded PDES engine (equivalent to
//	                 engine: "sharded:N" in a document; applies to -doc,
//	                 -sweep and -scenario; results are bit-identical to
//	                 the sequential engine). "auto" picks
//	                 min(GOMAXPROCS, DC count)
//	-v               print extra run statistics: global barriers, stretched
//	                 windows and per-shard stretch counters
//	-cpuprofile f    write a CPU profile of the run to f
//	-memprofile f    write an end-of-run heap profile to f
//
// For the full per-chapter reports use cmd/validate, cmd/consolidate and
// cmd/multimaster.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/scenarios"
)

// sweepAxes collects repeated -sweep flags ("path=v1,v2,...").
type sweepAxes []string

func (a *sweepAxes) String() string     { return strings.Join(*a, "; ") }
func (a *sweepAxes) Set(v string) error { *a = append(*a, v); return nil }

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdisim: ")
	table := flag.String("table", "", "table to regenerate: 4.1 or 4.2")
	scenario := flag.String("scenario", "", "scenario smoke-run: validation, consolidation or multimaster")
	doc := flag.String("doc", "", "run a scenario document (JSON) through the experiment compiler")
	var axes sweepAxes
	flag.Var(&axes, "sweep", "sweep axis path=v1,v2,... (repeatable; requires -doc)")
	workers := flag.Int("workers", 0, "sweep worker pool size (0 = GOMAXPROCS)")
	csvOut := flag.String("csv", "", "write run series (or sweep rows) as CSV to this file")
	minutes := flag.Float64("minutes", 2, "simulated minutes per speedup measurement")
	scale := flag.Float64("scale", 0.5, "platform scale for speedup measurement")
	agentSet := flag.Int("agentset", 0, "H-Dispatch agent-set size (0 = 64, the thesis' best)")
	short := flag.Bool("short", false, "smoke run: tiny H-Dispatch speedup measurement")
	shards := flag.String("shards", "", `run on the sharded PDES engine: a shard count, or "auto" for min(GOMAXPROCS, DCs) (empty = document/default engine)`)
	verbose := flag.Bool("v", false, "print extra run statistics: global barriers, stretched windows, per-shard stretch counters")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write an end-of-run heap profile to this file")
	flag.Parse()

	if *short && *table == "" && *scenario == "" && *doc == "" {
		*table = "4.2"
	}
	if *short {
		*minutes, *scale = 0.05, 0.1
	}
	if *shards != "" && *shards != "auto" {
		if n, err := strconv.Atoi(*shards); err != nil || n < 1 {
			log.Fatalf(`-shards %q: want a positive shard count or "auto"`, *shards)
		}
	}

	// Profiles bracket the selected run mode. Error paths exit through
	// log.Fatal and drop the profile — a failed run's profile is noise.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
	}

	switch {
	case *doc != "" && len(axes) > 0:
		runSweep(*doc, axes, *shards, *workers, *csvOut)
	case *doc != "":
		runDocument(*doc, *shards, *csvOut, *verbose)
	case len(axes) > 0:
		log.Fatal("-sweep requires -doc (the document is the sweep's base experiment)")
	case *table == "4.1":
		speedupTable(scenarios.ScatterGather, refdata.Table41ScatterGather, *minutes, *scale, *agentSet)
	case *table == "4.2":
		speedupTable(scenarios.HDispatch, refdata.Table42HDispatch, *minutes, *scale, *agentSet)
	case *scenario != "":
		smoke(*scenario, *shards, *verbose)
	default:
		flag.Usage()
		os.Exit(2)
	}

	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			log.Fatal(err)
		}
		runtime.GC() // settle the heap so the profile shows retained memory
		if err := pprof.WriteHeapProfile(f); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
}

// runDocument compiles and runs one scenario document, printing the
// uniform result summary and optionally exporting every series as CSV.
// A non-empty shards overrides the document's engine with "sharded:N" (or
// "sharded:auto") before compilation, so the document validation — shard
// count versus DC population included — applies to the override exactly
// as it would to the written field.
func runDocument(path string, shards, csvOut string, verbose bool) {
	d, err := config.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if shards != "" {
		d.Engine = "sharded:" + shards
	}
	e, err := experiment.FromDocument(d)
	if err != nil {
		log.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("experiment %s: %d operations completed over %.0f simulated seconds\n",
		res.Name, res.Stats.CompletedOps, res.Stats.Seconds)
	fmt.Printf("  agents %d, fast-forward jumps %d (%d ticks skipped)\n",
		res.Stats.Agents, res.Stats.Jumps, res.Stats.SkippedTicks)
	if verbose {
		printStretchStats(res.Stats)
	}
	if res.Faults != nil {
		fmt.Print(res.Faults)
	}
	t := &metrics.Table{
		Title:   "Collector series",
		Headers: []string{"series", "samples", "mean", "last"},
	}
	for _, key := range res.SeriesKeys() {
		s := res.Series[key]
		if s.Len() == 0 {
			continue
		}
		t.AddRow(key, fmt.Sprintf("%d", s.Len()),
			fmt.Sprintf("%.4g", s.Mean(0, res.Stats.Seconds)),
			fmt.Sprintf("%.4g", s.V[s.Len()-1]))
	}
	t.Fprint(os.Stdout)
	if csvOut != "" {
		f, err := os.Create(csvOut)
		if err != nil {
			log.Fatal(err)
		}
		if err := config.ExportSeriesCSV(f, res.Series); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("series exported to %s\n", csvOut)
	}
}

// runSweep expands the -sweep axes over the document experiment and runs
// the grid on the worker pool.
func runSweep(path string, axes sweepAxes, shards string, workers int, csvOut string) {
	// Parse the document once: the base factory runs per grid point (and
	// per validation probe), and re-reading the file each time would let a
	// mid-run edit silently change later points' scenario.
	d, err := config.Load(path)
	if err != nil {
		log.Fatal(err)
	}
	if shards != "" {
		d.Engine = "sharded:" + shards
	}
	base := func() (*experiment.Experiment, error) {
		return experiment.FromDocument(d)
	}
	sweep := experiment.NewSweep(path, base)
	for _, ax := range axes {
		p, vals, err := parseAxis(ax)
		if err != nil {
			log.Fatal(err)
		}
		sweep.Vary(p, vals...)
	}
	fmt.Printf("sweep: %d points x %s\n", sweep.Size(), strings.Join(axes, " x "))
	res, err := sweep.Run(workers)
	if res == nil {
		// Grid validation failed before any point ran.
		log.Fatal(err)
	}
	// Point failures must not discard the completed points: report the
	// table (failed rows carry the error) and still export the CSV, then
	// exit non-zero.
	t := &metrics.Table{
		Title:   fmt.Sprintf("Sweep over %s (%d workers)", path, res.Workers),
		Headers: append(append([]string{"point", "seed"}, res.Axes...), "completed ops", "jumps"),
	}
	for _, p := range res.Points {
		row := []string{fmt.Sprintf("%d", p.Index), fmt.Sprintf("%d", p.Seed)}
		for _, v := range p.Values {
			row = append(row, v.Label)
		}
		for len(row) < 2+len(res.Axes) {
			row = append(row, "") // failed before all axes were applied
		}
		if p.Res != nil {
			row = append(row,
				fmt.Sprintf("%d", p.Res.Stats.CompletedOps),
				fmt.Sprintf("%d", p.Res.Stats.Jumps))
		} else {
			row = append(row, "error: "+p.Err.Error(), "")
		}
		t.AddRow(row...)
	}
	t.Fprint(os.Stdout)
	if csvOut != "" {
		f, cerr := os.Create(csvOut)
		if cerr != nil {
			log.Fatal(cerr)
		}
		if cerr := res.WriteCSV(f); cerr != nil {
			log.Fatal(cerr)
		}
		if cerr := f.Close(); cerr != nil {
			log.Fatal(cerr)
		}
		fmt.Printf("sweep rows exported to %s\n", csvOut)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// parseAxis splits "path=v1,v2,..." into a Vary call.
func parseAxis(s string) (string, []float64, error) {
	path, list, ok := strings.Cut(s, "=")
	if !ok || path == "" || list == "" {
		return "", nil, fmt.Errorf("bad -sweep %q: want path=v1,v2,...", s)
	}
	var vals []float64
	for _, f := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return "", nil, fmt.Errorf("bad -sweep %q: value %q is not a number", s, f)
		}
		vals = append(vals, v)
	}
	return path, vals, nil
}

func speedupTable(mech scenarios.Mechanism, ref []refdata.SpeedupRow, minutes, scale float64, agentSet int) {
	threads := make([]int, 0, len(ref))
	for _, r := range ref {
		threads = append(threads, r.Threads)
	}
	fmt.Printf("Measuring %s scaling: %v threads, %.1f simulated minutes at scale %.2f ...\n",
		mech, threads, minutes, scale)
	rows, err := scenarios.MeasureEngineSpeedup(mech, threads, minutes, scale, agentSet)
	if err != nil {
		log.Fatal(err)
	}
	title := "Table 4.1: simulation time and speedup vs threads (classic Scatter-Gather)"
	if mech == scenarios.HDispatch {
		title = "Table 4.2: simulation time and speedup vs threads (H-Dispatch, Agent Set=64)"
	}
	t := &metrics.Table{
		Title:   title,
		Headers: []string{"# of Threads", "Wall time (s)", "Speedup (x)", "Thesis speedup (x)"},
	}
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%.2f", ref[i].Speedup))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nFig. 4-4/4-6 series (speedup vs linear):")
	for i, r := range rows {
		fmt.Printf("  %2d threads: measured %.2fx, linear %dx, thesis %.2fx\n",
			r.Threads, r.Speedup, r.Threads, ref[i].Speedup)
	}
}

func smoke(name, shards string, verbose bool) {
	// The smoke paths accept any positive shard count: the core runtime
	// tolerates shards beyond the DC population (they stay empty), and the
	// single-DC validation platform with -shards 4 is itself a useful
	// smoke of that tolerance. Strict validation lives on the document
	// path, where the scenario's DC list is declarative. "auto" resolves
	// against the scenario's own DC population: 1 for validation, the
	// consolidated platform's count for the case studies.
	var eng core.Engine
	if shards != "" {
		n := 0
		if shards == "auto" {
			dcs := 1
			if name != "validation" {
				dcs = len(refdata.ConsolidatedDCs)
			}
			n = experiment.AutoShards(dcs)
		} else {
			n, _ = strconv.Atoi(shards)
		}
		eng = dispatch.NewSharded(n)
	}
	switch name {
	case "validation":
		res, err := scenarios.RunValidation(scenarios.ValidationConfig{Experiment: 1, Seed: 42, Engine: eng})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("validation experiment 2: app CPU steady mean %.1f%% (physical %.1f%%)\n",
			res.SteadyMean["app"], refdata.Table52Physical[1]["app"].Mean)
		if verbose {
			printStretchStats(res.Result.Stats)
		}
	case "consolidation":
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Scale: 0.25, StartHour: 12, EndHour: 16, Seed: 7, Engine: eng,
		})
		if err != nil {
			log.Fatal(err)
		}
		cs.Run()
		pct, hr := cs.PeakCPUPct("NA", "app")
		fmt.Printf("consolidation peak window: Tapp DNA %.1f%% at %.1fh GMT (paper ~73%%)\n", pct, hr)
		if verbose {
			printStretchStats(cs.Result.Stats)
		}
	case "multimaster":
		cs, err := scenarios.NewMultiMaster(scenarios.CaseConfig{
			Scale: 0.25, StartHour: 12, EndHour: 16, Seed: 7, Engine: eng,
		})
		if err != nil {
			log.Fatal(err)
		}
		cs.Run()
		pct, hr := cs.PeakCPUPct("NA", "app")
		fmt.Printf("multimaster peak window: Tapp DNA %.1f%% at %.1fh GMT (paper ~78%%)\n", pct, hr)
		if verbose {
			printStretchStats(cs.Result.Stats)
		}
	default:
		log.Fatalf("unknown scenario %q", name)
	}
}

// printStretchStats reports the sharded runtime's synchronization shape:
// how many global barriers the run paid and how many windows ran inside
// stretched spans instead, per shard when the partition engaged, plus the
// cross-shard mailbox audit (hand-offs applied and the tightest slack
// against a delivery's WAN-delayed due instant).
func printStretchStats(st core.RunStats) {
	fmt.Printf("  global barriers %d, windows stretched %d\n", st.Barriers, st.WindowsStretched)
	if len(st.ShardStretch) > 0 {
		fmt.Printf("  per-shard stretched windows: %v\n", st.ShardStretch)
	}
	if st.MailboxApplied > 0 {
		fmt.Printf("  mailbox deliveries %d, min slack %d ticks\n", st.MailboxApplied, st.MailboxMinSlack)
	}
}
