// Command gdisim is the umbrella CLI of the GDISim reproduction. It runs
// the multicore-scalability experiments of Chapter 4 (Tables 4.1 and 4.2,
// Figs. 4-4 and 4-6) and dispatches to the evaluation scenarios.
//
// Usage:
//
//	gdisim -table 4.1 [-minutes 2] [-scale 0.5]   # Scatter-Gather scaling
//	gdisim -table 4.2 [-minutes 2] [-scale 0.5]   # H-Dispatch scaling
//	gdisim -scenario validation|consolidation|multimaster
//
// For the full per-chapter reports use cmd/validate, cmd/consolidate and
// cmd/multimaster.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/scenarios"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gdisim: ")
	table := flag.String("table", "", "table to regenerate: 4.1 or 4.2")
	scenario := flag.String("scenario", "", "scenario smoke-run: validation, consolidation or multimaster")
	minutes := flag.Float64("minutes", 2, "simulated minutes per speedup measurement")
	scale := flag.Float64("scale", 0.5, "platform scale for speedup measurement")
	agentSet := flag.Int("agentset", 0, "H-Dispatch agent-set size (0 = 64, the thesis' best)")
	short := flag.Bool("short", false, "smoke run: tiny H-Dispatch speedup measurement")
	flag.Parse()

	if *short && *table == "" && *scenario == "" {
		*table = "4.2"
	}
	if *short {
		*minutes, *scale = 0.05, 0.1
	}

	switch {
	case *table == "4.1":
		speedupTable(scenarios.ScatterGather, refdata.Table41ScatterGather, *minutes, *scale, *agentSet)
	case *table == "4.2":
		speedupTable(scenarios.HDispatch, refdata.Table42HDispatch, *minutes, *scale, *agentSet)
	case *scenario != "":
		smoke(*scenario)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func speedupTable(mech scenarios.Mechanism, ref []refdata.SpeedupRow, minutes, scale float64, agentSet int) {
	threads := make([]int, 0, len(ref))
	for _, r := range ref {
		threads = append(threads, r.Threads)
	}
	fmt.Printf("Measuring %s scaling: %v threads, %.1f simulated minutes at scale %.2f ...\n",
		mech, threads, minutes, scale)
	rows, err := scenarios.MeasureEngineSpeedup(mech, threads, minutes, scale, agentSet)
	if err != nil {
		log.Fatal(err)
	}
	title := "Table 4.1: simulation time and speedup vs threads (classic Scatter-Gather)"
	if mech == scenarios.HDispatch {
		title = "Table 4.2: simulation time and speedup vs threads (H-Dispatch, Agent Set=64)"
	}
	t := &metrics.Table{
		Title:   title,
		Headers: []string{"# of Threads", "Wall time (s)", "Speedup (x)", "Thesis speedup (x)"},
	}
	for i, r := range rows {
		t.AddRow(fmt.Sprintf("%d", r.Threads),
			fmt.Sprintf("%.2f", r.Seconds),
			fmt.Sprintf("%.2f", r.Speedup),
			fmt.Sprintf("%.2f", ref[i].Speedup))
	}
	t.Fprint(os.Stdout)
	fmt.Println("\nFig. 4-4/4-6 series (speedup vs linear):")
	for i, r := range rows {
		fmt.Printf("  %2d threads: measured %.2fx, linear %dx, thesis %.2fx\n",
			r.Threads, r.Speedup, r.Threads, ref[i].Speedup)
	}
}

func smoke(name string) {
	switch name {
	case "validation":
		res, err := scenarios.RunValidation(scenarios.ValidationConfig{Experiment: 1, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("validation experiment 2: app CPU steady mean %.1f%% (physical %.1f%%)\n",
			res.SteadyMean["app"], refdata.Table52Physical[1]["app"].Mean)
	case "consolidation":
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Scale: 0.25, StartHour: 12, EndHour: 16, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		cs.Run()
		pct, hr := cs.PeakCPUPct("NA", "app")
		fmt.Printf("consolidation peak window: Tapp DNA %.1f%% at %.1fh GMT (paper ~73%%)\n", pct, hr)
	case "multimaster":
		cs, err := scenarios.NewMultiMaster(scenarios.CaseConfig{
			Scale: 0.25, StartHour: 12, EndHour: 16, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		cs.Run()
		pct, hr := cs.PeakCPUPct("NA", "app")
		fmt.Printf("multimaster peak window: Tapp DNA %.1f%% at %.1fh GMT (paper ~78%%)\n", pct, hr)
	default:
		log.Fatalf("unknown scenario %q", name)
	}
}
