// Benchmarks regenerating the thesis' tables and figures. Each benchmark
// corresponds to one published artifact (see DESIGN.md's experiment index)
// and reports the headline quantity via b.ReportMetric so `go test -bench`
// prints the row the paper reports. The cmd/ binaries produce the complete
// tables; these benches run reduced-scale versions suitable for continuous
// measurement.
package gdisim

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"repro/internal/apps"
	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/queueing"
	"repro/internal/refdata"
	"repro/internal/scenarios"
	"repro/internal/workload"
)

// speedupBench runs the Chapter 4 scaling workload (a slice of the
// consolidated platform) under one engine configuration. The time/op of
// each sub-benchmark is the "Simulation time" column of Tables 4.1/4.2;
// the speedup column is the ratio between the 1-thread and N-thread rows.
func speedupBench(b *testing.B, mkEngine func(threads int) core.Engine, threads int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Engine: mkEngine(threads),
			StartHour: 13, EndHour: 14, Scale: 0.25,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs.Sim.RunFor(30) // 30 simulated seconds inside the global peak
		cs.Sim.Shutdown()
	}
}

// BenchmarkTable41_ScatterGather: the classic Scatter-Gather mechanism
// (§4.3.4). The thesis' Table 4.1 shows no speedup with added threads —
// compare ns/op across the sub-benchmarks.
func BenchmarkTable41_ScatterGather(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			speedupBench(b, func(t int) core.Engine { return dispatch.NewScatterGather(t) }, n)
		})
	}
}

// BenchmarkTable42_HDispatch: the H-Dispatch mechanism with Agent Set=64
// (§4.3.5). Table 4.2 reports speedups of 1.71/3.20/5.17/8.06 at
// 2/4/8/16 threads.
func BenchmarkTable42_HDispatch(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			speedupBench(b, func(t int) core.Engine { return dispatch.NewHDispatch(t, 64) }, n)
		})
	}
}

// BenchmarkTable51_CanonicalOps runs one isolated Average series through
// the validation infrastructure and reports the series duration — the
// TOTAL row of Table 5.1 (published: 177.58 s).
func BenchmarkTable51_CanonicalOps(b *testing.B) {
	var measured float64
	for i := 0; i < b.N; i++ {
		sim := core.NewSimulation(core.Config{Step: 0.005, Seed: 1})
		inf, err := buildValidationInfra(sim)
		if err != nil {
			b.Fatal(err)
		}
		na := inf.DC("NA")
		series, err := apps.CalibratedCADSeries(inf, na, na, 0.005)
		if err != nil {
			b.Fatal(err)
		}
		var done float64
		launcher := &workload.SeriesLauncher{
			Series:       series[refdata.Average],
			Interval:     1e9,
			Until:        1,
			NewBinding:   func() *cascade.Binding { return cascade.NewBinding(inf, na, na) },
			OnSeriesDone: func(now float64) { done = now },
		}
		sim.AddSource(launcher)
		if err := sim.RunUntilIdle(600); err != nil {
			b.Fatal(err)
		}
		measured = done
	}
	b.ReportMetric(measured, "series-seconds")
	b.ReportMetric(refdata.SeriesTotal(refdata.Average), "paper-seconds")
}

func buildValidationInfra(sim *core.Simulation) (*Infrastructure, error) {
	return Build(sim, scenarios.ValidationInfraSpec())
}

// BenchmarkFig56_ConcurrentClients runs a shortened validation experiment
// 2 and reports the steady concurrent-client level of Fig. 5-6.
func BenchmarkFig56_ConcurrentClients(b *testing.B) {
	var clients float64
	for i := 0; i < b.N; i++ {
		res, err := scenarios.RunValidation(scenarios.ValidationConfig{
			Experiment: 1, Seed: 42,
			LaunchFor: 600, RunFor: 700, SteadyStart: 300, SteadyEnd: 600,
		})
		if err != nil {
			b.Fatal(err)
		}
		clients = res.Clients.Mean(300, 600)
	}
	b.ReportMetric(clients, "clients")
	b.ReportMetric(refdata.SteadyStateClients[1], "paper-clients")
}

// BenchmarkFig57to510_CPUValidation runs a shortened validation experiment
// and reports the Tapp steady utilization of Fig. 5-7 / Table 5.2.
func BenchmarkFig57to510_CPUValidation(b *testing.B) {
	var util, rmse float64
	for i := 0; i < b.N; i++ {
		res, err := scenarios.RunValidation(scenarios.ValidationConfig{
			Experiment: 1, Seed: 42,
			LaunchFor: 600, RunFor: 700, SteadyStart: 300, SteadyEnd: 600,
		})
		if err != nil {
			b.Fatal(err)
		}
		util = res.SteadyMean["app"]
		rmse = res.RMSECPU["app"]
	}
	b.ReportMetric(util, "app-util-%")
	b.ReportMetric(refdata.Table52Physical[1]["app"].Mean, "paper-%")
	b.ReportMetric(rmse, "rmse-%")
}

// BenchmarkTable53_RMSE runs the full experiment 2 validation and reports
// the Table 5.3 RMSE for the application tier.
func BenchmarkTable53_RMSE(b *testing.B) {
	if testing.Short() {
		b.Skip("full validation in benchmarks skipped in -short")
	}
	var rmse float64
	for i := 0; i < b.N; i++ {
		res, err := scenarios.RunValidation(scenarios.ValidationConfig{Experiment: 1, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		rmse = res.RMSECPU["app"]
	}
	b.ReportMetric(rmse, "rmse-%")
	b.ReportMetric(refdata.Table53RMSE[1]["cpu:app"], "paper-rmse-%")
}

// backgroundDay runs a case study without interactive clients over a full
// day — the background-process experiments (Figs. 6-11, 6-14, 7-4..7-6).
func backgroundDay(b *testing.B, multi bool) *scenarios.CaseStudy {
	b.Helper()
	cfg := scenarios.CaseConfig{
		Step: 0.05, Seed: 7, Scale: 0.25, DisableClients: true,
	}
	var cs *scenarios.CaseStudy
	var err error
	if multi {
		cs, err = scenarios.NewMultiMaster(cfg)
	} else {
		cs, err = scenarios.NewConsolidation(cfg)
	}
	if err != nil {
		b.Fatal(err)
	}
	cs.Run()
	return cs
}

// BenchmarkFig611_SyncVolume reports the peak hourly push volume from DNA
// on the consolidated platform (Fig. 6-11; quarter scale).
func BenchmarkFig611_SyncVolume(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		cs := backgroundDay(b, false)
		for _, dc := range cs.Inf.DCNames() {
			for _, v := range cs.Sync["NA"].HourlyPushMB(dc, 24) {
				if v > peak {
					peak = v
				}
			}
		}
	}
	b.ReportMetric(peak/0.25, "peak-push-MB-per-h-fullscale")
}

// BenchmarkFig614_Background reports R^max_SR and R^max_IB of the
// consolidated platform's daemons (Fig. 6-14: ~31 and ~63 minutes).
func BenchmarkFig614_Background(b *testing.B) {
	var stale, unsearch float64
	for i := 0; i < b.N; i++ {
		cs := backgroundDay(b, false)
		stale = cs.Sync["NA"].MaxStalenessMin()
		unsearch = cs.Idx["NA"].MaxUnsearchableMin()
	}
	b.ReportMetric(stale, "R_SR-min")
	b.ReportMetric(unsearch, "R_IB-min")
	b.ReportMetric(refdata.ConsolidatedMaxStaleMin, "paper-R_SR-min")
	b.ReportMetric(refdata.ConsolidatedMaxUnsearchMin, "paper-R_IB-min")
}

// BenchmarkFig612_Consolidation runs the client workload over one peak
// hour and reports the Tapp utilization of Fig. 6-12 (paper: 73%).
func BenchmarkFig612_Consolidation(b *testing.B) {
	var pct float64
	for i := 0; i < b.N; i++ {
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 13, EndHour: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs.Run()
		pct, _ = cs.PeakCPUPct("NA", "app")
	}
	b.ReportMetric(pct, "app-peak-%")
	b.ReportMetric(refdata.ConsolidatedAppPeak*100, "paper-%")
}

// BenchmarkTable61_LinkUtil reports the busiest-link utilization of
// Table 6.1 over the measured interval (paper: NA->AS1 at 59%).
func BenchmarkTable61_LinkUtil(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 12, EndHour: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs.Run()
		util = cs.LinkUtilPct("NA", "AS1", 12, 15)
	}
	b.ReportMetric(util, "NA-AS1-%")
	b.ReportMetric(refdata.Table61LinkUtil["NA->AS1"], "paper-%")
}

// BenchmarkTable62_Latency measures the isolated EXPLORE operation from
// DNA and DAUS and reports the latency penalty of Table 6.2.
func BenchmarkTable62_Latency(b *testing.B) {
	var deltaPct float64
	for i := 0; i < b.N; i++ {
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.25,
			DisableClients: true, DisableBackground: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		na := cs.Inf.DC("NA")
		aus := cs.Inf.DC("AUS")
		ops, err := apps.CalibratedCADOps(cs.Inf, na, na, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		explore := ops[3]
		run := func(local *DataCenter) float64 {
			bnd := cascade.NewBinding(cs.Inf, local, na)
			op, err := cascade.Instantiate(explore, bnd)
			if err != nil {
				b.Fatal(err)
			}
			launched := false
			cs.Sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
				if !launched {
					launched = true
					s.StartOp(op)
				}
			}))
			if err := cs.Sim.RunUntilIdle(300); err != nil {
				b.Fatal(err)
			}
			d, _ := cs.Sim.Responses.MeanAll("EXPLORE", local.Name)
			return d
		}
		dNA := run(na)
		dAUS := run(aus)
		deltaPct = (dAUS - dNA) / dNA * 100
	}
	b.ReportMetric(deltaPct, "EXPLORE-delta-%")
	b.ReportMetric(141.52, "paper-delta-%")
}

// BenchmarkFig74_MultiMasterVolume reports DNA's total pushed volume on
// the multiple-master platform versus the consolidated one (Figs. 7-4 vs
// 6-11: the thesis reports a ~43% reduction at the peak).
func BenchmarkFig74_MultiMasterVolume(b *testing.B) {
	var multiNA, consNA float64
	for i := 0; i < b.N; i++ {
		cons := backgroundDay(b, false)
		multi := backgroundDay(b, true)
		consNA = cons.Sync["NA"].DailyPushMB()
		multiNA = multi.Sync["NA"].DailyPushMB()
	}
	b.ReportMetric(multiNA/0.25, "multi-push-MB-fullscale")
	b.ReportMetric(consNA/0.25, "consolidated-push-MB-fullscale")
	b.ReportMetric((1-multiNA/consNA)*100, "reduction-%")
}

// BenchmarkTable73_LinkUtil reports the multi-master NA->AS1 utilization
// (Table 7.3; paper: 76%, up from Table 6.1's 59%).
func BenchmarkTable73_LinkUtil(b *testing.B) {
	var util float64
	for i := 0; i < b.N; i++ {
		cs, err := scenarios.NewMultiMaster(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 12, EndHour: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
		cs.Run()
		util = cs.LinkUtilPct("NA", "AS1", 12, 15)
	}
	b.ReportMetric(util, "NA-AS1-%")
	b.ReportMetric(refdata.Table73LinkUtil["NA->AS1"], "paper-%")
}

// BenchmarkFig76_Background reports the multi-master background
// effectiveness at DNA (Fig. 7-6: ~19 and ~37 minutes).
func BenchmarkFig76_Background(b *testing.B) {
	var stale, unsearch float64
	for i := 0; i < b.N; i++ {
		cs := backgroundDay(b, true)
		stale = cs.Sync["NA"].MaxStalenessMin()
		unsearch = cs.Idx["NA"].MaxUnsearchableMin()
	}
	b.ReportMetric(stale, "R_SR-min")
	b.ReportMetric(unsearch, "R_IB-min")
	b.ReportMetric(refdata.MultiMasterMaxStaleMin, "paper-R_SR-min")
	b.ReportMetric(refdata.MultiMasterMaxUnsearchMin, "paper-R_IB-min")
}

// activeSetBench runs the consolidation scenario over a 30-second slice of
// the given GMT hour. Off-peak hours leave almost every hardware agent idle,
// which is exactly the regime active-set scheduling targets: the sweep only
// touches agents with in-flight work instead of the full population.
func activeSetBench(b *testing.B, startHour, endHour int) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.25,
			StartHour: startHour, EndHour: endHour,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cs.Sim.RunFor(30)
		b.StopTimer()
		cs.Sim.Shutdown()
		b.StartTimer()
	}
}

// BenchmarkActiveSet contrasts a sparse (off-peak, 03:00 GMT — utilization
// near the night floor) against a dense (global peak, 13:00 GMT) hour of the
// consolidation scenario. The sparse case is where active-set scheduling
// must show its win over the pre-change full-population sweep.
func BenchmarkActiveSet(b *testing.B) {
	b.Run("sparse", func(b *testing.B) { activeSetBench(b, 3, 4) })
	b.Run("dense", func(b *testing.B) { activeSetBench(b, 13, 14) })
}

// BenchmarkIdlePlatform runs an overnight, daemon-only hour of the
// consolidation scenario — the regime the event-horizon fast-forward
// targets: the platform sits idle between SYNCHREP/INDEXBUILD cycles, so
// the plain loop burns iterations on empty ticks while fast-forward jumps
// them. Compare the sub-benchmarks: results are bit-identical (the
// equivalence tests prove it); only the wall-clock differs.
func BenchmarkIdlePlatform(b *testing.B) {
	run := func(b *testing.B, noFF bool) {
		b.Helper()
		b.ReportAllocs()
		var jumps, skipped uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
				Seed: 7, Scale: 0.25,
				StartHour: 2, EndHour: 3,
				DisableClients: true, NoFastForward: noFF,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			cs.Run()
			b.StopTimer()
			jumps, skipped = cs.Sim.FastForwardStats()
			cs.Sim.Shutdown()
			b.StartTimer()
		}
		b.ReportMetric(float64(jumps), "jumps")
		b.ReportMetric(float64(skipped), "skipped-ticks")
	}
	b.Run("fast-forward", func(b *testing.B) { run(b, false) })
	b.Run("tick-by-tick", func(b *testing.B) { run(b, true) })
}

// BenchmarkDenseBulk contrasts the bulk-dense loop against the lock-step
// calendar loop on the regime it targets: the global-peak business hour of
// the consolidation scenario, where every AppWorkload polls per tick and
// the calendar loop — its scheduling already O(changed) — still paid an
// O(active) Step sweep and an unconditional Drain over every active agent
// on every iteration. The bulk-dense loop steps only the agents whose
// event fires that tick (each lazy agent catches up in one horizon-bounded
// bulk replay) and drains only the popped-due + notified set. Results are
// bit-identical (TestBulkDenseEquivalence); the ns/op ratio is the
// headline, recorded in BENCH_bulk.json.
func BenchmarkDenseBulk(b *testing.B) {
	run := func(b *testing.B, noBulk bool) {
		b.Helper()
		b.ReportAllocs()
		var ops uint64
		var active int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
				Step: 0.01, Seed: 7, Scale: 1,
				StartHour: 13, EndHour: 14,
				NoBulkDense: noBulk,
			})
			if err != nil {
				b.Fatal(err)
			}
			cs.Sim.RunFor(90) // untimed warm-up: build peak-hour concurrency
			b.StartTimer()
			cs.Sim.RunFor(30)
			b.StopTimer()
			ops = cs.Sim.CompletedOps()
			active = cs.Sim.ActiveAgents()
			cs.Sim.Shutdown()
			b.StartTimer()
		}
		b.ReportMetric(float64(ops), "ops")
		b.ReportMetric(float64(active), "active-agents")
	}
	b.Run("bulk-dense", func(b *testing.B) { run(b, false) })
	b.Run("lock-step", func(b *testing.B) { run(b, true) })
}

// BenchmarkShardScaling measures the sharded PDES engine on the dense
// peak-hour scenario — the same global business hour BenchmarkDenseBulk
// uses, where ~50 agents stay hot and every window carries cross-DC
// cascade traffic. The noshards case runs the 4-shard engine with the
// sharded runtime disabled (Config.NoShards), isolating what the shard
// partition, mailboxes and shard-local phases buy over the identical
// worker pool; sequential is the single-core reference. Results are
// bit-identical across all rows (TestShardedEquivalence*); the ns/op
// ratios land in BENCH_shard.json. Scaling requires real cores: with
// GOMAXPROCS=1 the barrier overhead is all cost and no win.
func BenchmarkShardScaling(b *testing.B) {
	run := func(b *testing.B, mk func() core.Engine, noShards bool) {
		b.Helper()
		b.ReportAllocs()
		var ops uint64
		var active int
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var eng core.Engine
			if mk != nil {
				eng = mk() // Shutdown ends a sharded engine's workers: one per run
			}
			cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
				Step: 0.01, Seed: 7, Scale: 1,
				StartHour: 13, EndHour: 14,
				Engine:   eng,
				NoShards: noShards,
			})
			if err != nil {
				b.Fatal(err)
			}
			cs.Sim.RunFor(90) // untimed warm-up: build peak-hour concurrency
			b.StartTimer()
			cs.Sim.RunFor(30)
			b.StopTimer()
			ops = cs.Sim.CompletedOps()
			active = cs.Sim.ActiveAgents()
			cs.Sim.Shutdown()
			b.StartTimer()
		}
		b.ReportMetric(float64(ops), "ops")
		b.ReportMetric(float64(active), "active-agents")
	}
	b.Run("sequential", func(b *testing.B) { run(b, nil, false) })
	b.Run("noshards", func(b *testing.B) {
		run(b, func() core.Engine { return dispatch.NewSharded(4) }, true)
	})
	for _, n := range []int{1, 2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("shards-%d", n), func(b *testing.B) {
			run(b, func() core.Engine { return dispatch.NewSharded(n) }, false)
		})
	}
}

// BenchmarkWindowStretch measures what spending the WAN lookahead buys:
// the same run with Chandy-Misra window stretching on (default), off
// (Config.NoStretch — the per-window global barrier of the sharded PR),
// and cross-blocked (Config.NoCrossStretch — stretching that stands aside
// whenever a cross-capable flow is live, the behavior before mid-span
// mailbox delivery). Two regimes: "night" is the fine-step day-night
// scenario with per-tick Poisson polls, where every agent lives in one DC
// and spans run straight to the next collector boundary — barriers
// collapse by orders of magnitude; "peak" is the dense consolidation
// business hour, where cross-DC cascades keep global tokens permanently in
// flight and spans can only form inside the per-shard WAN lookahead
// through the shard inboxes. Results are bit-identical across all rows
// (TestStretchBarrierDrop, TestMailboxDueTimeSafety, the NoStretch
// equivalence legs); compare ns/op, barriers and windows-stretched between
// the paired rows. Numbers land in BENCH_lookahead.json.
func BenchmarkWindowStretch(b *testing.B) {
	night := func(b *testing.B, shards int, noStretch bool) {
		b.Helper()
		b.ReportAllocs()
		var barriers, stretched, ops uint64
		for i := 0; i < b.N; i++ {
			res, err := scenarios.RunDayNight(scenarios.DayNightConfig{
				Seed: 7, Hours: 6, NoThinning: true,
				Engine: dispatch.NewSharded(shards), NoStretch: noStretch,
			})
			if err != nil {
				b.Fatal(err)
			}
			st := res.Result.Stats
			barriers, stretched, ops = st.Barriers, st.WindowsStretched, st.CompletedOps
		}
		b.ReportMetric(float64(barriers), "barriers")
		b.ReportMetric(float64(stretched), "windows-stretched")
		b.ReportMetric(float64(ops), "ops")
	}
	peak := func(b *testing.B, shards int, noStretch, noCross bool) {
		b.Helper()
		b.ReportAllocs()
		var barriers, stretched, mailed uint64
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			cs, err := scenarios.NewConsolidation(scenarios.CaseConfig{
				Step: 0.01, Seed: 7, Scale: 1,
				StartHour: 13, EndHour: 14,
				Engine:         dispatch.NewSharded(shards),
				NoStretch:      noStretch,
				NoCrossStretch: noCross,
			})
			if err != nil {
				b.Fatal(err)
			}
			cs.Sim.RunFor(90) // untimed warm-up: build peak-hour concurrency
			b.StartTimer()
			cs.Sim.RunFor(30)
			b.StopTimer()
			st := cs.Sim.Stats()
			barriers, stretched, mailed = st.Barriers, st.WindowsStretched, st.MailboxApplied
			cs.Sim.Shutdown()
			b.StartTimer()
		}
		b.ReportMetric(float64(barriers), "barriers")
		b.ReportMetric(float64(stretched), "windows-stretched")
		b.ReportMetric(float64(mailed), "mailbox-applied")
	}
	for _, n := range []int{1, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("night/shards-%d/stretch", n), func(b *testing.B) { night(b, n, false) })
		b.Run(fmt.Sprintf("night/shards-%d/nostretch", n), func(b *testing.B) { night(b, n, true) })
		b.Run(fmt.Sprintf("peak/shards-%d/stretch", n), func(b *testing.B) { peak(b, n, false, false) })
		b.Run(fmt.Sprintf("peak/shards-%d/nocross", n), func(b *testing.B) { peak(b, n, false, true) })
		b.Run(fmt.Sprintf("peak/shards-%d/nostretch", n), func(b *testing.B) { peak(b, n, true, false) })
	}
}

// BenchmarkDayNightClients runs the day-night client scenario — the
// validation platform under a 24 h business-day curve with a 5% night
// floor at the default 10 ms step — in the two loop configurations the
// event-calendar PR contrasts: the full loop (indexed calendar + thinned
// arrivals) against the PR 2 loop (scan-based jump sizing, per-tick
// Poisson draws). The positive night floor vetoes every jump in the PR 2
// loop, so it ticks through all 8.64M steps; thinning turns the night
// into sampled arrival gaps the calendar loop jumps across. Results are
// distribution-identical (TestThinnedArrivalEquivalence); the wall-clock
// ratio is the headline (>=3x).
func BenchmarkDayNightClients(b *testing.B) {
	run := func(b *testing.B, noCal, noThin bool) {
		b.Helper()
		b.ReportAllocs()
		var res *scenarios.DayNightResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = scenarios.RunDayNight(scenarios.DayNightConfig{
				Seed: 7, NoCalendar: noCal, NoThinning: noThin,
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.CompletedOps), "ops")
		b.ReportMetric(float64(res.Jumps), "jumps")
		b.ReportMetric(float64(res.SkippedTicks), "skipped-ticks")
	}
	b.Run("calendar-thinned", func(b *testing.B) { run(b, false, false) })
	b.Run("pr2-loop", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkFluidDayNight is the fluid tier's headline: the 24 h day-night
// scenario at 10 million peak users, carried entirely by the analytic
// aggregation (RunDayNightFluid — zero discrete client launches), against
// the 60-user discrete reference the calendar-thinned loop runs
// (BenchmarkDayNightClients/calendar-thinned, repeated here as the
// "discrete-60" leg so both legs land in one table row pair). The
// acceptance envelope is wall-clock: fluid-10M must finish within 2x the
// discrete 60-user run despite simulating five orders of magnitude more
// client traffic. The analytic-ops metric is the integral of the offered
// curve (~191M operations/day); the discrete leg reports the ops it
// actually completed.
func BenchmarkFluidDayNight(b *testing.B) {
	b.Run("fluid-10M", func(b *testing.B) {
		b.ReportAllocs()
		var res *scenarios.DayNightResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = scenarios.RunDayNightFluid(scenarios.DayNightConfig{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
			if res.CompletedOps != 0 {
				b.Fatalf("fluid run launched %d discrete operations", res.CompletedOps)
			}
		}
		ops := res.Result.Series["fluid:CAD:NA:ops"]
		if ops == nil || ops.Len() == 0 {
			b.Fatal("fluid run recorded no analytic volume")
		}
		b.ReportMetric(ops.V[ops.Len()-1], "analytic-ops")
		b.ReportMetric(float64(res.Config.PeakUsers), "peak-users")
	})
	b.Run("discrete-60", func(b *testing.B) {
		b.ReportAllocs()
		var res *scenarios.DayNightResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = scenarios.RunDayNight(scenarios.DayNightConfig{Seed: 7})
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(res.CompletedOps), "ops")
	})
}

// Microbenchmarks of the queueing substrate.

func BenchmarkFCFSQueueStep(b *testing.B) {
	q := queueing.NewFCFS(8, 2.5e9)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%8 == 0 {
			q.Enqueue(&queueing.Task{ID: uint64(i), Demand: 2.5e7 * (1 + rng.Float64())})
		}
		q.Step(0.01, func(*queueing.Task) {})
	}
}

func BenchmarkPSLinkStep(b *testing.B) {
	q := queueing.NewPS(19.375e6, 256, 0.045)
	rng := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 0 {
			q.Enqueue(&queueing.Task{ID: uint64(i), Demand: 1e5 * (1 + rng.Float64())})
		}
		q.Step(0.01, func(*queueing.Task) {})
	}
}

func BenchmarkGrowthIntegration(b *testing.B) {
	g := background.GrowthModel{
		"NA": workload.BusinessDay(1000, 13, 22, 50),
		"EU": workload.BusinessDay(520, 8, 17, 26),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.VolumeMB("NA", 0, 900)
	}
}

// busyAgent mirrors internal/dispatch's dense-sweep agent: fixed CPU-bound
// work per step, matching the per-handler cost regime of the thesis'
// implementation whose Tables 4.1/4.2 were measured against.
type busyAgent struct {
	core.AgentBase
	state uint64
	spins int
}

func (a *busyAgent) Enqueue(*queueing.Task) {}
func (a *busyAgent) Step(dt float64) {
	x := a.state
	for i := 0; i < a.spins; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	a.state = x
}
func (a *busyAgent) Idle() bool { return true }

// denseSweep measures engine scaling with thesis-comparable per-agent work.
// Compare ns/op across thread counts: Table 4.1's Scatter-Gather stays far
// from linear while Table 4.2's H-Dispatch approaches it.
func denseSweep(b *testing.B, eng core.Engine) {
	b.Helper()
	sim := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: eng})
	defer sim.Shutdown()
	for i := 0; i < 2048; i++ {
		a := &busyAgent{state: 0x9e3779b97f4a7c15, spins: 3000}
		a.InitAgent(sim.NextAgentID(), "busy")
		sim.AddAgent(a)
		a.Pin() // dense sweep: every agent does work every tick
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Tick()
	}
}

// BenchmarkFig44_ScatterGatherDense: Fig. 4-4 — Scatter-Gather vs linear.
func BenchmarkFig44_ScatterGatherDense(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			denseSweep(b, dispatch.NewScatterGather(n))
		})
	}
}

// BenchmarkFig46_HDispatchDense: Fig. 4-6 — H-Dispatch vs linear
// (thesis: 1.71/3.20/5.17/8.06x at 2/4/8/16 threads, Agent Set=64).
func BenchmarkFig46_HDispatchDense(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("threads-%d", n), func(b *testing.B) {
			denseSweep(b, dispatch.NewHDispatch(n, 64))
		})
	}
}
