// Quickstart: build a one-data-center infrastructure, define a small
// two-tier web operation as a message cascade, drive it with a diurnal
// Poisson workload for one simulated hour and report utilization and
// response times.
package main

import (
	"fmt"
	"log"

	gdisim "repro"
)

func main() {
	log.SetFlags(0)
	// The default engine runs the time loop on one goroutine — the right
	// choice for a one-DC platform like this, which has nothing to
	// partition. Global topologies can run on the sharded PDES engine
	// instead (`engine: "sharded:N"` in a scenario document, or
	// `gdisim -shards N`): agents are partitioned per data center and each
	// window's heavy phases run shard-parallel, with results bit-identical
	// to this loop. Sharding pays when hours are dense (many agents busy
	// every window), N does not exceed the DC count, and real cores back
	// the shards; see the "Sharded PDES engine" section of DESIGN.md.
	sim := gdisim.NewSimulation(gdisim.SimConfig{Step: 0.01, Seed: 1})
	defer sim.Shutdown()

	// One data center: a 2-server application tier with local RAID storage
	// and a database tier backed by a small SAN.
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{{
			Name:       "NA",
			SwitchGbps: 20,
			ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []gdisim.TierSpec{
				{
					Name:    "app",
					Servers: 2,
					Server: gdisim.ServerSpec{
						CPU:     gdisim.CPUSpec{Sockets: 2, Cores: 4, GHz: 2.5},
						MemGB:   32,
						NICGbps: 10,
						RAID: &gdisim.RAIDSpec{
							Disks:    4,
							Disk:     gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
							CtrlGbps: 8, HitRate: 0.1,
						},
					},
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				},
				{
					Name:    "db",
					Servers: 1,
					Server: gdisim.ServerSpec{
						CPU:     gdisim.CPUSpec{Sockets: 2, Cores: 8, GHz: 2.5},
						MemGB:   64,
						NICGbps: 10,
					},
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
					SAN: &gdisim.SANSpec{
						Disks:        12,
						Disk:         gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
						FCSwitchGbps: 8, CtrlGbps: 8, FCALGbps: 8, HitRate: 0.1,
					},
					SANLink: &gdisim.LinkSpec{Gbps: 8, LatencyMS: 0.5},
				},
			},
		}},
		Clients: map[string]gdisim.ClientSpec{
			"NA": {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	inf, err := gdisim.Build(sim, spec)
	if err != nil {
		log.Fatal(err)
	}
	inf.RegisterProbes(sim.Collector)

	// A "report" operation: the client queries the app tier, which runs a
	// database transaction and returns a 2 MB result.
	report := gdisim.SeqOp("REPORT",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.4e9, NetBytes: 20e3, MemBytes: 50e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleDB, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.8e9, NetBytes: 15e3, DiskBytes: 20e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleDB, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.3e9, NetBytes: 2e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{CPUCycles: 0.1e9, NetBytes: 2e6},
		},
	)

	// What does one isolated execution cost?
	na := inf.DC("NA")
	isolated, err := gdisim.EstimateOp(report, gdisim.NewBinding(inf, na, na), sim.Clock().Step())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("isolated REPORT duration: %.3f s\n", isolated)

	// Drive it with 300 users averaging 30 operations per hour each. At
	// this scale every operation is launched discretely — the right
	// fidelity for watching individual response times. At web scale (say
	// 10M users, thousands of expected arrivals per tick) launch the
	// declarative way instead (gdisim.NewExperiment + WithWorkload) and add
	// gdisim.WithFluid("WEB", "NA", gdisim.FluidConfig{Above: 1}): dense
	// stretches are then aggregated analytically at a per-segment cost
	// independent of the user count, falling back to discrete sampling
	// near saturation and during fault windows. The fluid tier pays off
	// when expected arrivals per tick stay well above one for real
	// stretches of the run; below that, thinning and calendar jumps
	// already make the discrete loop cheap. See DESIGN.md, "Fluid
	// workload tier".
	users := gdisim.BusinessDay(300, 0, 24, 300) // constant population
	sim.AddSource(&gdisim.AppWorkload{
		App: "WEB", DC: "NA",
		Users:          users,
		OpsPerUserHour: 30,
		Ops:            []gdisim.Op{report},
		APM:            gdisim.SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
		GaugePrefix:    "web:NA",
	})

	fmt.Println("simulating one hour ...")
	sim.RunFor(3600)

	appUtil := sim.Collector.MustSeries("cpu:NA:app").Mean(300, 3600)
	dbUtil := sim.Collector.MustSeries("cpu:NA:db").Mean(300, 3600)
	mean, _ := sim.Responses.MeanAll("WEB REPORT", "NA")
	count := sim.Responses.Count("WEB REPORT", "NA")
	fmt.Printf("app tier CPU: %5.1f%%\n", appUtil*100)
	fmt.Printf("db tier CPU:  %5.1f%%\n", dbUtil*100)
	fmt.Printf("REPORT: %d completions, mean response %.3f s (isolated %.3f s)\n",
		count, mean, isolated)
}
