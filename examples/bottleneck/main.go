// Bottleneck detection (application 5 of Fig. 1-1): overload a two-tier
// platform and identify which component saturates first by scanning the
// collector's utilization probes — the "navigate down to the detail of
// individual elements" capability the thesis motivates.
package main

import (
	"fmt"
	"log"
	"sort"

	gdisim "repro"
)

func main() {
	log.SetFlags(0)
	for _, load := range []float64{200, 600, 1200} {
		name, util, resp := run(load)
		fmt.Printf("%5.0f users: hottest component %-12s at %5.1f%%, mean response %6.3f s\n",
			load, name, util*100, resp)
	}
	fmt.Println("\nThe database tier saturates first: capacity planning should grow it")
	fmt.Println("before the application tier (compare cpu:DC:app vs cpu:DC:db above).")
}

func run(users float64) (hottest string, util float64, resp float64) {
	sim := gdisim.NewSimulation(gdisim.SimConfig{Step: 0.01, Seed: 4})
	defer sim.Shutdown()
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{{
			Name: "DC", SwitchGbps: 20,
			ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []gdisim.TierSpec{
				{
					Name: "app", Servers: 4,
					Server: gdisim.ServerSpec{
						CPU: gdisim.CPUSpec{Sockets: 2, Cores: 8, GHz: 2.5}, MemGB: 32, NICGbps: 10,
						RAID: &gdisim.RAIDSpec{Disks: 2,
							Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0}, CtrlGbps: 4, HitRate: 0},
					},
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				},
				{
					// Deliberately undersized database tier.
					Name: "db", Servers: 1,
					Server: gdisim.ServerSpec{
						CPU: gdisim.CPUSpec{Sockets: 1, Cores: 4, GHz: 2.5}, MemGB: 64, NICGbps: 10,
						RAID: &gdisim.RAIDSpec{Disks: 4,
							Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0}, CtrlGbps: 4, HitRate: 0},
					},
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				},
			},
		}},
		Clients: map[string]gdisim.ClientSpec{
			"DC": {Slots: 256, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	inf, err := gdisim.Build(sim, spec)
	if err != nil {
		log.Fatal(err)
	}
	inf.RegisterProbes(sim.Collector)

	op := gdisim.SeqOp("QUERY",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.3e9, NetBytes: 20e3},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleDB, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.6e9, NetBytes: 10e3, DiskBytes: 10e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleDB, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{NetBytes: 500e3},
		},
	)
	sim.AddSource(&gdisim.AppWorkload{
		App: "LOAD", DC: "DC",
		Users:          gdisim.BusinessDay(users, 0, 24, users),
		OpsPerUserHour: 60,
		Ops:            []gdisim.Op{op},
		APM:            gdisim.SingleMaster([]string{"DC"}, "DC"),
		Inf:            inf,
	})
	sim.RunFor(600)

	// Scan every utilization probe for the hottest component.
	keys := sim.Collector.Keys()
	sort.Strings(keys)
	for _, k := range keys {
		if v := sim.Collector.MustSeries(k).Mean(60, 600); v > util {
			hottest, util = k, v
		}
	}
	resp, _ = sim.Responses.MeanAll("LOAD QUERY", "DC")
	return hottest, util, resp
}
