// Network administration what-if (application 4 of Fig. 1-1), rewritten on
// the experiment API as a concurrent parameter sweep: a remote office
// reaches a consolidated headquarters platform over a WAN, and the
// administrator compares every combination of headquarters core count
// (consolidating 4 -> 32 cores per app server) and WAN bandwidth
// (45 / 155 / 622 Mbps) before any hardware is bought. Twelve independent
// simulations fan out across the local CPUs; per-point seeds are derived
// deterministically, so the table is bit-identical at any worker count.
package main

import (
	"fmt"
	"log"

	gdisim "repro"
)

func main() {
	log.SetFlags(0)

	// The single-valued "seed" axis pins every point to one arrival
	// history (common random numbers): differences down a column are then
	// the infrastructure's doing, not sampling noise.
	sweep := gdisim.NewSweep("wan-upgrade", baseExperiment).
		Vary("dcs.HQ.app.cores", 4, 8, 16, 32).
		Vary("wan.REMOTE-HQ.mbps", 45, 155, 622).
		Vary("seed", 12)
	fmt.Printf("What-if: %d-point sweep over HQ core counts x WAN bandwidth\n\n", sweep.Size())

	res, err := sweep.Run(0) // one worker per CPU
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-10s %-22s %-16s\n", "HQ cores", "WAN Mbps", "mean FETCH response (s)", "link util (%)")
	for _, p := range res.Points {
		r := p.Res
		resp, _ := r.Responses.MeanAll("DOC FETCH", "REMOTE")
		util := r.Series["link:HQ->REMOTE"].Mean(60, 900)
		fmt.Printf("%-10s %-10s %-22.2f %-16.1f\n",
			p.Values[0].Label, p.Values[1].Label, resp, util*100)
	}

	fmt.Println("\nReading the grid: bandwidth dominates below 155 Mbps — the link")
	fmt.Println("saturates and no amount of compute helps — while past it the")
	fmt.Println("response time flattens and extra cores buy nothing for this")
	fmt.Println("fetch-heavy workload. The cheapest adequate point stands out")
	fmt.Println("without buying a single switch. res.WriteCSV exports the grid")
	fmt.Println("for external plotting.")
}

// baseExperiment assembles the two-site document-serving platform: an app
// tier at headquarters, remote clients fetching 1.5 MB documents over the
// WAN. The sweep re-assembles it per grid point, so points share nothing.
func baseExperiment() (*gdisim.Experiment, error) {
	server := gdisim.ServerSpec{
		CPU: gdisim.CPUSpec{Sockets: 2, Cores: 8, GHz: 2.5}, MemGB: 32, NICGbps: 10,
		RAID: &gdisim.RAIDSpec{Disks: 4,
			Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0}, CtrlGbps: 4, HitRate: 0},
	}
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{
			{
				Name: "HQ", SwitchGbps: 20,
				ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []gdisim.TierSpec{{
					Name: "app", Servers: 2, Server: server,
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				}},
			},
			{
				Name: "REMOTE", SwitchGbps: 20,
				ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []gdisim.TierSpec{{
					Name: "fs", Servers: 1, Server: server,
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				}},
			},
		},
		WAN: []gdisim.WANSpec{{
			From: "REMOTE", To: "HQ",
			Link: gdisim.LinkSpec{Gbps: 0.045, LatencyMS: 60, Allocated: 0.2},
		}},
		Clients: map[string]gdisim.ClientSpec{
			"REMOTE": {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}

	// Remote clients fetch 1.5 MB documents from headquarters.
	fetch := gdisim.SeqOp("FETCH",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.2e9, NetBytes: 20e3, DiskBytes: 1.5e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{NetBytes: 1.5e6},
		},
	)

	return gdisim.NewExperiment("whatif",
		gdisim.WithInfra(spec),
		gdisim.WithSeed(12),
		gdisim.WithDuration(900),
		gdisim.WithAccessMatrix(gdisim.SingleMaster([]string{"REMOTE", "HQ"}, "HQ")),
		gdisim.WithWorkload(gdisim.ExperimentWorkload{
			App: "DOC", DC: "REMOTE",
			Users:          gdisim.BusinessDay(120, 0, 24, 120),
			OpsPerUserHour: 20,
			Ops:            []gdisim.Op{fetch},
		}),
	)
}
