// Network administration what-if (application 4 of Fig. 1-1): compare WAN
// upgrade options for a remote office. The remote site's clients reach the
// master data center over a 45 Mbps or a 155 Mbps link; the simulator
// predicts the response-time and link-utilization consequences of the
// upgrade before any hardware is bought — the "what if" workflow GDISim
// was built for.
package main

import (
	"fmt"
	"log"

	gdisim "repro"
)

func main() {
	log.SetFlags(0)
	fmt.Println("What-if: remote office WAN at 45 vs 155 Mbps (20% allocated)")
	for _, mbps := range []float64{45, 155} {
		resp, util := run(mbps)
		fmt.Printf("  %3.0f Mbps: mean FETCH response %6.2f s, link utilization %5.1f%%\n",
			mbps, resp, util*100)
	}
	fmt.Println("\nThe upgrade more than halves the fetch time while the allocated")
	fmt.Println("utilization drops out of the saturation zone.")
}

func run(mbps float64) (resp, util float64) {
	sim := gdisim.NewSimulation(gdisim.SimConfig{Step: 0.01, Seed: 12})
	defer sim.Shutdown()
	server := gdisim.ServerSpec{
		CPU: gdisim.CPUSpec{Sockets: 2, Cores: 8, GHz: 2.5}, MemGB: 32, NICGbps: 10,
		RAID: &gdisim.RAIDSpec{Disks: 4,
			Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0}, CtrlGbps: 4, HitRate: 0},
	}
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{
			{
				Name: "HQ", SwitchGbps: 20,
				ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []gdisim.TierSpec{{
					Name: "app", Servers: 2, Server: server,
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				}},
			},
			{
				Name: "REMOTE", SwitchGbps: 20,
				ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []gdisim.TierSpec{{
					Name: "fs", Servers: 1, Server: server,
					LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				}},
			},
		},
		WAN: []gdisim.WANSpec{{
			From: "REMOTE", To: "HQ",
			Link: gdisim.LinkSpec{Gbps: mbps / 1000, LatencyMS: 60, Allocated: 0.2},
		}},
		Clients: map[string]gdisim.ClientSpec{
			"REMOTE": {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	inf, err := gdisim.Build(sim, spec)
	if err != nil {
		log.Fatal(err)
	}
	inf.RegisterProbes(sim.Collector)

	// Remote clients fetch 1.5 MB documents from headquarters.
	fetch := gdisim.SeqOp("FETCH",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.2e9, NetBytes: 20e3, DiskBytes: 1.5e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{NetBytes: 1.5e6},
		},
	)
	sim.AddSource(&gdisim.AppWorkload{
		App: "DOC", DC: "REMOTE",
		Users:          gdisim.BusinessDay(120, 0, 24, 120),
		OpsPerUserHour: 20,
		Ops:            []gdisim.Op{fetch},
		APM:            gdisim.SingleMaster([]string{"REMOTE", "HQ"}, "HQ"),
		Inf:            inf,
	})
	sim.RunFor(900)
	resp, _ = sim.Responses.MeanAll("DOC FETCH", "REMOTE")
	util = sim.Collector.MustSeries("link:HQ->REMOTE").Mean(60, 900)
	return resp, util
}
