// Partition: the flagship chaos scenario — sever the Atlantic WAN link
// for ten minutes at peak load and watch the platform reroute and recover.
//
// Three data centers: NA owns the data (single master), EU and AS1 run
// client populations fetching documents from NA. The primary WAN paths are
// NA-EU (the Atlantic link) and NA-AS1; a backup EU-AS1 link sits idle
// until a primary fails. The fault schedule runs the classic chaos phases:
//
//	stabilize [0, 600)      healthy platform at peak load
//	inject    [600, 1200)   NA-EU blacked out; EU traffic diverts via AS1
//	recover   [1200, 1800)  link restored; the backlog drains
//
// The run emits the recovery analysis as first-class experiment output:
// exact injection/recovery times, time-to-reroute (first diverted traffic
// on the backup link), peak backlog and time-to-drain, plus the per-phase
// backlog curve for plotting. The same scenario in document form is
// examples/chaos.json (`gdisim -doc examples/chaos.json`).
package main

import (
	"fmt"
	"log"

	gdisim "repro"
)

func main() {
	log.SetFlags(0)

	e, err := atlanticPartition()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("partitioning the Atlantic for 10 minutes at peak ...")
	res, err := e.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%d operations completed over %.0f simulated seconds (%d fast-forward jumps)\n",
		res.Stats.CompletedOps, res.Stats.Seconds, res.Stats.Jumps)
	if res.Faults == nil {
		log.Fatal("no fault report — the injection did not attach")
	}
	fmt.Print(res.Faults)

	// The recovery curves behind the scalar metrics: scenario phase,
	// in-flight backlog and cumulative backup-link arrivals, minute by
	// minute. fault:-prefixed series live on the report, not res.Series,
	// so result digests stay comparable with fault-free runs.
	phase := res.Faults.Series["fault:phase"]
	backlog := res.Faults.Series["fault:backlog"]
	backup := res.Faults.Series["fault:backup_arrivals"]
	phaseName := map[int]string{
		gdisim.PhaseStabilize: "stabilize",
		gdisim.PhaseInject:    "inject",
		gdisim.PhaseRecover:   "recover",
	}
	fmt.Println("\nbacklog-drain curve (1-minute resolution):")
	fmt.Printf("%8s  %-10s %10s %18s\n", "t (s)", "phase", "backlog", "backup arrivals")
	for t := 60.0; t <= res.Stats.Seconds; t += 60 {
		fmt.Printf("%8.0f  %-10s %10.0f %18.0f\n",
			t, phaseName[int(phase.At(t))], backlog.At(t), backup.At(t))
	}

	// Response-time impact on the partitioned population.
	mean, _ := res.Responses.MeanAll("DOC FETCH", "EU")
	count := res.Responses.Count("DOC FETCH", "EU")
	fmt.Printf("\nEU FETCH: %d completions, mean response %.3f s across the whole run\n", count, mean)
}

// atlanticPartition assembles the three-site platform and schedules the
// blackout. Everything is one declarative experiment: the fault rides the
// same options surface as the infrastructure and the workloads, so a sweep
// could grid over its magnitude or duration (faults.atlantic.magnitude).
func atlanticPartition() (*gdisim.Experiment, error) {
	server := gdisim.ServerSpec{
		CPU: gdisim.CPUSpec{Sockets: 2, Cores: 8, GHz: 2.5}, MemGB: 32, NICGbps: 10,
		RAID: &gdisim.RAIDSpec{Disks: 4,
			Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0}, CtrlGbps: 4, HitRate: 0},
	}
	dc := func(name string) gdisim.DCSpec {
		return gdisim.DCSpec{
			Name: name, SwitchGbps: 20,
			ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []gdisim.TierSpec{{
				Name: "app", Servers: 2, Server: server,
				LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
			}},
		}
	}
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{dc("NA"), dc("EU"), dc("AS1")},
		WAN: []gdisim.WANSpec{
			{From: "NA", To: "EU", Link: gdisim.LinkSpec{Gbps: 0.155, LatencyMS: 40}},
			{From: "NA", To: "AS1", Link: gdisim.LinkSpec{Gbps: 0.155, LatencyMS: 90}},
			// Idle until a primary fails; the diverted EU traffic lands here.
			// Deliberately thinner than the diverted offered load, so the
			// partition builds a real backlog that must drain after recovery.
			{From: "EU", To: "AS1", Link: gdisim.LinkSpec{Gbps: 0.010, LatencyMS: 110}, Backup: true},
		},
		Clients: map[string]gdisim.ClientSpec{
			"EU":  {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
			"AS1": {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}

	// Clients fetch 1 MB documents from the master site over the WAN.
	fetch := gdisim.SeqOp("FETCH",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: 0.2e9, NetBytes: 20e3, DiskBytes: 1e6},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{NetBytes: 1e6},
		},
	)
	workload := func(dc string) gdisim.ExperimentWorkload {
		return gdisim.ExperimentWorkload{
			App: "DOC", DC: dc,
			Users:          gdisim.BusinessDay(100, 0, 24, 100), // constant peak
			OpsPerUserHour: 30,
			Ops:            []gdisim.Op{fetch},
		}
	}

	return gdisim.NewExperiment("atlantic-partition",
		gdisim.WithInfra(spec),
		gdisim.WithSeed(12),
		gdisim.WithDuration(1800),
		gdisim.WithAccessMatrix(gdisim.SingleMaster([]string{"NA", "EU", "AS1"}, "NA")),
		gdisim.WithWorkload(workload("EU")),
		gdisim.WithWorkload(workload("AS1")),
		gdisim.WithFault(gdisim.FaultInjection{
			Name:     "atlantic",
			Fault:    &gdisim.WANFault{From: "NA", To: "EU", Mag: 1},
			At:       600,
			Duration: 600,
		}),
	)
}
