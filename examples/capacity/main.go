// Capacity planning (application 2 of Fig. 1-1): determine the resources
// required to meet a service-level agreement. The analytic M/M/c model
// proposes a server count; the simulator then verifies the choice under
// the full cascade with network and storage stages, sweeping the tier size
// until the SLA holds.
package main

import (
	"fmt"
	"log"

	gdisim "repro"
)

// The SLA: mean response below 1.5 seconds at the busy-hour load.
const (
	slaSeconds      = 1.5
	users           = 800.0
	opsPerUserHour  = 40.0
	cpuSecondsPerOp = 0.9 // profiled canonical CPU cost at the app tier
)

func main() {
	log.SetFlags(0)

	// Analytic first cut: M/M/c with lambda ops/s and mu = 1/service.
	lambda := users * opsPerUserHour / 3600
	mu := 1 / cpuSecondsPerOp
	perServerCores := 8
	minCores, err := gdisim.RequiredServers(lambda, mu, slaSeconds-cpuSecondsPerOp)
	if err != nil {
		log.Fatal(err)
	}
	analytic := (minCores + perServerCores - 1) / perServerCores
	fmt.Printf("analytic M/M/c proposal: %d cores => %d servers of %d cores\n",
		minCores, analytic, perServerCores)

	// Simulate, growing the tier until the measured mean meets the SLA.
	for servers := analytic; servers <= analytic+4; servers++ {
		mean, util := simulate(servers, perServerCores)
		fmt.Printf("  %d servers: mean response %.3f s, app CPU %.1f%%\n",
			servers, mean, util*100)
		if mean <= slaSeconds {
			fmt.Printf("SLA met with %d servers.\n", servers)
			return
		}
	}
	fmt.Println("SLA not met within the sweep; revisit the hardware class.")
}

func simulate(servers, cores int) (meanResp, util float64) {
	sim := gdisim.NewSimulation(gdisim.SimConfig{Step: 0.01, Seed: 9})
	defer sim.Shutdown()
	spec := gdisim.InfraSpec{
		DCs: []gdisim.DCSpec{{
			Name: "DC", SwitchGbps: 20,
			ClientLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []gdisim.TierSpec{{
				Name: "app", Servers: servers,
				Server: gdisim.ServerSpec{
					CPU:     gdisim.CPUSpec{Sockets: 1, Cores: cores, GHz: 1},
					MemGB:   32,
					NICGbps: 10,
					RAID: &gdisim.RAIDSpec{
						Disks: 2, Disk: gdisim.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
						CtrlGbps: 4, HitRate: 0,
					},
				},
				LocalLink: gdisim.LinkSpec{Gbps: 10, LatencyMS: 0.45},
			}},
		}},
		Clients: map[string]gdisim.ClientSpec{
			"DC": {Slots: 128, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	inf, err := gdisim.Build(sim, spec)
	if err != nil {
		log.Fatal(err)
	}
	inf.RegisterProbes(sim.Collector)

	op := gdisim.SeqOp("TXN",
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleClient},
			To:   gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			Cost: gdisim.Cost{CPUCycles: cpuSecondsPerOp * 1e9, NetBytes: 50e3},
		},
		gdisim.Msg{
			From: gdisim.End{Role: gdisim.RoleApp, Site: gdisim.SiteMaster},
			To:   gdisim.End{Role: gdisim.RoleClient},
			Cost: gdisim.Cost{NetBytes: 200e3},
		},
	)
	sim.AddSource(&gdisim.AppWorkload{
		App: "SLA", DC: "DC",
		Users:          gdisim.BusinessDay(users, 0, 24, users),
		OpsPerUserHour: opsPerUserHour,
		Ops:            []gdisim.Op{op},
		APM:            gdisim.SingleMaster([]string{"DC"}, "DC"),
		Inf:            inf,
	})
	sim.RunFor(1200)
	meanResp, _ = sim.Responses.MeanAll("SLA TXN", "DC")
	util = sim.Collector.MustSeries("cpu:DC:app").Mean(120, 1200)
	return meanResp, util
}
