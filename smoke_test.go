// Compile-and-run smoke tests for the examples and cmd binaries, so the
// user-facing entry points cannot rot silently: every binary is built with
// the current module and the fast ones are executed end to end (the cmd
// binaries via their -short flag).
package gdisim

import (
	"context"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// buildPackages compiles the given package paths into dir and returns the
// binary paths keyed by package name.
func buildPackages(t *testing.T, dir string, pkgs []string) map[string]string {
	t.Helper()
	bins := make(map[string]string, len(pkgs))
	for _, pkg := range pkgs {
		name := pkg[strings.LastIndex(pkg, "/")+1:]
		bin := dir + "/" + name
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
		bins[name] = bin
	}
	return bins
}

// runBinary executes a built binary with args and a generous timeout,
// failing the test on a non-zero exit.
func runBinary(t *testing.T, bin string, args ...string) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	out, err := exec.CommandContext(ctx, bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", bin, args, err, out)
	}
	return string(out)
}

// TestExamplesSmoke compiles every example and runs the quickstart end to
// end, checking it reaches its final report line.
func TestExamplesSmoke(t *testing.T) {
	dir := t.TempDir()
	bins := buildPackages(t, dir, []string{
		"./examples/quickstart",
		"./examples/bottleneck",
		"./examples/capacity",
		"./examples/whatif",
		"./examples/partition",
	})
	out := runBinary(t, bins["quickstart"])
	for _, want := range []string{"isolated REPORT duration", "app tier CPU", "completions"} {
		if !strings.Contains(out, want) {
			t.Errorf("quickstart output missing %q:\n%s", want, out)
		}
	}
	// The partition example is the flagship chaos scenario; it must print
	// the fault report and the backlog-drain curve.
	out = runBinary(t, bins["partition"])
	for _, want := range []string{"fault report", "time-to-reroute", "backlog-drain curve"} {
		if !strings.Contains(out, want) {
			t.Errorf("partition output missing %q:\n%s", want, out)
		}
	}
	if testing.Short() {
		return
	}
	// The whatif example is the 12-point sweep over the experiment API; it
	// must print every grid row.
	out = runBinary(t, bins["whatif"])
	if !strings.Contains(out, "12-point sweep") {
		t.Errorf("whatif output missing the sweep banner:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got < 15 {
		t.Errorf("whatif printed %d lines, expected the full grid:\n%s", got, out)
	}
}

// TestCommandsSmoke compiles every cmd binary and runs each in its -short
// mode, checking the headline artifact of each report appears.
func TestCommandsSmoke(t *testing.T) {
	dir := t.TempDir()
	bins := buildPackages(t, dir, []string{
		"./cmd/validate",
		"./cmd/consolidate",
		"./cmd/multimaster",
		"./cmd/gdisim",
	})
	cases := []struct {
		bin  string
		args []string
		want string
	}{
		{"validate", []string{"-short"}, "Table 5.2"},
		{"consolidate", []string{"-short"}, "Table 6.1"},
		{"multimaster", []string{"-short"}, "Table 7.3"},
		{"gdisim", []string{"-short"}, "speedup"},
		{"gdisim", []string{"-doc", "examples/scenario.json"}, "operations completed"},
		{"gdisim", []string{"-doc", "examples/chaos.json"}, "fault report"},
		{"gdisim", []string{"-doc", "examples/scenario.json",
			"-sweep", "dcs.NA.app.cores=4,8", "-workers", "2"}, "Sweep over"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.bin, func(t *testing.T) {
			t.Parallel()
			out := runBinary(t, bins[tc.bin], tc.args...)
			if !strings.Contains(out, tc.want) {
				t.Errorf("%s %v output missing %q:\n%s", tc.bin, tc.args, tc.want, out)
			}
		})
	}
}
