package cascade

import (
	"fmt"

	"repro/internal/topology"
)

// Estimate returns the isolated (single-user, idle-infrastructure) duration
// of an operation under the binding: per step, the slowest parallel message
// plan; across steps, the sum. It is exact for cache-free infrastructures
// (the Chapter 5 validation assumes "no caching between tiers", §5.2.4);
// with caches enabled the estimate consumes hit-decision randomness like a
// real expansion would.
func Estimate(op Op, b *Binding, step float64) (float64, error) {
	if err := op.Validate(); err != nil {
		return 0, err
	}
	total := 0.0
	for _, msgs := range op.Steps {
		slowest := 0.0
		for _, m := range msgs {
			from, err := b.Resolve(m.From)
			if err != nil {
				return 0, err
			}
			to, err := b.Resolve(m.To)
			if err != nil {
				return 0, err
			}
			plan, err := b.Inf.ExpandHop(from, to, m.Cost)
			if err != nil {
				return 0, err
			}
			if d := topology.PlanDuration(plan, step); d > slowest {
				slowest = d
			}
		}
		total += slowest
	}
	return total, nil
}

// CalibrateClientWork returns a copy of the operation whose client-side
// processing is adjusted so that the isolated duration equals target
// seconds. It finds the last message addressed to the client and solves for
// the client CPU cycles that close the gap — the inverse of the paper's
// canonical-cost profiling (§3.5.2): the thesis measured costs and reported
// durations; we encode the published durations and derive the free cost
// component. Server-side costs are untouched, so tier utilizations remain
// governed by the explicit cost tables.
func CalibrateClientWork(op Op, b *Binding, step, target float64) (Op, error) {
	if b.Slot == nil {
		return Op{}, fmt.Errorf("cascade: calibration requires a client population at %s", b.Local.Name)
	}
	last := -1
	for i := len(op.Steps) - 1; i >= 0 && last < 0; i-- {
		for j := len(op.Steps[i]) - 1; j >= 0; j-- {
			if op.Steps[i][j].To.Role == Client {
				last = i
				break
			}
		}
	}
	if last < 0 {
		return Op{}, fmt.Errorf("cascade: operation %s has no client-bound message to calibrate", op.Name)
	}
	base, err := Estimate(op, b, step)
	if err != nil {
		return Op{}, err
	}
	// Coarser time steps add forwarding overhead per stage; allow the
	// calibrated duration to overshoot tight targets by up to 10% rather
	// than failing (the overshoot shows up honestly in the measured
	// response times).
	gap := target - base
	if gap < -0.10*target {
		return Op{}, fmt.Errorf("cascade: operation %s already takes %.2fs, above target %.2fs",
			op.Name, base, target)
	}
	if gap < 0 {
		gap = 0
	}
	ghz := b.Local.Clients.Spec.GHz
	out := op.Scale(op.Name, 1) // deep copy
	for j := range out.Steps[last] {
		if out.Steps[last][j].To.Role == Client {
			out.Steps[last][j].Cost.CPUCycles += gap * ghz * 1e9
			break
		}
	}
	return out, nil
}
