// Package cascade implements the software-application model of GDISim
// (§3.5): operations defined as message cascades — collections of sequences
// of messages between holon roles, each carrying a resource-cost array R.
// Cascades are written once against abstract roles (client, application
// tier, database tier, ...) and bound to concrete data centers, servers and
// client slots when an operation instance launches, reproducing the paper's
// run-time placement: "the exact data center, server and hardware instances
// are decided at run-time by the simulator" (§3.5.2).
package cascade

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/topology"
)

// R is the hardware-agnostic cost array carried by every message (§3.3.2).
type R = topology.Cost

// Role names the holon type at one end of a message.
type Role string

// Holon roles of the data serving platform.
const (
	Client Role = "client" // a client workstation
	App    Role = "app"    // application server tier
	DB     Role = "db"     // database server tier
	FS     Role = "fs"     // file server tier
	Idx    Role = "idx"    // index server tier
	Daemon Role = "daemon" // background daemon process (R, I of §6.4.3)
)

// tierName maps server roles to topology tier names.
func (r Role) tierName() string { return string(r) }

// Site selects the data center hosting a message endpoint.
type Site uint8

const (
	// SiteLocal is the client's own data center — file servers serve
	// geographically proximal clients (§6.3.1).
	SiteLocal Site = iota
	// SiteMaster is the data center owning the manipulated file — all
	// metadata operations route there (§7.2.1; in Chapter 6 the master is
	// always DNA).
	SiteMaster
)

// End is one endpoint of a message: a role at a site.
type End struct {
	Role Role
	Site Site
}

// Msg is one message of a cascade with its cost array.
type Msg struct {
	From, To End
	Cost     R
}

// Op is a reusable operation definition: a sequence of steps, each step a
// set of messages issued in parallel (fork) that must all complete (join)
// before the next step starts. A plain request/response cascade is a
// sequence of single-message steps.
type Op struct {
	Name  string
	Steps [][]Msg
}

// Seq builds an operation whose messages execute strictly in sequence.
func Seq(name string, msgs ...Msg) Op {
	op := Op{Name: name}
	for _, m := range msgs {
		op.Steps = append(op.Steps, []Msg{m})
	}
	return op
}

// Validate checks structural sanity: non-empty steps, client/daemon
// endpoints never used as server tiers, and costs non-negative.
func (op Op) Validate() error {
	if op.Name == "" {
		return fmt.Errorf("cascade: operation without a name")
	}
	if len(op.Steps) == 0 {
		return fmt.Errorf("cascade: operation %s has no steps", op.Name)
	}
	for i, step := range op.Steps {
		if len(step) == 0 {
			return fmt.Errorf("cascade: operation %s step %d is empty", op.Name, i)
		}
		for _, m := range step {
			for _, e := range []End{m.From, m.To} {
				switch e.Role {
				case Client, App, DB, FS, Idx, Daemon:
				default:
					return fmt.Errorf("cascade: operation %s uses unknown role %q", op.Name, e.Role)
				}
			}
			c := m.Cost
			if c.CPUCycles < 0 || c.NetBytes < 0 || c.MemBytes < 0 || c.DiskBytes < 0 {
				return fmt.Errorf("cascade: operation %s has negative cost %+v", op.Name, c)
			}
		}
	}
	return nil
}

// TotalCost sums the cost arrays over all messages of the operation.
func (op Op) TotalCost() R {
	var sum R
	for _, step := range op.Steps {
		for _, m := range step {
			sum = sum.Add(m.Cost)
		}
	}
	return sum
}

// CostToTier sums, per destination role, the cost arrays addressed to it —
// the per-tier demand used for capacity calibration.
func (op Op) CostToTier() map[Role]R {
	out := make(map[Role]R)
	for _, step := range op.Steps {
		for _, m := range step {
			out[m.To.Role] = out[m.To.Role].Add(m.Cost)
		}
	}
	return out
}

// Scale returns a copy of the operation with every cost multiplied by f,
// used to derive Light/Average/Heavy series variants (§5.2.2) and VIS from
// CAD (§6.3.2: "the volume of the data manipulated ... is considerably
// smaller").
func (op Op) Scale(name string, f float64) Op {
	scaled := Op{Name: name, Steps: make([][]Msg, len(op.Steps))}
	for i, step := range op.Steps {
		scaled.Steps[i] = make([]Msg, len(step))
		for j, m := range step {
			m.Cost = m.Cost.Scale(f)
			scaled.Steps[i][j] = m
		}
	}
	return scaled
}

// ScaleIO returns a copy with only the network and disk costs scaled —
// metadata operations are size-independent while OPEN/SAVE move the file
// payload (Table 5.1's analysis).
func (op Op) ScaleIO(name string, f float64) Op {
	scaled := Op{Name: name, Steps: make([][]Msg, len(op.Steps))}
	for i, step := range op.Steps {
		scaled.Steps[i] = make([]Msg, len(step))
		for j, m := range step {
			m.Cost.NetBytes *= f
			m.Cost.DiskBytes *= f
			scaled.Steps[i][j] = m
		}
	}
	return scaled
}

// RoundTrips counts the sequential steps that cross between sites
// (Local <-> Master) — the S column of Table 6.2. Parallel messages within
// one step pay WAN latency concurrently, so a step counts once; operations
// with many crossing steps suffer most from latency.
func (op Op) RoundTrips() int {
	n := 0
	for _, step := range op.Steps {
		for _, m := range step {
			if m.From.Site != m.To.Site {
				n++
				break
			}
		}
	}
	return n
}

// Binding resolves cascade roles to concrete holons for one operation
// instance. Server choices are memoized per (role, site) so that all
// messages of one operation hit the same server — session affinity — while
// distinct operations spread across the tier via the balancer.
type Binding struct {
	Inf    *topology.Infrastructure
	Local  *topology.DataCenter
	Master *topology.DataCenter
	Slot   *topology.ClientSlot
	// Balance picks a server from a tier; nil selects round-robin.
	Balance func(*topology.Tier) *topology.Server

	servers map[End]*topology.Server
}

// NewBinding builds a binding for a client at local, manipulating a file
// owned by master. The client slot is drawn from the local pool.
func NewBinding(inf *topology.Infrastructure, local, master *topology.DataCenter) *Binding {
	b := &Binding{Inf: inf, Local: local, Master: master}
	if local.Clients != nil {
		b.Slot = local.Clients.Next()
	}
	return b
}

// site returns the data center for a site selector.
func (b *Binding) site(s Site) *topology.DataCenter {
	if s == SiteMaster {
		return b.Master
	}
	return b.Local
}

// Resolve maps an endpoint reference to a concrete topology endpoint.
func (b *Binding) Resolve(e End) (topology.Endpoint, error) {
	dc := b.site(e.Site)
	switch e.Role {
	case Client:
		if b.Slot == nil {
			return topology.Endpoint{}, fmt.Errorf("cascade: DC %s has no client population", b.Local.Name)
		}
		return topology.ClientEndpoint(b.Slot), nil
	case Daemon:
		return topology.DaemonEndpoint(dc), nil
	default:
		// Tiers missing at the chosen site fall back to the master — in
		// Chapter 6 slave DCs host only file servers, so app/db/idx
		// messages route to the MDC regardless of the site selector.
		if !dc.HasTier(e.Role.tierName()) {
			dc = b.Master
		}
		tier := dc.Tier(e.Role.tierName())
		if b.servers == nil {
			b.servers = make(map[End]*topology.Server)
		}
		key := End{Role: e.Role, Site: e.Site}
		srv := b.servers[key]
		if srv == nil {
			if b.Balance != nil {
				srv = b.Balance(tier)
			} else {
				srv = tier.Pick()
			}
			b.servers[key] = srv
		}
		return topology.ServerEndpoint(srv), nil
	}
}

// Instantiate turns an operation definition plus a binding into a runnable
// core.OpRun. Expansion happens step by step at run time.
func Instantiate(op Op, b *Binding) (core.OpRun, error) {
	if err := op.Validate(); err != nil {
		return core.OpRun{}, err
	}
	steps := op.Steps
	binding := b
	return core.OpRun{
		Name: op.Name,
		DC:   b.Local.Name,
		// A binding whose master is the local site resolves every endpoint
		// inside one data center (missing-tier fallback also lands on the
		// master, i.e. the same DC), so the whole cascade is shard-confined
		// and eligible for stretched-span execution.
		Local:    b.Local == b.Master,
		NumSteps: len(steps),
		Expand: func(step int) []core.MessagePlan {
			msgs := steps[step]
			plans := make([]core.MessagePlan, 0, len(msgs))
			for _, m := range msgs {
				from, err := binding.Resolve(m.From)
				if err != nil {
					panic(err)
				}
				to, err := binding.Resolve(m.To)
				if err != nil {
					panic(err)
				}
				plan, err := binding.Inf.ExpandHop(from, to, m.Cost)
				if err != nil {
					panic(err)
				}
				plans = append(plans, plan)
			}
			return plans
		},
	}, nil
}
