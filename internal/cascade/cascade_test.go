package cascade

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/topology"
)

// testInfra builds a master/slave pair: NA hosts app+db+fs, AUS hosts fs
// only, mirroring the consolidated platform shape of Chapter 6.
func testInfra(t *testing.T) (*core.Simulation, *topology.Infrastructure) {
	t.Helper()
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 4, GHz: 2},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 4, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
			CtrlGbps: 4, HitRate: 0,
		},
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{
			{Name: "NA", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 1},
				Tiers: []topology.TierSpec{
					{Name: "app", Servers: 2, Server: srv, LocalLink: local},
					{Name: "db", Servers: 1, Server: srv, LocalLink: local},
					{Name: "fs", Servers: 1, Server: srv, LocalLink: local},
				}},
			{Name: "AUS", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 1},
				Tiers: []topology.TierSpec{
					{Name: "fs", Servers: 1, Server: srv, LocalLink: local},
				}},
		},
		WAN: []topology.WANSpec{
			{From: "NA", To: "AUS", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 90}},
		},
		Clients: map[string]topology.ClientSpec{
			"NA":  {Slots: 8, NICGbps: 1, GHz: 2, DiskMBs: 100},
			"AUS": {Slots: 8, NICGbps: 1, GHz: 2, DiskMBs: 100},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.005, Seed: 11})
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func loginOp() Op {
	return Seq("LOGIN",
		Msg{From: End{Role: Client}, To: End{Role: App, Site: SiteMaster},
			Cost: R{CPUCycles: 2e8, NetBytes: 30e3, MemBytes: 5e6}},
		Msg{From: End{Role: App, Site: SiteMaster}, To: End{Role: DB, Site: SiteMaster},
			Cost: R{CPUCycles: 1e8, NetBytes: 10e3}},
		Msg{From: End{Role: DB, Site: SiteMaster}, To: End{Role: App, Site: SiteMaster},
			Cost: R{CPUCycles: 1e8, NetBytes: 10e3}},
		Msg{From: End{Role: App, Site: SiteMaster}, To: End{Role: Client},
			Cost: R{CPUCycles: 2e8, NetBytes: 250e3}},
	)
}

func TestOpValidate(t *testing.T) {
	if err := loginOp().Validate(); err != nil {
		t.Errorf("valid op rejected: %v", err)
	}
	bad := Op{Name: "X", Steps: [][]Msg{{{From: End{Role: "bogus"}, To: End{Role: App}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown role accepted")
	}
	if err := (Op{Name: "Y"}).Validate(); err == nil {
		t.Error("empty op accepted")
	}
	neg := loginOp()
	neg.Steps[0][0].Cost.NetBytes = -1
	if err := neg.Validate(); err == nil {
		t.Error("negative cost accepted")
	}
}

func TestOpTotalAndTierCosts(t *testing.T) {
	op := loginOp()
	total := op.TotalCost()
	if total.CPUCycles != 6e8 {
		t.Errorf("total cycles = %v", total.CPUCycles)
	}
	per := op.CostToTier()
	appCost := per[App]
	if appCost.CPUCycles != 3e8 {
		t.Errorf("app cycles = %v", appCost.CPUCycles)
	}
	clientCost := per[Client]
	if clientCost.NetBytes != 250e3 {
		t.Errorf("client bytes = %v", clientCost.NetBytes)
	}
}

func TestOpScaleVariants(t *testing.T) {
	op := loginOp()
	heavy := op.Scale("LOGIN-H", 2)
	if got := heavy.TotalCost().CPUCycles; got != 2*op.TotalCost().CPUCycles {
		t.Errorf("Scale cycles = %v", got)
	}
	io := op.ScaleIO("LOGIN-IO", 3)
	if got := io.TotalCost().CPUCycles; got != op.TotalCost().CPUCycles {
		t.Errorf("ScaleIO touched CPU: %v", got)
	}
	if got := io.TotalCost().NetBytes; got != 3*op.TotalCost().NetBytes {
		t.Errorf("ScaleIO bytes = %v", got)
	}
	// Originals untouched (deep copies).
	if op.TotalCost().NetBytes != 300e3 {
		t.Errorf("original mutated: %v", op.TotalCost().NetBytes)
	}
}

func TestRoundTrips(t *testing.T) {
	// Client (local) <-> app (master): every message crosses sites when
	// local != master... RoundTrips counts site-crossing messages.
	op := loginOp()
	if got := op.RoundTrips(); got != 2 {
		t.Errorf("RoundTrips = %d, want 2 (client<->master legs)", got)
	}
}

func TestInstantiateAndRunLocal(t *testing.T) {
	sim, inf := testInfra(t)
	na := inf.DC("NA")
	b := NewBinding(inf, na, na)
	run, err := Instantiate(loginOp(), b)
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(run)
		}
	}))
	if err := sim.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}
	if n := sim.Responses.Count("LOGIN", "NA"); n != 1 {
		t.Errorf("LOGIN completions = %d", n)
	}
}

func TestRemoteClientPaysWANLatency(t *testing.T) {
	sim, inf := testInfra(t)
	na, aus := inf.DC("NA"), inf.DC("AUS")
	runFor := func(local *topology.DataCenter) float64 {
		b := NewBinding(inf, local, na)
		run, err := Instantiate(loginOp(), b)
		if err != nil {
			t.Fatal(err)
		}
		done := false
		sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
			if !done {
				done = true
				s.StartOp(run)
			}
		}))
		if err := sim.RunUntilIdle(60); err != nil {
			t.Fatal(err)
		}
		d, ok := sim.Responses.MeanAll("LOGIN", local.Name)
		if !ok {
			t.Fatal("no response")
		}
		return d
	}
	dNA := runFor(na)
	dAUS := runFor(aus)
	// Two WAN crossings at 90 ms each => at least 180 ms extra.
	if dAUS-dNA < 0.18 {
		t.Errorf("AUS latency penalty = %v, want >= 0.18", dAUS-dNA)
	}
}

func TestSessionAffinityWithinOp(t *testing.T) {
	_, inf := testInfra(t)
	na := inf.DC("NA")
	b := NewBinding(inf, na, na)
	e1, err := b.Resolve(End{Role: App, Site: SiteMaster})
	if err != nil {
		t.Fatal(err)
	}
	e2, err := b.Resolve(End{Role: App, Site: SiteMaster})
	if err != nil {
		t.Fatal(err)
	}
	if e1.Server() != e2.Server() {
		t.Error("same op resolved app tier to different servers")
	}
	// A different binding (next op) must rotate to the other server.
	b2 := NewBinding(inf, na, na)
	e3, err := b2.Resolve(End{Role: App, Site: SiteMaster})
	if err != nil {
		t.Fatal(err)
	}
	if e3.Server() == e1.Server() {
		t.Error("round robin did not rotate across operations")
	}
}

func TestMissingTierFallsBackToMaster(t *testing.T) {
	_, inf := testInfra(t)
	na, aus := inf.DC("NA"), inf.DC("AUS")
	b := NewBinding(inf, aus, na)
	// app tier does not exist in AUS: SiteLocal must fall back to master.
	ep, err := b.Resolve(End{Role: App, Site: SiteLocal})
	if err != nil {
		t.Fatal(err)
	}
	if ep.DC() != na {
		t.Errorf("app resolved to %s, want NA fallback", ep.DC().Name)
	}
	// fs exists locally and must stay local.
	ep, err = b.Resolve(End{Role: FS, Site: SiteLocal})
	if err != nil {
		t.Fatal(err)
	}
	if ep.DC() != aus {
		t.Errorf("fs resolved to %s, want AUS", ep.DC().Name)
	}
}

func TestEstimateMatchesSimulatedIsolatedRun(t *testing.T) {
	sim, inf := testInfra(t)
	na := inf.DC("NA")
	op := loginOp()
	est, err := Estimate(op, NewBinding(inf, na, na), sim.Clock().Step())
	if err != nil {
		t.Fatal(err)
	}
	b := NewBinding(inf, na, na)
	run, err := Instantiate(op, b)
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(run)
		}
	}))
	if err := sim.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}
	got, _ := sim.Responses.MeanAll("LOGIN", "NA")
	if rel := math.Abs(got-est) / got; rel > 0.10 {
		t.Errorf("estimate %v vs simulated %v (rel err %.1f%%)", est, got, rel*100)
	}
}

func TestCalibrateClientWorkHitsTarget(t *testing.T) {
	sim, inf := testInfra(t)
	na := inf.DC("NA")
	step := sim.Clock().Step()
	target := 2.2 // LOGIN duration from Table 5.1 (average series)
	calibrated, err := CalibrateClientWork(loginOp(), NewBinding(inf, na, na), step, target)
	if err != nil {
		t.Fatal(err)
	}
	est, err := Estimate(calibrated, NewBinding(inf, na, na), step)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est-target) > 0.01 {
		t.Errorf("calibrated estimate = %v, want %v", est, target)
	}
	// And the simulated isolated run lands on the target too.
	b := NewBinding(inf, na, na)
	run, err := Instantiate(calibrated, b)
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(run)
		}
	}))
	if err := sim.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}
	got, _ := sim.Responses.MeanAll("LOGIN", "NA")
	if math.Abs(got-target)/target > 0.05 {
		t.Errorf("simulated = %v, want %v within 5%%", got, target)
	}
}

func TestCalibrateRejectsImpossibleTarget(t *testing.T) {
	sim, inf := testInfra(t)
	na := inf.DC("NA")
	// Target far below the op's intrinsic cost must error.
	if _, err := CalibrateClientWork(loginOp(), NewBinding(inf, na, na),
		sim.Clock().Step(), 0.001); err == nil {
		t.Error("impossible calibration target accepted")
	}
}

// Property: Scale distributes over TotalCost for any factor.
func TestScaleDistributes(t *testing.T) {
	op := loginOp()
	f := func(raw uint8) bool {
		factor := float64(raw%50)/10 + 0.1
		scaled := op.Scale("S", factor)
		a := scaled.TotalCost()
		b := op.TotalCost().Scale(factor)
		return math.Abs(a.CPUCycles-b.CPUCycles) < 1 &&
			math.Abs(a.NetBytes-b.NetBytes) < 1 &&
			math.Abs(a.MemBytes-b.MemBytes) < 1 &&
			math.Abs(a.DiskBytes-b.DiskBytes) < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
