package topology

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/hardware"
)

// ShardPlan is the per-datacenter partition of the infrastructure for the
// sharded PDES engine: every agent of a data center — switch, client
// link, daemon line, tier hardware, SAN, clients — lands on its DC's
// shard, and each directed WAN link lands on the shard of its destination
// DC (the link delivers work into that shard, so applying its mailbox
// entries shard-locally keeps the hand-off on one worker).
//
// The partition is a locality optimization, never a correctness knob: the
// simulation's barriers are window boundaries, so any assignment yields
// bit-identical results (core.SetShardAssignment documents the fallback).
// Grouping a DC's agents on one worker is what makes the assignment worth
// configuring — a cascade hop almost always targets the same DC it
// completed in, so mailbox application stays cache-local.
type ShardPlan struct {
	// Shards is the shard count the plan was built for.
	Shards int
	// Assign maps core.AgentID to owning shard, sized to the agent
	// population at build time.
	Assign []int32
	// DCShard maps each data-center name to its shard.
	DCShard map[string]int
	// LookaheadSec[w] is the conservative lookahead bound of shard w: the
	// minimum latency, in seconds, over all WAN links (primary and
	// backup) entering the shard from another shard. No event generated
	// on a remote shard can affect shard w sooner than this bound after
	// crossing the WAN — the classic distance-based PDES window. +Inf
	// when nothing enters the shard. The runtime spends this slack two
	// ways. Structurally: shard-local cascades never cross shards at all,
	// so spans among lane-confined work are bounded only by global-source
	// due times and collector boundaries. Numerically: the compile step
	// hands this slice to core.SetShardLookahead, and while cross-capable
	// message chains are in flight the span scheduler stretches windows
	// up to min over finite entries of TicksIn(LookaheadSec[w]) past the
	// current tick — any mid-span cross-shard hand-off rides a transit
	// link whose latency covers at least that many ticks, so the posted
	// message is provably due beyond the span's end and parks in the
	// target shard's inbox until the next application point. Every
	// cross-shard mailbox message carries its WAN-delayed due time,
	// audited at application (see DESIGN.md, "Lookahead and window
	// stretching").
	LookaheadSec []float64
}

// PartitionByDC builds the per-datacenter shard plan: data centers in
// sorted name order are dealt round-robin onto the shards, so DC i lands
// on shard i mod n. Shard counts above the DC count leave the surplus
// shards empty — correct but wasteful, which is why the declarative
// surfaces (documents, the CLI) reject them before getting here.
func (inf *Infrastructure) PartitionByDC(shards int) (*ShardPlan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("topology: shard count %d < 1", shards)
	}
	p := &ShardPlan{
		Shards:       shards,
		Assign:       make([]int32, inf.sim.AgentCount()),
		DCShard:      make(map[string]int, len(inf.dcOrder)),
		LookaheadSec: make([]float64, shards),
	}
	for w := range p.LookaheadSec {
		p.LookaheadSec[w] = math.Inf(1)
	}
	// Agents not reached by the structural walk below (none today; custom
	// agents registered outside Build would be) default to ID modulo n,
	// matching the core fallback.
	for id := range p.Assign {
		p.Assign[id] = int32(id % shards)
	}
	assign := func(w int, ids ...core.AgentID) {
		for _, id := range ids {
			p.Assign[id] = int32(w)
		}
	}
	for i, name := range inf.dcOrder {
		w := i % shards
		p.DCShard[name] = w
		dc := inf.DCs[name]
		assign(w, dc.Switch.ID(), dc.ClientLink.ID(), dc.Daemon.ID())
		for _, tier := range dc.Tiers {
			for _, srv := range tier.Servers {
				assign(w, srv.CPU.ID(), srv.NIC.ID(), srv.Link.ID())
				if srv.RAID != nil {
					assign(w, srv.RAID.ID())
				}
			}
			if tier.SAN != nil {
				assign(w, tier.SAN.ID(), tier.SANLink.ID())
			}
		}
		if dc.Clients != nil {
			assign(w, dc.Clients.Local.ID())
			for _, slot := range dc.Clients.Slots {
				assign(w, slot.NIC.ID())
			}
		}
	}
	for _, set := range []map[wanKey]*hardware.Link{inf.links, inf.backups} {
		for k, l := range set {
			wd := p.DCShard[k.to]
			assign(wd, l.ID())
			if ws := p.DCShard[k.from]; ws != wd {
				if lat := l.Latency(); lat < p.LookaheadSec[wd] {
					p.LookaheadSec[wd] = lat
				}
			}
		}
	}
	return p, nil
}
