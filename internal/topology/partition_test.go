package topology

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestPartitionByDCKeepsDCsWhole checks the partition rule on the
// two-DC test infrastructure: DCs land round-robin in sorted name order
// (EU on shard 0, NA on shard 1 at two shards), every component of a DC
// lands on its DC's shard, and each WAN link lands on its destination's
// shard.
func TestPartitionByDCKeepsDCsWhole(t *testing.T) {
	sim, inf := buildTestInfra(t)
	defer sim.Shutdown()
	p, err := inf.PartitionByDC(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Assign) != sim.AgentCount() {
		t.Fatalf("assignment covers %d agents, registered %d", len(p.Assign), sim.AgentCount())
	}
	if p.DCShard["EU"] != 0 || p.DCShard["NA"] != 1 {
		t.Fatalf("DC shards %v, want EU=0 NA=1 (sorted round-robin)", p.DCShard)
	}
	for name, dc := range inf.DCs {
		w := int32(p.DCShard[name])
		check := func(id core.AgentID, what string) {
			t.Helper()
			if p.Assign[id] != w {
				t.Errorf("%s %s on shard %d, want %s's shard %d", name, what, p.Assign[id], name, w)
			}
		}
		check(dc.Switch.ID(), "switch")
		check(dc.ClientLink.ID(), "client link")
		check(dc.Daemon.ID(), "daemon")
		for _, tier := range dc.Tiers {
			for _, srv := range tier.Servers {
				check(srv.CPU.ID(), "cpu")
				check(srv.NIC.ID(), "nic")
				check(srv.Link.ID(), "link")
				if srv.RAID != nil {
					check(srv.RAID.ID(), "raid")
				}
			}
			if tier.SAN != nil {
				check(tier.SAN.ID(), "san")
				check(tier.SANLink.ID(), "san link")
			}
		}
		if dc.Clients != nil {
			check(dc.Clients.Local.ID(), "client local queue")
			for _, slot := range dc.Clients.Slots {
				check(slot.NIC.ID(), "client nic")
			}
		}
	}
	for k, l := range inf.links {
		if want := int32(p.DCShard[k.to]); p.Assign[l.ID()] != want {
			t.Errorf("WAN %s->%s on shard %d, want destination shard %d",
				k.from, k.to, p.Assign[l.ID()], want)
		}
	}
}

// TestPartitionLookahead checks the conservative bound: with the two DCs
// on different shards, each shard's lookahead is the 45 ms latency of its
// inbound transatlantic link; with everything on one shard there is no
// inter-shard edge and the bound is +Inf.
func TestPartitionLookahead(t *testing.T) {
	sim, inf := buildTestInfra(t)
	defer sim.Shutdown()
	p, err := inf.PartitionByDC(2)
	if err != nil {
		t.Fatal(err)
	}
	for w, la := range p.LookaheadSec {
		if la != 0.045 {
			t.Errorf("shard %d lookahead %v s, want 0.045 (min inbound WAN latency)", w, la)
		}
	}
	p1, err := inf.PartitionByDC(1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(p1.LookaheadSec[0], 1) {
		t.Errorf("single-shard lookahead %v, want +Inf (no inter-shard edges)", p1.LookaheadSec[0])
	}
}

// TestPartitionShardsBeyondDCs checks the tolerated-but-wasteful shape:
// more shards than DCs leaves the surplus shards empty (the declarative
// surfaces reject this before it gets here, the planner itself must not).
func TestPartitionShardsBeyondDCs(t *testing.T) {
	sim, inf := buildTestInfra(t)
	defer sim.Shutdown()
	p, err := inf.PartitionByDC(5)
	if err != nil {
		t.Fatal(err)
	}
	var perShard [5]int
	for _, w := range p.Assign {
		if w < 0 || w >= 5 {
			t.Fatalf("assignment %d out of range", w)
		}
		perShard[w]++
	}
	for w := 2; w < 5; w++ {
		if perShard[w] != 0 {
			t.Errorf("shard %d holds %d agents, want 0 (only 2 DCs)", w, perShard[w])
		}
	}
	if perShard[0] == 0 || perShard[1] == 0 {
		t.Errorf("DC shards hold %d/%d agents, want both populated", perShard[0], perShard[1])
	}

	if _, err := inf.PartitionByDC(0); err == nil {
		t.Error("PartitionByDC(0) succeeded, want error")
	}
}
