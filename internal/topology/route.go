package topology

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hardware"
)

// Cost is the hardware-agnostic parameter array R carried by every cascade
// message (§3.3.2): computational (Rp), network (Rt), memory (Rm) and disk
// (Rd) cost of the relationship between two holons.
type Cost struct {
	CPUCycles float64 // Rp — cycles consumed at the destination CPU
	NetBytes  float64 // Rt — bytes moved across the network path
	MemBytes  float64 // Rm — bytes held at the destination during processing
	DiskBytes float64 // Rd — bytes read/written at the destination storage
}

// Add returns the component-wise sum of two cost arrays.
func (c Cost) Add(o Cost) Cost {
	return Cost{
		CPUCycles: c.CPUCycles + o.CPUCycles,
		NetBytes:  c.NetBytes + o.NetBytes,
		MemBytes:  c.MemBytes + o.MemBytes,
		DiskBytes: c.DiskBytes + o.DiskBytes,
	}
}

// Scale returns the cost multiplied by f.
func (c Cost) Scale(f float64) Cost {
	return Cost{
		CPUCycles: c.CPUCycles * f,
		NetBytes:  c.NetBytes * f,
		MemBytes:  c.MemBytes * f,
		DiskBytes: c.DiskBytes * f,
	}
}

type endpointKind uint8

const (
	epClient endpointKind = iota
	epServer
	epDaemon
)

// Endpoint is a resolved message endpoint: a concrete client slot, server
// instance or daemon process. The cascade executor resolves role references
// (client, Tapp, Tdb, ...) into endpoints at expansion time, applying load
// balancing.
type Endpoint struct {
	kind   endpointKind
	dc     *DataCenter
	server *Server
	client *ClientSlot
}

// ClientEndpoint wraps a client slot.
func ClientEndpoint(slot *ClientSlot) Endpoint {
	return Endpoint{kind: epClient, dc: slot.Pool.DC, client: slot}
}

// ServerEndpoint wraps a server instance.
func ServerEndpoint(s *Server) Endpoint {
	return Endpoint{kind: epServer, dc: s.Tier.DC, server: s}
}

// DaemonEndpoint wraps the daemon process of a data center.
func DaemonEndpoint(dc *DataCenter) Endpoint {
	return Endpoint{kind: epDaemon, dc: dc}
}

// DC returns the endpoint's data center.
func (e Endpoint) DC() *DataCenter { return e.dc }

// Server returns the endpoint's server (nil for clients and daemons).
func (e Endpoint) Server() *Server { return e.server }

// daemonGHz converts daemon-side cycle costs to time; daemon processes are
// lightweight schedulers (§6.4.3) hosted without hardware contention.
const daemonGHz = 2.0

// Path returns the DC-name sequence from one data center to another,
// including both endpoints. Routing prefers paths made entirely of live
// primary links, even longer ones; backup links (L_EU->AFR, L_EU->AS1 in
// Fig. 6-4) are only considered when no primary route survives — which is
// why they sit at 0% utilization in Tables 6.1 and 7.3.
func (inf *Infrastructure) Path(from, to string) ([]string, error) {
	key := wanKey{from, to}
	if p, ok := inf.routeCache[key]; ok {
		return p, nil
	}
	if from == to {
		p := []string{from}
		inf.routeCache[key] = p
		return p, nil
	}
	path := inf.bfs(from, to, false)
	if path == nil {
		path = inf.bfs(from, to, true)
	}
	if path == nil {
		return nil, fmt.Errorf("topology: no route %s -> %s", from, to)
	}
	inf.routeCache[key] = path
	return path, nil
}

// bfs searches shortest hop count over live primary links, optionally also
// crossing live backup links. Deterministic tie-break by DC name order.
func (inf *Infrastructure) bfs(from, to string, useBackups bool) []string {
	prev := map[string]string{from: from}
	frontier := []string{from}
	for len(frontier) > 0 && prev[to] == "" {
		var next []string
		for _, cur := range frontier {
			for _, nb := range inf.dcOrder {
				if _, seen := prev[nb]; seen {
					continue
				}
				l := inf.primaryLink(cur, nb)
				if l == nil && useBackups {
					l = inf.backupAlive(cur, nb)
				}
				if l == nil {
					continue
				}
				prev[nb] = cur
				next = append(next, nb)
			}
		}
		frontier = next
	}
	if prev[to] == "" {
		return nil
	}
	var rev []string
	for cur := to; cur != from; cur = prev[cur] {
		rev = append(rev, cur)
	}
	path := make([]string, 0, len(rev)+1)
	path = append(path, from)
	for i := len(rev) - 1; i >= 0; i-- {
		path = append(path, rev[i])
	}
	return path
}

// primaryLink returns the live primary directed link, or nil.
func (inf *Infrastructure) primaryLink(from, to string) *hardware.Link {
	if l := inf.links[wanKey{from, to}]; l != nil && !l.Failed() {
		return l
	}
	return nil
}

// backupAlive returns the live backup directed link, or nil.
func (inf *Infrastructure) backupAlive(from, to string) *hardware.Link {
	if l := inf.backups[wanKey{from, to}]; l != nil && !l.Failed() {
		return l
	}
	return nil
}

// usableLink returns the live directed link between adjacent DCs: the
// primary if alive, else the backup if alive, else nil.
func (inf *Infrastructure) usableLink(from, to string) *hardware.Link {
	if l := inf.links[wanKey{from, to}]; l != nil && !l.Failed() {
		return l
	}
	if l := inf.backups[wanKey{from, to}]; l != nil && !l.Failed() {
		return l
	}
	return nil
}

// ExpandHop expands one cascade message between two holons into the chain
// of hardware stages it traverses, implementing the decomposition of
// Eqs. 3.2-3.5: origin NIC, network path (local links, switches, WAN
// links), destination NIC, then destination processing (memory occupancy,
// CPU cycles and storage access with cache-hit bypass).
func (inf *Infrastructure) ExpandHop(from, to Endpoint, cost Cost) (core.MessagePlan, error) {
	// A hop expands into at most origin NIC+link, the switch/link fabric
	// along the DC path, destination link+NIC and the processing stages;
	// presizing for the common single-DC case keeps the append chain to
	// one allocation.
	stages := make([]core.Stage, 0, 12)
	add := func(q core.QueueAgent, demand float64) {
		if demand > 0 {
			stages = append(stages, core.Stage{Queue: q, Demand: demand})
		}
	}
	net := cost.NetBytes

	// Origin side: NIC then egress to the DC switch.
	switch from.kind {
	case epClient:
		add(from.client.NIC, net)
		add(from.dc.ClientLink, net)
	case epServer:
		add(from.server.NIC, net)
		add(from.server.Link, net)
	case epDaemon:
		// Daemons attach directly to the DC switch fabric.
	}

	// Network fabric: switches and WAN links along the DC path. The
	// same-DC case — the bulk of intra-platform traffic — touches only the
	// local switch, without a route lookup.
	switch {
	case net <= 0:
	case from.dc == to.dc:
		add(from.dc.Switch, net)
	default:
		path, err := inf.Path(from.dc.Name, to.dc.Name)
		if err != nil {
			return core.MessagePlan{}, err
		}
		add(inf.DCs[path[0]].Switch, net)
		for i := 1; i < len(path); i++ {
			l := inf.usableLink(path[i-1], path[i])
			if l == nil {
				return core.MessagePlan{}, fmt.Errorf("topology: link %s->%s vanished", path[i-1], path[i])
			}
			add(l, net)
			add(inf.DCs[path[i]].Switch, net)
		}
	}

	// Destination side: ingress, NIC, then processing.
	switch to.kind {
	case epClient:
		add(to.dc.ClientLink, net)
		add(to.client.NIC, net)
		pool := to.client.Pool
		if d := pool.LocalDelay(cost.CPUCycles, cost.DiskBytes); d > 0 {
			stages = append(stages, core.Stage{Queue: pool.Local, Delay: d})
		}
	case epDaemon:
		if cost.CPUCycles > 0 {
			stages = append(stages, core.Stage{
				Queue: to.dc.Daemon,
				Delay: cost.CPUCycles / (daemonGHz * 1e9),
			})
		}
	case epServer:
		add(to.server.Link, net)
		add(to.server.NIC, net)
		stages = inf.appendServerProcessing(stages, to.server, cost)
	}
	return core.MessagePlan{Stages: stages}, nil
}

// appendServerProcessing appends the destination-holon stages at a server
// into the hop's stage slice (no intermediate allocation): memory
// occupancy held across CPU service and the storage access, with the
// storage stage bypassed on a memory cache hit (Fig. 3-5).
func (inf *Infrastructure) appendServerProcessing(stages []core.Stage, srv *Server, cost Cost) []core.Stage {
	start := len(stages)
	if cost.CPUCycles > 0 {
		stages = append(stages, core.Stage{Queue: srv.CPU, Demand: cost.CPUCycles})
	}
	if cost.DiskBytes > 0 && !srv.Mem.Hit() {
		if srv.RAID != nil {
			stages = append(stages, core.Stage{Queue: srv.RAID, Demand: cost.DiskBytes})
		} else if tier := srv.Tier; tier.SAN != nil {
			stages = append(stages,
				core.Stage{Queue: tier.SANLink, Demand: cost.DiskBytes},
				core.Stage{Queue: tier.SAN, Demand: cost.DiskBytes},
			)
		}
	}
	if len(stages) > start && cost.MemBytes > 0 {
		mem, bytes := srv.Mem, cost.MemBytes
		stages[start].Begin = func() { mem.Acquire(bytes) }
		last := &stages[len(stages)-1]
		last.End = func() { mem.Release(bytes) }
	}
	return stages
}
