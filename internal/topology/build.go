package topology

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/hardware"
)

// Server is a server holon: NIC, CPU, memory and optional RAID, plus the
// local link tying it to the data center switch (Fig. 3-9).
type Server struct {
	Name string
	CPU  *hardware.CPU
	Mem  *hardware.Memory
	NIC  *hardware.NIC
	RAID *hardware.RAID // nil when the tier uses a SAN
	Link *hardware.Link // server <-> DC switch
	Tier *Tier
}

// Tier is an array of identical server holons, optionally backed by a SAN.
type Tier struct {
	Name    string
	DC      *DataCenter
	Servers []*Server
	SAN     *hardware.SAN
	SANLink *hardware.Link
	rr      int
}

// Pick returns the next server by round-robin — the default load-balancing
// policy applied at message expansion time.
func (t *Tier) Pick() *Server {
	s := t.Servers[t.rr]
	t.rr = (t.rr + 1) % len(t.Servers)
	return s
}

// PickLeastLoaded returns the server with the shallowest CPU queue,
// breaking ties by index for determinism.
func (t *Tier) PickLeastLoaded() *Server {
	best := t.Servers[0]
	depth := best.CPU.QueueDepth()
	for _, s := range t.Servers[1:] {
		if d := s.CPU.QueueDepth(); d < depth {
			best, depth = s, d
		}
	}
	return best
}

// TotalCores returns the core count across the tier.
func (t *Tier) TotalCores() int {
	n := 0
	for _, s := range t.Servers {
		n += s.CPU.Spec().TotalCores()
	}
	return n
}

// DataCenter is a data center holon: tiers interconnected through a switch,
// plus the client access link and the local client population.
type DataCenter struct {
	Name       string
	Switch     *hardware.Switch
	ClientLink *hardware.Link
	Tiers      map[string]*Tier
	Clients    *ClientPool // nil when no clients are attached
	// Daemon is the delay line hosting background daemon processes (the R
	// and I processes of §6.4.3) — lightweight, uncontended.
	Daemon *core.DelayLine
}

// Tier returns the named tier, panicking on unknown names: a cascade that
// references a missing tier is a scenario bug.
func (d *DataCenter) Tier(name string) *Tier {
	t := d.Tiers[name]
	if t == nil {
		panic(fmt.Sprintf("topology: DC %s has no tier %q", d.Name, name))
	}
	return t
}

// HasTier reports whether the data center hosts the named tier.
func (d *DataCenter) HasTier(name string) bool { return d.Tiers[name] != nil }

// wanKey is a directed DC pair.
type wanKey struct{ from, to string }

// Infrastructure is the root holon: all data centers plus the WAN graph.
type Infrastructure struct {
	sim     *core.Simulation
	DCs     map[string]*DataCenter
	dcOrder []string
	links   map[wanKey]*hardware.Link
	backups map[wanKey]*hardware.Link

	routeVersion int
	routeCache   map[wanKey][]string
}

// Build materializes the infrastructure specification into agents
// registered with the simulation.
func Build(sim *core.Simulation, spec InfraSpec) (*Infrastructure, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	inf := &Infrastructure{
		sim:        sim,
		DCs:        make(map[string]*DataCenter),
		links:      make(map[wanKey]*hardware.Link),
		backups:    make(map[wanKey]*hardware.Link),
		routeCache: make(map[wanKey][]string),
	}
	for _, dcSpec := range spec.DCs {
		dc := buildDC(sim, dcSpec)
		inf.DCs[dcSpec.Name] = dc
		inf.dcOrder = append(inf.dcOrder, dcSpec.Name)
	}
	sort.Strings(inf.dcOrder)
	for _, w := range spec.WAN {
		fwd := hardware.NewLink(sim, fmt.Sprintf("wan:%s->%s", w.From, w.To), w.Link)
		rev := hardware.NewLink(sim, fmt.Sprintf("wan:%s->%s", w.To, w.From), w.Link)
		if w.Backup {
			inf.backups[wanKey{w.From, w.To}] = fwd
			inf.backups[wanKey{w.To, w.From}] = rev
		} else {
			inf.links[wanKey{w.From, w.To}] = fwd
			inf.links[wanKey{w.To, w.From}] = rev
		}
	}
	for dcName, cs := range spec.Clients {
		dc := inf.DCs[dcName]
		pool, err := newClientPool(sim, dc, cs)
		if err != nil {
			return nil, err
		}
		dc.Clients = pool
	}
	return inf, nil
}

func buildDC(sim *core.Simulation, spec DCSpec) *DataCenter {
	dc := &DataCenter{
		Name:   spec.Name,
		Switch: hardware.NewSwitch(sim, "sw:"+spec.Name, spec.SwitchGbps),
		Tiers:  make(map[string]*Tier),
		Daemon: core.NewDelayLine(sim, "daemon:"+spec.Name),
	}
	dc.ClientLink = hardware.NewLink(sim, fmt.Sprintf("clink:%s", spec.Name), spec.ClientLink)
	for _, ts := range spec.Tiers {
		tier := &Tier{Name: ts.Name, DC: dc}
		for i := 0; i < ts.Servers; i++ {
			name := fmt.Sprintf("%s:%s:%d", spec.Name, ts.Name, i)
			srv := &Server{
				Name: name,
				CPU:  hardware.NewCPU(sim, "cpu:"+name, ts.Server.CPU),
				Mem: hardware.NewMemory(ts.Server.MemGB*1e9, ts.Server.CacheHitRate,
					core.DeriveSeed(sim.Seed(), uint64(sim.NextAgentID())*2654435761+uint64(i))),
				NIC:  hardware.NewNIC(sim, "nic:"+name, ts.Server.NICGbps),
				Link: hardware.NewLink(sim, "llink:"+name, ts.LocalLink),
				Tier: tier,
			}
			if ts.Server.RAID != nil {
				srv.RAID = hardware.NewRAID(sim, "raid:"+name, *ts.Server.RAID)
			}
			tier.Servers = append(tier.Servers, srv)
		}
		if ts.SAN != nil {
			tname := spec.Name + ":" + ts.Name
			tier.SAN = hardware.NewSAN(sim, "san:"+tname, *ts.SAN)
			tier.SANLink = hardware.NewLink(sim, "slink:"+tname, *ts.SANLink)
		}
		dc.Tiers[ts.Name] = tier
	}
	return dc
}

// DC returns the named data center, panicking on unknown names.
func (inf *Infrastructure) DC(name string) *DataCenter {
	dc := inf.DCs[name]
	if dc == nil {
		panic(fmt.Sprintf("topology: unknown DC %q", name))
	}
	return dc
}

// DCNames returns the data center names in sorted order.
func (inf *Infrastructure) DCNames() []string { return inf.dcOrder }

// WANLink returns the directed primary WAN link between two adjacent DCs,
// or nil when none exists.
func (inf *Infrastructure) WANLink(from, to string) *hardware.Link {
	return inf.links[wanKey{from, to}]
}

// BackupLink returns the directed backup link between two DCs, or nil.
func (inf *Infrastructure) BackupLink(from, to string) *hardware.Link {
	return inf.backups[wanKey{from, to}]
}

// FailWAN marks both directions of a WAN connection failed and invalidates
// cached routes, diverting subsequent traffic onto backup paths. The
// semantics are complete-then-divert, pinned by TestFailWANInFlight:
// messages whose route was pinned before the failure — at plan expansion —
// drain through the link at full rate as if healthy (route withdrawal
// drains egress buffers; see hardware.Link.Fail), while every message
// expanded after this call routes around the failure.
func (inf *Infrastructure) FailWAN(a, b string) {
	for _, k := range []wanKey{{a, b}, {b, a}} {
		if l := inf.links[k]; l != nil {
			l.Fail()
		}
	}
	inf.routeVersion++
	inf.routeCache = make(map[wanKey][]string)
}

// RestoreWAN restores both directions of a WAN connection.
func (inf *Infrastructure) RestoreWAN(a, b string) {
	for _, k := range []wanKey{{a, b}, {b, a}} {
		if l := inf.links[k]; l != nil {
			l.Restore()
		}
	}
	inf.routeVersion++
	inf.routeCache = make(map[wanKey][]string)
}
