package topology

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hardware"
)

// ClientSlot is one client holon: its own NIC (clients do not contend with
// each other for network cards) plus references to the shared client-side
// delay line that models local CPU and disk time without contention —
// thousands of independent workstations do not share those resources.
type ClientSlot struct {
	Index int
	NIC   *hardware.NIC
	Pool  *ClientPool
}

// ClientPool is the client population of one data center. Slots are
// materialized up front (idle agents cost almost nothing per tick) and
// handed out round-robin to launched operations, so concurrently active
// clients use distinct NICs.
type ClientPool struct {
	DC    *DataCenter
	Spec  ClientSpec
	Slots []*ClientSlot
	// Local models client-side processing (CPU cycles at the client's GHz,
	// reads/writes at the client's disk rate) as pure delay.
	Local *core.DelayLine
	rr    int
}

func newClientPool(sim *core.Simulation, dc *DataCenter, spec ClientSpec) (*ClientPool, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p := &ClientPool{
		DC:    dc,
		Spec:  spec,
		Local: core.NewDelayLine(sim, "clocal:"+dc.Name),
	}
	for i := 0; i < spec.Slots; i++ {
		p.Slots = append(p.Slots, &ClientSlot{
			Index: i,
			NIC:   hardware.NewNIC(sim, fmt.Sprintf("cnic:%s:%d", dc.Name, i), spec.NICGbps),
			Pool:  p,
		})
	}
	return p, nil
}

// Next hands out the next client slot round-robin.
func (p *ClientPool) Next() *ClientSlot {
	s := p.Slots[p.rr]
	p.rr = (p.rr + 1) % len(p.Slots)
	return s
}

// LocalDelay converts client-side costs into seconds of uncontended local
// processing: cycles at the client CPU frequency plus bytes at the client
// disk throughput.
func (p *ClientPool) LocalDelay(cycles, diskBytes float64) float64 {
	return cycles/(p.Spec.GHz*1e9) + diskBytes/(p.Spec.DiskMBs*1e6)
}
