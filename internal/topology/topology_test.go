package topology

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/hardware"
)

// twoDCSpec builds a compact two-data-center infrastructure for tests:
// NA hosts app+db tiers, EU hosts an fs tier; clients at both sites.
func twoDCSpec() InfraSpec {
	srv := ServerSpec{
		CPU:          hardware.CPUSpec{Sockets: 2, Cores: 4, GHz: 2},
		MemGB:        32,
		CacheHitRate: 0,
		NICGbps:      1,
		RAID: &hardware.RAIDSpec{
			Disks:    2,
			Disk:     hardware.DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0},
			CtrlGbps: 4, HitRate: 0,
		},
	}
	localLink := hardware.LinkSpec{Gbps: 1, LatencyMS: 0.45}
	sanSrv := srv
	sanSrv.RAID = nil
	return InfraSpec{
		DCs: []DCSpec{
			{
				Name: "NA", SwitchGbps: 10,
				ClientLink: hardware.LinkSpec{Gbps: 1, LatencyMS: 1},
				Tiers: []TierSpec{
					{Name: "app", Servers: 2, Server: srv, LocalLink: localLink},
					{Name: "db", Servers: 1, Server: sanSrv, LocalLink: localLink,
						SAN: &hardware.SANSpec{
							Disks:        4,
							Disk:         hardware.DiskSpec{CtrlGbps: 4, MBps: 120, HitRate: 0},
							FCSwitchGbps: 8, CtrlGbps: 4, FCALGbps: 4, HitRate: 0,
						},
						SANLink: &hardware.LinkSpec{Gbps: 4, LatencyMS: 0.5}},
				},
			},
			{
				Name: "EU", SwitchGbps: 10,
				ClientLink: hardware.LinkSpec{Gbps: 1, LatencyMS: 1},
				Tiers: []TierSpec{
					{Name: "fs", Servers: 1, Server: srv, LocalLink: localLink},
				},
			},
		},
		WAN: []WANSpec{
			{From: "NA", To: "EU", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 45}},
		},
		Clients: map[string]ClientSpec{
			"NA": {Slots: 4, NICGbps: 1, GHz: 2, DiskMBs: 100},
			"EU": {Slots: 4, NICGbps: 1, GHz: 2, DiskMBs: 100},
		},
	}
}

func buildTestInfra(t *testing.T) (*core.Simulation, *Infrastructure) {
	t.Helper()
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	inf, err := Build(sim, twoDCSpec())
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func TestBuildValidation(t *testing.T) {
	sim := core.NewSimulation(core.Config{})
	cases := []InfraSpec{
		{}, // no DCs
		{DCs: []DCSpec{{Name: "", SwitchGbps: 1}}},
		{DCs: []DCSpec{{Name: "A", SwitchGbps: 10,
			ClientLink: hardware.LinkSpec{Gbps: 1},
			Tiers: []TierSpec{{Name: "t", Servers: 1,
				Server:    ServerSpec{CPU: hardware.CPUSpec{Sockets: 1, Cores: 1, GHz: 1}, MemGB: 1, NICGbps: 1},
				LocalLink: hardware.LinkSpec{Gbps: 1}}}}}}, // no RAID nor SAN
	}
	for i, spec := range cases {
		if _, err := Build(sim, spec); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestBuildWANValidation(t *testing.T) {
	sim := core.NewSimulation(core.Config{})
	spec := twoDCSpec()
	spec.WAN = append(spec.WAN, WANSpec{From: "NA", To: "MARS",
		Link: hardware.LinkSpec{Gbps: 1}})
	if _, err := Build(sim, spec); err == nil {
		t.Error("unknown WAN endpoint accepted")
	}
	spec = twoDCSpec()
	spec.WAN[0].From = spec.WAN[0].To
	if _, err := Build(sim, spec); err == nil {
		t.Error("WAN self-loop accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	_, inf := buildTestInfra(t)
	na := inf.DC("NA")
	if len(na.Tier("app").Servers) != 2 {
		t.Errorf("app servers = %d", len(na.Tier("app").Servers))
	}
	if na.Tier("db").SAN == nil {
		t.Error("db tier missing SAN")
	}
	if got := na.Tier("app").TotalCores(); got != 16 {
		t.Errorf("app tier cores = %d, want 16", got)
	}
	if inf.WANLink("NA", "EU") == nil || inf.WANLink("EU", "NA") == nil {
		t.Error("WAN links missing in either direction")
	}
	if !na.HasTier("app") || na.HasTier("nope") {
		t.Error("HasTier misreports")
	}
	if names := inf.DCNames(); len(names) != 2 || names[0] != "EU" {
		t.Errorf("DCNames = %v", names)
	}
}

func TestUnknownLookupsPanic(t *testing.T) {
	_, inf := buildTestInfra(t)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown DC did not panic")
			}
		}()
		inf.DC("MARS")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("unknown tier did not panic")
			}
		}()
		inf.DC("NA").Tier("nope")
	}()
}

func TestTierRoundRobinPick(t *testing.T) {
	_, inf := buildTestInfra(t)
	app := inf.DC("NA").Tier("app")
	a, b, c := app.Pick(), app.Pick(), app.Pick()
	if a == b {
		t.Error("round robin returned the same server twice in a row")
	}
	if a != c {
		t.Error("round robin did not wrap around")
	}
}

func TestPathSameAndCrossDC(t *testing.T) {
	_, inf := buildTestInfra(t)
	p, err := inf.Path("NA", "NA")
	if err != nil || len(p) != 1 {
		t.Errorf("Path(NA,NA) = %v, %v", p, err)
	}
	p, err = inf.Path("NA", "EU")
	if err != nil || len(p) != 2 || p[1] != "EU" {
		t.Errorf("Path(NA,EU) = %v, %v", p, err)
	}
}

func TestPathFailsWithoutRoute(t *testing.T) {
	_, inf := buildTestInfra(t)
	inf.FailWAN("NA", "EU")
	if _, err := inf.Path("NA", "EU"); err == nil {
		t.Error("path exists after failing the only link")
	}
	inf.RestoreWAN("NA", "EU")
	if _, err := inf.Path("NA", "EU"); err != nil {
		t.Errorf("path missing after restore: %v", err)
	}
}

// runOp drives one operation with the given plan through the simulation.
func runOp(t *testing.T, sim *core.Simulation, name string, plan core.MessagePlan) float64 {
	t.Helper()
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(core.OpRun{
				Name: name, DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan { return []core.MessagePlan{plan} },
			})
		}
	}))
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	d, ok := sim.Responses.MeanAll(name, "NA")
	if !ok {
		t.Fatalf("no response for %s", name)
	}
	return d
}

func TestExpandHopLocalClientToServer(t *testing.T) {
	sim, inf := buildTestInfra(t)
	na := inf.DC("NA")
	slot := na.Clients.Next()
	srv := na.Tier("app").Pick()
	plan, err := inf.ExpandHop(ClientEndpoint(slot), ServerEndpoint(srv), Cost{
		CPUCycles: 2e9 * 0.05, // 50 ms at 2 GHz... spread over 8 cores? single task: 50ms on one core
		NetBytes:  1.25e6,     // 10 ms on 1 Gbps elements
		MemBytes:  1e9,
		DiskBytes: 10e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Expected stages: cNIC, clientLink, switch, serverLink, serverNIC,
	// CPU, RAID = 7.
	if len(plan.Stages) != 7 {
		t.Fatalf("stage count = %d, want 7", len(plan.Stages))
	}
	dur := runOp(t, sim, "HOP", plan)
	// Lower bound: cpu 50ms + ~4x10ms transfers + disk 10e6/(2x100MB/s).
	if dur < 0.09 || dur > 1.0 {
		t.Errorf("hop duration = %v, outside plausible band", dur)
	}
}

func TestExpandHopMemoryOccupancyBalanced(t *testing.T) {
	sim, inf := buildTestInfra(t)
	na := inf.DC("NA")
	srv := na.Tier("app").Servers[0]
	slot := na.Clients.Next()
	plan, err := inf.ExpandHop(ClientEndpoint(slot), ServerEndpoint(srv), Cost{
		CPUCycles: 1e8, NetBytes: 1e5, MemBytes: 4e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	runOp(t, sim, "MEM", plan)
	if used := srv.Mem.Used(); used != 0 {
		t.Errorf("memory leaked: %v bytes still held", used)
	}
	if srv.Mem.Peak() < 4e9 {
		t.Errorf("peak = %v, occupancy never acquired", srv.Mem.Peak())
	}
}

func TestExpandHopCrossDCUsesWAN(t *testing.T) {
	sim, inf := buildTestInfra(t)
	eu := inf.DC("EU")
	na := inf.DC("NA")
	slot := eu.Clients.Next()
	srv := na.Tier("app").Pick()
	plan, err := inf.ExpandHop(ClientEndpoint(slot), ServerEndpoint(srv), Cost{
		CPUCycles: 1e8, NetBytes: 1e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	runOp(t, sim, "XDC", plan)
	wan := inf.WANLink("EU", "NA")
	if got := wan.TakeBusy(); got < 1e6*0.99 {
		t.Errorf("WAN EU->NA carried %v bytes, want ~1e6", got)
	}
	if rev := inf.WANLink("NA", "EU").TakeBusy(); rev != 0 {
		t.Errorf("reverse WAN direction carried %v bytes, want 0", rev)
	}
}

func TestExpandHopSANPath(t *testing.T) {
	sim, inf := buildTestInfra(t)
	na := inf.DC("NA")
	db := na.Tier("db").Pick()
	slot := na.Clients.Next()
	plan, err := inf.ExpandHop(ClientEndpoint(slot), ServerEndpoint(db), Cost{
		CPUCycles: 1e8, NetBytes: 1e5, DiskBytes: 50e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// SAN-backed storage adds SANLink + SAN stages.
	var hasSAN bool
	for _, st := range plan.Stages {
		if st.Queue == na.Tier("db").SAN {
			hasSAN = true
		}
	}
	if !hasSAN {
		t.Fatal("expansion missed the SAN stage")
	}
	runOp(t, sim, "SAN", plan)
}

func TestExpandHopCacheHitSkipsStorage(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	spec := twoDCSpec()
	spec.DCs[0].Tiers[0].Server.CacheHitRate = 1 // always hit
	inf, err := Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	na := inf.DC("NA")
	srv := na.Tier("app").Pick()
	plan, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()), ServerEndpoint(srv), Cost{
		CPUCycles: 1e8, NetBytes: 1e5, DiskBytes: 100e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range plan.Stages {
		if st.Queue == srv.RAID {
			t.Fatal("storage stage present despite guaranteed cache hit")
		}
	}
}

func TestExpandHopDaemonEndpoints(t *testing.T) {
	sim, inf := buildTestInfra(t)
	na, eu := inf.DC("NA"), inf.DC("EU")
	fs := eu.Tier("fs").Pick()
	// Daemon pull request: daemon at NA asks fs at EU (small message), then
	// the file flows back fs -> daemon.
	req, err := inf.ExpandHop(DaemonEndpoint(na), ServerEndpoint(fs), Cost{
		CPUCycles: 1e7, NetBytes: 1e4,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := inf.ExpandHop(ServerEndpoint(fs), DaemonEndpoint(na), Cost{
		CPUCycles: 1e7, NetBytes: 5e7,
	})
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(core.OpRun{
				Name: "PULL", DC: "NA", NumSteps: 2,
				Expand: func(step int) []core.MessagePlan {
					if step == 0 {
						return []core.MessagePlan{req}
					}
					return []core.MessagePlan{resp}
				},
			})
		}
	}))
	if err := sim.RunUntilIdle(120); err != nil {
		t.Fatal(err)
	}
	if n := sim.Responses.Count("PULL", "NA"); n != 1 {
		t.Errorf("PULL completions = %d", n)
	}
}

func TestFailoverToBackupLink(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	spec := twoDCSpec()
	spec.WAN = append(spec.WAN, WANSpec{From: "NA", To: "EU",
		Link: hardware.LinkSpec{Gbps: 0.045, LatencyMS: 80}, Backup: true})
	inf, err := Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	inf.FailWAN("NA", "EU") // fails the primary only
	p, err := inf.Path("NA", "EU")
	if err != nil {
		t.Fatalf("no path via backup: %v", err)
	}
	if len(p) != 2 {
		t.Fatalf("backup path = %v", p)
	}
	na, eu := inf.DC("NA"), inf.DC("EU")
	plan, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()),
		ServerEndpoint(eu.Tier("fs").Pick()), Cost{NetBytes: 1e6, CPUCycles: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	runOp(t, sim, "FAILOVER", plan)
	if got := inf.BackupLink("NA", "EU").TakeBusy(); got < 1e6*0.99 {
		t.Errorf("backup link carried %v bytes, want ~1e6", got)
	}
}

func TestRegisterProbes(t *testing.T) {
	sim, inf := buildTestInfra(t)
	inf.RegisterProbes(sim.Collector)
	keys := sim.Collector.Keys()
	wantKeys := []string{"cpu:NA:app", "cpu:NA:db", "cpu:EU:fs", "mem:NA:app",
		"disk:NA:db", "link:NA->EU", "link:EU->NA", "switch:NA", "clink:EU"}
	joined := strings.Join(keys, ",")
	for _, w := range wantKeys {
		found := false
		for _, k := range keys {
			if k == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("probe %q missing from %s", w, joined)
		}
	}
}

func TestProbeMeasuresCPUUtilization(t *testing.T) {
	sim, inf := buildTestInfra(t)
	inf.RegisterProbes(sim.Collector)
	na := inf.DC("NA")
	srv := na.Tier("app").Servers[0]
	// Saturate one server's 16 GHz-core... occupy 1 core for 1 second out
	// of a 16-core tier over a 1s window => util = 1/16.
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			plan, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()),
				ServerEndpoint(srv), Cost{CPUCycles: 2e9})
			if err != nil {
				t.Fatal(err)
			}
			s.StartOp(core.OpRun{Name: "BUSY", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan { return []core.MessagePlan{plan} }})
		}
	}))
	sim.RunFor(2.0)
	series := sim.Collector.MustSeries("cpu:NA:app")
	// 1 core-second on a 16-core tier over a 2-second run: mean utilization
	// across snapshots should be about 1/32.
	mean := series.Mean(0, 2)
	if mean < 0.02 || mean > 0.05 {
		t.Errorf("mean CPU utilization = %v, want ~0.031", mean)
	}
}
