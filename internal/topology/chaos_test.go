package topology

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hardware"
)

// backupSpec is twoDCSpec plus a thin NA-EU backup link, so failing the
// primary leaves a detour.
func backupSpec() InfraSpec {
	spec := twoDCSpec()
	spec.WAN = append(spec.WAN, WANSpec{From: "NA", To: "EU",
		Link: hardware.LinkSpec{Gbps: 0.045, LatencyMS: 80}, Backup: true})
	return spec
}

// TestFailWANInFlight pins the complete-then-divert semantics of link
// failure: a transfer already enqueued on a link when it fails completes
// at full rate as if the link were healthy, while every message expanded
// after the failure routes around it. This is the documented contract of
// Link.Fail / Infrastructure.FailWAN — changing it changes every chaos
// result, so it is pinned here.
func TestFailWANInFlight(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	defer sim.Shutdown()
	inf, err := Build(sim, backupSpec())
	if err != nil {
		t.Fatal(err)
	}
	na, eu := inf.DC("NA"), inf.DC("EU")

	// Expand while healthy: the plan pins the primary link.
	plan, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()),
		ServerEndpoint(eu.Tier("fs").Pick()), Cost{NetBytes: 1e6, CPUCycles: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(core.OpRun{
				Name: "INFLIGHT", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan { return []core.MessagePlan{plan} },
			})
		}
	}))

	// 1e6 bytes over a 155 Mbps link takes ~52 ms; fail the link 10 ms in,
	// with the transfer unquestionably in flight.
	sim.RunFor(0.010)
	if sim.ActiveFlows() != 1 {
		t.Fatalf("in-flight flows = %d, want the transfer mid-link", sim.ActiveFlows())
	}
	inf.FailWAN("NA", "EU")
	if err := sim.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}

	// Complete: the in-flight transfer finished over the failed primary.
	if n := sim.Responses.Count("INFLIGHT", "NA"); n != 1 {
		t.Fatalf("in-flight op completions = %d, want 1 (complete-then-divert)", n)
	}
	if got := inf.WANLink("NA", "EU").TakeBusy(); got < 1e6*0.99 {
		t.Errorf("failed primary carried %v bytes, want the full ~1e6 in-flight transfer", got)
	}
	if got := inf.BackupLink("NA", "EU").TakeBusy(); got != 0 {
		t.Errorf("backup carried %v bytes before any post-failure expansion", got)
	}

	// Divert: the same hop expanded after the failure uses the backup.
	plan2, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()),
		ServerEndpoint(eu.Tier("fs").Pick()), Cost{NetBytes: 1e6, CPUCycles: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	launched2 := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched2 {
			launched2 = true
			s.StartOp(core.OpRun{
				Name: "DIVERTED", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan { return []core.MessagePlan{plan2} },
			})
		}
	}))
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	if n := sim.Responses.Count("DIVERTED", "NA"); n != 1 {
		t.Fatalf("diverted op completions = %d", n)
	}
	if got := inf.BackupLink("NA", "EU").TakeBusy(); got < 1e6*0.99 {
		t.Errorf("backup carried %v bytes after failure, want ~1e6", got)
	}
}

func TestDegradeWANScalesBothDirections(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	defer sim.Shutdown()
	inf, err := Build(sim, twoDCSpec())
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := inf.WANLink("NA", "EU"), inf.WANLink("EU", "NA")
	healthy := fwd.Rate()

	inf.DegradeWAN("NA", "EU", 0.5)
	if fwd.Rate() != healthy*0.5 || rev.Rate() != healthy*0.5 {
		t.Errorf("degraded rates = %v / %v, want both at half of %v", fwd.Rate(), rev.Rate(), healthy)
	}
	if fwd.Failed() || rev.Failed() {
		t.Error("degraded link reports failed")
	}
	if _, err := inf.Path("NA", "EU"); err != nil {
		t.Errorf("degraded link dropped from routing: %v", err)
	}

	inf.RepairWAN("NA", "EU")
	if fwd.Rate() != healthy || rev.Rate() != healthy || fwd.Degraded() {
		t.Error("repair did not restore spec rate")
	}
}

func TestIsolateDCFailsEveryTouchingLink(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	defer sim.Shutdown()
	inf, err := Build(sim, backupSpec())
	if err != nil {
		t.Fatal(err)
	}
	inf.IsolateDC("EU")
	if _, err := inf.Path("NA", "EU"); err == nil {
		t.Error("isolated DC still routable (backup must fail too)")
	}
	inf.RejoinDC("EU")
	if _, err := inf.Path("NA", "EU"); err != nil {
		t.Errorf("rejoined DC unreachable: %v", err)
	}
}

func TestBackupArrivalsCountsOnlyBackups(t *testing.T) {
	sim := core.NewSimulation(core.Config{Step: 0.001, Seed: 5})
	defer sim.Shutdown()
	inf, err := Build(sim, backupSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := inf.BackupArrivals(); got != 0 {
		t.Fatalf("idle backup arrivals = %d", got)
	}
	na, eu := inf.DC("NA"), inf.DC("EU")
	inf.FailWAN("NA", "EU")
	plan, err := inf.ExpandHop(ClientEndpoint(na.Clients.Next()),
		ServerEndpoint(eu.Tier("fs").Pick()), Cost{NetBytes: 1e5, CPUCycles: 1e7})
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(core.OpRun{
				Name: "BK", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan { return []core.MessagePlan{plan} },
			})
		}
	}))
	if err := sim.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}
	if got := inf.BackupArrivals(); got == 0 {
		t.Error("diverted traffic not counted in BackupArrivals")
	}
}
