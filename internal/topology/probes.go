package topology

import (
	"fmt"

	"repro/internal/metrics"
)

// RegisterProbes attaches utilization probes for every tier, memory pool,
// storage array, switch and WAN link to the collector, producing the series
// behind the thesis' utilization figures and tables:
//
//	cpu:<dc>:<tier>   — fraction of tier core capacity busy in the window
//	mem:<dc>:<tier>   — fraction of tier memory occupied (point sample)
//	disk:<dc>:<tier>  — fraction of drive capacity busy in the window
//	link:<from>-><to> — fraction of allocated WAN bandwidth used
//	clink:<dc>        — client access link utilization
//	switch:<dc>       — DC switch utilization
func (inf *Infrastructure) RegisterProbes(col *metrics.Collector) {
	for _, dcName := range inf.dcOrder {
		dc := inf.DCs[dcName]
		for tierName, tier := range dc.Tiers {
			tier := tier
			col.Register(metrics.Probe{
				Key: fmt.Sprintf("cpu:%s:%s", dcName, tierName),
				Sample: func(window float64) float64 {
					busy := 0.0
					for _, s := range tier.Servers {
						busy += s.CPU.TakeBusy()
					}
					return busy / (float64(tier.TotalCores()) * window)
				},
			})
			col.Register(metrics.Probe{
				Key: fmt.Sprintf("mem:%s:%s", dcName, tierName),
				Sample: func(float64) float64 {
					used, capacity := 0.0, 0.0
					for _, s := range tier.Servers {
						used += s.Mem.Used()
						capacity += s.Mem.Capacity()
					}
					return used / capacity
				},
			})
			col.Register(metrics.Probe{
				Key:    fmt.Sprintf("disk:%s:%s", dcName, tierName),
				Sample: tier.diskUtilSampler(),
			})
		}
		sw := dc.Switch
		col.Register(metrics.Probe{
			Key:    "switch:" + dcName,
			Sample: func(window float64) float64 { return sw.TakeBusy() / window },
		})
		cl := dc.ClientLink
		col.Register(metrics.Probe{
			Key:    "clink:" + dcName,
			Sample: func(window float64) float64 { return cl.TakeBusy() / (cl.Rate() * window) },
		})
	}
	for k, l := range inf.links {
		l := l
		col.Register(metrics.Probe{
			Key:    fmt.Sprintf("link:%s->%s", k.from, k.to),
			Sample: func(window float64) float64 { return l.TakeBusy() / (l.Rate() * window) },
		})
	}
	for k, l := range inf.backups {
		l := l
		col.Register(metrics.Probe{
			Key:    fmt.Sprintf("link:%s->%s", k.from, k.to),
			Sample: func(window float64) float64 { return l.TakeBusy() / (l.Rate() * window) },
		})
	}
}

// diskUtilSampler returns a sampler for the tier's storage: drive busy time
// over aggregate drive capacity, across server RAIDs or the tier SAN.
func (t *Tier) diskUtilSampler() func(window float64) float64 {
	return func(window float64) float64 {
		busy, drives := 0.0, 0
		for _, s := range t.Servers {
			if s.RAID != nil {
				busy += s.RAID.TakeBusy()
				drives += s.RAID.Disks()
			}
		}
		if t.SAN != nil {
			busy += t.SAN.TakeBusy()
			drives += t.SAN.Disks()
		}
		if drives == 0 {
			return 0
		}
		return busy / (float64(drives) * window)
	}
}
