// Package topology builds the holonic structure of the infrastructure
// (§3.3.2): low-level hardware agents are encapsulated into server and
// client holons, servers into tiers, tiers into data centers, and data
// centers into the global infrastructure connected by WAN links (Fig. 3-2).
// It also implements the router that expands a cascade message between two
// holons into the chain of hardware stages it traverses (Eqs. 3.2-3.5),
// with run-time load balancing across tier servers.
package topology

import (
	"fmt"

	"repro/internal/hardware"
)

// ServerSpec describes the hardware of one server holon.
type ServerSpec struct {
	CPU          hardware.CPUSpec
	MemGB        float64
	CacheHitRate float64 // probability a storage access is served from memory
	NICGbps      float64
	// RAID, when non-nil, gives the server local storage. Tiers whose
	// servers have no RAID must be backed by a tier SAN.
	RAID *hardware.RAIDSpec
}

func (s ServerSpec) validate() error {
	if s.MemGB <= 0 || s.NICGbps <= 0 {
		return fmt.Errorf("topology: invalid ServerSpec mem=%v nic=%v", s.MemGB, s.NICGbps)
	}
	if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
		return fmt.Errorf("topology: invalid cache hit rate %v", s.CacheHitRate)
	}
	if s.CPU.Sockets <= 0 || s.CPU.Cores <= 0 || s.CPU.GHz <= 0 {
		return fmt.Errorf("topology: invalid CPU spec %+v", s.CPU)
	}
	return nil
}

// TierSpec describes a tier holon: an array of identical servers
// (Fig. 3-2), optionally backed by a SAN reached through a dedicated link.
type TierSpec struct {
	// Name identifies the tier within its data center ("app", "db", "fs",
	// "idx").
	Name    string
	Servers int
	Server  ServerSpec
	// LocalLink connects each server to the data center switch.
	LocalLink hardware.LinkSpec
	// SAN, when non-nil, is shared storage for the tier.
	SAN *hardware.SANSpec
	// SANLink connects the tier to its SAN; required when SAN is set.
	SANLink *hardware.LinkSpec
}

func (t TierSpec) validate() error {
	if t.Name == "" || t.Servers <= 0 {
		return fmt.Errorf("topology: invalid TierSpec name=%q servers=%d", t.Name, t.Servers)
	}
	if err := t.Server.validate(); err != nil {
		return fmt.Errorf("tier %s: %w", t.Name, err)
	}
	if t.LocalLink.Gbps <= 0 {
		return fmt.Errorf("topology: tier %s needs a local link", t.Name)
	}
	if t.SAN != nil && t.SANLink == nil {
		return fmt.Errorf("topology: tier %s has a SAN but no SAN link", t.Name)
	}
	if t.SAN == nil && t.Server.RAID == nil {
		return fmt.Errorf("topology: tier %s has neither RAID nor SAN storage", t.Name)
	}
	return nil
}

// DCSpec describes a data center holon.
type DCSpec struct {
	Name       string
	SwitchGbps float64
	// ClientLink connects the local client population to the DC switch.
	ClientLink hardware.LinkSpec
	Tiers      []TierSpec
}

func (d DCSpec) validate() error {
	if d.Name == "" || d.SwitchGbps <= 0 {
		return fmt.Errorf("topology: invalid DCSpec name=%q switch=%v", d.Name, d.SwitchGbps)
	}
	if d.ClientLink.Gbps <= 0 {
		return fmt.Errorf("topology: DC %s needs a client link", d.Name)
	}
	seen := map[string]bool{}
	for _, t := range d.Tiers {
		if err := t.validate(); err != nil {
			return fmt.Errorf("DC %s: %w", d.Name, err)
		}
		if seen[t.Name] {
			return fmt.Errorf("topology: DC %s has duplicate tier %q", d.Name, t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// WANSpec describes one bidirectional WAN connection between two data
// centers; it is materialized as two directed link agents so utilization is
// reported per direction, as in Tables 6.1 and 7.3.
type WANSpec struct {
	From, To string
	Link     hardware.LinkSpec
	// Backup links carry no traffic unless a primary path fails
	// (L_EU->AFR and L_EU->AS1 in Fig. 6-4).
	Backup bool
}

// ClientSpec describes the hardware of client holons in a data center.
type ClientSpec struct {
	// Slots is the number of client holons to materialize — it bounds the
	// number of concurrently active clients at that location.
	Slots   int
	NICGbps float64
	GHz     float64 // client CPU frequency, for client-side processing time
	DiskMBs float64 // client local disk throughput
}

func (c ClientSpec) validate() error {
	if c.Slots <= 0 || c.NICGbps <= 0 || c.GHz <= 0 || c.DiskMBs <= 0 {
		return fmt.Errorf("topology: invalid ClientSpec %+v", c)
	}
	return nil
}

// InfraSpec describes the whole infrastructure.
type InfraSpec struct {
	DCs     []DCSpec
	WAN     []WANSpec
	Clients map[string]ClientSpec // per data center name
}

func (s InfraSpec) validate() error {
	if len(s.DCs) == 0 {
		return fmt.Errorf("topology: infrastructure needs at least one DC")
	}
	names := map[string]bool{}
	for _, d := range s.DCs {
		if err := d.validate(); err != nil {
			return err
		}
		if names[d.Name] {
			return fmt.Errorf("topology: duplicate DC %q", d.Name)
		}
		names[d.Name] = true
	}
	for _, w := range s.WAN {
		if !names[w.From] || !names[w.To] {
			return fmt.Errorf("topology: WAN %s->%s references unknown DC", w.From, w.To)
		}
		if w.From == w.To {
			return fmt.Errorf("topology: WAN self-loop at %s", w.From)
		}
		if w.Link.Gbps <= 0 {
			return fmt.Errorf("topology: WAN %s->%s needs bandwidth", w.From, w.To)
		}
	}
	for dc, c := range s.Clients {
		if !names[dc] {
			return fmt.Errorf("topology: clients reference unknown DC %q", dc)
		}
		if err := c.validate(); err != nil {
			return err
		}
	}
	return nil
}
