package topology

import "repro/internal/hardware"

// This file holds the fault-injection surface of the topology layer: the
// WAN/DC-level mutations the internal/faults library drives. All of them
// must be called from a sequential simulation phase (the fault controller
// is a core.Source, so its polls qualify); mutations that change queue
// service parameters bracket the agent with Sync/MarkDirty so the
// bulk-dense loop replays deferred ticks first and the event calendar
// drops the now-stale horizon.
//
// Failure semantics are complete-then-divert (see hardware.Link.Fail):
// transfers already routed onto a failed link finish as if healthy, while
// every message expanded after the failure takes a surviving route.
// FailWAN and IsolateDC therefore only change which links the router will
// consider — they never touch queue contents.

// DegradeWAN scales both directions of the primary WAN connection between
// two adjacent DCs to factor times the healthy rate (and 1/factor times
// the healthy latency) — a brownout rather than a blackout. Routing is
// unaffected: a degraded link still carries traffic, just slower, so no
// route invalidation is needed. Panics via hardware.Link.Degrade on a
// factor outside (0, 1]; unknown connections are a no-op, matching
// FailWAN.
func (inf *Infrastructure) DegradeWAN(a, b string, factor float64) {
	for _, k := range []wanKey{{a, b}, {b, a}} {
		if l := inf.links[k]; l != nil {
			l.Sync()
			l.Degrade(factor)
			l.MarkDirty()
		}
	}
}

// RepairWAN restores the healthy rate and latency of both directions of a
// degraded WAN connection.
func (inf *Infrastructure) RepairWAN(a, b string) {
	for _, k := range []wanKey{{a, b}, {b, a}} {
		if l := inf.links[k]; l != nil {
			l.Sync()
			l.Repair()
			l.MarkDirty()
		}
	}
}

// ReserveCPU withholds the given capacity fraction on every server CPU of
// the tier for analytically aggregated (fluid) traffic, bracketing each
// mutation with Sync/MarkDirty like the fault helpers above. The fraction
// is absolute (successive calls replace); zero releases the reservation.
// Must be called from a sequential phase — the fluid crossover controller
// is a global core.Source, so its polls qualify.
func (t *Tier) ReserveCPU(frac float64) {
	for _, s := range t.Servers {
		s.CPU.Sync()
		s.CPU.Reserve(frac)
		s.CPU.MarkDirty()
	}
}

// IsolateDC fails every WAN link — primary and backup, both directions —
// touching the named DC: a full data-center blackout as seen from the rest
// of the platform. Local traffic inside the DC (clients on its own tiers)
// continues; only inter-DC routes through or into the DC vanish. Cached
// routes are invalidated so subsequent expansions reroute or fail with
// "no route".
func (inf *Infrastructure) IsolateDC(name string) {
	inf.eachDCLink(name, func(l *hardware.Link) { l.Fail() })
	inf.routeVersion++
	inf.routeCache = make(map[wanKey][]string)
}

// RejoinDC restores every WAN link touching the named DC and invalidates
// cached routes, undoing IsolateDC.
func (inf *Infrastructure) RejoinDC(name string) {
	inf.eachDCLink(name, func(l *hardware.Link) { l.Restore() })
	inf.routeVersion++
	inf.routeCache = make(map[wanKey][]string)
}

// eachDCLink applies fn to every directed WAN link (primary and backup)
// with the named DC as an endpoint.
func (inf *Infrastructure) eachDCLink(name string, fn func(*hardware.Link)) {
	for k, l := range inf.links {
		if k.from == name || k.to == name {
			fn(l)
		}
	}
	for k, l := range inf.backups {
		if k.from == name || k.to == name {
			fn(l)
		}
	}
}

// BackupArrivals returns the cumulative number of transfers ever enqueued
// across all backup links. Backup links are idle in a healthy platform
// (routing prefers primaries), so the first increase after a fault marks
// the instant diverted traffic starts flowing — the fault suite samples
// this as its time-to-reroute signal.
func (inf *Infrastructure) BackupArrivals() uint64 {
	var n uint64
	for _, l := range inf.backups {
		n += l.Arrivals()
	}
	return n
}
