package topology

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hardware"
)

// PlanDuration returns the isolated (contention-free) duration of a message
// plan: the sum of stage service times plus the discrete-time forwarding
// overhead of one step per stage boundary. It is the analytic counterpart
// of executing the plan alone on an idle infrastructure, used to calibrate
// canonical operation costs against the durations the thesis reports
// (Table 5.1) — the inverse of the paper's profiling step, which measured
// canonical costs from observed isolated durations.
func PlanDuration(plan core.MessagePlan, step float64) float64 {
	total := 0.0
	for _, st := range plan.Stages {
		total += stageDuration(st, step)
		total += step // per-stage forwarding: work enqueued at tick t serves at t+1
	}
	return total
}

func stageDuration(st core.Stage, step float64) float64 {
	if st.Queue == nil {
		return 0
	}
	switch q := st.Queue.(type) {
	case *hardware.CPU:
		spec := q.Spec()
		ht := spec.HTFactor
		if ht <= 0 {
			ht = 1
		}
		return st.Demand / (spec.GHz * 1e9 * ht)
	case *hardware.NIC:
		return st.Demand / q.Rate()
	case *hardware.Switch:
		return st.Demand / q.Rate()
	case *hardware.Link:
		return q.Latency() + st.Demand/q.Rate()
	case *hardware.RAID:
		spec := q.Spec()
		stripe := st.Demand / float64(spec.Disks)
		// Controller cache, disk controller, drive — plus the two internal
		// forwarding ticks between those queues.
		return st.Demand/(spec.CtrlGbps*1e9/8) +
			stripe/(spec.Disk.CtrlGbps*1e9/8) +
			stripe/(spec.Disk.MBps*1e6) + 2*step
	case *hardware.SAN:
		spec := q.Spec()
		stripe := st.Demand / float64(spec.Disks)
		return st.Demand/(spec.FCSwitchGbps*1e9/8) +
			st.Demand/(spec.CtrlGbps*1e9/8) +
			st.Demand/(spec.FCALGbps*1e9/8) +
			stripe/(spec.Disk.CtrlGbps*1e9/8) +
			stripe/(spec.Disk.MBps*1e6) + 4*step
	case *core.DelayLine:
		return st.Delay
	default:
		panic(fmt.Sprintf("topology: PlanDuration cannot estimate stage on %T", st.Queue))
	}
}
