// Package config loads and saves simulator inputs as JSON documents —
// the input-parameter files of §3.2.1 (data center specifications,
// topology, workloads) — and exports result series for external plotting
// (the visualization direction of §9.3.2).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/topology"
	"repro/internal/workload"
)

// Document is a complete simulator input: the infrastructure, the
// application workloads and background daemons to impose on it, and the
// run parameters (window, seed, step, engine). A document compiles to a
// runnable experiment through experiment.FromDocument — the same surface
// Go-built scenarios use, so a JSON file and an option-assembled
// experiment with the same content produce the same Result.
type Document struct {
	// Name labels the scenario.
	Name string `json:"name"`
	// Seed is the base seed every derived random stream descends from.
	Seed uint64 `json:"seed,omitempty"`
	// Step is the time-loop granularity in seconds (0 selects the default).
	Step float64 `json:"step,omitempty"`
	// Engine selects the sweep parallelization: "" or "sequential",
	// "scattergather:<threads>", or "hdispatch:<threads>[:<setSize>]".
	Engine string `json:"engine,omitempty"`
	// Window bounds the simulated span; nil selects the full day [0, 24).
	Window *WindowSpec `json:"window,omitempty"`
	// Infrastructure is the hardware and topology specification.
	Infrastructure topology.InfraSpec `json:"infrastructure"`
	// Workloads describe the applications per data center.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Daemons declares the SYNCHREP/INDEXBUILD background daemons.
	Daemons *DaemonsSpec `json:"daemons,omitempty"`
	// AccessMatrix maps client DCs to owner-DC request fractions.
	AccessMatrix workload.AccessMatrix `json:"accessMatrix,omitempty"`
	// Faults schedules chaos injections over the run — each compiles to
	// the same experiment.WithFault surface Go-built scenarios use.
	Faults []FaultSpec `json:"faults,omitempty"`
}

// WindowSpec is the JSON form of a run window: either a GMT hour window
// [startHour, endHour) — workload and growth curves are shifted so the
// simulation starts at startHour — or a plain duration in seconds.
type WindowSpec struct {
	StartHour int `json:"startHour,omitempty"`
	EndHour   int `json:"endHour,omitempty"`
	// RunSeconds, when positive, selects a fixed-length run instead of an
	// hour window; StartHour/EndHour must then be zero.
	RunSeconds float64 `json:"runSeconds,omitempty"`
}

// WorkloadSpec is the JSON form of one application workload at one DC.
type WorkloadSpec struct {
	App            string         `json:"app"`
	DC             string         `json:"dc"`
	Users          workload.Curve `json:"users"`
	OpsPerUserHour float64        `json:"opsPerUserHour"`
	// Weights biases the operation mix; empty selects a uniform mix.
	Weights []float64 `json:"weights,omitempty"`
	// Ops names the operation set ("CAD", "VIS", "PDM"); empty selects the
	// set named like the app.
	Ops string `json:"ops,omitempty"`
	// Stream sets the workload's RNG stream identity; 0 derives it from
	// app@dc. Two workloads sharing app and dc must declare distinct
	// non-zero streams.
	Stream uint64 `json:"stream,omitempty"`
	// ThinBelow overrides the expected-arrivals-per-tick threshold below
	// which arrivals are gap-sampled instead of drawn per tick; 0 selects
	// the default (workload.DefaultThinBelow), negative disables thinning
	// for this workload. Mirrors experiment.Workload.ThinBelow so the
	// thin/discrete/fluid threshold story is identical on both surfaces.
	ThinBelow float64 `json:"thinBelow,omitempty"`
	// Fluid engages the analytic client-aggregation tier (internal/fluid)
	// above the given expected-arrivals-per-tick threshold.
	Fluid *FluidSpec `json:"fluid,omitempty"`
}

// FluidSpec is the JSON form of a workload's fluid-tier configuration.
type FluidSpec struct {
	// Above is the expected-arrivals-per-tick threshold at or above which
	// the workload is aggregated analytically — the high-rate mirror of
	// thinBelow. Must be positive.
	Above float64 `json:"above"`
	// RhoMax is the saturation guard in (0, 1); 0 selects the default 0.9.
	RhoMax float64 `json:"rhoMax,omitempty"`
}

// DaemonsSpec is the JSON form of the background-daemon declaration.
type DaemonsSpec struct {
	// Masters lists the data centers running a SYNCHREP and an INDEXBUILD
	// daemon each.
	Masters []string `json:"masters"`
	// GrowthMBh gives each data center's hourly data-generation curve in
	// MB/hour (GMT).
	GrowthMBh map[string]workload.Curve `json:"growthMBh,omitempty"`
	// SyncIntervalMin / IndexGapMin override the thesis defaults (15 / 5).
	SyncIntervalMin float64 `json:"syncIntervalMin,omitempty"`
	IndexGapMin     float64 `json:"indexGapMin,omitempty"`
	// IndexHeadroom derives the index server's per-byte cost from the
	// master's peak owned generation rate (the Fig. 6-14 calibration);
	// zero keeps the background default.
	IndexHeadroom float64 `json:"indexHeadroom,omitempty"`
}

// FaultSpec is the JSON form of one scheduled fault injection.
type FaultSpec struct {
	// Name identifies the injection in reports and sweep axes. Required,
	// unique within the document.
	Name string `json:"name"`
	// Kind selects the fault type: "wan", "dc", "storage" or "failover".
	Kind string `json:"kind"`
	// At is the injection time in simulated seconds; Duration the injected
	// window. A zero duration elides the injection (fault-free baseline).
	At       float64 `json:"at"`
	Duration float64 `json:"duration"`
	// Magnitude is the severity in [0, 1]: 1 is a blackout, fractions are
	// brownouts/degradation. Storage faults cap it below 1.
	Magnitude float64 `json:"magnitude,omitempty"`
	// From/To name the endpoints of a wan fault or the master/secondary of
	// a failover.
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// DC and Tier locate dc and storage faults.
	DC   string `json:"dc,omitempty"`
	Tier string `json:"tier,omitempty"`
	// RebuildMBps is the synthetic rebuild read bandwidth of a storage
	// fault, MB/s.
	RebuildMBps float64 `json:"rebuildMBps,omitempty"`
}

// validateFault checks one fault spec against the document's DC names.
// Magnitude-range and topology-level checks (does the WAN link exist, is
// the failover master a daemon) happen at compile time against the built
// target; here we catch the structural mistakes a document can express.
func (d *Document) validateFault(f FaultSpec, names map[string]bool, seen map[string]bool) error {
	if f.Name == "" {
		return fmt.Errorf("config: document %s: fault without a name", d.Name)
	}
	if seen[f.Name] {
		return fmt.Errorf("config: document %s: duplicate fault name %q", d.Name, f.Name)
	}
	seen[f.Name] = true
	if f.At < 0 || f.Duration < 0 {
		return fmt.Errorf("config: document %s: fault %s has a negative schedule", d.Name, f.Name)
	}
	switch f.Kind {
	case "wan":
		if !names[f.From] || !names[f.To] {
			return fmt.Errorf("config: document %s: fault %s: wan endpoints %q-%q must name data centers",
				d.Name, f.Name, f.From, f.To)
		}
	case "dc":
		if !names[f.DC] {
			return fmt.Errorf("config: document %s: fault %s: unknown DC %q", d.Name, f.Name, f.DC)
		}
	case "storage":
		if !names[f.DC] {
			return fmt.Errorf("config: document %s: fault %s: unknown DC %q", d.Name, f.Name, f.DC)
		}
		if f.Tier == "" {
			return fmt.Errorf("config: document %s: fault %s: storage fault needs a tier", d.Name, f.Name)
		}
	case "failover":
		if !names[f.From] || !names[f.To] {
			return fmt.Errorf("config: document %s: fault %s: failover %q -> %q must name data centers",
				d.Name, f.Name, f.From, f.To)
		}
	default:
		return fmt.Errorf("config: document %s: fault %s: unknown kind %q (have wan, dc, storage, failover)",
			d.Name, f.Name, f.Kind)
	}
	return nil
}

// Validate checks the document beyond JSON well-formedness.
func (d *Document) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("config: document needs a name")
	}
	if len(d.Infrastructure.DCs) == 0 {
		return fmt.Errorf("config: document %s has no data centers", d.Name)
	}
	names := map[string]bool{}
	for _, dc := range d.Infrastructure.DCs {
		names[dc.Name] = true
	}
	for _, w := range d.Workloads {
		if w.App == "" {
			return fmt.Errorf("config: workload without app name")
		}
		if !names[w.DC] {
			return fmt.Errorf("config: workload %s references unknown DC %q", w.App, w.DC)
		}
		if w.OpsPerUserHour <= 0 {
			return fmt.Errorf("config: workload %s/%s needs a positive rate", w.App, w.DC)
		}
		if f := w.Fluid; f != nil {
			if f.Above <= 0 {
				return fmt.Errorf("config: workload %s/%s: fluid threshold above must be positive", w.App, w.DC)
			}
			if f.RhoMax < 0 || f.RhoMax >= 1 {
				return fmt.Errorf("config: workload %s/%s: fluid guard rhoMax %v outside [0, 1)", w.App, w.DC, f.RhoMax)
			}
		}
	}
	if d.Step < 0 {
		return fmt.Errorf("config: document %s has a negative step", d.Name)
	}
	if w := d.Window; w != nil {
		switch {
		case w.RunSeconds < 0:
			return fmt.Errorf("config: document %s has a negative run length", d.Name)
		case w.RunSeconds > 0 && (w.StartHour != 0 || w.EndHour != 0):
			return fmt.Errorf("config: document %s sets both runSeconds and an hour window", d.Name)
		case w.RunSeconds == 0 && (w.StartHour < 0 || w.EndHour <= w.StartHour || w.EndHour > 24):
			return fmt.Errorf("config: document %s has a bad hour window [%d, %d)",
				d.Name, w.StartHour, w.EndHour)
		}
	}
	if dm := d.Daemons; dm != nil {
		if len(dm.Masters) == 0 {
			return fmt.Errorf("config: document %s declares daemons without masters", d.Name)
		}
		for _, m := range dm.Masters {
			if !names[m] {
				return fmt.Errorf("config: document %s: daemon master %q is not a data center", d.Name, m)
			}
		}
		for dc := range dm.GrowthMBh {
			if !names[dc] {
				return fmt.Errorf("config: document %s: growth curve for unknown DC %q", d.Name, dc)
			}
		}
		if dm.SyncIntervalMin < 0 || dm.IndexGapMin < 0 || dm.IndexHeadroom < 0 {
			return fmt.Errorf("config: document %s has negative daemon parameters", d.Name)
		}
		if d.AccessMatrix == nil {
			return fmt.Errorf("config: document %s declares daemons without an access matrix", d.Name)
		}
	}
	if d.AccessMatrix != nil {
		if err := d.AccessMatrix.Validate(); err != nil {
			return fmt.Errorf("config: document %s: %w", d.Name, err)
		}
	}
	seenFaults := map[string]bool{}
	for _, f := range d.Faults {
		if err := d.validateFault(f, names, seenFaults); err != nil {
			return err
		}
	}
	return nil
}

// Decode reads and validates a document from JSON.
func Decode(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Load reads a document from a file.
func Load(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// Save writes a document to a file.
func (d *Document) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
