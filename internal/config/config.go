// Package config loads and saves simulator inputs as JSON documents —
// the input-parameter files of §3.2.1 (data center specifications,
// topology, workloads) — and exports result series for external plotting
// (the visualization direction of §9.3.2).
package config

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/topology"
	"repro/internal/workload"
)

// Document is a complete simulator input: the infrastructure plus the
// application workloads to impose on it.
type Document struct {
	// Name labels the scenario.
	Name string `json:"name"`
	// Infrastructure is the hardware and topology specification.
	Infrastructure topology.InfraSpec `json:"infrastructure"`
	// Workloads describe the applications per data center.
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// AccessMatrix maps client DCs to owner-DC request fractions.
	AccessMatrix workload.AccessMatrix `json:"accessMatrix,omitempty"`
}

// WorkloadSpec is the JSON form of one application workload at one DC.
type WorkloadSpec struct {
	App            string         `json:"app"`
	DC             string         `json:"dc"`
	Users          workload.Curve `json:"users"`
	OpsPerUserHour float64        `json:"opsPerUserHour"`
}

// Validate checks the document beyond JSON well-formedness.
func (d *Document) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("config: document needs a name")
	}
	if len(d.Infrastructure.DCs) == 0 {
		return fmt.Errorf("config: document %s has no data centers", d.Name)
	}
	names := map[string]bool{}
	for _, dc := range d.Infrastructure.DCs {
		names[dc.Name] = true
	}
	for _, w := range d.Workloads {
		if w.App == "" {
			return fmt.Errorf("config: workload without app name")
		}
		if !names[w.DC] {
			return fmt.Errorf("config: workload %s references unknown DC %q", w.App, w.DC)
		}
		if w.OpsPerUserHour <= 0 {
			return fmt.Errorf("config: workload %s/%s needs a positive rate", w.App, w.DC)
		}
	}
	if d.AccessMatrix != nil {
		if err := d.AccessMatrix.Validate(); err != nil {
			return fmt.Errorf("config: document %s: %w", d.Name, err)
		}
	}
	return nil
}

// Decode reads and validates a document from JSON.
func Decode(r io.Reader) (*Document, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var d Document
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// Encode writes the document as indented JSON.
func (d *Document) Encode(w io.Writer) error {
	if err := d.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// Load reads a document from a file.
func Load(path string) (*Document, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return Decode(f)
}

// Save writes a document to a file.
func (d *Document) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := d.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
