package config

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

func sampleDoc() *Document {
	return &Document{
		Name: "two-dc",
		Infrastructure: topology.InfraSpec{
			DCs: []topology.DCSpec{{
				Name: "NA", SwitchGbps: 20,
				ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []topology.TierSpec{{
					Name: "app", Servers: 2,
					Server: topology.ServerSpec{
						CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
						MemGB:   32,
						NICGbps: 10,
						RAID: &hardware.RAIDSpec{
							Disks: 2, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150},
							CtrlGbps: 4,
						},
					},
					LocalLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45},
				}},
			}},
			Clients: map[string]topology.ClientSpec{
				"NA": {Slots: 16, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
			},
		},
		Workloads: []WorkloadSpec{{
			App: "CAD", DC: "NA",
			Users:          workload.BusinessDay(100, 13, 22, 5),
			OpsPerUserHour: 4,
			ThinBelow:      0.2,
			Fluid:          &FluidSpec{Above: 0.8, RhoMax: 0.85},
		}},
		AccessMatrix: workload.SingleMaster([]string{"NA"}, "NA"),
	}
}

func TestRoundTrip(t *testing.T) {
	doc := sampleDoc()
	var buf bytes.Buffer
	if err := doc.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != doc.Name {
		t.Errorf("name = %q", back.Name)
	}
	if len(back.Infrastructure.DCs) != 1 || back.Infrastructure.DCs[0].Tiers[0].Servers != 2 {
		t.Error("infrastructure did not round-trip")
	}
	if back.Workloads[0].Users.Peak() != 100 {
		t.Errorf("workload curve peak = %v", back.Workloads[0].Users.Peak())
	}
	if back.Workloads[0].ThinBelow != 0.2 {
		t.Errorf("thinBelow = %v, want 0.2", back.Workloads[0].ThinBelow)
	}
	if f := back.Workloads[0].Fluid; f == nil || f.Above != 0.8 || f.RhoMax != 0.85 {
		t.Errorf("fluid spec did not round-trip: %+v", f)
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	if _, err := Decode(strings.NewReader(`{"name":"x","bogus":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidateRejectsBadDocuments(t *testing.T) {
	cases := []func(*Document){
		func(d *Document) { d.Name = "" },
		func(d *Document) { d.Infrastructure.DCs = nil },
		func(d *Document) { d.Workloads[0].DC = "MARS" },
		func(d *Document) { d.Workloads[0].App = "" },
		func(d *Document) { d.Workloads[0].OpsPerUserHour = 0 },
		func(d *Document) { d.AccessMatrix = workload.AccessMatrix{"NA": {"NA": 0.5}} },
		func(d *Document) { d.Workloads[0].Fluid = &FluidSpec{Above: 0} },
		func(d *Document) { d.Workloads[0].Fluid = &FluidSpec{Above: 0.01, RhoMax: 1} },
		func(d *Document) { d.Workloads[0].Fluid = &FluidSpec{Above: 0.01, RhoMax: -0.5} },
	}
	for i, mutate := range cases {
		doc := sampleDoc()
		mutate(doc)
		if err := doc.Validate(); err == nil {
			t.Errorf("case %d: invalid document accepted", i)
		}
	}
}

func TestSaveAndLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scenario.json")
	doc := sampleDoc()
	if err := doc.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != doc.Name {
		t.Errorf("loaded name = %q", back.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestExportSeriesCSV(t *testing.T) {
	s1 := &metrics.Series{Name: "a"}
	s1.Add(1, 0.5)
	s1.Add(2, 0.75)
	s2 := &metrics.Series{Name: "b"}
	s2.Add(1.5, 10)
	var buf bytes.Buffer
	err := ExportSeriesCSV(&buf, map[string]*metrics.Series{"cpu": s1, "link": s2, "nil": nil})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 samples
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "series,seconds,value" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "cpu,1.000,0.5") {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestCollectorSeries(t *testing.T) {
	col := metrics.NewCollector()
	col.Register(metrics.Probe{Key: "x", Sample: func(float64) float64 { return 1 }})
	col.Snapshot(10)
	m := CollectorSeries(col)
	if m["x"] == nil || m["x"].Len() != 1 {
		t.Error("collector series not exported")
	}
}
