package config

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"repro/internal/metrics"
)

// ExportSeriesCSV writes one or more series as a long-format CSV
// (series,key-ordered; columns: series, seconds, value), suitable for
// external plotting tools — the visualization hook of §9.3.2.
func ExportSeriesCSV(w io.Writer, series map[string]*metrics.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "seconds", "value"}); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := series[k]
		if s == nil {
			continue
		}
		for i := range s.T {
			rec := []string{
				k,
				strconv.FormatFloat(s.T[i], 'f', 3, 64),
				strconv.FormatFloat(s.V[i], 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return fmt.Errorf("config: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// CollectorSeries gathers every registered series of a collector into the
// map form ExportSeriesCSV consumes.
func CollectorSeries(col *metrics.Collector) map[string]*metrics.Series {
	out := make(map[string]*metrics.Series)
	for _, key := range col.Keys() {
		out[key] = col.Series(key)
	}
	return out
}
