package hardware

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/core"
	"repro/internal/queueing"
)

// DiskSpec describes one disk: its controller-cache service speed, the
// mechanical drive throughput, and the controller-cache hit rate.
type DiskSpec struct {
	CtrlGbps float64 // disk controller cache speed (Qdcc)
	MBps     float64 // drive throughput (Qhdd)
	HitRate  float64 // cache hit rate at the disk controller
}

func (s DiskSpec) validate() error {
	if s.CtrlGbps <= 0 || s.MBps <= 0 || s.HitRate < 0 || s.HitRate > 1 {
		return fmt.Errorf("hardware: invalid DiskSpec %+v", s)
	}
	return nil
}

// Component tags separating the RNG streams of the storage agents; each
// agent derives its seeds from (simulation seed, agent ID, tag) through
// core.DeriveSeed, so cache-hit decisions depend only on the simulation
// seed and the component's own identity.
const (
	tagRAID      = 1 // +1 for the second PCG word
	tagRAIDArray = 3
	tagSAN       = 4 // +1 for the second PCG word
	tagSANArray  = 6
)

// subSeed derives a component RNG seed from the simulation seed, the owning
// agent's identity and a component tag.
func subSeed(sim *core.Simulation, id core.AgentID, tag uint64) uint64 {
	return core.DeriveSeed(sim.Seed(), uint64(id)<<8|tag)
}

// diskUnit is the Qdcc -> Qhdd pipeline of one disk (Figs. 3-7, 3-8).
type diskUnit struct {
	dcc *queueing.FCFS
	hdd *queueing.FCFS
}

func newDiskUnit(s DiskSpec) *diskUnit {
	return &diskUnit{
		dcc: queueing.NewFCFS(1, s.CtrlGbps*1e9/8),
		hdd: queueing.NewFCFS(1, s.MBps*1e6),
	}
}

func (d *diskUnit) idle() bool { return d.dcc.Idle() && d.hdd.Idle() }

// extReq tracks an external storage request through the array's internal
// pipeline, preserving its original byte demand for forking.
type extReq struct {
	parent *queueing.Task
	demand float64
}

// forkJoin joins the stripes of one forked request.
type forkJoin struct {
	parent  *queueing.Task
	pending int
}

// stripeReq tracks one stripe of a forked request through its disk.
type stripeReq struct {
	fj     *forkJoin
	stripe float64 // stripe byte demand
	disk   int     // owning disk index
}

// stripeSlab carries one stripe's task and tracking record contiguously:
// fork hands out pointers into a single per-request slab, so an n-way fork
// costs two allocations (slab + join) instead of 2n+1 — the dominant
// allocation site of storage-heavy sweeps.
type stripeSlab struct {
	task queueing.Task
	sr   stripeReq
}

// extSlab carries an admitted request's internal task and tracking record
// in one allocation (the ingress analogue of stripeSlab).
type extSlab struct {
	task queueing.Task
	ext  extReq
}

// diskArray implements the shared mechanics of RAID and SAN: an n-way
// fork-join of disk pipelines plus the cache-hit routing around them.
type diskArray struct {
	disks    []*diskUnit
	diskSpec DiskSpec
	rng      *rand.Rand
	buffer   func(*queueing.Task) // parent-agent completion buffer
}

func newDiskArray(n int, spec DiskSpec, seed uint64, buffer func(*queueing.Task)) *diskArray {
	a := &diskArray{
		diskSpec: spec,
		rng:      rand.New(rand.NewPCG(core.DeriveSeed(seed, 1), core.DeriveSeed(seed, 2))),
		buffer:   buffer,
	}
	for i := 0; i < n; i++ {
		a.disks = append(a.disks, newDiskUnit(spec))
	}
	return a
}

// fork splits the external request across all disks with striped demand.
func (a *diskArray) fork(ext *extReq) {
	stripe := ext.demand / float64(len(a.disks))
	slab := make([]stripeSlab, len(a.disks))
	fj := &forkJoin{parent: ext.parent, pending: len(a.disks)}
	for i, d := range a.disks {
		s := &slab[i]
		s.sr = stripeReq{fj: fj, stripe: stripe, disk: i}
		s.task = queueing.Task{ID: ext.parent.ID, Demand: stripe, Payload: &s.sr}
		d.dcc.Enqueue(&s.task)
	}
}

// step advances every disk pipeline, routing stripes from controller cache
// to drive (or past it on a disk-cache hit) and joining completions.
// Idle queues are skipped: their Step is a strict no-op (nothing to fill,
// nothing in service, no busy time accrues), and with one pipeline per
// spindle the empty calls dominate a busy array's per-tick cost — a
// request in flight usually occupies one or two of the 2n queues.
func (a *diskArray) step(dt float64) {
	for _, d := range a.disks {
		if !d.dcc.Idle() {
			d.dcc.Step(dt, a.onDiskCtrlDone)
		}
		if !d.hdd.Idle() {
			d.hdd.Step(dt, a.onDriveDone)
		}
	}
}

func (a *diskArray) onDiskCtrlDone(t *queueing.Task) {
	sr := t.Payload.(*stripeReq)
	if a.rng.Float64() < a.diskSpec.HitRate {
		a.join(sr)
		return
	}
	t.Demand = sr.stripe
	a.disks[sr.disk].hdd.Enqueue(t)
}

func (a *diskArray) onDriveDone(t *queueing.Task) {
	a.join(t.Payload.(*stripeReq))
}

func (a *diskArray) join(sr *stripeReq) {
	sr.fj.pending--
	if sr.fj.pending == 0 {
		a.buffer(sr.fj.parent)
	}
}

func (a *diskArray) idle() bool {
	for _, d := range a.disks {
		if !d.idle() {
			return false
		}
	}
	return true
}

// canBulk reports whether no disk pipeline produces an event within span.
// Idle queues trivially cannot (CanBulk on an empty queue is vacuously
// true), so only occupied pipelines pay the scan.
func (a *diskArray) canBulk(span float64) bool {
	for _, d := range a.disks {
		if !d.dcc.Idle() && !d.dcc.CanBulk(span) {
			return false
		}
		if !d.hdd.Idle() && !d.hdd.CanBulk(span) {
			return false
		}
	}
	return true
}

// bulkStep advances every disk pipeline through n quiet ticks in bulk.
// BulkStep on an idle queue returns immediately, so no elision is needed.
func (a *diskArray) bulkStep(n int, dt float64) {
	for _, d := range a.disks {
		d.dcc.BulkStep(n, dt)
		d.hdd.BulkStep(n, dt)
	}
}

// horizon returns the time until the next event anywhere in the disk
// pipelines. Internal handoffs (controller cache to drive) count as events:
// they re-route work between queues, which the per-tick step semantics
// resolve, so a fast-forward jump must stop before them. Idle queues
// report +Inf and are skipped without the call.
func (a *diskArray) horizon() float64 {
	h := math.Inf(1)
	for _, d := range a.disks {
		if !d.dcc.Idle() {
			if q := d.dcc.Horizon(); q < h {
				h = q
			}
		}
		if !d.hdd.Idle() {
			if q := d.hdd.Horizon(); q < h {
				h = q
			}
		}
	}
	return h
}

// derate scales every drive's service rate to factor times the spec rate
// (degraded-mode operation while a failed disk rebuilds). Controller caches
// keep full speed — electronics survive a spindle failure. Absolute, not
// cumulative; factor 1 restores the spec rate.
func (a *diskArray) derate(factor float64) {
	rate := a.diskSpec.MBps * 1e6 * factor
	for _, d := range a.disks {
		d.hdd.SetRate(rate)
	}
}

// takeDriveBusy returns drive busy seconds summed over disks and drains the
// controller-cache accumulators.
func (a *diskArray) takeDriveBusy() float64 {
	b := 0.0
	for _, d := range a.disks {
		b += d.hdd.TakeBusy()
		d.dcc.TakeBusy()
	}
	return b
}

// RAIDSpec describes a redundant array of identical disks behind a disk
// array controller cache (Fig. 3-7).
type RAIDSpec struct {
	Disks    int
	Disk     DiskSpec
	CtrlGbps float64 // disk array controller cache speed (Qdacc)
	HitRate  float64 // cache hit rate at the array controller
}

func (s RAIDSpec) validate() error {
	if s.Disks <= 0 || s.CtrlGbps <= 0 || s.HitRate < 0 || s.HitRate > 1 {
		return fmt.Errorf("hardware: invalid RAIDSpec %+v", s)
	}
	return s.Disk.validate()
}

// RAID models the array of Fig. 3-7: requests pass the array controller
// cache Qdacc; a cache hit completes immediately, a miss forks across all n
// disks (striped demand) and joins when the slowest stripe finishes.
type RAID struct {
	core.AgentBase
	spec     RAIDSpec
	dacc     *queueing.FCFS
	array    *diskArray
	rng      *rand.Rand
	inflight int // external requests admitted and not yet completed
}

// NewRAID creates and registers a RAID agent.
func NewRAID(sim *core.Simulation, name string, spec RAIDSpec) *RAID {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	id := sim.NextAgentID()
	r := &RAID{
		spec: spec,
		dacc: queueing.NewFCFS(1, spec.CtrlGbps*1e9/8),
		rng:  rand.New(rand.NewPCG(subSeed(sim, id, tagRAID), subSeed(sim, id, tagRAID+1))),
	}
	// The controller cache is the array's ingress: external enqueues (and
	// only those — the fork-join feeds the per-disk queues internally,
	// inside the parallel Step phase) forward the invalidation.
	r.dacc.SetNotify(r.MarkDirty)
	r.array = newDiskArray(spec.Disks, spec.Disk, subSeed(sim, id, tagRAIDArray), r.complete)
	r.InitAgent(id, name)
	sim.AddAgent(r)
	return r
}

// Spec returns the array specification.
func (r *RAID) Spec() RAIDSpec { return r.spec }

// Enqueue admits a storage request (Demand in bytes) at the array
// controller cache, whose notify hook forwards the invalidation; any ticks
// the bulk-dense loop deferred are replayed first.
func (r *RAID) Enqueue(t *queueing.Task) {
	r.Sync()
	r.inflight++
	e := new(extSlab)
	e.ext = extReq{parent: t, demand: t.Demand}
	e.task = queueing.Task{ID: t.ID, Demand: t.Demand, Payload: &e.ext}
	r.dacc.Enqueue(&e.task)
}

// complete buffers a finished external request.
func (r *RAID) complete(t *queueing.Task) {
	r.inflight--
	r.BufferDone(t)
}

// Step advances the controller cache, then the disk pipelines. Idle arrays
// return immediately: with a disk pipeline per spindle the per-tick cost of
// an idle RAID would otherwise dominate large sweeps. An idle controller
// cache is likewise skipped while stripes drain through the disks.
func (r *RAID) Step(dt float64) {
	if r.inflight == 0 {
		return
	}
	if !r.dacc.Idle() {
		r.dacc.Step(dt, r.onCtrlDone)
	}
	r.array.step(dt)
}

// StepN advances the whole array through n quiet ticks in bulk. The
// fallback is whole-agent per-tick stepping: an internal handoff re-routes
// work between queues mid-window, which only the tick-major order of Step
// resolves correctly.
func (r *RAID) StepN(n int, dt float64) {
	if r.inflight == 0 {
		return
	}
	span := float64(n) * dt
	if r.dacc.CanBulk(span) && r.array.canBulk(span) {
		r.dacc.BulkStep(n, dt)
		r.array.bulkStep(n, dt)
		return
	}
	for i := 0; i < n; i++ {
		r.Step(dt)
	}
}

func (r *RAID) onCtrlDone(t *queueing.Task) {
	ext := t.Payload.(*extReq)
	if r.rng.Float64() < r.spec.HitRate {
		r.complete(ext.parent) // array-cache hit bypasses the fork-join
		return
	}
	r.array.fork(ext)
}

// Idle reports whether the whole array is empty.
func (r *RAID) Idle() bool { return r.inflight == 0 }

// Horizon returns the time until the next event anywhere in the array:
// the controller cache or any disk pipeline.
func (r *RAID) Horizon() float64 {
	if r.inflight == 0 {
		return math.Inf(1)
	}
	h := r.array.horizon()
	if !r.dacc.Idle() {
		h = math.Min(r.dacc.Horizon(), h)
	}
	return h
}

// TakeBusy returns drive busy seconds summed across disks since the last
// call (the mechanical bottleneck of the array).
func (r *RAID) TakeBusy() float64 {
	r.dacc.TakeBusy()
	return r.array.takeDriveBusy()
}

// Disks returns the number of disks in the array.
func (r *RAID) Disks() int { return r.spec.Disks }

// Derate scales every drive's service rate to factor times the spec rate,
// modeling degraded-mode operation during a rebuild. Absolute against the
// spec, not cumulative; factor 1 restores full speed. In-service stripes
// finish their remaining bytes at the new rate. Callers must invoke it
// from a sequential phase and bracket it with Sync/MarkDirty on this
// agent, which the fault library does. Panics on factor outside (0, 1].
func (r *RAID) Derate(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("hardware: RAID derate factor %v outside (0, 1]", factor))
	}
	r.array.derate(factor)
}

// SANSpec describes a storage area network (Fig. 3-8): a fibre-channel
// switch, an array controller cache and a fibre-channel arbitrated loop
// ahead of the disk fork-join.
type SANSpec struct {
	Disks        int
	Disk         DiskSpec
	FCSwitchGbps float64 // Qfc-sw speed
	CtrlGbps     float64 // Qdacc speed
	FCALGbps     float64 // Qfc-al speed
	HitRate      float64 // cache hit rate at the array controller
}

func (s SANSpec) validate() error {
	if s.Disks <= 0 || s.FCSwitchGbps <= 0 || s.CtrlGbps <= 0 || s.FCALGbps <= 0 ||
		s.HitRate < 0 || s.HitRate > 1 {
		return fmt.Errorf("hardware: invalid SANSpec %+v", s)
	}
	return s.Disk.validate()
}

// SAN models the storage area network of Fig. 3-8. Requests traverse the
// fibre-channel switch and the array controller cache; a cache hit skips
// the arbitrated loop and the disks, a miss continues through the loop and
// forks across the disks.
type SAN struct {
	core.AgentBase
	spec     SANSpec
	fcsw     *queueing.FCFS
	dacc     *queueing.FCFS
	fcal     *queueing.FCFS
	array    *diskArray
	rng      *rand.Rand
	inflight int // external requests admitted and not yet completed
}

// NewSAN creates and registers a SAN agent.
func NewSAN(sim *core.Simulation, name string, spec SANSpec) *SAN {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	id := sim.NextAgentID()
	s := &SAN{
		spec: spec,
		fcsw: queueing.NewFCFS(1, spec.FCSwitchGbps*1e9/8),
		dacc: queueing.NewFCFS(1, spec.CtrlGbps*1e9/8),
		fcal: queueing.NewFCFS(1, spec.FCALGbps*1e9/8),
		rng:  rand.New(rand.NewPCG(subSeed(sim, id, tagSAN), subSeed(sim, id, tagSAN+1))),
	}
	// The FC switch is the SAN's ingress; the downstream queues (dacc,
	// fcal, disks) are fed by internal handoffs inside the parallel Step
	// phase and must not carry the hook.
	s.fcsw.SetNotify(s.MarkDirty)
	s.array = newDiskArray(spec.Disks, spec.Disk, subSeed(sim, id, tagSANArray), s.complete)
	s.InitAgent(id, name)
	sim.AddAgent(s)
	return s
}

// Spec returns the SAN specification.
func (s *SAN) Spec() SANSpec { return s.spec }

// Enqueue admits a storage request (Demand in bytes) at the FC switch,
// whose notify hook forwards the invalidation; any ticks the bulk-dense
// loop deferred are replayed first.
func (s *SAN) Enqueue(t *queueing.Task) {
	s.Sync()
	s.inflight++
	e := new(extSlab)
	e.ext = extReq{parent: t, demand: t.Demand}
	e.task = queueing.Task{ID: t.ID, Demand: t.Demand, Payload: &e.ext}
	s.fcsw.Enqueue(&e.task)
}

// complete buffers a finished external request.
func (s *SAN) complete(t *queueing.Task) {
	s.inflight--
	s.BufferDone(t)
}

// Step advances the FC switch, controller cache, arbitrated loop and the
// disk pipelines in pipeline order. Idle SANs return immediately, and
// idle stage queues are skipped — a request in flight occupies one stage
// at a time, so most of the pipeline is a strict no-op each tick.
func (s *SAN) Step(dt float64) {
	if s.inflight == 0 {
		return
	}
	if !s.fcsw.Idle() {
		s.fcsw.Step(dt, s.onFCSwitchDone)
	}
	if !s.dacc.Idle() {
		s.dacc.Step(dt, s.onCtrlDone)
	}
	if !s.fcal.Idle() {
		s.fcal.Step(dt, s.onLoopDone)
	}
	s.array.step(dt)
}

// StepN advances the whole SAN through n quiet ticks in bulk, with the
// same whole-agent fallback rationale as RAID.StepN.
func (s *SAN) StepN(n int, dt float64) {
	if s.inflight == 0 {
		return
	}
	span := float64(n) * dt
	if s.fcsw.CanBulk(span) && s.dacc.CanBulk(span) && s.fcal.CanBulk(span) && s.array.canBulk(span) {
		s.fcsw.BulkStep(n, dt)
		s.dacc.BulkStep(n, dt)
		s.fcal.BulkStep(n, dt)
		s.array.bulkStep(n, dt)
		return
	}
	for i := 0; i < n; i++ {
		s.Step(dt)
	}
}

func (s *SAN) onFCSwitchDone(t *queueing.Task) {
	ext := t.Payload.(*extReq)
	t.Demand = ext.demand
	s.dacc.Enqueue(t)
}

func (s *SAN) onCtrlDone(t *queueing.Task) {
	ext := t.Payload.(*extReq)
	if s.rng.Float64() < s.spec.HitRate {
		s.complete(ext.parent) // cache hit bypasses loop and disks
		return
	}
	t.Demand = ext.demand
	s.fcal.Enqueue(t)
}

func (s *SAN) onLoopDone(t *queueing.Task) {
	s.array.fork(t.Payload.(*extReq))
}

// Idle reports whether the whole SAN is empty.
func (s *SAN) Idle() bool { return s.inflight == 0 }

// Horizon returns the time until the next event anywhere in the SAN
// pipeline: FC switch, controller cache, arbitrated loop or disks.
func (s *SAN) Horizon() float64 {
	if s.inflight == 0 {
		return math.Inf(1)
	}
	h := s.array.horizon()
	if !s.fcsw.Idle() {
		h = math.Min(s.fcsw.Horizon(), h)
	}
	if !s.dacc.Idle() {
		h = math.Min(s.dacc.Horizon(), h)
	}
	if !s.fcal.Idle() {
		h = math.Min(s.fcal.Horizon(), h)
	}
	return h
}

// TakeBusy returns drive busy seconds summed across disks since last call.
func (s *SAN) TakeBusy() float64 {
	s.fcsw.TakeBusy()
	s.dacc.TakeBusy()
	s.fcal.TakeBusy()
	return s.array.takeDriveBusy()
}

// Disks returns the number of disks in the SAN.
func (s *SAN) Disks() int { return s.spec.Disks }

// Derate scales every drive's service rate to factor times the spec rate,
// with the same contract as RAID.Derate.
func (s *SAN) Derate(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("hardware: SAN derate factor %v outside (0, 1]", factor))
	}
	s.array.derate(factor)
}

var (
	_ core.QueueAgent = (*RAID)(nil)
	_ core.QueueAgent = (*SAN)(nil)
)
