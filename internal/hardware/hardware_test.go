package hardware

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/queueing"
)

func drainAll(t *testing.T, a core.Agent, dt float64, maxSteps int) []*queueing.Task {
	t.Helper()
	var done []*queueing.Task
	for i := 0; i < maxSteps && !a.Idle(); i++ {
		a.Step(dt)
		a.Drain(func(task *queueing.Task) { done = append(done, task) })
	}
	if !a.Idle() {
		t.Fatalf("%s not idle after %d steps", a.Name(), maxSteps)
	}
	return done
}

func TestCPUSpecValidation(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	bad := []CPUSpec{
		{Sockets: 0, Cores: 4, GHz: 2},
		{Sockets: 1, Cores: 0, GHz: 2},
		{Sockets: 1, Cores: 4, GHz: 0},
	}
	for _, spec := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewCPU(%+v) did not panic", spec)
				}
			}()
			NewCPU(s, "cpu", spec)
		}()
	}
}

func TestCPUServiceTimeMatchesFrequency(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	cpu := NewCPU(s, "cpu", CPUSpec{Sockets: 1, Cores: 1, GHz: 2}) // 2e9 cycles/s
	cpu.Enqueue(&queueing.Task{ID: 1, Demand: 1e9})                // 0.5 s of work
	var done []*queueing.Task
	cpu.Step(0.4)
	cpu.Drain(func(task *queueing.Task) { done = append(done, task) })
	if len(done) != 0 {
		t.Fatal("completed before 0.5s of cycles consumed")
	}
	cpu.Step(0.11)
	cpu.Drain(func(task *queueing.Task) { done = append(done, task) })
	if len(done) != 1 {
		t.Fatal("not completed after full service time")
	}
}

func TestCPURoundRobinAcrossSockets(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	cpu := NewCPU(s, "cpu", CPUSpec{Sockets: 2, Cores: 1, GHz: 1})
	// Two equal tasks must land on different sockets and finish together.
	cpu.Enqueue(&queueing.Task{ID: 1, Demand: 1e9})
	cpu.Enqueue(&queueing.Task{ID: 2, Demand: 1e9})
	done := drainAll(t, cpu, 0.1, 20)
	if len(done) != 2 {
		t.Fatalf("completed %d, want 2", len(done))
	}
	if cpu.QueueDepth() != 0 {
		t.Errorf("queue depth = %d", cpu.QueueDepth())
	}
}

func TestCPUHTFactorSpeedsService(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	plain := NewCPU(s, "plain", CPUSpec{Sockets: 1, Cores: 1, GHz: 1})
	ht := NewCPU(s, "ht", CPUSpec{Sockets: 1, Cores: 1, GHz: 1, HTFactor: 2})
	plain.Enqueue(&queueing.Task{ID: 1, Demand: 1e9})
	ht.Enqueue(&queueing.Task{ID: 1, Demand: 1e9})
	var plainDone, htDone int
	plain.Step(0.6)
	plain.Drain(func(*queueing.Task) { plainDone++ })
	ht.Step(0.6)
	ht.Drain(func(*queueing.Task) { htDone++ })
	if plainDone != 0 || htDone != 1 {
		t.Errorf("HT factor not applied: plain=%d ht=%d", plainDone, htDone)
	}
}

func TestCPUBusyAccounting(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	cpu := NewCPU(s, "cpu", CPUSpec{Sockets: 2, Cores: 2, GHz: 1})
	cpu.Enqueue(&queueing.Task{ID: 1, Demand: 1e9}) // 1 core-second
	drainAll(t, cpu, 0.1, 20)
	if b := cpu.TakeBusy(); math.Abs(b-1.0) > 1e-9 {
		t.Errorf("busy = %v, want 1.0", b)
	}
	if cpu.Spec().TotalCores() != 4 {
		t.Errorf("TotalCores = %d", cpu.Spec().TotalCores())
	}
}

func TestMemoryOccupancy(t *testing.T) {
	m := NewMemory(32e9, 0, 1)
	m.Acquire(10e9)
	m.Acquire(5e9)
	if m.Used() != 15e9 {
		t.Errorf("used = %v", m.Used())
	}
	m.Release(5e9)
	if m.Used() != 10e9 {
		t.Errorf("used after release = %v", m.Used())
	}
	if m.Peak() != 15e9 {
		t.Errorf("peak = %v", m.Peak())
	}
	if m.Capacity() != 32e9 {
		t.Errorf("capacity = %v", m.Capacity())
	}
}

func TestMemoryOverReleasePanics(t *testing.T) {
	m := NewMemory(1e9, 0, 1)
	m.Acquire(1)
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	m.Release(2)
}

func TestMemoryHitRateExtremes(t *testing.T) {
	never := NewMemory(1e9, 0, 1)
	always := NewMemory(1e9, 1, 1)
	for i := 0; i < 100; i++ {
		if never.Hit() {
			t.Fatal("hitRate=0 produced a hit")
		}
		if !always.Hit() {
			t.Fatal("hitRate=1 produced a miss")
		}
	}
}

func TestMemoryHitRateStatistical(t *testing.T) {
	m := NewMemory(1e9, 0.3, 42)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Hit() {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.3) > 0.02 {
		t.Errorf("empirical hit rate %v, want ~0.3", rate)
	}
}

func TestNICAndSwitchServiceRate(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	nic := NewNIC(s, "nic", 1)   // 1 Gbps = 125e6 B/s
	sw := NewSwitch(s, "sw", 10) // 10 Gbps
	if nic.Rate() != 125e6 {
		t.Errorf("nic rate = %v", nic.Rate())
	}
	if sw.Rate() != 1.25e9 {
		t.Errorf("switch rate = %v", sw.Rate())
	}
	nic.Enqueue(&queueing.Task{ID: 1, Demand: 125e6}) // 1 second
	done := drainAll(t, nic, 0.25, 10)
	if len(done) != 1 {
		t.Fatal("nic transfer incomplete")
	}
	if b := nic.TakeBusy(); math.Abs(b-1.0) > 1e-9 {
		t.Errorf("nic busy = %v, want 1.0", b)
	}
}

func TestLinkLatencyAndSharing(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	l := NewLink(s, "wan", LinkSpec{Gbps: 0.155, LatencyMS: 100, MaxConn: 64})
	// 155 Mbps = 19.375e6 B/s; transfer 19.375e6 bytes => 1s + 0.1s latency.
	l.Enqueue(&queueing.Task{ID: 1, Demand: 19.375e6})
	var done int
	for i := 0; i < 10; i++ { // 1.0s total: not yet complete
		l.Step(0.1)
		l.Drain(func(*queueing.Task) { done++ })
	}
	if done != 0 {
		t.Fatal("transfer completed before latency + transmission")
	}
	l.Step(0.11)
	l.Drain(func(*queueing.Task) { done++ })
	if done != 1 {
		t.Fatal("transfer incomplete after 1.21s")
	}
}

func TestLinkAllocationCapsBandwidth(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	full := NewLink(s, "full", LinkSpec{Gbps: 1})
	capped := NewLink(s, "capped", LinkSpec{Gbps: 1, Allocated: 0.2})
	if capped.Rate() >= full.Rate() {
		t.Errorf("allocated rate %v not below full %v", capped.Rate(), full.Rate())
	}
	if math.Abs(capped.Rate()-0.2*full.Rate()) > 1e-6 {
		t.Errorf("allocated rate = %v, want 20%% of %v", capped.Rate(), full.Rate())
	}
}

func TestLinkOverAllocationPanics(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	defer func() {
		if recover() == nil {
			t.Error("allocation > 1 did not panic")
		}
	}()
	NewLink(s, "bad", LinkSpec{Gbps: 1, Allocated: 1.5})
}

func TestLinkFailureIsRoutingPlaneOnly(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	l := NewLink(s, "wan", LinkSpec{Gbps: 1})
	l.Fail()
	if !l.Failed() {
		t.Fatal("Failed() false after Fail()")
	}
	// Complete-then-divert: a failed link refuses route selection (the
	// topology layer's job) but keeps draining transfers whose route was
	// pinned before the failure — enqueue must not panic or stall.
	l.Enqueue(&queueing.Task{ID: 1, Demand: 1})
	l.Restore()
	if l.Failed() {
		t.Fatal("Failed() true after Restore()")
	}
	l.Enqueue(&queueing.Task{ID: 2, Demand: 1})
}

func TestRAIDStripingAcceleratesLargeReads(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	disk := DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0}
	one := NewRAID(s, "raid1", RAIDSpec{Disks: 1, Disk: disk, CtrlGbps: 4, HitRate: 0})
	four := NewRAID(s, "raid4", RAIDSpec{Disks: 4, Disk: disk, CtrlGbps: 4, HitRate: 0})
	read := func(r *RAID) float64 {
		r.Enqueue(&queueing.Task{ID: 1, Demand: 100e6}) // 1s on one 100MB/s drive
		steps := 0
		for !r.Idle() {
			r.Step(0.01)
			r.Drain(func(*queueing.Task) {})
			steps++
			if steps > 10000 {
				t.Fatal("raid read never completed")
			}
		}
		return float64(steps) * 0.01
	}
	t1 := read(one)
	t4 := read(four)
	if t4 >= t1 {
		t.Errorf("striping did not accelerate: 1 disk %.2fs vs 4 disks %.2fs", t1, t4)
	}
	if ratio := t1 / t4; ratio < 2.5 {
		t.Errorf("4-way striping speedup %.2f, want > 2.5", ratio)
	}
}

func TestRAIDCacheHitBypassesDisks(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	disk := DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0}
	r := NewRAID(s, "raid", RAIDSpec{Disks: 4, Disk: disk, CtrlGbps: 4, HitRate: 1})
	r.Enqueue(&queueing.Task{ID: 1, Demand: 100e6})
	done := drainAll(t, r, 0.01, 1000)
	if len(done) != 1 {
		t.Fatal("request incomplete")
	}
	if b := r.TakeBusy(); b != 0 {
		t.Errorf("drives did work (%v s) despite 100%% cache hit", b)
	}
}

func TestRAIDJoinWaitsForAllStripes(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	disk := DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0}
	r := NewRAID(s, "raid", RAIDSpec{Disks: 8, Disk: disk, CtrlGbps: 4, HitRate: 0})
	r.Enqueue(&queueing.Task{ID: 7, Demand: 800e6}) // 1s per stripe on 8 disks
	var completions []*queueing.Task
	elapsed := 0.0
	for !r.Idle() {
		r.Step(0.01)
		elapsed += 0.01
		r.Drain(func(task *queueing.Task) { completions = append(completions, task) })
		if elapsed > 100 {
			t.Fatal("join never completed")
		}
	}
	if len(completions) != 1 || completions[0].ID != 7 {
		t.Fatalf("completions = %v", completions)
	}
	if elapsed < 1.0 {
		t.Errorf("join completed in %.2fs, before the 1s stripe time", elapsed)
	}
}

func TestSANPipelineCompletes(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	san := NewSAN(s, "san", SANSpec{
		Disks:        20,
		Disk:         DiskSpec{CtrlGbps: 4, MBps: 120, HitRate: 0.1},
		FCSwitchGbps: 8, CtrlGbps: 4, FCALGbps: 4, HitRate: 0,
	})
	san.Enqueue(&queueing.Task{ID: 3, Demand: 240e6})
	done := drainAll(t, san, 0.01, 10000)
	if len(done) != 1 || done[0].ID != 3 {
		t.Fatalf("SAN completions = %v", done)
	}
}

func TestSANCacheHitSkipsLoopAndDisks(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	san := NewSAN(s, "san", SANSpec{
		Disks:        4,
		Disk:         DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0},
		FCSwitchGbps: 8, CtrlGbps: 4, FCALGbps: 4, HitRate: 1,
	})
	san.Enqueue(&queueing.Task{ID: 1, Demand: 400e6})
	done := drainAll(t, san, 0.01, 1000)
	if len(done) != 1 {
		t.Fatal("request incomplete")
	}
	if b := san.TakeBusy(); b != 0 {
		t.Errorf("drives did work (%v s) despite 100%% cache hit", b)
	}
}

func TestStorageSpecValidation(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid RAIDSpec did not panic")
			}
		}()
		NewRAID(s, "bad", RAIDSpec{Disks: 0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid SANSpec did not panic")
			}
		}()
		NewSAN(s, "bad", SANSpec{Disks: 1})
	}()
}

// Property: for any mix of request sizes, a RAID with no caches conserves
// work — total drive busy time equals total demand divided by aggregate
// drive throughput.
func TestRAIDWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 16 {
			return true
		}
		s := core.NewSimulation(core.Config{})
		disk := DiskSpec{CtrlGbps: 100, MBps: 100, HitRate: 0}
		r := NewRAID(s, "raid", RAIDSpec{Disks: 4, Disk: disk, CtrlGbps: 100, HitRate: 0})
		total := 0.0
		for i, v := range raw {
			d := float64(v%1000)*1e5 + 1e5
			total += d
			r.Enqueue(&queueing.Task{ID: uint64(i), Demand: d})
		}
		for i := 0; i < 1000000 && !r.Idle(); i++ {
			r.Step(0.05)
			r.Drain(func(*queueing.Task) {})
		}
		busy := r.TakeBusy()
		return math.Abs(busy-total/100e6) < 1e-6*float64(len(raw))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestAgentHorizons checks each hardware agent's event horizon: +Inf when
// idle, the exact earliest internal event when loaded, and per-tick
// equivalence of the bulk-step path against plain stepping.
func TestAgentHorizons(t *testing.T) {
	s := core.NewSimulation(core.Config{})
	cpu := NewCPU(s, "cpu", CPUSpec{Sockets: 1, Cores: 2, GHz: 1e-9}) // 1 cycle/s per core
	nic := NewNIC(s, "nic", 8e-9)                                     // 1 byte/s
	raid := NewRAID(s, "raid", RAIDSpec{
		Disks: 2, Disk: DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
		CtrlGbps: 8, HitRate: 0,
	})
	for _, a := range []core.Agent{cpu, nic, raid} {
		if h := a.Horizon(); !math.IsInf(h, 1) {
			t.Errorf("%s idle horizon = %v, want +Inf", a.Name(), h)
		}
	}
	cpu.Enqueue(&queueing.Task{ID: 1, Demand: 4})
	cpu.Enqueue(&queueing.Task{ID: 2, Demand: 9})
	if h := cpu.Horizon(); h != 4 {
		t.Errorf("cpu horizon = %v, want 4 (earliest core completion)", h)
	}
	nic.Enqueue(&queueing.Task{ID: 3, Demand: 2.5})
	if h := nic.Horizon(); h != 2.5 {
		t.Errorf("nic horizon = %v, want 2.5", h)
	}
	raid.Enqueue(&queueing.Task{ID: 4, Demand: 64e6})
	h := raid.Horizon()
	if math.IsInf(h, 1) || h <= 0 {
		t.Errorf("loaded raid horizon = %v, want finite positive (controller-cache service)", h)
	}
	if want := 64e6 / (8e9 / 8); h != want {
		t.Errorf("raid horizon = %v, want %v (dacc service time)", h, want)
	}
}

// TestStepNMatchesStep drives every bulk-stepping hardware agent through a
// jump-sized window and asserts the final state equals per-tick stepping:
// the replay contract behind fast-forward.
func TestStepNMatchesStep(t *testing.T) {
	build := func() (*core.Simulation, []core.Agent) {
		s := core.NewSimulation(core.Config{Seed: 11})
		cpu := NewCPU(s, "cpu", CPUSpec{Sockets: 2, Cores: 2, GHz: 2.5})
		link := NewLink(s, "link", LinkSpec{Gbps: 1, LatencyMS: 45})
		san := NewSAN(s, "san", SANSpec{
			Disks: 4, Disk: DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
			FCSwitchGbps: 8, CtrlGbps: 8, FCALGbps: 8, HitRate: 0.05,
		})
		cpu.Enqueue(&queueing.Task{ID: 1, Demand: 3e9})
		cpu.Enqueue(&queueing.Task{ID: 2, Demand: 7e9})
		link.Enqueue(&queueing.Task{ID: 3, Demand: 80e6})
		san.Enqueue(&queueing.Task{ID: 4, Demand: 96e6})
		return s, []core.Agent{cpu, link, san}
	}
	const dt, n = 0.01, 700
	_, bulk := build()
	_, plain := build()
	for i, a := range bulk {
		ref := plain[i]
		for tick := 0; tick < 3*n; tick += n {
			a.(core.BulkStepper).StepN(n, dt)
			for j := 0; j < n; j++ {
				ref.Step(dt)
			}
			var ad, rd int
			a.Drain(func(*queueing.Task) { ad++ })
			ref.Drain(func(*queueing.Task) { rd++ })
			if ad != rd {
				t.Fatalf("%s: completions after window differ: %d vs %d", a.Name(), ad, rd)
			}
		}
		if ab, rb := takeBusy(a), takeBusy(ref); ab != rb {
			t.Errorf("%s: busy accumulators differ: %v vs %v", a.Name(), ab, rb)
		}
		if a.Idle() != ref.Idle() {
			t.Errorf("%s: idle %v vs %v", a.Name(), a.Idle(), ref.Idle())
		}
	}
}

func takeBusy(a core.Agent) float64 {
	switch v := a.(type) {
	case *CPU:
		return v.TakeBusy()
	case *Link:
		return v.TakeBusy()
	case *SAN:
		return v.TakeBusy()
	}
	return 0
}
