package hardware

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/queueing"
)

// NIC models a network interface card as an M/M/1 FCFS queue (Fig. 3-6
// left). Demands are bytes; the rate derives from the card speed.
type NIC struct {
	core.AgentBase
	q    *queueing.FCFS
	rate float64
}

// NewNIC creates and registers a NIC with speed in Gbps.
func NewNIC(sim *core.Simulation, name string, gbps float64) *NIC {
	if gbps <= 0 {
		panic(fmt.Sprintf("hardware: invalid NIC speed %v Gbps", gbps))
	}
	rate := gbps * 1e9 / 8 // bytes per second
	n := &NIC{q: queueing.NewFCFS(1, rate), rate: rate}
	n.q.SetNotify(n.MarkDirty)
	n.InitAgent(sim.NextAgentID(), name)
	sim.AddAgent(n)
	return n
}

// Rate returns the service rate in bytes/second.
func (n *NIC) Rate() float64 { return n.rate }

// Enqueue adds a transfer task (Demand in bytes), after catching up any
// ticks the bulk-dense loop deferred. The queue's notify hook forwards the
// activation/invalidation to the agent.
func (n *NIC) Enqueue(t *queueing.Task) {
	n.Sync()
	n.q.Enqueue(t)
}

// Step advances the queue.
func (n *NIC) Step(dt float64) { n.q.Step(dt, n.BufferDone) }

// StepN advances the queue through nticks quiet ticks in bulk.
func (n *NIC) StepN(nticks int, dt float64) { stepBulk(n.q, nticks, dt, n.BufferDone) }

// Idle reports whether the NIC has no work.
func (n *NIC) Idle() bool { return n.q.Idle() }

// Horizon returns the time until the NIC's next completion.
func (n *NIC) Horizon() float64 { return n.q.Horizon() }

// TakeBusy returns busy seconds since the last call.
func (n *NIC) TakeBusy() float64 { return n.q.TakeBusy() }

// Switch models a network switch as an M/M/1 FCFS queue (Fig. 3-6 center),
// typically an order of magnitude faster than the NICs it serves.
type Switch struct {
	core.AgentBase
	q    *queueing.FCFS
	rate float64
}

// NewSwitch creates and registers a switch with speed in Gbps.
func NewSwitch(sim *core.Simulation, name string, gbps float64) *Switch {
	if gbps <= 0 {
		panic(fmt.Sprintf("hardware: invalid switch speed %v Gbps", gbps))
	}
	rate := gbps * 1e9 / 8
	s := &Switch{q: queueing.NewFCFS(1, rate), rate: rate}
	s.q.SetNotify(s.MarkDirty)
	s.InitAgent(sim.NextAgentID(), name)
	sim.AddAgent(s)
	return s
}

// Rate returns the service rate in bytes/second.
func (s *Switch) Rate() float64 { return s.rate }

// Enqueue adds a forwarding task (Demand in bytes), after catching up any
// ticks the bulk-dense loop deferred. The queue's notify hook forwards the
// activation/invalidation to the agent.
func (s *Switch) Enqueue(t *queueing.Task) {
	s.Sync()
	s.q.Enqueue(t)
}

// Step advances the queue.
func (s *Switch) Step(dt float64) { s.q.Step(dt, s.BufferDone) }

// StepN advances the queue through n quiet ticks in bulk.
func (s *Switch) StepN(n int, dt float64) { stepBulk(s.q, n, dt, s.BufferDone) }

// Idle reports whether the switch has no work.
func (s *Switch) Idle() bool { return s.q.Idle() }

// Horizon returns the time until the switch's next completion.
func (s *Switch) Horizon() float64 { return s.q.Horizon() }

// TakeBusy returns busy seconds since the last call.
func (s *Switch) TakeBusy() float64 { return s.q.TakeBusy() }

// Link models a network link as an M/M/1/k processor-sharing queue with a
// constant latency (Fig. 3-6 right). Bandwidth is divided uniformly among
// the tasks being served; k bounds the simultaneous connections.
type Link struct {
	core.AgentBase
	q        *queueing.PS
	rate     float64
	capShare float64 // fraction of raw bandwidth allocated to this platform
	failed   bool

	// Healthy-state parameters, restored by Repair after a Degrade.
	baseRate    float64
	baseLatency float64
}

// LinkSpec describes a link: bandwidth, latency, connection limit and the
// fraction of the raw bandwidth allocated to the simulated platform (the
// Fortune 500 company caps its applications at 20% of WAN capacity, §6.3.3).
type LinkSpec struct {
	Gbps      float64
	LatencyMS float64
	MaxConn   int     // 0 selects a generous default of 4096
	Allocated float64 // fraction (0,1]; 0 selects 1.0
}

// NewLink creates and registers a link.
func NewLink(sim *core.Simulation, name string, spec LinkSpec) *Link {
	if spec.Gbps <= 0 || spec.LatencyMS < 0 {
		panic(fmt.Sprintf("hardware: invalid LinkSpec %+v", spec))
	}
	if spec.MaxConn <= 0 {
		spec.MaxConn = 4096
	}
	share := spec.Allocated
	if share <= 0 {
		share = 1
	}
	if share > 1 {
		panic(fmt.Sprintf("hardware: link allocation %v > 1", share))
	}
	rate := spec.Gbps * 1e9 / 8 * share // usable bytes/second
	l := &Link{
		q:           queueing.NewPS(rate, spec.MaxConn, spec.LatencyMS/1000),
		rate:        rate,
		capShare:    share,
		baseRate:    rate,
		baseLatency: spec.LatencyMS / 1000,
	}
	l.q.SetNotify(l.MarkDirty)
	l.InitAgent(sim.NextAgentID(), name)
	sim.AddAgent(l)
	return l
}

// Rate returns the usable (allocated) bandwidth in bytes/second.
func (l *Link) Rate() float64 { return l.rate }

// Latency returns the link latency in seconds.
func (l *Link) Latency() float64 { return l.q.Latency() }

// FreeSlot reports whether an arriving transfer would be promoted straight
// into a connection slot at the next service event — no task waiting out
// the connection limit ahead of it. The sharded runtime's replayed
// cross-shard deliveries require it: a latency countdown can only be
// reconstructed for a task that held its slot from the posting instant, so
// a contended link at application time is a loud protocol failure. With
// the default limit of 4096 slots against dozens of concurrent WAN
// transfers, contention is structurally absent.
func (l *Link) FreeSlot() bool {
	return l.q.Waiting()+l.q.InService() < l.q.MaxConnections()
}

// Enqueue adds a transfer (Demand in bytes), after catching up any ticks
// the bulk-dense loop deferred; the queue's notify hook forwards the
// activation/invalidation to the agent. A failed link still accepts
// transfers: failure is a routing-plane event (see Fail), and a message
// whose route was pinned before the failure may reach the link stages
// later — those committed transfers drain normally rather than crashing
// or stalling the flow.
func (l *Link) Enqueue(t *queueing.Task) {
	l.Sync()
	l.q.Enqueue(t)
}

// Step advances the queue.
func (l *Link) Step(dt float64) { l.q.Step(dt, l.BufferDone) }

// StepN advances the queue through n quiet ticks in bulk, falling back to
// per-tick stepping when a completion or latency expiry might fall inside
// the window.
func (l *Link) StepN(n int, dt float64) { stepBulk(l.q, n, dt, l.BufferDone) }

// bulkQueue is the method set FCFS and PS share for bulk-stepped replays.
type bulkQueue interface {
	CanBulk(span float64) bool
	BulkStep(n int, dt float64)
	Step(dt float64, done queueing.DoneFunc)
}

// stepBulk advances a queue through n quiet ticks in bulk, replaying tick
// by tick when the no-event guarantee does not hold.
func stepBulk(q bulkQueue, n int, dt float64, done queueing.DoneFunc) {
	if q.CanBulk(float64(n) * dt) {
		q.BulkStep(n, dt)
		return
	}
	for i := 0; i < n; i++ {
		q.Step(dt, done)
	}
}

// Idle reports whether the link carries no traffic.
func (l *Link) Idle() bool { return l.q.Idle() }

// Horizon returns the time until the link's next internal event (a latency
// expiry changing the bandwidth share, or a transfer completion).
func (l *Link) Horizon() float64 { return l.q.Horizon() }

// TakeBusy returns bytes transferred since the last call. Utilization of
// the allocated capacity over a window is bytes / (Rate() x window).
func (l *Link) TakeBusy() float64 { return l.q.TakeBusy() }

// Fail marks the link down; Restore brings it back. The semantics are
// complete-then-divert, with commitment at route-pinning (plan expansion)
// time: every message expanded before the failure keeps its route and
// drains through the failed link at full rate as if healthy — the
// abstraction models route withdrawal, not packet loss; a real router
// drains its egress buffers while the routing protocol converges — while
// every message expanded after the failure is diverted, because routing
// (topology.Path / usableLink) refuses failed links. This is the
// deterministic contract the fault suite pins with TestFailWANInFlight;
// stall-until-restore was rejected because it would couple in-flight
// completion times to the restore tick, making recovery metrics measure
// the scheduler instead of the platform.
func (l *Link) Fail() { l.failed = true }

// Restore brings a failed link back into service.
func (l *Link) Restore() { l.failed = false }

// Failed reports the link failure state.
func (l *Link) Failed() bool { return l.failed }

// Degrade models a brownout: the usable rate is scaled to factor times the
// healthy rate and the latency to 1/factor times the healthy latency
// (congested paths both thin out and slow down). The factor is absolute
// against the healthy state, not cumulative, so repeated calls do not
// compound; factor 1 restores the healthy parameters. In-flight transfers
// finish their remaining demand at the new share, while only transfers
// enqueued after the change observe the new latency (the latency is
// snapshotted into each task at Enqueue). Callers must invoke it from a
// sequential phase and bracket it with Sync/MarkDirty on this agent, which
// the topology-layer helpers do. Panics on factor outside (0, 1].
func (l *Link) Degrade(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("hardware: link degrade factor %v outside (0, 1]", factor))
	}
	l.rate = l.baseRate * factor
	l.q.SetRate(l.rate)
	l.q.SetLatency(l.baseLatency / factor)
}

// Repair restores the healthy rate and latency after a Degrade. Like
// Degrade it needs a sequential phase and Sync/MarkDirty bracketing.
func (l *Link) Repair() {
	l.rate = l.baseRate
	l.q.SetRate(l.baseRate)
	l.q.SetLatency(l.baseLatency)
}

// Degraded reports whether the link currently runs below its healthy rate.
func (l *Link) Degraded() bool { return l.rate != l.baseRate }

// Arrivals returns the total number of transfers ever enqueued on the
// link. The fault suite samples it on backup links to detect when diverted
// traffic starts flowing (time-to-reroute).
func (l *Link) Arrivals() uint64 { return l.q.Arrivals() }

var (
	_ core.QueueAgent = (*NIC)(nil)
	_ core.QueueAgent = (*Switch)(nil)
	_ core.QueueAgent = (*Link)(nil)
)
