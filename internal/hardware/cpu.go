// Package hardware implements the queueing-network models of the data
// center components (§3.4.2), each as a core.Agent:
//
//   - CPU: p x M/M/q FCFS — one FCFS queue with q core-servers per socket
//     (Fig. 3-4); tasks carry cycle demands consumed at the core frequency.
//   - Memory: the only component not modeled as a queue — cache-hit bypass
//     and occupancy accounting (Fig. 3-5).
//   - NIC and network switch: M/M/1 FCFS (Fig. 3-6 left/center).
//   - Network link: M/M/1/k PS with constant latency (Fig. 3-6 right).
//   - Disk: controller-cache queue chained to a drive queue.
//   - RAID: an n-way fork-join of disks behind a disk-array controller
//     cache (Fig. 3-7).
//   - SAN: fibre-channel switch, disk-array controller cache and
//     fibre-channel arbitrated loop ahead of the fork-join (Fig. 3-8).
//
// Demand units: CPU demands are cycles; network demands are bytes (rates
// derived from Gbps/Mbps specs divided by 8); storage demands are bytes.
package hardware

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/queueing"
)

// CPUSpec describes a multi-socket multi-core processor.
type CPUSpec struct {
	Sockets  int     // p
	Cores    int     // q per socket
	GHz      float64 // per-core frequency
	HTFactor float64 // hyper-threading speedup factor (>= 1, default 1)
}

func (s CPUSpec) validate() error {
	if s.Sockets <= 0 || s.Cores <= 0 || s.GHz <= 0 {
		return fmt.Errorf("hardware: invalid CPUSpec %+v", s)
	}
	return nil
}

// TotalCores returns p*q.
func (s CPUSpec) TotalCores() int { return s.Sockets * s.Cores }

// CPU models a p-socket q-core processor as p FCFS queues with q servers
// each (Fig. 3-4). Incoming tasks are assigned to sockets round-robin.
type CPU struct {
	core.AgentBase
	spec    CPUSpec
	sockets []*queueing.FCFS
	rr      int

	derate  float64 // fault brown-out factor in (0, 1]; 1 = healthy
	reserve float64 // fluid-tier reserved capacity fraction in [0, 1)
}

// NewCPU creates and registers a CPU agent.
func NewCPU(sim *core.Simulation, name string, spec CPUSpec) *CPU {
	if err := spec.validate(); err != nil {
		panic(err)
	}
	if spec.HTFactor <= 0 {
		spec.HTFactor = 1
	}
	c := &CPU{spec: spec, derate: 1}
	rate := spec.GHz * 1e9 * spec.HTFactor // cycles per second per core
	for i := 0; i < spec.Sockets; i++ {
		q := queueing.NewFCFS(spec.Cores, rate)
		q.SetNotify(c.MarkDirty) // sockets only receive external enqueues
		c.sockets = append(c.sockets, q)
	}
	c.InitAgent(sim.NextAgentID(), name)
	sim.AddAgent(c)
	return c
}

// Spec returns the processor specification.
func (c *CPU) Spec() CPUSpec { return c.spec }

// Rate returns the current per-core service rate in cycles/second
// (reflecting any Derate). It is the capability the span scheduler's
// chain-completion guard keys on: a task's service on any core takes at
// least Demand/Rate seconds.
func (c *CPU) Rate() float64 { return c.sockets[0].Rate() }

// Derate scales every core's service rate to factor times the healthy rate
// (a browned-out data center running on reduced power). The factor is
// absolute against the spec rate, not cumulative; factor 1 restores full
// speed. In-service tasks finish their remaining cycles at the new rate.
// Callers must invoke it from a sequential phase and bracket it with
// Sync/MarkDirty on this agent, which the topology-layer helpers do.
// Panics on factor outside (0, 1] — a fully dead DC is modeled by
// isolating it, not by a zero rate.
func (c *CPU) Derate(factor float64) {
	if factor <= 0 || factor > 1 {
		panic(fmt.Sprintf("hardware: CPU derate factor %v outside (0, 1]", factor))
	}
	c.derate = factor
	c.applyRate()
}

// Reserve withholds a fraction of every core's capacity for analytically
// aggregated (fluid) traffic: discrete tasks see only the residual rate, so
// a tier shared between a fluid flow and discrete cascades reports honest
// queueing for the latter. The fraction is absolute — successive calls
// replace, not compound — and composes multiplicatively with any fault
// Derate in effect. Like Derate, callers must invoke it from a sequential
// phase and bracket it with Sync/MarkDirty on this agent (the
// topology.Tier.ReserveCPU helper does). Panics outside [0, 1): a flow
// claiming the whole tier must be rejected by the fluid saturation guard
// upstream, not silently zero the rate.
func (c *CPU) Reserve(frac float64) {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("hardware: CPU reserve fraction %v outside [0, 1)", frac))
	}
	c.reserve = frac
	c.applyRate()
}

// Reserved returns the capacity fraction currently withheld by Reserve.
func (c *CPU) Reserved() float64 { return c.reserve }

// applyRate recomputes the per-core service rate from the spec and the two
// absolute factors. In-service tasks finish their remaining cycles at the
// new rate.
func (c *CPU) applyRate() {
	rate := c.spec.GHz * 1e9 * c.spec.HTFactor * c.derate * (1 - c.reserve)
	for _, s := range c.sockets {
		s.SetRate(rate)
	}
}

// Enqueue assigns the task to the next socket round-robin, after catching
// up any ticks the bulk-dense loop deferred. The socket's notify hook
// forwards the activation/invalidation to the agent.
func (c *CPU) Enqueue(t *queueing.Task) {
	c.Sync()
	c.sockets[c.rr].Enqueue(t)
	c.rr = (c.rr + 1) % len(c.sockets)
}

// Step advances every socket queue.
func (c *CPU) Step(dt float64) {
	for _, s := range c.sockets {
		s.Step(dt, c.BufferDone)
	}
}

// StepN advances every socket through n quiet ticks in bulk. The fallback
// is whole-agent: if any socket might complete work in the window, all
// sockets replay tick by tick so completions buffer in the same
// tick-major order the plain loop produces.
func (c *CPU) StepN(n int, dt float64) {
	span := float64(n) * dt
	for _, s := range c.sockets {
		if !s.CanBulk(span) {
			for i := 0; i < n; i++ {
				c.Step(dt)
			}
			return
		}
	}
	for _, s := range c.sockets {
		s.BulkStep(n, dt)
	}
}

// Idle reports whether all sockets are empty.
func (c *CPU) Idle() bool {
	for _, s := range c.sockets {
		if !s.Idle() {
			return false
		}
	}
	return true
}

// Horizon returns the time until the earliest completion on any socket.
func (c *CPU) Horizon() float64 {
	h := math.Inf(1)
	for _, s := range c.sockets {
		if sh := s.Horizon(); sh < h {
			h = sh
		}
	}
	return h
}

// TakeBusy returns accumulated busy core-seconds across all sockets since
// the last call. Dividing by TotalCores x window yields CPU utilization.
func (c *CPU) TakeBusy() float64 {
	b := 0.0
	for _, s := range c.sockets {
		b += s.TakeBusy()
	}
	return b
}

// QueueDepth reports the total number of waiting (not in service) tasks,
// used by least-loaded balancing.
func (c *CPU) QueueDepth() int {
	n := 0
	for _, s := range c.sockets {
		n += s.Waiting() + s.InService()
	}
	return n
}

var _ core.QueueAgent = (*CPU)(nil)
