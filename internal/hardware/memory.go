package hardware

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/core"
)

// Memory models the two effects of Fig. 3-5: caching — a cache hit bypasses
// the storage queues entirely — and occupancy — an amount of memory is held
// for the duration of a message's processing at the server. It is the one
// component not modeled as a queue (§3.4.2), so it is not an agent; the
// topology router consults it while expanding messages (sequential phase)
// and wires Acquire/Release into stage hooks.
type Memory struct {
	capacity float64 // bytes
	used     float64 // bytes currently held
	hitRate  float64 // probability a storage access hits the cache
	rng      *rand.Rand
	peak     float64
}

// NewMemory creates a memory component with capacity in bytes and a cache
// hit rate in [0,1]. The rng stream keeps hit decisions deterministic:
// its state is derived from the caller's seed through core.DeriveSeed, so
// each memory's draws depend only on its own identity.
func NewMemory(capacity, hitRate float64, seed uint64) *Memory {
	if capacity <= 0 || hitRate < 0 || hitRate > 1 {
		panic(fmt.Sprintf("hardware: invalid Memory capacity=%v hitRate=%v", capacity, hitRate))
	}
	return &Memory{
		capacity: capacity,
		hitRate:  hitRate,
		rng:      rand.New(rand.NewPCG(core.DeriveSeed(seed, 1), core.DeriveSeed(seed, 2))),
	}
}

// Capacity returns the memory size in bytes.
func (m *Memory) Capacity() float64 { return m.capacity }

// Used returns the bytes currently held.
func (m *Memory) Used() float64 { return m.used }

// Peak returns the maximum bytes ever held.
func (m *Memory) Peak() float64 { return m.peak }

// Acquire holds b bytes for the duration of a message's processing.
// Occupancy may exceed capacity — real servers swap — but the overflow is
// observable through Used()/Capacity() for saturation detection.
func (m *Memory) Acquire(b float64) {
	if b < 0 {
		panic("hardware: negative memory acquisition")
	}
	m.used += b
	if m.used > m.peak {
		m.peak = m.used
	}
}

// Release returns b bytes. Releasing more than held panics: it indicates
// unbalanced stage hooks.
func (m *Memory) Release(b float64) {
	if b < 0 {
		panic("hardware: negative memory release")
	}
	m.used -= b
	if m.used < -1e-6 {
		panic(fmt.Sprintf("hardware: memory over-released to %v", m.used))
	}
	if m.used < 0 {
		m.used = 0
	}
}

// Hit reports whether a storage access hits the cache, consuming one
// deterministic random draw.
func (m *Memory) Hit() bool {
	if m.hitRate <= 0 {
		return false
	}
	if m.hitRate >= 1 {
		return true
	}
	return m.rng.Float64() < m.hitRate
}
