package scenarios

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
)

// TestStretchBarrierDrop is the headline guarantee of window stretching:
// on the fine-step day-night scenario with per-tick Poisson polls (the
// worst case for the classic one-barrier-per-window loop), spans must cut
// global barriers by at least 5x while reproducing the NoStretch and
// sequential digests bit for bit. In practice the drop is ~3 orders of
// magnitude — spans run straight to the next collector boundary — but the
// test pins only the acceptance floor so slower machines with fewer
// stretching opportunities still pass.
func TestStretchBarrierDrop(t *testing.T) {
	run := func(noStretch bool) *DayNightResult {
		t.Helper()
		res, err := RunDayNight(DayNightConfig{
			Seed: 42, Hours: 1, NoThinning: true,
			Engine: dispatch.NewSharded(1), NoStretch: noStretch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(false)
	off := run(true)

	if on.Result.Stats.WindowsStretched == 0 {
		t.Fatal("stretching never engaged; the test pins nothing")
	}
	if off.Result.Stats.WindowsStretched != 0 {
		t.Errorf("NoStretch run stretched %d windows, want 0", off.Result.Stats.WindowsStretched)
	}
	if on.Result.Stats.Barriers == 0 || off.Result.Stats.Barriers == 0 {
		t.Fatalf("barrier counters empty: on=%d off=%d", on.Result.Stats.Barriers, off.Result.Stats.Barriers)
	}
	if ratio := float64(off.Result.Stats.Barriers) / float64(on.Result.Stats.Barriers); ratio < 5 {
		t.Errorf("barriers dropped only %.1fx (on=%d off=%d), want >= 5x",
			ratio, on.Result.Stats.Barriers, off.Result.Stats.Barriers)
	}
	if len(on.Result.Stats.ShardStretch) == 0 {
		t.Error("stretched run reported no per-shard stretch counters")
	}

	// Stretching must not change a single bit of what the run computed.
	seq, err := RunDayNight(DayNightConfig{Seed: 42, Hours: 1, NoThinning: true})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := on.Result.Digest(), off.Result.Digest(); a != b {
		t.Errorf("stretched digest diverged from NoStretch:\n%s\n%s", a, b)
	}
	if a, b := on.Result.Digest(), seq.Result.Digest(); a != b {
		t.Errorf("stretched digest diverged from sequential loop:\n%s\n%s", a, b)
	}
}

// TestMailboxDueTimeSafety is the lookahead-safety property test: every
// cross-shard mailbox message carries a WAN-delayed due time, and the
// receiving shard must never apply one at a tick earlier than its
// committed safe horizon. The apply path panics on a violation, so the
// test's job is to prove the property was actually exercised — the
// consolidation platform pushes thousands of cross-DC cascade hops through
// the mailboxes, and with the per-shard lookahead installed a share of them
// lands mid-span through the shard inboxes (WindowsStretched > 0 despite
// live cross-DC traffic) — and that the observed slack never went negative.
// Every shard count must reproduce the sequential and NoCrossStretch
// digests bit for bit: mid-span delivery is a scheduling change, never a
// results change.
func TestMailboxDueTimeSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("mailbox safety property skipped in -short")
	}
	run := func(eng core.Engine, noCross bool) *CaseStudy {
		t.Helper()
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 3, EndHour: 4,
			Engine: eng, NoCrossStretch: noCross,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		return cs
	}
	ref := run(&core.SequentialEngine{}, false).Result.Digest()

	cs := run(dispatch.NewSharded(4), false)
	applied, minSlack, ok := cs.Sim.MailboxAudit()
	if !ok {
		t.Fatal("no cross-shard mailbox traffic; the property was never exercised")
	}
	if applied == 0 {
		t.Fatal("mailbox audit reports zero applied messages")
	}
	if minSlack < 0 {
		t.Errorf("a mailbox message was applied %d ticks before its receiver's safe horizon", -minSlack)
	}
	if st := cs.Result.Stats; st.WindowsStretched == 0 {
		t.Error("no window stretched under live cross-DC traffic; mid-span delivery never engaged")
	} else if st.MailboxApplied != applied || st.MailboxMinSlack != int64(minSlack) {
		t.Errorf("RunStats mailbox mirror (%d, %d) diverged from MailboxAudit (%d, %d)",
			st.MailboxApplied, st.MailboxMinSlack, applied, minSlack)
	}
	t.Logf("mailbox audit: %d messages applied, minimum slack %d ticks, %d windows stretched",
		applied, minSlack, cs.Result.Stats.WindowsStretched)

	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("digest-sharded-%d", n), func(t *testing.T) {
			if got := run(dispatch.NewSharded(n), false).Result.Digest(); got != ref {
				t.Errorf("mid-span delivery diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
	t.Run("digest-sharded-4-nocross", func(t *testing.T) {
		cs := run(dispatch.NewSharded(4), true)
		if got := cs.Result.Digest(); got != ref {
			t.Errorf("NoCrossStretch digest diverged from sequential loop:\n%s\n%s", ref, got)
		}
	})
}

// TestMailboxAuditContract pins the exact shape of Simulation.MailboxAudit
// across the engine matrix: (0, 0, false) whenever the sharded runtime is
// off — sequential engines and NoShards runs — and (applied > 0,
// minSlack >= 0, true) whenever it is on and traffic crossed shards,
// with or without window stretching. A shard that received no traffic must
// never drag the minimum to its zero-initialized counter.
func TestMailboxAuditContract(t *testing.T) {
	if testing.Short() {
		t.Skip("mailbox audit contract skipped in -short")
	}
	run := func(eng core.Engine, noShards, noStretch bool) *CaseStudy {
		t.Helper()
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 3, EndHour: 4,
			Engine: eng, NoShards: noShards, NoStretch: noStretch,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		return cs
	}
	for _, tc := range []struct {
		name     string
		eng      core.Engine
		noShards bool
		wantOK   bool
	}{
		{"sequential", &core.SequentialEngine{}, false, false},
		{"noshards", dispatch.NewSharded(4), true, false},
		{"stretched", dispatch.NewSharded(4), false, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cs := run(tc.eng, tc.noShards, false)
			applied, minSlack, ok := cs.Sim.MailboxAudit()
			if ok != tc.wantOK {
				t.Fatalf("MailboxAudit ok = %v, want %v", ok, tc.wantOK)
			}
			if !ok {
				if applied != 0 || minSlack != 0 {
					t.Errorf("off shape = (%d, %d, false), want (0, 0, false)", applied, minSlack)
				}
				if st := cs.Result.Stats; st.MailboxApplied != 0 || st.MailboxMinSlack != 0 {
					t.Errorf("RunStats mailbox fields (%d, %d) nonzero with audit off",
						st.MailboxApplied, st.MailboxMinSlack)
				}
				return
			}
			if applied == 0 {
				t.Error("ok=true with zero applied messages")
			}
			if minSlack < 0 {
				t.Errorf("minimum slack %d ticks is negative", minSlack)
			}
		})
	}
	// NoStretch: every cross-shard hand-off still flows through the
	// barrier-drain mailboxes, applied at its posting tick — audit on.
	t.Run("nostretch", func(t *testing.T) {
		cs := run(dispatch.NewSharded(4), false, true)
		applied, minSlack, ok := cs.Sim.MailboxAudit()
		if !ok || applied == 0 {
			t.Fatalf("NoStretch audit = (%d, %d, %v), want applied traffic", applied, minSlack, ok)
		}
		if minSlack < 0 {
			t.Errorf("minimum slack %d ticks is negative", minSlack)
		}
	})
}

// TestChaosStretchBarriers pins the fault-schedule contract under window
// stretching: the fault controller is a global source, so its next
// transition tick bounds every span and forces a global barrier exactly on
// schedule — injections and recoveries land at their configured instants,
// never absorbed into a stretched span, and the faulted run stays
// bit-identical to its NoStretch twin. The chaos workload's cascades run
// cross-DC (EU clients against the NA master), so any stretching here is
// cross-flow stretching: spans form inside the WAN lookahead while global
// tokens are in flight, and the fault ticks still barrier exactly.
func TestChaosStretchBarriers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stretch leg skipped in -short")
	}
	run := func(extra ...experiment.Option) *experiment.Result {
		t.Helper()
		e, err := chaosExperiment(extra...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		ir := res.Faults.Injections[0]
		if ir.InjectedAt != 120 || ir.RecoveredAt != 240 {
			t.Fatalf("fault transitions at %v/%v, want exactly 120/240 — a stretched span crossed a fault tick",
				ir.InjectedAt, ir.RecoveredAt)
		}
		return res
	}
	mkEngine := experiment.WithEngine(func() core.Engine { return dispatch.NewSharded(3) })
	on := run(mkEngine)
	off := run(mkEngine, experiment.WithLoopFlags(experiment.LoopFlags{NoStretch: true}))
	if a, b := on.Digest(), off.Digest(); a != b {
		t.Errorf("faulted run diverged between stretch and NoStretch:\n%s\n%s", a, b)
	}
	if on.Stats.WindowsStretched == 0 {
		t.Error("no window stretched under the cross-DC chaos workload; the cross-flow leg pins nothing")
	}
	if on.Stats.MailboxApplied > 0 && on.Stats.MailboxMinSlack < 0 {
		t.Errorf("faulted run applied a mailbox message %d ticks past its due instant", -on.Stats.MailboxMinSlack)
	}
	if off.Stats.WindowsStretched != 0 {
		t.Errorf("NoStretch run stretched %d windows, want 0", off.Stats.WindowsStretched)
	}
}

// TestAutoShards pins the "sharded:auto" resolution rule on both surfaces:
// the helper itself and a compiled document.
func TestAutoShards(t *testing.T) {
	if n := experiment.AutoShards(1); n != 1 {
		t.Errorf("AutoShards(1) = %d, want 1", n)
	}
	if n := experiment.AutoShards(0); n < 1 {
		t.Errorf("AutoShards(0) = %d, want >= 1", n)
	}
	for _, dcs := range []int{1, 2, 7, 64} {
		n := experiment.AutoShards(dcs)
		if n < 1 || n > dcs && dcs >= 1 {
			t.Errorf("AutoShards(%d) = %d out of [1, %d]", dcs, n, dcs)
		}
	}
	if _, err := experiment.ParseEngine("sharded:auto"); err != nil {
		t.Errorf("ParseEngine(sharded:auto): %v", err)
	}
	if _, err := experiment.ParseEngine("sharded:nope"); err == nil {
		t.Error("ParseEngine(sharded:nope) accepted a malformed count")
	} else if want := "sharded:auto"; !strings.Contains(err.Error(), want) {
		t.Errorf("shard-count error %q does not mention %q", err, want)
	}
}
