package scenarios

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
)

// TestStretchBarrierDrop is the headline guarantee of window stretching:
// on the fine-step day-night scenario with per-tick Poisson polls (the
// worst case for the classic one-barrier-per-window loop), spans must cut
// global barriers by at least 5x while reproducing the NoStretch and
// sequential digests bit for bit. In practice the drop is ~3 orders of
// magnitude — spans run straight to the next collector boundary — but the
// test pins only the acceptance floor so slower machines with fewer
// stretching opportunities still pass.
func TestStretchBarrierDrop(t *testing.T) {
	run := func(noStretch bool) *DayNightResult {
		t.Helper()
		res, err := RunDayNight(DayNightConfig{
			Seed: 42, Hours: 1, NoThinning: true,
			Engine: dispatch.NewSharded(1), NoStretch: noStretch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	on := run(false)
	off := run(true)

	if on.Result.Stats.WindowsStretched == 0 {
		t.Fatal("stretching never engaged; the test pins nothing")
	}
	if off.Result.Stats.WindowsStretched != 0 {
		t.Errorf("NoStretch run stretched %d windows, want 0", off.Result.Stats.WindowsStretched)
	}
	if on.Result.Stats.Barriers == 0 || off.Result.Stats.Barriers == 0 {
		t.Fatalf("barrier counters empty: on=%d off=%d", on.Result.Stats.Barriers, off.Result.Stats.Barriers)
	}
	if ratio := float64(off.Result.Stats.Barriers) / float64(on.Result.Stats.Barriers); ratio < 5 {
		t.Errorf("barriers dropped only %.1fx (on=%d off=%d), want >= 5x",
			ratio, on.Result.Stats.Barriers, off.Result.Stats.Barriers)
	}
	if len(on.Result.Stats.ShardStretch) == 0 {
		t.Error("stretched run reported no per-shard stretch counters")
	}

	// Stretching must not change a single bit of what the run computed.
	seq, err := RunDayNight(DayNightConfig{Seed: 42, Hours: 1, NoThinning: true})
	if err != nil {
		t.Fatal(err)
	}
	if a, b := on.Result.Digest(), off.Result.Digest(); a != b {
		t.Errorf("stretched digest diverged from NoStretch:\n%s\n%s", a, b)
	}
	if a, b := on.Result.Digest(), seq.Result.Digest(); a != b {
		t.Errorf("stretched digest diverged from sequential loop:\n%s\n%s", a, b)
	}
}

// TestMailboxDueTimeSafety is the lookahead-safety property test: every
// cross-shard mailbox message carries a WAN-delayed due time, and the
// receiving shard must never apply one at a tick earlier than its
// committed safe horizon. The apply path panics on a violation, so the
// test's job is to prove the property was actually exercised — the
// consolidation platform pushes thousands of cross-DC cascade hops through
// the mailboxes — and that the observed slack never went negative.
func TestMailboxDueTimeSafety(t *testing.T) {
	if testing.Short() {
		t.Skip("mailbox safety property skipped in -short")
	}
	cs, err := NewConsolidation(CaseConfig{
		Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 3, EndHour: 4,
		Engine: dispatch.NewSharded(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()
	applied, minSlack, ok := cs.Sim.MailboxAudit()
	if !ok {
		t.Fatal("no cross-shard mailbox traffic; the property was never exercised")
	}
	if applied == 0 {
		t.Fatal("mailbox audit reports zero applied messages")
	}
	if minSlack < 0 {
		t.Errorf("a mailbox message was applied %d ticks before its receiver's safe horizon", -minSlack)
	}
	t.Logf("mailbox audit: %d messages applied, minimum slack %d ticks", applied, minSlack)
}

// TestChaosStretchBarriers pins the fault-schedule contract under window
// stretching: the fault controller is a global source, so its next
// transition tick bounds every span and forces a global barrier exactly on
// schedule — injections and recoveries land at their configured instants,
// never absorbed into a stretched span, and the faulted run stays
// bit-identical to its NoStretch twin.
func TestChaosStretchBarriers(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos stretch leg skipped in -short")
	}
	run := func(extra ...experiment.Option) *experiment.Result {
		t.Helper()
		e, err := chaosExperiment(extra...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		ir := res.Faults.Injections[0]
		if ir.InjectedAt != 120 || ir.RecoveredAt != 240 {
			t.Fatalf("fault transitions at %v/%v, want exactly 120/240 — a stretched span crossed a fault tick",
				ir.InjectedAt, ir.RecoveredAt)
		}
		return res
	}
	mkEngine := experiment.WithEngine(func() core.Engine { return dispatch.NewSharded(3) })
	on := run(mkEngine)
	off := run(mkEngine, experiment.WithLoopFlags(experiment.LoopFlags{NoStretch: true}))
	if a, b := on.Digest(), off.Digest(); a != b {
		t.Errorf("faulted run diverged between stretch and NoStretch:\n%s\n%s", a, b)
	}
}

// TestAutoShards pins the "sharded:auto" resolution rule on both surfaces:
// the helper itself and a compiled document.
func TestAutoShards(t *testing.T) {
	if n := experiment.AutoShards(1); n != 1 {
		t.Errorf("AutoShards(1) = %d, want 1", n)
	}
	if n := experiment.AutoShards(0); n < 1 {
		t.Errorf("AutoShards(0) = %d, want >= 1", n)
	}
	for _, dcs := range []int{1, 2, 7, 64} {
		n := experiment.AutoShards(dcs)
		if n < 1 || n > dcs && dcs >= 1 {
			t.Errorf("AutoShards(%d) = %d out of [1, %d]", dcs, n, dcs)
		}
	}
	if _, err := experiment.ParseEngine("sharded:auto"); err != nil {
		t.Errorf("ParseEngine(sharded:auto): %v", err)
	}
	if _, err := experiment.ParseEngine("sharded:nope"); err == nil {
		t.Error("ParseEngine(sharded:nope) accepted a malformed count")
	} else if want := "sharded:auto"; !strings.Contains(err.Error(), want) {
		t.Errorf("shard-count error %q does not mention %q", err, want)
	}
}
