package scenarios

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
)

// shardCounts is the equivalence matrix of the sharded engine. Counts
// above a scenario's DC population are deliberately included: the core
// runtime tolerates empty shards (the per-DC partition just leaves them
// idle), and only the declarative surfaces reject such configurations.
var shardCounts = []int{1, 2, 4, 8}

// TestShardedEquivalenceValidation pins the sharded engine's determinism
// contract on the validation scenario: every shard count must reproduce
// the sequential calendar loop's digest — run statistics (including jump
// counts), every response sample and every collector sample, bit for bit.
func TestShardedEquivalenceValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence matrix skipped in -short")
	}
	ref := runValidationWith(t, &core.SequentialEngine{}).Result.Digest()
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("sharded-%d", n), func(t *testing.T) {
			got := runValidationWith(t, dispatch.NewSharded(n)).Result.Digest()
			if got != ref {
				t.Errorf("digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
	// NoShards A/B: same engine and workers, sharded runtime disabled —
	// the sweep-only fallback must also match the reference bits.
	t.Run("sharded-4-noshards", func(t *testing.T) {
		res, err := RunValidation(ValidationConfig{
			Experiment: 1, Seed: 42, Engine: dispatch.NewSharded(4),
			LaunchFor: 120, RunFor: 150, SteadyStart: 30, SteadyEnd: 120,
			NoShards: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Result.Digest(); got != ref {
			t.Errorf("NoShards digest diverged from sequential loop:\n%s\n%s", ref, got)
		}
	})
	// NoStretch A/B: sharded runtime with a global barrier on every window —
	// window stretching must not have changed a bit relative to this baseline.
	t.Run("sharded-4-nostretch", func(t *testing.T) {
		res, err := RunValidation(ValidationConfig{
			Experiment: 1, Seed: 42, Engine: dispatch.NewSharded(4),
			LaunchFor: 120, RunFor: 150, SteadyStart: 30, SteadyEnd: 120,
			NoStretch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Result.Digest(); got != ref {
			t.Errorf("NoStretch digest diverged from sequential loop:\n%s\n%s", ref, got)
		}
	})
}

// TestShardedEquivalenceConsolidation covers the seven-DC consolidation
// platform — the scenario where the per-DC partition genuinely spreads
// agents across shards and cross-DC cascades cross shard boundaries
// through the drain mailboxes.
func TestShardedEquivalenceConsolidation(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence matrix skipped in -short")
	}
	run := func(eng core.Engine, noStretch bool) string {
		t.Helper()
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 3, EndHour: 4, Engine: eng,
			NoStretch: noStretch,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		return cs.Result.Digest()
	}
	ref := run(&core.SequentialEngine{}, false)
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("sharded-%d", n), func(t *testing.T) {
			if got := run(dispatch.NewSharded(n), false); got != ref {
				t.Errorf("digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
	t.Run("sharded-4-nostretch", func(t *testing.T) {
		if got := run(dispatch.NewSharded(4), true); got != ref {
			t.Errorf("NoStretch digest diverged from sequential loop:\n%s\n%s", ref, got)
		}
	})
}

// TestShardedEquivalenceDayNight covers the thinned day-night client
// workload: thinning changes the RNG draw sequence relative to per-tick
// polling but is engine-independent, so sharded digests must still match
// the sequential run under identical flags.
func TestShardedEquivalenceDayNight(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence matrix skipped in -short")
	}
	run := func(eng core.Engine, noStretch bool) string {
		t.Helper()
		res, err := RunDayNight(DayNightConfig{Seed: 42, Hours: 6, Engine: eng, NoStretch: noStretch})
		if err != nil {
			t.Fatal(err)
		}
		return res.Result.Digest()
	}
	ref := run(&core.SequentialEngine{}, false)
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("sharded-%d", n), func(t *testing.T) {
			if got := run(dispatch.NewSharded(n), false); got != ref {
				t.Errorf("digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
		// The day-night scenario is where stretching bites hardest, so the
		// NoStretch baseline runs at every shard count, not just one.
		t.Run(fmt.Sprintf("sharded-%d-nostretch", n), func(t *testing.T) {
			if got := run(dispatch.NewSharded(n), true); got != ref {
				t.Errorf("NoStretch digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
}

// TestShardedEquivalenceChaos pins the barrier behavior of fault ticks:
// the fault controller polls in the sequential phase of the exact window
// landing on its transition tick, so injections and recoveries land at
// their scheduled instants under every shard count, and the whole faulted
// run stays bit-identical to the sequential loop.
func TestShardedEquivalenceChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("sharded equivalence matrix skipped in -short")
	}
	run := func(extra ...experiment.Option) string {
		t.Helper()
		e, err := chaosExperiment(extra...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		ir := res.Faults.Injections[0]
		if ir.InjectedAt != 120 || ir.RecoveredAt != 240 {
			t.Fatalf("fault transitions at %v/%v, want 120/240 — a shard window crossed a fault tick",
				ir.InjectedAt, ir.RecoveredAt)
		}
		return res.Digest()
	}
	ref := run()
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("sharded-%d", n), func(t *testing.T) {
			n := n
			got := run(experiment.WithEngine(func() core.Engine { return dispatch.NewSharded(n) }))
			if got != ref {
				t.Errorf("digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
	t.Run("sharded-4-nostretch", func(t *testing.T) {
		got := run(
			experiment.WithEngine(func() core.Engine { return dispatch.NewSharded(4) }),
			experiment.WithLoopFlags(experiment.LoopFlags{NoStretch: true}),
		)
		if got != ref {
			t.Errorf("NoStretch digest diverged from sequential loop:\n%s\n%s", ref, got)
		}
	})
}
