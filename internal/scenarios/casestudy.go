package scenarios

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/topology"
	"repro/internal/workload"
)

// CaseConfig parameterizes the Chapter 6 and 7 case-study runs.
type CaseConfig struct {
	Step   float64 // default 10 ms
	Seed   uint64
	Engine core.Engine
	// StartHour/EndHour bound the simulated window of the day in GMT;
	// defaults cover the full day [0, 24).
	StartHour, EndHour int
	// Scale multiplies client populations, data growth, core counts and
	// WAN bandwidth together, preserving utilizations while shrinking the
	// run for tests and benchmarks. Default 1.
	Scale float64
	// DisableClients drops the interactive workloads (background-only
	// studies); DisableBackground drops the SR/IB daemons.
	DisableClients    bool
	DisableBackground bool
	// NoFastForward forces the plain tick-by-tick loop; NoCalendar keeps
	// fast-forward but restores the scan-based jump sizing; NoBulkDense
	// keeps the calendar but restores lock-step sweeps and drains. Results
	// are bit-identical in all four loop modes. NoThinning forces per-tick
	// Poisson draws in the client workloads — the flag that restores
	// bit-identity for client scenarios (thinning preserves the arrival
	// law, not the RNG draw sequence).
	NoFastForward bool
	NoCalendar    bool
	NoBulkDense   bool
	NoThinning    bool
}

func (c *CaseConfig) defaults() error {
	if c.Step <= 0 {
		c.Step = 0.01
	}
	if c.EndHour == 0 {
		c.EndHour = 24
	}
	if c.StartHour < 0 || c.EndHour <= c.StartHour || c.EndHour > 24 {
		return fmt.Errorf("scenarios: bad hour window [%d, %d)", c.StartHour, c.EndHour)
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return nil
}

// scaleCores scales a core count, keeping at least one core.
func (c CaseConfig) scaleCores(n int) int {
	s := int(math.Round(float64(n) * c.Scale))
	if s < 1 {
		return 1
	}
	return s
}

// dcTraits captures the per-data-center knobs of the case studies.
type dcTraits struct {
	// Business window in GMT hours and client population peaks.
	BizStart, BizEnd int
	CADPeak, VISPeak float64
	PDMPeak          float64
	// GrowthPeakMBh is the data-generation rate at the plateau.
	GrowthPeakMBh float64
	// Master tiers present (app/db/idx); fs always present.
	Master bool
	// Tier core sizing (per server) and server counts.
	AppServers, AppCores int
	DBServers, DBCores   int
	IdxServers, IdxCores int
	FSServers, FSCores   int
	ClientSlots          int
}

// CaseStudy is a built consolidation or multiple-master run.
type CaseStudy struct {
	Name    string
	Cfg     CaseConfig
	Sim     *core.Simulation
	Inf     *topology.Infrastructure
	Masters []string
	Sync    map[string]*background.SyncDaemon
	Idx     map[string]*background.IndexDaemon
	Growth  background.GrowthModel
	APM     workload.AccessMatrix

	traits map[string]dcTraits
}

// buildCaseStudy wires the infrastructure, workloads and daemons shared by
// both case studies.
func buildCaseStudy(name string, cfg CaseConfig, traits map[string]dcTraits,
	apm workload.AccessMatrix, masters []string, idxHeadroom float64) (*CaseStudy, error) {

	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	sim := core.NewSimulation(core.Config{
		Step:          cfg.Step,
		CollectEvery:  int(math.Round(60 / cfg.Step)), // 1-minute snapshots
		Seed:          cfg.Seed,
		Engine:        cfg.Engine,
		NoFastForward: cfg.NoFastForward,
		NoCalendar:    cfg.NoCalendar,
		NoBulkDense:   cfg.NoBulkDense,
		NoThinning:    cfg.NoThinning,
	})
	spec, err := caseInfraSpec(cfg, traits)
	if err != nil {
		return nil, err
	}
	inf, err := topology.Build(sim, spec)
	if err != nil {
		return nil, err
	}
	inf.RegisterProbes(sim.Collector)

	cs := &CaseStudy{
		Name: name, Cfg: cfg, Sim: sim, Inf: inf,
		Masters: masters,
		Sync:    map[string]*background.SyncDaemon{},
		Idx:     map[string]*background.IndexDaemon{},
		APM:     apm,
		traits:  traits,
	}
	cs.Growth = background.GrowthModel{}
	for dc, tr := range traits {
		if tr.GrowthPeakMBh > 0 {
			cs.Growth[dc] = workload.BusinessDay(tr.GrowthPeakMBh*cfg.Scale,
				tr.BizStart, tr.BizEnd, tr.GrowthPeakMBh*cfg.Scale*0.05).Shift(cfg.StartHour)
		}
	}

	if !cfg.DisableClients {
		if err := cs.attachWorkloads(); err != nil {
			return nil, err
		}
	}
	if !cfg.DisableBackground {
		cs.attachDaemons(idxHeadroom)
	}
	return cs, nil
}

// indexCyclesPerByte converts the master's peak owned generation rate plus
// headroom into the per-byte cycle cost of its index server.
func (cs *CaseStudy) indexCyclesPerByte(master string, headroom float64) float64 {
	peakMBh := 0.0
	for h := 0; h < 24; h++ {
		t := float64(h)*3600 + 1800
		rate := 0.0
		// Sorted iteration: summing in map order would make the derived
		// cycle cost differ by ulps between runs.
		for _, dc := range cs.Growth.DCs() {
			rate += cs.Growth.RateMBh(dc, t) * cs.APM[dc][master]
		}
		if rate > peakMBh {
			peakMBh = rate
		}
	}
	if peakMBh <= 0 {
		return background.DefaultIndexCyclesPerByte
	}
	throughputBps := peakMBh * headroom * 1e6 / 3600
	return apps.ServerGHz * 1e9 / throughputBps
}

// caseInfraSpec materializes the per-DC traits into a topology spec with
// the WAN of Fig. 6-4 (155/45 Mbps links, 20% allocated to this platform).
func caseInfraSpec(cfg CaseConfig, traits map[string]dcTraits) (topology.InfraSpec, error) {
	raid := &hardware.RAIDSpec{
		Disks: 8, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
		CtrlGbps: 8, HitRate: 0.05,
	}
	san := &hardware.SANSpec{
		Disks: 24, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
		FCSwitchGbps: 16, CtrlGbps: 16, FCALGbps: 16, HitRate: 0.05,
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	sanLink := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}
	srv := func(cores int, memGB float64, withRAID bool) topology.ServerSpec {
		s := topology.ServerSpec{
			CPU: hardware.CPUSpec{Sockets: 1, Cores: cfg.scaleCores(cores),
				GHz: apps.ServerGHz},
			MemGB:        memGB,
			CacheHitRate: 0.1,
			NICGbps:      10,
		}
		if withRAID {
			s.RAID = raid
		}
		return s
	}
	spec := topology.InfraSpec{Clients: map[string]topology.ClientSpec{}}
	for _, dc := range refdata.ConsolidatedDCs {
		tr, ok := traits[dc]
		if !ok {
			return topology.InfraSpec{}, fmt.Errorf("scenarios: no traits for DC %s", dc)
		}
		d := topology.DCSpec{
			Name: dc, SwitchGbps: 40,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{{
				Name: "fs", Servers: tr.FSServers, Server: srv(tr.FSCores, 32, false),
				LocalLink: local, SAN: san, SANLink: &sanLink,
			}},
		}
		if tr.Master {
			d.Tiers = append(d.Tiers,
				topology.TierSpec{Name: "app", Servers: tr.AppServers,
					Server: srv(tr.AppCores, 64, true), LocalLink: local},
				topology.TierSpec{Name: "db", Servers: tr.DBServers,
					Server: srv(tr.DBCores, 64, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				topology.TierSpec{Name: "idx", Servers: tr.IdxServers,
					Server: srv(tr.IdxCores, 64, true), LocalLink: local},
			)
		}
		spec.DCs = append(spec.DCs, d)
		if tr.ClientSlots > 0 {
			slots := int(math.Round(float64(tr.ClientSlots) * cfg.Scale))
			if slots < 8 {
				slots = 8
			}
			spec.Clients[dc] = topology.ClientSpec{
				Slots: slots, NICGbps: 1, GHz: 2.5, DiskMBs: 120,
			}
		}
	}
	wan := func(a, b string, mbps, latencyMS float64, backup bool) topology.WANSpec {
		return topology.WANSpec{From: a, To: b, Backup: backup, Link: hardware.LinkSpec{
			Gbps: mbps / 1000 * cfg.Scale, LatencyMS: latencyMS, Allocated: 0.2,
		}}
	}
	spec.WAN = []topology.WANSpec{
		wan("NA", "EU", 155, 45, false),
		wan("NA", "SA", 45, 60, false),
		wan("NA", "AS1", 155, 90, false),
		wan("AS1", "AS2", 45, 30, false),
		wan("AS1", "AUS", 45, 60, false),
		wan("AS1", "AFR", 45, 80, false),
		wan("EU", "AFR", 45, 80, true),  // backup (Fig. 6-4)
		wan("EU", "AS1", 155, 70, true), // backup
	}
	return spec, nil
}

// attachWorkloads wires the CAD, VIS and PDM Poisson workloads per DC.
// Operation rates: CAD 4, VIS 6, PDM 10 operations per user-hour.
func (cs *CaseStudy) attachWorkloads() error {
	cfg := cs.Cfg
	naDC := cs.Inf.DC("NA")
	cadOps, err := apps.CalibratedCADOps(cs.Inf, naDC, naDC, cfg.Step)
	if err != nil {
		return err
	}
	visOps := apps.VISOps()
	pdmOps := apps.PDMOps()
	for _, dc := range cs.Inf.DCNames() {
		tr := cs.traits[dc]
		if tr.ClientSlots == 0 {
			continue
		}
		curve := func(peak float64) workload.Curve {
			return workload.BusinessDay(peak*cfg.Scale, tr.BizStart, tr.BizEnd,
				peak*cfg.Scale*0.05).Shift(cfg.StartHour)
		}
		for _, w := range []struct {
			app     string
			peak    float64
			opsHour float64
			ops     []cascadeOp
		}{
			{"CAD", tr.CADPeak, 3.2, cadOps},
			{"VIS", tr.VISPeak, 4.8, visOps},
			{"PDM", tr.PDMPeak, 8.0, pdmOps},
		} {
			if w.peak <= 0 {
				continue
			}
			src := &workload.AppWorkload{
				App: w.app, DC: dc,
				Users:          curve(w.peak),
				OpsPerUserHour: w.opsHour,
				Ops:            w.ops,
				APM:            cs.APM,
				Inf:            cs.Inf,
				GaugePrefix:    w.app + ":" + dc,
			}
			cs.Sim.AddSource(src)
			cs.Sim.Collector.Register(cs.Sim.GaugeProbe(w.app + ":" + dc + ":active"))
			// The loggedin series samples the population curve directly at
			// each snapshot instant: under thinning the workload is only
			// polled at arrival instants, so its loggedin gauge goes stale
			// between arrivals, while the curve is exact in every mode.
			users, sim := src.Users, cs.Sim
			cs.Sim.Collector.Register(metrics.Probe{
				Key:    w.app + ":" + dc + ":loggedin",
				Sample: func(float64) float64 { return users.At(sim.Clock().NowSeconds()) },
			})
		}
	}
	return nil
}

// attachDaemons wires one SYNCHREP and one INDEXBUILD daemon per master.
// Index-build capacity is provisioned with the given headroom over the
// master's peak owned data-generation rate: barely above the peak, so
// backlog accumulates through the busy hours and drains afterwards — the
// cumulative effect behind Fig. 6-14's ~63-minute peak.
func (cs *CaseStudy) attachDaemons(idxHeadroom float64) {
	for _, master := range cs.Masters {
		sync := &background.SyncDaemon{
			Inf:      cs.Inf,
			Master:   master,
			APM:      cs.APM,
			Growth:   cs.Growth,
			Interval: refdata.SynchRepIntervalMin * 60,
		}
		idx := &background.IndexDaemon{
			Inf:           cs.Inf,
			Master:        master,
			APM:           cs.APM,
			Growth:        cs.Growth,
			Gap:           refdata.IndexBuildGapMin * 60,
			CyclesPerByte: cs.indexCyclesPerByte(master, idxHeadroom),
		}
		cs.Sync[master] = sync
		cs.Idx[master] = idx
		cs.Sim.AddSource(sync)
		// Keep the handle: the daemon parks its schedule while a build runs
		// and re-arms it through RearmSource from the completion callback.
		idx.Handle = cs.Sim.AddSource(idx)
	}
}

// Run advances the simulation through the configured window of the day.
func (cs *CaseStudy) Run() {
	hours := float64(cs.Cfg.EndHour - cs.Cfg.StartHour)
	cs.Sim.RunFor(hours * 3600)
}

// simWindow translates a GMT hour range into simulation seconds.
func (cs *CaseStudy) simWindow(gmtFrom, gmtTo float64) (float64, float64) {
	return (gmtFrom - float64(cs.Cfg.StartHour)) * 3600,
		(gmtTo - float64(cs.Cfg.StartHour)) * 3600
}

// LinkUtilPct returns the mean utilization (percent of allocated capacity)
// of a directed WAN link over a GMT hour window — the Table 6.1 / 7.3
// measurement.
func (cs *CaseStudy) LinkUtilPct(from, to string, gmtFrom, gmtTo float64) float64 {
	t0, t1 := cs.simWindow(gmtFrom, gmtTo)
	s := cs.Sim.Collector.MustSeries(fmt.Sprintf("link:%s->%s", from, to))
	return s.Mean(t0, t1) * 100
}

// PeakCPUPct returns the peak 1-minute CPU utilization of a tier in
// percent, plus the GMT hour at which it occurred.
func (cs *CaseStudy) PeakCPUPct(dc, tier string) (pct, gmtHour float64) {
	s := cs.Sim.Collector.MustSeries(fmt.Sprintf("cpu:%s:%s", dc, tier))
	t, v, ok := s.Max()
	if !ok {
		return 0, 0
	}
	return v * 100, t/3600 + float64(cs.Cfg.StartHour)
}

// CPUSeries exposes a tier utilization series for figure rendering.
func (cs *CaseStudy) CPUSeries(dc, tier string) *metrics.Series {
	return cs.Sim.Collector.MustSeries(fmt.Sprintf("cpu:%s:%s", dc, tier))
}

// cascadeOp aliases the cascade operation type to keep signatures short.
type cascadeOp = cascade.Op
