package scenarios

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/apps"
	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/topology"
	"repro/internal/workload"
)

// CaseConfig parameterizes the Chapter 6 and 7 case-study runs.
type CaseConfig struct {
	Step   float64 // default 10 ms
	Seed   uint64
	Engine core.Engine
	// StartHour/EndHour bound the simulated window of the day in GMT;
	// defaults cover the full day [0, 24).
	StartHour, EndHour int
	// Scale multiplies client populations, data growth, core counts and
	// WAN bandwidth together, preserving utilizations while shrinking the
	// run for tests and benchmarks. Default 1.
	Scale float64
	// DisableClients drops the interactive workloads (background-only
	// studies); DisableBackground drops the SR/IB daemons.
	DisableClients    bool
	DisableBackground bool
	// Fluid engages the analytic client-aggregation tier on every client
	// workload when Fluid.Above > 0 (see experiment.WithFluid). NoFluid
	// below structurally disables it — bit-identical to never setting it.
	Fluid experiment.Fluid
	// NoFastForward forces the plain tick-by-tick loop; NoCalendar keeps
	// fast-forward but restores the scan-based jump sizing; NoBulkDense
	// keeps the calendar but restores lock-step sweeps and drains. Results
	// are bit-identical in all four loop modes. NoThinning forces per-tick
	// Poisson draws in the client workloads — the flag that restores
	// bit-identity for client scenarios (thinning preserves the arrival
	// law, not the RNG draw sequence).
	// NoShards keeps a sharded Engine's workers but disables the sharded
	// runtime — the A/B baseline BenchmarkShardScaling measures against.
	// NoStretch keeps the sharded runtime but pins a global barrier on
	// every window — the A/B baseline for Chandy-Misra window stretching.
	// NoCrossStretch keeps stretching but blocks spans while cross-DC
	// traffic is live (the pre-mailbox behavior) — the A/B baseline for
	// mid-span mailbox delivery.
	NoFastForward  bool
	NoCalendar     bool
	NoBulkDense    bool
	NoThinning     bool
	NoShards       bool
	NoStretch      bool
	NoCrossStretch bool
	NoFluid        bool
}

// defaults fills the scenario-specific zero values. The shared defaults
// (step, snapshot interval) and the window validation live at the
// experiment level now — the config structs are thin adapters.
func (c *CaseConfig) defaults() error {
	if c.Step <= 0 {
		c.Step = 0.01
	}
	if c.EndHour == 0 {
		c.EndHour = 24
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return nil
}

// loopFlags folds the A/B switches into the experiment form.
func (c *CaseConfig) loopFlags() experiment.LoopFlags {
	return experiment.LoopFlags{
		NoFastForward:  c.NoFastForward,
		NoCalendar:     c.NoCalendar,
		NoBulkDense:    c.NoBulkDense,
		NoThinning:     c.NoThinning,
		NoShards:       c.NoShards,
		NoStretch:      c.NoStretch,
		NoCrossStretch: c.NoCrossStretch,
		NoFluid:        c.NoFluid,
	}
}

// scaleCores scales a core count, keeping at least one core.
func (c CaseConfig) scaleCores(n int) int {
	s := int(math.Round(float64(n) * c.Scale))
	if s < 1 {
		return 1
	}
	return s
}

// dcTraits captures the per-data-center knobs of the case studies.
type dcTraits struct {
	// Business window in GMT hours and client population peaks.
	BizStart, BizEnd int
	CADPeak, VISPeak float64
	PDMPeak          float64
	// GrowthPeakMBh is the data-generation rate at the plateau.
	GrowthPeakMBh float64
	// Master tiers present (app/db/idx); fs always present.
	Master bool
	// Tier core sizing (per server) and server counts.
	AppServers, AppCores int
	DBServers, DBCores   int
	IdxServers, IdxCores int
	FSServers, FSCores   int
	ClientSlots          int
}

// CaseStudy is a built consolidation or multiple-master run. It is a thin
// adapter over the experiment API: buildCaseStudy assembles an
// experiment.Experiment from the traits and compiles it; the struct keeps
// the familiar accessors for the cmd binaries and tests.
type CaseStudy struct {
	Name    string
	Cfg     CaseConfig
	Sim     *core.Simulation
	Inf     *topology.Infrastructure
	Masters []string
	Sync    map[string]*background.SyncDaemon
	Idx     map[string]*background.IndexDaemon
	Growth  background.GrowthModel
	APM     workload.AccessMatrix
	// Result is the uniform experiment harvest, filled by Run.
	Result *experiment.Result

	traits map[string]dcTraits
	run    *experiment.Run
}

// buildCaseStudy assembles the experiment shared by both case studies —
// infrastructure from traits, one CAD/VIS/PDM workload per client DC, one
// SYNCHREP + INDEXBUILD daemon pair per master — and compiles it.
func buildCaseStudy(name string, cfg CaseConfig, traits map[string]dcTraits,
	apm workload.AccessMatrix, masters []string, idxHeadroom float64) (*CaseStudy, error) {

	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	spec, err := caseInfraSpec(cfg, traits)
	if err != nil {
		return nil, err
	}
	opts := []experiment.Option{
		experiment.WithInfra(spec),
		experiment.WithStep(cfg.Step),
		experiment.WithCollectEvery(60), // 1-minute snapshots
		experiment.WithSeed(cfg.Seed),
		experiment.WithEngineInstance(cfg.Engine),
		experiment.WithWindow(cfg.StartHour, cfg.EndHour),
		experiment.WithLoopFlags(cfg.loopFlags()),
		experiment.WithAccessMatrix(apm),
	}

	// Growth curves are declared in GMT; the experiment shifts them (and
	// the workload curves) into the run window at compile time.
	growth := background.GrowthModel{}
	for dc, tr := range traits {
		if tr.GrowthPeakMBh > 0 {
			growth[dc] = workload.BusinessDay(tr.GrowthPeakMBh*cfg.Scale,
				tr.BizStart, tr.BizEnd, tr.GrowthPeakMBh*cfg.Scale*0.05)
		}
	}

	if !cfg.DisableClients {
		opts = append(opts, caseWorkloads(cfg, spec, traits)...)
	}
	if !cfg.DisableBackground {
		opts = append(opts, experiment.WithDaemons(experiment.Daemons{
			Masters:         masters,
			Growth:          growth,
			SyncIntervalSec: refdata.SynchRepIntervalMin * 60,
			IndexGapSec:     refdata.IndexBuildGapMin * 60,
			IndexHeadroom:   idxHeadroom,
		}))
	}

	e, err := experiment.New(name, opts...)
	if err != nil {
		return nil, err
	}
	run, err := e.Compile()
	if err != nil {
		return nil, err
	}
	cs := &CaseStudy{
		Name: name, Cfg: cfg, Sim: run.Sim, Inf: run.Inf,
		Masters: masters,
		Sync:    run.Sync,
		Idx:     run.Idx,
		Growth:  run.Growth,
		APM:     apm,
		traits:  traits,
		run:     run,
	}
	if cs.Growth == nil {
		// Background disabled: keep the shifted model available for callers
		// inspecting the growth curves.
		cs.Growth = background.GrowthModel{}
		for dc, c := range growth {
			cs.Growth[dc] = c.Shift(cfg.StartHour)
		}
	}
	return cs, nil
}

// caseWorkloads declares the CAD, VIS and PDM Poisson workloads per client
// DC in sorted DC order. Operation rates: CAD 3.2, VIS 4.8, PDM 8.0
// operations per user-hour; the CAD mix is calibrated against the built
// infrastructure (shared across DCs through the "CAD" ops key), VIS and
// PDM are static.
func caseWorkloads(cfg CaseConfig, spec topology.InfraSpec, traits map[string]dcTraits) []experiment.Option {
	cadFn := func(inf *topology.Infrastructure, step float64) ([]cascade.Op, error) {
		na := inf.DC("NA")
		return apps.CalibratedCADOps(inf, na, na, step)
	}
	visOps := apps.VISOps()
	pdmOps := apps.PDMOps()

	dcs := make([]string, 0, len(spec.DCs))
	for _, dc := range spec.DCs {
		dcs = append(dcs, dc.Name)
	}
	sort.Strings(dcs)

	var opts []experiment.Option
	for _, dc := range dcs {
		tr := traits[dc]
		if tr.ClientSlots == 0 {
			continue
		}
		curve := func(peak float64) workload.Curve {
			return workload.BusinessDay(peak*cfg.Scale, tr.BizStart, tr.BizEnd,
				peak*cfg.Scale*0.05)
		}
		for _, w := range []struct {
			app     string
			peak    float64
			opsHour float64
		}{
			{"CAD", tr.CADPeak, 3.2},
			{"VIS", tr.VISPeak, 4.8},
			{"PDM", tr.PDMPeak, 8.0},
		} {
			if w.peak <= 0 {
				continue
			}
			ew := experiment.Workload{
				App: w.app, DC: dc,
				Users:          curve(w.peak),
				OpsPerUserHour: w.opsHour,
				OpsKey:         w.app,
				Gauges:         true,
			}
			switch w.app {
			case "CAD":
				ew.OpsFn = cadFn
			case "VIS":
				ew.Ops = visOps
			case "PDM":
				ew.Ops = pdmOps
			}
			opts = append(opts, experiment.WithWorkload(ew))
			if cfg.Fluid.Above > 0 {
				// Options apply in order, so the fluid configuration always
				// finds its workload already declared.
				opts = append(opts, experiment.WithFluid(w.app, dc, cfg.Fluid))
			}
		}
	}
	return opts
}

// caseInfraSpec materializes the per-DC traits into a topology spec with
// the WAN of Fig. 6-4 (155/45 Mbps links, 20% allocated to this platform).
func caseInfraSpec(cfg CaseConfig, traits map[string]dcTraits) (topology.InfraSpec, error) {
	raid := &hardware.RAIDSpec{
		Disks: 8, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
		CtrlGbps: 8, HitRate: 0.05,
	}
	san := &hardware.SANSpec{
		Disks: 24, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
		FCSwitchGbps: 16, CtrlGbps: 16, FCALGbps: 16, HitRate: 0.05,
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	sanLink := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}
	srv := func(cores int, memGB float64, withRAID bool) topology.ServerSpec {
		s := topology.ServerSpec{
			CPU: hardware.CPUSpec{Sockets: 1, Cores: cfg.scaleCores(cores),
				GHz: apps.ServerGHz},
			MemGB:        memGB,
			CacheHitRate: 0.1,
			NICGbps:      10,
		}
		if withRAID {
			s.RAID = raid
		}
		return s
	}
	spec := topology.InfraSpec{Clients: map[string]topology.ClientSpec{}}
	for _, dc := range refdata.ConsolidatedDCs {
		tr, ok := traits[dc]
		if !ok {
			return topology.InfraSpec{}, fmt.Errorf("scenarios: no traits for DC %s", dc)
		}
		d := topology.DCSpec{
			Name: dc, SwitchGbps: 40,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{{
				Name: "fs", Servers: tr.FSServers, Server: srv(tr.FSCores, 32, false),
				LocalLink: local, SAN: san, SANLink: &sanLink,
			}},
		}
		if tr.Master {
			d.Tiers = append(d.Tiers,
				topology.TierSpec{Name: "app", Servers: tr.AppServers,
					Server: srv(tr.AppCores, 64, true), LocalLink: local},
				topology.TierSpec{Name: "db", Servers: tr.DBServers,
					Server: srv(tr.DBCores, 64, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				topology.TierSpec{Name: "idx", Servers: tr.IdxServers,
					Server: srv(tr.IdxCores, 64, true), LocalLink: local},
			)
		}
		spec.DCs = append(spec.DCs, d)
		if tr.ClientSlots > 0 {
			slots := int(math.Round(float64(tr.ClientSlots) * cfg.Scale))
			if slots < 8 {
				slots = 8
			}
			spec.Clients[dc] = topology.ClientSpec{
				Slots: slots, NICGbps: 1, GHz: 2.5, DiskMBs: 120,
			}
		}
	}
	wan := func(a, b string, mbps, latencyMS float64, backup bool) topology.WANSpec {
		return topology.WANSpec{From: a, To: b, Backup: backup, Link: hardware.LinkSpec{
			Gbps: mbps / 1000 * cfg.Scale, LatencyMS: latencyMS, Allocated: 0.2,
		}}
	}
	spec.WAN = []topology.WANSpec{
		wan("NA", "EU", 155, 45, false),
		wan("NA", "SA", 45, 60, false),
		wan("NA", "AS1", 155, 90, false),
		wan("AS1", "AS2", 45, 30, false),
		wan("AS1", "AUS", 45, 60, false),
		wan("AS1", "AFR", 45, 80, false),
		wan("EU", "AFR", 45, 80, true),  // backup (Fig. 6-4)
		wan("EU", "AS1", 155, 70, true), // backup
	}
	return spec, nil
}

// Run advances the simulation through the configured window of the day
// and harvests the uniform experiment Result into cs.Result.
func (cs *CaseStudy) Run() {
	res, err := cs.run.Execute()
	if err != nil {
		// Execute only fails on double execution — a caller bug.
		panic(err)
	}
	cs.Result = res
}

// simWindow translates a GMT hour range into simulation seconds.
func (cs *CaseStudy) simWindow(gmtFrom, gmtTo float64) (float64, float64) {
	return (gmtFrom - float64(cs.Cfg.StartHour)) * 3600,
		(gmtTo - float64(cs.Cfg.StartHour)) * 3600
}

// LinkUtilPct returns the mean utilization (percent of allocated capacity)
// of a directed WAN link over a GMT hour window — the Table 6.1 / 7.3
// measurement.
func (cs *CaseStudy) LinkUtilPct(from, to string, gmtFrom, gmtTo float64) float64 {
	t0, t1 := cs.simWindow(gmtFrom, gmtTo)
	s := cs.Sim.Collector.MustSeries(fmt.Sprintf("link:%s->%s", from, to))
	return s.Mean(t0, t1) * 100
}

// PeakCPUPct returns the peak 1-minute CPU utilization of a tier in
// percent, plus the GMT hour at which it occurred.
func (cs *CaseStudy) PeakCPUPct(dc, tier string) (pct, gmtHour float64) {
	s := cs.Sim.Collector.MustSeries(fmt.Sprintf("cpu:%s:%s", dc, tier))
	t, v, ok := s.Max()
	if !ok {
		return 0, 0
	}
	return v * 100, t/3600 + float64(cs.Cfg.StartHour)
}

// CPUSeries exposes a tier utilization series for figure rendering.
func (cs *CaseStudy) CPUSeries(dc, tier string) *metrics.Series {
	return cs.Sim.Collector.MustSeries(fmt.Sprintf("cpu:%s:%s", dc, tier))
}
