package scenarios

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dispatch"
)

// SpeedupRow is one measured row of Table 4.1 / 4.2.
type SpeedupRow struct {
	Threads int
	Seconds float64
	Speedup float64
}

// Mechanism selects the parallelization engine for speedup measurement.
type Mechanism string

// The two mechanisms of Chapter 4.
const (
	ScatterGather Mechanism = "scatter-gather"
	HDispatch     Mechanism = "h-dispatch"
)

// MeasureEngineSpeedup reproduces the Table 4.1 / 4.2 experiments: it runs
// an identical slice of the consolidated-platform simulation (the workload
// of §4.3.4: six data centers, three applications, synchronization and
// indexing in the background) under the chosen mechanism with each thread
// count, and reports wall-clock times and speedups relative to the first
// entry. agentSet applies to H-Dispatch only (the thesis' best value is
// 64; pass 0 for that default).
func MeasureEngineSpeedup(mech Mechanism, threads []int, simMinutes, scale float64,
	agentSet int) ([]SpeedupRow, error) {

	if len(threads) == 0 {
		return nil, fmt.Errorf("scenarios: no thread counts given")
	}
	rows := make([]SpeedupRow, 0, len(threads))
	for _, n := range threads {
		var eng core.Engine
		switch mech {
		case ScatterGather:
			eng = dispatch.NewScatterGather(n)
		case HDispatch:
			eng = dispatch.NewHDispatch(n, agentSet)
		default:
			return nil, fmt.Errorf("scenarios: unknown mechanism %q", mech)
		}
		cs, err := NewConsolidation(CaseConfig{
			Step:      0.01,
			Seed:      7,
			Engine:    eng,
			StartHour: 13, // run inside the global peak
			EndHour:   14,
			Scale:     scale,
		})
		if err != nil {
			return nil, err
		}
		start := time.Now()
		cs.Sim.RunFor(simMinutes * 60)
		elapsed := time.Since(start).Seconds()
		cs.Sim.Shutdown()
		rows = append(rows, SpeedupRow{Threads: n, Seconds: elapsed})
	}
	base := rows[0].Seconds
	for i := range rows {
		rows[i].Speedup = base / rows[i].Seconds
	}
	return rows, nil
}
