package scenarios

import (
	"math"
	"testing"

	"repro/internal/refdata"
)

func TestValidationConfigRejectsBadExperiment(t *testing.T) {
	if _, err := RunValidation(ValidationConfig{Experiment: 3}); err == nil {
		t.Error("experiment index 3 accepted")
	}
}

// TestValidationExperiment2 runs the middle experiment (the calibration
// anchor) end to end and compares against Tables 5.2 / 5.3 and Fig. 5-6.
// The full 38 simulated minutes at a 5 ms step run in a few seconds.
func TestValidationExperiment2(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation run skipped in -short")
	}
	res, err := RunValidation(ValidationConfig{Experiment: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Table 5.2, experiment 2: steady-state means within 8 points of the
	// published physical measurements.
	for _, tier := range refdata.ValidationTiers {
		want := refdata.Table52Physical[1][tier].Mean
		got := res.SteadyMean[tier]
		if math.Abs(got-want) > 8 {
			t.Errorf("steady CPU %s = %.1f%%, physical %.1f%%", tier, got, want)
		}
	}

	// Fig. 5-6: steady concurrent clients near the published ~28.
	clients := res.Clients.Mean(res.Config.SteadyStart, res.Config.SteadyEnd)
	if math.Abs(clients-refdata.SteadyStateClients[1]) > 8 {
		t.Errorf("steady clients = %.1f, want ~%.0f", clients, refdata.SteadyStateClients[1])
	}

	// Table 5.3: RMSE versus the physical reference in the same band the
	// thesis reports (5-13%); allow up to 16% here.
	for tier, rmse := range res.RMSECPU {
		if rmse > 16 {
			t.Errorf("RMSE cpu:%s = %.1f%%, thesis band is 5-13%%", tier, rmse)
		}
	}
	if res.RMSEClients > 25 {
		t.Errorf("RMSE clients = %.1f%%", res.RMSEClients)
	}

	// Response times: relative RMSE versus Table 5.1 under load stays
	// moderate (the thesis reports 5-7%).
	if res.RespRMSEPct > 28 {
		t.Errorf("response RMSE = %.1f%% vs Table 5.1", res.RespRMSEPct)
	}
}

// TestValidationPressureOrdering runs shortened versions of experiments 1
// and 3 and checks that utilization and concurrency rise with launch
// pressure, the headline relationship of Figs. 5-6..5-10.
func TestValidationPressureOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment run skipped in -short")
	}
	short := func(exp int) *ValidationResult {
		res, err := RunValidation(ValidationConfig{
			Experiment:  exp,
			Seed:        7,
			Step:        0.005,
			LaunchFor:   14 * 60,
			RunFor:      16 * 60,
			SteadyStart: 5 * 60,
			SteadyEnd:   14 * 60,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1 := short(0)
	r3 := short(2)
	for _, tier := range refdata.ValidationTiers {
		if r3.SteadyMean[tier] <= r1.SteadyMean[tier] {
			t.Errorf("tier %s: experiment 3 (%.1f%%) not above experiment 1 (%.1f%%)",
				tier, r3.SteadyMean[tier], r1.SteadyMean[tier])
		}
	}
	c1 := r1.Clients.Mean(300, 840)
	c3 := r3.Clients.Mean(300, 840)
	if c3 <= c1 {
		t.Errorf("clients: experiment 3 (%.1f) not above experiment 1 (%.1f)", c3, c1)
	}
}
