package scenarios

import (
	"fmt"

	"repro/internal/refdata"
	"repro/internal/workload"
)

// multiMasterTraits upgrades the six client-facing data centers to masters
// (§7.3.1): every location gains app/db/idx tiers sized for the ownership
// share the Access Pattern Matrix assigns it, while DNA is scaled down
// (Tapp 8->4 servers, Tdb halved) because most of the global load it used
// to coordinate now lands on the file owners.
func multiMasterTraits() map[string]dcTraits {
	traits := consolidatedTraits()

	na := traits["NA"]
	na.AppServers, na.AppCores = 4, 16 // 8 servers -> 4 (§7.3.1)
	na.DBServers, na.DBCores = 2, 32   // 64 -> 32 cores... per server pair
	na.IdxServers, na.IdxCores = 1, 32
	traits["NA"] = na

	eu := traits["EU"]
	eu.Master = true
	eu.AppServers, eu.AppCores = 4, 16 // second-largest owner (Table 7.2)
	eu.DBServers, eu.DBCores = 2, 32
	eu.IdxServers, eu.IdxCores = 1, 16
	traits["EU"] = eu

	for _, dc := range []string{"AS1", "SA", "AFR", "AUS"} {
		tr := traits[dc]
		tr.Master = true
		tr.AppServers, tr.AppCores = 1, 16
		tr.DBServers, tr.DBCores = 1, 8
		tr.IdxServers, tr.IdxCores = 1, 8
		traits[dc] = tr
	}
	return traits
}

// MultiMasterAPM converts the published Table 7.2 percentages into a
// row-stochastic access matrix.
func MultiMasterAPM() (workload.AccessMatrix, error) {
	apm := workload.AccessMatrix{}
	for from, row := range refdata.Table72APM {
		apm[from] = map[string]float64{}
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		if sum <= 0 {
			return nil, fmt.Errorf("scenarios: empty APM row %s", from)
		}
		for to, p := range row {
			apm[from][to] = p / sum
		}
	}
	return apm, nil
}

// NewMultiMaster builds the Chapter 7 case study: six master data centers,
// each owning the file subsets of Table 7.2 and running its own SYNCHREP
// and INDEXBUILD daemons (Fig. 7-3).
func NewMultiMaster(cfg CaseConfig) (*CaseStudy, error) {
	apm, err := MultiMasterAPM()
	if err != nil {
		return nil, err
	}
	masters := []string{"AFR", "AS1", "AUS", "EU", "NA", "SA"}
	return buildCaseStudy("multimaster", cfg, multiMasterTraits(), apm, masters, 1.09)
}
