package scenarios

import "testing"

// TestBackgroundProcessDays runs both platforms' daemons over a full
// simulated day without interactive clients and checks the Chapter 6 vs 7
// comparisons: the multiple-master design shortens staleness and index lag
// at DNA (Fig. 7-6 vs Fig. 6-14) and cuts DNA's transfer volume by roughly
// the 43% the thesis reports, with DNA > DEU > others in owned volume
// (Figs. 7-4/7-5). About a minute of wall time.
func TestBackgroundProcessDays(t *testing.T) {
	if testing.Short() {
		t.Skip("full-day background runs skipped in -short")
	}
	run := func(multi bool) *CaseStudy {
		cfg := CaseConfig{Step: 0.05, Seed: 7, Scale: 0.25, DisableClients: true}
		var cs *CaseStudy
		var err error
		if multi {
			cs, err = NewMultiMaster(cfg)
		} else {
			cs, err = NewConsolidation(cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		return cs
	}
	cons := run(false)
	multi := run(true)

	// Fig. 6-14: consolidated R^max_SR ~31 min, R^max_IB approaching ~63.
	if st := cons.Sync["NA"].MaxStalenessMin(); st < 20 || st > 40 {
		t.Errorf("consolidated R_SR = %.1f min, paper ~31", st)
	}
	if ib := cons.Idx["NA"].MaxUnsearchableMin(); ib < 30 || ib > 75 {
		t.Errorf("consolidated R_IB = %.1f min, paper ~63", ib)
	}

	// Fig. 7-6: both improve under multiple masters.
	if multi.Sync["NA"].MaxStalenessMin() >= cons.Sync["NA"].MaxStalenessMin() {
		t.Error("multi-master staleness did not improve")
	}
	if multi.Idx["NA"].MaxUnsearchableMin() >= cons.Idx["NA"].MaxUnsearchableMin() {
		t.Error("multi-master index lag did not improve")
	}

	// Figs. 7-4/7-5: DNA's sync volume drops by roughly 43%, DEU second.
	reduction := 1 - multi.Sync["NA"].DailyPushMB()/cons.Sync["NA"].DailyPushMB()
	if reduction < 0.30 || reduction > 0.60 {
		t.Errorf("NA volume reduction = %.0f%%, paper ~43%%", reduction*100)
	}
	if !(multi.Sync["NA"].DailyPushMB() > multi.Sync["EU"].DailyPushMB()) {
		t.Error("DNA should push the largest owned volume")
	}
	for _, m := range []string{"AS1", "SA", "AFR", "AUS"} {
		if multi.Sync[m].DailyPushMB() >= multi.Sync["EU"].DailyPushMB() {
			t.Errorf("%s pushes more than DEU, contradicting Table 7.2 ownership", m)
		}
	}
}
