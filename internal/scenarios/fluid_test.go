package scenarios

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/experiment"
	"repro/internal/workload"
)

// fluidDayNightConfig is the hybrid crossover scenario the fluid tests
// share: 600 peak users on the validation platform, run for the first ten
// hours of the day. The night floor (30 users, 1.7e-4 expected arrivals per
// tick) and the ramp shoulder hour [7h, 8h) (ceiling 258 users, 1.4e-3)
// stay under the 0.002 threshold, while the ramp hour [8h, 9h) has ceiling
// 600 (3.3e-3, utilization ceiling ~0.22 at the CAD station) — so the run
// is discrete for exactly eight hours and fluid from t=28800 to the end,
// one crossover.
func fluidDayNightConfig() DayNightConfig {
	return DayNightConfig{
		Step: 0.01, Seed: 7, Hours: 10, PeakUsers: 600,
		NightFloorFrac: 0.05, OpsPerUserHour: 2, BizStart: 9, BizEnd: 17,
		Fluid: experiment.Fluid{Above: 0.002},
	}
}

// fluidAnalyticOps integrates the configured curve over the fluid window
// [8h, 10h) — the exact trapezoid BuildSegments commits to.
func fluidAnalyticOps(cfg DayNightConfig) float64 {
	users := workload.BusinessDay(cfg.PeakUsers, cfg.BizStart, cfg.BizEnd,
		cfg.PeakUsers*cfg.NightFloorFrac)
	perUser := cfg.OpsPerUserHour / 3600
	ops := 0.0
	for h := 8; h < 10; h++ {
		s, e := float64(h)*3600, float64(h+1)*3600
		ops += (users.At(s) + users.At(e)) / 2 * perUser * (e - s)
	}
	return ops
}

// TestFluidDayNightCrossover pins the crossover as a calendar event: the
// mode series flips at exactly t=28800, the crossover counter records one
// transition, and the analytic ops series ends at the exact curve integral.
func TestFluidDayNightCrossover(t *testing.T) {
	res, err := RunDayNight(fluidDayNightConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer res.Sim.Shutdown()

	mode := res.Sim.Collector.MustSeries("fluid:CAD:NA:mode")
	for _, tc := range []struct {
		t    float64
		want float64
	}{{1, 0}, {28799, 0}, {28800, 1}, {35000, 1}} {
		if got := mode.At(tc.t); got != tc.want {
			t.Errorf("mode at t=%v: %v, want %v", tc.t, got, tc.want)
		}
	}
	cross := res.Sim.Collector.MustSeries("fluid:CAD:NA:crossovers")
	if got := cross.At(27000); got != 0 {
		t.Errorf("crossovers before the ramp = %v, want 0", got)
	}
	if got := cross.At(35000); got != 1 {
		t.Errorf("crossovers after the ramp = %v, want 1", got)
	}
	// The first nonzero crossover sample must land exactly on the segment
	// boundary — a jump or stretched span crossing it would smear the series.
	for i, v := range cross.V {
		if v != 0 {
			if cross.T[i] != 28800 {
				t.Errorf("first crossover sample at t=%v, want exactly 28800", cross.T[i])
			}
			break
		}
	}

	wantOps := fluidAnalyticOps(res.Config)
	ops := res.Sim.Collector.MustSeries("fluid:CAD:NA:ops")
	if got := ops.V[len(ops.V)-1]; math.Abs(got-wantOps) > 1e-6*wantOps {
		t.Errorf("analytic ops = %v, want %v", got, wantOps)
	}
	occ := res.Sim.Collector.MustSeries("fluid:CAD:NA:occupancy")
	if got := occ.At(34000); got <= 0 {
		t.Errorf("fluid occupancy = %v during the business plateau, want positive", got)
	}
	if got := occ.At(10000); got != 0 {
		t.Errorf("fluid occupancy = %v during the discrete night, want 0", got)
	}
}

// TestFluidDayNightEquivalence is the statistical-equivalence gate at the
// crossover threshold: against a fully discrete run of the same scenario
// and seed, (a) the hybrid's discrete+analytic operation count matches the
// discrete count within five standard deviations of the Poisson totals,
// and (b) the analytic response mean and p90 over the fluid window match
// the discrete run's pooled response population within 10% / 15%.
func TestFluidDayNightEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two ten-hour runs skipped in -short")
	}
	cfg := fluidDayNightConfig()
	hybrid, err := RunDayNight(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer hybrid.Sim.Shutdown()
	plainCfg := cfg
	plainCfg.Fluid = experiment.Fluid{}
	plain, err := RunDayNight(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Sim.Shutdown()

	ops := hybrid.Sim.Collector.MustSeries("fluid:CAD:NA:ops")
	analytic := ops.V[len(ops.V)-1]
	hybridTotal := float64(hybrid.CompletedOps) + analytic
	plainTotal := float64(plain.CompletedOps)
	if plainTotal < 500 || hybridTotal < 500 {
		t.Fatalf("pooled counts too small to test: plain %v, hybrid %v", plainTotal, hybridTotal)
	}
	// Both totals estimate the same inhomogeneous-Poisson volume; their
	// difference has variance at most the sum of the counts.
	if diff, bound := math.Abs(plainTotal-hybridTotal), 5*math.Sqrt(plainTotal+hybridTotal); diff > bound {
		t.Errorf("operation counts diverge: plain %v vs hybrid %v (analytic %v), |diff| %v > %v",
			plainTotal, hybridTotal, analytic, diff, bound)
	}

	// Pool the discrete run's response samples over the fluid window.
	var pooled []float64
	for _, k := range plain.Responses.Keys() {
		s := plain.Responses.Series(k.Op, k.DC)
		pooled = append(pooled, s.Window(8*3600, 10*3600)...)
	}
	if len(pooled) < 500 {
		t.Fatalf("only %d discrete response samples in the fluid window", len(pooled))
	}
	mean := 0.0
	for _, v := range pooled {
		mean += v
	}
	mean /= float64(len(pooled))
	sort.Float64s(pooled)
	p90 := pooled[int(0.90*float64(len(pooled)))]

	// The analytic counterparts, arrival-weighted across the fluid segments.
	respMean := hybrid.Sim.Collector.MustSeries("fluid:CAD:NA:resp_mean")
	respP90 := hybrid.Sim.Collector.MustSeries("fluid:CAD:NA:resp_p90")
	thr := hybrid.Sim.Collector.MustSeries("fluid:CAD:NA:throughput")
	var wMean, wP90, wSum float64
	for i, lam := range thr.V {
		if lam > 0 {
			wMean += lam * respMean.V[i]
			wP90 += lam * respP90.V[i]
			wSum += lam
		}
	}
	if wSum == 0 {
		t.Fatal("no fluid throughput samples")
	}
	wMean /= wSum
	wP90 /= wSum

	if rel := math.Abs(wMean-mean) / mean; rel > 0.10 {
		t.Errorf("analytic mean response %v vs discrete %v: rel error %.3f > 0.10", wMean, mean, rel)
	}
	if rel := math.Abs(wP90-p90) / p90; rel > 0.15 {
		t.Errorf("analytic p90 response %v vs discrete %v: rel error %.3f > 0.15", wP90, p90, rel)
	}
}

// TestFluidNoFluidBitIdentity pins the structural-elision contract on all
// four equivalence scenarios: a run with the fluid tier configured but
// NoFluid set is bit-identical to one that never configured the tier — no
// wrapper, no controller, no probes, no compile-time derivation draws.
func TestFluidNoFluidBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("four scenario pairs skipped in -short")
	}
	t.Run("daynight", func(t *testing.T) {
		cfg := fluidDayNightConfig()
		cfg.Hours = 2 // the night regime is enough to pin elision
		cfg.NoFluid = true
		with, err := RunDayNight(cfg)
		if err != nil {
			t.Fatal(err)
		}
		plainCfg := cfg
		plainCfg.Fluid = experiment.Fluid{}
		plainCfg.NoFluid = false
		without, err := RunDayNight(plainCfg)
		if err != nil {
			t.Fatal(err)
		}
		if a, b := with.Result.Digest(), without.Result.Digest(); a != b {
			t.Errorf("NoFluid run diverged from unconfigured run:\n%s\n%s", a, b)
		}
	})
	t.Run("consolidation", func(t *testing.T) {
		run := func(fl experiment.Fluid, noFluid bool) string {
			cs, err := NewConsolidation(CaseConfig{
				Step: 0.01, Seed: 11, Scale: 0.25, StartHour: 12, EndHour: 13,
				Fluid: fl, NoFluid: noFluid,
			})
			if err != nil {
				t.Fatal(err)
			}
			cs.Run()
			return cs.Result.Digest()
		}
		with := run(experiment.Fluid{Above: 1e-4}, true)
		without := run(experiment.Fluid{}, false)
		if with != without {
			t.Errorf("NoFluid consolidation diverged from unconfigured run:\n%s\n%s", with, without)
		}
	})
	t.Run("validation", func(t *testing.T) {
		run := func(noFluid bool) string {
			res, err := RunValidation(ValidationConfig{
				Seed: 5, LaunchFor: 120, RunFor: 180, SteadyStart: 30, SteadyEnd: 120,
				NoFluid: noFluid,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer res.Sim.Shutdown()
			return res.Result.Digest()
		}
		if with, without := run(true), run(false); with != without {
			t.Errorf("NoFluid validation diverged from default run:\n%s\n%s", with, without)
		}
	})
	t.Run("chaos", func(t *testing.T) {
		run := func(extra ...experiment.Option) string {
			e, err := chaosExperiment(extra...)
			if err != nil {
				t.Fatal(err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			return res.Digest()
		}
		with := run(
			experiment.WithFluid("PDM", "EU", experiment.Fluid{Above: 0.0005}),
			experiment.WithLoopFlags(experiment.LoopFlags{NoFluid: true}),
		)
		if without := run(); with != without {
			t.Errorf("NoFluid chaos diverged from unconfigured run:\n%s\n%s", with, without)
		}
	})
}

// TestFluidConsolidationActive exercises the fluid tier on the
// consolidation platform — multiple client DCs whose app/db cascades
// resolve at the NA master, window-shifted curves, three workloads per DC —
// and checks that at least one workload aggregates analytically while the
// run still completes discrete work elsewhere.
func TestFluidConsolidationActive(t *testing.T) {
	if testing.Short() {
		t.Skip("consolidation run skipped in -short")
	}
	cs, err := NewConsolidation(CaseConfig{
		Step: 0.01, Seed: 11, Scale: 0.25, StartHour: 12, EndHour: 13,
		Fluid: experiment.Fluid{Above: 1e-3},
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()
	// 12:00-13:00 GMT is business time in NA and EU: their workloads offer
	// well above 1e-3 expected arrivals per tick at quarter scale.
	fluidOps := 0.0
	for _, k := range cs.Result.SeriesKeys() {
		if len(k) > 6 && k[:6] == "fluid:" && k[len(k)-4:] == ":ops" {
			s := cs.Result.Series[k]
			fluidOps += s.V[len(s.V)-1]
		}
	}
	if fluidOps <= 0 {
		t.Error("no workload aggregated analytically over the business-hour window")
	}
	if cs.Result.Stats.CompletedOps == 0 {
		t.Error("no discrete completions — the night-side DCs should still sample")
	}
}

// TestFluidChaosFallback pins the fault-window fallback: with the Atlantic
// partition effective over [120, 240), the fluid tier runs the stable
// phases analytically and falls back to discrete sampling for exactly the
// fault window — crossovers at t=120 and t=240, the same barrier ticks the
// fault controller hits — and the whole hybrid run is bit-stable across
// shard counts.
func TestFluidChaosFallback(t *testing.T) {
	fluidOpt := experiment.WithFluid("PDM", "EU", experiment.Fluid{Above: 0.0005})
	run := func(extra ...experiment.Option) *experiment.Result {
		t.Helper()
		e, err := chaosExperiment(append([]experiment.Option{fluidOpt}, extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil || res.Faults.Injections[0].InjectedAt != 120 ||
			res.Faults.Injections[0].RecoveredAt != 240 {
			t.Fatal("fault transitions off their scheduled ticks")
		}
		return res
	}
	res := run()
	mode := res.Sim.Collector.MustSeries("fluid:PDM:EU:mode")
	for _, tc := range []struct {
		t    float64
		want float64
	}{{60, 1}, {119, 1}, {120, 0}, {239, 0}, {240, 1}, {359, 1}} {
		if got := mode.At(tc.t); got != tc.want {
			t.Errorf("mode at t=%v: %v, want %v (fluid outside the fault, discrete inside)", tc.t, got, tc.want)
		}
	}
	cross := res.Sim.Collector.MustSeries("fluid:PDM:EU:crossovers")
	if got := cross.V[len(cross.V)-1]; got != 2 {
		t.Errorf("final crossover count = %v, want 2 (into the fault window and out)", got)
	}
	// During the fault the workload really samples: discrete completions
	// must exist, and the analytic count must only grow outside the window.
	ops := res.Sim.Collector.MustSeries("fluid:PDM:EU:ops")
	if ops.At(239) != ops.At(121) {
		t.Errorf("analytic ops grew inside the fault window: %v -> %v", ops.At(121), ops.At(239))
	}
	if ops.At(119) <= 0 || ops.At(359) <= ops.At(240) {
		t.Error("analytic ops did not grow during the stable fluid phases")
	}
	if res.Stats.CompletedOps == 0 {
		t.Error("no discrete completions — the fault window never fell back to sampling")
	}

	ref := res.Digest()
	for _, n := range shardCounts {
		t.Run(fmt.Sprintf("sharded-%d", n), func(t *testing.T) {
			n := n
			got := run(experiment.WithEngine(func() core.Engine { return dispatch.NewSharded(n) })).Digest()
			if got != ref {
				t.Errorf("hybrid digest diverged from sequential loop:\n%s\n%s", ref, got)
			}
		})
	}
}

// TestRunDayNightFluid smoke-tests the web-scale entry point: ten million
// peak users, entirely analytic (even the night floor exceeds the default
// threshold 460-fold), zero discrete launches, and an ops series matching
// the exact curve integral.
func TestRunDayNightFluid(t *testing.T) {
	res, err := RunDayNightFluid(DayNightConfig{Step: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Sim.Shutdown()
	if res.Config.PeakUsers != 10e6 {
		t.Fatalf("default peak = %v, want 10e6", res.Config.PeakUsers)
	}
	if res.CompletedOps != 0 {
		t.Errorf("%d discrete completions, want 0 — the whole day should be fluid", res.CompletedOps)
	}
	mode := res.Sim.Collector.MustSeries("fluid:CAD:NA:mode")
	for _, at := range []float64{120, 3 * 3600, 12 * 3600, 23 * 3600} {
		if mode.At(at) != 1 {
			t.Errorf("mode at t=%v: %v, want fluid all day", at, mode.At(at))
		}
	}
	users := workload.BusinessDay(10e6, 9, 17, 0.5e6)
	perUser := 2.0 / 3600
	want := 0.0
	for h := 0; h < 24; h++ {
		s, e := float64(h)*3600, float64(h+1)*3600
		want += (users.At(s) + users.At(e)) / 2 * perUser * (e - s)
	}
	ops := res.Sim.Collector.MustSeries("fluid:CAD:NA:ops")
	if got := ops.V[len(ops.V)-1]; math.Abs(got-want) > 1e-6*want {
		t.Errorf("analytic day volume = %v, want %v", got, want)
	}
}
