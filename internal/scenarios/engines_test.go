package scenarios

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/metrics"
)

// runValidationWith runs a shortened validation experiment under one
// engine. Short enough for a table of engines, long enough that hundreds
// of flows overlap and exercise the active-set machinery.
func runValidationWith(t *testing.T, eng core.Engine) *ValidationResult {
	t.Helper()
	res, err := RunValidation(ValidationConfig{
		Experiment: 1, Seed: 42, Engine: eng,
		LaunchFor: 120, RunFor: 150, SteadyStart: 30, SteadyEnd: 120,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// sameSeries asserts two series are bit-for-bit identical.
func sameSeries(t *testing.T, label string, ref, got *metrics.Series) {
	t.Helper()
	if (ref == nil) != (got == nil) {
		t.Fatalf("%s: one engine recorded the series, the other did not", label)
	}
	if ref == nil {
		return
	}
	if ref.Len() != got.Len() {
		t.Fatalf("%s: %d samples vs %d", label, ref.Len(), got.Len())
	}
	for i := range ref.V {
		if ref.T[i] != got.T[i] || ref.V[i] != got.V[i] {
			t.Fatalf("%s: sample %d differs: (%v,%v) vs (%v,%v)",
				label, i, ref.T[i], ref.V[i], got.T[i], got.V[i])
		}
	}
}

// TestEngineEquivalenceOnValidation is the safety net for the active-set
// refactor: the full validation scenario must produce identical completed
// operation counts, response-time records and collector series under the
// sequential reference engine and both parallel engines at several thread
// counts. Sweep parallelism and active-set scheduling are performance
// concerns only — any divergence here is a determinism bug.
func TestEngineEquivalenceOnValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("engine equivalence matrix skipped in -short")
	}
	ref := runValidationWith(t, &core.SequentialEngine{})

	cases := []struct {
		name string
		mk   func() core.Engine
	}{
		{"scatter-gather-2", func() core.Engine { return dispatch.NewScatterGather(2) }},
		{"scatter-gather-8", func() core.Engine { return dispatch.NewScatterGather(8) }},
		{"h-dispatch-1x16", func() core.Engine { return dispatch.NewHDispatch(1, 16) }},
		{"h-dispatch-4x64", func() core.Engine { return dispatch.NewHDispatch(4, 64) }},
		{"h-dispatch-8x64", func() core.Engine { return dispatch.NewHDispatch(8, 64) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := runValidationWith(t, tc.mk())
			if ref.CompletedOps != got.CompletedOps {
				t.Errorf("completed ops: %d vs %d", ref.CompletedOps, got.CompletedOps)
			}
			// Response-time records: same (op, dc) populations, same values.
			refKeys, gotKeys := ref.Responses.Keys(), got.Responses.Keys()
			if len(refKeys) != len(gotKeys) {
				t.Fatalf("response keys: %d vs %d", len(refKeys), len(gotKeys))
			}
			for i, k := range refKeys {
				if gotKeys[i] != k {
					t.Fatalf("response key %d: %v vs %v", i, k, gotKeys[i])
				}
				sameSeries(t, fmt.Sprintf("responses %s@%s", k.Op, k.DC),
					ref.Responses.Series(k.Op, k.DC), got.Responses.Series(k.Op, k.DC))
			}
			// Collector series: concurrent clients and per-tier CPU.
			sameSeries(t, "clients", ref.Clients, got.Clients)
			for tier, s := range ref.CPU {
				sameSeries(t, "cpu:"+tier, s, got.CPU[tier])
			}
		})
	}
}
