package scenarios

import (
	"repro/internal/refdata"
	"repro/internal/workload"
)

// consolidatedTraits describes the consolidated Data Serving Platform of
// Fig. 6-2: DNA is the sole master, the other data centers serve files to
// their local client populations; AS2 is a served site without local
// clients (reached through AS1, Fig. 6-4).
//
// Business windows (GMT) place each region's 9-hour day; client peaks
// reproduce the population curves of Figs. 6-5..6-7 (global peaks ~2000
// CAD / ~2500 VIS / ~1400 PDM during the 12:00-16:00 overlap of NA, EU, SA
// and AFR). Growth plateaus integrate to daily volumes of roughly 9.0,
// 4.4, 2.0, 1.2, 0.6 and 1.0 GB (NA, EU, AS1, SA, AFR, AUS), the
// reconstruction of Fig. 6-10 that reproduces the Fig. 6-11 transfer
// volumes.
func consolidatedTraits() map[string]dcTraits {
	return map[string]dcTraits{
		"NA": {
			BizStart: 13, BizEnd: 22,
			CADPeak: 950, VISPeak: 1150, PDMPeak: 700,
			GrowthPeakMBh: 1000,
			Master:        true,
			AppServers:    8, AppCores: 16,
			DBServers: 6, DBCores: 32,
			IdxServers: 3, IdxCores: 32,
			FSServers: 3, FSCores: 24,
			ClientSlots: 256,
		},
		"EU": {
			BizStart: 8, BizEnd: 17,
			CADPeak: 700, VISPeak: 850, PDMPeak: 450,
			GrowthPeakMBh: 520,
			FSServers:     3, FSCores: 16,
			ClientSlots: 192,
		},
		"AS1": {
			BizStart: 1, BizEnd: 10,
			CADPeak: 250, VISPeak: 320, PDMPeak: 150,
			GrowthPeakMBh: 235,
			FSServers:     2, FSCores: 24,
			ClientSlots: 64,
		},
		"AS2": {
			BizStart: 1, BizEnd: 10,
			FSServers: 1, FSCores: 16,
		},
		"SA": {
			BizStart: 12, BizEnd: 21,
			CADPeak: 140, VISPeak: 170, PDMPeak: 80,
			GrowthPeakMBh: 140,
			FSServers:     2, FSCores: 24,
			ClientSlots: 64,
		},
		"AFR": {
			BizStart: 7, BizEnd: 16,
			CADPeak: 80, VISPeak: 100, PDMPeak: 50,
			GrowthPeakMBh: 70,
			FSServers:     1, FSCores: 32,
			ClientSlots: 32,
		},
		"AUS": {
			BizStart: 23, BizEnd: 8,
			CADPeak: 120, VISPeak: 150, PDMPeak: 80,
			GrowthPeakMBh: 118,
			FSServers:     2, FSCores: 32,
			ClientSlots: 32,
		},
	}
}

// NewConsolidation builds the Chapter 6 case study: eleven data centers
// consolidated into six (plus the AS2 site), DNA as single master running
// the SYNCHREP and INDEXBUILD daemons.
func NewConsolidation(cfg CaseConfig) (*CaseStudy, error) {
	traits := consolidatedTraits()
	clientDCs := make([]string, 0, len(traits))
	for _, dc := range refdata.ConsolidatedDCs {
		clientDCs = append(clientDCs, dc)
	}
	apm := workload.SingleMaster(clientDCs, "NA")
	return buildCaseStudy("consolidation", cfg, traits, apm, []string{"NA"}, 1.022)
}
