package scenarios

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/core"
)

// update regenerates the golden trace snapshots in testdata/ instead of
// comparing against them:
//
//	go test ./internal/scenarios/ -run TestGolden -update
//
// Regenerate only when a change is *supposed* to alter results (a model
// fix, a new workload); loop and engine changes must reproduce the
// committed traces bit for bit — that is the point of the files.
var update = flag.Bool("update", false, "regenerate golden trace snapshots")

// goldenResponse summarizes one response-time population: its task count
// and the mean/p90 latency of the recorded durations.
type goldenResponse struct {
	Op    string  `json:"op"`
	DC    string  `json:"dc"`
	Count int     `json:"count"`
	Mean  float64 `json:"mean"`
	P90   float64 `json:"p90"`
}

// goldenSeries summarizes one collector series: sample count, value sum
// and final sample — enough to pin any drift without committing megabytes
// of raw samples.
type goldenSeries struct {
	Key  string  `json:"key"`
	Len  int     `json:"len"`
	Sum  float64 `json:"sum"`
	Last float64 `json:"last"`
}

// goldenTrace is the committed end-of-run snapshot of one scenario.
type goldenTrace struct {
	CompletedOps uint64           `json:"completed_ops"`
	Responses    []goldenResponse `json:"responses"`
	Collector    []goldenSeries   `json:"collector"`
}

// snapshotTrace reduces a finished simulation to its golden trace, in the
// deterministic key orders the metrics package defines.
func snapshotTrace(sim *core.Simulation) goldenTrace {
	tr := goldenTrace{CompletedOps: sim.CompletedOps()}
	for _, k := range sim.Responses.Keys() {
		s := sim.Responses.Series(k.Op, k.DC)
		vals := append([]float64(nil), s.V...)
		sort.Float64s(vals)
		mean := 0.0
		for _, v := range vals {
			mean += v
		}
		if len(vals) > 0 {
			mean /= float64(len(vals))
		}
		p90 := 0.0
		if len(vals) > 0 {
			p90 = vals[len(vals)*9/10]
		}
		tr.Responses = append(tr.Responses, goldenResponse{
			Op: k.Op, DC: k.DC, Count: s.Len(), Mean: mean, P90: p90,
		})
	}
	for _, k := range sim.Collector.Keys() {
		s := sim.Collector.MustSeries(k)
		sum := 0.0
		for _, v := range s.V {
			sum += v
		}
		gs := goldenSeries{Key: k, Len: s.Len(), Sum: sum}
		if s.Len() > 0 {
			gs.Last = s.V[s.Len()-1]
		}
		tr.Collector = append(tr.Collector, gs)
	}
	return tr
}

// checkGolden compares the trace against testdata/<name>.json, or rewrites
// the file under -update. Any numeric drift fails with the first diverging
// field, so loop refactors cannot silently alter simulation results.
func checkGolden(t *testing.T, name string, tr goldenTrace) {
	t.Helper()
	got, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", name+".json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden trace)", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	var ref goldenTrace
	if err := json.Unmarshal(want, &ref); err != nil {
		t.Fatalf("corrupt golden file %s: %v", path, err)
	}
	t.Errorf("%s drifted from its golden trace (run with -update only if the change is meant to alter results)", name)
	if tr.CompletedOps != ref.CompletedOps {
		t.Errorf("completed ops: %d, golden %d", tr.CompletedOps, ref.CompletedOps)
	}
	for _, diff := range diffTraces(ref, tr) {
		t.Error(diff)
	}
}

// diffTraces reports the first few field-level divergences between traces.
func diffTraces(ref, got goldenTrace) []string {
	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) < 8 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	if len(ref.Responses) != len(got.Responses) {
		add("response populations: %d, golden %d", len(got.Responses), len(ref.Responses))
	}
	for i := 0; i < len(ref.Responses) && i < len(got.Responses); i++ {
		r, g := ref.Responses[i], got.Responses[i]
		if r != g {
			add("responses[%d]: %+v, golden %+v", i, g, r)
		}
	}
	if len(ref.Collector) != len(got.Collector) {
		add("collector series: %d, golden %d", len(got.Collector), len(ref.Collector))
	}
	for i := 0; i < len(ref.Collector) && i < len(got.Collector); i++ {
		r, g := ref.Collector[i], got.Collector[i]
		if r != g {
			add("collector[%d]: %+v, golden %+v", i, g, r)
		}
	}
	return diffs
}

// TestGoldenValidation pins the Chapter 5 validation scenario: a shortened
// experiment-1 run under the default (calendar + bulk-dense) loop and the
// sequential engine. The equivalence suites prove every loop mode and
// engine reproduces these exact numbers.
func TestGoldenValidation(t *testing.T) {
	res, err := RunValidation(ValidationConfig{
		Experiment: 1, Seed: 42,
		LaunchFor: 45, RunFor: 75, SteadyStart: 30, SteadyEnd: 45,
	})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_validation", snapshotTrace(res.Sim))
}

// TestGoldenConsolidation pins a night-hour slice of the Chapter 6
// consolidated platform with interactive clients and both background
// daemons attached.
func TestGoldenConsolidation(t *testing.T) {
	cs, err := NewConsolidation(CaseConfig{
		Step: 0.01, Seed: 7, Scale: 0.1, StartHour: 3, EndHour: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()
	cs.Sim.Shutdown()
	checkGolden(t, "golden_consolidation", snapshotTrace(cs.Sim))
}

// TestGoldenDayNight pins the day-night client scenario across the night
// floor and the morning ramp — the regime where thinning, the calendar
// and the bulk-dense loop all engage.
func TestGoldenDayNight(t *testing.T) {
	res, err := RunDayNight(DayNightConfig{Seed: 42, Hours: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "golden_daynight", snapshotTrace(res.Sim))
}
