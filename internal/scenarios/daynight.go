package scenarios

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// DayNightConfig parameterizes the day-night client scenario: the
// Chapter 5 validation infrastructure driven around the clock by one open
// Poisson client workload whose population follows a business-day curve
// with a night floor. The night floor is the regime the thinned sampler
// targets — a positive curve that used to veto every fast-forward jump —
// while the business window exercises the dense per-tick path, so one run
// crosses both regimes twice.
type DayNightConfig struct {
	Step   float64 // time-loop granularity; default 10 ms
	Seed   uint64
	Engine core.Engine // nil selects the sequential engine
	// Hours is the simulated span; default 24 (one full curve period).
	Hours float64
	// PeakUsers is the business-window population; default 60.
	PeakUsers float64
	// NightFloorFrac is the overnight population as a fraction of the
	// peak; default 0.05 — the canonical 5% night floor.
	NightFloorFrac float64
	// OpsPerUserHour is the per-user operation rate; default 2.
	OpsPerUserHour float64
	// BizStart/BizEnd bound the business window in GMT hours; default
	// [9, 17).
	BizStart, BizEnd int
	// Loop A/B switches, see CaseConfig.
	NoFastForward bool
	NoCalendar    bool
	NoBulkDense   bool
	NoThinning    bool
}

func (c *DayNightConfig) defaults() error {
	if c.Step <= 0 {
		c.Step = 0.01
	}
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.PeakUsers <= 0 {
		c.PeakUsers = 60
	}
	if c.NightFloorFrac == 0 {
		c.NightFloorFrac = 0.05
	}
	if c.NightFloorFrac < 0 || c.NightFloorFrac > 1 {
		return fmt.Errorf("scenarios: night floor fraction %v out of [0,1]", c.NightFloorFrac)
	}
	if c.OpsPerUserHour <= 0 {
		c.OpsPerUserHour = 2
	}
	if c.BizStart == 0 && c.BizEnd == 0 {
		c.BizStart, c.BizEnd = 9, 17
	}
	return nil
}

// DayNightResult gathers the outputs the equivalence and benchmark
// harnesses compare.
type DayNightResult struct {
	Config       DayNightConfig
	Sim          *core.Simulation
	Users        workload.Curve
	CompletedOps uint64
	Responses    *metrics.Responses
	// Jumps/SkippedTicks are the run's fast-forward statistics.
	Jumps, SkippedTicks uint64
}

// RunDayNight executes the day-night client scenario end to end.
func RunDayNight(cfg DayNightConfig) (*DayNightResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	sim := core.NewSimulation(core.Config{
		Step:          cfg.Step,
		CollectEvery:  int(math.Round(60 / cfg.Step)), // 1-minute snapshots
		Seed:          cfg.Seed,
		Engine:        cfg.Engine,
		NoFastForward: cfg.NoFastForward,
		NoCalendar:    cfg.NoCalendar,
		NoBulkDense:   cfg.NoBulkDense,
		NoThinning:    cfg.NoThinning,
	})
	defer sim.Shutdown()
	inf, err := topology.Build(sim, ValidationInfraSpec())
	if err != nil {
		return nil, err
	}
	inf.RegisterProbes(sim.Collector)

	na := inf.DC("NA")
	ops, err := apps.CalibratedCADOps(inf, na, na, cfg.Step)
	if err != nil {
		return nil, err
	}
	users := workload.BusinessDay(cfg.PeakUsers, cfg.BizStart, cfg.BizEnd,
		cfg.PeakUsers*cfg.NightFloorFrac)
	sim.AddSource(&workload.AppWorkload{
		App: "CAD", DC: "NA",
		Users:          users,
		OpsPerUserHour: cfg.OpsPerUserHour,
		Ops:            ops,
		APM:            workload.SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
		GaugePrefix:    "CAD:NA",
	})
	sim.Collector.Register(sim.GaugeProbe("CAD:NA:active"))
	sim.Collector.Register(metrics.Probe{
		Key:    "CAD:NA:loggedin",
		Sample: func(float64) float64 { return users.At(sim.Clock().NowSeconds()) },
	})

	sim.RunFor(cfg.Hours * 3600)

	res := &DayNightResult{
		Config:       cfg,
		Sim:          sim,
		Users:        users,
		CompletedOps: sim.CompletedOps(),
		Responses:    sim.Responses,
	}
	res.Jumps, res.SkippedTicks = sim.FastForwardStats()
	return res, nil
}
