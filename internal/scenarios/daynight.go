package scenarios

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// DayNightConfig parameterizes the day-night client scenario: the
// Chapter 5 validation infrastructure driven around the clock by one open
// Poisson client workload whose population follows a business-day curve
// with a night floor. The night floor is the regime the thinned sampler
// targets — a positive curve that used to veto every fast-forward jump —
// while the business window exercises the dense per-tick path, so one run
// crosses both regimes twice.
type DayNightConfig struct {
	Step   float64 // time-loop granularity; default 10 ms
	Seed   uint64
	Engine core.Engine // nil selects the sequential engine
	// Hours is the simulated span; default 24 (one full curve period).
	Hours float64
	// PeakUsers is the business-window population; default 60.
	PeakUsers float64
	// NightFloorFrac is the overnight population as a fraction of the
	// peak; default 0.05 — the canonical 5% night floor.
	NightFloorFrac float64
	// OpsPerUserHour is the per-user operation rate; default 2.
	OpsPerUserHour float64
	// BizStart/BizEnd bound the business window in GMT hours; default
	// [9, 17).
	BizStart, BizEnd int
	// Fluid engages the analytic client-aggregation tier on the CAD
	// workload when Fluid.Above > 0 (see experiment.WithFluid): hour
	// segments whose expected arrivals per tick reach the threshold are
	// carried as a deterministic M/M/c flow instead of discrete sampling.
	Fluid experiment.Fluid
	// Loop A/B switches, see CaseConfig. NoFluid structurally disables a
	// configured fluid tier — the run is bit-identical to one that never
	// set Fluid.
	NoFastForward  bool
	NoCalendar     bool
	NoBulkDense    bool
	NoThinning     bool
	NoShards       bool
	NoStretch      bool
	NoCrossStretch bool
	NoFluid        bool
}

// defaults fills the scenario-specific zero values; the shared defaults
// (step, snapshot interval) live at the experiment level.
func (c *DayNightConfig) defaults() error {
	if c.Hours <= 0 {
		c.Hours = 24
	}
	if c.PeakUsers <= 0 {
		c.PeakUsers = 60
	}
	if c.NightFloorFrac == 0 {
		c.NightFloorFrac = 0.05
	}
	if c.NightFloorFrac < 0 || c.NightFloorFrac > 1 {
		return fmt.Errorf("scenarios: night floor fraction %v out of [0,1]", c.NightFloorFrac)
	}
	if c.OpsPerUserHour <= 0 {
		c.OpsPerUserHour = 2
	}
	if c.BizStart == 0 && c.BizEnd == 0 {
		c.BizStart, c.BizEnd = 9, 17
	}
	return nil
}

// DayNightResult gathers the outputs the equivalence and benchmark
// harnesses compare.
type DayNightResult struct {
	Config DayNightConfig
	Sim    *core.Simulation
	// Result is the uniform experiment harvest the run came from.
	Result       *experiment.Result
	Users        workload.Curve
	CompletedOps uint64
	Responses    *metrics.Responses
	// Jumps/SkippedTicks are the run's fast-forward statistics.
	Jumps, SkippedTicks uint64
}

// RunDayNight executes the day-night client scenario end to end. Like the
// other thesis scenarios it is a thin adapter over the experiment API: one
// declarative workload on the validation infrastructure, run for the
// configured span.
func RunDayNight(cfg DayNightConfig) (*DayNightResult, error) {
	return runDayNight(cfg, 1)
}

// RunDayNightFluid is the web-scale variant: the day-night scenario at a
// default 10 million peak users, with server clock rates scaled by
// PeakUsers/60 so the offered load keeps the 60-user validation run's
// utilization. Clocks scale rather than cores because both the Erlang-C
// recursion and the FCFS admission preallocation are O(cores) — a
// 166 000-fold core count would be slow to even construct, while a faster
// clock leaves every per-tick loop untouched. The fluid tier (default
// threshold: one expected arrival per tick, which even the 5% night floor
// exceeds by ~460x at 10M users) carries the whole day analytically, so the
// run completes within the discrete 60-user benchmark's wall-time envelope
// despite simulating five orders of magnitude more client traffic.
func RunDayNightFluid(cfg DayNightConfig) (*DayNightResult, error) {
	if cfg.PeakUsers <= 0 {
		cfg.PeakUsers = 10e6
	}
	if cfg.Fluid.Above <= 0 {
		cfg.Fluid.Above = 1
	}
	return runDayNight(cfg, cfg.PeakUsers/60)
}

// runDayNight is the shared body: assemble the experiment on the validation
// infrastructure — server clocks scaled by ghzScale — and harvest the
// uniform result.
func runDayNight(cfg DayNightConfig, ghzScale float64) (*DayNightResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	spec := ValidationInfraSpec()
	if ghzScale != 1 {
		for i := range spec.DCs {
			for j := range spec.DCs[i].Tiers {
				spec.DCs[i].Tiers[j].Server.CPU.GHz *= ghzScale
			}
		}
	}
	users := workload.BusinessDay(cfg.PeakUsers, cfg.BizStart, cfg.BizEnd,
		cfg.PeakUsers*cfg.NightFloorFrac)
	opts := []experiment.Option{
		experiment.WithInfra(spec),
		experiment.WithSeed(cfg.Seed),
		experiment.WithEngineInstance(cfg.Engine),
		experiment.WithDuration(cfg.Hours * 3600),
		experiment.WithLoopFlags(experiment.LoopFlags{
			NoFastForward:  cfg.NoFastForward,
			NoCalendar:     cfg.NoCalendar,
			NoBulkDense:    cfg.NoBulkDense,
			NoThinning:     cfg.NoThinning,
			NoShards:       cfg.NoShards,
			NoStretch:      cfg.NoStretch,
			NoCrossStretch: cfg.NoCrossStretch,
			NoFluid:        cfg.NoFluid,
		}),
		experiment.WithAccessMatrix(workload.SingleMaster([]string{"NA"}, "NA")),
		experiment.WithWorkload(experiment.Workload{
			App: "CAD", DC: "NA",
			Users:          users,
			OpsPerUserHour: cfg.OpsPerUserHour,
			OpsFn: func(inf *topology.Infrastructure, step float64) ([]cascade.Op, error) {
				na := inf.DC("NA")
				return apps.CalibratedCADOps(inf, na, na, step)
			},
			Gauges: true,
		}),
	}
	if cfg.Step > 0 {
		opts = append(opts, experiment.WithStep(cfg.Step))
	}
	if cfg.Fluid.Above > 0 {
		opts = append(opts, experiment.WithFluid("CAD", "NA", cfg.Fluid))
	}
	e, err := experiment.New("daynight", opts...)
	if err != nil {
		return nil, err
	}
	run, err := e.Run()
	if err != nil {
		return nil, err
	}
	res := &DayNightResult{
		Config:       cfg,
		Sim:          run.Sim,
		Result:       run,
		Users:        users,
		CompletedOps: run.Stats.CompletedOps,
		Responses:    run.Responses,
		Jumps:        run.Stats.Jumps,
		SkippedTicks: run.Stats.SkippedTicks,
	}
	return res, nil
}
