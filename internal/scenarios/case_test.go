package scenarios

import (
	"math"
	"testing"

	"repro/internal/refdata"
)

func TestCaseConfigValidation(t *testing.T) {
	if _, err := NewConsolidation(CaseConfig{StartHour: 20, EndHour: 10}); err == nil {
		t.Error("inverted hour window accepted")
	}
	if _, err := NewConsolidation(CaseConfig{EndHour: 30}); err == nil {
		t.Error("out-of-range end hour accepted")
	}
}

func TestMultiMasterAPMIsStochastic(t *testing.T) {
	apm, err := MultiMasterAPM()
	if err != nil {
		t.Fatal(err)
	}
	if err := apm.Validate(); err != nil {
		t.Errorf("normalized Table 7.2 invalid: %v", err)
	}
	if apm["EU"]["EU"] < 0.8 {
		t.Errorf("EU self-ownership = %v, Table 7.2 says ~0.84", apm["EU"]["EU"])
	}
}

func TestConsolidationBuildsWithoutClients(t *testing.T) {
	cs, err := NewConsolidation(CaseConfig{
		Scale: 0.1, StartHour: 12, EndHour: 13, DisableClients: true, Step: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()
	if cs.Sync["NA"].Durations.Len() == 0 {
		t.Error("background-only run completed no SYNCHREP cycles")
	}
}

// TestConsolidationPeakWindow reproduces the Chapter 6 headline results on
// a quarter-scale run over the 11:00-17:00 GMT peak: tier utilizations
// (Figs. 6-12/6-13), link utilizations (Table 6.1), background-process
// effectiveness (Fig. 6-14) and the latency behaviour of Table 6.2.
// Roughly 50 seconds of wall time.
func TestConsolidationPeakWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study run skipped in -short")
	}
	cs, err := NewConsolidation(CaseConfig{
		Step: 0.01, Seed: 3, Scale: 0.25, StartHour: 11, EndHour: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()

	// Fig. 6-12: DNA tier peaks (paper: app 73%, db 32%, idx 30%, fs 31%).
	checks := []struct {
		tier     string
		lo, hi   float64
		paperPct float64
	}{
		{"app", 60, 88, 73},
		{"db", 28, 52, 32},
		{"idx", 20, 42, 30},
		{"fs", 22, 45, 31},
	}
	for _, c := range checks {
		pct, _ := cs.PeakCPUPct("NA", c.tier)
		if pct < c.lo || pct > c.hi {
			t.Errorf("NA %s peak = %.1f%%, want within [%v, %v] (paper %.0f%%)",
				c.tier, pct, c.lo, c.hi, c.paperPct)
		}
	}
	// Fig. 6-13: DAUS file tier barely loaded (paper ~3.5%).
	if pct, _ := cs.PeakCPUPct("AUS", "fs"); pct > 8 {
		t.Errorf("AUS fs peak = %.1f%%, paper reports ~3.5%%", pct)
	}

	// Table 6.1: backup links idle, primaries loaded but unsaturated,
	// NA->AS1 among the busiest (it aggregates four push destinations).
	for _, backup := range [][2]string{{"EU", "AFR"}, {"EU", "AS1"}} {
		if u := cs.LinkUtilPct(backup[0], backup[1], 12, 16); u != 0 {
			t.Errorf("backup link %s->%s carried %.1f%%, want 0", backup[0], backup[1], u)
		}
	}
	for _, primary := range [][2]string{
		{"NA", "SA"}, {"NA", "EU"}, {"NA", "AS1"},
		{"AS1", "AFR"}, {"AS1", "AS2"}, {"AS1", "AUS"},
	} {
		u := cs.LinkUtilPct(primary[0], primary[1], 12, 16)
		if u < 15 || u > 85 {
			t.Errorf("link %s->%s util = %.1f%%, outside the working band", primary[0], primary[1], u)
		}
	}

	// Fig. 6-14: R^max_SR ~31 minutes.
	stale := cs.Sync["NA"].MaxStalenessMin()
	if math.Abs(stale-refdata.ConsolidatedMaxStaleMin) > 8 {
		t.Errorf("R^max_SR = %.1f min, paper reports ~%.0f", stale, refdata.ConsolidatedMaxStaleMin)
	}
	if cs.Idx["NA"].Durations.Len() == 0 {
		t.Error("no INDEXBUILD completed")
	}

	// Table 6.2 shape: metadata-chatty EXPLORE suffers a visible latency
	// penalty at DAUS, while payload-bound OPEN stays nearly flat.
	expNA, ok1 := cs.Sim.Responses.MeanAll("CAD EXPLORE", "NA")
	expAUS, ok2 := cs.Sim.Responses.MeanAll("CAD EXPLORE", "AUS")
	if ok1 && ok2 {
		if expAUS-expNA < 2 {
			t.Errorf("EXPLORE latency penalty = %.2fs, want > 2s (paper +9.1s)", expAUS-expNA)
		}
	}
	openNA, ok1 := cs.Sim.Responses.MeanAll("CAD OPEN", "NA")
	openAUS, ok2 := cs.Sim.Responses.MeanAll("CAD OPEN", "AUS")
	if ok1 && ok2 {
		if rel := math.Abs(openAUS-openNA) / openNA; rel > 0.15 {
			t.Errorf("OPEN AUS/NA deviation = %.1f%%, paper reports ~1%%", rel*100)
		}
	}
}

// TestMultiMasterPeakWindow reproduces the Chapter 7 comparisons against
// the consolidated platform: smaller per-master sync volumes, shorter
// staleness, loaded utilization on the downsized DNA hardware, and idle
// backup links (Table 7.3). Roughly 55 seconds of wall time.
func TestMultiMasterPeakWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("case-study run skipped in -short")
	}
	cs, err := NewMultiMaster(CaseConfig{
		Step: 0.01, Seed: 3, Scale: 0.25, StartHour: 11, EndHour: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	cs.Run()

	// §7.4.1: DNA runs hot on half the hardware (paper: app 78%, db 39%);
	// DEU carries the second-largest ownership (paper: app 57%, db 48%).
	if pct, _ := cs.PeakCPUPct("NA", "app"); pct < 60 || pct > 92 {
		t.Errorf("NA app peak = %.1f%%, paper reports ~78%%", pct)
	}
	if pct, _ := cs.PeakCPUPct("EU", "app"); pct < 45 || pct > 85 {
		t.Errorf("EU app peak = %.1f%%, paper reports ~57%%", pct)
	}
	if pct, _ := cs.PeakCPUPct("EU", "db"); pct < 30 || pct > 70 {
		t.Errorf("EU db peak = %.1f%%, paper reports ~48%%", pct)
	}

	// Table 7.3: backups still idle.
	for _, backup := range [][2]string{{"EU", "AFR"}, {"EU", "AS1"}} {
		if u := cs.LinkUtilPct(backup[0], backup[1], 12, 16); u != 0 {
			t.Errorf("backup link %s->%s carried %.1f%%, want 0", backup[0], backup[1], u)
		}
	}

	// §7.4.3 / Fig. 7-6: every master syncs a subset, so staleness at DNA
	// improves versus the consolidated platform's ~31 minutes (paper: 19).
	staleNA := cs.Sync["NA"].MaxStalenessMin()
	if staleNA >= refdata.ConsolidatedMaxStaleMin {
		t.Errorf("multi-master R^max_SR = %.1f min, should beat the consolidated ~31", staleNA)
	}
	if staleNA < 15 {
		t.Errorf("R^max_SR = %.1f min below the launch interval", staleNA)
	}

	// Figs. 7-4/7-5: DNA pushes the largest owned volume, DEU second.
	pushNA := cs.Sync["NA"].DailyPushMB()
	pushEU := cs.Sync["EU"].DailyPushMB()
	pushAUS := cs.Sync["AUS"].DailyPushMB()
	if !(pushNA > pushEU && pushEU > pushAUS) {
		t.Errorf("push volume ordering NA(%.0f) > EU(%.0f) > AUS(%.0f) violated",
			pushNA, pushEU, pushAUS)
	}
}
