// Package scenarios assembles the thesis' three evaluations into runnable
// setups: the Chapter 5 validation of the downscaled Fortune 500
// infrastructure, the Chapter 6 data-serving-platform consolidation and
// the Chapter 7 multiple-master background-process optimization.
package scenarios

import (
	"fmt"
	"math"

	"repro/internal/apps"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/topology"
	"repro/internal/workload"
)

// ValidationInfraSpec reconstructs the downscaled validation infrastructure
// of Fig. 5-1 (tier sizes re-derived from Table 5.2, see DESIGN.md):
// Tapp^(2,16,32), Tdb^(1,32,32), Tfs^(1,16,16) and Tidx^(1,16,16) at 2.5 GHz,
// db and fs backed by san^(1,20,15K), 10 GbE LAN, 1 GbE clients.
func ValidationInfraSpec() topology.InfraSpec {
	raid := &hardware.RAIDSpec{
		Disks: 4, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
		CtrlGbps: 4, HitRate: 0,
	}
	san := &hardware.SANSpec{
		Disks: 20, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
		FCSwitchGbps: 8, CtrlGbps: 8, FCALGbps: 8, HitRate: 0,
	}
	srv := func(cores int, memGB float64, withRAID bool) topology.ServerSpec {
		s := topology.ServerSpec{
			CPU:     hardware.CPUSpec{Sockets: 1, Cores: cores, GHz: apps.ServerGHz},
			MemGB:   memGB,
			NICGbps: 10,
		}
		if withRAID {
			s.RAID = raid
		}
		return s
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	sanLink := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}
	return topology.InfraSpec{
		DCs: []topology.DCSpec{{
			Name: "NA", SwitchGbps: 20,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 2, Server: srv(16, 32, true), LocalLink: local},
				{Name: "db", Servers: 1, Server: srv(32, 32, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				{Name: "fs", Servers: 1, Server: srv(16, 16, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				{Name: "idx", Servers: 1, Server: srv(16, 16, true), LocalLink: local},
			},
		}},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 60, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
}

// ValidationConfig parameterizes one validation run.
type ValidationConfig struct {
	Experiment int     // 0-2, selecting the launch frequencies of §5.2.4
	Step       float64 // time-loop granularity; default 5 ms
	Seed       uint64
	Engine     core.Engine // nil selects the sequential engine
	// LaunchFor is how long series keep being launched; RunFor the total
	// simulated time. Defaults follow the thesis: ~34 and ~38 minutes.
	LaunchFor float64
	RunFor    float64
	// Steady-state window for Table 5.2 statistics; defaults [5, 34] min.
	SteadyStart, SteadyEnd float64
	// NoFastForward forces the plain tick-by-tick loop; NoCalendar keeps
	// fast-forward but restores the scan-based jump sizing; NoBulkDense
	// keeps the calendar but restores lock-step sweeps and drains (A/B
	// comparisons; results are bit-identical in all four modes).
	// NoShards disables the sharded runtime of a sharded Engine (A/B).
	// NoStretch keeps the sharded runtime but pins a global barrier on
	// every window — the A/B baseline for Chandy-Misra window stretching.
	// NoCrossStretch keeps stretching but blocks spans while cross-DC
	// traffic is live — the A/B baseline for mid-span mailbox delivery.
	// NoFluid structurally disables the fluid client-aggregation tier.
	// The validation scenario launches series, not declarative workloads,
	// so the flag is a no-op here — carried for A/B symmetry with the
	// other scenarios (results are bit-identical either way).
	NoFastForward  bool
	NoCalendar     bool
	NoBulkDense    bool
	NoShards       bool
	NoStretch      bool
	NoCrossStretch bool
	NoFluid        bool
}

func (c *ValidationConfig) defaults() error {
	if c.Experiment < 0 || c.Experiment > 2 {
		return fmt.Errorf("scenarios: experiment index %d out of range", c.Experiment)
	}
	if c.Step <= 0 {
		c.Step = 0.005
	}
	if c.LaunchFor <= 0 {
		c.LaunchFor = 34 * 60
	}
	if c.RunFor <= 0 {
		c.RunFor = 38 * 60
	}
	if c.SteadyStart <= 0 {
		c.SteadyStart = 5 * 60
	}
	if c.SteadyEnd <= 0 {
		c.SteadyEnd = c.LaunchFor
	}
	return nil
}

// loopFlags folds the A/B switches into the experiment form — the one
// translation shared by every legacy config adapter.
func (c *ValidationConfig) loopFlags() experiment.LoopFlags {
	return experiment.LoopFlags{
		NoFastForward:  c.NoFastForward,
		NoCalendar:     c.NoCalendar,
		NoBulkDense:    c.NoBulkDense,
		NoShards:       c.NoShards,
		NoStretch:      c.NoStretch,
		NoCrossStretch: c.NoCrossStretch,
		NoFluid:        c.NoFluid,
	}
}

// ValidationResult gathers everything the Chapter 5 figures and tables
// report for one experiment.
type ValidationResult struct {
	Experiment int
	Config     ValidationConfig
	// Sim is the finished (and shut down) simulation, for metric
	// inspection — the golden-trace harness reads its collector.
	Sim *core.Simulation
	// Result is the uniform experiment harvest the run came from.
	Result *experiment.Result

	// Clients is the simulated concurrent-client series (Fig. 5-6).
	Clients *metrics.Series
	// CPU holds the simulated utilization series per tier (Figs. 5-7..10),
	// as fractions.
	CPU map[string]*metrics.Series
	// ReferenceCPU / ReferenceClients are the synthesized physical series
	// regenerated from Table 5.2 and Fig. 5-6 (see DESIGN.md).
	ReferenceCPU     map[string]*metrics.Series
	ReferenceClients *metrics.Series

	// SteadyMean / SteadyStd per tier, in percent (Table 5.2).
	SteadyMean map[string]float64
	SteadyStd  map[string]float64
	// RMSECPU per tier and RMSEClients, in percent (Table 5.3).
	RMSECPU     map[string]float64
	RMSEClients float64
	// RespRMSEPct is the root-mean-square relative response-time error
	// versus Table 5.1 across all operations and series, in percent.
	RespRMSEPct float64

	// CompletedOps is the total number of finished operations — part of
	// the engine determinism contract checked by the equivalence tests.
	CompletedOps uint64

	Responses *metrics.Responses
}

// RunValidation executes one validation experiment end to end. The legacy
// config struct is a thin adapter: it assembles an experiment.Experiment
// (the primary scenario surface) and harvests the Chapter 5 statistics
// from its uniform Result.
func RunValidation(cfg ValidationConfig) (*ValidationResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	// series is filled by the setup hook; the response-RMSE harvest below
	// needs the calibrated operation names.
	var series map[refdata.SeriesType]workload.Series
	e, err := experiment.New("validation",
		experiment.WithInfra(ValidationInfraSpec()),
		experiment.WithStep(cfg.Step),
		experiment.WithCollectEvery(30), // 30 s snapshot windows (§4.3.1 averages minute-scale windows)
		experiment.WithSeed(cfg.Seed+uint64(cfg.Experiment)),
		experiment.WithEngineInstance(cfg.Engine),
		experiment.WithDuration(cfg.RunFor),
		experiment.WithLoopFlags(cfg.loopFlags()),
		experiment.WithProbes(func(r *experiment.Run) []metrics.Probe {
			return []metrics.Probe{r.Sim.GaugeProbe("clients")}
		}),
		experiment.WithSetup(func(r *experiment.Run) error {
			na := r.Inf.DC("NA")
			var err error
			series, err = apps.CalibratedCADSeries(r.Inf, na, na, cfg.Step)
			if err != nil {
				return err
			}
			exp := refdata.ValidationExperiments[cfg.Experiment]
			for i, st := range refdata.SeriesTypes {
				r.Sim.AddSource(&workload.SeriesLauncher{
					Series:   series[st],
					Interval: exp.Interval[st],
					// Stagger the three launchers so the series types do not
					// all fire at t=0 and at common multiples.
					FirstAt:    float64(i) * exp.Interval[st] / 3,
					Until:      cfg.LaunchFor,
					GaugeKey:   "clients",
					NewBinding: func() *cascade.Binding { return cascade.NewBinding(r.Inf, na, na) },
				})
			}
			return nil
		}),
	)
	if err != nil {
		return nil, err
	}
	run, err := e.Run()
	if err != nil {
		return nil, err
	}
	sim := run.Sim

	res := &ValidationResult{
		Experiment:   cfg.Experiment,
		Config:       cfg,
		Sim:          sim,
		Result:       run,
		Clients:      sim.Collector.MustSeries("clients"),
		CPU:          map[string]*metrics.Series{},
		SteadyMean:   map[string]float64{},
		SteadyStd:    map[string]float64{},
		RMSECPU:      map[string]float64{},
		CompletedOps: run.Stats.CompletedOps,
		Responses:    run.Responses,
	}
	for _, tier := range refdata.ValidationTiers {
		res.CPU[tier] = sim.Collector.MustSeries("cpu:NA:" + tier)
		res.SteadyMean[tier] = res.CPU[tier].Mean(cfg.SteadyStart, cfg.SteadyEnd) * 100
		res.SteadyStd[tier] = res.CPU[tier].Std(cfg.SteadyStart, cfg.SteadyEnd) * 100
	}
	res.synthesizeReferences()
	if err := res.computeRMSE(); err != nil {
		return nil, err
	}
	res.computeResponseRMSE(series)
	return res, nil
}

// synthesizeReferences regenerates the "physical infrastructure" series
// from the published Table 5.2 statistics: ramp to the steady mean, a
// deterministic wobble whose standard deviation matches the published
// sigma, and a final drain — the trapezoid shape of Figs. 5-6..5-10.
func (r *ValidationResult) synthesizeReferences() {
	cfg := r.Config
	r.ReferenceCPU = map[string]*metrics.Series{}
	for _, tier := range refdata.ValidationTiers {
		stat := refdata.Table52Physical[cfg.Experiment][tier]
		r.ReferenceCPU[tier] = synthSeries(stat.Mean/100, stat.Std/100, cfg, tier)
	}
	clients := refdata.SteadyStateClients[cfg.Experiment]
	r.ReferenceClients = synthSeries(clients, clients*0.05, cfg, "clients")
}

func synthSeries(mean, sigma float64, cfg ValidationConfig, tag string) *metrics.Series {
	s := &metrics.Series{Name: "physical:" + tag}
	// Phase shift derived from the tag keeps tiers decorrelated.
	phase := 0.0
	for _, c := range tag {
		phase += float64(c)
	}
	ramp := cfg.SteadyStart
	for t := 30.0; t <= cfg.RunFor; t += 30 {
		var v float64
		switch {
		case t < ramp:
			v = mean * t / ramp
		case t > cfg.SteadyEnd:
			tail := (cfg.RunFor - t) / (cfg.RunFor - cfg.SteadyEnd)
			v = mean * math.Max(tail, 0)
		default:
			v = mean +
				1.2*sigma*math.Sin(2*math.Pi*t/313+phase) +
				0.6*sigma*math.Sin(2*math.Pi*t/97+1.7*phase)
		}
		if v < 0 {
			v = 0
		}
		s.Add(t, v)
	}
	return s
}

func (r *ValidationResult) computeRMSE() error {
	for _, tier := range refdata.ValidationTiers {
		e, err := metrics.RMSE(r.ReferenceCPU[tier], r.CPU[tier])
		if err != nil {
			return err
		}
		r.RMSECPU[tier] = e * 100
	}
	e, err := metrics.RMSE(r.ReferenceClients, r.Clients)
	if err != nil {
		return err
	}
	steady := refdata.SteadyStateClients[r.Experiment]
	r.RMSEClients = e / steady * 100
	return nil
}

// computeResponseRMSE compares measured mean response times against the
// Table 5.1 targets, as a relative RMSE in percent.
func (r *ValidationResult) computeResponseRMSE(series map[refdata.SeriesType]workload.Series) {
	var sq float64
	var n int
	for _, st := range refdata.SeriesTypes {
		for i, op := range series[st].Ops {
			target := refdata.Table51Durations[st][refdata.CADOperations[i]]
			mean, ok := r.Responses.MeanAll(op.Name, "NA")
			if !ok {
				continue
			}
			rel := (mean - target) / target
			sq += rel * rel
			n++
		}
	}
	if n > 0 {
		r.RespRMSEPct = math.Sqrt(sq/float64(n)) * 100
	}
}
