package scenarios

import (
	"testing"

	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/hardware"
	"repro/internal/topology"
	"repro/internal/workload"
)

// chaosPlatform is the miniature Atlantic-partition platform: NA owns the
// data, EU clients fetch across the primary NA-EU link, and a thin EU-AS1
// backup plus the NA-AS1 primary form the detour that carries EU traffic
// while the Atlantic is down.
func chaosPlatform() topology.InfraSpec {
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 2, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
			CtrlGbps: 4, HitRate: 0.05,
		},
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	dc := func(name string) topology.DCSpec {
		return topology.DCSpec{
			Name: name, SwitchGbps: 20,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 2, Server: srv, LocalLink: local},
				{Name: "db", Servers: 1, Server: srv, LocalLink: local},
			},
		}
	}
	return topology.InfraSpec{
		DCs: []topology.DCSpec{dc("NA"), dc("EU"), dc("AS1")},
		WAN: []topology.WANSpec{
			{From: "NA", To: "EU", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 40}},
			{From: "NA", To: "AS1", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 90}},
			{From: "EU", To: "AS1", Link: hardware.LinkSpec{Gbps: 0.045, LatencyMS: 110}, Backup: true},
		},
		Clients: map[string]topology.ClientSpec{
			"EU": {Slots: 32, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
}

// chaosExperiment assembles the partition scenario: stabilize for 120 s,
// sever NA-EU for 120 s, then 120 s of recovery.
func chaosExperiment(extra ...experiment.Option) (*experiment.Experiment, error) {
	fn, err := experiment.OpsByName("PDM", "EU")
	if err != nil {
		return nil, err
	}
	opts := []experiment.Option{
		experiment.WithInfra(chaosPlatform()),
		experiment.WithSeed(42),
		experiment.WithDuration(360),
		experiment.WithAccessMatrix(workload.SingleMaster([]string{"NA", "EU", "AS1"}, "NA")),
		experiment.WithWorkload(experiment.Workload{
			App: "PDM", DC: "EU",
			Users:          workload.BusinessDay(25, 0, 24, 25),
			OpsPerUserHour: 20,
			OpsFn:          fn,
			OpsKey:         "PDM@EU",
			Gauges:         true,
		}),
		experiment.WithFault(faults.Injection{
			Name:     "atlantic",
			Fault:    &faults.WAN{From: "NA", To: "EU", Mag: 1},
			At:       120,
			Duration: 120,
		}),
	}
	return experiment.New("chaos", append(opts, extra...)...)
}

// TestChaosFastForwardHitsFaultTicks is the jump-sizing guarantee for
// fault schedules: the controller is a source whose NextPoll is the exact
// next transition time, so fast-forward jumps may land on a fault tick but
// never cross it. The run must actually fast-forward (jumps > 0), apply
// both transitions at exactly their scheduled times, and reproduce the
// plain tick-by-tick loop bit for bit.
func TestChaosFastForwardHitsFaultTicks(t *testing.T) {
	// Default loop: thinned arrivals leave quiet stretches, so the run
	// genuinely fast-forwards — and the fault must still land exactly.
	fast, err := chaosExperiment()
	if err != nil {
		t.Fatal(err)
	}
	fastRes, err := fast.Run()
	if err != nil {
		t.Fatal(err)
	}
	if fastRes.Stats.Jumps == 0 {
		t.Fatal("fast-forward never engaged; the test pins nothing")
	}
	if fastRes.Faults == nil {
		t.Fatal("no fault report")
	}
	ir := fastRes.Faults.Injections[0]
	if ir.InjectedAt != 120 {
		t.Errorf("injected at %v, want exactly 120 — a jump crossed the fault tick", ir.InjectedAt)
	}
	if ir.RecoveredAt != 240 {
		t.Errorf("recovered at %v, want exactly 240 — a jump crossed the recovery tick", ir.RecoveredAt)
	}
	if fastRes.Faults.TimeToReroute < 0 {
		t.Error("no diverted traffic observed on the backup link")
	}

	// Bit-identity of the optimized loop against the plain tick-by-tick
	// loop, with thinning disabled on both sides: thinned arrivals are
	// distribution-identical across loop modes, not bit-identical, and
	// this comparison pins bits.
	digest := func(flags experiment.LoopFlags) string {
		e, err := chaosExperiment(experiment.WithLoopFlags(flags))
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Faults == nil || res.Faults.Injections[0].InjectedAt != 120 {
			t.Fatalf("flags %+v: fault not applied at 120", flags)
		}
		return res.Digest()
	}
	opt := digest(experiment.LoopFlags{NoThinning: true})
	plain := digest(experiment.LoopFlags{
		NoFastForward: true, NoCalendar: true, NoBulkDense: true, NoThinning: true,
	})
	if opt != plain {
		t.Errorf("chaos run diverged between optimized and tick-by-tick loops:\n%s\n%s", opt, plain)
	}
}

// TestGoldenChaos pins the full chaos scenario — partition, divert, drain —
// as a golden trace. The committed file includes the fault: series, so any
// change to transition timing, rebuild scheduling or the recovery probes
// shows up as a diff. Regenerate with -update only for intentional model
// changes.
func TestGoldenChaos(t *testing.T) {
	e, err := chaosExperiment()
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	defer res.Sim.Shutdown()
	checkGolden(t, "golden_chaos", snapshotTrace(res.Sim))
}
