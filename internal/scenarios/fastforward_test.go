package scenarios

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/metrics"
)

// ffEngines is the engine matrix the fast-forward equivalence runs under:
// the sequential reference and both parallel engines. Fast-forward replays
// agent steps inside Engine.Sweep, so the jump path must be exercised
// through every engine, not just the sequential one.
func ffEngines() []struct {
	name string
	mk   func() core.Engine
} {
	return []struct {
		name string
		mk   func() core.Engine
	}{
		{"sequential", func() core.Engine { return &core.SequentialEngine{} }},
		{"scatter-gather-4", func() core.Engine { return dispatch.NewScatterGather(4) }},
		{"h-dispatch-4x64", func() core.Engine { return dispatch.NewHDispatch(4, 64) }},
	}
}

// sameResponses asserts two response trackers hold identical populations:
// same (op, dc) keys, same sample count, bit-identical timestamps and
// durations.
func sameResponses(t *testing.T, ref, got *metrics.Responses) {
	t.Helper()
	refKeys, gotKeys := ref.Keys(), got.Keys()
	if len(refKeys) != len(gotKeys) {
		t.Fatalf("response keys: %d vs %d", len(refKeys), len(gotKeys))
	}
	for i, k := range refKeys {
		if gotKeys[i] != k {
			t.Fatalf("response key %d: %v vs %v", i, k, gotKeys[i])
		}
		sameSeries(t, fmt.Sprintf("responses %s@%s", k.Op, k.DC),
			ref.Series(k.Op, k.DC), got.Series(k.Op, k.DC))
	}
}

// sameCollector asserts two collectors recorded identical series sets with
// bit-identical samples.
func sameCollector(t *testing.T, ref, got *metrics.Collector) {
	t.Helper()
	refKeys, gotKeys := ref.Keys(), got.Keys()
	if len(refKeys) != len(gotKeys) {
		t.Fatalf("collector keys: %d vs %d", len(refKeys), len(gotKeys))
	}
	for i, k := range refKeys {
		if gotKeys[i] != k {
			t.Fatalf("collector key %d: %q vs %q", i, k, gotKeys[i])
		}
		sameSeries(t, k, ref.Series(k), got.Series(k))
	}
}

// TestFastForwardEquivalenceOnValidation proves the event-horizon loop is a
// pure performance change on the Chapter 5 validation scenario: completed
// operations, every response record and every collector series must be
// bit-identical with fast-forward on versus the plain tick-by-tick loop,
// under all three engines. The scenario mixes dense activity (overlapping
// series) with quiet stretches (between launches and the post-launch
// drain), so both the jump and the veto paths are exercised.
func TestFastForwardEquivalenceOnValidation(t *testing.T) {
	launchFor, runFor := 120.0, 150.0
	if testing.Short() {
		launchFor, runFor = 45, 75
	}
	run := func(eng core.Engine, noFF bool) *ValidationResult {
		res, err := RunValidation(ValidationConfig{
			Experiment: 1, Seed: 42, Engine: eng,
			LaunchFor: launchFor, RunFor: runFor,
			SteadyStart: 30, SteadyEnd: launchFor,
			NoFastForward: noFF,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ref := run(tc.mk(), true)
			got := run(tc.mk(), false)
			if ref.CompletedOps != got.CompletedOps {
				t.Errorf("completed ops: %d vs %d", ref.CompletedOps, got.CompletedOps)
			}
			sameResponses(t, ref.Responses, got.Responses)
			sameSeries(t, "clients", ref.Clients, got.Clients)
			for tier, s := range ref.CPU {
				sameSeries(t, "cpu:"+tier, s, got.CPU[tier])
			}
		})
	}
}

// TestFastForwardEquivalenceOnConsolidation proves equivalence on the
// Chapter 6 case study in the regime fast-forward targets: a daemon-only
// overnight window where the platform sits idle between SYNCHREP/INDEXBUILD
// cycles. The fast-forward run must take real jumps (not trivially
// degenerate into the plain loop) and still reproduce every output bit for
// bit, including the daemons' own volume and duration series.
func TestFastForwardEquivalenceOnConsolidation(t *testing.T) {
	endHour := 4
	if testing.Short() {
		endHour = 3
	}
	run := func(eng core.Engine, noFF bool) *CaseStudy {
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.05, Seed: 7, Scale: 0.25,
			StartHour: 2, EndHour: endHour,
			DisableClients: true, Engine: eng,
			NoFastForward: noFF,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		cs.Sim.Shutdown()
		return cs
	}
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ref := run(tc.mk(), true)
			got := run(tc.mk(), false)
			if j, skipped := ref.Sim.FastForwardStats(); j != 0 || skipped != 0 {
				t.Fatalf("plain loop took %d jumps (%d ticks)", j, skipped)
			}
			jumps, skipped := got.Sim.FastForwardStats()
			if skipped < 1000 {
				t.Errorf("fast-forward run skipped only %d ticks in %d jumps; the overnight window should jump heavily", skipped, jumps)
			}
			if r, g := ref.Sim.CompletedOps(), got.Sim.CompletedOps(); r != g {
				t.Errorf("completed ops: %d vs %d", r, g)
			}
			sameResponses(t, ref.Sim.Responses, got.Sim.Responses)
			sameCollector(t, ref.Sim.Collector, got.Sim.Collector)
			for _, master := range ref.Masters {
				sameSeries(t, "sync-durations", &ref.Sync[master].Durations, &got.Sync[master].Durations)
				sameSeries(t, "idx-durations", &ref.Idx[master].Durations, &got.Idx[master].Durations)
				sameSeries(t, "idx-backlog", &ref.Idx[master].BacklogMB, &got.Idx[master].BacklogMB)
				for dc, s := range ref.Sync[master].PullMB {
					sameSeries(t, "pull:"+dc, s, got.Sync[master].PullMB[dc])
				}
				for dc, s := range ref.Sync[master].PushMB {
					sameSeries(t, "push:"+dc, s, got.Sync[master].PushMB[dc])
				}
			}
		})
	}
}
