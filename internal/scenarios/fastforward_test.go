package scenarios

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/metrics"
)

// ffEngines is the engine matrix the fast-forward equivalence runs under:
// the sequential reference and both parallel engines. Fast-forward replays
// agent steps inside Engine.Sweep, so the jump path must be exercised
// through every engine, not just the sequential one.
func ffEngines() []struct {
	name string
	mk   func() core.Engine
} {
	return []struct {
		name string
		mk   func() core.Engine
	}{
		{"sequential", func() core.Engine { return &core.SequentialEngine{} }},
		{"scatter-gather-4", func() core.Engine { return dispatch.NewScatterGather(4) }},
		{"h-dispatch-4x64", func() core.Engine { return dispatch.NewHDispatch(4, 64) }},
	}
}

// sameResponses asserts two response trackers hold identical populations:
// same (op, dc) keys, same sample count, bit-identical timestamps and
// durations.
func sameResponses(t *testing.T, ref, got *metrics.Responses) {
	t.Helper()
	refKeys, gotKeys := ref.Keys(), got.Keys()
	if len(refKeys) != len(gotKeys) {
		t.Fatalf("response keys: %d vs %d", len(refKeys), len(gotKeys))
	}
	for i, k := range refKeys {
		if gotKeys[i] != k {
			t.Fatalf("response key %d: %v vs %v", i, k, gotKeys[i])
		}
		sameSeries(t, fmt.Sprintf("responses %s@%s", k.Op, k.DC),
			ref.Series(k.Op, k.DC), got.Series(k.Op, k.DC))
	}
}

// sameCollector asserts two collectors recorded identical series sets with
// bit-identical samples.
func sameCollector(t *testing.T, ref, got *metrics.Collector) {
	t.Helper()
	refKeys, gotKeys := ref.Keys(), got.Keys()
	if len(refKeys) != len(gotKeys) {
		t.Fatalf("collector keys: %d vs %d", len(refKeys), len(gotKeys))
	}
	for i, k := range refKeys {
		if gotKeys[i] != k {
			t.Fatalf("collector key %d: %q vs %q", i, k, gotKeys[i])
		}
		sameSeries(t, k, ref.Series(k), got.Series(k))
	}
}

// TestFastForwardEquivalenceOnValidation proves the event-horizon loop is a
// pure performance change on the Chapter 5 validation scenario: completed
// operations, every response record and every collector series must be
// bit-identical across the plain tick-by-tick loop, the scan-based
// fast-forward loop (NoCalendar) and the calendar-indexed loop, under all
// three engines. The scenario mixes dense activity (overlapping series)
// with quiet stretches (between launches and the post-launch drain), so
// the jump, the veto and the poll-skipping paths are all exercised.
func TestFastForwardEquivalenceOnValidation(t *testing.T) {
	launchFor, runFor := 120.0, 150.0
	if testing.Short() {
		launchFor, runFor = 45, 75
	}
	run := func(eng core.Engine, noFF, noCal bool) *ValidationResult {
		res, err := RunValidation(ValidationConfig{
			Experiment: 1, Seed: 42, Engine: eng,
			LaunchFor: launchFor, RunFor: runFor,
			SteadyStart: 30, SteadyEnd: launchFor,
			NoFastForward: noFF, NoCalendar: noCal,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ref := run(tc.mk(), true, false)
			for _, leg := range []struct {
				name  string
				noCal bool
			}{{"calendar", false}, {"scan", true}} {
				got := run(tc.mk(), false, leg.noCal)
				if ref.CompletedOps != got.CompletedOps {
					t.Errorf("%s: completed ops: %d vs %d", leg.name, ref.CompletedOps, got.CompletedOps)
				}
				sameResponses(t, ref.Responses, got.Responses)
				sameSeries(t, "clients", ref.Clients, got.Clients)
				for tier, s := range ref.CPU {
					sameSeries(t, "cpu:"+tier, s, got.CPU[tier])
				}
			}
		})
	}
}

// TestFastForwardEquivalenceOnConsolidation proves equivalence on the
// Chapter 6 case study in the regime fast-forward targets: a daemon-only
// overnight window where the platform sits idle between SYNCHREP/INDEXBUILD
// cycles. The fast-forward run must take real jumps (not trivially
// degenerate into the plain loop) and still reproduce every output bit for
// bit, including the daemons' own volume and duration series.
// TestNoThinningBitIdentityWithClients proves that with thinning disabled
// the calendar loop stays bit-identical to the plain loop even with open
// Poisson client workloads attached: a night-floor hour of the Chapter 6
// consolidation, where every AppWorkload is due each tick (positive curve
// vetoes jumps) while the daemons' no-op polls are skipped wholesale.
func TestNoThinningBitIdentityWithClients(t *testing.T) {
	run := func(eng core.Engine, noFF bool) *CaseStudy {
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.01, Seed: 11, Scale: 0.1,
			StartHour: 3, EndHour: 4,
			Engine: eng, NoFastForward: noFF, NoThinning: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		cs.Sim.Shutdown()
		return cs
	}
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ref := run(tc.mk(), true)
			got := run(tc.mk(), false)
			if r, g := ref.Sim.CompletedOps(), got.Sim.CompletedOps(); r != g {
				t.Errorf("completed ops: %d vs %d", r, g)
			}
			sameResponses(t, ref.Sim.Responses, got.Sim.Responses)
			sameCollector(t, ref.Sim.Collector, got.Sim.Collector)
		})
	}
}

// TestBulkDenseEquivalence proves the bulk-dense loop — involved-only
// sweeps with agent-local catch-up and the calendar-driven drain — is a
// pure performance change: the validation scenario, a dense business-hour
// consolidation slice with interactive clients, and the day-night client
// scenario must all produce bit-identical completed-operation counts,
// response records and collector series against Config.NoBulkDense, under
// the sequential reference and both parallel engines. Thinning stays on:
// it is orthogonal to sweep scheduling, so the RNG draw sequences already
// agree.
func TestBulkDenseEquivalence(t *testing.T) {
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			t.Run("validation", func(t *testing.T) {
				run := func(noBulk bool) *ValidationResult {
					res, err := RunValidation(ValidationConfig{
						Experiment: 1, Seed: 42, Engine: tc.mk(),
						LaunchFor: 45, RunFor: 75, SteadyStart: 30, SteadyEnd: 45,
						NoBulkDense: noBulk,
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				ref, got := run(true), run(false)
				if ref.CompletedOps != got.CompletedOps {
					t.Errorf("completed ops: %d vs %d", ref.CompletedOps, got.CompletedOps)
				}
				sameResponses(t, ref.Responses, got.Responses)
				sameSeries(t, "clients", ref.Clients, got.Clients)
				for tier, s := range ref.CPU {
					sameSeries(t, "cpu:"+tier, s, got.CPU[tier])
				}
			})
			t.Run("consolidation-dense", func(t *testing.T) {
				if testing.Short() && tc.name != "sequential" {
					t.Skip("dense consolidation engine matrix skipped in -short")
				}
				run := func(noBulk bool) *CaseStudy {
					cs, err := NewConsolidation(CaseConfig{
						Step: 0.01, Seed: 7, Scale: 0.25,
						StartHour: 13, EndHour: 14, // the global peak: the dense regime
						Engine: tc.mk(), NoBulkDense: noBulk,
					})
					if err != nil {
						t.Fatal(err)
					}
					cs.Sim.RunFor(180)
					cs.Sim.Shutdown()
					return cs
				}
				ref, got := run(true), run(false)
				if r, g := ref.Sim.CompletedOps(), got.Sim.CompletedOps(); r != g {
					t.Errorf("completed ops: %d vs %d", r, g)
				}
				rj, rs := ref.Sim.FastForwardStats()
				gj, gs := got.Sim.FastForwardStats()
				if rj != gj || rs != gs {
					t.Errorf("jump stats diverged: %d/%d vs %d/%d (jump sizing must be unchanged)", rj, rs, gj, gs)
				}
				sameResponses(t, ref.Sim.Responses, got.Sim.Responses)
				sameCollector(t, ref.Sim.Collector, got.Sim.Collector)
			})
			t.Run("day-night", func(t *testing.T) {
				if testing.Short() && tc.name != "sequential" {
					t.Skip("day-night engine matrix skipped in -short")
				}
				hours := 24.0
				if testing.Short() {
					hours = 6
				}
				run := func(noBulk bool) *DayNightResult {
					res, err := RunDayNight(DayNightConfig{
						Seed: 42, Hours: hours, NoBulkDense: noBulk, Engine: tc.mk(),
					})
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				ref, got := run(true), run(false)
				if ref.CompletedOps != got.CompletedOps {
					t.Errorf("completed ops: %d vs %d", ref.CompletedOps, got.CompletedOps)
				}
				if ref.Jumps != got.Jumps || ref.SkippedTicks != got.SkippedTicks {
					t.Errorf("jump stats diverge: %d/%d vs %d/%d",
						ref.Jumps, ref.SkippedTicks, got.Jumps, got.SkippedTicks)
				}
				sameResponses(t, ref.Responses, got.Responses)
				sameCollector(t, ref.Sim.Collector, got.Sim.Collector)
			})
		})
	}
}

// TestDayNightLoopEquivalence pins the two guarantees of the day-night
// scenario. With thinning on, the calendar loop and the scan loop consume
// the identical RNG sequence, so their outputs must be bit-identical —
// and both must jump heavily across the night floor, the regime the
// thinned sampler unlocks. With thinning off, the calendar loop must be
// bit-identical to the plain loop (per-tick draws, no jumps to take).
func TestDayNightLoopEquivalence(t *testing.T) {
	hours := 24.0
	if testing.Short() {
		hours = 6 // night floor plus the ramp into the business window
	}
	run := func(noFF, noCal, noThin bool) *DayNightResult {
		res, err := RunDayNight(DayNightConfig{
			Seed: 42, Hours: hours,
			NoFastForward: noFF, NoCalendar: noCal, NoThinning: noThin,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	t.Run("thinned-calendar-vs-scan", func(t *testing.T) {
		cal := run(false, false, false)
		scan := run(false, true, false)
		if cal.SkippedTicks < 100000 {
			t.Errorf("calendar run skipped only %d ticks; the night floor should fast-forward", cal.SkippedTicks)
		}
		if cal.CompletedOps != scan.CompletedOps {
			t.Errorf("completed ops: %d vs %d", cal.CompletedOps, scan.CompletedOps)
		}
		if cal.Jumps != scan.Jumps || cal.SkippedTicks != scan.SkippedTicks {
			t.Errorf("jump stats diverge: %d/%d vs %d/%d",
				cal.Jumps, cal.SkippedTicks, scan.Jumps, scan.SkippedTicks)
		}
		sameResponses(t, cal.Responses, scan.Responses)
		sameCollector(t, cal.Sim.Collector, scan.Sim.Collector)
	})
	t.Run("unthinned-calendar-vs-plain", func(t *testing.T) {
		plain := run(true, false, true)
		cal := run(false, false, true)
		if plain.CompletedOps != cal.CompletedOps {
			t.Errorf("completed ops: %d vs %d", plain.CompletedOps, cal.CompletedOps)
		}
		sameResponses(t, plain.Responses, cal.Responses)
		sameCollector(t, plain.Sim.Collector, cal.Sim.Collector)
	})
}

// TestThinnedArrivalEquivalence is the statistical half of the acceptance
// contract: thinning changes the RNG draw sequence but not the arrival
// law, so completed-operation counts and response-time distributions on
// the day-night scenario must agree with the per-tick loop within
// sampling tolerance. Counts are compared at five sigma of their summed
// Poisson variance; response distributions through their pooled mean and
// 90th percentile.
func TestThinnedArrivalEquivalence(t *testing.T) {
	thin, err := RunDayNight(DayNightConfig{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tick, err := RunDayNight(DayNightConfig{Seed: 42, NoThinning: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := float64(thin.CompletedOps), float64(tick.CompletedOps)
	if diff, tol := math.Abs(a-b), 5*math.Sqrt(a+b); diff > tol {
		t.Errorf("completed ops %v vs %v differ by %v > 5-sigma tolerance %v", a, b, diff, tol)
	}
	ta, ma, pa := pooledDurations(thin.Responses)
	tb, mb, pb := pooledDurations(tick.Responses)
	if ta < 500 || tb < 500 {
		t.Fatalf("too few samples to compare distributions: %v vs %v", ta, tb)
	}
	if rel := math.Abs(ma-mb) / mb; rel > 0.10 {
		t.Errorf("mean response %v vs %v: relative diff %.3f > 0.10", ma, mb, rel)
	}
	if rel := math.Abs(pa-pb) / pb; rel > 0.15 {
		t.Errorf("p90 response %v vs %v: relative diff %.3f > 0.15", pa, pb, rel)
	}
}

// pooledDurations flattens every response series into one population and
// returns its size, mean and 90th percentile.
func pooledDurations(r *metrics.Responses) (n int, mean, p90 float64) {
	var all []float64
	for _, k := range r.Keys() {
		all = append(all, r.Series(k.Op, k.DC).V...)
	}
	if len(all) == 0 {
		return 0, 0, 0
	}
	sum := 0.0
	for _, v := range all {
		sum += v
	}
	sort.Float64s(all)
	return len(all), sum / float64(len(all)), all[len(all)*9/10]
}

func TestFastForwardEquivalenceOnConsolidation(t *testing.T) {
	endHour := 4
	if testing.Short() {
		endHour = 3
	}
	run := func(eng core.Engine, noFF bool) *CaseStudy {
		cs, err := NewConsolidation(CaseConfig{
			Step: 0.05, Seed: 7, Scale: 0.25,
			StartHour: 2, EndHour: endHour,
			DisableClients: true, Engine: eng,
			NoFastForward: noFF,
		})
		if err != nil {
			t.Fatal(err)
		}
		cs.Run()
		cs.Sim.Shutdown()
		return cs
	}
	for _, tc := range ffEngines() {
		t.Run(tc.name, func(t *testing.T) {
			ref := run(tc.mk(), true)
			got := run(tc.mk(), false)
			if j, skipped := ref.Sim.FastForwardStats(); j != 0 || skipped != 0 {
				t.Fatalf("plain loop took %d jumps (%d ticks)", j, skipped)
			}
			jumps, skipped := got.Sim.FastForwardStats()
			if skipped < 1000 {
				t.Errorf("fast-forward run skipped only %d ticks in %d jumps; the overnight window should jump heavily", skipped, jumps)
			}
			if r, g := ref.Sim.CompletedOps(), got.Sim.CompletedOps(); r != g {
				t.Errorf("completed ops: %d vs %d", r, g)
			}
			sameResponses(t, ref.Sim.Responses, got.Sim.Responses)
			sameCollector(t, ref.Sim.Collector, got.Sim.Collector)
			for _, master := range ref.Masters {
				sameSeries(t, "sync-durations", &ref.Sync[master].Durations, &got.Sync[master].Durations)
				sameSeries(t, "idx-durations", &ref.Idx[master].Durations, &got.Idx[master].Durations)
				sameSeries(t, "idx-backlog", &ref.Idx[master].BacklogMB, &got.Idx[master].BacklogMB)
				for dc, s := range ref.Sync[master].PullMB {
					sameSeries(t, "pull:"+dc, s, got.Sync[master].PullMB[dc])
				}
				for dc, s := range ref.Sync[master].PushMB {
					sameSeries(t, "push:"+dc, s, got.Sync[master].PushMB[dc])
				}
			}
		})
	}
}
