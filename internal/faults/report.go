package faults

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/metrics"
)

// InjectionReport records the exact applied times of one injection.
// InjectedAt/RecoveredAt are -1 when the run ended before the transition
// fired; StalledOps is the number of operations still in flight at the
// recovery instant (exact, read inside the recovery poll).
type InjectionReport struct {
	Name        string
	Fault       string
	InjectedAt  float64
	RecoveredAt float64
	StalledOps  int
}

// Report is the recovery analysis of a chaos run, harvested into the
// experiment Result. The scalar metrics are derived from the fault:
// series at collector-snapshot resolution — they answer "which snapshot
// first shows X", so their granularity is the collect interval; the
// per-injection applied times are exact.
type Report struct {
	Injections []InjectionReport

	// BaselineBacklog is the in-flight operation count at the last
	// snapshot before the first injection — the healthy load level the
	// backlog must drain back to.
	BaselineBacklog float64
	// PeakBacklog is the maximum in-flight operation count observed from
	// the first injection onward, and PeakBacklogAt its snapshot time.
	PeakBacklog   float64
	PeakBacklogAt float64
	// TimeToReroute is the delay, in seconds after the first injection,
	// until diverted traffic first appears on a backup link; -1 when no
	// diversion was observed (no backups, or the fault needed none).
	TimeToReroute float64
	// TimeToDrain is the delay, in seconds after the last recovery, until
	// the backlog first returns to the baseline level; -1 when the run
	// ended with the backlog still elevated.
	TimeToDrain float64

	// Series holds the fault:-prefixed collector series (phase, backlog,
	// backup arrivals), lifted out of the ordinary result series so result
	// digests stay comparable with fault-free runs.
	Series map[string]*metrics.Series
}

// Finalize computes the recovery metrics from the recorded series and
// returns the report. Call it once, after the run.
func (c *Controller) Finalize() *Report {
	col := c.tg.Sim.Collector
	r := &Report{
		Injections:    append([]InjectionReport(nil), c.reports...),
		TimeToReroute: -1,
		TimeToDrain:   -1,
		Series:        make(map[string]*metrics.Series, 3),
	}
	for _, k := range col.Keys() {
		if strings.HasPrefix(k, "fault:") {
			r.Series[k] = col.MustSeries(k)
		}
	}

	firstInject, lastRecover := math.Inf(1), -1.0
	for _, ir := range r.Injections {
		if ir.InjectedAt >= 0 && ir.InjectedAt < firstInject {
			firstInject = ir.InjectedAt
		}
		if ir.RecoveredAt > lastRecover {
			lastRecover = ir.RecoveredAt
		}
	}
	if math.IsInf(firstInject, 1) {
		return r // run ended before any injection fired
	}

	backlog := r.Series[KeyBacklog]
	if backlog != nil {
		for i := range backlog.T {
			t, v := backlog.T[i], backlog.V[i]
			if t < firstInject {
				r.BaselineBacklog = v
				continue
			}
			if v > r.PeakBacklog {
				r.PeakBacklog, r.PeakBacklogAt = v, t
			}
			if r.TimeToDrain < 0 && lastRecover >= 0 && t >= lastRecover && v <= r.BaselineBacklog {
				r.TimeToDrain = t - lastRecover
			}
		}
	}

	if arr := r.Series[KeyBackupArrivals]; arr != nil {
		atInject := 0.0
		for i := range arr.T {
			t, v := arr.T[i], arr.V[i]
			if t <= firstInject {
				atInject = v
				continue
			}
			if v > atInject {
				r.TimeToReroute = t - firstInject
				break
			}
		}
	}
	return r
}

// String renders the report as the human-readable block the CLI prints.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fault report (%d injections)\n", len(r.Injections))
	for _, ir := range r.Injections {
		fmt.Fprintf(&b, "  %-12s %-38s inject %8.1fs  recover %8.1fs  stalled %d\n",
			ir.Name, ir.Fault, ir.InjectedAt, ir.RecoveredAt, ir.StalledOps)
	}
	fmt.Fprintf(&b, "  baseline backlog %.0f ops, peak %.0f ops at %.1fs\n",
		r.BaselineBacklog, r.PeakBacklog, r.PeakBacklogAt)
	if r.TimeToReroute >= 0 {
		fmt.Fprintf(&b, "  time-to-reroute %.1fs", r.TimeToReroute)
	} else {
		fmt.Fprintf(&b, "  time-to-reroute n/a")
	}
	if r.TimeToDrain >= 0 {
		fmt.Fprintf(&b, "  time-to-drain %.1fs\n", r.TimeToDrain)
	} else {
		fmt.Fprintf(&b, "  time-to-drain n/a (backlog still elevated)\n")
	}
	return b.String()
}
