package faults

import (
	"fmt"

	"repro/internal/core"
)

// WAN is a WAN connection fault between two adjacent DCs. Magnitude 1 is a
// blackout: both directions of the primary link fail and routing diverts
// onto backup paths (complete-then-divert — in-flight transfers finish;
// see topology.FailWAN). Magnitude in (0, 1) is a brownout: the link keeps
// carrying traffic at (1-m) times the healthy rate and 1/(1-m) times the
// healthy latency. Magnitude 0 is a no-op and elides the injection.
type WAN struct {
	From, To string
	Mag      float64
}

// Describe implements Fault.
func (f *WAN) Describe() string {
	if f.Mag >= 1 {
		return fmt.Sprintf("WAN blackout %s-%s", f.From, f.To)
	}
	return fmt.Sprintf("WAN brownout %s-%s (%.0f%%)", f.From, f.To, f.Mag*100)
}

// Validate implements Fault.
func (f *WAN) Validate(tg Target) error {
	if err := checkMagnitude(f.Mag); err != nil {
		return fmt.Errorf("wan %s-%s: %w", f.From, f.To, err)
	}
	if tg.Infra.WANLink(f.From, f.To) == nil {
		return fmt.Errorf("faults: no primary WAN link %s-%s (DCs: %v)", f.From, f.To, tg.Infra.DCNames())
	}
	return nil
}

// NoOp implements Fault.
func (f *WAN) NoOp() bool { return f.Mag <= 0 }

// Inject implements Fault.
func (f *WAN) Inject(tg Target) {
	if f.Mag >= 1 {
		tg.Infra.FailWAN(f.From, f.To)
		return
	}
	tg.Infra.DegradeWAN(f.From, f.To, 1-f.Mag)
}

// Recover implements Fault.
func (f *WAN) Recover(tg Target) {
	if f.Mag >= 1 {
		tg.Infra.RestoreWAN(f.From, f.To)
		return
	}
	tg.Infra.RepairWAN(f.From, f.To)
}

// Clone implements Fault.
func (f *WAN) Clone() Fault { c := *f; return &c }

// Magnitude implements MagnitudeFault.
func (f *WAN) Magnitude() float64 { return f.Mag }

// SetMagnitude implements MagnitudeFault.
func (f *WAN) SetMagnitude(m float64) error {
	if err := checkMagnitude(m); err != nil {
		return err
	}
	f.Mag = m
	return nil
}

// DC is a whole-data-center fault. Magnitude 1 is a blackout: every WAN
// link touching the DC fails (the DC vanishes from the platform's point of
// view; local clients keep hitting local tiers). Magnitude in (0, 1) is a
// brownout: every server CPU in every tier of the DC is derated to (1-m)
// times its spec rate — reduced power, thermal throttling. Magnitude 0 is
// a no-op.
type DC struct {
	DC  string
	Mag float64
}

// Describe implements Fault.
func (f *DC) Describe() string {
	if f.Mag >= 1 {
		return fmt.Sprintf("DC blackout %s", f.DC)
	}
	return fmt.Sprintf("DC brownout %s (%.0f%%)", f.DC, f.Mag*100)
}

// Validate implements Fault.
func (f *DC) Validate(tg Target) error {
	if err := checkMagnitude(f.Mag); err != nil {
		return fmt.Errorf("dc %s: %w", f.DC, err)
	}
	if tg.Infra.DCs[f.DC] == nil {
		return fmt.Errorf("faults: unknown DC %q (have %v)", f.DC, tg.Infra.DCNames())
	}
	return nil
}

// NoOp implements Fault.
func (f *DC) NoOp() bool { return f.Mag <= 0 }

// Inject implements Fault.
func (f *DC) Inject(tg Target) {
	if f.Mag >= 1 {
		tg.Infra.IsolateDC(f.DC)
		return
	}
	f.derate(tg, 1-f.Mag)
}

// Recover implements Fault.
func (f *DC) Recover(tg Target) {
	if f.Mag >= 1 {
		tg.Infra.RejoinDC(f.DC)
		return
	}
	f.derate(tg, 1)
}

func (f *DC) derate(tg Target, factor float64) {
	dc := tg.Infra.DC(f.DC)
	for _, tier := range dc.Tiers {
		for _, srv := range tier.Servers {
			srv.CPU.Sync()
			srv.CPU.Derate(factor)
			srv.CPU.MarkDirty()
		}
	}
}

// Clone implements Fault.
func (f *DC) Clone() Fault { c := *f; return &c }

// Magnitude implements MagnitudeFault.
func (f *DC) Magnitude() float64 { return f.Mag }

// SetMagnitude implements MagnitudeFault.
func (f *DC) SetMagnitude(m float64) error {
	if err := checkMagnitude(m); err != nil {
		return err
	}
	f.Mag = m
	return nil
}

// rebuildInterval is the period of synthetic rebuild traffic: one read
// burst per second spreads the rebuild bandwidth smoothly without adding a
// per-tick source cost (the controller's next poll is the earlier of the
// next burst and the next transition).
const rebuildInterval = 1.0

// Storage is a degraded-mode storage fault on one tier's arrays: every
// drive queue is derated to (1-m) times its spec throughput (parity
// reconstruction steals seeks), and while injected, RebuildMBps of
// synthetic read traffic per second is pushed through the tier's storage
// round-robin across its servers — the rebuild stream competing with
// production I/O. Magnitude must stay below 1 (a dead array is modeled as
// a DC or tier-level outage, not a zero-rate queue); magnitude 0 with no
// rebuild bandwidth is a no-op.
type Storage struct {
	DC, Tier    string
	Mag         float64
	RebuildMBps float64
}

// Describe implements Fault.
func (f *Storage) Describe() string {
	return fmt.Sprintf("storage degraded %s:%s (%.0f%%, rebuild %.0f MB/s)",
		f.DC, f.Tier, f.Mag*100, f.RebuildMBps)
}

// Validate implements Fault.
func (f *Storage) Validate(tg Target) error {
	if f.Mag < 0 || f.Mag >= 1 {
		return fmt.Errorf("faults: storage magnitude %v outside [0, 1) — model a dead array as a DC fault", f.Mag)
	}
	if f.RebuildMBps < 0 {
		return fmt.Errorf("faults: negative rebuild bandwidth %v", f.RebuildMBps)
	}
	dc := tg.Infra.DCs[f.DC]
	if dc == nil {
		return fmt.Errorf("faults: unknown DC %q (have %v)", f.DC, tg.Infra.DCNames())
	}
	if !dc.HasTier(f.Tier) {
		return fmt.Errorf("faults: DC %s has no tier %q", f.DC, f.Tier)
	}
	return nil
}

// NoOp implements Fault.
func (f *Storage) NoOp() bool { return f.Mag <= 0 && f.RebuildMBps <= 0 }

// Inject implements Fault.
func (f *Storage) Inject(tg Target) {
	if f.Mag > 0 {
		f.derate(tg, 1-f.Mag)
	}
}

// Recover implements Fault.
func (f *Storage) Recover(tg Target) {
	if f.Mag > 0 {
		f.derate(tg, 1)
	}
}

func (f *Storage) derate(tg Target, factor float64) {
	tier := tg.Infra.DC(f.DC).Tier(f.Tier)
	for _, srv := range tier.Servers {
		if srv.RAID != nil {
			srv.RAID.Sync()
			srv.RAID.Derate(factor)
			srv.RAID.MarkDirty()
		}
	}
	if tier.SAN != nil {
		tier.SAN.Sync()
		tier.SAN.Derate(factor)
		tier.SAN.MarkDirty()
	}
}

// Clone implements Fault.
func (f *Storage) Clone() Fault { c := *f; return &c }

// Magnitude implements MagnitudeFault.
func (f *Storage) Magnitude() float64 { return f.Mag }

// SetMagnitude implements MagnitudeFault.
func (f *Storage) SetMagnitude(m float64) error {
	if m < 0 || m >= 1 {
		return fmt.Errorf("storage magnitude %v outside [0, 1)", m)
	}
	f.Mag = m
	return nil
}

// RebuildInterval implements the controller's rebuilder capability.
func (f *Storage) RebuildInterval() float64 {
	if f.RebuildMBps <= 0 {
		return 0
	}
	return rebuildInterval
}

// RebuildStep launches one rebuild read burst: RebuildMBps x interval
// bytes through one server's storage pipeline, round-robin by seq. The
// burst targets the drive arrays directly (rebuild reads never hit the
// server memory cache), so it draws no randomness.
func (f *Storage) RebuildStep(tg Target, seq int) {
	tier := tg.Infra.DC(f.DC).Tier(f.Tier)
	srv := tier.Servers[seq%len(tier.Servers)]
	bytes := f.RebuildMBps * 1e6 * rebuildInterval
	var stages []core.Stage
	switch {
	case srv.RAID != nil:
		stages = []core.Stage{{Queue: srv.RAID, Demand: bytes}}
	case tier.SAN != nil:
		stages = []core.Stage{
			{Queue: tier.SANLink, Demand: bytes},
			{Queue: tier.SAN, Demand: bytes},
		}
	default:
		return // validated topologies always have one of the two
	}
	plan := core.MessagePlan{Stages: stages}
	tg.Sim.StartOp(core.OpRun{
		Name:     "REBUILD",
		DC:       f.DC,
		NumSteps: 1,
		Expand:   func(int) []core.MessagePlan { return []core.MessagePlan{plan} },
		Silent:   true,
	})
}

// Failover repoints the SYNCHREP replication daemon of master From at
// secondary master To for the duration of the injection — the §7 multi-
// master topology's answer to losing a master site. Replication cycles
// launched while injected read the access matrix from the secondary's
// perspective and target its hardware; cycles already in flight complete
// against the old master (the same complete-then-divert semantics links
// have). From == To is a no-op.
type Failover struct {
	From, To string
}

// Describe implements Fault.
func (f *Failover) Describe() string {
	return fmt.Sprintf("SYNCHREP failover %s -> %s", f.From, f.To)
}

// Validate implements Fault.
func (f *Failover) Validate(tg Target) error {
	if tg.Sync[f.From] == nil {
		return fmt.Errorf("faults: no SYNCHREP daemon for master %q — failover needs WithDaemons", f.From)
	}
	if tg.Infra.DCs[f.To] == nil {
		return fmt.Errorf("faults: unknown failover target DC %q (have %v)", f.To, tg.Infra.DCNames())
	}
	return nil
}

// NoOp implements Fault.
func (f *Failover) NoOp() bool { return f.From == f.To }

// Inject implements Fault.
func (f *Failover) Inject(tg Target) { tg.Sync[f.From].Master = f.To }

// Recover implements Fault.
func (f *Failover) Recover(tg Target) { tg.Sync[f.From].Master = f.From }

// Clone implements Fault.
func (f *Failover) Clone() Fault { c := *f; return &c }

// checkMagnitude validates a severity in [0, 1].
func checkMagnitude(m float64) error {
	if m < 0 || m > 1 {
		return fmt.Errorf("magnitude %v outside [0, 1]", m)
	}
	return nil
}

var (
	_ MagnitudeFault = (*WAN)(nil)
	_ MagnitudeFault = (*DC)(nil)
	_ MagnitudeFault = (*Storage)(nil)
	_ Fault          = (*Failover)(nil)
	_ rebuilder      = (*Storage)(nil)
)
