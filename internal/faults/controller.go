package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Phase values recorded in the fault:phase series, segmenting every other
// series of a chaos run: 0 while stabilizing (before the first injection),
// 1 while any fault is active, 2 once all faults have recovered.
const (
	PhaseStabilize = 0
	PhaseInject    = 1
	PhaseRecover   = 2
)

// Probe keys the controller registers. They carry the fault: prefix so the
// experiment harvest can lift them out of the ordinary series set (and out
// of the result digest) into the fault report.
const (
	KeyPhase          = "fault:phase"
	KeyBacklog        = "fault:backlog"
	KeyBackupArrivals = "fault:backup_arrivals"
)

// transition is one scheduled fault edge.
type transition struct {
	at     float64
	idx    int // index into Controller.inj / Controller.reports
	inject bool
}

// rebuildState tracks an injected fault that generates synthetic traffic.
type rebuildState struct {
	idx      int
	fault    rebuilder
	next     float64
	interval float64
	seq      int
}

// Controller executes a fault schedule as a simulation source: its
// NextPoll is always the exact time of the next fault transition (or
// rebuild burst), so the fast-forward loop lands on transition ticks
// instead of skipping them, and the controller costs nothing in between.
// Build one with Attach.
type Controller struct {
	tg       Target
	inj      []Injection
	trans    []transition
	next     int
	phase    int
	active   int
	reports  []InjectionReport
	rebuilds []rebuildState
}

// Attach validates the injections against the built target, elides no-ops,
// and — when any effective injection remains and the simulation allows
// faults — registers the controller source and its probes. It returns nil
// when nothing attaches: a fault-free scenario stays structurally
// identical to one that never mentioned faults, which is the bit-identity
// guarantee behind Config.NoFaults and zero-magnitude sweep points.
func Attach(tg Target, injections []Injection) (*Controller, error) {
	seen := make(map[string]bool, len(injections))
	effective := make([]Injection, 0, len(injections))
	for _, inj := range injections {
		if err := inj.validate(); err != nil {
			return nil, err
		}
		if seen[inj.Name] {
			return nil, fmt.Errorf("faults: duplicate injection name %q", inj.Name)
		}
		seen[inj.Name] = true
		if err := inj.Fault.Validate(tg); err != nil {
			return nil, fmt.Errorf("faults: injection %q: %w", inj.Name, err)
		}
		if inj.noOp() {
			continue
		}
		effective = append(effective, inj)
	}
	if len(effective) == 0 || !tg.Sim.FaultsEnabled() {
		return nil, nil
	}
	c := &Controller{tg: tg, inj: effective}
	for i, inj := range effective {
		c.trans = append(c.trans,
			transition{at: inj.At, idx: i, inject: true},
			transition{at: inj.At + inj.Duration, idx: i, inject: false},
		)
		c.reports = append(c.reports, InjectionReport{
			Name: inj.Name, Fault: inj.Fault.Describe(),
			InjectedAt: -1, RecoveredAt: -1, StalledOps: -1,
		})
	}
	sort.SliceStable(c.trans, func(a, b int) bool { return c.trans[a].at < c.trans[b].at })
	c.registerProbes()
	tg.Sim.AddSource(c)
	return c, nil
}

// registerProbes adds the scenario-phase and recovery-signal series. All
// three are passive reads — registering them perturbs no simulation state.
func (c *Controller) registerProbes() {
	col := c.tg.Sim.Collector
	col.Register(metrics.Probe{
		Key:    KeyPhase,
		Sample: func(float64) float64 { return float64(c.phase) },
	})
	col.Register(metrics.Probe{
		Key:    KeyBacklog,
		Sample: func(float64) float64 { return float64(c.tg.Sim.ActiveFlows()) },
	})
	col.Register(metrics.Probe{
		Key:    KeyBackupArrivals,
		Sample: func(float64) float64 { return float64(c.tg.Infra.BackupArrivals()) },
	})
}

// Poll applies every transition and rebuild burst due at or before now.
// Implements core.Source; it runs in the sequential source-poll phase, so
// fault mutations are safe against the parallel sweep by construction.
func (c *Controller) Poll(s *core.Simulation, now float64) {
	for c.next < len(c.trans) && now >= c.trans[c.next].at {
		tr := c.trans[c.next]
		c.next++
		inj := c.inj[tr.idx]
		if tr.inject {
			c.active++
			c.phase = PhaseInject
			c.reports[tr.idx].InjectedAt = now
			inj.Fault.Inject(c.tg)
			if rb, ok := inj.Fault.(rebuilder); ok {
				if iv := rb.RebuildInterval(); iv > 0 {
					c.rebuilds = append(c.rebuilds, rebuildState{
						idx: tr.idx, fault: rb, next: now + iv, interval: iv,
					})
				}
			}
			continue
		}
		c.active--
		if c.active == 0 {
			c.phase = PhaseRecover
		}
		// Stalled ops: flows still in flight at the instant of recovery —
		// work the fault delayed past its own window, counted before the
		// recovery mutation so the read is exact, not snapshot-resolution.
		c.reports[tr.idx].StalledOps = s.ActiveFlows()
		c.reports[tr.idx].RecoveredAt = now
		inj.Fault.Recover(c.tg)
		for i := range c.rebuilds {
			if c.rebuilds[i].idx == tr.idx {
				c.rebuilds = append(c.rebuilds[:i], c.rebuilds[i+1:]...)
				break
			}
		}
	}
	for i := range c.rebuilds {
		rb := &c.rebuilds[i]
		for now >= rb.next {
			rb.fault.RebuildStep(c.tg, rb.seq)
			rb.seq++
			rb.next += rb.interval
		}
	}
}

// NextPoll returns the exact time of the controller's next action — the
// earliest pending transition or rebuild burst — or +Inf once the schedule
// is exhausted, parking the source for good. Implements core.Source: the
// fast-forward loop turns this into a calendar tick that jumps may land on
// but never cross.
func (c *Controller) NextPoll(now float64) float64 {
	next := math.Inf(1)
	if c.next < len(c.trans) {
		next = c.trans[c.next].at
	}
	for i := range c.rebuilds {
		if c.rebuilds[i].next < next {
			next = c.rebuilds[i].next
		}
	}
	return next
}

// Phase returns the current scenario phase.
func (c *Controller) Phase() int { return c.phase }

var _ core.Source = (*Controller)(nil)
