// Package faults implements phased fault-injection scenarios: a composable
// fault library (WAN blackout and brownout, data-center blackout and
// brownout, storage degraded mode with synthetic rebuild traffic, and
// SYNCHREP master failover) driven by a scenario controller that runs the
// classic chaos phases stabilize -> inject -> recover.
//
// The controller is a core.Source, not an agent: each fault transition is
// a scheduled poll, so the event calendar treats it like any other due
// tick. Fast-forward jumps stop at (never across) the transition tick,
// thinning and bulk-dense stepping are unaffected, and no per-tick cost is
// paid while no transition is due — faults compose with every loop
// optimization for free.
//
// Determinism contract: faults draw no randomness. Transition times come
// from the injection schedule, rebuild traffic is launched on a fixed
// period with round-robin server selection, and every hardware mutation is
// a deterministic function of the fault's parameters. A faulted run with
// seed s therefore differs from the healthy run with seed s only through
// the injected degradation — which is what makes magnitude sweeps over
// DeriveSeed-pinned points meaningful A/B comparisons. No-op injections
// (zero magnitude, zero duration) are elided at attach time: they add no
// source and no probes, so the run is bit-identical to one that never
// declared them.
package faults

import (
	"fmt"

	"repro/internal/background"
	"repro/internal/core"
	"repro/internal/topology"
)

// Target bundles the simulation surfaces a fault mutates: the hardware
// topology, the background daemons and the simulation itself (for
// launching synthetic traffic and reading backlog).
type Target struct {
	Sim   *core.Simulation
	Infra *topology.Infrastructure
	// Sync maps master DC name to its replication daemon, for failover
	// faults. May be nil when the scenario runs no daemons.
	Sync map[string]*background.SyncDaemon
}

// Fault is one injectable degradation. Inject and Recover run in the
// sequential source-poll phase at their scheduled ticks; Validate runs at
// attach time against the fully built target, so a misconfigured fault
// fails the compile instead of panicking mid-run. Faults must be
// idempotent-free value types: Clone returns an independent copy so
// concurrent sweep points never share mutable fault state.
type Fault interface {
	// Describe returns a short human-readable summary for reports.
	Describe() string
	// Validate checks the fault's parameters against the built target.
	Validate(tg Target) error
	// NoOp reports whether injecting the fault would change nothing; no-op
	// faults are elided at attach time to preserve bit-identity.
	NoOp() bool
	// Inject applies the degradation.
	Inject(tg Target)
	// Recover undoes it.
	Recover(tg Target)
	// Clone returns an independent copy.
	Clone() Fault
}

// MagnitudeFault is a fault with a sweepable severity in [0, 1]. Sweep
// axes faults.<name>.magnitude resolve through it.
type MagnitudeFault interface {
	Fault
	Magnitude() float64
	SetMagnitude(m float64) error
}

// rebuilder is an optional fault capability: while injected, the
// controller calls RebuildStep every RebuildInterval seconds to generate
// synthetic background traffic (a RAID rebuild reading surviving disks).
type rebuilder interface {
	RebuildInterval() float64
	RebuildStep(tg Target, seq int)
}

// Injection schedules one fault within a scenario: inject at At seconds of
// simulated time, recover Duration seconds later. The window [0, At) is
// the stabilize phase, [At, At+Duration) the inject phase and everything
// after the last recovery the recover phase. A Duration of zero (or less)
// means inject and recover coincide — nothing observable can happen, so
// the injection is elided entirely.
type Injection struct {
	// Name identifies the injection in reports and sweep axes
	// (faults.<name>.magnitude / faults.<name>.duration). Required, unique
	// within a scenario.
	Name     string
	Fault    Fault
	At       float64
	Duration float64
}

// validate checks the schedule fields; the fault's own parameters are
// checked by Fault.Validate at attach time.
func (inj Injection) validate() error {
	if inj.Name == "" {
		return fmt.Errorf("faults: injection needs a name (sweep axes and reports key on it)")
	}
	if inj.Fault == nil {
		return fmt.Errorf("faults: injection %q has no fault", inj.Name)
	}
	if inj.At < 0 {
		return fmt.Errorf("faults: injection %q at %v before simulation start", inj.Name, inj.At)
	}
	return nil
}

// noOp reports whether the injection can be elided: a schedule that opens
// no window, or a fault whose magnitude changes nothing.
func (inj Injection) noOp() bool {
	return inj.Duration <= 0 || inj.Fault.NoOp()
}
