package faults

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/topology"
)

// chaosSpec builds a compact three-DC infrastructure with a backup link:
// NA and EU joined by a primary, EU-AS1 as the idle backup, NA-AS1
// primary — the minimal topology where failing NA-EU leaves a detour.
func chaosSpec() topology.InfraSpec {
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 4, GHz: 2},
		MemGB:   16,
		NICGbps: 1,
		RAID: &hardware.RAIDSpec{
			Disks:    2,
			Disk:     hardware.DiskSpec{CtrlGbps: 4, MBps: 100, HitRate: 0},
			CtrlGbps: 4, HitRate: 0,
		},
	}
	localLink := hardware.LinkSpec{Gbps: 1, LatencyMS: 0.45}
	dc := func(name string) topology.DCSpec {
		return topology.DCSpec{
			Name: name, SwitchGbps: 10,
			ClientLink: hardware.LinkSpec{Gbps: 1, LatencyMS: 1},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 1, Server: srv, LocalLink: localLink},
			},
		}
	}
	return topology.InfraSpec{
		DCs: []topology.DCSpec{dc("NA"), dc("EU"), dc("AS1")},
		WAN: []topology.WANSpec{
			{From: "NA", To: "EU", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 45}},
			{From: "NA", To: "AS1", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 90}},
			{From: "EU", To: "AS1", Link: hardware.LinkSpec{Gbps: 0.045, LatencyMS: 100}, Backup: true},
		},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 2, NICGbps: 1, GHz: 2, DiskMBs: 100},
		},
	}
}

func buildTarget(t *testing.T, cfg core.Config) Target {
	t.Helper()
	if cfg.Step == 0 {
		cfg.Step = 0.001
	}
	sim := core.NewSimulation(cfg)
	t.Cleanup(sim.Shutdown)
	inf, err := topology.Build(sim, chaosSpec())
	if err != nil {
		t.Fatal(err)
	}
	return Target{Sim: sim, Infra: inf}
}

func TestAttachElidesNoOps(t *testing.T) {
	cases := []struct {
		name string
		inj  Injection
	}{
		{"zero magnitude", Injection{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 0}, At: 5, Duration: 10}},
		{"zero duration", Injection{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 1}, At: 5, Duration: 0}},
		{"zero storage", Injection{Name: "x", Fault: &Storage{DC: "NA", Tier: "app"}, At: 5, Duration: 10}},
	}
	for _, c := range cases {
		tg := buildTarget(t, core.Config{Seed: 1})
		ctrl, err := Attach(tg, []Injection{c.inj})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if ctrl != nil {
			t.Errorf("%s: no-op injection attached a controller", c.name)
		}
	}
}

func TestAttachRespectsNoFaults(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1, NoFaults: true})
	ctrl, err := Attach(tg, []Injection{
		{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 1}, At: 5, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl != nil {
		t.Error("NoFaults simulation attached a controller")
	}
}

func TestAttachValidation(t *testing.T) {
	cases := []struct {
		name string
		inj  []Injection
	}{
		{"no name", []Injection{{Fault: &WAN{From: "NA", To: "EU", Mag: 1}, Duration: 1}}},
		{"nil fault", []Injection{{Name: "x", Duration: 1}}},
		{"negative at", []Injection{{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 1}, At: -1, Duration: 1}}},
		{"duplicate names", []Injection{
			{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 1}, Duration: 1},
			{Name: "x", Fault: &WAN{From: "NA", To: "AS1", Mag: 1}, Duration: 1},
		}},
		{"unknown link", []Injection{{Name: "x", Fault: &WAN{From: "EU", To: "AS1", Mag: 1}, Duration: 1}}}, // backup, not primary
		{"magnitude above 1", []Injection{{Name: "x", Fault: &WAN{From: "NA", To: "EU", Mag: 1.5}, Duration: 1}}},
		{"dead storage", []Injection{{Name: "x", Fault: &Storage{DC: "NA", Tier: "app", Mag: 1}, Duration: 1}}},
		{"unknown tier", []Injection{{Name: "x", Fault: &Storage{DC: "NA", Tier: "db", Mag: 0.5}, Duration: 1}}},
		{"failover without daemon", []Injection{{Name: "x", Fault: &Failover{From: "NA", To: "EU"}, Duration: 1}}},
	}
	for _, c := range cases {
		tg := buildTarget(t, core.Config{Seed: 1})
		if _, err := Attach(tg, c.inj); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestControllerTransitionsAreExact(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	ctrl, err := Attach(tg, []Injection{
		{Name: "atlantic", Fault: &WAN{From: "NA", To: "EU", Mag: 1}, At: 5, Duration: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ctrl == nil {
		t.Fatal("effective injection did not attach")
	}
	link := tg.Infra.WANLink("NA", "EU")
	if ctrl.Phase() != PhaseStabilize {
		t.Errorf("initial phase = %d", ctrl.Phase())
	}

	tg.Sim.RunFor(10) // now mid-window: injected at exactly 5
	if !link.Failed() {
		t.Fatal("link alive mid-window")
	}
	if ctrl.Phase() != PhaseInject {
		t.Errorf("mid-window phase = %d", ctrl.Phase())
	}
	tg.Sim.RunFor(10) // past recovery at 15
	if link.Failed() {
		t.Fatal("link still failed after recovery")
	}
	if ctrl.Phase() != PhaseRecover {
		t.Errorf("post-window phase = %d", ctrl.Phase())
	}

	rep := ctrl.Finalize()
	if len(rep.Injections) != 1 {
		t.Fatalf("injections = %d", len(rep.Injections))
	}
	ir := rep.Injections[0]
	if ir.InjectedAt != 5 || ir.RecoveredAt != 15 {
		t.Errorf("applied times = %v / %v, want exactly 5 / 15", ir.InjectedAt, ir.RecoveredAt)
	}
	if ir.StalledOps != 0 {
		t.Errorf("stalled ops = %d with no workload", ir.StalledOps)
	}
	if rep.Series[KeyPhase] == nil || rep.Series[KeyBacklog] == nil || rep.Series[KeyBackupArrivals] == nil {
		t.Error("fault series missing from report")
	}
	if next := ctrl.NextPoll(20); !math.IsInf(next, 1) {
		t.Errorf("exhausted controller NextPoll = %v, want +Inf", next)
	}
}

func TestWANBrownoutDegradesAndRepairs(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	_, err := Attach(tg, []Injection{
		{Name: "brownout", Fault: &WAN{From: "NA", To: "EU", Mag: 0.5}, At: 2, Duration: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	link := tg.Infra.WANLink("NA", "EU")
	healthy := link.Rate()

	tg.Sim.RunFor(4) // mid-window
	if !link.Degraded() {
		t.Fatal("link not degraded mid-window")
	}
	if got := link.Rate(); math.Abs(got-healthy*0.5) > healthy*1e-9 {
		t.Errorf("degraded rate = %v, want half of %v", got, healthy)
	}
	if link.Failed() {
		t.Error("brownout must keep the link routable")
	}
	tg.Sim.RunFor(4)
	if link.Degraded() || link.Rate() != healthy {
		t.Error("link not repaired after the window")
	}
}

func TestDCBrownoutDeratesEveryServer(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	_, err := Attach(tg, []Injection{
		{Name: "thermal", Fault: &DC{DC: "EU", Mag: 0.25}, At: 1, Duration: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tg.Sim.RunFor(2) // mid-window
	// The derate is observable through the CPU horizon of queued work; a
	// cheap proxy is that recovery restores the spec rate without panics
	// and the isolated DC keeps routing (brownout, not blackout).
	if _, err := tg.Infra.Path("NA", "EU"); err != nil {
		t.Fatalf("brownout severed routing: %v", err)
	}
	tg.Sim.RunFor(2)
}

func TestDCBlackoutIsolatesAndRejoins(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	_, err := Attach(tg, []Injection{
		{Name: "outage", Fault: &DC{DC: "AS1", Mag: 1}, At: 1, Duration: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	tg.Sim.RunFor(2) // mid-window
	if _, err := tg.Infra.Path("NA", "AS1"); err == nil {
		t.Error("blacked-out DC still reachable")
	}
	if _, err := tg.Infra.Path("NA", "EU"); err != nil {
		t.Errorf("unrelated route severed: %v", err)
	}
	tg.Sim.RunFor(2)
	if _, err := tg.Infra.Path("NA", "AS1"); err != nil {
		t.Errorf("DC unreachable after rejoin: %v", err)
	}
}

func TestStorageRebuildGeneratesTraffic(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	_, err := Attach(tg, []Injection{
		{Name: "raid", Fault: &Storage{DC: "NA", Tier: "app", Mag: 0.3, RebuildMBps: 50}, At: 1, Duration: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tg.Sim.RunFor(10)
	// One rebuild burst per second over (1, 6): bursts at 2,3,4,5,6 —
	// each a silent completed operation.
	if ops := tg.Sim.Stats().CompletedOps; ops < 4 || ops > 6 {
		t.Errorf("rebuild completions = %d, want ~5", ops)
	}
}

func TestStorageWithoutRebuildIsQuiet(t *testing.T) {
	tg := buildTarget(t, core.Config{Seed: 1})
	_, err := Attach(tg, []Injection{
		{Name: "raid", Fault: &Storage{DC: "NA", Tier: "app", Mag: 0.3}, At: 1, Duration: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	tg.Sim.RunFor(10)
	if ops := tg.Sim.Stats().CompletedOps; ops != 0 {
		t.Errorf("derate-only storage fault launched %d ops", ops)
	}
}

func TestCloneIsolatesFaultState(t *testing.T) {
	orig := &WAN{From: "NA", To: "EU", Mag: 0.5}
	clone := orig.Clone().(*WAN)
	if err := clone.SetMagnitude(1); err != nil {
		t.Fatal(err)
	}
	if orig.Mag != 0.5 {
		t.Errorf("clone mutation leaked into the original: %v", orig.Mag)
	}
}
