package refdata

import (
	"math"
	"testing"
)

func TestSeriesTotalsMatchTable51(t *testing.T) {
	// Table 5.1's TOTAL row: 101.68 / 177.58 / 243.47 seconds.
	want := map[SeriesType]float64{Light: 101.68, Average: 177.58, Heavy: 243.47}
	for s, total := range want {
		if got := SeriesTotal(s); math.Abs(got-total) > 0.01 {
			t.Errorf("SeriesTotal(%s) = %v, want %v", s, got, total)
		}
	}
}

func TestEveryOperationHasDurations(t *testing.T) {
	for _, s := range SeriesTypes {
		for _, op := range CADOperations {
			if _, ok := Table51Durations[s][op]; !ok {
				t.Errorf("missing duration for %s/%s", s, op)
			}
		}
	}
}

func TestExperimentsAreOrderedByPressure(t *testing.T) {
	// Later experiments launch series more frequently (higher pressure).
	rate := func(e Experiment) float64 {
		r := 0.0
		for _, iv := range e.Interval {
			r += 1 / iv
		}
		return r
	}
	for i := 1; i < len(ValidationExperiments); i++ {
		if rate(ValidationExperiments[i]) <= rate(ValidationExperiments[i-1]) {
			t.Errorf("experiment %d not more intense than %d", i, i-1)
		}
	}
}

func TestTable52MonotoneAcrossExperiments(t *testing.T) {
	for _, tier := range ValidationTiers {
		for i := 1; i < 3; i++ {
			if Table52Physical[i][tier].Mean <= Table52Physical[i-1][tier].Mean {
				t.Errorf("physical %s mean not increasing at experiment %d", tier, i)
			}
		}
	}
}

func TestTable72RowsSumTo100(t *testing.T) {
	for dc, row := range Table72APM {
		sum := 0.0
		for _, p := range row {
			sum += p
		}
		// The published table rounds to two decimals; rows sum to 100
		// within rounding error (AFR sums to 100.02 as printed).
		if math.Abs(sum-100) > 0.05 {
			t.Errorf("APM row %s sums to %v", dc, sum)
		}
	}
}

func TestBackupLinksIdleInBothTables(t *testing.T) {
	for _, key := range []string{"EU->AFR", "EU->AS1"} {
		if Table61LinkUtil[key] != 0 || Table73LinkUtil[key] != 0 {
			t.Errorf("backup link %s should be idle in both case studies", key)
		}
	}
}

func TestMultiMasterImprovesBackgroundEffectiveness(t *testing.T) {
	if MultiMasterMaxStaleMin >= ConsolidatedMaxStaleMin {
		t.Error("multi-master staleness should improve")
	}
	if MultiMasterMaxUnsearchMin >= ConsolidatedMaxUnsearchMin {
		t.Error("multi-master index freshness should improve")
	}
	reduction := 1 - MultiMasterPeakPushNAMB/ConsolidatedPeakPushMB
	if math.Abs(reduction-0.43) > 0.02 {
		t.Errorf("NA volume reduction = %v, thesis reports ~43%%", reduction)
	}
}

func TestHDispatchDominatesScatterGather(t *testing.T) {
	sg := map[int]float64{}
	for _, r := range Table41ScatterGather {
		sg[r.Threads] = r.Speedup
	}
	for _, r := range Table42HDispatch {
		if r.Threads == 1 {
			continue
		}
		if r.Speedup <= sg[r.Threads] {
			t.Errorf("H-Dispatch speedup at %d threads (%v) should exceed Scatter-Gather (%v)",
				r.Threads, r.Speedup, sg[r.Threads])
		}
	}
}
