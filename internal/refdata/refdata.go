// Package refdata encodes the numbers published in the thesis — the
// external reference the reproduction is compared against. Chapter 5's
// "physical infrastructure" measurements are proprietary Fortune 500 data;
// the published tables are the only record of them, so they serve as the
// reference series (see DESIGN.md, substitutions).
package refdata

// SpeedupRow is one row of Tables 4.1 / 4.2: thread count and measured
// speedup over the single-threaded run.
type SpeedupRow struct {
	Threads int
	Speedup float64
}

// Table41ScatterGather: the classic Scatter-Gather mechanism shows no
// multicore speedup — per-message overhead swamps the tiny per-agent work.
var Table41ScatterGather = []SpeedupRow{
	{1, 1.00}, {2, 1.08}, {4, 0.95}, {8, 0.96}, {16, 0.98},
}

// Table42HDispatch: the H-Dispatch mechanism with Agent Set = 64.
var Table42HDispatch = []SpeedupRow{
	{1, 1.00}, {2, 1.71}, {4, 3.20}, {8, 5.17}, {16, 8.06},
}

// SeriesType labels the three validation series (§5.2.2).
type SeriesType string

// The three series types used in the validation experiments.
const (
	Light   SeriesType = "Light"
	Average SeriesType = "Average"
	Heavy   SeriesType = "Heavy"
)

// SeriesTypes lists the series in canonical order.
var SeriesTypes = []SeriesType{Light, Average, Heavy}

// CADOperations lists the eight client-initiated CAD operations (§5.2.2)
// in series order.
var CADOperations = []string{
	"LOGIN", "TEXT-SEARCH", "FILTER", "EXPLORE",
	"SPATIAL-SEARCH", "SELECT", "OPEN", "SAVE",
}

// Table51Durations: duration in seconds of each operation by series type
// (Table 5.1).
var Table51Durations = map[SeriesType]map[string]float64{
	Light: {
		"LOGIN": 1.94, "TEXT-SEARCH": 4.9, "FILTER": 2.89, "EXPLORE": 6.6,
		"SPATIAL-SEARCH": 12.18, "SELECT": 5.7, "OPEN": 30.67, "SAVE": 36.8,
	},
	Average: {
		"LOGIN": 2.2, "TEXT-SEARCH": 5.11, "FILTER": 2.6, "EXPLORE": 6.43,
		"SPATIAL-SEARCH": 12.15, "SELECT": 6.2, "OPEN": 64.68, "SAVE": 78.21,
	},
	Heavy: {
		"LOGIN": 2.35, "TEXT-SEARCH": 4.99, "FILTER": 3, "EXPLORE": 5.92,
		"SPATIAL-SEARCH": 12.38, "SELECT": 5.34, "OPEN": 96.48, "SAVE": 113.01,
	},
}

// SeriesTotal returns the published total duration of one series.
func SeriesTotal(s SeriesType) float64 {
	total := 0.0
	for _, d := range Table51Durations[s] {
		total += d
	}
	return total
}

// Experiment describes one validation experiment: the launch interval in
// seconds for each series type (§5.2.4).
type Experiment struct {
	Name     string
	Interval map[SeriesType]float64
}

// ValidationExperiments are the three experiments of §5.2.4.
var ValidationExperiments = []Experiment{
	{Name: "Experiment-1 (15-36-60)", Interval: map[SeriesType]float64{Light: 15, Average: 36, Heavy: 60}},
	{Name: "Experiment-2 (12-29-48)", Interval: map[SeriesType]float64{Light: 12, Average: 29, Heavy: 48}},
	{Name: "Experiment-3 (10-24-40)", Interval: map[SeriesType]float64{Light: 10, Average: 24, Heavy: 40}},
}

// Tiers of the validation infrastructure in report order.
var ValidationTiers = []string{"app", "db", "fs", "idx"}

// UtilStat is a steady-state mean and standard deviation (percent).
type UtilStat struct{ Mean, Std float64 }

// Table52Physical: steady-state CPU utilization (percent) measured on the
// physical infrastructure, by experiment index (0-2) and tier (Table 5.2).
var Table52Physical = [3]map[string]UtilStat{
	{"app": {55.84, 4.27}, "db": {39.04, 4.54}, "fs": {40.60, 10.87}, "idx": {19.04, 4.34}},
	{"app": {71.60, 5.64}, "db": {49.20, 4.61}, "fs": {49.87, 10.66}, "idx": {29.20, 4.61}},
	{"app": {81.81, 4.79}, "db": {57.20, 6.30}, "fs": {56.68, 12.06}, "idx": {36.99, 6.43}},
}

// Table52Simulated: the same statistics as predicted by GDISim in the
// thesis, for comparison with this reproduction's output.
var Table52Simulated = [3]map[string]UtilStat{
	{"app": {58.59, 5.71}, "db": {43.07, 5.76}, "fs": {42.93, 11.26}, "idx": {19.91, 5.06}},
	{"app": {72.80, 6.68}, "db": {54.98, 5.48}, "fs": {48.63, 10.98}, "idx": {28.87, 5.22}},
	{"app": {79.80, 7.18}, "db": {62.83, 7.82}, "fs": {52.55, 14.70}, "idx": {33.03, 7.92}},
}

// Table53RMSE: root-mean-square error (percent) between the physical and
// simulated infrastructures reported by the thesis, by experiment.
var Table53RMSE = [3]map[string]float64{
	{"cpu:app": 9.07, "cpu:db": 11.41, "cpu:fs": 7.51, "cpu:idx": 6.12, "clients": 5.98, "resp": 5.01},
	{"cpu:app": 9.94, "cpu:db": 12.56, "cpu:fs": 7.05, "cpu:idx": 5.40, "clients": 5.12, "resp": 6.92},
	{"cpu:app": 10.11, "cpu:db": 11.29, "cpu:fs": 7.42, "cpu:idx": 5.83, "clients": 6.52, "resp": 6.62},
}

// SteadyStateClients: approximate steady-state concurrent client counts
// read from Fig. 5-6 for experiments 1-3.
var SteadyStateClients = [3]float64{22, 28, 35}

// Chapter 6 — consolidated platform.

// ConsolidatedDCs lists the six data centers of the consolidated platform
// (Fig. 6-2); DNA is the master.
var ConsolidatedDCs = []string{"NA", "EU", "AS1", "AS2", "SA", "AFR", "AUS"}

// Table61LinkUtil: average utilization (percent of the allocated 20%
// capacity) during the 12:00-16:00 GMT peak, per WAN link (Table 6.1).
var Table61LinkUtil = map[string]float64{
	"NA->SA":   48,
	"NA->EU":   43,
	"NA->AS1":  59,
	"EU->AFR":  0, // backup
	"EU->AS1":  0, // backup
	"AS1->AFR": 53,
	"AS1->AS2": 47,
	"AS1->AUS": 54,
}

// Table62Row is one row of Table 6.2: the latency penalty of a CAD
// operation launched from DAUS versus DNA.
type Table62Row struct {
	Op         string
	RNA        float64 // response time at DNA (s)
	RAUS       float64 // response time at DAUS (s)
	RoundTrips int     // S: NA<->AUS round trips in the cascade
	DeltaPct   float64 // (RAUS-RNA)/RNA x 100
}

// Table62Latency: response-time variation for CAD operations caused by
// WAN latency at DAUS (Table 6.2).
var Table62Latency = []Table62Row{
	{"LOGIN", 2.2, 3.62, 4, 64.54},
	{"TEXT-SEARCH", 5.11, 6.51, 2, 27.39},
	{"FILTER", 2.6, 4.00, 2, 53.84},
	{"EXPLORE", 6.43, 15.53, 13, 141.52},
	{"SPATIAL-SEARCH", 12.15, 21.95, 14, 80.65},
	{"SELECT", 6.2, 11.1, 7, 79.03},
	{"OPEN", 64.68, 65.38, 1, 1.08},
	{"SAVE", 78.21, 78.91, 1, 0.89},
}

// Consolidated-platform headline results (Chapter 6).
const (
	// Fig. 6-12: Tapp peak utilization in DNA at 15:00 GMT (fraction).
	ConsolidatedAppPeak = 0.73
	// Fig. 6-12: Tdb, Tidx, Tfs peaks in DNA (fractions).
	ConsolidatedDBPeak  = 0.32
	ConsolidatedIdxPeak = 0.30
	ConsolidatedFSPeak  = 0.31
	// Fig. 6-13: Tfs utilization peak in DAUS (fraction).
	ConsolidatedAUSFSPeak = 0.035
	// Fig. 6-14: background-process effectiveness (minutes).
	ConsolidatedMaxStaleMin    = 31.0 // R^max_SR
	ConsolidatedMaxUnsearchMin = 63.0 // R^max_IB
	// §6.4.3: scheduling parameters.
	SynchRepIntervalMin = 15.0 // SYNCHREP launched every 15 min
	IndexBuildGapMin    = 5.0  // INDEXBUILD relaunched 5 min after completion
	AverageFileSizeMB   = 50.0 // §6.4.3 data-growth conversion
	// Fig. 6-11: peak data volume transferred per push phase (MB).
	ConsolidatedPeakPushMB = 14250.0
	// Peak concurrent clients (Figs. 6-5..6-7).
	CADPeakClients = 2000.0
	VISPeakClients = 2500.0
	PDMPeakClients = 1400.0
)

// Chapter 7 — multiple-master platform.

// Table72APM: access pattern matrix for the multiple-master infrastructure
// (Table 7.2), rows = client DC, columns = owner DC, percent.
var Table72APM = map[string]map[string]float64{
	"EU":  {"EU": 83.65, "NA": 12.71, "AUS": 1.67, "SA": 1.04, "AFR": 0.13, "AS1": 0.81},
	"NA":  {"EU": 15.47, "NA": 81.87, "AUS": 1.56, "SA": 0.91, "AFR": 0.01, "AS1": 0.18},
	"AUS": {"EU": 31.24, "NA": 13.72, "AUS": 50.28, "SA": 0.18, "AFR": 4.35, "AS1": 0.23},
	"SA":  {"EU": 38.99, "NA": 17.55, "AUS": 3.42, "SA": 39.87, "AFR": 0.08, "AS1": 0.09},
	"AFR": {"EU": 36.49, "NA": 31.38, "AUS": 13.45, "SA": 0.26, "AFR": 17.66, "AS1": 0.78},
	"AS1": {"EU": 61.00, "NA": 30.45, "AUS": 2.39, "SA": 0.85, "AFR": 0.04, "AS1": 5.27},
}

// Table73LinkUtil: average utilization (percent of allocated capacity)
// during 12:00-16:00 GMT for the multiple-master run (Table 7.3).
var Table73LinkUtil = map[string]float64{
	"NA->SA":   53,
	"NA->EU":   51,
	"NA->AS1":  76,
	"EU->AFR":  0,
	"EU->AS1":  0,
	"AS1->AFR": 67,
	"AS1->AS2": 56,
	"AS1->AUS": 66,
}

// Multiple-master headline results (Chapter 7).
const (
	// §7.4.1: peak utilizations on the downsized DNA hardware.
	MultiMasterAppPeakNA = 0.78
	MultiMasterDBPeakNA  = 0.39
	// §7.4.1: DEU utilizations.
	MultiMasterAppPeakEU = 0.57
	MultiMasterDBPeakEU  = 0.48
	// Fig. 7-6: background effectiveness in DNA (minutes).
	MultiMasterMaxStaleMin    = 19.0
	MultiMasterMaxUnsearchMin = 37.0
	// Fig. 7-4: peak pull/push volume at DNA (MB) — down ~43% from the
	// consolidated platform's 14.25 GB.
	MultiMasterPeakPushNAMB = 8000.0
	// Fig. 7-5: peak volume at DEU (MB).
	MultiMasterPeakPushEUMB = 5500.0
)
