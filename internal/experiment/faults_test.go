package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faults"
)

// brownout declares a DC brownout injection over the single-DC test
// fixture: effective when magnitude and duration are positive.
func brownout(mag, duration float64) Injection {
	return Injection{
		Name:     "na",
		Fault:    &faults.DC{DC: "NA", Mag: mag},
		At:       100,
		Duration: duration,
	}
}

// Injection aliases the faults type for test brevity.
type Injection = faults.Injection

// TestNoOpFaultsAreBitIdentical is the bit-identity guarantee of the fault
// suite: an experiment whose fault schedule cannot observe anything — zero
// magnitude, zero duration, or faults disabled wholesale via
// LoopFlags.NoFaults — produces exactly the digest of an experiment that
// never declared faults, under every engine. The elision happens at attach
// time (no controller, no probes, no source), so the runs are structurally
// identical, not merely numerically close.
func TestNoOpFaultsAreBitIdentical(t *testing.T) {
	engines := []struct {
		name string
		opt  Option
	}{
		{"sequential", nil},
		{"scattergather", WithEngine(func() core.Engine { return dispatch.NewScatterGather(2) })},
		{"hdispatch", WithEngine(func() core.Engine { return dispatch.NewHDispatch(2, 0) })},
	}
	variants := []struct {
		name string
		opts []Option
	}{
		{"fault-free", nil},
		{"zero magnitude", []Option{WithFault(brownout(0, 100))}},
		{"zero duration", []Option{WithFault(brownout(0.5, 0))}},
		{"NoFaults flag", []Option{
			WithFault(brownout(0.5, 100)),
			WithLoopFlags(LoopFlags{NoFaults: true}),
		}},
	}
	var baseline string
	for _, eng := range engines {
		for _, v := range variants {
			opts := append([]Option{}, v.opts...)
			if eng.opt != nil {
				opts = append(opts, eng.opt)
			}
			e, err := New("ab", testOptions(opts...)...)
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.name, v.name, err)
			}
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", eng.name, v.name, err)
			}
			if res.Faults != nil {
				t.Errorf("%s/%s: no-op schedule produced a fault report", eng.name, v.name)
			}
			d := res.Digest()
			if baseline == "" {
				baseline = d
				continue
			}
			if d != baseline {
				t.Errorf("%s/%s: digest %s diverged from fault-free baseline %s",
					eng.name, v.name, d, baseline)
			}
		}
	}
}

// TestEffectiveFaultChangesResultAndReports: a real injection must perturb
// the digest, apply at its exact scheduled times, and surface the recovery
// telemetry on Result.Faults — with the fault: series lifted out of
// Result.Series so the digest stays comparable with fault-free runs.
func TestEffectiveFaultChangesResultAndReports(t *testing.T) {
	run := func(opts ...Option) *Result {
		e, err := New("chaos", testOptions(opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	healthy := run()
	faulted := run(WithFault(brownout(0.6, 120)))

	if faulted.Digest() == healthy.Digest() {
		t.Error("60% DC brownout left the result digest unchanged")
	}
	if faulted.Faults == nil {
		t.Fatal("effective injection produced no fault report")
	}
	rep := faulted.Faults
	if len(rep.Injections) != 1 {
		t.Fatalf("injections reported = %d", len(rep.Injections))
	}
	ir := rep.Injections[0]
	if ir.InjectedAt != 100 || ir.RecoveredAt != 220 {
		t.Errorf("applied times %v / %v, want exactly 100 / 220", ir.InjectedAt, ir.RecoveredAt)
	}
	if ir.StalledOps < 0 {
		t.Error("stalled ops not recorded at recovery")
	}
	for key := range faulted.Series {
		if strings.HasPrefix(key, "fault:") {
			t.Errorf("fault series %q leaked into Result.Series", key)
		}
	}
	for _, key := range []string{faults.KeyPhase, faults.KeyBacklog, faults.KeyBackupArrivals} {
		if rep.Series[key] == nil {
			t.Errorf("report series %q missing", key)
		}
	}
	if phase := rep.Series[faults.KeyPhase]; phase != nil {
		if got := phase.At(50); got != faults.PhaseStabilize {
			t.Errorf("phase at 50s = %v, want stabilize", got)
		}
		if got := phase.At(180); got != faults.PhaseInject {
			t.Errorf("phase at 180s = %v, want inject", got)
		}
		if got := phase.At(280); got != faults.PhaseRecover {
			t.Errorf("phase at 280s = %v, want recover", got)
		}
	}
}

// TestWithFaultClonesInjections: WithFault must deep-copy the fault so a
// sweep axis mutating one point's magnitude never reaches the caller's
// value (or a sibling point's).
func TestWithFaultClonesInjections(t *testing.T) {
	orig := &faults.DC{DC: "NA", Mag: 0.5}
	e, err := New("clone", testOptions(WithFault(Injection{
		Name: "na", Fault: orig, At: 100, Duration: 100,
	}))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := applyPath(e, "faults.na.magnitude", 0.9); err != nil {
		t.Fatal(err)
	}
	if orig.Mag != 0.5 {
		t.Errorf("axis application reached the caller's fault value: %v", orig.Mag)
	}
}

// TestSweepFaultAxes grids over an injection's magnitude and duration.
// With the seed pinned by a single-valued seed axis, every grid point
// whose coordinates make the fault a no-op must reproduce the fault-free
// digest exactly, and the one effective point must diverge.
func TestSweepFaultAxes(t *testing.T) {
	base := func() (*Experiment, error) {
		return New("grid", testOptions(WithFault(brownout(0.5, 100)))...)
	}
	res, err := NewSweep("chaos-grid", base).
		Vary("faults.na.magnitude", 0, 0.5).
		Vary("faults.na.duration", 0, 100).
		Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		mag, dur := p.Values[0].Value, p.Values[1].Value
		// Re-derive the healthy reference under this point's seed.
		ref, err := New("ref", testOptions()...)
		if err != nil {
			t.Fatal(err)
		}
		ref.seed = p.Seed
		refRes, err := ref.Run()
		if err != nil {
			t.Fatal(err)
		}
		same := p.Res.Digest() == refRes.Digest()
		if noOp := mag == 0 || dur == 0; noOp != same {
			t.Errorf("point %d (mag=%v dur=%v): no-op=%v but digest-match=%v",
				p.Index, mag, dur, noOp, same)
		}
	}
}

// TestSweepFaultAxisValidation: a bad fault axis must fail grid
// validation before any point burns simulation time, with an error naming
// the axis — same contract as every other axis family.
func TestSweepFaultAxisValidation(t *testing.T) {
	base := func() (*Experiment, error) {
		return New("grid", testOptions(WithFault(brownout(0.5, 100)))...)
	}
	cases := []struct {
		name string
		path string
		vals []float64
	}{
		{"unknown injection", "faults.nope.magnitude", []float64{0.5}},
		{"unknown field", "faults.na.severity", []float64{0.5}},
		{"magnitude above 1", "faults.na.magnitude", []float64{0.5, 1.5}},
		{"negative duration", "faults.na.duration", []float64{-10}},
		{"missing field", "faults.na", []float64{1}},
	}
	for _, c := range cases {
		err := NewSweep("bad", base).Vary(c.path, c.vals...).Validate()
		if err == nil {
			t.Errorf("%s: grid accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.path) {
			t.Errorf("%s: error does not name the axis: %v", c.name, err)
		}
	}
}
