package experiment

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"
)

// Digest reduces the result to a hex-encoded SHA-256 over every number the
// run produced: the run statistics, every response-time sample (by sorted
// population key) and every collector sample (by sorted series key), with
// float64s hashed by their exact bit patterns. Two results share a digest
// iff they are bit-identical — the property the sweep determinism tests
// pin across worker counts, and the cheapest way to compare a document-
// compiled experiment against its Go-built equivalent.
//
// Loop-shape counters (Jumps, SkippedTicks, Barriers, WindowsStretched,
// MailboxApplied, MailboxMinSlack) are deliberately excluded: they describe
// how the time loop partitioned the run — which legitimately differs across
// the A/B loop flags and with window stretching on or off — not what the
// simulation computed. Every simulated quantity (completions, ticks,
// seconds, all samples) is hashed.
func (res *Result) Digest() string {
	h := sha256.New()
	writeU64(h, res.Seed)
	writeU64(h, res.Stats.CompletedOps)
	writeU64(h, uint64(res.Stats.Ticks))
	writeF64(h, res.Stats.Seconds)

	for _, k := range res.Responses.Keys() {
		io.WriteString(h, k.Op)
		io.WriteString(h, "@")
		io.WriteString(h, k.DC)
		s := res.Responses.Series(k.Op, k.DC)
		writeU64(h, uint64(s.Len()))
		for i := range s.V {
			writeF64(h, s.T[i])
			writeF64(h, s.V[i])
		}
	}
	for _, k := range res.SeriesKeys() {
		io.WriteString(h, k)
		s := res.Series[k]
		writeU64(h, uint64(s.Len()))
		for i := range s.V {
			writeF64(h, s.T[i])
			writeF64(h, s.V[i])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeU64(w io.Writer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.Write(buf[:])
}

func writeF64(w io.Writer, v float64) {
	writeU64(w, math.Float64bits(v))
}
