// Package experiment is the declarative what-if surface of the simulator:
// one Experiment value — assembled from functional options or compiled from
// a JSON scenario document — describes everything a run needs (the
// infrastructure, the workloads, the background daemons, the probes, the
// run window, the engine and the seed), and one pipeline turns it into
// results (Compile: build simulation → build topology → attach workloads
// and daemons → register probes → run → harvest a uniform Result).
//
// The package exists so scenario code stops hand-wiring simulations: the
// thesis scenarios (internal/scenarios), the JSON document loader
// (internal/config) and the CLI all assemble the same Experiment type, and
// everything learned by one surface (loop flags, window shifting, daemon
// sizing) is shared by all of them. On top of a single experiment, Sweep
// (sweep.go) expands a parameter grid into independent experiments and runs
// them concurrently with deterministically derived per-point seeds.
package experiment

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/apps"
	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/refdata"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Experiment is a complete, runnable scenario description. Assemble one
// with New and functional options; run it with Run (or Compile + Execute
// when the caller needs the built simulation before time advances).
// An Experiment is a value to build and run once — Sweep re-assembles a
// fresh one per grid point from a base factory, so points never share
// mutable state.
type Experiment struct {
	name string

	infra          *topology.InfraSpec
	step           float64
	collectSeconds float64
	seed           uint64
	engine         func() core.Engine
	flags          LoopFlags

	startHour int
	endHour   int
	duration  float64 // seconds; overrides the hour window when set

	apm       workload.AccessMatrix
	workloads []Workload
	daemons   *Daemons
	faults    []faults.Injection
	probes    []func(*Run) []metrics.Probe
	setup     []func(*Run) error
}

// LoopFlags carries the time-loop A/B switches through to core.Config; all
// zero (the default) selects the fastest loop. See core.Config for the
// exact semantics — only NoThinning changes results (it restores the
// bit-identity guarantee for thinned client workloads).
type LoopFlags struct {
	NoFastForward bool
	NoCalendar    bool
	NoBulkDense   bool
	NoThinning    bool
	// NoShards keeps a sharded engine's workers but disables the sharded
	// runtime (partition, mailboxes, shard-local window phases) — the A/B
	// switch isolating what sharding itself buys.
	NoShards bool
	// NoStretch keeps the sharded runtime but disables Chandy-Misra window
	// stretching, restoring the barrier-per-window loop — the A/B switch
	// isolating what spending the WAN lookahead buys (compare
	// Result.Stats.Barriers / WindowsStretched).
	NoStretch bool
	// NoCrossStretch keeps window stretching for shard-local traffic but
	// refuses to form spans while any cross-capable flow is live (the PR 8
	// behavior). The A/B switch isolating what mid-span mailbox delivery
	// buys on cross-DC-heavy phases (compare Result.Stats.MailboxApplied
	// and the peak-hour WindowsStretched row in BENCH_lookahead.json).
	NoCrossStretch bool
	// NoFaults skips fault-controller attachment entirely, turning any
	// chaos scenario back into its healthy baseline — bit-identical to a
	// run that never declared faults.
	NoFaults bool
	// NoFluid ignores every workload's Fluid configuration, restoring the
	// all-discrete path. Like NoFaults it works by structural elision — no
	// flow wrapper, no crossover controller, no analytic probes — so a
	// NoFluid run is bit-identical to one that never configured the fluid
	// tier.
	NoFluid bool
}

// Workload declares one application workload at one data center, driven by
// an open Poisson arrival process (workload.AppWorkload). Curves are given
// in GMT; the compile step shifts them into the experiment's run window.
type Workload struct {
	App            string
	DC             string
	Users          workload.Curve // concurrent-user curve, GMT
	OpsPerUserHour float64
	// Ops is the operation mix. When the mix depends on the built
	// infrastructure (calibrated operations), leave it nil and set OpsFn.
	Ops []cascade.Op
	// OpsFn builds the mix against the built infrastructure. Workloads with
	// equal OpsKey share a single invocation per compile.
	OpsFn  func(inf *topology.Infrastructure, step float64) ([]cascade.Op, error)
	OpsKey string // defaults to App+"@"+DC
	// Weights biases the mix; nil selects a uniform mix.
	Weights []float64
	// APM overrides the experiment-level access matrix for this workload.
	APM workload.AccessMatrix
	// Gauges registers the "<app>:<dc>:active" gauge probe and an exact
	// "<app>:<dc>:loggedin" population probe with the collector.
	Gauges bool
	// ThinBelow passes through to workload.AppWorkload.
	ThinBelow float64
	// Fluid engages the analytic client-aggregation tier (internal/fluid)
	// when Above is positive; the high-rate mirror of ThinBelow. Set it
	// directly or through WithFluid / the document "fluid" field / the
	// sweep axis "workloads.<app>.<dc>.fluid".
	Fluid Fluid
	// Stream passes through to workload.AppWorkload.Stream: the RNG stream
	// identity, defaulting to a hash of App@DC. Two workloads sharing App
	// and DC must set distinct non-zero Streams, or their arrival draws
	// would be perfectly correlated; validation rejects that assembly.
	Stream uint64
}

// Daemons declares the background daemons (§6.4.3): one SYNCHREP and one
// INDEXBUILD daemon per master data center. Growth curves are given in
// GMT; the compile step shifts them into the run window.
type Daemons struct {
	Masters []string
	Growth  background.GrowthModel // MB/hour per data center, GMT
	// SyncIntervalSec / IndexGapSec default to the thesis values
	// (refdata.SynchRepIntervalMin / refdata.IndexBuildGapMin).
	SyncIntervalSec float64
	IndexGapSec     float64
	// IndexCyclesPerByte fixes the index server's per-byte cost. When zero,
	// IndexHeadroom > 0 derives it from the master's peak owned
	// data-generation rate (the Fig. 6-14 calibration); otherwise the
	// background default applies.
	IndexCyclesPerByte float64
	IndexHeadroom      float64
}

// Option mutates an experiment under assembly. Options are applied in
// order; an option error aborts New.
type Option func(*Experiment) error

// New assembles an experiment from options and validates it.
func New(name string, opts ...Option) (*Experiment, error) {
	if name == "" {
		return nil, fmt.Errorf("experiment: needs a non-empty name")
	}
	e := &Experiment{
		name:           name,
		step:           0.01,
		collectSeconds: 60,
		startHour:      0,
		endHour:        0,
	}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, fmt.Errorf("experiment %s: %w", name, err)
		}
	}
	if err := e.validate(); err != nil {
		return nil, fmt.Errorf("experiment %s: %w", name, err)
	}
	return e, nil
}

// WithInfra sets the infrastructure specification. The spec is deep-copied,
// so sweep mutators can never write through to a spec shared with other
// grid points.
func WithInfra(spec topology.InfraSpec) Option {
	return func(e *Experiment) error {
		cp, err := cloneSpec(spec)
		if err != nil {
			return err
		}
		e.infra = cp
		return nil
	}
}

// WithStep sets the time-loop granularity in seconds (default 10 ms).
func WithStep(step float64) Option {
	return func(e *Experiment) error {
		if step <= 0 {
			return fmt.Errorf("step must be positive, got %v", step)
		}
		e.step = step
		return nil
	}
}

// WithCollectEvery sets the collector snapshot interval in simulated
// seconds (default 60).
func WithCollectEvery(seconds float64) Option {
	return func(e *Experiment) error {
		if seconds <= 0 {
			return fmt.Errorf("collect interval must be positive, got %v", seconds)
		}
		e.collectSeconds = seconds
		return nil
	}
}

// WithSeed sets the base seed. Every derived stream (workload arrivals,
// cache decisions, sweep points) descends from it through core.DeriveSeed.
func WithSeed(seed uint64) Option {
	return func(e *Experiment) error { e.seed = seed; return nil }
}

// WithEngine sets an engine factory. The factory runs once per Compile, so
// every sweep point gets its own engine (worker pools must not be shared
// between concurrently running simulations). nil selects the sequential
// engine.
func WithEngine(mk func() core.Engine) Option {
	return func(e *Experiment) error { e.engine = mk; return nil }
}

// WithEngineInstance wires an already-constructed engine — the adapter for
// legacy config structs that carry a core.Engine value. The instance is
// handed to the first Compile; it must not be used for sweeps, whose points
// need one engine each (use WithEngine with a factory there).
func WithEngineInstance(eng core.Engine) Option {
	if eng == nil {
		return func(*Experiment) error { return nil }
	}
	return WithEngine(func() core.Engine { return eng })
}

// WithWindow sets the simulated window of the day in GMT hours: the run
// covers [startHour, endHour) and every workload and growth curve is
// shifted so the simulation clock starts at startHour.
func WithWindow(startHour, endHour int) Option {
	return func(e *Experiment) error {
		if startHour < 0 || endHour <= startHour || endHour > 24 {
			return fmt.Errorf("bad hour window [%d, %d)", startHour, endHour)
		}
		e.startHour, e.endHour = startHour, endHour
		return nil
	}
}

// WithDuration sets the run length in simulated seconds directly, for
// experiments that are not tied to a window of the day (the validation
// scenario's fixed-length runs). Mutually exclusive with WithWindow.
func WithDuration(seconds float64) Option {
	return func(e *Experiment) error {
		if seconds <= 0 {
			return fmt.Errorf("duration must be positive, got %v", seconds)
		}
		e.duration = seconds
		return nil
	}
}

// WithLoopFlags sets the time-loop A/B switches.
func WithLoopFlags(f LoopFlags) Option {
	return func(e *Experiment) error { e.flags = f; return nil }
}

// WithAccessMatrix sets the experiment-level Access Pattern Matrix used by
// workloads that do not carry their own.
func WithAccessMatrix(apm workload.AccessMatrix) Option {
	return func(e *Experiment) error {
		if err := apm.Validate(); err != nil {
			return err
		}
		e.apm = apm
		return nil
	}
}

// WithWorkload appends one application workload. Declaration order is
// attachment order, which the determinism contract makes significant: the
// workloads' RNG streams are independent (core.DeriveSeed), but sources
// are polled in registration order.
func WithWorkload(w Workload) Option {
	return func(e *Experiment) error { e.workloads = append(e.workloads, w); return nil }
}

// WithDaemons declares the background daemons.
func WithDaemons(d Daemons) Option {
	return func(e *Experiment) error {
		if e.daemons != nil {
			return fmt.Errorf("daemons declared twice")
		}
		e.daemons = &d
		return nil
	}
}

// WithFault schedules fault injections (see internal/faults): each runs
// inject at At seconds and recover Duration seconds later, with the
// stabilize -> inject -> recover phase series and recovery metrics
// harvested into Result.Faults. Faults are cloned at assembly so sweep
// points mutating magnitude or duration never share fault state. No-op
// injections (zero magnitude or duration) are elided at compile time,
// keeping such runs bit-identical to fault-free ones.
func WithFault(injections ...faults.Injection) Option {
	return func(e *Experiment) error {
		for _, inj := range injections {
			if inj.Fault != nil {
				inj.Fault = inj.Fault.Clone()
			}
			e.faults = append(e.faults, inj)
		}
		return nil
	}
}

// WithProbes registers extra collector probes once the simulation and
// topology exist. Infrastructure probes are always registered; this adds
// scenario-specific ones (gauge series, derived metrics).
func WithProbes(mk func(*Run) []metrics.Probe) Option {
	return func(e *Experiment) error { e.probes = append(e.probes, mk); return nil }
}

// WithSetup appends an arbitrary attachment hook running after workloads,
// daemons and probes are in place — the escape hatch for scenario wiring
// the declarative options do not cover (timed series launchers, custom
// sources). Hooks run in declaration order.
func WithSetup(fn func(*Run) error) Option {
	return func(e *Experiment) error { e.setup = append(e.setup, fn); return nil }
}

// Name returns the experiment's name.
func (e *Experiment) Name() string { return e.name }

// Seed returns the experiment's base seed.
func (e *Experiment) Seed() uint64 { return e.seed }

// Infra exposes the experiment's (owned) infrastructure specification for
// inspection.
func (e *Experiment) Infra() *topology.InfraSpec { return e.infra }

// DurationSeconds returns the simulated run length.
func (e *Experiment) DurationSeconds() float64 {
	if e.duration > 0 {
		return e.duration
	}
	return float64(e.endHour-e.startHour) * 3600
}

// StartHour returns the GMT hour the simulation clock starts at.
func (e *Experiment) StartHour() int { return e.startHour }

func (e *Experiment) validate() error {
	if e.infra == nil {
		return fmt.Errorf("needs an infrastructure (WithInfra)")
	}
	if err := e.duration0(); err != nil {
		return err
	}
	dcs := map[string]bool{}
	for _, dc := range e.infra.DCs {
		dcs[dc.Name] = true
	}
	type wlIdentity struct {
		app, dc string
		stream  uint64
	}
	seen := map[wlIdentity]bool{}
	fluidSeen := map[wlIdentity]bool{}
	for i, w := range e.workloads {
		if w.App == "" || w.DC == "" {
			return fmt.Errorf("workload %d needs app and dc names", i)
		}
		// Compare effective streams: Stream 0 derives from the App@DC hash,
		// so an explicit Stream equal to another workload's derived hash
		// collides just the same.
		id := wlIdentity{w.App, w.DC, workload.EffectiveStream(w.App, w.DC, w.Stream)}
		if seen[id] {
			return fmt.Errorf("duplicate workload %s@%s: set distinct Workload.Stream values so each gets an independent RNG stream", w.App, w.DC)
		}
		seen[id] = true
		if !dcs[w.DC] {
			return fmt.Errorf("workload %s references unknown DC %q", w.App, w.DC)
		}
		if w.OpsPerUserHour <= 0 {
			return fmt.Errorf("workload %s@%s needs a positive operation rate", w.App, w.DC)
		}
		if w.Ops == nil && w.OpsFn == nil {
			return fmt.Errorf("workload %s@%s needs an operation mix (Ops or OpsFn)", w.App, w.DC)
		}
		if w.APM == nil && e.apm == nil {
			return fmt.Errorf("workload %s@%s needs an access matrix (WithAccessMatrix or Workload.APM)", w.App, w.DC)
		}
		if w.Fluid.Above < 0 {
			return fmt.Errorf("workload %s@%s: fluid threshold Above must not be negative", w.App, w.DC)
		}
		if w.Fluid.RhoMax < 0 || w.Fluid.RhoMax >= 1 {
			return fmt.Errorf("workload %s@%s: fluid guard RhoMax %v outside [0, 1)", w.App, w.DC, w.Fluid.RhoMax)
		}
		if w.Fluid.Above > 0 {
			// The analytic probe keys are derived from App@DC alone, so two
			// fluid-configured workloads sharing that identity would collide
			// in the collector.
			fid := wlIdentity{app: w.App, dc: w.DC}
			if fluidSeen[fid] {
				return fmt.Errorf("two fluid-configured workloads %s@%s: only one per app@dc may engage the fluid tier", w.App, w.DC)
			}
			fluidSeen[fid] = true
		}
	}
	if e.daemons != nil {
		if len(e.daemons.Masters) == 0 {
			return fmt.Errorf("daemons need at least one master")
		}
		for _, m := range e.daemons.Masters {
			if !dcs[m] {
				return fmt.Errorf("daemon master %q is not a data center of the spec", m)
			}
		}
		if e.apm == nil {
			return fmt.Errorf("daemons need an access matrix (WithAccessMatrix)")
		}
	}
	return nil
}

func (e *Experiment) duration0() error {
	if e.duration > 0 && e.endHour > e.startHour {
		return fmt.Errorf("WithDuration and WithWindow are mutually exclusive")
	}
	if e.duration <= 0 && e.endHour <= e.startHour {
		return fmt.Errorf("needs a run window (WithWindow or WithDuration)")
	}
	return nil
}

// cloneSpec deep-copies an infrastructure spec through its JSON form — the
// spec is fully JSON-serializable (config.Document embeds it), and the
// round trip severs every shared slice, map and pointer.
func cloneSpec(spec topology.InfraSpec) (*topology.InfraSpec, error) {
	raw, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("cloning infrastructure spec: %w", err)
	}
	var cp topology.InfraSpec
	if err := json.Unmarshal(raw, &cp); err != nil {
		return nil, fmt.Errorf("cloning infrastructure spec: %w", err)
	}
	return &cp, nil
}

// Run is a compiled experiment: the built simulation and topology with
// everything attached, ready for time to advance. Execute runs the window
// and harvests the Result; callers needing mid-run control can drive
// Sim directly instead.
type Run struct {
	Experiment *Experiment
	Sim        *core.Simulation
	Inf        *topology.Infrastructure

	// Sync / Idx expose the attached background daemons by master DC.
	Sync map[string]*background.SyncDaemon
	Idx  map[string]*background.IndexDaemon
	// Growth is the window-shifted growth model driving the daemons.
	Growth background.GrowthModel
	// Faults is the attached fault controller; nil when the scenario has
	// no effective injections (or LoopFlags.NoFaults is set).
	Faults *faults.Controller

	executed bool
}

// Compile builds the runnable simulation: simulation core, topology,
// infrastructure probes, workloads (in declaration order), daemons, extra
// probes, setup hooks. The phases run in that fixed order — it is part of
// the determinism contract, since source registration order is poll order.
func (e *Experiment) Compile() (*Run, error) {
	var eng core.Engine
	if e.engine != nil {
		eng = e.engine()
	}
	sim := core.NewSimulation(core.Config{
		Step:           e.step,
		CollectEvery:   int(math.Round(e.collectSeconds / e.step)),
		Seed:           e.seed,
		Engine:         eng,
		NoFastForward:  e.flags.NoFastForward,
		NoCalendar:     e.flags.NoCalendar,
		NoBulkDense:    e.flags.NoBulkDense,
		NoThinning:     e.flags.NoThinning,
		NoShards:       e.flags.NoShards,
		NoStretch:      e.flags.NoStretch,
		NoCrossStretch: e.flags.NoCrossStretch,
		NoFaults:       e.flags.NoFaults,
	})
	inf, err := topology.Build(sim, *e.infra)
	if err != nil {
		sim.Shutdown()
		return nil, fmt.Errorf("experiment %s: %w", e.name, err)
	}
	inf.RegisterProbes(sim.Collector)
	// With the sharded runtime engaged, install the per-datacenter
	// partition over the freshly built topology; agents registered later
	// (sources are not agents, so in practice none) fall back to the
	// modulo default, which is equally correct.
	if n, ok := sim.Sharded(); ok {
		plan, err := inf.PartitionByDC(n)
		if err != nil {
			sim.Shutdown()
			return nil, fmt.Errorf("experiment %s: %w", e.name, err)
		}
		sim.SetShardAssignment(plan.Assign)
		// The DC-to-shard routing table is what lets the run loop stretch
		// windows: lane-confined flows and sources resolve their owning
		// shard through it (core.SetDCShards documents the contract).
		sim.SetDCShards(plan.DCShard)
		// The per-shard inbound lookahead turns cross-capable traffic from
		// a span blocker into a span bound: spans may run lookTicks past
		// now even while WAN transfers are in flight, with cross-shard
		// arrivals carried by due-stamped mailboxes (core.SetShardLookahead
		// documents the safety argument).
		sim.SetShardLookahead(plan.LookaheadSec)
	}

	r := &Run{
		Experiment: e,
		Sim:        sim,
		Inf:        inf,
		Sync:       map[string]*background.SyncDaemon{},
		Idx:        map[string]*background.IndexDaemon{},
	}
	if err := e.attachWorkloads(r); err != nil {
		sim.Shutdown()
		return nil, fmt.Errorf("experiment %s: %w", e.name, err)
	}
	if err := e.attachDaemons(r); err != nil {
		sim.Shutdown()
		return nil, fmt.Errorf("experiment %s: %w", e.name, err)
	}
	// Faults attach after the daemons so failover injections can validate
	// against the populated Sync map, and before the extra probes so
	// scenario probes may read the controller through the Run.
	ctrl, err := faults.Attach(faults.Target{Sim: sim, Infra: inf, Sync: r.Sync}, e.faults)
	if err != nil {
		sim.Shutdown()
		return nil, fmt.Errorf("experiment %s: %w", e.name, err)
	}
	r.Faults = ctrl
	for _, mk := range e.probes {
		for _, p := range mk(r) {
			sim.Collector.Register(p)
		}
	}
	for _, fn := range e.setup {
		if err := fn(r); err != nil {
			sim.Shutdown()
			return nil, fmt.Errorf("experiment %s: setup: %w", e.name, err)
		}
	}
	return r, nil
}

// attachWorkloads wires the declared workloads as AppWorkload sources, in
// declaration order, shifting population curves into the run window.
func (e *Experiment) attachWorkloads(r *Run) error {
	opsMemo := map[string][]cascade.Op{}
	for i := range e.workloads {
		w := &e.workloads[i]
		ops := w.Ops
		if ops == nil {
			key := w.OpsKey
			if key == "" {
				key = w.App + "@" + w.DC
			}
			var ok bool
			if ops, ok = opsMemo[key]; !ok {
				built, err := w.OpsFn(r.Inf, e.step)
				if err != nil {
					return fmt.Errorf("workload %s@%s: %w", w.App, w.DC, err)
				}
				opsMemo[key] = built
				ops = built
			}
		}
		// The mix length is only known once OpsFn has run, so the weights
		// check lives here rather than in validate(): a mismatch must be an
		// error, not the runtime panic AppWorkload reserves for wiring bugs.
		if w.Weights != nil && len(w.Weights) != len(ops) {
			return fmt.Errorf("workload %s@%s: %d weights for %d operations", w.App, w.DC, len(w.Weights), len(ops))
		}
		apm := w.APM
		if apm == nil {
			apm = e.apm
		}
		prefix := ""
		if w.Gauges {
			prefix = w.App + ":" + w.DC
		}
		src := &workload.AppWorkload{
			App:            w.App,
			DC:             w.DC,
			Users:          w.Users.Shift(e.startHour),
			OpsPerUserHour: w.OpsPerUserHour,
			Ops:            ops,
			Weights:        w.Weights,
			APM:            apm,
			Inf:            r.Inf,
			GaugePrefix:    prefix,
			ThinBelow:      w.ThinBelow,
			Stream:         w.Stream,
		}
		// Workloads whose access matrix confines them to their own data
		// center register lane-confined (eagerly initialized — no RNG
		// draws, so bit-identical to lazy init): the stretched-span
		// scheduler may then poll them inside their DC's shard lane
		// instead of barriering at each of their due ticks. Everything
		// else — cross-DC matrices in particular — stays a global source.
		// Fluid-configured workloads register through the fluid tier
		// instead, which wraps the same source in the precomputed mode
		// schedule; under NoFluid the wrapper is structurally elided, so
		// the run is bit-identical to one that never configured fluid.
		if w.Fluid.Above > 0 && !e.flags.NoFluid {
			if err := e.attachFluid(r, w, src, ops); err != nil {
				return err
			}
		} else if src.LaneSafe() {
			src.InitSource(r.Sim)
			r.Sim.AddLaneSource(src, src.DC)
		} else {
			r.Sim.AddSource(src)
		}
		if w.Gauges {
			r.Sim.Collector.Register(r.Sim.GaugeProbe(prefix + ":active"))
			// The loggedin series samples the population curve directly at
			// each snapshot instant: under thinning the workload is only
			// polled at arrival instants, so its loggedin gauge goes stale
			// between arrivals, while the curve is exact in every mode.
			users, sim := src.Users, r.Sim
			r.Sim.Collector.Register(metrics.Probe{
				Key:    prefix + ":loggedin",
				Sample: func(float64) float64 { return users.At(sim.Clock().NowSeconds()) },
			})
		}
	}
	return nil
}

// attachDaemons wires one SYNCHREP and one INDEXBUILD daemon per master, in
// the declared master order, with growth curves shifted into the run
// window. Index-build capacity follows the declared headroom over the
// master's peak owned generation rate — barely above the peak, so backlog
// accumulates through the busy hours and drains afterwards (the cumulative
// effect behind Fig. 6-14's ~63-minute peak).
func (e *Experiment) attachDaemons(r *Run) error {
	if e.daemons == nil {
		return nil
	}
	d := e.daemons
	r.Growth = background.GrowthModel{}
	for dc, c := range d.Growth {
		r.Growth[dc] = c.Shift(e.startHour)
	}
	interval := d.SyncIntervalSec
	if interval <= 0 {
		interval = refdata.SynchRepIntervalMin * 60
	}
	gap := d.IndexGapSec
	if gap <= 0 {
		gap = refdata.IndexBuildGapMin * 60
	}
	for _, master := range d.Masters {
		sync := &background.SyncDaemon{
			Inf:      r.Inf,
			Master:   master,
			APM:      e.apm,
			Growth:   r.Growth,
			Interval: interval,
		}
		idx := &background.IndexDaemon{
			Inf:           r.Inf,
			Master:        master,
			APM:           e.apm,
			Growth:        r.Growth,
			Gap:           gap,
			CyclesPerByte: e.indexCyclesPerByte(r.Growth, master),
		}
		r.Sync[master] = sync
		r.Idx[master] = idx
		r.Sim.AddSource(sync)
		// Keep the handle: the daemon parks its schedule while a build runs
		// and re-arms it through RearmSource from the completion callback.
		idx.Handle = r.Sim.AddSource(idx)
	}
	return nil
}

// indexCyclesPerByte resolves the index server's per-byte cycle cost: an
// explicit value wins; otherwise a positive headroom derives it from the
// master's peak owned generation rate, and the background default applies
// as the fallback.
func (e *Experiment) indexCyclesPerByte(growth background.GrowthModel, master string) float64 {
	d := e.daemons
	if d.IndexCyclesPerByte > 0 {
		return d.IndexCyclesPerByte
	}
	if d.IndexHeadroom <= 0 {
		return background.DefaultIndexCyclesPerByte
	}
	peakMBh := 0.0
	for h := 0; h < 24; h++ {
		t := float64(h)*3600 + 1800
		rate := 0.0
		// Sorted iteration: summing in map order would make the derived
		// cycle cost differ by ulps between runs.
		for _, dc := range growth.DCs() {
			rate += growth.RateMBh(dc, t) * e.apm[dc][master]
		}
		if rate > peakMBh {
			peakMBh = rate
		}
	}
	if peakMBh <= 0 {
		return background.DefaultIndexCyclesPerByte
	}
	throughputBps := peakMBh * d.IndexHeadroom * 1e6 / 3600
	return apps.ServerGHz * 1e9 / throughputBps
}

// Execute advances the simulation through the run window and harvests the
// Result. It may be called once per Run; the simulation is left running
// (not shut down), so callers owning longer lifecycles can keep driving or
// inspecting it — Experiment.Run is the one-shot convenience that also
// releases engine resources.
func (r *Run) Execute() (*Result, error) {
	if r.executed {
		return nil, fmt.Errorf("experiment %s: Execute called twice", r.Experiment.name)
	}
	r.executed = true
	r.Sim.RunFor(r.Experiment.DurationSeconds())
	return harvest(r), nil
}

// Run compiles and executes the experiment, then releases engine
// resources. The returned Result retains the (shut down) simulation for
// metric inspection.
func (e *Experiment) Run() (*Result, error) {
	r, err := e.Compile()
	if err != nil {
		return nil, err
	}
	res, err := r.Execute()
	if err != nil {
		return nil, err
	}
	r.Sim.Shutdown()
	return res, nil
}

// Result is the uniform harvest of one experiment run: run statistics,
// every collector series, and the response-time populations.
type Result struct {
	Name  string
	Seed  uint64
	Stats core.RunStats
	// Series holds every registered collector series by key.
	Series map[string]*metrics.Series
	// Responses tracks operation response times by type and location.
	Responses *metrics.Responses
	// Faults is the recovery report of a chaos run — applied transition
	// times, peak backlog, time-to-reroute, time-to-drain and the fault:
	// series (phase, backlog, backup arrivals). Nil for fault-free runs.
	// Fault series live here rather than in Series so Digest, which hashes
	// Series, compares a faulted run against its healthy baseline on the
	// simulation outcome alone.
	Faults *faults.Report
	// Sim is the finished simulation, for inspection beyond the uniform
	// harvest (gauges, daemon state through Run).
	Sim *core.Simulation
	// Run is the compiled experiment the result came from.
	Run *Run
}

func harvest(r *Run) *Result {
	res := &Result{
		Name:      r.Experiment.name,
		Seed:      r.Experiment.seed,
		Stats:     r.Sim.Stats(),
		Series:    map[string]*metrics.Series{},
		Responses: r.Sim.Responses,
		Sim:       r.Sim,
		Run:       r,
	}
	for _, key := range r.Sim.Collector.Keys() {
		// fault: series belong to the fault report, not the ordinary series
		// set: Digest hashes Series, and the recovery telemetry must not
		// make a faulted run incomparable with its healthy baseline.
		if strings.HasPrefix(key, "fault:") {
			continue
		}
		res.Series[key] = r.Sim.Collector.Series(key)
	}
	if r.Faults != nil {
		res.Faults = r.Faults.Finalize()
	}
	return res
}

// SeriesKeys returns the result's series keys in sorted order.
func (res *Result) SeriesKeys() []string {
	keys := make([]string, 0, len(res.Series))
	for k := range res.Series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
