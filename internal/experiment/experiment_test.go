package experiment

import (
	"strings"
	"testing"

	"repro/internal/cascade"
	"repro/internal/config"
	"repro/internal/hardware"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testSpec is a compact two-tier data center: enough for the PDM cascade
// (clients <-> app <-> db) while staying fast to simulate.
func testSpec() topology.InfraSpec {
	srv := func(cores int) topology.ServerSpec {
		return topology.ServerSpec{
			CPU:     hardware.CPUSpec{Sockets: 1, Cores: cores, GHz: 2.5},
			MemGB:   32,
			NICGbps: 10,
			RAID: &hardware.RAIDSpec{
				Disks: 2, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
				CtrlGbps: 4, HitRate: 0.05,
			},
		}
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	return topology.InfraSpec{
		DCs: []topology.DCSpec{{
			Name: "NA", SwitchGbps: 20,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 2, Server: srv(8), LocalLink: local},
				{Name: "db", Servers: 1, Server: srv(8), LocalLink: local},
			},
		}},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 32, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
}

// testOptions assembles a small PDM experiment running a few simulated
// minutes — the shared fixture of the experiment and sweep tests.
func testOptions(extra ...Option) []Option {
	opts := []Option{
		WithInfra(testSpec()),
		WithSeed(11),
		WithDuration(300),
		WithAccessMatrix(workload.SingleMaster([]string{"NA"}, "NA")),
		WithWorkload(Workload{
			App: "PDM", DC: "NA",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
			OpsFn:          mustOps("PDM", "NA"),
			OpsKey:         "PDM",
			Gauges:         true,
		}),
	}
	return append(opts, extra...)
}

func mustOps(name, dc string) func(*topology.Infrastructure, float64) ([]cascade.Op, error) {
	fn, err := OpsByName(name, dc)
	if err != nil {
		panic(err)
	}
	return fn
}

// TestExperimentRunEndToEnd drives the primary surface: assemble, run,
// harvest. The run must complete operations, register the infrastructure
// and workload probes, and report coherent run statistics.
func TestExperimentRunEndToEnd(t *testing.T) {
	e, err := New("smoke", testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CompletedOps == 0 {
		t.Error("no operations completed")
	}
	if res.Stats.Seconds != 300 {
		t.Errorf("simulated %v seconds, want 300", res.Stats.Seconds)
	}
	for _, key := range []string{"cpu:NA:app", "cpu:NA:db", "PDM:NA:active", "PDM:NA:loggedin"} {
		if res.Series[key] == nil {
			t.Errorf("series %q not harvested (have %v)", key, res.SeriesKeys())
		}
	}
	if got, want := res.Name, "smoke"; got != want {
		t.Errorf("result name %q, want %q", got, want)
	}
	if res.Responses == nil || len(res.Responses.Keys()) == 0 {
		t.Error("no response populations recorded")
	}
}

// TestExperimentDeterminism: two runs of the same experiment are
// bit-identical; a different seed diverges.
func TestExperimentDeterminism(t *testing.T) {
	digest := func(seed uint64) string {
		e, err := New("det", testOptions(WithSeed(seed))...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Digest()
	}
	a, b := digest(7), digest(7)
	if a != b {
		t.Errorf("same experiment produced different digests:\n%s\n%s", a, b)
	}
	if c := digest(8); c == a {
		t.Error("different seeds produced identical results")
	}
}

// TestExperimentRejectsBadAssembly pins the actionable-error contract of
// the option surface.
func TestExperimentRejectsBadAssembly(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"no name", nil, "non-empty name"},
		{"no infra", []Option{WithDuration(10)}, "WithInfra"},
		{"no window", []Option{WithInfra(testSpec())}, "run window"},
		{"window conflict", []Option{WithInfra(testSpec()), WithDuration(10), WithWindow(0, 24)}, "mutually exclusive"},
		{"bad window", []Option{WithInfra(testSpec()), WithWindow(9, 9)}, "bad hour window"},
		{"bad step", []Option{WithStep(0)}, "step must be positive"},
		{"workload unknown DC", []Option{
			WithInfra(testSpec()), WithDuration(10),
			WithWorkload(Workload{App: "PDM", DC: "MARS", OpsPerUserHour: 1, OpsFn: mustOps("PDM", "NA")}),
		}, "unknown DC"},
		{"workload no mix", []Option{
			WithInfra(testSpec()), WithDuration(10),
			WithWorkload(Workload{App: "PDM", DC: "NA", OpsPerUserHour: 1}),
		}, "operation mix"},
		{"workload no apm", []Option{
			WithInfra(testSpec()), WithDuration(10),
			WithWorkload(Workload{App: "PDM", DC: "NA", OpsPerUserHour: 1, OpsFn: mustOps("PDM", "NA")}),
		}, "access matrix"},
		{"daemon unknown master", []Option{
			WithInfra(testSpec()), WithDuration(10),
			WithAccessMatrix(workload.SingleMaster([]string{"NA"}, "NA")),
			WithDaemons(Daemons{Masters: []string{"MARS"}}),
		}, "not a data center"},
		{"duplicate workload identity", []Option{
			WithInfra(testSpec()), WithDuration(10),
			WithAccessMatrix(workload.SingleMaster([]string{"NA"}, "NA")),
			WithWorkload(Workload{App: "PDM", DC: "NA", OpsPerUserHour: 1, OpsFn: mustOps("PDM", "NA")}),
			WithWorkload(Workload{App: "PDM", DC: "NA", OpsPerUserHour: 2, OpsFn: mustOps("PDM", "NA")}),
		}, "distinct Workload.Stream"},
	}
	for _, tc := range cases {
		name := "bad"
		if tc.name == "no name" {
			name = ""
		}
		_, err := New(name, tc.opts...)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}

	// A weights list mismatching the resolved mix length is a compile
	// error, not the runtime panic AppWorkload reserves for wiring bugs —
	// the mix length is only known once OpsFn has run.
	badWeights, err := New("weights", testOptions()...)
	if err != nil {
		t.Fatal(err)
	}
	badWeights.workloads[0].Weights = []float64{1, 2}
	if _, err := badWeights.Compile(); err == nil || !strings.Contains(err.Error(), "weights") {
		t.Errorf("mismatched weights accepted: %v", err)
	}

	// An explicit Stream equal to the other workload's derived hash is the
	// same stream — validation compares effective streams, not raw fields.
	_, err = New("hash-collision", testOptions(WithWorkload(Workload{
		App: "PDM", DC: "NA", OpsPerUserHour: 5,
		Users:  workload.BusinessDay(10, 0, 24, 10),
		OpsFn:  mustOps("PDM", "NA"),
		Stream: workload.EffectiveStream("PDM", "NA", 0),
	}))...)
	if err == nil || !strings.Contains(err.Error(), "distinct Workload.Stream") {
		t.Errorf("explicit stream colliding with the derived hash accepted: %v", err)
	}

	// Two workloads sharing App and DC are fine once their streams differ.
	_, err = New("twins", testOptions(WithWorkload(Workload{
		App: "PDM", DC: "NA", OpsPerUserHour: 5,
		Users:  workload.BusinessDay(10, 0, 24, 10),
		OpsFn:  mustOps("PDM", "NA"),
		OpsKey: "PDM",
		Stream: 99,
	}))...)
	if err != nil {
		t.Errorf("distinct streams rejected: %v", err)
	}
}

// TestWithFluidValidation pins the fluid assembly errors: the option
// demands a declared workload and sane parameters, and compilation rejects
// two fluid-configured workloads sharing an app@dc identity (their analytic
// series keys would collide).
func TestWithFluidValidation(t *testing.T) {
	if _, err := New("undeclared", testOptions(
		WithFluid("CAD", "NA", Fluid{Above: 0.01}),
	)...); err == nil || !strings.Contains(err.Error(), "no workload CAD@NA") {
		t.Errorf("fluid on an undeclared workload: %v", err)
	}
	if _, err := New("zero", testOptions(
		WithFluid("PDM", "NA", Fluid{}),
	)...); err == nil || !strings.Contains(err.Error(), "positive") {
		t.Errorf("zero threshold: %v", err)
	}
	if _, err := New("guard", testOptions(
		WithFluid("PDM", "NA", Fluid{Above: 0.01, RhoMax: 1}),
	)...); err == nil || !strings.Contains(err.Error(), "RhoMax") {
		t.Errorf("unit guard: %v", err)
	}
	// Twin workloads (distinct streams) are legal — but engaging the fluid
	// tier on both collides on the app@dc-keyed analytic series.
	_, err := New("twins", testOptions(
		WithWorkload(Workload{
			App: "PDM", DC: "NA", OpsPerUserHour: 5,
			Users:  workload.BusinessDay(10, 0, 24, 10),
			OpsFn:  mustOps("PDM", "NA"),
			OpsKey: "PDM",
			Stream: 99,
		}),
		WithFluid("PDM", "NA", Fluid{Above: 0.01}),
	)...)
	if err == nil || !strings.Contains(err.Error(), "fluid") {
		t.Errorf("two fluid twins accepted: %v", err)
	}
}

// TestDocumentRoundTrip is the one-surface guarantee: a JSON scenario
// document compiles to the same Result as the equivalent Go-built
// experiment — byte for byte, via the result digest.
func TestDocumentRoundTrip(t *testing.T) {
	doc := &config.Document{
		Name: "doc-equiv",
		Seed: 23,
		Step: 0.01,
		Window: &config.WindowSpec{
			RunSeconds: 300,
		},
		Infrastructure: testSpec(),
		Workloads: []config.WorkloadSpec{{
			App: "PDM", DC: "NA",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
			ThinBelow:      0.9,
		}, {
			// A second, analytically aggregated population: 3.3e-3 expected
			// arrivals per tick clears the 1e-3 threshold, so this workload
			// runs fluid for the whole window — the document mapping of the
			// fluid block is pinned by the analytic series in the digest.
			App: "PDMF", DC: "NA", Ops: "PDM",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
			Fluid:          &config.FluidSpec{Above: 1e-3, RhoMax: 0.8},
		}},
	}

	// Serialize and re-load the document, so the test covers the JSON wire
	// format too, not just the in-memory struct.
	path := t.TempDir() + "/doc.json"
	if err := doc.Save(path); err != nil {
		t.Fatal(err)
	}
	fromDoc, err := LoadDocument(path)
	if err != nil {
		t.Fatal(err)
	}
	docRes, err := fromDoc.Run()
	if err != nil {
		t.Fatal(err)
	}

	// The Go-built equivalent: same infrastructure, same workload declared
	// through the option surface (the document defaults to a single-master
	// matrix per workload DC and gauge probes on).
	goExp, err := New("doc-equiv",
		WithInfra(testSpec()),
		WithSeed(23),
		WithStep(0.01),
		WithDuration(300),
		WithWorkload(Workload{
			App: "PDM", DC: "NA",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
			ThinBelow:      0.9,
			OpsFn:          mustOps("PDM", "NA"),
			OpsKey:         "PDM@NA",
			APM:            workload.SingleMaster([]string{"NA"}, "NA"),
			Gauges:         true,
		}),
		WithWorkload(Workload{
			App: "PDMF", DC: "NA",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
			Fluid:          Fluid{Above: 1e-3, RhoMax: 0.8},
			OpsFn:          mustOps("PDM", "NA"),
			OpsKey:         "PDM@NA",
			APM:            workload.SingleMaster([]string{"NA"}, "NA"),
			Gauges:         true,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	goRes, err := goExp.Run()
	if err != nil {
		t.Fatal(err)
	}

	if docRes.Digest() != goRes.Digest() {
		t.Errorf("document-compiled result diverged from the Go-built equivalent:\ndoc %s (%d ops)\ngo  %s (%d ops)",
			docRes.Digest(), docRes.Stats.CompletedOps, goRes.Digest(), goRes.Stats.CompletedOps)
	}
}

// TestDocumentRejectsShardSurplus pins the declarative-surface guard: a
// document asking for more shards than its topology has data centers is a
// configuration error, caught before compilation (the core runtime would
// tolerate the empty shards, but a user writing sharded:8 over one DC is
// asking for parallelism the partition cannot provide).
func TestDocumentRejectsShardSurplus(t *testing.T) {
	doc := &config.Document{
		Name:           "shard-surplus",
		Seed:           23,
		Step:           0.01,
		Engine:         "sharded:2",
		Window:         &config.WindowSpec{RunSeconds: 60},
		Infrastructure: testSpec(), // one DC
		Workloads: []config.WorkloadSpec{{
			App: "PDM", DC: "NA",
			Users:          workload.BusinessDay(40, 0, 24, 40),
			OpsPerUserHour: 30,
		}},
	}
	if _, err := FromDocument(doc); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Fatalf("FromDocument accepted 2 shards over 1 DC (err=%v)", err)
	}
	doc.Engine = "sharded:1"
	e, err := FromDocument(doc)
	if err != nil {
		t.Fatalf("sharded:1 over 1 DC rejected: %v", err)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestParseEngine pins the engine-selector grammar.
func TestParseEngine(t *testing.T) {
	for _, ok := range []string{"", "sequential", "scattergather:4", "scatter-gather:2", "hdispatch:2", "hdispatch:2:64", "h-dispatch:8", "sharded:1", "sharded:8"} {
		if _, err := ParseEngine(ok); err != nil {
			t.Errorf("ParseEngine(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"warp", "scattergather", "scattergather:0", "hdispatch:x", "hdispatch:2:0", "sequential:3", "sharded", "sharded:0", "sharded:x"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Errorf("ParseEngine(%q) accepted", bad)
		}
	}
	mk, err := ParseEngine("scattergather:2")
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := mk(), mk()
	if e1 == e2 {
		t.Error("engine factory returned a shared instance")
	}
	e1.Shutdown()
	e2.Shutdown()
}

// TestShardedCount pins the selector probe the document validator uses to
// compare shard counts against the DC population.
func TestShardedCount(t *testing.T) {
	cases := map[string]int{
		"sharded:4":        4,
		"sharded:1":        1,
		"sharded:0":        0,
		"sharded:x":        0,
		"sharded":          0,
		"":                 0,
		"sequential":       0,
		"scattergather:4":  0,
		"hdispatch:2:64":   0,
		"sharded:4:extras": 0,
	}
	for sel, want := range cases {
		if got := ShardedCount(sel); got != want {
			t.Errorf("ShardedCount(%q) = %d, want %d", sel, got, want)
		}
	}
}
