package experiment

import (
	"fmt"
	"sort"

	"repro/internal/cascade"
	"repro/internal/fluid"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Fluid configures the analytic client-aggregation tier for one workload
// (see internal/fluid): segments whose expected arrivals per tick reach
// Above are carried as a deterministic fluid flow through the M/M/c
// machinery instead of discrete sampling, falling back to discrete
// whenever the bottleneck's ceiling utilization reaches the RhoMax guard
// or a fault window is active.
type Fluid struct {
	// Above is the expected-arrivals-per-tick threshold engaging the fluid
	// tier — the high-rate mirror of Workload.ThinBelow. Zero disables.
	Above float64
	// RhoMax is the saturation guard in (0, 1); zero selects
	// fluid.DefaultRhoMax.
	RhoMax float64
}

// WithFluid engages the fluid tier on every already-declared workload
// matching app@dc. Declare the workload first; configuring an undeclared
// workload is an assembly error.
func WithFluid(app, dc string, f Fluid) Option {
	return func(e *Experiment) error {
		if f.Above <= 0 {
			return fmt.Errorf("fluid %s@%s: threshold Above must be positive, got %v", app, dc, f.Above)
		}
		if f.RhoMax < 0 || f.RhoMax >= 1 {
			return fmt.Errorf("fluid %s@%s: saturation guard RhoMax %v outside [0, 1)", app, dc, f.RhoMax)
		}
		found := false
		for i := range e.workloads {
			if e.workloads[i].App == app && e.workloads[i].DC == dc {
				e.workloads[i].Fluid = f
				found = true
			}
		}
		if !found {
			return fmt.Errorf("fluid: no workload %s@%s declared (declare it before WithFluid)", app, dc)
		}
		return nil
	}
}

// fluidWindows collects the effective fault windows — the intervals the
// fluid tier must simulate discretely so tail behavior under stress stays
// honest. The effectiveness predicate matches the fault controller's
// compile-time elision exactly: no-op injections and NoFaults runs force
// no fallback, keeping such runs bit-identical to their fault-free twins.
func (e *Experiment) fluidWindows() []fluid.Window {
	if e.flags.NoFaults {
		return nil
	}
	var wins []fluid.Window
	for _, inj := range e.faults {
		if inj.Duration <= 0 || inj.Fault == nil || inj.Fault.NoOp() {
			continue
		}
		wins = append(wins, fluid.Window{Start: inj.At, End: inj.At + inj.Duration})
	}
	return wins
}

// dominantOwner resolves the master data center the fluid station is
// derived against: the access-matrix owner holding the most mass for the
// workload's DC, ties broken lexicographically for determinism.
func dominantOwner(apm workload.AccessMatrix, dc string) (string, error) {
	row, ok := apm[dc]
	if !ok {
		return "", fmt.Errorf("access matrix has no row for %s", dc)
	}
	owners := make([]string, 0, len(row))
	for o := range row {
		owners = append(owners, o)
	}
	sort.Strings(owners)
	best, bestP := "", 0.0
	for _, o := range owners {
		if p := row[o]; p > bestP {
			best, bestP = o, p
		}
	}
	if best == "" {
		return "", fmt.Errorf("access matrix row for %s holds no mass", dc)
	}
	return best, nil
}

// attachFluid wires one fluid-configured workload: derives the station,
// precomputes the segment schedule, registers the crossover controller
// (global — reservations must apply at barriers) ahead of the flow wrapper
// (lane-confined when the inner workload is), and installs the analytic
// series probes.
func (e *Experiment) attachFluid(r *Run, w *Workload, src *workload.AppWorkload, ops []cascade.Op) error {
	apm := w.APM
	if apm == nil {
		apm = e.apm
	}
	masterName, err := dominantOwner(apm, w.DC)
	if err != nil {
		return fmt.Errorf("fluid %s@%s: %w", w.App, w.DC, err)
	}
	local, master := r.Inf.DC(w.DC), r.Inf.DC(masterName)
	st, err := fluid.DeriveStation(r.Inf, local, master, ops, w.Weights, e.step)
	if err != nil {
		return fmt.Errorf("workload %s@%s: %w", w.App, w.DC, err)
	}
	segs, err := fluid.BuildSegments(src.Users, w.OpsPerUserHour, e.step, e.DurationSeconds(),
		fluid.Config{Above: w.Fluid.Above, RhoMax: w.Fluid.RhoMax}, st, e.fluidWindows())
	if err != nil {
		return fmt.Errorf("workload %s@%s: %w", w.App, w.DC, err)
	}
	tiers := make([]*topology.Tier, len(st.Tiers))
	for i, tl := range st.Tiers {
		tiers[i] = r.Inf.DC(tl.DC).Tier(tl.Tier)
	}
	// Controller first: at a shared boundary tick it must release or apply
	// reservations before the flow's first discrete poll of the segment.
	r.Sim.AddSource(&fluid.Controller{Segments: segs, Tiers: tiers})
	flow := &fluid.Flow{Inner: src, Segments: segs}
	if src.LaneSafe() {
		flow.InitSource(r.Sim)
		r.Sim.AddLaneSource(flow, src.DC)
	} else {
		r.Sim.AddSource(flow)
	}
	e.registerFluidProbes(r, w, segs)
	return nil
}

// registerFluidProbes installs the analytic result series. Every sample is
// a pure lookup into the precomputed segments at the snapshot instant, so
// the series — and therefore the digest — are identical across engines and
// shard counts by construction.
func (e *Experiment) registerFluidProbes(r *Run, w *Workload, segs []fluid.Segment) {
	prefix := "fluid:" + w.App + ":" + w.DC
	sim := r.Sim
	now := func() float64 { return sim.Clock().NowSeconds() }
	seg := func() *fluid.Segment { return fluid.At(segs, now()) }
	for _, p := range []metrics.Probe{
		{Key: prefix + ":mode", Sample: func(float64) float64 {
			if seg().Fluid {
				return 1
			}
			return 0
		}},
		{Key: prefix + ":occupancy", Sample: func(float64) float64 { return seg().Occupancy }},
		{Key: prefix + ":resp_mean", Sample: func(float64) float64 { return seg().RespMean }},
		{Key: prefix + ":resp_p90", Sample: func(float64) float64 { return seg().RespP90 }},
		{Key: prefix + ":throughput", Sample: func(float64) float64 { return seg().Lambda }},
		{Key: prefix + ":ops", Sample: func(float64) float64 { return fluid.OpsAt(segs, now()) }},
		{Key: prefix + ":crossovers", Sample: func(float64) float64 { return float64(seg().CrossBefore) }},
	} {
		sim.Collector.Register(p)
	}
}
