package experiment

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/apps"
	"repro/internal/background"
	"repro/internal/cascade"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dispatch"
	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/workload"
)

// FromDocument compiles a JSON scenario document into an experiment — the
// one-surface guarantee of the experiment API: a document and a Go-built
// experiment with the same content produce the same Result, because both
// reduce to the same Experiment value before anything is simulated.
func FromDocument(d *config.Document) (*Experiment, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	opts := []Option{
		WithInfra(d.Infrastructure),
		WithSeed(d.Seed),
	}
	if d.Step > 0 {
		opts = append(opts, WithStep(d.Step))
	}
	if d.Engine != "" {
		engine := d.Engine
		// "sharded:auto" resolves against the document's own topology:
		// min(GOMAXPROCS, DC count) — as many workers as the machine offers,
		// never more than the per-DC partition can fill.
		if engine == "sharded:auto" {
			engine = fmt.Sprintf("sharded:%d", AutoShards(len(d.Infrastructure.DCs)))
		}
		mk, err := ParseEngine(engine)
		if err != nil {
			return nil, fmt.Errorf("experiment: document %s: %w", d.Name, err)
		}
		// Shard counts above the DC count would leave shards empty — the
		// per-DC partition has nothing to put on them — so the declarative
		// surface rejects the request instead of silently wasting workers
		// (engine "sharded:auto" picks a valid count automatically).
		if n := ShardedCount(engine); n > len(d.Infrastructure.DCs) {
			return nil, fmt.Errorf("experiment: document %s: engine %q wants %d shards but the topology has %d data centers (use \"sharded:auto\" to pick min(GOMAXPROCS, DCs))",
				d.Name, d.Engine, n, len(d.Infrastructure.DCs))
		}
		opts = append(opts, WithEngine(mk))
	}
	switch w := d.Window; {
	case w == nil:
		opts = append(opts, WithWindow(0, 24))
	case w.RunSeconds > 0:
		opts = append(opts, WithDuration(w.RunSeconds))
	default:
		opts = append(opts, WithWindow(w.StartHour, w.EndHour))
	}
	if d.AccessMatrix != nil {
		opts = append(opts, WithAccessMatrix(d.AccessMatrix))
	}
	dcNames := make([]string, 0, len(d.Infrastructure.DCs))
	for _, dc := range d.Infrastructure.DCs {
		dcNames = append(dcNames, dc.Name)
	}
	for _, w := range d.Workloads {
		ew := Workload{
			App:            w.App,
			DC:             w.DC,
			Users:          w.Users,
			OpsPerUserHour: w.OpsPerUserHour,
			Weights:        w.Weights,
			Stream:         w.Stream,
			ThinBelow:      w.ThinBelow,
			Gauges:         true,
		}
		if w.Fluid != nil {
			ew.Fluid = Fluid{Above: w.Fluid.Above, RhoMax: w.Fluid.RhoMax}
		}
		name := w.Ops
		if name == "" {
			name = w.App
		}
		fn, err := OpsByName(name, w.DC)
		if err != nil {
			return nil, fmt.Errorf("experiment: document %s: workload %s@%s: %w", d.Name, w.App, w.DC, err)
		}
		ew.OpsFn = fn
		ew.OpsKey = name + "@" + w.DC
		if d.AccessMatrix == nil {
			// Without a document-level access matrix every workload
			// manipulates files owned by its own data center.
			ew.APM = workload.SingleMaster(dcNames, w.DC)
		}
		opts = append(opts, WithWorkload(ew))
	}
	if dm := d.Daemons; dm != nil {
		growth := background.GrowthModel{}
		for dc, c := range dm.GrowthMBh {
			growth[dc] = c
		}
		opts = append(opts, WithDaemons(Daemons{
			Masters:         dm.Masters,
			Growth:          growth,
			SyncIntervalSec: dm.SyncIntervalMin * 60,
			IndexGapSec:     dm.IndexGapMin * 60,
			IndexHeadroom:   dm.IndexHeadroom,
		}))
	}
	if len(d.Faults) > 0 {
		inj := make([]faults.Injection, 0, len(d.Faults))
		for _, fs := range d.Faults {
			fault, err := compileFault(fs)
			if err != nil {
				return nil, fmt.Errorf("experiment: document %s: %w", d.Name, err)
			}
			inj = append(inj, faults.Injection{
				Name: fs.Name, Fault: fault, At: fs.At, Duration: fs.Duration,
			})
		}
		opts = append(opts, WithFault(inj...))
	}
	return New(d.Name, opts...)
}

// compileFault maps a document fault spec onto the fault library. The
// fault's own Validate runs later, at compile time against the built
// target — this only selects the kind.
func compileFault(fs config.FaultSpec) (faults.Fault, error) {
	switch fs.Kind {
	case "wan":
		return &faults.WAN{From: fs.From, To: fs.To, Mag: fs.Magnitude}, nil
	case "dc":
		return &faults.DC{DC: fs.DC, Mag: fs.Magnitude}, nil
	case "storage":
		return &faults.Storage{DC: fs.DC, Tier: fs.Tier, Mag: fs.Magnitude, RebuildMBps: fs.RebuildMBps}, nil
	case "failover":
		return &faults.Failover{From: fs.From, To: fs.To}, nil
	}
	return nil, fmt.Errorf("fault %s: unknown kind %q", fs.Name, fs.Kind)
}

// LoadDocument reads a scenario document from a JSON file and compiles it.
func LoadDocument(path string) (*Experiment, error) {
	d, err := config.Load(path)
	if err != nil {
		return nil, err
	}
	return FromDocument(d)
}

// OpsByName resolves a named operation set to an OpsFn. The calibrated CAD
// set is built against the workload's own data center (local = master for
// calibration purposes — the APM still decides per-launch ownership); VIS
// and PDM are infrastructure-independent.
func OpsByName(name, dc string) (func(*topology.Infrastructure, float64) ([]cascade.Op, error), error) {
	switch name {
	case "CAD":
		return func(inf *topology.Infrastructure, step float64) ([]cascade.Op, error) {
			home := inf.DC(dc)
			return apps.CalibratedCADOps(inf, home, home, step)
		}, nil
	case "VIS":
		return func(*topology.Infrastructure, float64) ([]cascade.Op, error) {
			return apps.VISOps(), nil
		}, nil
	case "PDM":
		return func(*topology.Infrastructure, float64) ([]cascade.Op, error) {
			return apps.PDMOps(), nil
		}, nil
	}
	return nil, fmt.Errorf("unknown operation set %q (have CAD, VIS, PDM)", name)
}

// ParseEngine parses an engine selector string: "" or "sequential" for the
// reference engine, "scattergather:<threads>" for classic Scatter-Gather,
// "hdispatch:<threads>" or "hdispatch:<threads>:<setSize>" for H-Dispatch,
// "sharded:<shards>" for the conservative-PDES sharded engine.
// The returned factory builds a fresh engine per call, as sweeps require.
func ParseEngine(s string) (func() core.Engine, error) {
	kind, rest, _ := strings.Cut(s, ":")
	switch kind {
	case "sharded":
		if rest == "auto" {
			// Without a topology in hand, "auto" can only see the machine;
			// surfaces that know the DC count (FromDocument, the gdisim CLI)
			// resolve min(GOMAXPROCS, DCs) before getting here.
			n := runtime.GOMAXPROCS(0)
			return func() core.Engine { return dispatch.NewSharded(n) }, nil
		}
		shards, err := strconv.Atoi(rest)
		if err != nil || shards < 1 {
			return nil, fmt.Errorf("engine %q: want sharded:<shards> or sharded:auto", s)
		}
		return func() core.Engine { return dispatch.NewSharded(shards) }, nil
	case "", "sequential":
		if rest != "" {
			return nil, fmt.Errorf("engine %q: sequential takes no parameters", s)
		}
		return nil, nil
	case "scattergather", "scatter-gather":
		threads, err := strconv.Atoi(rest)
		if err != nil || threads < 1 {
			return nil, fmt.Errorf("engine %q: want scattergather:<threads>", s)
		}
		return func() core.Engine { return dispatch.NewScatterGather(threads) }, nil
	case "hdispatch", "h-dispatch":
		tPart, setPart, hasSet := strings.Cut(rest, ":")
		threads, err := strconv.Atoi(tPart)
		if err != nil || threads < 1 {
			return nil, fmt.Errorf("engine %q: want hdispatch:<threads>[:<setSize>]", s)
		}
		setSize := 0
		if hasSet {
			if setSize, err = strconv.Atoi(setPart); err != nil || setSize < 1 {
				return nil, fmt.Errorf("engine %q: want hdispatch:<threads>[:<setSize>]", s)
			}
		}
		return func() core.Engine { return dispatch.NewHDispatch(threads, setSize) }, nil
	}
	return nil, fmt.Errorf("unknown engine %q (have sequential, scattergather:<n>, hdispatch:<n>[:<set>], sharded:<n>, sharded:auto)", s)
}

// AutoShards resolves the "sharded:auto" shard count against a topology:
// min(GOMAXPROCS, DC count), floored at 1 — as many shard workers as the
// machine can run concurrently, never more than the per-DC partition can
// populate.
func AutoShards(dcs int) int {
	n := runtime.GOMAXPROCS(0)
	if dcs < n {
		n = dcs
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ShardedCount returns the shard count of a "sharded:<n>" engine selector,
// and 0 for every other (or malformed) selector — the hook declarative
// surfaces use to validate shard counts against the topology before
// compiling.
func ShardedCount(s string) int {
	kind, rest, _ := strings.Cut(s, ":")
	if kind != "sharded" {
		return 0
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 1 {
		return 0
	}
	return n
}
