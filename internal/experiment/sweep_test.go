package experiment

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// testSweepBase is the 8-point grid base shared by the determinism tests:
// 4 core counts x 2 operation rates over the small PDM experiment.
func testSweepBase() func() (*Experiment, error) {
	return func() (*Experiment, error) { return New("grid", testOptions()...) }
}

func eightPointSweep() *Sweep {
	return NewSweep("grid", testSweepBase()).
		Vary("dcs.NA.app.cores", 2, 4, 8, 16).
		Vary("workloads.PDM.NA.ops", 20, 40)
}

// TestSweepDeterminismAcrossWorkers is the headline safety property of the
// sweep runner: every grid point runs as an independent simulation under a
// seed derived only from (base seed, point index), so the per-point result
// digests are bit-identical whether the pool has one worker or eight —
// whatever order the workers drain the grid in. Run under -race in CI, it
// also proves points share no mutable state.
func TestSweepDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *SweepResult {
		res, err := eightPointSweep().Run(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Points) != 8 {
			t.Fatalf("workers=%d: %d points, want 8", workers, len(res.Points))
		}
		return res
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial.Points {
		s, p := serial.Points[i], parallel.Points[i]
		if s.Seed != p.Seed {
			t.Errorf("point %d: seed %d (workers=1) vs %d (workers=8)", i, s.Seed, p.Seed)
		}
		if want := core.DeriveSeed(11, uint64(i)); s.Seed != want {
			t.Errorf("point %d: seed %d, want DeriveSeed(11, %d) = %d", i, s.Seed, i, want)
		}
		sd, pd := s.Res.Digest(), p.Res.Digest()
		if sd != pd {
			t.Errorf("point %d (%v): digest diverged across worker counts:\n%s\n%s",
				i, s.Values, sd, pd)
		}
		if s.Res.Stats.CompletedOps == 0 {
			t.Errorf("point %d completed no operations", i)
		}
		if s.Res.Sim != nil || s.Res.Run != nil {
			t.Errorf("point %d retains its simulation: sweep results must drop Sim/Run", i)
		}
	}
	// The grid must actually vary: distinct points, distinct outcomes.
	if serial.Points[0].Res.Digest() == serial.Points[7].Res.Digest() {
		t.Error("corner points of the grid produced identical results")
	}
}

// TestSweepRejectsInvalidGrids pins the actionable-error contract: unknown
// axis paths, unknown topology references and empty value lists fail
// before any simulation runs, naming the offending axis.
func TestSweepRejectsInvalidGrids(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *Sweep
		want string
	}{
		{"no axes", func() *Sweep {
			return NewSweep("s", testSweepBase())
		}, "at least one axis"},
		{"empty values", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("dcs.NA.app.cores")
		}, "has no values"},
		{"bad late value", func() *Sweep {
			// Every value is dry-applied: an out-of-range value after valid
			// ones must fail validation, not burn the grid first.
			return NewSweep("s", testSweepBase()).Vary("dcs.NA.app.cores", 8, 16, 0)
		}, "cores must be at least 1"},
		{"unknown root", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("warp.factor", 9)
		}, `unknown root "warp"`},
		{"unknown DC", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("dcs.MARS.app.cores", 8)
		}, `unknown DC "MARS"`},
		{"unknown tier", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("dcs.NA.gpu.cores", 8)
		}, `no tier "gpu"`},
		{"unknown tier field", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("dcs.NA.app.flux", 8)
		}, `unknown tier field "flux"`},
		{"unknown workload", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("workloads.CAD.NA.ops", 8)
		}, "no workload CAD@NA"},
		{"no wan", func() *Sweep {
			return NewSweep("s", testSweepBase()).Vary("wan.NA-EU.mbps", 155)
		}, `no WAN connection between "NA" and "EU"`},
		{"nil variant", func() *Sweep {
			return NewSweep("s", testSweepBase()).VaryFunc("mut", Variant{Label: "x"})
		}, "no Apply function"},
		{"bad base", func() *Sweep {
			return NewSweep("s", func() (*Experiment, error) { return New("broken") }).Vary("step", 0.01)
		}, "base experiment"},
	}
	for _, tc := range cases {
		s := tc.mk()
		err := s.Validate()
		if err == nil {
			t.Errorf("%s: validated", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, rerr := s.Run(1); rerr == nil {
			t.Errorf("%s: Run accepted an invalid grid", tc.name)
		}
	}
}

// TestSweepRelativePeakAxis pins that validation dry-applies each value
// against a fresh probe: "peak" rescales the current curve, so cumulative
// dry-application would zero the probe's curve at peak=0 and falsely
// reject the later (individually valid) values.
func TestSweepRelativePeakAxis(t *testing.T) {
	s := NewSweep("peaks", testSweepBase()).Vary("workloads.PDM.NA.peak", 0, 40)
	if err := s.Validate(); err != nil {
		t.Fatalf("grid of individually valid peak values rejected: %v", err)
	}
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	// peak=0 is a legitimate zero-user point; peak=40 must complete work.
	if ops := res.Points[0].Res.Stats.CompletedOps; ops != 0 {
		t.Errorf("zero-peak point completed %d operations", ops)
	}
	if res.Points[1].Res.Stats.CompletedOps == 0 {
		t.Error("rescaled point completed nothing")
	}
}

// TestSweepFluidAxis pins the fluid-threshold axis as a one-axis A/B: at 0
// the tier is disabled (discrete sampling, no analytic series), at a
// threshold under the offered per-tick rate the whole flat-curve window is
// aggregated analytically — zero discrete launches, analytic series in the
// result.
func TestSweepFluidAxis(t *testing.T) {
	s := NewSweep("fluid", testSweepBase()).Vary("workloads.PDM.NA.fluid", 0, 1e-3)
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	discrete, fluid := res.Points[0].Res, res.Points[1].Res
	if discrete.Stats.CompletedOps == 0 {
		t.Error("disabled point completed nothing")
	}
	if discrete.Series["fluid:PDM:NA:mode"] != nil {
		t.Error("disabled point grew analytic series")
	}
	if fluid.Stats.CompletedOps != 0 {
		t.Errorf("fluid point launched %d discrete operations, want 0 (flat curve, whole window analytic)",
			fluid.Stats.CompletedOps)
	}
	s2 := fluid.Series["fluid:PDM:NA:ops"]
	if s2 == nil || s2.V[len(s2.V)-1] <= 0 {
		t.Error("fluid point recorded no analytic volume")
	}

	if err := NewSweep("bad", testSweepBase()).Vary("workloads.PDM.NA.fluid", -1).Validate(); err == nil ||
		!strings.Contains(err.Error(), "non-negative") {
		t.Errorf("negative threshold accepted: %v", err)
	}
}

// TestSweepVaryFunc covers mutator axes: arbitrary experiment edits run
// per point, composing with value axes in grid order.
func TestSweepVaryFunc(t *testing.T) {
	s := NewSweep("mut", testSweepBase()).
		VaryFunc("clients",
			Variant{Label: "slots=16", Apply: func(e *Experiment) error {
				c := e.infra.Clients["NA"]
				c.Slots = 16
				e.infra.Clients["NA"] = c
				return nil
			}},
			Variant{Label: "slots=64", Apply: func(e *Experiment) error {
				c := e.infra.Clients["NA"]
				c.Slots = 64
				e.infra.Clients["NA"] = c
				return nil
			}},
		)
	res, err := s.Run(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points, want 2", len(res.Points))
	}
	if res.Points[0].Values[0].Label != "slots=16" || res.Points[1].Values[0].Label != "slots=64" {
		t.Errorf("variant labels out of order: %+v", res.Points)
	}
	// More client slots must register more client agents.
	if a, b := res.Points[0].Res.Stats.Agents, res.Points[1].Res.Stats.Agents; a >= b {
		t.Errorf("agent counts %d vs %d: slots axis had no effect", a, b)
	}
}

// TestSweepCSV pins the export shape: header, one row per point in index
// order, axis labels and metric columns filled.
func TestSweepCSV(t *testing.T) {
	res, err := NewSweep("csv", testSweepBase()).
		Vary("dcs.NA.app.cores", 2, 4).
		Run(2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if got, want := lines[0], "point,seed,dcs.NA.app.cores,completed_ops,sim_seconds,jumps,skipped_ticks,error"; got != want {
		t.Errorf("header %q, want %q", got, want)
	}
	for i, line := range lines[1:] {
		fields := strings.Split(line, ",")
		if fields[0] != []string{"0", "1"}[i] {
			t.Errorf("row %d: point column %q", i, fields[0])
		}
		if fields[2] != []string{"2", "4"}[i] {
			t.Errorf("row %d: axis column %q", i, fields[2])
		}
		if fields[3] == "" || fields[3] == "0" {
			t.Errorf("row %d: empty completed_ops", i)
		}
	}
}

// TestSweepSizeAndOrder checks grid expansion: row-major point order with
// the first axis varying slowest.
func TestSweepSizeAndOrder(t *testing.T) {
	s := NewSweep("order", testSweepBase()).
		Vary("dcs.NA.app.cores", 2, 4).
		Vary("workloads.PDM.NA.ops", 10, 20, 30)
	if got := s.Size(); got != 6 {
		t.Fatalf("size %d, want 6", got)
	}
	res, err := s.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, p := range res.Points {
		got = append(got, p.Values[0].Label+"/"+p.Values[1].Label)
	}
	want := []string{"2/10", "2/20", "2/30", "4/10", "4/20", "4/30"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point order %v, want %v", got, want)
		}
	}
}
