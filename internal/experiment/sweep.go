package experiment

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topology"
)

// Sweep expands a parameter grid over a base experiment into independent
// simulations and runs them concurrently. Each grid point re-assembles a
// fresh Experiment from the base factory — points never share a Simulation,
// an engine, or any mutable state — and runs under a deterministically
// derived seed (core.DeriveSeed of the base seed and the point index), so
// per-point results are bit-identical regardless of worker count and
// completion order.
//
// Per-point seeds make points statistically independent replications; the
// flip side is that cross-point differences mix the swept parameter with
// arrival noise. For common-random-number comparisons — the same arrival
// history replayed against every variant — add a single-valued "seed" axis
// (Vary("seed", s)), which overrides the per-index derivation for every
// point; add more values to the axis for replicated CRN comparisons.
type Sweep struct {
	name string
	base func() (*Experiment, error)
	axes []axis
}

// axis is one grid dimension: either a value axis (a settable parameter
// path plus values) or a mutator axis (named arbitrary experiment edits).
type axis struct {
	path     string
	values   []float64
	variants []Variant
}

func (a axis) name() string { return a.path }

func (a axis) size() int {
	if len(a.variants) > 0 {
		return len(a.variants)
	}
	return len(a.values)
}

// Variant is one point of a mutator axis: a label for reporting plus an
// arbitrary experiment edit.
type Variant struct {
	Label string
	Apply func(*Experiment) error
}

// NewSweep creates a sweep over experiments assembled by base. The factory
// runs once per grid point (plus once for validation), so everything it
// builds is per-point private; expensive shared inputs should be built
// outside and captured read-only.
func NewSweep(name string, base func() (*Experiment, error)) *Sweep {
	return &Sweep{name: name, base: base}
}

// Vary adds a value axis: the parameter at path takes each value in turn.
// Paths address the experiment's declarative surface:
//
//	seed                          base seed (overrides per-point derivation)
//	step                          time-loop granularity, seconds
//	dcs.<dc>.<tier>.cores         per-server core count of a tier
//	dcs.<dc>.<tier>.servers       server count of a tier
//	dcs.<dc>.clients.slots        client population slots of a DC
//	wan.<a>-<b>.mbps              WAN bandwidth between two DCs, Mbps
//	workloads.<app>.<dc>.ops      operations per user-hour
//	workloads.<app>.<dc>.peak     population curve rescaled to this peak
//	workloads.<app>.<dc>.fluid    fluid-tier threshold (arrivals/tick); 0 disables
//	faults.<name>.magnitude       severity of a declared fault injection
//	faults.<name>.duration        injected window of a declared injection, seconds
//
// Fault axes address injections declared by WithFault on the base
// experiment, by injection name. A magnitude of 0 (or a duration of 0)
// turns that grid point into the fault-free baseline — the injection is
// elided at compile time, so the point is bit-identical to a run that
// never declared the fault.
//
// Unknown paths and empty value lists are rejected by Run with an error
// naming the offending axis.
func (s *Sweep) Vary(path string, values ...float64) *Sweep {
	s.axes = append(s.axes, axis{path: path, values: values})
	return s
}

// VaryFunc adds a mutator axis: each variant applies an arbitrary edit to
// the per-point experiment. The name labels the axis in results and CSV.
func (s *Sweep) VaryFunc(name string, variants ...Variant) *Sweep {
	s.axes = append(s.axes, axis{path: name, variants: variants})
	return s
}

// PointValue records one axis coordinate of a grid point.
type PointValue struct {
	Axis  string
	Label string  // the variant label, or the formatted value
	Value float64 // the numeric value (0 for mutator axes)
}

// PointResult is the outcome of one grid point.
type PointResult struct {
	Index  int
	Seed   uint64
	Values []PointValue
	Res    *Result
	Err    error
}

// SweepResult aggregates a sweep run.
type SweepResult struct {
	Name string
	// Axes lists the axis names in declaration order (first axis varies
	// slowest in point order).
	Axes []string
	// Points holds one entry per grid point, in point-index order —
	// independent of the completion order of the worker pool.
	Points []PointResult
	// Workers is the pool size the sweep ran with.
	Workers int
}

// Validate checks the grid without running anything: the base factory must
// produce a valid experiment, every axis needs at least one value, and
// every value-axis path must resolve against the base experiment. It is
// run by Run; exposed for callers wanting early errors (CLI flag parsing).
func (s *Sweep) Validate() error {
	if s.base == nil {
		return fmt.Errorf("sweep %s: needs a base experiment factory", s.name)
	}
	if len(s.axes) == 0 {
		return fmt.Errorf("sweep %s: needs at least one axis (Vary or VaryFunc)", s.name)
	}
	if _, err := s.base(); err != nil {
		return fmt.Errorf("sweep %s: base experiment: %w", s.name, err)
	}
	for _, ax := range s.axes {
		if ax.size() == 0 {
			return fmt.Errorf("sweep %s: axis %q has no values", s.name, ax.name())
		}
		if len(ax.variants) > 0 {
			for i, v := range ax.variants {
				if v.Apply == nil {
					return fmt.Errorf("sweep %s: axis %q variant %d (%s) has no Apply function",
						s.name, ax.name(), i, v.Label)
				}
			}
			continue
		}
		// Dry-apply every value against a fresh probe experiment so unknown
		// paths and out-of-range values fail before any simulation is built
		// — a bad late value must not surface only after the valid points
		// have already burned their simulation time. Each value gets its own
		// probe because real points also apply at most one value per axis to
		// a fresh experiment; relative paths ("peak" rescales the current
		// curve) would compound if dry-applied cumulatively.
		for _, v := range ax.values {
			probe, err := s.base()
			if err != nil {
				return fmt.Errorf("sweep %s: base experiment: %w", s.name, err)
			}
			if err := applyPath(probe, ax.path, v); err != nil {
				return fmt.Errorf("sweep %s: %w", s.name, err)
			}
		}
	}
	return nil
}

// Size returns the number of grid points.
func (s *Sweep) Size() int {
	if len(s.axes) == 0 {
		return 0
	}
	n := 1
	for _, ax := range s.axes {
		n *= ax.size()
	}
	return n
}

// Run validates the grid, expands it, and executes every point on a pool
// of workers (<= 0 selects GOMAXPROCS). The returned SweepResult orders
// points by index; the error is non-nil when validation fails or any point
// failed (joined per-point errors, with the successful points still in the
// result).
func (s *Sweep) Run(workers int) (*SweepResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := s.Size()
	out := &SweepResult{Name: s.name, Points: make([]PointResult, n), Workers: workers}
	for _, ax := range s.axes {
		out.Axes = append(out.Axes, ax.name())
	}

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range idxCh {
				out.Points[idx] = s.runPoint(idx)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	var errs []error
	for i := range out.Points {
		if err := out.Points[i].Err; err != nil {
			errs = append(errs, fmt.Errorf("point %d: %w", i, err))
		}
	}
	return out, errors.Join(errs...)
}

// runPoint assembles, seeds, mutates and runs one grid point. Each slot of
// the result slice is written exactly once, by whichever worker drew the
// index — determinism comes from the per-point derivation, not from
// scheduling.
func (s *Sweep) runPoint(idx int) PointResult {
	pr := PointResult{Index: idx}
	e, err := s.base()
	if err != nil {
		pr.Err = fmt.Errorf("base experiment: %w", err)
		return pr
	}
	// Derive the point seed before applying axes, so a "seed" axis can
	// still take explicit control of it. Record it immediately: a point
	// that fails mid-axis-application must still report the seed it would
	// have run under.
	e.seed = core.DeriveSeed(e.seed, uint64(idx))
	pr.Seed = e.seed

	// Decompose the index into axis coordinates, first axis slowest.
	rem := idx
	coords := make([]int, len(s.axes))
	for i := len(s.axes) - 1; i >= 0; i-- {
		size := s.axes[i].size()
		coords[i] = rem % size
		rem /= size
	}
	for i, ax := range s.axes {
		c := coords[i]
		if len(ax.variants) > 0 {
			v := ax.variants[c]
			if err := v.Apply(e); err != nil {
				pr.Err = fmt.Errorf("axis %q variant %s: %w", ax.name(), v.Label, err)
				return pr
			}
			pr.Values = append(pr.Values, PointValue{Axis: ax.name(), Label: v.Label})
			continue
		}
		val := ax.values[c]
		if err := applyPath(e, ax.path, val); err != nil {
			pr.Err = err
			return pr
		}
		pr.Values = append(pr.Values, PointValue{
			Axis:  ax.name(),
			Label: strconv.FormatFloat(val, 'g', -1, 64),
			Value: val,
		})
	}
	pr.Seed = e.seed // a "seed" axis may have overridden the derivation
	res, err := e.Run()
	if err != nil {
		pr.Err = err
		return pr
	}
	// Sweep consumers read the uniform harvest (Stats, Series, Responses,
	// Digest); dropping the simulation and compile graph here keeps an
	// N-point SweepResult from pinning N complete simulations — agents,
	// queues, flow state — in memory for the lifetime of the result. Run a
	// single Experiment directly when per-run Sim inspection is needed.
	res.Sim = nil
	res.Run = nil
	pr.Res = res
	return pr
}

// pathGrammar documents the supported value-axis paths in errors.
const pathGrammar = "seed | step | dcs.<dc>.<tier>.cores|servers | dcs.<dc>.clients.slots | wan.<a>-<b>.mbps | workloads.<app>.<dc>.ops|peak|fluid | faults.<name>.magnitude|duration"

// applyPath sets one settable parameter of the experiment. Errors name the
// path and what was expected, so a mistyped axis fails with an actionable
// message instead of a silently unchanged grid.
func applyPath(e *Experiment, path string, v float64) error {
	parts := strings.Split(path, ".")
	switch parts[0] {
	case "seed":
		if len(parts) != 1 {
			return pathErr(path, "seed takes no sub-path")
		}
		e.seed = uint64(v)
		return nil
	case "step":
		if len(parts) != 1 {
			return pathErr(path, "step takes no sub-path")
		}
		if v <= 0 {
			return pathErr(path, "step must be positive")
		}
		e.step = v
		return nil
	case "dcs":
		return applyDCPath(e, path, parts, v)
	case "wan":
		return applyWANPath(e, path, parts, v)
	case "workloads":
		return applyWorkloadPath(e, path, parts, v)
	case "faults":
		return applyFaultPath(e, path, parts, v)
	}
	return pathErr(path, fmt.Sprintf("unknown root %q; supported: %s", parts[0], pathGrammar))
}

func applyDCPath(e *Experiment, path string, parts []string, v float64) error {
	if len(parts) != 4 {
		return pathErr(path, "want dcs.<dc>.<tier>.cores|servers or dcs.<dc>.clients.slots")
	}
	dcName, tierName, field := parts[1], parts[2], parts[3]
	var dc *topology.DCSpec
	for i := range e.infra.DCs {
		if e.infra.DCs[i].Name == dcName {
			dc = &e.infra.DCs[i]
			break
		}
	}
	if dc == nil {
		return pathErr(path, fmt.Sprintf("unknown DC %q (have %s)", dcName, specDCNames(e.infra)))
	}
	if tierName == "clients" && field == "slots" {
		c, ok := e.infra.Clients[dcName]
		if !ok {
			return pathErr(path, fmt.Sprintf("DC %q has no client population", dcName))
		}
		if v < 1 {
			return pathErr(path, "slots must be at least 1")
		}
		c.Slots = int(v)
		e.infra.Clients[dcName] = c
		return nil
	}
	var tier *topology.TierSpec
	for i := range dc.Tiers {
		if dc.Tiers[i].Name == tierName {
			tier = &dc.Tiers[i]
			break
		}
	}
	if tier == nil {
		names := make([]string, 0, len(dc.Tiers))
		for _, t := range dc.Tiers {
			names = append(names, t.Name)
		}
		return pathErr(path, fmt.Sprintf("DC %q has no tier %q (have %s; \"clients\" addresses the client population)",
			dcName, tierName, strings.Join(names, ", ")))
	}
	switch field {
	case "cores":
		if v < 1 {
			return pathErr(path, "cores must be at least 1")
		}
		tier.Server.CPU.Cores = int(v)
	case "servers":
		if v < 1 {
			return pathErr(path, "servers must be at least 1")
		}
		tier.Servers = int(v)
	default:
		return pathErr(path, fmt.Sprintf("unknown tier field %q (want cores or servers)", field))
	}
	return nil
}

func applyWANPath(e *Experiment, path string, parts []string, v float64) error {
	if len(parts) != 3 || parts[2] != "mbps" {
		return pathErr(path, "want wan.<a>-<b>.mbps")
	}
	a, b, ok := strings.Cut(parts[1], "-")
	if !ok {
		return pathErr(path, "want wan.<a>-<b>.mbps")
	}
	if v <= 0 {
		return pathErr(path, "bandwidth must be positive")
	}
	found := false
	for i := range e.infra.WAN {
		w := &e.infra.WAN[i]
		if (w.From == a && w.To == b) || (w.From == b && w.To == a) {
			w.Link.Gbps = v / 1000
			found = true
		}
	}
	if !found {
		return pathErr(path, fmt.Sprintf("no WAN connection between %q and %q", a, b))
	}
	return nil
}

func applyWorkloadPath(e *Experiment, path string, parts []string, v float64) error {
	if len(parts) != 4 {
		return pathErr(path, "want workloads.<app>.<dc>.ops|peak|fluid")
	}
	app, dc, field := parts[1], parts[2], parts[3]
	var w *Workload
	for i := range e.workloads {
		if e.workloads[i].App == app && e.workloads[i].DC == dc {
			w = &e.workloads[i]
			break
		}
	}
	if w == nil {
		return pathErr(path, fmt.Sprintf("no workload %s@%s declared", app, dc))
	}
	switch field {
	case "ops":
		if v <= 0 {
			return pathErr(path, "operation rate must be positive")
		}
		w.OpsPerUserHour = v
	case "peak":
		if v < 0 {
			return pathErr(path, "peak must be non-negative")
		}
		peak := w.Users.Peak()
		if peak <= 0 {
			return pathErr(path, "workload curve has no positive peak to rescale")
		}
		w.Users = w.Users.Scale(v / peak)
	case "fluid":
		// Sweep axis over the fluid-tier engagement threshold (expected
		// arrivals per tick); 0 disables the tier for the point, making
		// "fluid vs discrete" a one-axis A/B sweep.
		if v < 0 {
			return pathErr(path, "fluid threshold must be non-negative")
		}
		w.Fluid.Above = v
	default:
		return pathErr(path, fmt.Sprintf("unknown workload field %q (want ops, peak or fluid)", field))
	}
	return nil
}

func applyFaultPath(e *Experiment, path string, parts []string, v float64) error {
	if len(parts) != 3 {
		return pathErr(path, "want faults.<name>.magnitude|duration")
	}
	name, field := parts[1], parts[2]
	var inj *faults.Injection
	for i := range e.faults {
		if e.faults[i].Name == name {
			inj = &e.faults[i]
			break
		}
	}
	if inj == nil {
		names := make([]string, 0, len(e.faults))
		for _, fi := range e.faults {
			names = append(names, fi.Name)
		}
		return pathErr(path, fmt.Sprintf("no fault injection %q declared (have %s)",
			name, strings.Join(names, ", ")))
	}
	switch field {
	case "magnitude":
		mf, ok := inj.Fault.(faults.MagnitudeFault)
		if !ok {
			return pathErr(path, fmt.Sprintf("fault %s has no sweepable magnitude", inj.Fault.Describe()))
		}
		if err := mf.SetMagnitude(v); err != nil {
			return pathErr(path, err.Error())
		}
	case "duration":
		if v < 0 {
			return pathErr(path, "duration must be non-negative (0 elides the injection)")
		}
		inj.Duration = v
	default:
		return pathErr(path, fmt.Sprintf("unknown fault field %q (want magnitude or duration)", field))
	}
	return nil
}

func pathErr(path, detail string) error {
	return fmt.Errorf("sweep axis %q: %s", path, detail)
}

func specDCNames(spec *topology.InfraSpec) string {
	names := make([]string, 0, len(spec.DCs))
	for _, dc := range spec.DCs {
		names = append(names, dc.Name)
	}
	return strings.Join(names, ", ")
}

// Column is one metric column of the sweep CSV export.
type Column struct {
	Name  string
	Value func(*Result) float64
}

// DefaultColumns are the metric columns every sweep can report.
var DefaultColumns = []Column{
	{"completed_ops", func(r *Result) float64 { return float64(r.Stats.CompletedOps) }},
	{"sim_seconds", func(r *Result) float64 { return r.Stats.Seconds }},
	{"jumps", func(r *Result) float64 { return float64(r.Stats.Jumps) }},
	{"skipped_ticks", func(r *Result) float64 { return float64(r.Stats.SkippedTicks) }},
}

// WriteCSV exports the sweep as one row per point: point index, seed, one
// column per axis, the metric columns (DefaultColumns when none given) and
// a trailing error column for failed points.
func (sr *SweepResult) WriteCSV(w io.Writer, cols ...Column) error {
	if len(cols) == 0 {
		cols = DefaultColumns
	}
	cw := csv.NewWriter(w)
	header := []string{"point", "seed"}
	header = append(header, sr.Axes...)
	for _, c := range cols {
		header = append(header, c.Name)
	}
	header = append(header, "error")
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	for i := range sr.Points {
		p := &sr.Points[i]
		rec := []string{strconv.Itoa(p.Index), strconv.FormatUint(p.Seed, 10)}
		for _, av := range p.Values {
			rec = append(rec, av.Label)
		}
		for len(rec) < 2+len(sr.Axes) {
			rec = append(rec, "") // failed before all axes were applied
		}
		for _, c := range cols {
			if p.Res != nil {
				rec = append(rec, strconv.FormatFloat(c.Value(p.Res), 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if p.Err != nil {
			rec = append(rec, p.Err.Error())
		} else {
			rec = append(rec, "")
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiment: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiment: %w", err)
	}
	return nil
}
