package experiment

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// BenchmarkSweepThroughput measures sweep points per second at 1, 4 and
// NumCPU workers over the small PDM experiment (an 8-point grid per
// iteration). The BENCH_sweep.json snapshot at the repo root records the
// committed numbers; CI runs one iteration as a smoke pass and posts both
// to the job summary.
func BenchmarkSweepThroughput(b *testing.B) {
	counts := []int{1, 4, runtime.NumCPU()}
	if counts[2] == counts[1] || counts[2] == counts[0] {
		counts = counts[:2]
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			start := time.Now()
			points := 0
			for i := 0; i < b.N; i++ {
				res, err := eightPointSweep().Run(workers)
				if err != nil {
					b.Fatal(err)
				}
				points += len(res.Points)
			}
			b.ReportMetric(float64(points)/time.Since(start).Seconds(), "points/sec")
		})
	}
}
