package background

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

const mb = 1e6

// SyncDaemon is the R daemon of §6.4.3: every Interval seconds it launches
// a SYNCHREP operation covering the files modified in the elapsed window.
// Multiple SYNCHREP instances may overlap when a cycle outlasts the
// interval, exactly as the thesis specifies. One daemon runs per master
// data center (one total in Chapter 6, six in Chapter 7).
type SyncDaemon struct {
	Inf      *topology.Infrastructure
	Master   string
	APM      workload.AccessMatrix
	Growth   GrowthModel
	Interval float64 // seconds between launches (900 in the case studies)

	// Durations records one sample per completed SYNCHREP (seconds).
	Durations metrics.Series
	// PullMB / PushMB record per-cycle volumes by remote data center.
	PullMB map[string]*metrics.Series
	PushMB map[string]*metrics.Series

	next        float64
	started     bool
	activeCount int
}

// Poll launches SYNCHREP cycles on schedule. Implements core.Source.
func (d *SyncDaemon) Poll(s *core.Simulation, now float64) {
	if !d.started {
		if d.Interval <= 0 {
			panic("background: SyncDaemon needs a positive interval")
		}
		if err := d.APM.Validate(); err != nil {
			panic(err)
		}
		d.Durations.Name = "SYNCHREP@" + d.Master
		d.PullMB = make(map[string]*metrics.Series)
		d.PushMB = make(map[string]*metrics.Series)
		d.next = d.Interval // first cycle covers [0, Interval)
		d.started = true
	}
	for now >= d.next {
		windowEnd := d.next
		d.launch(s, windowEnd-d.Interval, windowEnd)
		d.next += d.Interval
	}
}

// NextPoll reports the next scheduled SYNCHREP launch; polls before it are
// no-ops. In-flight cycles advance through the flow machinery, not polls.
func (d *SyncDaemon) NextPoll(now float64) float64 {
	if !d.started {
		return now
	}
	return d.next
}

// Active reports how many SYNCHREP operations are currently in flight.
func (d *SyncDaemon) Active() int { return d.activeCount }

// MaxStalenessMin returns R^max_SR: the longest time a stale file copy can
// survive at a data center — the launch interval plus the longest observed
// cycle (§6.3.3, Fig. 6-14).
func (d *SyncDaemon) MaxStalenessMin() float64 {
	_, longest, ok := d.Durations.Max()
	if !ok {
		return 0
	}
	return (d.Interval + longest) / 60
}

// launch builds and starts one SYNCHREP operation for the window.
func (d *SyncDaemon) launch(s *core.Simulation, t0, t1 float64) {
	master := d.Inf.DC(d.Master)
	daemon := topology.DaemonEndpoint(master)
	masterFS := topology.ServerEndpoint(master.Tier("fs").Pick())

	// Pull phase: collect each remote DC's master-owned modifications.
	var pulls []core.MessagePlan
	for _, src := range d.Inf.DCNames() {
		vol, err := PullVolumeMB(d.Growth, d.APM, d.Master, src, t0, t1)
		if err != nil {
			panic(err)
		}
		if vol <= 0 {
			continue
		}
		d.seriesFor(d.PullMB, src).Add(t1, vol)
		srcFS := topology.ServerEndpoint(d.Inf.DC(src).Tier("fs").Pick())
		plan, err := concatHops(d.Inf,
			hop{daemon, srcFS, topology.Cost{CPUCycles: 5e7, NetBytes: 20e3}},
			hop{srcFS, masterFS, topology.Cost{CPUCycles: 2e8, NetBytes: vol * mb, DiskBytes: vol * mb, MemBytes: 200 * mb}},
			hop{masterFS, daemon, topology.Cost{CPUCycles: 5e7, NetBytes: 20e3}},
		)
		if err != nil {
			panic(err)
		}
		pulls = append(pulls, plan)
	}

	// Push phase: scatter every master-owned new file to all other DCs
	// except its creator (§6.3.2).
	var pushes []core.MessagePlan
	for _, dst := range d.Inf.DCNames() {
		vol, err := PushVolumeMB(d.Growth, d.APM, d.Master, dst, t0, t1)
		if err != nil {
			panic(err)
		}
		if dst == d.Master || vol <= 0 {
			continue
		}
		d.seriesFor(d.PushMB, dst).Add(t1, vol)
		dstFS := topology.ServerEndpoint(d.Inf.DC(dst).Tier("fs").Pick())
		plan, err := concatHops(d.Inf,
			hop{daemon, masterFS, topology.Cost{CPUCycles: 5e7, NetBytes: 20e3}},
			hop{masterFS, dstFS, topology.Cost{CPUCycles: 2e8, NetBytes: vol * mb, DiskBytes: vol * mb, MemBytes: 200 * mb}},
			hop{dstFS, daemon, topology.Cost{CPUCycles: 5e7, NetBytes: 20e3}},
		)
		if err != nil {
			panic(err)
		}
		pushes = append(pushes, plan)
	}

	// Metadata step: the daemon queries the database for the modified-file
	// lists through the application tier (Fig. 6-8).
	meta := d.metadataPlan(master, daemon)

	steps := [][]core.MessagePlan{{meta}}
	if len(pulls) > 0 {
		steps = append(steps, pulls)
	}
	if len(pushes) > 0 {
		steps = append(steps, pushes)
	}
	d.activeCount++
	s.StartOp(core.OpRun{
		Name:     "SYNCHREP",
		DC:       d.Master,
		NumSteps: len(steps),
		Expand:   func(step int) []core.MessagePlan { return steps[step] },
		OnComplete: func(now, dur float64) {
			d.activeCount--
			d.Durations.Add(now, dur)
		},
	})
}

func (d *SyncDaemon) metadataPlan(master *topology.DataCenter, daemon topology.Endpoint) core.MessagePlan {
	app := topology.ServerEndpoint(master.Tier("app").Pick())
	db := topology.ServerEndpoint(master.Tier("db").Pick())
	plan, err := concatHops(d.Inf,
		hop{daemon, app, topology.Cost{CPUCycles: 2.5e8, NetBytes: 50e3}},
		hop{app, db, topology.Cost{CPUCycles: 1.25e9, NetBytes: 100e3, DiskBytes: 20 * mb}},
		hop{db, app, topology.Cost{CPUCycles: 2.5e8, NetBytes: 500e3}},
		hop{app, daemon, topology.Cost{CPUCycles: 5e7, NetBytes: 100e3}},
	)
	if err != nil {
		panic(err)
	}
	return plan
}

func (d *SyncDaemon) seriesFor(m map[string]*metrics.Series, dc string) *metrics.Series {
	s := m[dc]
	if s == nil {
		s = &metrics.Series{Name: dc}
		m[dc] = s
	}
	return s
}

// HourlyPushMB aggregates per-cycle push volumes to a destination into
// per-hour sums — the series of Figs. 6-11 / 7-4 / 7-5.
func (d *SyncDaemon) HourlyPushMB(dst string, hours int) []float64 {
	return hourlySums(d.PushMB[dst], hours)
}

// HourlyPullMB aggregates per-cycle pull volumes from a source per hour.
func (d *SyncDaemon) HourlyPullMB(src string, hours int) []float64 {
	return hourlySums(d.PullMB[src], hours)
}

// DailyPushMB sums all pushes from this master over the run.
func (d *SyncDaemon) DailyPushMB() float64 {
	total := 0.0
	for _, s := range d.PushMB {
		for _, v := range s.V {
			total += v
		}
	}
	return total
}

func hourlySums(s *metrics.Series, hours int) []float64 {
	out := make([]float64, hours)
	if s == nil {
		return out
	}
	for i, t := range s.T {
		h := int(t / 3600)
		if h >= 0 && h < hours {
			out[h] += s.V[i]
		}
	}
	return out
}

// hop is one message of a daemon cascade.
type hop struct {
	from, to topology.Endpoint
	cost     topology.Cost
}

// concatHops chains sequential messages into a single message plan: the
// stage list of hop k+1 follows hop k, which is exactly the semantics of a
// fixed request/transfer/ack sub-sequence inside a parallel branch.
func concatHops(inf *topology.Infrastructure, hops ...hop) (core.MessagePlan, error) {
	var plan core.MessagePlan
	for _, h := range hops {
		p, err := inf.ExpandHop(h.from, h.to, h.cost)
		if err != nil {
			return core.MessagePlan{}, fmt.Errorf("background: %w", err)
		}
		plan.Stages = append(plan.Stages, p.Stages...)
	}
	return plan, nil
}

var _ core.Source = (*SyncDaemon)(nil)
