package background

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

func testGrowth() GrowthModel {
	return GrowthModel{
		"NA": workload.BusinessDay(1000, 13, 22, 20),
		"EU": workload.BusinessDay(500, 8, 17, 10),
	}
}

func TestGrowthVolumeIntegration(t *testing.T) {
	g := testGrowth()
	// Inside the NA plateau the rate is constant 1000 MB/h.
	vol := g.VolumeMB("NA", 15*3600, 16*3600)
	if math.Abs(vol-1000) > 1 {
		t.Errorf("1h plateau volume = %v, want 1000", vol)
	}
	if v := g.VolumeMB("NA", 16*3600, 16*3600); v != 0 {
		t.Errorf("empty window volume = %v", v)
	}
	if v := g.VolumeMB("MARS", 0, 3600); v != 0 {
		t.Errorf("unknown DC volume = %v", v)
	}
}

func TestGrowthGlobalDaily(t *testing.T) {
	g := testGrowth()
	na := g.VolumeMB("NA", 0, 24*3600)
	eu := g.VolumeMB("EU", 0, 24*3600)
	if math.Abs(g.GlobalDailyMB()-(na+eu)) > 1e-6 {
		t.Error("GlobalDailyMB does not sum per-DC volumes")
	}
}

func TestPullPushSingleMaster(t *testing.T) {
	g := testGrowth()
	apm := workload.SingleMaster([]string{"NA", "EU"}, "NA")
	// Pull NA<-EU equals EU growth; push NA->EU equals NA growth (files
	// created at EU are not pushed back to EU).
	pull, err := PullVolumeMB(g, apm, "NA", "EU", 14*3600, 15*3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pull-500) > 1 {
		t.Errorf("pull = %v, want 500", pull)
	}
	push, err := PushVolumeMB(g, apm, "NA", "EU", 14*3600, 15*3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(push-1000) > 1 {
		t.Errorf("push = %v, want 1000 (NA-created files)", push)
	}
	if v, _ := PullVolumeMB(g, apm, "NA", "NA", 0, 3600); v != 0 {
		t.Errorf("self-pull = %v", v)
	}
}

// Property: ownership conserves volume — summing each master's pull from a
// source recovers that source's growth (every created file has one owner).
func TestOwnershipConservation(t *testing.T) {
	g := testGrowth()
	f := func(a, b uint8) bool {
		pa := float64(a%100) / 100
		apm := workload.AccessMatrix{
			"NA": {"NA": pa, "EU": 1 - pa},
			"EU": {"NA": 0.3, "EU": 0.7},
		}
		total := 0.0
		for _, m := range []string{"NA", "EU"} {
			v, err := PullVolumeMB(g, apm, m, "EU", 13*3600, 14*3600)
			if err != nil {
				return false
			}
			total += v
		}
		// EU growth owned by EU itself is not pulled by anyone; add it.
		total += g.VolumeMB("EU", 13*3600, 14*3600) * apm["EU"]["EU"]
		want := g.VolumeMB("EU", 13*3600, 14*3600)
		return math.Abs(total-want) < 1e-6*want+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// syncInfra builds a master DC (app/db/fs/idx) plus one slave (fs only).
func syncInfra(t *testing.T) (*core.Simulation, *topology.Infrastructure) {
	t.Helper()
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 8, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
			CtrlGbps: 8, HitRate: 0,
		},
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	tiers := func(withMaster bool) []topology.TierSpec {
		ts := []topology.TierSpec{
			{Name: "fs", Servers: 1, Server: srv, LocalLink: local},
		}
		if withMaster {
			ts = append(ts,
				topology.TierSpec{Name: "app", Servers: 1, Server: srv, LocalLink: local},
				topology.TierSpec{Name: "db", Servers: 1, Server: srv, LocalLink: local},
				topology.TierSpec{Name: "idx", Servers: 1, Server: srv, LocalLink: local},
			)
		}
		return ts
	}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{
			{Name: "NA", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}, Tiers: tiers(true)},
			{Name: "EU", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}, Tiers: tiers(false)},
		},
		WAN: []topology.WANSpec{
			{From: "NA", To: "EU", Link: hardware.LinkSpec{Gbps: 0.155, LatencyMS: 45, Allocated: 0.2}},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.05, Seed: 17, CollectEvery: 100})
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func TestSyncDaemonRunsCycles(t *testing.T) {
	sim, inf := syncInfra(t)
	// Constant modest growth so cycles are short.
	var flat workload.Curve
	for h := range flat {
		flat[h] = 60 // 60 MB/h => 15 MB per 15-min cycle
	}
	d := &SyncDaemon{
		Inf:      inf,
		Master:   "NA",
		APM:      workload.SingleMaster([]string{"NA", "EU"}, "NA"),
		Growth:   GrowthModel{"NA": flat, "EU": flat},
		Interval: 900,
	}
	sim.AddSource(d)
	sim.RunFor(2 * 3600) // two hours => 7 cycles launched (t=900..6300)
	if err := sim.RunUntilIdle(3600); err != nil {
		t.Fatal(err)
	}
	if n := d.Durations.Len(); n < 7 {
		t.Fatalf("completed cycles = %d, want >= 7", n)
	}
	if d.Active() != 0 {
		t.Errorf("active cycles = %d after drain", d.Active())
	}
	// Pull from EU and push to EU must both be recorded at 15 MB/cycle.
	pulls := d.PullMB["EU"]
	if pulls == nil || pulls.Len() == 0 {
		t.Fatal("no pull volumes recorded")
	}
	if math.Abs(pulls.V[0]-15) > 0.5 {
		t.Errorf("pull volume = %v MB, want ~15", pulls.V[0])
	}
	if st := d.MaxStalenessMin(); st <= 15 {
		t.Errorf("staleness = %v min, must exceed the 15-min interval", st)
	}
}

func TestSyncDaemonWANVolumeFlows(t *testing.T) {
	sim, inf := syncInfra(t)
	var flat workload.Curve
	for h := range flat {
		flat[h] = 120
	}
	d := &SyncDaemon{
		Inf:      inf,
		Master:   "NA",
		APM:      workload.SingleMaster([]string{"NA", "EU"}, "NA"),
		Growth:   GrowthModel{"NA": flat, "EU": flat},
		Interval: 900,
	}
	sim.AddSource(d)
	sim.RunFor(1860) // two cycles
	if err := sim.RunUntilIdle(3600); err != nil {
		t.Fatal(err)
	}
	// Pushes NA->EU carry ~30 MB per cycle; pulls EU->NA likewise.
	fwd := inf.WANLink("NA", "EU").TakeBusy()
	rev := inf.WANLink("EU", "NA").TakeBusy()
	if fwd < 50e6 {
		t.Errorf("NA->EU carried %v bytes, want >= 2 pushes of 30 MB", fwd)
	}
	if rev < 50e6 {
		t.Errorf("EU->NA carried %v bytes, want >= 2 pulls of 30 MB", rev)
	}
}

func TestSyncDaemonHourlyAggregation(t *testing.T) {
	d := &SyncDaemon{}
	d.PushMB = map[string]*metrics.Series{"EU": {Name: "EU"}}
	s := d.PushMB["EU"]
	s.Add(900, 10)  // hour 0
	s.Add(1800, 20) // hour 0
	s.Add(4000, 30) // hour 1
	got := d.HourlyPushMB("EU", 3)
	if got[0] != 30 || got[1] != 30 || got[2] != 0 {
		t.Errorf("HourlyPushMB = %v", got)
	}
	if d.DailyPushMB() != 60 {
		t.Errorf("DailyPushMB = %v", d.DailyPushMB())
	}
	if empty := d.HourlyPullMB("EU", 2); empty[0] != 0 {
		t.Errorf("HourlyPullMB on empty series = %v", empty)
	}
}

func TestIndexDaemonSequentialAndBacklog(t *testing.T) {
	sim, inf := syncInfra(t)
	var flat workload.Curve
	for h := range flat {
		flat[h] = 360 // 0.1 MB/s generation
	}
	d := &IndexDaemon{
		Inf:    inf,
		Master: "NA",
		APM:    workload.SingleMaster([]string{"NA", "EU"}, "NA"),
		Growth: GrowthModel{"NA": flat, "EU": flat},
		Gap:    300,
		// 2.5 GHz / 2500 cycles per byte = 1 MB/s indexing throughput,
		// against 0.2 MB/s owned generation: stable, finite builds.
		CyclesPerByte: 2500,
	}
	d.Handle = sim.AddSource(d)
	sim.RunFor(4 * 3600)
	if err := sim.RunUntilIdle(3600); err != nil {
		t.Fatal(err)
	}
	if d.Durations.Len() < 3 {
		t.Fatalf("builds completed = %d", d.Durations.Len())
	}
	if d.Running() {
		t.Error("daemon still running after drain")
	}
	// Backlogs after the first build settle near generation x (gap+build).
	for i := 1; i < d.BacklogMB.Len(); i++ {
		if d.BacklogMB.V[i] <= 0 {
			t.Errorf("build %d had empty backlog", i)
		}
	}
	if d.MaxUnsearchableMin() <= 5 {
		t.Errorf("unsearchable window = %v min, must exceed the 5-min gap", d.MaxUnsearchableMin())
	}
}

func TestIndexDaemonNeverOverlaps(t *testing.T) {
	sim, inf := syncInfra(t)
	var heavy workload.Curve
	for h := range heavy {
		heavy[h] = 3600 // 1 MB/s generation
	}
	d := &IndexDaemon{
		Inf:    inf,
		Master: "NA",
		APM:    workload.SingleMaster([]string{"NA", "EU"}, "NA"),
		Growth: GrowthModel{"NA": heavy},
		Gap:    300,
		// Throughput 1.25 MB/s barely above generation: long builds.
		CyclesPerByte: 2000,
	}
	d.Handle = sim.AddSource(d)
	maxActive := 0
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if d.Running() {
			if s.ActiveFlows() > maxActive {
				maxActive = s.ActiveFlows()
			}
		}
	}))
	sim.RunFor(2 * 3600)
	if maxActive > 1 {
		t.Errorf("INDEXBUILD overlapped: %d flows in flight", maxActive)
	}
	// Builds grow as backlog accumulates while building.
	if d.Durations.Len() >= 2 && d.Durations.V[1] <= d.Durations.V[0] {
		t.Logf("durations: %v (non-increasing is acceptable at steady state)", d.Durations.V)
	}
}
