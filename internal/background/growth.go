// Package background implements the background processes of the Data
// Serving Platform (§6.3.2): Synchronization & Replication (SYNCHREP,
// Fig. 6-8) and Index Build (INDEXBUILD, Fig. 6-9), together with the
// data-growth model (Fig. 6-10) that drives their volumes and the
// ownership accounting of Chapter 7.
//
// Ownership is expressed through the Access Pattern Matrix: data created at
// a data center is attributed to owner data centers in proportion to where
// its requests come from (§7.2.1). With the single-master matrix of
// Chapter 6 every file belongs to DNA and the formulas reduce exactly to
// the consolidated platform's behaviour:
//
//	pull volume (master m <- src d) = growth_d x APM[d][m]
//	push volume (m -> dst)          = sum over src != dst of growth_src x APM[src][m]
package background

import (
	"fmt"
	"sort"

	"repro/internal/workload"
)

// GrowthModel maps each data center to its hourly data-generation rate
// curve in MB/hour (Fig. 6-10).
type GrowthModel map[string]workload.Curve

// DCs returns the model's data centers in sorted order. Every float
// summation over the model iterates this order: map iteration order is
// randomized per run and float addition is not associative, so summing in
// map order would make volumes differ by ulps from run to run — breaking
// the bit-identical reproducibility the determinism contract promises.
func (g GrowthModel) DCs() []string {
	dcs := make([]string, 0, len(g))
	for dc := range g {
		dcs = append(dcs, dc)
	}
	sort.Strings(dcs)
	return dcs
}

// RateMBh returns the generation rate of a data center at time t (seconds).
func (g GrowthModel) RateMBh(dc string, t float64) float64 {
	c, ok := g[dc]
	if !ok {
		return 0
	}
	return c.At(t)
}

// VolumeMB integrates the generation rate of a data center over [t0, t1)
// seconds, by minute-level steps — exact enough for 15-minute windows over
// piecewise-linear curves.
func (g GrowthModel) VolumeMB(dc string, t0, t1 float64) float64 {
	if t1 <= t0 {
		return 0
	}
	c, ok := g[dc]
	if !ok {
		return 0
	}
	const dt = 60.0
	vol := 0.0
	for t := t0; t < t1; t += dt {
		step := dt
		if t+step > t1 {
			step = t1 - t
		}
		vol += c.At(t+step/2) / 3600 * step
	}
	return vol
}

// GlobalDailyMB sums the generated volume of all data centers over one day.
func (g GrowthModel) GlobalDailyMB() float64 {
	total := 0.0
	for _, dc := range g.DCs() {
		total += g.VolumeMB(dc, 0, 24*3600)
	}
	return total
}

// OwnedVolumeMB returns the data volume generated across the infrastructure
// during [t0, t1) that is owned by master m under the access matrix.
func OwnedVolumeMB(g GrowthModel, apm workload.AccessMatrix, m string, t0, t1 float64) float64 {
	total := 0.0
	for _, src := range g.DCs() {
		share := apm[src][m]
		if share > 0 {
			total += g.VolumeMB(src, t0, t1) * share
		}
	}
	return total
}

// PullVolumeMB returns what master m pulls from src during [t0, t1): the
// data generated at src that m owns.
func PullVolumeMB(g GrowthModel, apm workload.AccessMatrix, m, src string, t0, t1 float64) (float64, error) {
	if m == src {
		return 0, nil
	}
	vol := g.VolumeMB(src, t0, t1)
	if vol == 0 {
		// Sites that generate no data (pure serving sites like AS2) need
		// no APM row.
		return 0, nil
	}
	row, ok := apm[src]
	if !ok {
		return 0, fmt.Errorf("background: APM has no row for %s", src)
	}
	return vol * row[m], nil
}

// PushVolumeMB returns what master m pushes to dst during [t0, t1): every
// m-owned file generated at any other data center.
func PushVolumeMB(g GrowthModel, apm workload.AccessMatrix, m, dst string, t0, t1 float64) (float64, error) {
	if m == dst {
		return 0, nil
	}
	total := 0.0
	for _, src := range g.DCs() {
		if src == dst {
			continue
		}
		vol := g.VolumeMB(src, t0, t1)
		if vol == 0 {
			continue
		}
		row, ok := apm[src]
		if !ok {
			return 0, fmt.Errorf("background: APM has no row for %s", src)
		}
		total += vol * row[m]
	}
	return total, nil
}
