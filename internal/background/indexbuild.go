package background

import (
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/topology"
	"repro/internal/workload"
)

// DefaultIndexCyclesPerByte converts indexed bytes into CPU cycles at the
// index server. At 2.5 GHz it yields an indexing throughput of about
// 0.51 MB/s per core, calibrated so the consolidated platform's peak
// INDEXBUILD response approaches the thesis' ~63 minutes (Fig. 6-14): the
// index builder runs barely above the peak global data-generation rate, so
// backlog accumulates through the afternoon and drains after the peak —
// the "cumulative effect" of §6.5.3.
const DefaultIndexCyclesPerByte = 4900

// IndexDaemon is the I daemon of §6.4.3: it relaunches INDEXBUILD a fixed
// gap after the previous run completes, so exactly one instance runs at a
// time; files accumulate while a build is in progress.
type IndexDaemon struct {
	Inf           *topology.Infrastructure
	Master        string
	APM           workload.AccessMatrix
	Growth        GrowthModel
	Gap           float64 // seconds between completion and next launch (300)
	CyclesPerByte float64 // 0 selects DefaultIndexCyclesPerByte
	// Handle is the source handle AddSource returned for this daemon.
	// When set, the daemon parks its poll schedule at +Inf while a build
	// runs and re-arms it from the completion callback via RearmSource —
	// the calendar loop then never consults a dormant daemon. When zero
	// (the daemon was registered without keeping the handle) it falls back
	// to per-tick no-op polls while a build runs, which is correct but
	// vetoes fast-forward jumps for the build's duration.
	Handle core.SourceHandle

	// Durations records one sample per completed INDEXBUILD (seconds).
	Durations metrics.Series
	// BacklogMB records the volume each build processed.
	BacklogMB metrics.Series

	started     bool
	running     bool
	nextLaunch  float64
	lastIndexed float64
}

// Poll launches INDEXBUILD when due. Implements core.Source.
func (d *IndexDaemon) Poll(s *core.Simulation, now float64) {
	if !d.started {
		if d.Gap <= 0 {
			panic("background: IndexDaemon needs a positive gap")
		}
		if err := d.APM.Validate(); err != nil {
			panic(err)
		}
		if d.CyclesPerByte <= 0 {
			d.CyclesPerByte = DefaultIndexCyclesPerByte
		}
		d.Durations.Name = "INDEXBUILD@" + d.Master
		d.BacklogMB.Name = "backlog@" + d.Master
		d.nextLaunch = d.Gap
		d.started = true
	}
	if d.running || now < d.nextLaunch {
		return
	}
	d.launch(s, now)
}

// NextPoll reports the next scheduled INDEXBUILD launch. While a build is
// running a wired daemon (Handle set) is dormant (+Inf): its completion
// callback sets the relaunch time and notifies the simulation through
// RearmSource, so the calendar loop never consults it in between. An
// unwired daemon keeps per-tick polling while running — its polls are
// no-ops, preserving correctness at the cost of vetoed jumps.
func (d *IndexDaemon) NextPoll(now float64) float64 {
	switch {
	case !d.started:
		return now
	case d.running:
		if d.Handle == 0 {
			return now
		}
		return math.Inf(1)
	default:
		return d.nextLaunch
	}
}

// Running reports whether a build is in flight.
func (d *IndexDaemon) Running() bool { return d.running }

// MaxUnsearchableMin returns R^max_IB: the longest interval during which a
// new file can remain unsearchable — the longest observed build plus the
// relaunch gap (§6.3.3, Fig. 6-14).
func (d *IndexDaemon) MaxUnsearchableMin() float64 {
	_, longest, ok := d.Durations.Max()
	if !ok {
		return 0
	}
	return (longest + d.Gap) / 60
}

func (d *IndexDaemon) launch(s *core.Simulation, now float64) {
	backlog := OwnedVolumeMB(d.Growth, d.APM, d.Master, d.lastIndexed, now)
	d.lastIndexed = now
	d.BacklogMB.Add(now, backlog)

	master := d.Inf.DC(d.Master)
	daemon := topology.DaemonEndpoint(master)
	app := topology.ServerEndpoint(master.Tier("app").Pick())
	db := topology.ServerEndpoint(master.Tier("db").Pick())
	idx := topology.ServerEndpoint(master.Tier("idx").Pick())

	// Fig. 6-9: the daemon collects the flagged-file list via app and db,
	// then the index server analyzes each file and its relationships.
	plan, err := concatHops(d.Inf,
		hop{daemon, app, topology.Cost{CPUCycles: 2.5e8, NetBytes: 50e3}},
		hop{app, db, topology.Cost{CPUCycles: 1e9, NetBytes: 100e3, DiskBytes: 10 * mb}},
		hop{db, app, topology.Cost{CPUCycles: 2.5e8, NetBytes: 300e3}},
		hop{app, idx, topology.Cost{
			CPUCycles: backlog * mb * d.CyclesPerByte,
			NetBytes:  500e3,
			MemBytes:  500 * mb,
			DiskBytes: backlog * mb,
		}},
		hop{idx, daemon, topology.Cost{CPUCycles: 5e7, NetBytes: 50e3}},
	)
	if err != nil {
		panic(err)
	}

	d.running = true
	s.StartOp(core.OpRun{
		Name:     "INDEXBUILD",
		DC:       d.Master,
		NumSteps: 1,
		Expand:   func(int) []core.MessagePlan { return []core.MessagePlan{plan} },
		OnComplete: func(done, dur float64) {
			d.running = false
			d.nextLaunch = done + d.Gap
			d.Durations.Add(done, dur)
			s.RearmSource(d.Handle) // wake the parked poll schedule
		},
	})
}

var _ core.Source = (*IndexDaemon)(nil)
