package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewClockPanicsOnNonPositiveStep(t *testing.T) {
	for _, step := range []Seconds{0, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", step)
				}
			}()
			NewClock(step)
		}()
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0.01)
	if c.Now() != 0 {
		t.Fatalf("initial tick = %d, want 0", c.Now())
	}
	for i := 1; i <= 5; i++ {
		if got := c.Advance(); got != Tick(i) {
			t.Fatalf("Advance() = %d, want %d", got, i)
		}
	}
	if got := c.NowSeconds(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("NowSeconds() = %v, want 0.05", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset Now() = %d, want 0", c.Now())
	}
}

func TestTicksInRoundsUp(t *testing.T) {
	c := NewClock(0.01)
	cases := []struct {
		d    Seconds
		want Tick
	}{
		{0, 0},
		{-1, 0},
		{0.001, 1},
		{0.01, 1},
		{0.011, 2},
		{1.0, 100},
	}
	for _, tc := range cases {
		if got := c.TicksIn(tc.d); got != tc.want {
			t.Errorf("TicksIn(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

// TestTicksInTable pins TicksIn's rounding across the edge cases the
// event-horizon loop depends on: exact multiples, sub-step durations,
// zero/negative inputs and float-epsilon boundaries.
func TestTicksInTable(t *testing.T) {
	c := NewClock(0.05)
	cases := []struct {
		name string
		d    Seconds
		want Tick
	}{
		{"zero", 0, 0},
		{"negative", -3, 0},
		{"sub-step", 0.01, 1},
		{"exact-one-step", 0.05, 1},
		{"exact-multiple", 0.25, 5},
		{"just-over-multiple", 0.25 + 1e-9, 6},
		{"just-under-multiple", 0.25 - 1e-9, 5},
		{"large-exact", 3600, 72000},
		{"epsilon", 1e-12, 1},
	}
	for _, tc := range cases {
		if got := c.TicksIn(tc.d); got != tc.want {
			t.Errorf("%s: TicksIn(%v) = %d, want %d", tc.name, tc.d, got, tc.want)
		}
	}
}

func TestAdvanceBy(t *testing.T) {
	c := NewClock(0.05)
	if got := c.AdvanceBy(1); got != 1 {
		t.Fatalf("AdvanceBy(1) = %d, want 1", got)
	}
	if got := c.AdvanceBy(1199); got != 1200 {
		t.Fatalf("AdvanceBy(1199) = %d, want 1200", got)
	}
	if got := c.NowSeconds(); got != 60 {
		t.Errorf("NowSeconds() after jump = %v, want 60", got)
	}
	// A jump must land on exactly the tick arithmetic Advance produces.
	a, b := NewClock(0.05), NewClock(0.05)
	a.AdvanceBy(7)
	for i := 0; i < 7; i++ {
		b.Advance()
	}
	if a.Now() != b.Now() || a.NowSeconds() != b.NowSeconds() {
		t.Errorf("AdvanceBy(7) = (%d, %v), Advance x7 = (%d, %v)",
			a.Now(), a.NowSeconds(), b.Now(), b.NowSeconds())
	}
	for _, n := range []Tick{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("AdvanceBy(%d) did not panic", n)
				}
			}()
			c.AdvanceBy(n)
		}()
	}
}

// TestWholeTicksBefore pins the strict-inequality contract of the jump
// sizing primitive: the returned k whole ticks always elapse in strictly
// less than d seconds, and k+1 would not.
func TestWholeTicksBefore(t *testing.T) {
	c := NewClock(0.05)
	cases := []struct {
		name string
		d    Seconds
		want Tick
	}{
		{"zero", 0, 0},
		{"negative", -1, 0},
		{"sub-step", 0.01, 0},
		{"exact-one-step", 0.05, 0},
		{"between-steps", 0.07, 1},
		{"exact-multiple-excluded", 0.25, 4},
		{"just-over-multiple", 0.25 + 1e-9, 5},
		{"just-under-multiple", 0.25 - 1e-9, 4},
		{"one-hour", 3600, 71999},
		{"infinite", math.Inf(1), 1 << 62},
		{"huge-finite-saturates", 1e300, 1 << 62},
	}
	for _, tc := range cases {
		if got := c.WholeTicksBefore(tc.d); got != tc.want {
			t.Errorf("%s: WholeTicksBefore(%v) = %d, want %d", tc.name, tc.d, got, tc.want)
		}
	}
}

// Property: WholeTicksBefore satisfies k*step < d <= (k+1)*step in the
// exact float arithmetic the clock itself uses.
func TestWholeTicksBeforeStrict(t *testing.T) {
	c := NewClock(0.005)
	f := func(us uint32) bool {
		d := Seconds(us) / 1e6
		if d <= c.Step() {
			return c.WholeTicksBefore(d) == 0
		}
		k := c.WholeTicksBefore(d)
		return c.SecondsAt(k) < d && c.SecondsAt(k+1) >= d
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTickAtFloors(t *testing.T) {
	c := NewClock(0.5)
	if got := c.TickAt(1.2); got != 2 {
		t.Errorf("TickAt(1.2) = %d, want 2", got)
	}
	if got := c.TickAt(-3); got != 0 {
		t.Errorf("TickAt(-3) = %d, want 0", got)
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		s    Seconds
		want int
	}{
		{0, 0},
		{3599, 0},
		{3600, 1},
		{13 * 3600, 13},
		{24 * 3600, 0},
		{25 * 3600, 1},
	}
	for _, tc := range cases {
		if got := HourOfDay(tc.s); got != tc.want {
			t.Errorf("HourOfDay(%v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestFormatHMS(t *testing.T) {
	if got := FormatHMS(3723); got != "1:02:03" {
		t.Errorf("FormatHMS(3723) = %q, want 1:02:03", got)
	}
}

// Property: TicksIn always covers the duration, with less than one extra step.
func TestTicksInCoversDuration(t *testing.T) {
	c := NewClock(0.01)
	f := func(ms uint16) bool {
		d := Seconds(ms) / 1000
		ticks := c.TicksIn(d)
		covered := c.SecondsAt(ticks)
		return covered >= d-1e-9 && covered < d+c.Step()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SecondsAt and TickAt are inverse up to flooring.
func TestTickSecondsRoundTrip(t *testing.T) {
	c := NewClock(0.1)
	f := func(n uint32) bool {
		tk := Tick(n % 1000000)
		return c.TickAt(c.SecondsAt(tk)) == tk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
