package simtime

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewClockPanicsOnNonPositiveStep(t *testing.T) {
	for _, step := range []Seconds{0, -0.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewClock(%v) did not panic", step)
				}
			}()
			NewClock(step)
		}()
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock(0.01)
	if c.Now() != 0 {
		t.Fatalf("initial tick = %d, want 0", c.Now())
	}
	for i := 1; i <= 5; i++ {
		if got := c.Advance(); got != Tick(i) {
			t.Fatalf("Advance() = %d, want %d", got, i)
		}
	}
	if got := c.NowSeconds(); math.Abs(got-0.05) > 1e-12 {
		t.Errorf("NowSeconds() = %v, want 0.05", got)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("after Reset Now() = %d, want 0", c.Now())
	}
}

func TestTicksInRoundsUp(t *testing.T) {
	c := NewClock(0.01)
	cases := []struct {
		d    Seconds
		want Tick
	}{
		{0, 0},
		{-1, 0},
		{0.001, 1},
		{0.01, 1},
		{0.011, 2},
		{1.0, 100},
	}
	for _, tc := range cases {
		if got := c.TicksIn(tc.d); got != tc.want {
			t.Errorf("TicksIn(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}

func TestTickAtFloors(t *testing.T) {
	c := NewClock(0.5)
	if got := c.TickAt(1.2); got != 2 {
		t.Errorf("TickAt(1.2) = %d, want 2", got)
	}
	if got := c.TickAt(-3); got != 0 {
		t.Errorf("TickAt(-3) = %d, want 0", got)
	}
}

func TestHourOfDay(t *testing.T) {
	cases := []struct {
		s    Seconds
		want int
	}{
		{0, 0},
		{3599, 0},
		{3600, 1},
		{13 * 3600, 13},
		{24 * 3600, 0},
		{25 * 3600, 1},
	}
	for _, tc := range cases {
		if got := HourOfDay(tc.s); got != tc.want {
			t.Errorf("HourOfDay(%v) = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestFormatHMS(t *testing.T) {
	if got := FormatHMS(3723); got != "1:02:03" {
		t.Errorf("FormatHMS(3723) = %q, want 1:02:03", got)
	}
}

// Property: TicksIn always covers the duration, with less than one extra step.
func TestTicksInCoversDuration(t *testing.T) {
	c := NewClock(0.01)
	f := func(ms uint16) bool {
		d := Seconds(ms) / 1000
		ticks := c.TicksIn(d)
		covered := c.SecondsAt(ticks)
		return covered >= d-1e-9 && covered < d+c.Step()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SecondsAt and TickAt are inverse up to flooring.
func TestTickSecondsRoundTrip(t *testing.T) {
	c := NewClock(0.1)
	f := func(n uint32) bool {
		tk := Tick(n % 1000000)
		return c.TickAt(c.SecondsAt(tk)) == tk
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
