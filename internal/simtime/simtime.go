// Package simtime provides the discrete time base of the simulator.
//
// GDISim advances in fixed-size steps (ticks). All simulated durations are
// expressed in seconds as float64 and converted to whole ticks by the clock.
// The step size is configurable per scenario: validation runs (Chapter 5)
// use 10 ms so that operation service times spanning tens of milliseconds
// resolve cleanly, while day-long case studies (Chapters 6-7) use 100 ms.
package simtime

import (
	"fmt"
	"time"
)

// Tick is a discrete simulation step index. Tick 0 is the simulation start.
type Tick int64

// Seconds is a simulated duration or instant expressed in seconds.
type Seconds = float64

// Clock converts between ticks and simulated seconds and tracks the current
// simulation instant. The zero Clock is not usable; construct with NewClock.
type Clock struct {
	step Seconds // seconds per tick
	now  Tick
}

// NewClock returns a clock with the given step size in seconds.
// Step sizes must be positive; NewClock panics otherwise because a
// non-positive step renders every conversion meaningless.
func NewClock(step Seconds) *Clock {
	if step <= 0 {
		panic(fmt.Sprintf("simtime: non-positive step %v", step))
	}
	return &Clock{step: step}
}

// Step returns the configured step size in seconds.
func (c *Clock) Step() Seconds { return c.step }

// Now returns the current tick.
func (c *Clock) Now() Tick { return c.now }

// NowSeconds returns the current simulated time in seconds.
func (c *Clock) NowSeconds() Seconds { return Seconds(c.now) * c.step }

// Advance moves the clock forward one tick and returns the new tick.
func (c *Clock) Advance() Tick {
	c.now++
	return c.now
}

// AdvanceBy moves the clock forward n whole ticks in one jump — the
// fast-forward primitive of the event-horizon time loop — and returns the
// new tick. It panics on n < 1: a loop that advances by nothing (or
// backwards) is a scheduling bug, never a quiet no-op.
func (c *Clock) AdvanceBy(n Tick) Tick {
	if n < 1 {
		panic(fmt.Sprintf("simtime: AdvanceBy(%d); jumps must cover at least one tick", n))
	}
	c.now += n
	return c.now
}

// Reset rewinds the clock to tick zero.
func (c *Clock) Reset() { c.now = 0 }

// TicksIn returns the number of whole ticks covering d seconds, rounding up
// so that a strictly positive duration always occupies at least one tick.
func (c *Clock) TicksIn(d Seconds) Tick {
	if d <= 0 {
		return 0
	}
	t := Tick(d / c.step)
	if Seconds(t)*c.step < d {
		t++
	}
	return t
}

// WholeTicksBefore returns the largest k such that k whole ticks elapse in
// strictly less than d seconds (k*step < d), i.e. the number of ticks the
// clock can jump while still landing before the instant d seconds away.
// Non-positive and sub-step durations yield 0. The float division is
// corrected in both directions so exact multiples land on k = d/step - 1
// and near-boundary values resolve to the true strict inequality.
func (c *Clock) WholeTicksBefore(d Seconds) Tick {
	if d <= c.step {
		return 0
	}
	// Durations beyond any representable run (including +Inf) saturate:
	// converting them to Tick would be implementation-dependent. Callers
	// cap jumps with their own bounds well below this.
	if d/c.step >= 1<<62 {
		return 1 << 62
	}
	k := Tick(d / c.step)
	for k > 0 && Seconds(k)*c.step >= d {
		k--
	}
	for Seconds(k+1)*c.step < d {
		k++
	}
	return k
}

// SecondsAt returns the simulated time in seconds at tick t.
func (c *Clock) SecondsAt(t Tick) Seconds { return Seconds(t) * c.step }

// TickAt returns the tick containing the simulated instant s (floor). A tiny
// epsilon absorbs float error so that instants produced by SecondsAt map back
// to their originating tick.
func (c *Clock) TickAt(s Seconds) Tick {
	if s <= 0 {
		return 0
	}
	return Tick(s/c.step + 1e-9)
}

// HourOfDay returns the hour-of-day (0-23, GMT in the paper's scenarios) of
// the simulated instant s, for workloads defined as hourly curves.
func HourOfDay(s Seconds) int {
	const day = 24 * 3600
	sec := int64(s) % day
	if sec < 0 {
		sec += day
	}
	return int(sec / 3600)
}

// FormatHMS renders a simulated duration as H:MM:SS for reports.
func FormatHMS(s Seconds) string {
	d := time.Duration(s * float64(time.Second))
	h := int(d.Hours())
	m := int(d.Minutes()) % 60
	sec := int(d.Seconds()) % 60
	return fmt.Sprintf("%d:%02d:%02d", h, m, sec)
}
