package queueing

import "fmt"

// PS is a processor-sharing queue with a connection limit k and a constant
// per-task latency, modeling network links (M/M/1/k-PS, Fig. 3-6 right).
// Up to k tasks are served simultaneously; the service rate is divided
// uniformly among them. Each task additionally waits out a fixed latency
// (propagation delay) before its transfer begins, while holding one of the
// k connection slots, matching the paper's "latency ... added to the
// processing time of each task".
type PS struct {
	rate    float64 // units per second, shared among active tasks
	k       int     // max simultaneous connections
	latency float64 // seconds added ahead of each task's transfer

	waiting   fifo
	inService []*Task

	work     float64 // accumulated transmitted units (for utilization)
	arrivals uint64
	departs  uint64
}

// NewPS returns a processor-sharing queue with aggregate rate (units/second),
// connection limit k and constant latency in seconds. Panics on non-positive
// rate or k, or negative latency.
func NewPS(rate float64, k int, latency float64) *PS {
	if rate <= 0 || k <= 0 || latency < 0 {
		panic(fmt.Sprintf("queueing: invalid PS rate=%v k=%d latency=%v", rate, k, latency))
	}
	return &PS{rate: rate, k: k, latency: latency}
}

// Rate returns the aggregate service rate.
func (q *PS) Rate() float64 { return q.rate }

// Latency returns the constant per-task delay in seconds.
func (q *PS) Latency() float64 { return q.latency }

// MaxConnections returns the connection limit k.
func (q *PS) MaxConnections() int { return q.k }

// Enqueue adds a task. Its Delay field is initialized to the link latency.
func (q *PS) Enqueue(t *Task) {
	q.arrivals++
	t.Delay = q.latency
	q.waiting.push(t)
}

// Waiting reports tasks awaiting a connection slot.
func (q *PS) Waiting() int { return q.waiting.len() }

// InService reports tasks holding a connection slot.
func (q *PS) InService() int { return len(q.inService) }

// Idle reports whether the queue holds no work.
func (q *PS) Idle() bool { return len(q.inService) == 0 && q.waiting.len() == 0 }

// Arrivals returns the total number of tasks ever enqueued.
func (q *PS) Arrivals() uint64 { return q.arrivals }

// Departures returns the total number of tasks ever completed.
func (q *PS) Departures() uint64 { return q.departs }

// TakeBusy returns and resets the accumulated transmitted units. Dividing by
// rate x window yields the link utilization of the window.
func (q *PS) TakeBusy() float64 {
	w := q.work
	q.work = 0
	return w
}

func (q *PS) fill() {
	for len(q.inService) < q.k {
		t := q.waiting.pop()
		if t == nil {
			return
		}
		q.inService = append(q.inService, t)
	}
}

// Step advances the queue by dt seconds resolving completions exactly.
// Bandwidth is shared among all tasks holding a slot whose latency phase has
// elapsed; tasks still in the latency phase only count down their delay.
func (q *PS) Step(dt float64, done DoneFunc) {
	q.fill()
	remaining := dt
	for remaining > eps && len(q.inService) > 0 {
		transferring := 0
		for _, t := range q.inService {
			if t.Delay <= eps {
				transferring++
			}
		}
		share := 0.0
		if transferring > 0 {
			share = q.rate / float64(transferring)
		}
		// Next event: earliest latency expiry or transfer completion,
		// capped by the remaining step.
		sub := remaining
		for _, t := range q.inService {
			if t.Delay > eps {
				if t.Delay < sub {
					sub = t.Delay
				}
			} else if share > 0 {
				if ttc := t.Demand / share; ttc < sub {
					sub = ttc
				}
			}
		}
		if sub < 0 {
			sub = 0
		}
		kept := q.inService[:0]
		for _, t := range q.inService {
			if t.Delay > eps {
				t.Delay -= sub
				if t.Delay < eps {
					t.Delay = 0
				}
				kept = append(kept, t)
				continue
			}
			consumed := sub * share
			t.Demand -= consumed
			q.work += consumed
			if t.Demand <= eps*q.rate {
				t.Demand = 0
				q.departs++
				done(t)
			} else {
				kept = append(kept, t)
			}
		}
		for i := len(kept); i < len(q.inService); i++ {
			q.inService[i] = nil
		}
		q.inService = kept
		q.fill()
		remaining -= sub
		if sub == 0 {
			// Zero-demand transfers completed without consuming time;
			// iterate again to make progress on the rest.
			continue
		}
	}
}
