package queueing

import (
	"fmt"
	"math"
)

// PS is a processor-sharing queue with a connection limit k and a constant
// per-task latency, modeling network links (M/M/1/k-PS, Fig. 3-6 right).
// Up to k tasks are served simultaneously; the service rate is divided
// uniformly among them. Each task additionally waits out a fixed latency
// (propagation delay) before its transfer begins, while holding one of the
// k connection slots, matching the paper's "latency ... added to the
// processing time of each task".
type PS struct {
	rate    float64 // units per second, shared among active tasks
	k       int     // max simultaneous connections
	latency float64 // seconds added ahead of each task's transfer

	waiting   fifo
	inService []*Task
	offs      []float64 // Step scratch: per-slot expiry offsets

	work     float64 // accumulated transmitted units (for utilization)
	arrivals uint64
	departs  uint64

	notify func() // arrival-transition hook (see SetNotify)
}

// SetNotify installs a hook invoked on every Enqueue, with the same
// contract as FCFS.SetNotify: sequential-phase ingress queues only; the
// owning agent forwards it to its event-calendar invalidation.
func (q *PS) SetNotify(fn func()) { q.notify = fn }

// NewPS returns a processor-sharing queue with aggregate rate (units/second),
// connection limit k and constant latency in seconds. Panics on non-positive
// rate or k, or negative latency.
func NewPS(rate float64, k int, latency float64) *PS {
	if rate <= 0 || k <= 0 || latency < 0 {
		panic(fmt.Sprintf("queueing: invalid PS rate=%v k=%d latency=%v", rate, k, latency))
	}
	return &PS{rate: rate, k: k, latency: latency}
}

// Rate returns the aggregate service rate.
func (q *PS) Rate() float64 { return q.rate }

// SetRate changes the aggregate service rate, modeling partial degradation
// (a browned-out link). It takes effect from the next Step: in-flight tasks
// finish their remaining demand at the new share. Callers must invoke it
// from a sequential simulation phase and invalidate the owning agent's
// cached horizon (Sync before, MarkDirty after), exactly like an Enqueue.
// Panics on a non-positive rate — degradation never reaches zero; a dead
// link is modeled by failing it.
func (q *PS) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("queueing: invalid PS rate %v", rate))
	}
	q.rate = rate
}

// SetLatency changes the constant per-task delay. Only tasks enqueued after
// the change observe it: Enqueue snapshots the latency into the task's
// delay countdown, so transfers already in their latency phase keep the
// delay they started with. Panics on a negative latency.
func (q *PS) SetLatency(latency float64) {
	if latency < 0 {
		panic(fmt.Sprintf("queueing: invalid PS latency %v", latency))
	}
	q.latency = latency
}

// Latency returns the constant per-task delay in seconds.
func (q *PS) Latency() float64 { return q.latency }

// MaxConnections returns the connection limit k.
func (q *PS) MaxConnections() int { return q.k }

// Enqueue adds a task, firing the notify hook. Its Delay field is
// initialized to the link latency.
func (q *PS) Enqueue(t *Task) {
	q.arrivals++
	t.Delay = q.latency
	q.waiting.push(t)
	if q.notify != nil {
		q.notify()
	}
}

// Waiting reports tasks awaiting a connection slot.
func (q *PS) Waiting() int { return q.waiting.len() }

// InService reports tasks holding a connection slot.
func (q *PS) InService() int { return len(q.inService) }

// Idle reports whether the queue holds no work.
func (q *PS) Idle() bool { return len(q.inService) == 0 && q.waiting.len() == 0 }

// Arrivals returns the total number of tasks ever enqueued.
func (q *PS) Arrivals() uint64 { return q.arrivals }

// Departures returns the total number of tasks ever completed.
func (q *PS) Departures() uint64 { return q.departs }

// TakeBusy returns and resets the accumulated transmitted units. Dividing by
// rate x window yields the link utilization of the window.
func (q *PS) TakeBusy() float64 {
	w := q.work
	q.work = 0
	return w
}

func (q *PS) fill() {
	for len(q.inService) < q.k {
		t := q.waiting.pop()
		if t == nil {
			return
		}
		q.inService = append(q.inService, t)
	}
}

// Horizon returns the time in seconds until the queue's next internal
// event — the earliest latency expiry (which changes the bandwidth share)
// or transfer completion at the current share — assuming no further
// arrivals; +Inf when the queue is empty. Waiting tasks are first promoted
// into free connection slots, mirroring Step's own promotion. The result
// may undershoot the next departure (a latency expiry is not a departure),
// which is safe: horizons bound fast-forward jumps from below.
func (q *PS) Horizon() float64 {
	q.fill()
	if len(q.inService) == 0 {
		return math.Inf(1)
	}
	transferring := 0
	for _, t := range q.inService {
		if t.Delay <= eps {
			transferring++
		}
	}
	share := 0.0
	if transferring > 0 {
		share = q.rate / float64(transferring)
	}
	h := math.Inf(1)
	for _, t := range q.inService {
		if t.Delay > eps {
			if t.Delay < h {
				h = t.Delay
			}
		} else if share > 0 {
			if ttc := t.Demand / share; ttc < h {
				h = ttc
			}
		}
	}
	return h
}

// CanBulk reports whether the queue is guaranteed to produce no internal
// event — no transfer completion and no share-changing latency expiry —
// within the next span seconds, so that BulkStep may replace per-tick
// stepping.
func (q *PS) CanBulk(span float64) bool {
	q.fill()
	transferring := 0
	for _, t := range q.inService {
		if t.Delay <= eps {
			transferring++
		}
	}
	share := 0.0
	if transferring > 0 {
		share = q.rate / float64(transferring)
	}
	for _, t := range q.inService {
		if t.Delay > eps {
			if t.Delay <= span+bulkGuard {
				return false
			}
		} else if share > 0 && t.Demand/share <= span+bulkGuard {
			return false
		}
	}
	return true
}

// BulkStep advances the queue through n consecutive ticks of dt seconds in
// one call, bit-identical to n sequential Step(dt) calls. It must only be
// called when CanBulk(n*dt) holds: the bandwidth share is then constant
// across the window, so each tick subtracts the same consumed amount from
// every transferring task (and dt from every latency countdown), and the
// work accumulator receives the same constant once per transferring task
// per tick — a sequence whose float result is order-independent because
// every addend is identical.
func (q *PS) BulkStep(n int, dt float64) {
	if len(q.inService) == 0 {
		return
	}
	transferring := 0
	for _, t := range q.inService {
		if t.Delay <= eps {
			transferring++
		}
	}
	share := 0.0
	if transferring > 0 {
		share = q.rate / float64(transferring)
	}
	consumed := dt * share
	for _, t := range q.inService {
		if t.Delay > eps {
			d := t.Delay
			for i := 0; i < n; i++ {
				d -= dt
			}
			t.Delay = d
		} else {
			d := t.Demand
			for i := 0; i < n; i++ {
				d -= consumed
			}
			t.Demand = d
		}
	}
	for i := n * transferring; i > 0; i-- {
		q.work += consumed
	}
}

// Step advances the queue by dt seconds resolving completions exactly.
// Bandwidth is shared among all tasks holding a slot whose latency phase
// has elapsed; tasks still in the latency phase only count down their
// delay. A latency countdown decrements exactly once per Step, by the full
// dt — the same per-tick arithmetic BulkStep replays in bulk — so a
// countdown's float trajectory depends only on the whole ticks elapsed
// since its enqueue, never on how other tasks' completions sub-split a
// step. That invariant is what lets the sharded runtime enqueue a
// cross-shard transfer whole ticks after its posting instant and
// reconstruct the countdown bit-exactly (ReplayLatency). The pre-decrement
// delay doubles as each task's expiry offset inside this step: a task
// starts transferring once the resolved sub-steps cover its offset. A task
// promoted out of the waiting line mid-step (a slot freed under
// contention) starts its countdown at the next step.
func (q *PS) Step(dt float64, done DoneFunc) {
	q.fill()
	if len(q.inService) == 0 {
		return
	}
	offs := q.offs[:0]
	for _, t := range q.inService {
		off := 0.0
		if t.Delay > eps {
			off = t.Delay
			t.Delay -= dt
			if t.Delay < eps {
				t.Delay = 0
			}
		}
		offs = append(offs, off)
	}
	elapsed := 0.0
	remaining := dt
	for remaining > eps && len(q.inService) > 0 {
		transferring := 0
		for i := range q.inService {
			if offs[i] <= elapsed+eps {
				transferring++
			}
		}
		share := 0.0
		if transferring > 0 {
			share = q.rate / float64(transferring)
		}
		// Next event: earliest latency expiry or transfer completion,
		// capped by the remaining step. An unexpired offset exceeds
		// elapsed by more than eps, so every boundary sub-step is a real
		// advance and the loop terminates.
		sub := remaining
		for i, t := range q.inService {
			if off := offs[i]; off > elapsed+eps {
				if b := off - elapsed; b < sub {
					sub = b
				}
			} else if share > 0 {
				if ttc := t.Demand / share; ttc < sub {
					sub = ttc
				}
			}
		}
		if sub < 0 {
			sub = 0
		}
		kept := q.inService[:0]
		keptOffs := offs[:0]
		for i, t := range q.inService {
			if offs[i] > elapsed+eps {
				kept = append(kept, t)
				keptOffs = append(keptOffs, offs[i])
				continue
			}
			consumed := sub * share
			t.Demand -= consumed
			q.work += consumed
			if t.Demand <= eps*q.rate {
				t.Demand = 0
				q.departs++
				done(t)
			} else {
				kept = append(kept, t)
				keptOffs = append(keptOffs, offs[i])
			}
		}
		for i := len(kept); i < len(q.inService); i++ {
			q.inService[i] = nil
		}
		q.inService = kept
		offs = keptOffs
		promoted := len(q.inService)
		q.fill()
		for i := promoted; i < len(q.inService); i++ {
			offs = append(offs, math.Inf(1))
		}
		elapsed += sub
		remaining -= sub
	}
	q.offs = offs
}

// ReplayLatency reconstructs the latency countdown of a task that was
// enqueued n whole steps of dt seconds ago: the once-per-Step
// decrement-and-clamp arithmetic Step applies to an in-service task (and
// BulkStep replays per tick — the clamp cannot fire inside a bulk window,
// so the two histories agree), evaluated n times from the latency lat the
// task snapshotted at its original enqueue instant. A deferred enqueue can
// therefore be applied whole ticks late and land bit-identically on the
// state the inline enqueue would have reached, provided the task would
// have held a connection slot throughout — the caller checks the slot was
// free and the countdown has not expired (n strictly inside the latency).
func ReplayLatency(lat float64, n int, dt float64) float64 {
	d := lat
	for ; n > 0; n-- {
		d -= dt
		if d < eps {
			d = 0
		}
	}
	return d
}
