package queueing

import (
	"math"
	"math/rand/v2"
)

// DriveResult summarizes a stochastic drive of a queue, used to cross-check
// the discrete-time queue implementations against analytic M/M/c results.
type DriveResult struct {
	Completed    int
	MeanResponse float64 // mean sojourn time (arrival to completion)
	Utilization  float64 // busy server-seconds / (servers x horizon)
}

// Drive feeds a queue Poisson arrivals (rate lambda) with exponential
// demands (mean demand mean = rate/mu units so that service time is
// Exp(mu)), stepping the queue with step dt for the given horizon. It
// returns completion statistics. The rng makes runs deterministic.
//
// Drive exists so tests and benchmarks can validate FCFS and PS queues
// against the closed-form M/M/c formulas in this package.
func Drive(q Queue, servers int, lambda, mu, horizon, dt float64, rng *rand.Rand) DriveResult {
	type rec struct{ arrive float64 }
	started := map[uint64]rec{}
	var sumResp float64
	completed := 0
	busy := 0.0

	nextArrival := expSample(rng, lambda)
	var nextID uint64
	now := 0.0
	rate := queueRate(q)
	for now < horizon {
		stepEnd := now + dt
		for nextArrival <= stepEnd {
			// Enqueue at step granularity; arrival-time bookkeeping keeps
			// the exact arrival instant for response-time accounting.
			nextID++
			demand := expSample(rng, mu) * rate
			t := &Task{ID: nextID, Demand: demand}
			started[t.ID] = rec{arrive: nextArrival}
			q.Enqueue(t)
			nextArrival += expSample(rng, lambda)
		}
		q.Step(dt, func(t *Task) {
			r := started[t.ID]
			delete(started, t.ID)
			sumResp += stepEnd - r.arrive
			completed++
		})
		now = stepEnd
	}
	busy = q.TakeBusy()
	if ps, ok := q.(*PS); ok {
		// PS accumulates transmitted units; convert to seconds of
		// full-rate transmission so utilization is comparable.
		busy /= ps.Rate()
		servers = 1
	}
	res := DriveResult{Completed: completed}
	if completed > 0 {
		res.MeanResponse = sumResp / float64(completed)
	}
	if servers > 0 && horizon > 0 {
		res.Utilization = busy / (float64(servers) * horizon)
	}
	return res
}

func queueRate(q Queue) float64 {
	switch v := q.(type) {
	case *FCFS:
		return v.Rate()
	case *PS:
		return v.Rate()
	default:
		return 1
	}
}

func expSample(rng *rand.Rand, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}
