package queueing

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func collect(out *[]*Task) DoneFunc {
	return func(t *Task) { *out = append(*out, t) }
}

func TestNewFCFSPanics(t *testing.T) {
	cases := []struct {
		servers int
		rate    float64
	}{{0, 1}, {-1, 1}, {1, 0}, {1, -2}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFCFS(%d,%v) did not panic", c.servers, c.rate)
				}
			}()
			NewFCFS(c.servers, c.rate)
		}()
	}
}

func TestFCFSSingleTaskExactService(t *testing.T) {
	q := NewFCFS(1, 10) // 10 units/sec
	q.Enqueue(&Task{ID: 1, Demand: 5})
	var done []*Task
	q.Step(0.25, collect(&done)) // half the 0.5s service time
	if len(done) != 0 {
		t.Fatalf("task completed early")
	}
	q.Step(0.25, collect(&done))
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("task not completed after exact service time: %v", done)
	}
	if !q.Idle() {
		t.Error("queue should be idle")
	}
}

func TestFCFSFIFOOrder(t *testing.T) {
	q := NewFCFS(1, 1)
	for i := 1; i <= 5; i++ {
		q.Enqueue(&Task{ID: uint64(i), Demand: 1})
	}
	var done []*Task
	q.Step(10, collect(&done))
	if len(done) != 5 {
		t.Fatalf("completed %d, want 5", len(done))
	}
	for i, task := range done {
		if task.ID != uint64(i+1) {
			t.Errorf("completion %d has ID %d, want %d", i, task.ID, i+1)
		}
	}
}

func TestFCFSMultiServerParallelism(t *testing.T) {
	q := NewFCFS(2, 1)
	q.Enqueue(&Task{ID: 1, Demand: 1})
	q.Enqueue(&Task{ID: 2, Demand: 1})
	var done []*Task
	q.Step(1.0, collect(&done))
	if len(done) != 2 {
		t.Fatalf("two servers should finish both unit tasks in 1s, got %d", len(done))
	}
}

func TestFCFSSubStepCompletionChainsWork(t *testing.T) {
	// Two 0.5s tasks on one server must both finish within a single 1s step.
	q := NewFCFS(1, 1)
	q.Enqueue(&Task{ID: 1, Demand: 0.5})
	q.Enqueue(&Task{ID: 2, Demand: 0.5})
	var done []*Task
	q.Step(1.0, collect(&done))
	if len(done) != 2 {
		t.Fatalf("sub-step chaining broken: completed %d, want 2", len(done))
	}
}

func TestFCFSZeroDemandCompletesWithoutTime(t *testing.T) {
	q := NewFCFS(1, 1)
	q.Enqueue(&Task{ID: 1, Demand: 0})
	q.Enqueue(&Task{ID: 2, Demand: 1})
	var done []*Task
	q.Step(1.0, collect(&done))
	if len(done) != 2 {
		t.Fatalf("completed %d, want 2 (zero-demand must not consume time)", len(done))
	}
}

func TestFCFSBusyAccounting(t *testing.T) {
	q := NewFCFS(2, 1)
	q.Enqueue(&Task{ID: 1, Demand: 1})
	var done []*Task
	q.Step(2.0, collect(&done))
	busy := q.TakeBusy()
	if math.Abs(busy-1.0) > 1e-9 {
		t.Errorf("busy = %v, want 1.0 server-seconds", busy)
	}
	if again := q.TakeBusy(); again != 0 {
		t.Errorf("TakeBusy did not reset: %v", again)
	}
}

func TestFCFSCounters(t *testing.T) {
	q := NewFCFS(1, 1)
	q.Enqueue(&Task{ID: 1, Demand: 0.5})
	q.Enqueue(&Task{ID: 2, Demand: 0.5})
	if q.Arrivals() != 2 {
		t.Errorf("arrivals = %d, want 2", q.Arrivals())
	}
	var done []*Task
	q.Step(0.6, collect(&done))
	if q.Departures() != 1 {
		t.Errorf("departures = %d, want 1", q.Departures())
	}
	if q.Waiting() != 0 || q.InService() != 1 {
		t.Errorf("waiting=%d inService=%d, want 0/1", q.Waiting(), q.InService())
	}
}

// Property: work conservation — total demand enqueued equals busy time x rate
// once the queue drains, for any batch of positive demands.
func TestFCFSWorkConservation(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 || len(raw) > 64 {
			return true
		}
		q := NewFCFS(3, 7)
		total := 0.0
		for i, r := range raw {
			d := float64(r%1000)/100 + 0.01
			total += d
			q.Enqueue(&Task{ID: uint64(i), Demand: d})
		}
		var done []*Task
		for i := 0; i < 100000 && !q.Idle(); i++ {
			q.Step(0.05, collect(&done))
		}
		if len(done) != len(raw) {
			return false
		}
		busy := q.TakeBusy()
		return math.Abs(busy*7-total) < 1e-6*float64(len(raw))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: completions never exceed arrivals and the queue reports Idle
// exactly when everything completed.
func TestFCFSIdleConsistency(t *testing.T) {
	f := func(n uint8, steps uint8) bool {
		q := NewFCFS(2, 2)
		count := int(n%20) + 1
		for i := 0; i < count; i++ {
			q.Enqueue(&Task{ID: uint64(i), Demand: 1})
		}
		var done []*Task
		for i := 0; i < int(steps%50); i++ {
			q.Step(0.1, collect(&done))
		}
		if len(done) > count {
			return false
		}
		return q.Idle() == (len(done) == count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Cross-validation: discrete-time FCFS under Poisson/exponential traffic
// reproduces analytic M/M/1 and M/M/c mean response times.
func TestFCFSMatchesMMcTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("stochastic cross-validation skipped in -short")
	}
	cases := []struct {
		servers int
		lambda  float64
		mu      float64
	}{
		{1, 0.5, 1.0},
		{1, 0.8, 1.0},
		{4, 2.4, 1.0},
	}
	for _, c := range cases {
		q := NewFCFS(c.servers, 1.0) // rate 1 unit/sec, demand in service-seconds
		rng := rand.New(rand.NewPCG(42, uint64(c.servers)))
		res := Drive(q, c.servers, c.lambda, c.mu, 60000, 0.01, rng)
		m := MMc{C: c.servers, Lambda: c.lambda, Mu: c.mu}
		want, err := m.MeanResponse()
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(res.MeanResponse-want) / want
		if relErr > 0.08 {
			t.Errorf("M/M/%d lambda=%v: simulated W=%.4f analytic W=%.4f relErr=%.1f%%",
				c.servers, c.lambda, res.MeanResponse, want, relErr*100)
		}
		wantUtil := m.Utilization()
		if math.Abs(res.Utilization-wantUtil) > 0.03 {
			t.Errorf("M/M/%d utilization: simulated %.3f analytic %.3f",
				c.servers, res.Utilization, wantUtil)
		}
	}
}

func TestFCFSHorizon(t *testing.T) {
	q := NewFCFS(2, 10)
	if h := q.Horizon(); !math.IsInf(h, 1) {
		t.Fatalf("empty queue horizon = %v, want +Inf", h)
	}
	q.Enqueue(&Task{ID: 1, Demand: 5})  // 0.5 s
	q.Enqueue(&Task{ID: 2, Demand: 20}) // 2.0 s
	q.Enqueue(&Task{ID: 3, Demand: 1})  // waits for a server
	if h := q.Horizon(); h != 0.5 {
		t.Fatalf("horizon = %v, want 0.5 (earliest in-service completion)", h)
	}
	// Horizon promoted the first two tasks into service, exactly as the
	// next Step would have; the third still waits.
	if q.InService() != 2 || q.Waiting() != 1 {
		t.Fatalf("after Horizon: in-service %d waiting %d, want 2 and 1", q.InService(), q.Waiting())
	}
	// A waiting task never bounds the horizon: it starts service only
	// after a departure, which is itself the earlier event.
	var done []*Task
	q.Step(0.5, collect(&done))
	if len(done) != 1 {
		t.Fatalf("completed %d, want 1", len(done))
	}
	if h := q.Horizon(); h != 0.1 {
		t.Fatalf("horizon after refill = %v, want 0.1", h)
	}
}

// TestFCFSBulkStepBitIdentical drives one queue with per-tick Steps and a
// clone with CanBulk/BulkStep windows, asserting bit-identical demands and
// busy accumulation — the contract the fast-forward replay relies on.
func TestFCFSBulkStepBitIdentical(t *testing.T) {
	mk := func() *FCFS {
		q := NewFCFS(3, 7.3)
		q.Enqueue(&Task{ID: 1, Demand: 11.13})
		q.Enqueue(&Task{ID: 2, Demand: 29.7})
		q.Enqueue(&Task{ID: 3, Demand: 5.21})
		q.Enqueue(&Task{ID: 4, Demand: 8.8}) // waiting
		return q
	}
	const dt = 0.01
	ref, bulk := mk(), mk()
	var refDone, bulkDone []*Task
	steps := 0
	for !bulk.Idle() && steps < 10000 {
		n := 1
		for w := 2; w <= 64; w *= 2 {
			if bulk.CanBulk(float64(w) * dt) {
				n = w
			}
		}
		if n == 1 {
			bulk.Step(dt, collect(&bulkDone))
		} else {
			bulk.BulkStep(n, dt)
		}
		for i := 0; i < n; i++ {
			ref.Step(dt, collect(&refDone))
		}
		steps += n
	}
	if !ref.Idle() {
		t.Fatalf("reference queue still busy after %d ticks", steps)
	}
	if len(refDone) != 4 || len(bulkDone) != 4 {
		t.Fatalf("completions: ref %d bulk %d, want 4 each", len(refDone), len(bulkDone))
	}
	for i := range refDone {
		if refDone[i].ID != bulkDone[i].ID {
			t.Errorf("completion %d: ref ID %d bulk ID %d", i, refDone[i].ID, bulkDone[i].ID)
		}
	}
	if rb, bb := ref.TakeBusy(), bulk.TakeBusy(); rb != bb {
		t.Errorf("busy accumulators differ: %v vs %v", rb, bb)
	}
}
