// Package queueing implements the queue primitives that the hardware models
// of GDISim are built from (Chapter 3): multi-server FCFS queues for CPUs,
// NICs, switches and disks; processor-sharing queues with a connection limit
// for network links; and analytic M/M/c formulas used to cross-validate the
// discrete-time implementations.
//
// Queues advance in discrete time steps. Within a step they resolve service
// completions exactly (sub-step event loop), so throughput is not quantized
// by the step size. Demands are deterministic values carried by messages;
// stochastic behaviour enters the simulator through arrivals and cache hits,
// exactly as in the paper where messages convey fixed profiled R arrays.
package queueing

// Task is a unit of work flowing through a queue. Demand is expressed in the
// unit the queue serves (CPU cycles, bits, bytes). Payload carries an opaque
// reference to the owning flow so the engine can resume the cascade when the
// task completes.
type Task struct {
	ID      uint64
	Demand  float64 // remaining demand in queue units
	Delay   float64 // remaining fixed delay in seconds (link latency)
	Payload any
}

// DoneFunc is invoked by a queue when a task finishes service.
type DoneFunc func(*Task)

// Queue is the common interface of the discrete-time queue implementations.
type Queue interface {
	// Enqueue adds a task at the tail of the queue.
	Enqueue(*Task)
	// Step advances simulated time by dt seconds, invoking done for every
	// task that completes within the step, in completion order.
	Step(dt float64, done DoneFunc)
	// Waiting reports the number of tasks not yet in service.
	Waiting() int
	// InService reports the number of tasks currently being served.
	InService() int
	// Idle reports whether the queue holds no work at all.
	Idle() bool
	// Horizon reports the time in seconds until the queue's next internal
	// event (departure, or a share-changing latency expiry for PS queues)
	// assuming no further arrivals; +Inf when empty. Horizons bound
	// fast-forward jumps from below: undershooting is safe, overshooting
	// would skip an event and is a correctness bug.
	Horizon() float64
	// TakeBusy returns the accumulated busy time (in server-seconds for
	// FCFS queues, in seconds-of-transmission for PS queues) since the
	// last call, and resets the accumulator. Collectors call this once
	// per measurement window.
	TakeBusy() float64
}

// fifo is a simple slice-backed FIFO with amortized O(1) operations.
type fifo struct {
	items []*Task
	head  int
}

func (f *fifo) push(t *Task) { f.items = append(f.items, t) }

func (f *fifo) pop() *Task {
	if f.head >= len(f.items) {
		return nil
	}
	t := f.items[f.head]
	f.items[f.head] = nil
	f.head++
	// Reclaim space once the consumed prefix dominates.
	if f.head > 64 && f.head*2 >= len(f.items) {
		n := copy(f.items, f.items[f.head:])
		f.items = f.items[:n]
		f.head = 0
	}
	return t
}

func (f *fifo) len() int { return len(f.items) - f.head }
