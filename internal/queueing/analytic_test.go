package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: P(wait) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		got, err := ErlangC(1, rho)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(1,%v) = %v, want %v", rho, got, rho)
		}
	}
	// Classic telephone-engineering value: c=10, a=7 Erlangs => ~0.2217.
	got, err := ErlangC(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2217) > 0.001 {
		t.Errorf("ErlangC(10,7) = %v, want ~0.2217", got)
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 0.5); err == nil {
		t.Error("ErlangC(0,...) should error")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("ErlangC with negative load should error")
	}
	if _, err := ErlangC(2, 2); err == nil {
		t.Error("ErlangC at saturation should error")
	}
}

func TestMMcMeanWaitMM1(t *testing.T) {
	// M/M/1: Wq = rho/(mu-lambda).
	m := MMc{C: 1, Lambda: 0.5, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5 / (1 - 0.5); math.Abs(wq-want) > 1e-12 {
		t.Errorf("Wq = %v, want %v", wq, want)
	}
	w, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 / (1 - 0.5); math.Abs(w-want) > 1e-12 {
		t.Errorf("W = %v, want %v", w, want)
	}
}

func TestMMcLittleLaw(t *testing.T) {
	m := MMc{C: 4, Lambda: 3, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	lq, err := m.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lq-m.Lambda*wq) > 1e-12 {
		t.Errorf("Little's law violated: Lq=%v lambda*Wq=%v", lq, m.Lambda*wq)
	}
}

// Property: Erlang C is monotone increasing in offered load and within [0,1].
func TestErlangCMonotoneInLoad(t *testing.T) {
	f := func(rawA, rawB uint16) bool {
		c := 8
		a := float64(rawA%700) / 100 // [0, 7)
		b := float64(rawB%700) / 100
		if a > b {
			a, b = b, a
		}
		pa, err1 := ErlangC(c, a)
		pb, err2 := ErlangC(c, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return pa >= 0 && pb <= 1 && pa <= pb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding servers never increases the waiting probability.
func TestErlangCMonotoneInServers(t *testing.T) {
	f := func(raw uint16) bool {
		a := float64(raw%150)/100 + 0.1 // [0.1, 1.6)
		p2, err1 := ErlangC(2, a)
		p4, err2 := ErlangC(4, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return p4 <= p2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMM1PS(t *testing.T) {
	w, err := MM1PS(0.5, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 + 0.1; math.Abs(w-want) > 1e-12 {
		t.Errorf("MM1PS = %v, want %v", w, want)
	}
	if _, err := MM1PS(1, 1, 0); err == nil {
		t.Error("MM1PS at saturation should error")
	}
}

func TestForkJoinZeroLoadExp(t *testing.T) {
	got, err := ForkJoinZeroLoadExp(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 0.5 + 1.0/3.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ForkJoinZeroLoadExp(3,2) = %v, want %v", got, want)
	}
	if _, err := ForkJoinZeroLoadExp(0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestRequiredServers(t *testing.T) {
	// lambda=3, mu=1: at least 4 servers for stability; more for tight SLAs.
	c, err := RequiredServers(3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c < 4 {
		t.Errorf("RequiredServers returned unstable count %d", c)
	}
	m := MMc{C: c, Lambda: 3, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if wq > 0.5 {
		t.Errorf("returned c=%d violates SLA: Wq=%v", c, wq)
	}
	if c > 4 {
		// The next smaller count must violate the SLA (minimality).
		m = MMc{C: c - 1, Lambda: 3, Mu: 1}
		if wq, err := m.MeanWait(); err == nil && wq <= 0.5 {
			t.Errorf("c=%d is not minimal, c-1 also satisfies SLA", c)
		}
	}
	if _, err := RequiredServers(-1, 1, 1); err == nil {
		t.Error("negative lambda should error")
	}
}
