package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestErlangCKnownValues(t *testing.T) {
	// M/M/1: P(wait) = rho.
	for _, rho := range []float64{0.1, 0.5, 0.9} {
		got, err := ErlangC(1, rho)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-rho) > 1e-12 {
			t.Errorf("ErlangC(1,%v) = %v, want %v", rho, got, rho)
		}
	}
	// Classic telephone-engineering value: c=10, a=7 Erlangs => ~0.2217.
	got, err := ErlangC(10, 7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.2217) > 0.001 {
		t.Errorf("ErlangC(10,7) = %v, want ~0.2217", got)
	}
}

func TestErlangCErrors(t *testing.T) {
	if _, err := ErlangC(0, 0.5); err == nil {
		t.Error("ErlangC(0,...) should error")
	}
	if _, err := ErlangC(2, -1); err == nil {
		t.Error("ErlangC with negative load should error")
	}
	if _, err := ErlangC(2, 2); err == nil {
		t.Error("ErlangC at saturation should error")
	}
}

func TestMMcMeanWaitMM1(t *testing.T) {
	// M/M/1: Wq = rho/(mu-lambda).
	m := MMc{C: 1, Lambda: 0.5, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.5 / (1 - 0.5); math.Abs(wq-want) > 1e-12 {
		t.Errorf("Wq = %v, want %v", wq, want)
	}
	w, err := m.MeanResponse()
	if err != nil {
		t.Fatal(err)
	}
	if want := 1 / (1 - 0.5); math.Abs(w-want) > 1e-12 {
		t.Errorf("W = %v, want %v", w, want)
	}
}

func TestMMcLittleLaw(t *testing.T) {
	m := MMc{C: 4, Lambda: 3, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	lq, err := m.MeanQueueLength()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lq-m.Lambda*wq) > 1e-12 {
		t.Errorf("Little's law violated: Lq=%v lambda*Wq=%v", lq, m.Lambda*wq)
	}
}

// Property: Erlang C is monotone increasing in offered load and within [0,1].
func TestErlangCMonotoneInLoad(t *testing.T) {
	f := func(rawA, rawB uint16) bool {
		c := 8
		a := float64(rawA%700) / 100 // [0, 7)
		b := float64(rawB%700) / 100
		if a > b {
			a, b = b, a
		}
		pa, err1 := ErlangC(c, a)
		pb, err2 := ErlangC(c, b)
		if err1 != nil || err2 != nil {
			return false
		}
		return pa >= 0 && pb <= 1 && pa <= pb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adding servers never increases the waiting probability.
func TestErlangCMonotoneInServers(t *testing.T) {
	f := func(raw uint16) bool {
		a := float64(raw%150)/100 + 0.1 // [0.1, 1.6)
		p2, err1 := ErlangC(2, a)
		p4, err2 := ErlangC(4, a)
		if err1 != nil || err2 != nil {
			return false
		}
		return p4 <= p2+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMM1PS(t *testing.T) {
	w, err := MM1PS(0.5, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2.0 + 0.1; math.Abs(w-want) > 1e-12 {
		t.Errorf("MM1PS = %v, want %v", w, want)
	}
	if _, err := MM1PS(1, 1, 0); err == nil {
		t.Error("MM1PS at saturation should error")
	}
}

func TestForkJoinZeroLoadExp(t *testing.T) {
	got, err := ForkJoinZeroLoadExp(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + 0.5 + 1.0/3.0) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ForkJoinZeroLoadExp(3,2) = %v, want %v", got, want)
	}
	if _, err := ForkJoinZeroLoadExp(0, 1); err == nil {
		t.Error("n=0 should error")
	}
}

func TestRequiredServers(t *testing.T) {
	// lambda=3, mu=1: at least 4 servers for stability; more for tight SLAs.
	c, err := RequiredServers(3, 1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c < 4 {
		t.Errorf("RequiredServers returned unstable count %d", c)
	}
	m := MMc{C: c, Lambda: 3, Mu: 1}
	wq, err := m.MeanWait()
	if err != nil {
		t.Fatal(err)
	}
	if wq > 0.5 {
		t.Errorf("returned c=%d violates SLA: Wq=%v", c, wq)
	}
	if c > 4 {
		// The next smaller count must violate the SLA (minimality).
		m = MMc{C: c - 1, Lambda: 3, Mu: 1}
		if wq, err := m.MeanWait(); err == nil && wq <= 0.5 {
			t.Errorf("c=%d is not minimal, c-1 also satisfies SLA", c)
		}
	}
	if _, err := RequiredServers(-1, 1, 1); err == nil {
		t.Error("negative lambda should error")
	}
}

func TestErlangCSaturatedTyped(t *testing.T) {
	for _, tc := range []struct{ c int; a float64 }{{1, 1}, {2, 2}, {4, 7.5}} {
		_, err := ErlangC(tc.c, tc.a)
		if !errors.Is(err, ErrSaturated) {
			t.Errorf("ErlangC(%d,%v) = %v, want ErrSaturated", tc.c, tc.a, err)
		}
	}
	// Argument errors are not saturation.
	if _, err := ErlangC(0, 0.5); errors.Is(err, ErrSaturated) {
		t.Error("ErlangC(0,...) should not be ErrSaturated")
	}
	if _, err := ErlangC(2, -1); errors.Is(err, ErrSaturated) {
		t.Error("ErlangC with negative load should not be ErrSaturated")
	}
}

// TestSaturationGuardTripsFirst is the fluid-tier guard property: whenever a
// ceiling utilization stays strictly below a guard value below one — the
// exact predicate internal/fluid uses to admit a segment to the analytic
// path — Erlang C evaluated at any load up to that ceiling cannot return
// ErrSaturated, so the guard always trips strictly before the analytic
// machinery errors.
func TestSaturationGuardTripsFirst(t *testing.T) {
	prop := func(cRaw uint8, muRaw, guardRaw, loadRaw uint16) bool {
		c := int(cRaw)%64 + 1
		mu := 0.01 + float64(muRaw)/65535*100
		guard := 0.05 + float64(guardRaw)/65535*0.94 // in [0.05, 0.99]
		rhoCeil := float64(loadRaw) / 65535 * 1.5    // offered ceilings up to 1.5x capacity
		lambdaCeil := rhoCeil * float64(c) * mu
		if rhoCeil >= guard {
			return true // guard trips: the fluid tier stays discrete, ErlangC is never consulted
		}
		for _, frac := range []float64{0.1, 0.5, 1.0} {
			if _, err := ErlangC(c, frac*lambdaCeil/mu); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWaitQuantileKnownValues(t *testing.T) {
	// M/M/1: Pw = rho, so the p-quantile is ln(rho/(1-p))/(mu-lambda) when
	// positive.
	m := MMc{C: 1, Lambda: 0.6, Mu: 1}
	q, err := m.WaitQuantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Log(0.6/0.1) / (1 - 0.6); math.Abs(q-want) > 1e-9 {
		t.Errorf("WaitQuantile(0.9) = %v, want %v", q, want)
	}
	// Below the zero atom the quantile is exactly zero: P(W=0) = 1-Pw = 0.4.
	q, err = m.WaitQuantile(0.3)
	if err != nil {
		t.Fatal(err)
	}
	if q != 0 {
		t.Errorf("WaitQuantile(0.3) = %v, want 0 (inside the atom)", q)
	}
}

func TestResponseQuantileKnownValues(t *testing.T) {
	// M/M/1 FCFS sojourn is exactly Exp(mu-lambda).
	m := MMc{C: 1, Lambda: 0.5, Mu: 2}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		q, err := m.ResponseQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		want := -math.Log(1-p) / (2 - 0.5)
		if math.Abs(q-want) > 1e-9*want {
			t.Errorf("ResponseQuantile(%v) = %v, want %v", p, q, want)
		}
	}
	// Vanishing load, any c: the sojourn degenerates to the service time
	// Exp(mu).
	m = MMc{C: 8, Lambda: 1e-9, Mu: 3}
	q, err := m.ResponseQuantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if want := -math.Log(0.1) / 3; math.Abs(q-want) > 1e-6*want {
		t.Errorf("light-load ResponseQuantile(0.9) = %v, want %v", q, want)
	}
}

func TestResponseQuantileMonotoneAndConsistent(t *testing.T) {
	m := MMc{C: 4, Lambda: 3.2, Mu: 1}
	prev := 0.0
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		q, err := m.ResponseQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if q <= prev {
			t.Errorf("ResponseQuantile not increasing: p=%v -> %v after %v", p, q, prev)
		}
		prev = q
	}
	// The sojourn quantile dominates the waiting quantile at every p.
	for _, p := range []float64{0.5, 0.9} {
		wq, err := m.WaitQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		rq, err := m.ResponseQuantile(p)
		if err != nil {
			t.Fatal(err)
		}
		if rq <= wq {
			t.Errorf("ResponseQuantile(%v)=%v <= WaitQuantile(%v)=%v", p, rq, p, wq)
		}
	}
}
