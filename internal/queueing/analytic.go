package queueing

import (
	"fmt"
	"math"
)

// Analytic M/M/c results (Kendall's notation, Appendix A of the thesis).
// These closed forms are the classical queueing-theory counterparts of the
// simulated queues and are used in tests to cross-validate the discrete-time
// implementations against theory.

// ErlangC returns the probability that an arriving customer must wait in an
// M/M/c system with offered load a = lambda/mu (in Erlangs). It requires
// a < c for stability.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("queueing: ErlangC needs c > 0, got %d", c)
	}
	if a < 0 {
		return 0, fmt.Errorf("queueing: ErlangC needs a >= 0, got %v", a)
	}
	if a >= float64(c) {
		return 0, fmt.Errorf("queueing: unstable system a=%v >= c=%d", a, c)
	}
	// Iterative Erlang-B then convert to Erlang-C for numerical stability.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMc summarizes an M/M/c queue with arrival rate lambda and per-server
// service rate mu.
type MMc struct {
	C      int
	Lambda float64
	Mu     float64
}

// Utilization returns rho = lambda/(c*mu).
func (m MMc) Utilization() float64 { return m.Lambda / (float64(m.C) * m.Mu) }

// MeanWait returns the mean time spent waiting in queue (Wq).
func (m MMc) MeanWait() (float64, error) {
	pw, err := ErlangC(m.C, m.Lambda/m.Mu)
	if err != nil {
		return 0, err
	}
	return pw / (float64(m.C)*m.Mu - m.Lambda), nil
}

// MeanResponse returns the mean sojourn time (W = Wq + 1/mu).
func (m MMc) MeanResponse() (float64, error) {
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return wq + 1/m.Mu, nil
}

// MeanQueueLength returns the mean number waiting (Lq), by Little's law.
func (m MMc) MeanQueueLength() (float64, error) {
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return m.Lambda * wq, nil
}

// MM1PS gives the mean sojourn time of an M/M/1 processor-sharing queue,
// which equals the M/M/1-FCFS mean response (1/(mu-lambda)) by symmetry of
// the PS discipline, plus any constant latency.
func MM1PS(lambda, mu, latency float64) (float64, error) {
	if lambda >= mu {
		return 0, fmt.Errorf("queueing: unstable PS lambda=%v >= mu=%v", lambda, mu)
	}
	return 1/(mu-lambda) + latency, nil
}

// ForkJoinZeroLoadExp returns the exact mean completion time of an n-way
// fork-join whose branches have independent Exp(mu) service times and no
// queueing (zero load): E[max of n iid exponentials] = H_n / mu. It is the
// theoretical reference for the RAID/SAN fork-join structures under light
// load (Figs. 3-7 and 3-8).
func ForkJoinZeroLoadExp(n int, mu float64) (float64, error) {
	if n <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: ForkJoinZeroLoadExp needs n > 0, mu > 0")
	}
	return harmonic(n) / mu, nil
}

func harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// RequiredServers returns the minimum number of servers c such that an M/M/c
// queue with the given lambda and mu keeps mean waiting time below maxWait.
// It is the capacity-planning primitive behind the examples/capacity tool.
func RequiredServers(lambda, mu, maxWait float64) (int, error) {
	if lambda <= 0 || mu <= 0 || maxWait <= 0 {
		return 0, fmt.Errorf("queueing: RequiredServers needs positive arguments")
	}
	minC := int(math.Ceil(lambda/mu + 1e-9))
	if float64(minC)*mu <= lambda {
		minC++
	}
	for c := minC; c < minC+10000; c++ {
		m := MMc{C: c, Lambda: lambda, Mu: mu}
		wq, err := m.MeanWait()
		if err != nil {
			continue
		}
		if wq <= maxWait {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queueing: no server count below %d satisfies wait %v", minC+10000, maxWait)
}
