package queueing

import (
	"errors"
	"fmt"
	"math"
)

// Analytic M/M/c results (Kendall's notation, Appendix A of the thesis).
// These closed forms are the classical queueing-theory counterparts of the
// simulated queues and are used in tests to cross-validate the discrete-time
// implementations against theory.

// ErrSaturated reports an offered load at or above system capacity
// (rho = a/c >= 1): the steady-state M/M/c quantities do not exist there.
// Callers that must distinguish saturation from argument errors — the fluid
// tier's saturation guard is designed to trip strictly before this —
// detect it with errors.Is.
var ErrSaturated = errors.New("queueing: offered load at or above capacity")

// ErlangC returns the probability that an arriving customer must wait in an
// M/M/c system with offered load a = lambda/mu (in Erlangs). It requires
// a < c for stability and wraps ErrSaturated otherwise.
func ErlangC(c int, a float64) (float64, error) {
	if c <= 0 {
		return 0, fmt.Errorf("queueing: ErlangC needs c > 0, got %d", c)
	}
	if a < 0 {
		return 0, fmt.Errorf("queueing: ErlangC needs a >= 0, got %v", a)
	}
	if a >= float64(c) {
		return 0, fmt.Errorf("queueing: unstable system a=%v >= c=%d: %w", a, c, ErrSaturated)
	}
	// Iterative Erlang-B then convert to Erlang-C for numerical stability.
	b := 1.0
	for k := 1; k <= c; k++ {
		b = a * b / (float64(k) + a*b)
	}
	rho := a / float64(c)
	return b / (1 - rho*(1-b)), nil
}

// MMc summarizes an M/M/c queue with arrival rate lambda and per-server
// service rate mu.
type MMc struct {
	C      int
	Lambda float64
	Mu     float64
}

// Utilization returns rho = lambda/(c*mu).
func (m MMc) Utilization() float64 { return m.Lambda / (float64(m.C) * m.Mu) }

// MeanWait returns the mean time spent waiting in queue (Wq).
func (m MMc) MeanWait() (float64, error) {
	pw, err := ErlangC(m.C, m.Lambda/m.Mu)
	if err != nil {
		return 0, err
	}
	return pw / (float64(m.C)*m.Mu - m.Lambda), nil
}

// MeanResponse returns the mean sojourn time (W = Wq + 1/mu).
func (m MMc) MeanResponse() (float64, error) {
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return wq + 1/m.Mu, nil
}

// MeanQueueLength returns the mean number waiting (Lq), by Little's law.
func (m MMc) MeanQueueLength() (float64, error) {
	wq, err := m.MeanWait()
	if err != nil {
		return 0, err
	}
	return m.Lambda * wq, nil
}

// WaitQuantile returns the p-quantile of the waiting time Wq. The M/M/c
// FCFS waiting time is a mixture of an atom at zero (probability 1 - Pw,
// Pw from Erlang C) and an Exp(c*mu - lambda) excursion, so the quantile
// has the closed form max(0, ln(Pw/(1-p)) / (c*mu - lambda)) — exact, no
// approximation.
func (m MMc) WaitQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("queueing: quantile needs 0 < p < 1, got %v", p)
	}
	pw, err := ErlangC(m.C, m.Lambda/m.Mu)
	if err != nil {
		return 0, err
	}
	if pw <= 1-p {
		return 0, nil
	}
	theta := float64(m.C)*m.Mu - m.Lambda
	return math.Log(pw/(1-p)) / theta, nil
}

// ResponseQuantile returns the p-quantile of the sojourn time T = Wq + S.
// The exact M/M/c FCFS sojourn tail is a two-exponential mixture,
//
//	P(T > t) = (1-Pw) e^{-mu t} + Pw (theta e^{-mu t} - mu e^{-theta t}) / (theta - mu)
//
// with theta = c*mu - lambda (degenerating to e^{-mu t}(1 + Pw mu t) when
// theta = mu, and to the pure exponential Exp(mu - lambda) tail at c = 1).
// The quantile inverts this tail by bisection; the bracketing loop and 200
// halvings bound the numerical error by ~1e-12 relative, so the returned
// value is exact for the M/M/c abstraction — the only modeling error a
// caller inherits is the M/M/c abstraction of the station itself, not this
// inversion. For quantiles of the mean-field fluid tier the exponential
// service assumption overestimates high percentiles of near-deterministic
// services (an Exp(mu) p90 is ln(10)/mu ≈ 2.3 service means); callers
// wanting "queueing-delay p90 on top of a measured base" should therefore
// combine WaitQuantile with their own base percentile, which is what
// internal/fluid does.
func (m MMc) ResponseQuantile(p float64) (float64, error) {
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("queueing: quantile needs 0 < p < 1, got %v", p)
	}
	pw, err := ErlangC(m.C, m.Lambda/m.Mu)
	if err != nil {
		return 0, err
	}
	mu := m.Mu
	theta := float64(m.C)*mu - m.Lambda
	tail := func(t float64) float64 {
		if math.Abs(theta-mu) < 1e-12*mu {
			return math.Exp(-mu*t) * (1 + pw*mu*t)
		}
		return (1-pw)*math.Exp(-mu*t) + pw*(theta*math.Exp(-mu*t)-mu*math.Exp(-theta*t))/(theta-mu)
	}
	target := 1 - p
	// Bracket: the tail decays at least as fast as the slower of the two
	// exponentials, so growing the upper bound geometrically terminates.
	lo, hi := 0.0, 1/mu
	for tail(hi) > target {
		hi *= 2
		if hi > 1e18 {
			return 0, fmt.Errorf("queueing: ResponseQuantile failed to bracket p=%v", p)
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if tail(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}

// MM1PS gives the mean sojourn time of an M/M/1 processor-sharing queue,
// which equals the M/M/1-FCFS mean response (1/(mu-lambda)) by symmetry of
// the PS discipline, plus any constant latency.
func MM1PS(lambda, mu, latency float64) (float64, error) {
	if lambda >= mu {
		return 0, fmt.Errorf("queueing: unstable PS lambda=%v >= mu=%v", lambda, mu)
	}
	return 1/(mu-lambda) + latency, nil
}

// ForkJoinZeroLoadExp returns the exact mean completion time of an n-way
// fork-join whose branches have independent Exp(mu) service times and no
// queueing (zero load): E[max of n iid exponentials] = H_n / mu. It is the
// theoretical reference for the RAID/SAN fork-join structures under light
// load (Figs. 3-7 and 3-8).
func ForkJoinZeroLoadExp(n int, mu float64) (float64, error) {
	if n <= 0 || mu <= 0 {
		return 0, fmt.Errorf("queueing: ForkJoinZeroLoadExp needs n > 0, mu > 0")
	}
	return harmonic(n) / mu, nil
}

func harmonic(n int) float64 {
	h := 0.0
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// RequiredServers returns the minimum number of servers c such that an M/M/c
// queue with the given lambda and mu keeps mean waiting time below maxWait.
// It is the capacity-planning primitive behind the examples/capacity tool.
func RequiredServers(lambda, mu, maxWait float64) (int, error) {
	if lambda <= 0 || mu <= 0 || maxWait <= 0 {
		return 0, fmt.Errorf("queueing: RequiredServers needs positive arguments")
	}
	minC := int(math.Ceil(lambda/mu + 1e-9))
	if float64(minC)*mu <= lambda {
		minC++
	}
	for c := minC; c < minC+10000; c++ {
		m := MMc{C: c, Lambda: lambda, Mu: mu}
		wq, err := m.MeanWait()
		if err != nil {
			continue
		}
		if wq <= maxWait {
			return c, nil
		}
	}
	return 0, fmt.Errorf("queueing: no server count below %d satisfies wait %v", minC+10000, maxWait)
}
