package queueing

import "fmt"

// eps guards float comparisons when resolving sub-step completions.
const eps = 1e-12

// FCFS is a first-come-first-served queue with c identical servers, each
// consuming Demand units at rate units/second. It models the CPU core group
// (M/M/q per socket, Fig. 3-4), NICs and switches (M/M/1, Fig. 3-6), and the
// per-disk queues inside RAID and SAN fork-join structures (Figs. 3-7, 3-8).
type FCFS struct {
	rate    float64
	servers int

	waiting   fifo
	inService []*Task

	busy     float64 // accumulated server-seconds of busy time
	arrivals uint64
	departs  uint64
}

// NewFCFS returns an FCFS queue with the given number of servers and
// per-server service rate (units per second). It panics on non-positive
// arguments: a queue that can never serve work is a configuration error.
func NewFCFS(servers int, rate float64) *FCFS {
	if servers <= 0 || rate <= 0 {
		panic(fmt.Sprintf("queueing: invalid FCFS servers=%d rate=%v", servers, rate))
	}
	return &FCFS{rate: rate, servers: servers, inService: make([]*Task, 0, servers)}
}

// Rate returns the per-server service rate.
func (q *FCFS) Rate() float64 { return q.rate }

// Servers returns the number of servers.
func (q *FCFS) Servers() int { return q.servers }

// Enqueue adds a task at the tail. Zero-demand tasks are legal and complete
// on the next Step.
func (q *FCFS) Enqueue(t *Task) {
	q.arrivals++
	q.waiting.push(t)
}

// Waiting reports the number of queued (not in service) tasks.
func (q *FCFS) Waiting() int { return q.waiting.len() }

// InService reports the number of tasks in service.
func (q *FCFS) InService() int { return len(q.inService) }

// Idle reports whether the queue holds no work.
func (q *FCFS) Idle() bool { return len(q.inService) == 0 && q.waiting.len() == 0 }

// Arrivals returns the total number of tasks ever enqueued.
func (q *FCFS) Arrivals() uint64 { return q.arrivals }

// Departures returns the total number of tasks ever completed.
func (q *FCFS) Departures() uint64 { return q.departs }

// TakeBusy returns and resets the accumulated busy server-seconds.
func (q *FCFS) TakeBusy() float64 {
	b := q.busy
	q.busy = 0
	return b
}

// fill moves waiting tasks onto idle servers.
func (q *FCFS) fill() {
	for len(q.inService) < q.servers {
		t := q.waiting.pop()
		if t == nil {
			return
		}
		q.inService = append(q.inService, t)
	}
}

// Step advances the queue by dt seconds. Completions within the step are
// resolved exactly: the step is subdivided at each completion instant so a
// freed server immediately picks up the next waiting task.
func (q *FCFS) Step(dt float64, done DoneFunc) {
	q.fill()
	remaining := dt
	for remaining > eps && len(q.inService) > 0 {
		// Time until the earliest in-service completion.
		sub := remaining
		for _, t := range q.inService {
			if ttc := t.Demand / q.rate; ttc < sub {
				sub = ttc
			}
		}
		if sub < 0 {
			sub = 0
		}
		work := sub * q.rate
		q.busy += sub * float64(len(q.inService))
		// Advance all in-service tasks, compacting completions in place.
		kept := q.inService[:0]
		for _, t := range q.inService {
			t.Demand -= work
			if t.Demand <= eps*q.rate {
				t.Demand = 0
				q.departs++
				done(t)
			} else {
				kept = append(kept, t)
			}
		}
		// Zero trailing slots so completed tasks do not leak.
		for i := len(kept); i < len(q.inService); i++ {
			q.inService[i] = nil
		}
		q.inService = kept
		q.fill()
		remaining -= sub
		if sub == 0 && len(q.inService) > 0 {
			// Only zero-demand tasks were completed; loop again without
			// consuming time.
			continue
		}
	}
}
