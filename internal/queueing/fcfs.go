package queueing

import (
	"fmt"
	"math"
)

// eps guards float comparisons when resolving sub-step completions.
const eps = 1e-12

// bulkGuard is the safety margin, in seconds, a queue keeps between a
// bulk-stepped window and its earliest possible internal event. Step
// resolves completions up to an eps early, and a long per-tick subtraction
// chain drifts by ulps from the exact product; both are orders of magnitude
// below this margin, so an event can never fire inside a window CanBulk
// approved.
const bulkGuard = 1e-7

// FCFS is a first-come-first-served queue with c identical servers, each
// consuming Demand units at rate units/second. It models the CPU core group
// (M/M/q per socket, Fig. 3-4), NICs and switches (M/M/1, Fig. 3-6), and the
// per-disk queues inside RAID and SAN fork-join structures (Figs. 3-7, 3-8).
type FCFS struct {
	rate    float64
	servers int

	waiting   fifo
	inService []*Task

	busy     float64 // accumulated server-seconds of busy time
	arrivals uint64
	departs  uint64

	notify func() // arrival-transition hook (see SetNotify)
}

// SetNotify installs a hook invoked on every Enqueue — the transition that
// can move the queue's next event earlier. Owning agents forward it to
// their event-calendar invalidation (core.AgentBase.MarkDirty), so work
// handed to the queue invalidates the agent's cached horizon without the
// agent wrapping every enqueue path. The hook runs synchronously inside
// Enqueue: it must only be set on queues that receive work from sequential
// simulation phases (ingress queues), never on queues fed by internal
// handoffs inside the parallel Step phase — those transitions occur only at
// scheduled event ticks, where the calendar rekeys the agent anyway.
func (q *FCFS) SetNotify(fn func()) { q.notify = fn }

// NewFCFS returns an FCFS queue with the given number of servers and
// per-server service rate (units per second). It panics on non-positive
// arguments: a queue that can never serve work is a configuration error.
func NewFCFS(servers int, rate float64) *FCFS {
	if servers <= 0 || rate <= 0 {
		panic(fmt.Sprintf("queueing: invalid FCFS servers=%d rate=%v", servers, rate))
	}
	return &FCFS{rate: rate, servers: servers, inService: make([]*Task, 0, servers)}
}

// Rate returns the per-server service rate.
func (q *FCFS) Rate() float64 { return q.rate }

// SetRate changes the per-server service rate, modeling partial degradation
// (a derated CPU, a rebuilding drive). It takes effect from the next Step:
// in-service tasks finish their remaining demand at the new rate. Callers
// must invoke it from a sequential simulation phase and invalidate the
// owning agent's cached horizon (Sync before, MarkDirty after), exactly
// like an Enqueue. Panics on a non-positive rate.
func (q *FCFS) SetRate(rate float64) {
	if rate <= 0 {
		panic(fmt.Sprintf("queueing: invalid FCFS rate %v", rate))
	}
	q.rate = rate
}

// Servers returns the number of servers.
func (q *FCFS) Servers() int { return q.servers }

// Enqueue adds a task at the tail, firing the notify hook. Zero-demand
// tasks are legal and complete on the next Step.
func (q *FCFS) Enqueue(t *Task) {
	q.arrivals++
	q.waiting.push(t)
	if q.notify != nil {
		q.notify()
	}
}

// Waiting reports the number of queued (not in service) tasks.
func (q *FCFS) Waiting() int { return q.waiting.len() }

// InService reports the number of tasks in service.
func (q *FCFS) InService() int { return len(q.inService) }

// Idle reports whether the queue holds no work.
func (q *FCFS) Idle() bool { return len(q.inService) == 0 && q.waiting.len() == 0 }

// Arrivals returns the total number of tasks ever enqueued.
func (q *FCFS) Arrivals() uint64 { return q.arrivals }

// Departures returns the total number of tasks ever completed.
func (q *FCFS) Departures() uint64 { return q.departs }

// TakeBusy returns and resets the accumulated busy server-seconds.
func (q *FCFS) TakeBusy() float64 {
	b := q.busy
	q.busy = 0
	return b
}

// fill moves waiting tasks onto idle servers.
func (q *FCFS) fill() {
	for len(q.inService) < q.servers {
		t := q.waiting.pop()
		if t == nil {
			return
		}
		q.inService = append(q.inService, t)
	}
}

// Horizon returns the time in seconds until the queue's next departure
// assuming no further arrivals, or +Inf when the queue is empty. It first
// promotes waiting tasks onto idle servers — the same promotion Step would
// perform at its start, so calling Horizon never changes what Step computes
// — then takes the minimum time-to-completion over the tasks in service.
// The value is exact for the earliest event; fast-forward jumps must stop
// strictly before it.
func (q *FCFS) Horizon() float64 {
	q.fill()
	if len(q.inService) == 0 {
		return math.Inf(1)
	}
	h := math.Inf(1)
	for _, t := range q.inService {
		if ttc := t.Demand / q.rate; ttc < h {
			h = ttc
		}
	}
	return h
}

// CanBulk reports whether the queue is guaranteed to complete nothing
// within the next span seconds, so that BulkStep may replace per-tick
// stepping. The margin over the exact threshold absorbs the eps-early
// completion in Step and the float drift of a long subtraction chain.
func (q *FCFS) CanBulk(span float64) bool {
	q.fill()
	for _, t := range q.inService {
		if t.Demand/q.rate <= span+bulkGuard {
			return false
		}
	}
	return true
}

// BulkStep advances the queue through n consecutive ticks of dt seconds in
// one call, producing state bit-identical to n sequential Step(dt) calls.
// It must only be called when CanBulk(n*dt) holds: with no completion in
// the window, each tick's arithmetic reduces to one constant subtraction
// per in-service task and one constant busy addition, and those per-
// accumulator operation sequences are replayed exactly — only the per-tick
// call overhead (refill, completion scans) is elided.
func (q *FCFS) BulkStep(n int, dt float64) {
	if len(q.inService) == 0 {
		return
	}
	busyInc := dt * float64(len(q.inService))
	for i := 0; i < n; i++ {
		q.busy += busyInc
	}
	work := dt * q.rate
	for _, t := range q.inService {
		d := t.Demand
		for i := 0; i < n; i++ {
			d -= work
		}
		t.Demand = d
	}
}

// Step advances the queue by dt seconds. Completions within the step are
// resolved exactly: the step is subdivided at each completion instant so a
// freed server immediately picks up the next waiting task.
func (q *FCFS) Step(dt float64, done DoneFunc) {
	q.fill()
	remaining := dt
	for remaining > eps && len(q.inService) > 0 {
		// Time until the earliest in-service completion.
		sub := remaining
		for _, t := range q.inService {
			if ttc := t.Demand / q.rate; ttc < sub {
				sub = ttc
			}
		}
		if sub < 0 {
			sub = 0
		}
		work := sub * q.rate
		q.busy += sub * float64(len(q.inService))
		// Advance all in-service tasks, compacting completions in place.
		kept := q.inService[:0]
		for _, t := range q.inService {
			t.Demand -= work
			if t.Demand <= eps*q.rate {
				t.Demand = 0
				q.departs++
				done(t)
			} else {
				kept = append(kept, t)
			}
		}
		// Zero trailing slots so completed tasks do not leak.
		for i := len(kept); i < len(q.inService); i++ {
			q.inService[i] = nil
		}
		q.inService = kept
		q.fill()
		remaining -= sub
		if sub == 0 && len(q.inService) > 0 {
			// Only zero-demand tasks were completed; loop again without
			// consuming time.
			continue
		}
	}
}
