package queueing

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewPSPanics(t *testing.T) {
	cases := []struct {
		rate    float64
		k       int
		latency float64
	}{{0, 1, 0}, {1, 0, 0}, {1, 1, -1}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPS(%v,%d,%v) did not panic", c.rate, c.k, c.latency)
				}
			}()
			NewPS(c.rate, c.k, c.latency)
		}()
	}
}

func TestPSSingleTransfer(t *testing.T) {
	q := NewPS(100, 10, 0) // 100 units/sec
	q.Enqueue(&Task{ID: 1, Demand: 50})
	var done []*Task
	q.Step(0.5, collect(&done))
	if len(done) != 1 {
		t.Fatalf("50 units at 100/s should finish in 0.5s")
	}
}

func TestPSLatencyDelaysCompletion(t *testing.T) {
	q := NewPS(100, 10, 0.2)
	q.Enqueue(&Task{ID: 1, Demand: 50})
	var done []*Task
	q.Step(0.5, collect(&done)) // latency 0.2 + transfer 0.5 = 0.7 total
	if len(done) != 0 {
		t.Fatal("completed before latency + transfer elapsed")
	}
	q.Step(0.21, collect(&done))
	if len(done) != 1 {
		t.Fatalf("should complete at 0.7s, done=%d", len(done))
	}
}

func TestPSBandwidthSharing(t *testing.T) {
	// Two equal transfers share the link and finish together, taking twice
	// as long as one alone.
	q := NewPS(100, 10, 0)
	q.Enqueue(&Task{ID: 1, Demand: 50})
	q.Enqueue(&Task{ID: 2, Demand: 50})
	var done []*Task
	q.Step(0.99, collect(&done))
	if len(done) != 0 {
		t.Fatalf("shared transfers finished early: %d", len(done))
	}
	q.Step(0.02, collect(&done))
	if len(done) != 2 {
		t.Fatalf("both transfers should finish at 1.0s, done=%d", len(done))
	}
}

func TestPSConnectionLimitQueues(t *testing.T) {
	q := NewPS(100, 1, 0) // one connection at a time
	q.Enqueue(&Task{ID: 1, Demand: 50})
	q.Enqueue(&Task{ID: 2, Demand: 50})
	if q.InService() != 0 || q.Waiting() != 2 {
		t.Fatalf("pre-step: inService=%d waiting=%d", q.InService(), q.Waiting())
	}
	var done []*Task
	q.Step(0.5, collect(&done))
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("first transfer should finish alone at 0.5s: %v", done)
	}
	if q.InService() != 1 {
		t.Errorf("second transfer should now hold the slot")
	}
	q.Step(0.5, collect(&done))
	if len(done) != 2 {
		t.Fatalf("second transfer should finish at 1.0s")
	}
}

func TestPSWorkAccounting(t *testing.T) {
	q := NewPS(100, 4, 0)
	q.Enqueue(&Task{ID: 1, Demand: 30})
	var done []*Task
	q.Step(1, collect(&done))
	if w := q.TakeBusy(); math.Abs(w-30) > 1e-9 {
		t.Errorf("transmitted %v units, want 30", w)
	}
}

// Property: shared-rate completion order equals arrival order for equal
// demands (PS with equal demands preserves ordering), and total transmitted
// units equal total demand.
func TestPSConservation(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 32 {
			return true
		}
		q := NewPS(10, 4, 0.05)
		total := 0.0
		for i, r := range raw {
			d := float64(r%50)/10 + 0.1
			total += d
			q.Enqueue(&Task{ID: uint64(i), Demand: d})
		}
		var done []*Task
		for i := 0; i < 100000 && !q.Idle(); i++ {
			q.Step(0.02, collect(&done))
		}
		if len(done) != len(raw) {
			return false
		}
		return math.Abs(q.TakeBusy()-total) < 1e-6*float64(len(raw))+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Cross-validation: a PS queue with a generous connection limit under
// Poisson/exponential traffic approaches the M/M/1-PS sojourn time.
func TestPSMatchesMM1PSTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("stochastic cross-validation skipped in -short")
	}
	lambda, mu := 0.6, 1.0
	q := NewPS(1.0, 1024, 0)
	rng := rand.New(rand.NewPCG(7, 7))
	res := Drive(q, 1, lambda, mu, 60000, 0.01, rng)
	want, err := MM1PS(lambda, mu, 0)
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(res.MeanResponse-want) / want
	if relErr > 0.08 {
		t.Errorf("M/M/1-PS: simulated W=%.4f analytic W=%.4f relErr=%.1f%%",
			res.MeanResponse, want, relErr*100)
	}
}

func TestPSHorizon(t *testing.T) {
	q := NewPS(10, 4, 0.2)
	if h := q.Horizon(); !math.IsInf(h, 1) {
		t.Fatalf("empty queue horizon = %v, want +Inf", h)
	}
	q.Enqueue(&Task{ID: 1, Demand: 5})
	// Freshly admitted: the earliest event is the latency expiry, which
	// changes the bandwidth share — not yet a departure.
	if h := q.Horizon(); h != 0.2 {
		t.Fatalf("horizon = %v, want 0.2 (latency expiry)", h)
	}
	var done []*Task
	q.Step(0.2, collect(&done))
	// Latency elapsed; the transfer now runs at the full rate.
	if h := q.Horizon(); h != 0.5 {
		t.Fatalf("horizon = %v, want 0.5 (transfer completion)", h)
	}
}

// TestPSBulkStepBitIdentical mirrors the FCFS bulk test for the
// processor-sharing link: latency countdowns, share changes and transfer
// completions must land on the same ticks with bit-identical state.
func TestPSBulkStepBitIdentical(t *testing.T) {
	mk := func() *PS {
		q := NewPS(9.7, 2, 0.13)
		q.Enqueue(&Task{ID: 1, Demand: 17.3})
		q.Enqueue(&Task{ID: 2, Demand: 4.99})
		q.Enqueue(&Task{ID: 3, Demand: 7.1}) // waits for a slot
		return q
	}
	const dt = 0.01
	ref, bulk := mk(), mk()
	var refDone, bulkDone []*Task
	steps := 0
	for !bulk.Idle() && steps < 10000 {
		n := 1
		for w := 2; w <= 64; w *= 2 {
			if bulk.CanBulk(float64(w) * dt) {
				n = w
			}
		}
		if n == 1 {
			bulk.Step(dt, collect(&bulkDone))
		} else {
			bulk.BulkStep(n, dt)
		}
		for i := 0; i < n; i++ {
			ref.Step(dt, collect(&refDone))
		}
		steps += n
	}
	if !ref.Idle() {
		t.Fatalf("reference queue still busy after %d ticks", steps)
	}
	if len(refDone) != 3 || len(bulkDone) != 3 {
		t.Fatalf("completions: ref %d bulk %d, want 3 each", len(refDone), len(bulkDone))
	}
	for i := range refDone {
		if refDone[i].ID != bulkDone[i].ID {
			t.Errorf("completion %d: ref ID %d bulk ID %d", i, refDone[i].ID, bulkDone[i].ID)
		}
	}
	if rw, bw := ref.TakeBusy(), bulk.TakeBusy(); rw != bw {
		t.Errorf("work accumulators differ: %v vs %v", rw, bw)
	}
}
