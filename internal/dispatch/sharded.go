package dispatch

import (
	"fmt"
	"sync"

	"repro/internal/core"
)

// Sharded is the conservative-PDES engine: a fixed pool of shard-pinned
// workers that the simulation drives through core.ShardRunner. Each worker
// owns one shard for the engine's lifetime, so every parallel phase of a
// bulk-dense window — involved-agent advancement, mailbox application,
// horizon precomputation — executes a shard's agents on the same
// goroutine, keeping their queue state cache-warm and race-free without
// per-agent locking. Between phases the simulation runs sequentially; the
// RunShards barrier is the synchronization point of the PDES recipe.
//
// The engine also serves the plain Engine interface (lock-step loops,
// Config.NoShards A/B runs) by chunking Sweep calls across the workers in
// contiguous ascending-ID blocks — deterministic because sweep callbacks
// only touch per-agent state.
type Sharded struct {
	shards int
	jobs   []chan func(int)
	wg     sync.WaitGroup
	once   sync.Once
}

// NewSharded creates the engine with one pinned worker per shard. A single
// shard degenerates to inline execution on the calling goroutine — the
// full sharded runtime (mailboxes, barriers) with zero dispatch overhead,
// which is the sharded:1 leg of the equivalence suite.
func NewSharded(shards int) *Sharded {
	if shards < 1 {
		panic(fmt.Sprintf("dispatch: sharded engine needs >= 1 shard, got %d", shards))
	}
	e := &Sharded{shards: shards}
	if shards == 1 {
		return e
	}
	e.jobs = make([]chan func(int), shards)
	for i := range e.jobs {
		e.jobs[i] = make(chan func(int), 1)
		go e.worker(i)
	}
	return e
}

func (e *Sharded) worker(i int) {
	for fn := range e.jobs[i] {
		fn(i)
		e.wg.Done()
	}
}

// ShardCount reports the number of shards.
func (e *Sharded) ShardCount() int { return e.shards }

// RunShards runs fn(shard) once per shard concurrently and waits for all
// of them — the barrier of the conservative synchronization protocol.
func (e *Sharded) RunShards(fn func(shard int)) {
	if e.shards == 1 {
		fn(0)
		return
	}
	e.wg.Add(e.shards)
	for i := range e.jobs {
		e.jobs[i] <- fn
	}
	e.wg.Wait()
}

// Bind is a no-op: shard ownership lives in the simulation's assignment
// map, not in per-agent engine state.
func (e *Sharded) Bind(agents []core.Agent) {}

// Sweep applies fn to the active agents by splitting them into one
// contiguous block per shard. Blocks preserve ascending-ID order and fn
// only touches per-agent state, so results are independent of the
// interleaving.
func (e *Sharded) Sweep(active []core.Agent, fn func(core.Agent)) {
	n := len(active)
	if n == 0 {
		return
	}
	if e.shards == 1 || n == 1 {
		for _, a := range active {
			fn(a)
		}
		return
	}
	e.RunShards(func(w int) {
		lo, hi := w*n/e.shards, (w+1)*n/e.shards
		for _, a := range active[lo:hi] {
			fn(a)
		}
	})
}

// Shutdown stops the workers. Idempotent; the engine must not be used
// afterwards.
func (e *Sharded) Shutdown() {
	e.once.Do(func() {
		for i := range e.jobs {
			close(e.jobs[i])
		}
	})
}

var _ core.ShardRunner = (*Sharded)(nil)
