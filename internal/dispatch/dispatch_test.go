package dispatch

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
)

// fakeAgent is a minimal queue-bearing agent for engine tests.
type fakeAgent struct {
	core.AgentBase
	q     *queueing.FCFS
	steps atomic.Int64
}

func newFakeAgent(s *core.Simulation, name string) *fakeAgent {
	a := &fakeAgent{q: queueing.NewFCFS(1, 100)}
	a.InitAgent(s.NextAgentID(), name)
	s.AddAgent(a)
	return a
}

func (a *fakeAgent) Enqueue(t *queueing.Task) { a.q.Enqueue(t) }
func (a *fakeAgent) Step(dt float64) {
	a.steps.Add(1)
	a.q.Step(dt, a.BufferDone)
}
func (a *fakeAgent) Idle() bool { return a.q.Idle() }

func TestNewEnginePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewScatterGather(0) },
		func() { NewHDispatch(0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with 0 threads did not panic")
				}
			}()
			f()
		}()
	}
}

func TestEnginesSweepAllActiveAgents(t *testing.T) {
	engines := map[string]core.Engine{
		"scatter-gather": NewScatterGather(4),
		"h-dispatch":     NewHDispatch(4, 8),
	}
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			defer eng.Shutdown()
			s := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: eng})
			agents := make([]*fakeAgent, 100)
			for i := range agents {
				agents[i] = newFakeAgent(s, "a")
				agents[i].Pin() // keep in the active set without queued work
			}
			s.RunFor(0.1) // 10 ticks
			for i, a := range agents {
				if got := a.steps.Load(); got != 10 {
					t.Fatalf("agent %d stepped %d times, want 10", i, got)
				}
			}
		})
	}
}

// sinkAgent serves tasks and drops their completions, so tests can enqueue
// raw tasks without routing them through a flow.
type sinkAgent struct {
	core.AgentBase
	q     *queueing.FCFS
	steps atomic.Int64
}

func newSinkAgent(s *core.Simulation, name string) *sinkAgent {
	a := &sinkAgent{q: queueing.NewFCFS(1, 100)}
	a.InitAgent(s.NextAgentID(), name)
	s.AddAgent(a)
	return a
}

func (a *sinkAgent) Enqueue(t *queueing.Task) {
	a.MarkActive()
	a.q.Enqueue(t)
}
func (a *sinkAgent) Step(dt float64) {
	a.steps.Add(1)
	a.q.Step(dt, func(*queueing.Task) {})
}
func (a *sinkAgent) Idle() bool { return a.q.Idle() }

// TestMidRunAddAgentSweptSameTick guards the rebind ordering: an agent
// registered by a source and activated in the same tick must be swept that
// tick — engines size per-agent resources (ScatterGather's port table)
// from the bound population, so binding must happen after the polls.
func TestMidRunAddAgentSweptSameTick(t *testing.T) {
	engines := map[string]func() core.Engine{
		"sequential":     func() core.Engine { return &core.SequentialEngine{} },
		"scatter-gather": func() core.Engine { return NewScatterGather(2) },
		"h-dispatch":     func() core.Engine { return NewHDispatch(2, 4) },
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			s := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: mk()})
			defer s.Shutdown()
			newSinkAgent(s, "seed")
			var late *sinkAgent
			s.AddSource(core.SourceFunc(func(sim *core.Simulation, now float64) {
				if sim.Clock().Now() == 2 && late == nil {
					late = newSinkAgent(sim, "late")
					late.Enqueue(&queueing.Task{ID: 1, Demand: 1})
				}
			}))
			s.RunFor(0.05)
			if late == nil {
				t.Fatal("source never ran")
			}
			if got := late.steps.Load(); got == 0 {
				t.Error("agent added and enqueued mid-run was never swept")
			}
		})
	}
}

// TestEnginesSkipIdleAgents asserts the active-set contract: agents without
// queued work are not stepped, and agents rejoin the sweep when re-enqueued.
func TestEnginesSkipIdleAgents(t *testing.T) {
	engines := map[string]func() core.Engine{
		"sequential":     func() core.Engine { return &core.SequentialEngine{} },
		"scatter-gather": func() core.Engine { return NewScatterGather(4) },
		"h-dispatch":     func() core.Engine { return NewHDispatch(4, 8) },
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			s := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: mk()})
			defer s.Shutdown()
			busy := newSinkAgent(s, "busy")
			idle := newSinkAgent(s, "idle")
			// 100 units at rate 100 = 1 s of service: busy for 100 ticks.
			busy.Enqueue(&queueing.Task{ID: 1, Demand: 100})
			s.RunFor(2)
			if got := idle.steps.Load(); got != 0 {
				t.Errorf("idle agent stepped %d times, want 0", got)
			}
			// The busy agent must leave the active set once drained.
			stepsWhenDone := busy.steps.Load()
			if stepsWhenDone >= 200 {
				t.Errorf("busy agent stepped %d times over 200 ticks, should have deactivated after ~100", stepsWhenDone)
			}
			s.RunFor(1)
			if got := busy.steps.Load(); got != stepsWhenDone {
				t.Errorf("deactivated agent stepped again: %d -> %d", stepsWhenDone, got)
			}
			// Re-enqueueing reactivates.
			busy.Enqueue(&queueing.Task{ID: 2, Demand: 1})
			s.RunFor(0.1)
			if got := busy.steps.Load(); got <= stepsWhenDone {
				t.Error("re-enqueued agent was not swept again")
			}
		})
	}
}

func TestHDispatchShutdownIdempotent(t *testing.T) {
	e := NewHDispatch(2, 4)
	e.Shutdown()
	e.Shutdown()
}

func TestHDispatchEmptyBindSweep(t *testing.T) {
	e := NewHDispatch(2, 4)
	defer e.Shutdown()
	e.Bind(nil)
	e.Sweep(nil, func(core.Agent) { t.Fatal("sweep over empty active set invoked fn") })
}

func TestScatterGatherEmptySweep(t *testing.T) {
	e := NewScatterGather(2)
	defer e.Shutdown()
	e.Bind(nil)
	e.Sweep(nil, func(core.Agent) { t.Fatal("sweep over empty active set invoked fn") })
}

// runWorkload executes an identical randomized workload on a simulation
// driven by the given engine and returns a results fingerprint.
func runWorkload(t *testing.T, eng core.Engine) (uint64, []float64) {
	t.Helper()
	s := core.NewSimulation(core.Config{Step: 0.01, Seed: 77, Engine: eng})
	defer s.Shutdown()
	const nAgents = 150
	agents := make([]*fakeAgent, nAgents)
	for i := range agents {
		agents[i] = newFakeAgent(s, "srv")
	}
	count := 0
	s.AddSource(core.SourceFunc(func(sim *core.Simulation, now float64) {
		for count < 500 && sim.Clock().Now()%3 == 0 {
			count++
			first := agents[sim.RNG().IntN(nAgents)]
			second := agents[sim.RNG().IntN(nAgents)]
			demand := 5 + sim.RNG().Float64()*50
			sim.StartOp(core.OpRun{
				Name: "W", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan {
					return []core.MessagePlan{{Stages: []core.Stage{
						{Queue: first, Demand: demand},
						{Queue: second, Demand: demand / 2},
					}}}
				},
			})
			break
		}
	}))
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	series := s.Responses.Series("W", "NA")
	return s.CompletedOps(), append([]float64(nil), series.V...)
}

// TestEngineEquivalence asserts that both parallel engines produce results
// bit-identical to the sequential reference — the determinism property that
// makes the parallelization purely a performance concern.
func TestEngineEquivalence(t *testing.T) {
	_, ref := runWorkload(t, &core.SequentialEngine{})
	for name, eng := range map[string]core.Engine{
		"scatter-gather": NewScatterGather(8),
		"h-dispatch":     NewHDispatch(8, 16),
	} {
		t.Run(name, func(t *testing.T) {
			_, got := runWorkload(t, eng)
			if len(got) != len(ref) {
				t.Fatalf("completions differ: %d vs %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("response %d differs: %v vs %v", i, got[i], ref[i])
				}
			}
		})
	}
}
