package dispatch

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/queueing"
)

// fakeAgent is a minimal queue-bearing agent for engine tests.
type fakeAgent struct {
	core.AgentBase
	q     *queueing.FCFS
	steps atomic.Int64
}

func newFakeAgent(s *core.Simulation, name string) *fakeAgent {
	a := &fakeAgent{q: queueing.NewFCFS(1, 100)}
	a.InitAgent(s.NextAgentID(), name)
	s.AddAgent(a)
	return a
}

func (a *fakeAgent) Enqueue(t *queueing.Task) { a.q.Enqueue(t) }
func (a *fakeAgent) Step(dt float64) {
	a.steps.Add(1)
	a.q.Step(dt, a.BufferDone)
}
func (a *fakeAgent) Idle() bool { return a.q.Idle() }

func TestNewEnginePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewScatterGather(0) },
		func() { NewHDispatch(0, 64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor with 0 threads did not panic")
				}
			}()
			f()
		}()
	}
}

func TestEnginesSweepAllAgents(t *testing.T) {
	engines := map[string]core.Engine{
		"scatter-gather": NewScatterGather(4),
		"h-dispatch":     NewHDispatch(4, 8),
	}
	for name, eng := range engines {
		t.Run(name, func(t *testing.T) {
			defer eng.Shutdown()
			s := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: eng})
			agents := make([]*fakeAgent, 100)
			for i := range agents {
				agents[i] = newFakeAgent(s, "a")
			}
			s.RunFor(0.1) // 10 ticks
			for i, a := range agents {
				if got := a.steps.Load(); got != 10 {
					t.Fatalf("agent %d stepped %d times, want 10", i, got)
				}
			}
		})
	}
}

func TestHDispatchShutdownIdempotent(t *testing.T) {
	e := NewHDispatch(2, 4)
	e.Shutdown()
	e.Shutdown()
}

func TestHDispatchEmptyBindSweep(t *testing.T) {
	e := NewHDispatch(2, 4)
	defer e.Shutdown()
	e.Bind(nil)
	e.Sweep(func(core.Agent) { t.Fatal("sweep over empty population invoked fn") })
}

func TestScatterGatherEmptySweep(t *testing.T) {
	e := NewScatterGather(2)
	defer e.Shutdown()
	e.Bind(nil)
	e.Sweep(func(core.Agent) { t.Fatal("sweep over empty population invoked fn") })
}

// runWorkload executes an identical randomized workload on a simulation
// driven by the given engine and returns a results fingerprint.
func runWorkload(t *testing.T, eng core.Engine) (uint64, []float64) {
	t.Helper()
	s := core.NewSimulation(core.Config{Step: 0.01, Seed: 77, Engine: eng})
	defer s.Shutdown()
	const nAgents = 150
	agents := make([]*fakeAgent, nAgents)
	for i := range agents {
		agents[i] = newFakeAgent(s, "srv")
	}
	count := 0
	s.AddSource(core.SourceFunc(func(sim *core.Simulation, now float64) {
		for count < 500 && sim.Clock().Now()%3 == 0 {
			count++
			first := agents[sim.RNG().IntN(nAgents)]
			second := agents[sim.RNG().IntN(nAgents)]
			demand := 5 + sim.RNG().Float64()*50
			sim.StartOp(core.OpRun{
				Name: "W", DC: "NA", NumSteps: 1,
				Expand: func(int) []core.MessagePlan {
					return []core.MessagePlan{{Stages: []core.Stage{
						{Queue: first, Demand: demand},
						{Queue: second, Demand: demand / 2},
					}}}
				},
			})
			break
		}
	}))
	if err := s.RunUntilIdle(300); err != nil {
		t.Fatal(err)
	}
	series := s.Responses.Series("W", "NA")
	return s.CompletedOps(), append([]float64(nil), series.V...)
}

// TestEngineEquivalence asserts that both parallel engines produce results
// bit-identical to the sequential reference — the determinism property that
// makes the parallelization purely a performance concern.
func TestEngineEquivalence(t *testing.T) {
	_, ref := runWorkload(t, &core.SequentialEngine{})
	for name, eng := range map[string]core.Engine{
		"scatter-gather": NewScatterGather(8),
		"h-dispatch":     NewHDispatch(8, 16),
	} {
		t.Run(name, func(t *testing.T) {
			_, got := runWorkload(t, eng)
			if len(got) != len(ref) {
				t.Fatalf("completions differ: %d vs %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("response %d differs: %v vs %v", i, got[i], ref[i])
				}
			}
		})
	}
}
