package dispatch

import (
	"sync/atomic"
	"testing"

	"repro/internal/core"
)

func TestNewShardedPanicsOnZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSharded(0) did not panic")
		}
	}()
	NewSharded(0)
}

// TestShardedRunShardsCoversEveryShard checks the barrier contract: every
// shard index runs exactly once per RunShards call, and the call does not
// return until all of them finished.
func TestShardedRunShardsCoversEveryShard(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		e := NewSharded(shards)
		hits := make([]atomic.Int64, shards)
		const rounds = 50
		for r := 0; r < rounds; r++ {
			e.RunShards(func(w int) { hits[w].Add(1) })
		}
		for w := range hits {
			if got := hits[w].Load(); got != rounds {
				t.Errorf("shards=%d: shard %d ran %d times, want %d", shards, w, got, rounds)
			}
		}
		e.Shutdown()
	}
}

// TestShardedSweepChunksAreAPartition checks the plain-Engine fallback:
// Sweep must apply fn to every active agent exactly once, for active-set
// sizes around the contiguous-block arithmetic's edge cases.
func TestShardedSweepChunksAreAPartition(t *testing.T) {
	for _, shards := range []int{1, 3, 4} {
		e := NewSharded(shards)
		for _, n := range []int{0, 1, 2, 3, 4, 5, 17, 100} {
			agents := make([]*fakeAgent, n)
			active := make([]core.Agent, n)
			for i := range agents {
				agents[i] = &fakeAgent{}
				active[i] = agents[i]
			}
			e.Sweep(active, func(a core.Agent) { a.(*fakeAgent).steps.Add(1) })
			for i, a := range agents {
				if got := a.steps.Load(); got != 1 {
					t.Fatalf("shards=%d n=%d: agent %d stepped %d times, want 1", shards, n, i, got)
				}
			}
		}
		e.Shutdown()
	}
}

// TestShardedShutdownIdempotent double-closes must not panic, and a
// 1-shard engine (no workers) must shut down cleanly too.
func TestShardedShutdownIdempotent(t *testing.T) {
	for _, shards := range []int{1, 4} {
		e := NewSharded(shards)
		e.RunShards(func(int) {})
		e.Shutdown()
		e.Shutdown()
	}
}
