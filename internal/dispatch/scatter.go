// Package dispatch implements the two parallelization mechanisms evaluated
// in Chapter 4 of the thesis as pluggable core.Engine implementations:
//
//   - ScatterGather (§4.3.4): one active message per agent per sweep is
//     posted to the agent's port and executed by a shared dispatcher thread
//     pool; acknowledgements are gathered with a multiple-item receiver.
//     The per-message overhead dominates the tiny per-agent work, which is
//     why Table 4.1 shows no speedup — a behaviour this implementation
//     reproduces.
//
//   - HDispatch (§4.3.5, after Holmes et al.): a fixed pool of worker
//     threads pulls Agent Sets (default 64 agents) from a global queue
//     until it drains, amortizing coordination overhead and reusing local
//     state. Table 4.2 shows the resulting multicore speedup.
package dispatch

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ports"
)

// sweepMsg is the time-increment (or collection) control signal scattered
// to each agent port (Fig. 4-3). It carries the handler to execute and the
// synchronization port to acknowledge on.
type sweepMsg struct {
	fn  func(core.Agent)
	ack *ports.Port[core.AgentID]
}

// ScatterGather is the classic scatter-gather engine: one port per bound
// agent, one active message per *active* agent per sweep. Ports are built
// once per Bind and indexed by AgentID; each sweep only posts to the ports
// of the agents in the active slice, and the single reusable gatherer is
// re-armed for that count instead of being reallocated every tick.
type ScatterGather struct {
	threads    int
	disp       *ports.Dispatcher
	agentPorts []*ports.Port[sweepMsg] // indexed by AgentID
	gather     *ports.Gather[core.AgentID]
}

// NewScatterGather creates the engine with the given dispatcher thread-pool
// size. Panics on a non-positive thread count.
func NewScatterGather(threads int) *ScatterGather {
	if threads <= 0 {
		panic(fmt.Sprintf("dispatch: ScatterGather needs threads > 0, got %d", threads))
	}
	return &ScatterGather{threads: threads}
}

// Bind creates one port per agent, each with a persistent receiver that
// executes the scattered handler and posts an acknowledgement.
func (e *ScatterGather) Bind(agents []core.Agent) {
	if e.disp == nil {
		e.disp = ports.NewDispatcher(e.threads, 4096)
	}
	e.agentPorts = make([]*ports.Port[sweepMsg], len(agents))
	for i, a := range agents {
		a := a
		p := ports.NewPort[sweepMsg](e.disp)
		ports.Receive(p, true, func(m sweepMsg) {
			m.fn(a)
			m.ack.Post(a.ID())
		})
		e.agentPorts[i] = p
	}
}

// Sweep scatters one message per active agent and blocks until all of them
// have acknowledged (the gather step).
func (e *ScatterGather) Sweep(active []core.Agent, fn func(core.Agent)) {
	if len(active) == 0 {
		return
	}
	if e.gather == nil {
		e.gather = ports.NewGather[core.AgentID](e.disp, len(active))
	} else {
		e.gather.Reset(len(active))
	}
	m := sweepMsg{fn: fn, ack: e.gather.Port()}
	for _, a := range active {
		e.agentPorts[a.ID()].Post(m)
	}
	e.gather.Wait()
}

// Shutdown stops the dispatcher thread pool.
func (e *ScatterGather) Shutdown() {
	if e.disp != nil {
		e.disp.Shutdown()
		e.disp = nil
	}
}

var _ core.Engine = (*ScatterGather)(nil)
