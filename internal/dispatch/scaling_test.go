package dispatch

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/queueing"
)

// busyAgent performs a fixed amount of CPU-bound work per step, emulating
// the handler cost of the thesis' implementation (whose day-long
// simulations ran for days of wall time — §4.3.4's per-agent work was
// orders of magnitude heavier than this port's queue stepping). The
// Chapter 4 speedup experiments are about amortizing coordination against
// that work, so the scaling tests use comparable per-agent cost.
type busyAgent struct {
	core.AgentBase
	state uint64
	spins int
}

func newBusyAgent(s *core.Simulation, spins int) *busyAgent {
	a := &busyAgent{state: 0x9e3779b97f4a7c15, spins: spins}
	a.InitAgent(s.NextAgentID(), "busy")
	s.AddAgent(a)
	a.Pin() // dense-sweep agents do work every tick without queued tasks
	return a
}

func (a *busyAgent) Enqueue(*queueing.Task) {}
func (a *busyAgent) Step(dt float64) {
	x := a.state
	for i := 0; i < a.spins; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	a.state = x
}
func (a *busyAgent) Idle() bool { return true }

// denseSweepSeconds measures the wall time of ticks over a population of
// busy agents under the given engine.
func denseSweepSeconds(b testing.TB, eng core.Engine, agents, spins, ticks int) float64 {
	sim := core.NewSimulation(core.Config{Step: 0.01, Seed: 1, Engine: eng})
	defer sim.Shutdown()
	for i := 0; i < agents; i++ {
		newBusyAgent(sim, spins)
	}
	start := time.Now()
	for i := 0; i < ticks; i++ {
		sim.Tick()
	}
	return time.Since(start).Seconds()
}

// TestHDispatchScalesOnDenseSweeps reproduces the shape of Table 4.2:
// with per-agent work that dominates coordination, H-Dispatch speeds up
// with worker threads while the classic Scatter-Gather stays flat
// (Table 4.1) because its per-agent active-message overhead is of the
// same order as the work itself.
func TestHDispatchScalesOnDenseSweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement skipped in -short")
	}
	if runtime.NumCPU() < 8 {
		t.Skip("needs at least 8 cores for a meaningful measurement")
	}
	const agents, spins, ticks = 2048, 3000, 60

	seq := denseSweepSeconds(t, &core.SequentialEngine{}, agents, spins, ticks)

	hd8 := NewHDispatch(8, 64)
	hdTime := denseSweepSeconds(t, hd8, agents, spins, ticks)
	if speedup := seq / hdTime; speedup < 3 {
		t.Errorf("H-Dispatch 8-thread speedup = %.2fx on dense sweep, want > 3x (Table 4.2 reports 5.17x)", speedup)
	}

	sg8 := NewScatterGather(8)
	sgTime := denseSweepSeconds(t, sg8, agents, spins, ticks)
	t.Logf("dense sweep: sequential %.3fs, h-dispatch(8) %.3fs (%.2fx), scatter-gather(8) %.3fs (%.2fx)",
		seq, hdTime, seq/hdTime, sgTime, seq/sgTime)
}
