package dispatch

import (
	"fmt"
	"sync"
)

import "repro/internal/core"

// DefaultAgentSet is the agent-set size that delivered the best results in
// the thesis (Table 4.2: "An Agent Set of size 64 delivered the best
// results").
const DefaultAgentSet = 64

// HDispatch is the pull-based engine of Holmes et al. adapted to GDISim
// (§4.3.5): worker goroutines equal in number to the configured thread
// count stay alive for the engine's lifetime and pull agent sets from a
// global queue until it is empty, then signal completion.
type HDispatch struct {
	threads int
	setSize int

	sets [][]core.Agent

	mu   sync.Mutex // serializes Sweep callers (the time loop is single-threaded)
	fn   func(core.Agent)
	jobs chan int
	wg   sync.WaitGroup
	quit chan struct{}
	once sync.Once
}

// NewHDispatch creates the engine with the given worker count and agent-set
// size; setSize <= 0 selects DefaultAgentSet. Panics on non-positive threads.
func NewHDispatch(threads, setSize int) *HDispatch {
	if threads <= 0 {
		panic(fmt.Sprintf("dispatch: HDispatch needs threads > 0, got %d", threads))
	}
	if setSize <= 0 {
		setSize = DefaultAgentSet
	}
	e := &HDispatch{
		threads: threads,
		setSize: setSize,
		jobs:    make(chan int, 1024),
		quit:    make(chan struct{}),
	}
	for i := 0; i < threads; i++ {
		go e.worker()
	}
	return e
}

func (e *HDispatch) worker() {
	for {
		select {
		case <-e.quit:
			return
		case idx := <-e.jobs:
			// Process the whole agent set sequentially on this worker,
			// reusing its stack — the core of the H-Dispatch design.
			fn := e.fn
			for _, a := range e.sets[idx] {
				fn(a)
			}
			e.wg.Done()
		}
	}
}

// Bind partitions the agent population into agent sets.
func (e *HDispatch) Bind(agents []core.Agent) {
	e.sets = e.sets[:0]
	for start := 0; start < len(agents); start += e.setSize {
		end := start + e.setSize
		if end > len(agents) {
			end = len(agents)
		}
		e.sets = append(e.sets, agents[start:end])
	}
}

// Sweep pushes every agent set into the global H-Dispatch queue and blocks
// until the workers have drained it.
func (e *HDispatch) Sweep(fn func(core.Agent)) {
	if len(e.sets) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.fn = fn
	e.wg.Add(len(e.sets))
	for i := range e.sets {
		e.jobs <- i
	}
	e.wg.Wait()
}

// Shutdown terminates the worker pool. Idempotent.
func (e *HDispatch) Shutdown() {
	e.once.Do(func() { close(e.quit) })
}

var _ core.Engine = (*HDispatch)(nil)
