package dispatch

import (
	"fmt"
	"sync"
)

import "repro/internal/core"

// DefaultAgentSet is the agent-set size that delivered the best results in
// the thesis (Table 4.2: "An Agent Set of size 64 delivered the best
// results").
const DefaultAgentSet = 64

// HDispatch is the pull-based engine of Holmes et al. adapted to GDISim
// (§4.3.5): worker goroutines equal in number to the configured thread
// count stay alive for the engine's lifetime and pull agent sets from a
// global queue until it is empty, then signal completion. Agent sets are
// re-partitioned from the active slice on every sweep (reusing the backing
// array), so only agents with in-flight work are ever dispatched.
type HDispatch struct {
	threads int
	setSize int

	sets [][]core.Agent // per-sweep partition of the active slice

	mu   sync.Mutex // serializes Sweep callers (the time loop is single-threaded)
	fn   func(core.Agent)
	jobs chan int
	wg   sync.WaitGroup
	quit chan struct{}
	once sync.Once
}

// NewHDispatch creates the engine with the given worker count and agent-set
// size; setSize <= 0 selects DefaultAgentSet. Panics on non-positive threads.
func NewHDispatch(threads, setSize int) *HDispatch {
	if threads <= 0 {
		panic(fmt.Sprintf("dispatch: HDispatch needs threads > 0, got %d", threads))
	}
	if setSize <= 0 {
		setSize = DefaultAgentSet
	}
	e := &HDispatch{
		threads: threads,
		setSize: setSize,
		jobs:    make(chan int, 1024),
		quit:    make(chan struct{}),
	}
	for i := 0; i < threads; i++ {
		go e.worker()
	}
	return e
}

func (e *HDispatch) worker() {
	for {
		select {
		case <-e.quit:
			return
		case idx := <-e.jobs:
			// Process the whole agent set sequentially on this worker,
			// reusing its stack — the core of the H-Dispatch design.
			fn := e.fn
			for _, a := range e.sets[idx] {
				fn(a)
			}
			e.wg.Done()
		}
	}
}

// Bind is a no-op: agent sets are cut from the active slice per sweep, so
// the engine holds no per-population state.
func (e *HDispatch) Bind(agents []core.Agent) {}

// Sweep partitions the active slice into agent sets, pushes them into the
// global H-Dispatch queue and blocks until the workers have drained it.
func (e *HDispatch) Sweep(active []core.Agent, fn func(core.Agent)) {
	if len(active) == 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sets = e.sets[:0]
	for start := 0; start < len(active); start += e.setSize {
		end := start + e.setSize
		if end > len(active) {
			end = len(active)
		}
		e.sets = append(e.sets, active[start:end])
	}
	e.fn = fn
	e.wg.Add(len(e.sets))
	for i := range e.sets {
		e.jobs <- i
	}
	e.wg.Wait()
}

// Shutdown terminates the worker pool. Idempotent.
func (e *HDispatch) Shutdown() {
	e.once.Do(func() { close(e.quit) })
}

var _ core.Engine = (*HDispatch)(nil)
