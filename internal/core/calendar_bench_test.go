package core

import (
	"fmt"
	"testing"

	"repro/internal/queueing"
)

// benchQuietTicks measures one jump-sizing call in a dense period: n
// background agents hold far-future work (active, but never dirty) while a
// pinned default-horizon churner forces a single-step every iteration —
// the regime where the scan loop pays O(active) Horizon calls per
// iteration. The churner carries the highest AgentID so the scan cannot
// bail out early, mirroring a worst-case dense tick. The calendar variant
// reads the heap head instead: its cost must stay flat as n grows tenfold.
func benchQuietTicks(b *testing.B, n int, cal bool) {
	b.Helper()
	s := NewSimulation(Config{Step: 0.01, CollectEvery: 1 << 30, Seed: 1, NoCalendar: !cal})
	for i := 0; i < n; i++ {
		dl := NewDelayLine(s, fmt.Sprintf("bg-%d", i))
		dl.Enqueue(&queueing.Task{ID: uint64(i), Delay: 1e6})
	}
	churn := &vetoAgent{}
	churn.InitAgent(s.NextAgentID(), "churn")
	s.AddAgent(churn)
	churn.Pin()
	s.RunFor(0.05) // settle: materialize the sweep and the calendar
	limit := s.clock.Now() + 1000
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cal {
			_ = s.quietTicksCal(limit)
		} else {
			_ = s.quietTicks(limit)
		}
	}
}

// BenchmarkQuietTicksDense contrasts the per-iteration scheduling cost of
// the scan loop against the calendar loop at 1x and 10x active-set size:
// the scan column scales with the active agents, the calendar column with
// the dirty agents (here: one churner), which is the tentpole claim of the
// event-calendar change.
func BenchmarkQuietTicksDense(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("scan-active-%d", n), func(b *testing.B) { benchQuietTicks(b, n, false) })
		b.Run(fmt.Sprintf("calendar-active-%d", n), func(b *testing.B) { benchQuietTicks(b, n, true) })
	}
}
