package core

import "testing"

// TestDeriveSeedReferenceVector pins DeriveSeed to the published SplitMix64
// output sequence: stream i of base b is the (i+1)-th output of a SplitMix64
// generator seeded with b. The constants are the standard test vector for
// seed 0 (Vigna's splitmix64.c reference implementation).
func TestDeriveSeedReferenceVector(t *testing.T) {
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
		0x1b39896a51a8749b,
	}
	for i, w := range want {
		if got := DeriveSeed(0, uint64(i)); got != w {
			t.Errorf("DeriveSeed(0, %d) = %#x, want %#x", i, got, w)
		}
	}
}

// TestDeriveSeedIndependence checks the properties sub-RNG creation relies
// on: streams of one base are pairwise distinct, the same (base, stream)
// always yields the same seed, and nearby bases do not collide on the same
// stream.
func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[uint64]uint64)
	for s := uint64(0); s < 1000; s++ {
		v := DeriveSeed(42, s)
		if prev, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d of base 42 collide on %#x", prev, s, v)
		}
		seen[v] = s
		if DeriveSeed(42, s) != v {
			t.Fatalf("DeriveSeed(42, %d) not deterministic", s)
		}
	}
	for b := uint64(0); b < 1000; b++ {
		if b == 42 {
			continue // base 42 stream 7 is already in seen, by construction
		}
		v := DeriveSeed(b, 7)
		if prev, dup := seen[v]; dup {
			t.Fatalf("base %d stream 7 collides with base-42 stream %d", b, prev)
		}
		seen[v] = b
	}
}
