package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// TestNextCollectBoundary pins the one shared definition of the collector
// boundary: the first snapshot tick strictly after now. Standing exactly on
// a boundary must yield the NEXT boundary — that tick's snapshot has
// already been taken by the window or span that ended there — which is the
// property the span scheduler and both jump sizers rely on to neither
// swallow nor duplicate a snapshot.
func TestNextCollectBoundary(t *testing.T) {
	cases := []struct{ now, every, want simtime.Tick }{
		{0, 100, 100},
		{1, 100, 100},
		{99, 100, 100},
		{100, 100, 200}, // exactly on a boundary: a full period ahead
		{101, 100, 200},
		{199, 100, 200},
		{200, 100, 300},
		{0, 1, 1},
		{7, 1, 8},
		{599, 600, 600},
		{600, 600, 1200},
	}
	for _, c := range cases {
		if got := nextCollectBoundary(c.now, c.every); got != c.want {
			t.Errorf("nextCollectBoundary(%d, %d) = %d, want %d", c.now, c.every, got, c.want)
		}
	}
}

// spanTestRunner is a minimal in-package ShardRunner so core tests can
// drive the sharded runtime without importing internal/dispatch (which
// imports core).
type spanTestRunner struct{ n int }

func (e *spanTestRunner) Bind([]Agent) {}
func (e *spanTestRunner) Sweep(active []Agent, fn func(Agent)) {
	for _, a := range active {
		fn(a)
	}
}
func (e *spanTestRunner) Shutdown()       {}
func (e *spanTestRunner) ShardCount() int { return e.n }
func (e *spanTestRunner) RunShards(fn func(shard int)) {
	var wg sync.WaitGroup
	for w := 0; w < e.n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// TestSpanBoundaryExactSnapshot pins the boundary-exact snapshot contract
// of stretched spans: a run whose windows all execute inside spans must
// snapshot each collector boundary exactly once, at exactly the boundary
// instant — a span starting on a boundary must not re-snapshot it, and a
// span ending on one must not skip it. The sequential loop over the same
// configuration is the reference.
func TestSpanBoundaryExactSnapshot(t *testing.T) {
	const (
		step    = 0.01
		every   = 50 // boundary every 0.5 s
		seconds = 5  // 10 boundaries
	)
	run := func(eng Engine, sharded bool) (times []float64, stretched uint64) {
		t.Helper()
		s := NewSimulation(Config{Step: step, CollectEvery: every, Seed: 1, Engine: eng})
		defer s.Shutdown()
		newTestQueueAgent(s, "cpu-a", 2, 1e9)
		newTestQueueAgent(s, "cpu-b", 2, 1e9)
		if sharded {
			s.SetDCShards(map[string]int{"A": 0})
			// A parked lane source: spans need a lane-confined source no
			// more than the real scenarios do, but registering one proves
			// the span path tolerates a fully dormant lane.
			s.AddLaneSource(parkedSource{}, "A")
		}
		snaps := 0
		s.Collector.Register(metrics.Probe{Key: "beat", Sample: func(window float64) float64 {
			snaps++
			return float64(snaps)
		}})
		s.RunFor(seconds)
		series := s.Collector.MustSeries("beat")
		return series.T, s.Stats().WindowsStretched
	}

	ref, _ := run(&SequentialEngine{}, false)
	got, stretched := run(&spanTestRunner{n: 2}, true)

	if stretched == 0 {
		t.Fatal("no window ran inside a stretched span; the boundary property was never exercised")
	}
	if want := int(seconds / (step * every)); len(ref) != want {
		t.Fatalf("sequential reference took %d snapshots, want %d", len(ref), want)
	}
	if len(got) != len(ref) {
		t.Fatalf("stretched run took %d snapshots, sequential took %d", len(got), len(ref))
	}
	for i := range ref {
		if got[i] != ref[i] {
			t.Errorf("snapshot %d at %v s under spans, %v s sequentially", i, got[i], ref[i])
		}
		if want := float64(i+1) * step * every; math.Abs(ref[i]-want) > 1e-9 {
			t.Errorf("snapshot %d at %v s, want boundary instant %v s", i, ref[i], want)
		}
	}
}

// parkedSource is a lane-confined source that never launches work: NextPoll
// parks it immediately, so it neither bounds spans nor perturbs the run.
type parkedSource struct{}

func (parkedSource) Poll(*Simulation, float64) {}
func (parkedSource) NextPoll(float64) float64  { return math.Inf(1) }
