package core

import (
	"fmt"

	"repro/internal/queueing"
	"repro/internal/simtime"
)

// Stage is one hop of a message through the infrastructure: a piece of work
// performed by a single hardware agent (NIC transmit, link transit, CPU
// service, storage access) or a pure delay (client-side think/render time).
// Stages are produced by the topology router when it expands a cascade
// message into the agents along the route (§3.3.2).
type Stage struct {
	// Queue is the agent that serves this stage. A nil Queue makes the
	// stage instantaneous: its hooks run and the token advances within the
	// same interaction phase.
	Queue QueueAgent
	// Demand is the work amount in the target agent's units (cycles for
	// CPUs, bits for network elements, bytes for storage).
	Demand float64
	// Delay is a fixed latency in seconds, used by delay-line stages.
	Delay float64
	// Begin runs when the stage starts (sequential phase). Used to acquire
	// memory occupancy at a server.
	Begin func()
	// End runs when the stage completes (sequential phase). Used to
	// release memory occupancy.
	End func()
}

// MessagePlan is a fully-expanded message of a cascade: the ordered stages
// it traverses from origin to destination holon.
type MessagePlan struct {
	Stages []Stage
}

// OpRun describes one operation instance to execute: a cascade of NumSteps
// sequential steps, each expanding into one or more messages that run in
// parallel (fork-join across messages of a step). Expansion is lazy — the
// router picks server instances when the step starts, reproducing the
// paper's run-time load balancing.
type OpRun struct {
	// Name of the operation type, e.g. "CAD OPEN".
	Name string
	// DC is the client's data center, used for response-time attribution.
	DC string
	// GaugeKey, when non-empty, increments the named simulation gauge for
	// the lifetime of the operation (concurrent-client accounting).
	// Launchers on the hot path should pre-intern the key and set Gauge
	// instead; GaugeKey is interned on every StartOp.
	GaugeKey string
	// Gauge is the interned form of GaugeKey (see Simulation.GaugeHandle);
	// zero means none. When both are set, Gauge wins.
	Gauge Gauge
	// NumSteps is the number of sequential steps in the cascade.
	NumSteps int
	// Expand returns the parallel messages of the given step (0-based).
	// An empty result completes the step immediately.
	Expand func(step int) []MessagePlan
	// OnComplete, when non-nil, runs in the sequential phase after the
	// operation finishes. now and dur are simulated seconds.
	OnComplete func(now, dur float64)
	// Silent suppresses response-time recording (used by warm-up traffic).
	Silent bool
	// Local declares that every stage of every message of this cascade
	// resolves to agents of the operation's own data center — no WAN hop,
	// no cross-DC holon. Builders set it (cascade.Instantiate proves it
	// from the binding: local site == master site); it is the license for
	// the stretched-span scheduler to run the flow entirely inside one
	// shard lane. A false value is always safe — it only forces the flow
	// onto the global (barriered) path.
	Local bool
}

// Flow is an in-flight operation instance. global marks it cross-capable:
// a non-Local cascade (its messages may hop shards) or one carrying an
// OnComplete callback (a sequential-phase control transfer). Global flows
// execute their mid-chain stages on shard lanes like any other work, but
// their control points — step expansion, chain completion, the callback —
// run only in sequential phases; the span scheduler bounds every span so
// none of those can fire inside one.
type Flow struct {
	id          uint64
	op          OpRun
	step        int
	outstanding int
	start       float64
	global      bool
}

// token is one in-flight message of a flow traversing its stages. The
// embedded task is reused across stages to avoid per-stage allocation, and
// finished tokens return to a simulation-owned free list — message launch
// is the hottest allocation site of busy hours. Tokens are only created
// and retired in sequential phases, so the pool needs no locking.
//
// The trailing fields exist for cross-capable (Flow.global) tokens under
// the sharded runtime: global marks the token registered in
// Simulation.crossToks at reg (swap-removed at tokenDone); home is the
// shard owning the queue the token currently resides on, maintained on
// every enqueue, so a lane advancing the token mid-span can tell a local
// hand-off from a cross-shard one; stageTick is the tick the task entered
// its current stage (the anchor for chain-completion bounds on queues
// whose per-task state is not readable, like a delay line's heap); parked,
// when non-zero, is the due tick of the inbox entry the token is waiting
// in — set by the mid-span cross-shard post, cleared when the entry
// applies.
type token struct {
	flow   *Flow
	stages []Stage
	idx    int
	task   queueing.Task

	global    bool
	home      int32
	reg       int32
	stageTick simtime.Tick
	parked    simtime.Tick
}

// newToken pops a pooled token or allocates a fresh one.
func (s *Simulation) newToken() *token {
	if n := len(s.tokenPool); n > 0 {
		tok := s.tokenPool[n-1]
		s.tokenPool[n-1] = nil
		s.tokenPool = s.tokenPool[:n-1]
		return tok
	}
	return &token{}
}

// freeToken resets a finished token and returns it to the pool. The caller
// guarantees no queue holds the embedded task anymore — a token only
// finishes when its final stage's completion has been drained.
func (s *Simulation) freeToken(tok *token) {
	*tok = token{}
	s.tokenPool = append(s.tokenPool, tok)
}

// flowLane resolves the lane executing flows of the given data center
// during a stretched span, or nil outside spans. Every flow routed through
// here inside a span is Local (cross-capable flows branch on Flow.global
// before resolving a lane — a global flow's DC names where its client
// sits, not where its work runs), so the DC names both the lane that
// launched the flow and the only lane that can ever touch it.
func (s *Simulation) flowLane(dc string) *laneState {
	if s.sh == nil || !s.sh.inSpan {
		return nil
	}
	w, ok := s.sh.dcLane[dc]
	if !ok {
		panic(fmt.Sprintf("core: flow for unmapped data center %q inside a stretched span", dc))
	}
	return &s.sh.lanes[w]
}

// startOp validates and launches an operation instance. It is called by
// Simulation.StartOp in the sequential phase, or — for Local operations —
// from a shard lane inside a stretched span.
func (s *Simulation) startOp(op OpRun) *Flow {
	if op.NumSteps <= 0 || op.Expand == nil {
		panic(fmt.Sprintf("core: operation %q needs NumSteps > 0 and an Expand function", op.Name))
	}
	if ln := s.flowLane(op.DC); ln != nil {
		// Lane path: only shard-confined flows may launch between barriers.
		// The span scheduler guarantees none of these fire by construction
		// (spans form only when no cross-DC work is possible); the panics
		// keep the invariant honest against future launchers.
		if !op.Local || op.OnComplete != nil {
			panic(fmt.Sprintf("core: operation %q is not shard-confined (Local=%v, OnComplete=%v) inside a stretched span",
				op.Name, op.Local, op.OnComplete != nil))
		}
		if op.Gauge == 0 && op.GaugeKey != "" {
			panic(fmt.Sprintf("core: operation %q launches with an un-interned gauge key %q inside a stretched span",
				op.Name, op.GaugeKey))
		}
		ln.nextFlowID++
		f := &Flow{id: ln.nextFlowID, op: op, step: -1, start: s.clock.SecondsAt(ln.tick)}
		ln.flowDelta++
		s.AddGaugeBy(op.Gauge, 1)
		s.advanceFlow(f)
		return f
	}
	if op.Gauge == 0 && op.GaugeKey != "" {
		op.Gauge = s.GaugeHandle(op.GaugeKey)
	}
	s.nextFlowID++
	f := &Flow{id: s.nextFlowID, op: op, step: -1, start: s.clock.NowSeconds()}
	f.global = !op.Local || op.OnComplete != nil
	s.activeFlows++
	if f.global {
		s.crossFlows++
	}
	s.AddGaugeBy(op.Gauge, 1)
	s.advanceFlow(f)
	return f
}

// advanceFlow moves the flow to its next step, launching the step's message
// tokens, or completes the flow when no steps remain. Steps that expand to
// zero messages complete immediately, so the loop continues until a step
// launches work or the flow ends.
//
// Step expansion is not lane-safe (route caching, load-balancer state, RNG
// draws), so a cross-capable flow only ever advances in sequential phases
// — the span scheduler guarantees it by ending every span strictly before
// any such flow's chain-completion bound, and the panic keeps the
// guarantee honest.
func (s *Simulation) advanceFlow(f *Flow) {
	var ln *laneState
	if f.global {
		if s.sh != nil && s.sh.inSpan {
			panic(fmt.Sprintf("core: cross-capable flow %d advanced inside a stretched span — chain-completion bound violated", f.id))
		}
	} else {
		ln = s.flowLane(f.op.DC)
	}
	for {
		f.step++
		if f.step >= f.op.NumSteps {
			s.completeFlow(f)
			return
		}
		plans := f.op.Expand(f.step)
		if len(plans) == 0 {
			continue
		}
		f.outstanding = len(plans)
		for _, plan := range plans {
			var tok *token
			if ln != nil {
				tok = ln.newToken()
				ln.nextTaskID++
				tok.task.ID = ln.nextTaskID
			} else {
				tok = s.newToken()
				s.nextTaskID++
				tok.task.ID = s.nextTaskID
			}
			tok.flow = f
			tok.stages = plan.Stages
			tok.task.Payload = tok
			if f.global && s.sh != nil {
				// Register for the span scheduler's per-token guard.
				tok.global = true
				tok.reg = int32(len(s.crossToks))
				s.crossToks = append(s.crossToks, tok)
			}
			s.startStage(tok)
		}
		return
	}
}

// startStage begins the token's current stage, skipping instantaneous
// stages in place. When the token runs out of stages the parent flow's
// outstanding count drops and, at zero, the flow advances.
func (s *Simulation) startStage(tok *token) {
	for tok.idx < len(tok.stages) {
		st := &tok.stages[tok.idx]
		if st.Begin != nil {
			st.Begin()
		}
		if st.Queue != nil {
			tok.task.Demand = st.Demand
			tok.task.Delay = st.Delay
			if sh := s.sh; sh != nil {
				// Sharded drain phase: post the hand-off to the target
				// shard's mailbox instead of enqueueing inline; the
				// barrier at the end of the drain applies every mailbox
				// shard-parallel with the exact sync/enqueue/activate
				// sequence below.
				if sh.deferring {
					sh.post(s, st.Queue, &tok.task)
					return
				}
				// Cross-capable token advancing mid-span: a hand-off to
				// another shard's agent parks in that shard's inbox, due
				// after the span ends (the WAN latency is the lookahead
				// that makes the due tick safe); a same-shard hand-off
				// proceeds inline on this lane.
				if sh.inSpan && tok.global {
					if sh.shard(st.Queue.ID()) != tok.home {
						sh.postInbox(s, st.Queue, tok)
						return
					}
				}
			}
			// Under the bulk-dense loop the target may be lazily stepped;
			// replay its deficit before the enqueue mutates its queues, so
			// the new work lands on state identical to the lock-step
			// loop's. Hardware agents also self-sync in Enqueue; routing
			// through here covers custom agents too.
			s.syncAgent(st.Queue.ID())
			st.Queue.Enqueue(&tok.task)
			// Join the active set so the engine sweeps this agent next
			// tick; hardware agents also self-activate in Enqueue, but
			// routing through here covers custom agents too.
			st.Queue.Base().MarkActive()
			if tok.global {
				// Maintain the span scheduler's view: where the token
				// lives and when it entered the stage.
				if sh := s.sh; sh != nil {
					tok.home = sh.shard(st.Queue.ID())
					if sh.inSpan {
						tok.stageTick = sh.lanes[tok.home].tick
					} else {
						tok.stageTick = s.clock.Now()
					}
				} else {
					tok.stageTick = s.clock.Now()
				}
			}
			return
		}
		// Instantaneous stage: run End and fall through to the next.
		if st.End != nil {
			st.End()
		}
		tok.idx++
	}
	s.tokenDone(tok)
}

// onTaskDone resumes a token whose queued stage completed.
func (s *Simulation) onTaskDone(t *queueing.Task) {
	tok, ok := t.Payload.(*token)
	if !ok {
		panic("core: completed task without token payload")
	}
	st := &tok.stages[tok.idx]
	if st.End != nil {
		st.End()
	}
	tok.idx++
	s.startStage(tok)
}

// tokenDone accounts a finished message within its flow and recycles the
// token. A cross-capable token's chain end is a sequential-phase event by
// construction (the span scheduler ends spans before any chain-completion
// bound); it also unregisters from the span scheduler's token registry.
func (s *Simulation) tokenDone(tok *token) {
	f := tok.flow
	if tok.global {
		if s.sh != nil && s.sh.inSpan {
			panic(fmt.Sprintf("core: cross-capable message of flow %d completed inside a stretched span — chain-completion bound violated", f.id))
		}
		if s.sh != nil {
			last := len(s.crossToks) - 1
			i := int(tok.reg)
			s.crossToks[i] = s.crossToks[last]
			s.crossToks[i].reg = int32(i)
			s.crossToks[last] = nil
			s.crossToks = s.crossToks[:last]
		}
		s.freeToken(tok)
	} else if ln := s.flowLane(f.op.DC); ln != nil {
		ln.freeToken(tok)
	} else {
		s.freeToken(tok)
	}
	f.outstanding--
	if f.outstanding < 0 {
		panic(fmt.Sprintf("core: flow %d over-completed", f.id))
	}
	if f.outstanding == 0 {
		s.advanceFlow(f)
	}
}

// completeFlow records the response time and runs completion callbacks.
// Inside a stretched span the completion books onto the lane (its own
// response buffer, its own counters, the lane's local tick for the
// completion instant); the counters merge into the simulation at the span
// exit barrier. A flow may start on one path and complete on the other —
// the delta accounting composes either way.
func (s *Simulation) completeFlow(f *Flow) {
	if !f.global {
		if ln := s.flowLane(f.op.DC); ln != nil {
			now := s.clock.SecondsAt(ln.tick)
			dur := now - f.start
			ln.flowDelta--
			s.AddGaugeBy(f.op.Gauge, -1)
			if !f.op.Silent {
				ln.resp.Record(f.op.Name, f.op.DC, now, dur)
			}
			ln.completed++
			return
		}
	}
	// Cross-capable flows complete here unconditionally: their last
	// message's tokenDone is a sequential-phase event by construction, and
	// the OnComplete callback (when present) must see the global
	// simulation, not a lane.
	now := s.clock.NowSeconds()
	dur := now - f.start
	s.activeFlows--
	if f.global {
		s.crossFlows--
	}
	s.AddGaugeBy(f.op.Gauge, -1)
	if !f.op.Silent {
		s.Responses.Record(f.op.Name, f.op.DC, now, dur)
	}
	s.completedOps++
	if f.op.OnComplete != nil {
		f.op.OnComplete(now, dur)
	}
}
