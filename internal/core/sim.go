package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Source injects work into the simulation. Sources are polled in the
// sequential phase, before the agent sweep: workload generators start
// client operations, background daemons launch SYNCHREP/INDEXBUILD jobs.
type Source interface {
	Poll(s *Simulation, now float64)
	// NextPoll reports the earliest simulated time at which a future Poll
	// may have an observable effect (launch work, draw randomness, move a
	// gauge), given that the source was just polled at now. Polls strictly
	// before the returned instant must be no-ops; the event-horizon
	// fast-forward relies on that contract to skip them wholesale.
	// Returning now (or any instant within the next step) keeps classic
	// per-tick polling; +Inf means the source is exhausted or is re-armed
	// only by a completion callback.
	NextPoll(now float64) float64
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(s *Simulation, now float64)

// Poll calls f.
func (f SourceFunc) Poll(s *Simulation, now float64) { f(s, now) }

// NextPoll returns now: an adapted function gives no schedule information,
// so it is conservatively polled every tick and vetoes fast-forward jumps.
func (f SourceFunc) NextPoll(now float64) float64 { return now }

// Config parameterizes a Simulation.
type Config struct {
	// Step is the time-loop granularity in seconds (§4.3.1 recommends at
	// least one order of magnitude below the canonical operation costs).
	Step float64
	// CollectEvery is the number of ticks between collector snapshots.
	CollectEvery int
	// Seed feeds the simulation's deterministic RNG streams.
	Seed uint64
	// Engine parallelizes agent sweeps; nil selects SequentialEngine.
	Engine Engine
	// NoFastForward disables the event-horizon fast-forward and forces the
	// plain tick-by-tick loop: every source polled every tick, every jump
	// length 1. Results are bit-identical either way — the equivalence
	// tests enforce it — so the flag exists for A/B benchmarking and as a
	// bisection aid, not as a safety valve. It implies NoCalendar.
	NoFastForward bool
	// NoCalendar disables the indexed event calendar and the poll
	// scheduler, restoring the scan-based fast-forward loop that recomputes
	// every source's NextPoll and every active agent's Horizon on each
	// iteration. Results are bit-identical with the calendar on or off;
	// the flag exists for A/B benchmarking the O(changed) scheduling win.
	NoCalendar bool
	// NoThinning disables exponential-gap arrival thinning in sources that
	// support it (workload.AppWorkload), forcing per-tick Poisson draws.
	// Unlike the loop flags this one changes the RNG draw sequence: with
	// thinning on, results are distribution-identical to the per-tick loop
	// (same arrival law), not bit-identical; NoThinning restores the
	// bit-identity guarantee for client workloads.
	NoThinning bool
}

// Simulation owns the discrete time loop and everything attached to it:
// agents, sources, collector, response tracker and RNG. It is not safe for
// concurrent use; the engine parallelism is internal to the sweep phase.
type Simulation struct {
	clock   *simtime.Clock
	engine  Engine
	rebind  bool
	agents  []Agent
	sources []Source

	// active holds the IDs of agents with in-flight work or a pin, in no
	// particular order between ticks; Tick sorts it before each sweep so
	// both the sweep and the drain iterate in global agent-ID order — the
	// property that keeps every engine deterministic. Membership is
	// duplicate-free: AgentBase.active gates insertion.
	active []AgentID
	sweep  []Agent // scratch: the current tick's sorted active agents

	// activeSorted and sweepStale let unchanged ticks skip the sort and the
	// sweep re-slice: activation clears them (an append below the current
	// tail also breaks sortedness), deactivation compaction preserves order
	// but invalidates the materialized sweep.
	activeSorted bool
	sweepStale   bool

	Collector *metrics.Collector
	Responses *metrics.Responses

	collectEvery simtime.Tick
	rng          *rand.Rand

	fastForward bool   // event-horizon jumps enabled (Config.NoFastForward off)
	useCalendar bool   // indexed event calendar + poll scheduler (NoCalendar off)
	thinning    bool   // sources may thin arrivals (Config.NoThinning off)
	jumps       uint64 // fast-forward jumps taken
	skipped     uint64 // whole ticks the jumps fast-forwarded across

	// cal is the pending-event set: one entry per active agent, keyed by
	// the absolute tick at which the agent may next act. dirty queues the
	// agents whose cached key is invalid — newly enqueued-on, drained into,
	// or past their event tick — for a horizon rekey; membership is gated
	// by AgentBase.dirty so the per-iteration cost is O(changed agents).
	cal   calendar
	dirty []AgentID

	// srcDue caches each source's due tick (first tick whose Poll may have
	// an observable effect); srcMin is their minimum and srcDormant counts
	// the sources reporting +Inf, which are re-consulted every iteration
	// because a completion callback may re-arm them off-schedule.
	srcDue     []simtime.Tick
	srcMin     simtime.Tick
	srcDormant int

	gaugeIdx  map[string]Gauge
	gaugeVals []float64

	nextFlowID   uint64
	nextTaskID   uint64
	activeFlows  int
	completedOps uint64
}

// NewSimulation builds a simulation from the configuration, applying
// defaults: 10 ms step, snapshot every 100 ticks, sequential engine.
func NewSimulation(cfg Config) *Simulation {
	if cfg.Step <= 0 {
		cfg.Step = 0.01
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = 100
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &SequentialEngine{}
	}
	return &Simulation{
		clock:        simtime.NewClock(cfg.Step),
		engine:       eng,
		Collector:    metrics.NewCollector(),
		Responses:    metrics.NewResponses(),
		collectEvery: simtime.Tick(cfg.CollectEvery),
		rng:          rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		gaugeIdx:     make(map[string]Gauge),
		fastForward:  !cfg.NoFastForward,
		useCalendar:  !cfg.NoCalendar && !cfg.NoFastForward,
		thinning:     !cfg.NoThinning,
		activeSorted: true,
		srcMin:       neverTick,
	}
}

// Clock exposes the simulation clock (read-only use by callers).
func (s *Simulation) Clock() *simtime.Clock { return s.clock }

// RNG returns the simulation's deterministic random stream. It must only be
// used from sequential phases (sources, expansion, completion callbacks).
func (s *Simulation) RNG() *rand.Rand { return s.rng }

// Thinning reports whether arrival thinning is enabled (Config.NoThinning
// off). Sources that can trade per-tick draws for sampled inter-arrival
// gaps (workload.AppWorkload) consult it so one simulation-level flag
// restores the bit-identity guarantee.
func (s *Simulation) Thinning() bool { return s.thinning }

// NextAgentID reserves the next agent identifier.
func (s *Simulation) NextAgentID() AgentID { return AgentID(len(s.agents)) }

// AddAgent registers an agent. The agent must have been initialized with
// the ID returned by the immediately preceding NextAgentID call.
func (s *Simulation) AddAgent(a Agent) {
	if got, want := a.ID(), AgentID(len(s.agents)); got != want {
		panic(fmt.Sprintf("core: agent %q registered with ID %d, want %d", a.Name(), got, want))
	}
	s.agents = append(s.agents, a)
	s.cal.grow(len(s.agents))
	b := a.Base()
	b.sim = s
	if b.pinned || !a.Idle() {
		b.MarkActive() // pinned (or pre-loaded) before registration
	}
	s.rebind = true
}

// activate records an agent ID in the active set. Callers go through
// AgentBase.MarkActive, which guarantees duplicate-free O(1) insertion.
// An append below the current tail breaks sortedness; any append
// invalidates the materialized sweep.
func (s *Simulation) activate(id AgentID) {
	if n := len(s.active); n > 0 && id < s.active[n-1] {
		s.activeSorted = false
	}
	s.active = append(s.active, id)
	s.sweepStale = true
}

// invalidate queues an agent for a calendar rekey. Callers go through
// AgentBase.MarkActive/MarkDirty, which gate duplicates; it must only run
// in sequential phases.
func (s *Simulation) invalidate(id AgentID) {
	if s.useCalendar {
		s.dirty = append(s.dirty, id)
	}
}

// ActiveAgents reports the current size of the active set.
func (s *Simulation) ActiveAgents() int { return len(s.active) }

// AddSource registers a work source. The scan loop polls it every tick;
// the calendar loop polls it whenever its NextPoll schedule is due,
// starting at the next tick boundary.
func (s *Simulation) AddSource(src Source) {
	s.sources = append(s.sources, src)
	due := s.clock.Now()
	s.srcDue = append(s.srcDue, due)
	if due < s.srcMin {
		s.srcMin = due
	}
}

// StartOp launches an operation instance now. Must be called from a
// sequential phase (a Source poll or a completion callback).
func (s *Simulation) StartOp(op OpRun) { s.startOp(op) }

// ActiveFlows reports the number of in-flight operations.
func (s *Simulation) ActiveFlows() int { return s.activeFlows }

// CompletedOps reports the total number of finished operations.
func (s *Simulation) CompletedOps() uint64 { return s.completedOps }

// Gauge is an interned handle to a named simulation gauge: an index into a
// dense value slice, so per-flow accounting on the hot path avoids the map
// lookup of the string-keyed API. The zero value is "no gauge".
type Gauge int

// GaugeHandle interns key and returns its handle. Handles are stable for
// the simulation's lifetime; interning the same key twice returns the same
// handle. Hot paths should intern once and use the handle-based methods.
func (s *Simulation) GaugeHandle(key string) Gauge {
	if key == "" {
		return 0
	}
	if g, ok := s.gaugeIdx[key]; ok {
		return g
	}
	s.gaugeVals = append(s.gaugeVals, 0)
	g := Gauge(len(s.gaugeVals)) // 1-based so the zero Gauge means "none"
	s.gaugeIdx[key] = g
	return g
}

// AddGaugeBy adjusts the gauge behind a handle by delta. A zero handle is a
// no-op, so callers can pass an unset optional gauge unconditionally.
func (s *Simulation) AddGaugeBy(g Gauge, delta float64) {
	if g != 0 {
		s.gaugeVals[g-1] += delta
	}
}

// GaugeValueBy reads the gauge behind a handle (0 for the zero handle).
func (s *Simulation) GaugeValueBy(g Gauge) float64 {
	if g == 0 {
		return 0
	}
	return s.gaugeVals[g-1]
}

// AddGauge adjusts a named gauge by delta — the string-keyed wrapper around
// GaugeHandle/AddGaugeBy for probes and infrequent callers.
func (s *Simulation) AddGauge(key string, delta float64) { s.AddGaugeBy(s.GaugeHandle(key), delta) }

// GaugeValue reads a named gauge (0 when never set).
func (s *Simulation) GaugeValue(key string) float64 { return s.GaugeValueBy(s.GaugeHandle(key)) }

// GaugeProbe returns a collector probe sampling the named gauge, for
// concurrent-client series (Fig. 5-6). The handle is resolved once.
func (s *Simulation) GaugeProbe(key string) metrics.Probe {
	g := s.GaugeHandle(key)
	return metrics.Probe{Key: key, Sample: func(float64) float64 { return s.GaugeValueBy(g) }}
}

// Tick advances the simulation by exactly one step, executing the three
// phases described in the package documentation. Direct callers always get
// a single step; the event-horizon fast-forward only engages inside
// RunFor/RunUntilIdle, which pass their end tick as the jump bound.
func (s *Simulation) Tick() { s.tick(s.clock.Now() + 1) }

// tick advances the simulation by one step or, when the event horizon
// allows, by a jump of whole ticks landing no later than limit.
func (s *Simulation) tick(limit simtime.Tick) {
	step := s.clock.Step()
	now := s.clock.NowSeconds()

	// Phase 0 (sequential): sources inject new work for this tick,
	// activating the agents they enqueue on. The calendar loop polls only
	// the sources whose schedule is due — skipped polls are no-ops by the
	// NextPoll contract; the scan loop polls everything every tick.
	if s.useCalendar {
		s.pollDue(now)
	} else {
		for _, src := range s.sources {
			src.Poll(s, now)
		}
	}

	// Rebind after the polls: sources may register agents that are
	// activated into this very tick's sweep, and engines size per-agent
	// resources (ScatterGather's port table) from the bound population.
	if s.rebind {
		s.engine.Bind(s.agents)
		s.rebind = false
	}

	// Materialize this tick's active agents in ascending ID order — the
	// drain order contract that keeps every engine deterministic. Ticks
	// with an unchanged active set skip both the sort and the re-slice:
	// activation invalidates them, deactivation compaction preserves order
	// but invalidates the materialized sweep.
	if !s.activeSorted {
		slices.Sort(s.active)
		s.activeSorted = true
		s.sweepStale = true
	}
	if s.sweepStale {
		s.sweep = s.sweep[:0]
		for _, id := range s.active {
			s.sweep = append(s.sweep, s.agents[id])
		}
		s.sweepStale = false
	}

	// Fold this tick's invalidations — source enqueues, fresh
	// registrations — into the calendar before reading its head.
	if s.useCalendar {
		s.rekeyDirty()
	}

	jump := simtime.Tick(1)
	if s.fastForward && limit > s.clock.Now()+1 {
		if s.useCalendar {
			jump = s.quietTicksCal(limit)
		} else {
			jump = s.quietTicks(limit)
		}
	}

	// Phase 1 (parallel): time increment over the active agents only.
	if jump == 1 {
		s.engine.Sweep(s.sweep, func(a Agent) { a.Step(step) })
	} else {
		// Event-horizon fast-forward: no source fires and no agent event
		// falls within the next jump ticks, so the skipped polls, drains
		// and bookkeeping are all no-ops. Each active agent still advances
		// through the elapsed ticks with the same fixed step the plain
		// loop would use — one large dt would change float accumulation
		// order and break bit-identity — but agent-locally, without the
		// per-tick loop machinery: bulk-stepping agents collapse the
		// window into tight per-accumulator loops, the rest replay Step
		// tick by tick, and an empty active set jumps in O(1).
		n := int(jump)
		s.engine.Sweep(s.sweep, func(a Agent) {
			if bs, ok := a.(BulkStepper); ok {
				bs.StepN(n, step)
				return
			}
			for i := 0; i < n; i++ {
				a.Step(step)
			}
		})
		s.jumps++
		s.skipped += uint64(jump - 1)
	}

	tick := s.clock.AdvanceBy(jump)

	// Agents whose scheduled event tick has arrived may have acted during
	// the sweep; pop them off the calendar and queue them for a rekey once
	// the drain has settled their state.
	if s.useCalendar {
		s.popDue(tick)
	}

	// Phase 3 (sequential): interaction — completed tasks advance flows.
	// Downstream agents activated here join s.active beyond this tick's
	// sweep slice and are first served next tick (§4.3.3 timestamp rule).
	for _, a := range s.sweep {
		a.Drain(s.onTaskDone)
	}

	// Deactivation: drop swept agents that went idle, keeping relative
	// order, then re-append agents activated during the drain. Writes into
	// the kept prefix never overtake the reads: kept grows at most as fast
	// as the loop index.
	kept := s.active[:0]
	for i, a := range s.sweep {
		b := a.Base()
		if b.pinned || !a.Idle() {
			kept = append(kept, s.active[i])
		} else {
			b.active = false
			if s.useCalendar {
				s.cal.remove(b.id)
			}
		}
	}
	if len(kept) != len(s.sweep) {
		s.sweepStale = true
	}
	s.active = append(kept, s.active[len(s.sweep):]...)

	// Rekey everything invalidated since the jump was sized: agents past
	// their event tick, downstream agents enqueued during the drain.
	if s.useCalendar {
		s.rekeyDirty()
	}

	// Phase 2: measurement collection at snapshot boundaries.
	if tick%s.collectEvery == 0 {
		s.Collector.Snapshot(s.clock.NowSeconds())
	}
}

// ffGuard is the safety margin, in seconds, subtracted from agent horizons
// before converting them to whole ticks. Queue models complete work within
// a sub-epsilon of the exact instant (the eps thresholds in
// internal/queueing and the delay heap), and a replayed jump accumulates
// per-step float error; the guard absorbs both so an event can never fire
// inside the ticks a jump skips. It is orders of magnitude below any
// realistic step size, so it almost never shortens a jump.
const ffGuard = 1e-6

// quietTicks returns how many whole ticks the clock may advance in one
// jump, in [1, limit-now]: the stretch strictly before the earliest
// observable event — a source's next effective poll, an active agent's next
// completion or internal handoff — additionally capped at the next
// collector boundary so snapshots sample (and reset) busy accumulators at
// exactly the ticks the plain loop would.
func (s *Simulation) quietTicks(limit simtime.Tick) simtime.Tick {
	now := s.clock.Now()
	max := limit - now
	if b := s.collectEvery - now%s.collectEvery; b < max {
		max = b
	}
	if max <= 1 {
		return 1
	}
	nowSec := s.clock.NowSeconds()
	step := s.clock.Step()

	// Sources first: they are few, and a due source (an active Poisson
	// workload, any SourceFunc) vetoes the jump before the active set is
	// scanned at all.
	pmin := math.Inf(1)
	for _, src := range s.sources {
		if p := src.NextPoll(nowSec); p < pmin {
			pmin = p
		}
	}
	if pmin <= nowSec+step {
		return 1
	}

	// Earliest event on any active agent, bailing out as soon as one is
	// due within the next tick — in busy stretches that is the common case
	// and keeps the scan cheap.
	h := math.Inf(1)
	for _, a := range s.sweep {
		if ah := a.Horizon(); ah < h {
			h = ah
			if h <= step+ffGuard {
				return 1
			}
		}
	}

	k := max
	if !math.IsInf(h, 1) {
		// The event tick itself is single-stepped by a later iteration:
		// the jump must land strictly before it.
		if ke := s.clock.WholeTicksBefore(h - ffGuard); ke < k {
			k = ke
		}
	}
	if !math.IsInf(pmin, 1) {
		// Skipped polls sit at ticks now+1 .. now+k-1; every one must land
		// strictly before the earliest due poll. The jump itself may land
		// on the poll tick — that tick polls normally. The float estimate
		// is corrected against the exact tick-time arithmetic the plain
		// loop uses for its poll timestamps.
		if kp := s.clock.WholeTicksBefore(pmin-nowSec) + 1; kp < k {
			k = kp
		}
		for k > 1 && s.clock.SecondsAt(now+k-1) >= pmin {
			k--
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// pollDue runs the due sources' polls and refreshes their schedules. A
// source is due when the current tick has reached its cached due tick; by
// the NextPoll contract every poll strictly before that instant is a no-op,
// so skipping it is exact. Dormant sources (+Inf schedules) are re-consulted
// every iteration because only a completion callback can re-arm them — the
// cost is one NextPoll call, and it preserves the pre-calendar pickup
// timing. Iterations where nothing is due and nothing is dormant cost O(1).
func (s *Simulation) pollDue(nowSec float64) {
	now := s.clock.Now()
	if s.srcMin > now && s.srcDormant == 0 {
		return
	}
	n := len(s.sources) // sources added by a poll are first polled next tick
	for i := 0; i < n; i++ {
		switch due := s.srcDue[i]; {
		case due <= now:
			s.sources[i].Poll(s, nowSec)
			s.srcDue[i] = s.srcDueTick(s.sources[i].NextPoll(nowSec), now)
		case due == neverTick:
			s.srcDue[i] = s.srcDueTick(s.sources[i].NextPoll(nowSec), now)
		}
	}
	min, dormant := neverTick, 0
	for _, due := range s.srcDue {
		if due == neverTick {
			dormant++
		} else if due < min {
			min = due
		}
	}
	s.srcMin, s.srcDormant = min, dormant
}

// srcDueTick converts a NextPoll instant into the first tick whose poll may
// matter: the first tick at or after p in the exact tick-time arithmetic
// the loop uses for poll timestamps. A source reporting now or earlier
// wants classic per-tick polling and is due again at the next tick; +Inf
// (and schedules beyond any representable run) map to neverTick.
func (s *Simulation) srcDueTick(p float64, now simtime.Tick) simtime.Tick {
	if math.IsInf(p, 1) {
		return neverTick
	}
	nowSec := s.clock.SecondsAt(now)
	if p <= nowSec {
		return now + 1
	}
	k := s.clock.WholeTicksBefore(p - nowSec)
	if k >= 1<<62 {
		return neverTick
	}
	n := now + k + 1
	// Correct the float estimate in both directions: the due tick is the
	// first tick landing at or after p, and every earlier tick must fall
	// strictly before p (those are the polls a jump skips).
	for n > now+1 && s.clock.SecondsAt(n-1) >= p {
		n--
	}
	for s.clock.SecondsAt(n) < p {
		n++
	}
	return n
}

// agentKey converts an agent horizon, observed at tick now, into the
// calendar key: the first tick at which the agent may act. Jumps land
// strictly before it, exactly reproducing the scan loop's per-iteration
// bound (WholeTicksBefore of the guarded horizon).
func (s *Simulation) agentKey(h float64, now simtime.Tick) simtime.Tick {
	if math.IsInf(h, 1) {
		return neverTick
	}
	return now + s.clock.WholeTicksBefore(h-ffGuard) + 1
}

// rekeyDirty recomputes the calendar entry of every agent whose horizon was
// invalidated — enqueued on, drained into, past its event tick, or
// deactivated — and clears the dirty set. This is the O(changed) core of
// the calendar loop: only these agents pay a Horizon call per iteration.
func (s *Simulation) rekeyDirty() {
	if len(s.dirty) == 0 {
		return
	}
	now := s.clock.Now()
	for _, id := range s.dirty {
		a := s.agents[id]
		b := a.Base()
		b.dirty = false
		if !b.active {
			s.cal.remove(id)
			continue
		}
		s.cal.set(id, s.agentKey(a.Horizon(), now))
	}
	s.dirty = s.dirty[:0]
}

// popDue moves every agent whose scheduled event tick has arrived from the
// calendar into the dirty set. Between invalidations an agent's state
// evolves deterministically under Step, so its absolute event tick stays
// valid however far the clock advanced — only agents at (or past, after a
// forced single step) their key can have acted.
func (s *Simulation) popDue(now simtime.Tick) {
	for s.cal.len() > 0 && s.cal.minKey() <= now {
		id := s.cal.popMin()
		b := s.agents[id].Base()
		if !b.dirty {
			b.dirty = true
			s.dirty = append(s.dirty, id)
		}
	}
}

// quietTicksCal is the calendar-indexed replacement for quietTicks: the
// same jump bound — strictly before the earliest agent event, at or before
// the earliest due poll, capped at the collector boundary and limit — read
// off the calendar head and the cached source schedule in O(1) instead of
// re-scanning every source and active agent.
func (s *Simulation) quietTicksCal(limit simtime.Tick) simtime.Tick {
	now := s.clock.Now()
	max := limit - now
	if b := s.collectEvery - now%s.collectEvery; b < max {
		max = b
	}
	if max <= 1 {
		return 1
	}
	// The jump may land exactly on the earliest due poll tick — that tick
	// polls normally; all skipped ticks fall strictly before the schedule.
	if s.srcMin != neverTick {
		if k := s.srcMin - now; k < max {
			max = k
		}
	}
	// The earliest agent event tick itself is single-stepped by a later
	// iteration: the jump lands strictly before it.
	if h := s.cal.minKey(); h != neverTick {
		if k := h - 1 - now; k < max {
			max = k
		}
	}
	if max < 1 {
		return 1
	}
	return max
}

// FastForwardStats reports how many event-horizon jumps the loop has taken
// and how many whole ticks those jumps skipped (beyond the one tick each
// loop iteration always advances).
func (s *Simulation) FastForwardStats() (jumps, skippedTicks uint64) {
	return s.jumps, s.skipped
}

// RunFor advances the simulation by d simulated seconds.
func (s *Simulation) RunFor(d float64) {
	end := s.clock.Now() + s.clock.TicksIn(d)
	for s.clock.Now() < end {
		s.tick(end)
	}
}

// RunUntilIdle runs until no flows remain in flight and all agents are
// idle, or maxSeconds of simulated time elapse. It returns an error on
// timeout so stuck cascades surface in tests instead of hanging.
func (s *Simulation) RunUntilIdle(maxSeconds float64) error {
	deadline := s.clock.Now() + s.clock.TicksIn(maxSeconds)
	for s.clock.Now() < deadline {
		s.tick(deadline)
		if s.activeFlows == 0 && s.agentsIdle() {
			return nil
		}
	}
	return fmt.Errorf("core: %d flows still active after %v simulated seconds", s.activeFlows, maxSeconds)
}

// agentsIdle reports whether no agent holds in-flight work. Deactivation
// keeps every non-idle agent in the active set, so only that set — after a
// tick, just the pinned agents plus drain-phase activations — needs
// checking, replacing the full-population scan.
func (s *Simulation) agentsIdle() bool {
	for _, id := range s.active {
		if !s.agents[id].Idle() {
			return false
		}
	}
	return true
}

// Shutdown releases engine resources. The simulation must not tick after.
func (s *Simulation) Shutdown() { s.engine.Shutdown() }
