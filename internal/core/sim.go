package core

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/metrics"
	"repro/internal/simtime"
)

// Source injects work into the simulation. Sources are polled once per tick
// in the sequential phase, before the agent sweep: workload generators start
// client operations, background daemons launch SYNCHREP/INDEXBUILD jobs.
type Source interface {
	Poll(s *Simulation, now float64)
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(s *Simulation, now float64)

// Poll calls f.
func (f SourceFunc) Poll(s *Simulation, now float64) { f(s, now) }

// Config parameterizes a Simulation.
type Config struct {
	// Step is the time-loop granularity in seconds (§4.3.1 recommends at
	// least one order of magnitude below the canonical operation costs).
	Step float64
	// CollectEvery is the number of ticks between collector snapshots.
	CollectEvery int
	// Seed feeds the simulation's deterministic RNG streams.
	Seed uint64
	// Engine parallelizes agent sweeps; nil selects SequentialEngine.
	Engine Engine
}

// Simulation owns the discrete time loop and everything attached to it:
// agents, sources, collector, response tracker and RNG. It is not safe for
// concurrent use; the engine parallelism is internal to the sweep phase.
type Simulation struct {
	clock   *simtime.Clock
	engine  Engine
	rebind  bool
	agents  []Agent
	sources []Source

	Collector *metrics.Collector
	Responses *metrics.Responses

	collectEvery simtime.Tick
	rng          *rand.Rand
	gauges       map[string]float64

	nextFlowID   uint64
	nextTaskID   uint64
	activeFlows  int
	completedOps uint64
}

// NewSimulation builds a simulation from the configuration, applying
// defaults: 10 ms step, snapshot every 100 ticks, sequential engine.
func NewSimulation(cfg Config) *Simulation {
	if cfg.Step <= 0 {
		cfg.Step = 0.01
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = 100
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &SequentialEngine{}
	}
	return &Simulation{
		clock:        simtime.NewClock(cfg.Step),
		engine:       eng,
		Collector:    metrics.NewCollector(),
		Responses:    metrics.NewResponses(),
		collectEvery: simtime.Tick(cfg.CollectEvery),
		rng:          rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		gauges:       make(map[string]float64),
	}
}

// Clock exposes the simulation clock (read-only use by callers).
func (s *Simulation) Clock() *simtime.Clock { return s.clock }

// RNG returns the simulation's deterministic random stream. It must only be
// used from sequential phases (sources, expansion, completion callbacks).
func (s *Simulation) RNG() *rand.Rand { return s.rng }

// NextAgentID reserves the next agent identifier.
func (s *Simulation) NextAgentID() AgentID { return AgentID(len(s.agents)) }

// AddAgent registers an agent. The agent must have been initialized with
// the ID returned by the immediately preceding NextAgentID call.
func (s *Simulation) AddAgent(a Agent) {
	if got, want := a.ID(), AgentID(len(s.agents)); got != want {
		panic(fmt.Sprintf("core: agent %q registered with ID %d, want %d", a.Name(), got, want))
	}
	s.agents = append(s.agents, a)
	s.rebind = true
}

// AddSource registers a work source polled every tick.
func (s *Simulation) AddSource(src Source) { s.sources = append(s.sources, src) }

// StartOp launches an operation instance now. Must be called from a
// sequential phase (a Source poll or a completion callback).
func (s *Simulation) StartOp(op OpRun) { s.startOp(op) }

// ActiveFlows reports the number of in-flight operations.
func (s *Simulation) ActiveFlows() int { return s.activeFlows }

// CompletedOps reports the total number of finished operations.
func (s *Simulation) CompletedOps() uint64 { return s.completedOps }

// AddGauge adjusts a named gauge by delta.
func (s *Simulation) AddGauge(key string, delta float64) { s.gauges[key] += delta }

// GaugeValue reads a named gauge (0 when never set).
func (s *Simulation) GaugeValue(key string) float64 { return s.gauges[key] }

// GaugeProbe returns a collector probe sampling the named gauge, for
// concurrent-client series (Fig. 5-6).
func (s *Simulation) GaugeProbe(key string) metrics.Probe {
	return metrics.Probe{Key: key, Sample: func(float64) float64 { return s.gauges[key] }}
}

// Tick advances the simulation by exactly one step, executing the three
// phases described in the package documentation.
func (s *Simulation) Tick() {
	if s.rebind {
		s.engine.Bind(s.agents)
		s.rebind = false
	}
	dt := s.clock.Step()
	now := s.clock.NowSeconds()

	// Phase 0 (sequential): sources inject new work for this tick.
	for _, src := range s.sources {
		src.Poll(s, now)
	}

	// Phase 1 (parallel): time increment over all agents.
	s.engine.Sweep(func(a Agent) { a.Step(dt) })

	tick := s.clock.Advance()

	// Phase 3 (sequential): interaction — completed tasks advance flows.
	// Agents drain in ID order, which makes every engine deterministic.
	for _, a := range s.agents {
		a.Drain(s.onTaskDone)
	}

	// Phase 2: measurement collection at snapshot boundaries.
	if tick%s.collectEvery == 0 {
		s.Collector.Snapshot(s.clock.NowSeconds())
	}
}

// RunFor advances the simulation by d simulated seconds.
func (s *Simulation) RunFor(d float64) {
	end := s.clock.Now() + s.clock.TicksIn(d)
	for s.clock.Now() < end {
		s.Tick()
	}
}

// RunUntilIdle ticks until no flows remain in flight and all agents are
// idle, or maxSeconds of simulated time elapse. It returns an error on
// timeout so stuck cascades surface in tests instead of hanging.
func (s *Simulation) RunUntilIdle(maxSeconds float64) error {
	deadline := s.clock.Now() + s.clock.TicksIn(maxSeconds)
	for s.clock.Now() < deadline {
		s.Tick()
		if s.activeFlows == 0 && s.agentsIdle() {
			return nil
		}
	}
	return fmt.Errorf("core: %d flows still active after %v simulated seconds", s.activeFlows, maxSeconds)
}

func (s *Simulation) agentsIdle() bool {
	for _, a := range s.agents {
		if !a.Idle() {
			return false
		}
	}
	return true
}

// Shutdown releases engine resources. The simulation must not tick after.
func (s *Simulation) Shutdown() { s.engine.Shutdown() }
