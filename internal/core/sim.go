package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"slices"

	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/simtime"
)

// Source injects work into the simulation. Sources are polled in the
// sequential phase, before the agent sweep: workload generators start
// client operations, background daemons launch SYNCHREP/INDEXBUILD jobs.
type Source interface {
	Poll(s *Simulation, now float64)
	// NextPoll reports the earliest simulated time at which a future Poll
	// may have an observable effect (launch work, draw randomness, move a
	// gauge), given that the source was just polled at now. Polls strictly
	// before the returned instant must be no-ops; the event-horizon
	// fast-forward relies on that contract to skip them wholesale.
	// Returning now (or any instant within the next step) keeps classic
	// per-tick polling. +Inf parks the source: the calendar loop will not
	// consult it again, so a source that is merely dormant — re-armed by a
	// completion callback rather than exhausted — must have that callback
	// invoke Simulation.RearmSource with the handle AddSource returned.
	NextPoll(now float64) float64
}

// SourceFunc adapts a function to the Source interface.
type SourceFunc func(s *Simulation, now float64)

// Poll calls f.
func (f SourceFunc) Poll(s *Simulation, now float64) { f(s, now) }

// NextPoll returns now: an adapted function gives no schedule information,
// so it is conservatively polled every tick and vetoes fast-forward jumps.
func (f SourceFunc) NextPoll(now float64) float64 { return now }

// Config parameterizes a Simulation.
type Config struct {
	// Step is the time-loop granularity in seconds (§4.3.1 recommends at
	// least one order of magnitude below the canonical operation costs).
	Step float64
	// CollectEvery is the number of ticks between collector snapshots.
	CollectEvery int
	// Seed feeds the simulation's deterministic RNG streams.
	Seed uint64
	// Engine parallelizes agent sweeps; nil selects SequentialEngine.
	Engine Engine
	// NoFastForward disables the event-horizon fast-forward and forces the
	// plain tick-by-tick loop: every source polled every tick, every jump
	// length 1. Results are bit-identical either way — the equivalence
	// tests enforce it — so the flag exists for A/B benchmarking and as a
	// bisection aid, not as a safety valve. It implies NoCalendar.
	NoFastForward bool
	// NoCalendar disables the indexed event calendar and the poll
	// scheduler, restoring the scan-based fast-forward loop that recomputes
	// every source's NextPoll and every active agent's Horizon on each
	// iteration. Results are bit-identical with the calendar on or off;
	// the flag exists for A/B benchmarking the O(changed) scheduling win.
	// It implies NoBulkDense.
	NoCalendar bool
	// NoBulkDense disables agent-local bulk stepping for dense periods and
	// the calendar-driven drain, restoring the lock-step calendar loop that
	// sweeps and drains every active agent on every iteration. With the
	// flag off (the default), each iteration globally steps only the agents
	// whose calendar entry is due plus the pinned set; every other active
	// agent is advanced lazily — caught up in one bulk replay when it is
	// next enqueued on, popped due, or a collector boundary lands — and the
	// drain walks only the popped-due set plus the agents whose queues
	// fired SetNotify since the last drain. Results are bit-identical
	// either way — the equivalence tests enforce it — so the flag exists
	// for A/B benchmarking and bisection, not as a safety valve.
	NoBulkDense bool
	// NoThinning disables exponential-gap arrival thinning in sources that
	// support it (workload.AppWorkload), forcing per-tick Poisson draws.
	// Unlike the loop flags this one changes the RNG draw sequence: with
	// thinning on, results are distribution-identical to the per-tick loop
	// (same arrival law), not bit-identical; NoThinning restores the
	// bit-identity guarantee for client workloads.
	NoThinning bool
	// NoShards disables the sharded PDES runtime even when Engine is a
	// ShardRunner: the engine's workers still serve plain Sweep calls, but
	// the simulation skips the shard partition, the drain-phase mailboxes
	// and the shard-local window phases, running the stock bulk-dense
	// loop. Results are bit-identical with sharding on or off — the
	// equivalence tests enforce it — so like the other loop flags this is
	// an A/B benchmarking and bisection aid, not a safety valve.
	NoShards bool
	// NoStretch disables Chandy-Misra window stretching in the sharded
	// runtime: the simulation still partitions agents onto shards and
	// defers drain enqueues through the mailboxes, but every calendar
	// window ends in a global barrier as in the classic conservative loop,
	// instead of letting each shard run freely through consecutive windows
	// up to its safe bound. Results are bit-identical with stretching on or
	// off — the equivalence tests enforce it — so this is the A/B flag for
	// measuring what the spent lookahead buys (RunStats.Barriers /
	// RunStats.WindowsStretched), not a safety valve. No effect unless the
	// sharded runtime is active.
	NoStretch bool
	// NoCrossStretch keeps window stretching for shard-confined traffic but
	// restores the pre-lookahead guard for cross-shard traffic: spans only
	// form while no cross-shard flow is in flight, instead of bounding the
	// span by the WAN lookahead and each live cross token's conservative
	// completion bound. Results are bit-identical with the flag on or off —
	// the equivalence tests enforce it — so this is the A/B switch for
	// measuring what mid-span cross-DC delivery buys on its own, separate
	// from what NoStretch measures. No effect unless stretching is active.
	NoCrossStretch bool
	// NoFaults disables fault injection: attachment layers that would
	// schedule a fault controller (experiment compile) consult
	// FaultsEnabled and skip it entirely, so the run carries no controller
	// source, no fault probes and no fault transitions. The resulting run
	// is bit-identical to one that never declared faults — the equivalence
	// tests enforce it — making this the A/B flag for chaos scenarios in
	// the same spirit as NoCalendar/NoBulkDense: healthy baseline vs.
	// faulted run from one scenario definition.
	NoFaults bool
}

// Simulation owns the discrete time loop and everything attached to it:
// agents, sources, collector, response tracker and RNG. It is not safe for
// concurrent use; the engine parallelism is internal to the sweep phase.
type Simulation struct {
	clock   *simtime.Clock
	engine  Engine
	rebind  bool
	agents  []Agent
	sources []Source

	// active holds the IDs of agents with in-flight work or a pin, in no
	// particular order between ticks; Tick sorts it before each sweep so
	// both the sweep and the drain iterate in global agent-ID order — the
	// property that keeps every engine deterministic. Membership is
	// duplicate-free: AgentBase.active gates insertion.
	active []AgentID
	sweep  []Agent // scratch: the current tick's sorted active agents

	// activeSorted and sweepStale let unchanged ticks skip the sort and the
	// sweep re-slice: activation clears them (an append below the current
	// tail also breaks sortedness), deactivation compaction preserves order
	// but invalidates the materialized sweep.
	activeSorted bool
	sweepStale   bool

	Collector *metrics.Collector
	Responses *metrics.Responses

	collectEvery simtime.Tick
	seed         uint64
	rng          *rand.Rand

	fastForward bool   // event-horizon jumps enabled (Config.NoFastForward off)
	useCalendar bool   // indexed event calendar + poll scheduler (NoCalendar off)
	bulkDense   bool   // agent-local bulk stepping + calendar drains (NoBulkDense off)
	thinning    bool   // sources may thin arrivals (Config.NoThinning off)
	noFaults    bool   // fault injection disabled (Config.NoFaults on)
	jumps       uint64 // fast-forward jumps taken
	skipped     uint64 // whole ticks the jumps fast-forwarded across

	// cal is the pending-event set: one entry per active agent, keyed by
	// the absolute tick at which the agent may next act. dirty queues the
	// agents whose cached key is invalid — newly enqueued-on, drained into,
	// or past their event tick — for a horizon rekey; membership is gated
	// by AgentBase.dirty so the per-iteration cost is O(changed agents).
	cal   calendar
	dirty []AgentID

	// Bulk-dense loop state. agentTick records, per agent, the tick its
	// state has been stepped through — meaningful only while the agent is
	// active; lazily-stepped agents trail the clock and are caught up by
	// syncAgent. drainPend is the calendar-driven drain set: the agents
	// marked dirty since the last drain (popped due, enqueued on via
	// SetNotify), gated by AgentBase.pendDrain; drainSpare recycles the
	// previous drain's backing array. pinnedIDs lists the pinned agents,
	// which join every window's sweep by contract. liveActive counts the
	// truly active agents (the active slice may carry tombstones between
	// compactions). invIDs/invAgents are the per-iteration involved-sweep
	// scratch.
	agentTick  []simtime.Tick
	drainPend  []AgentID
	drainSpare []AgentID
	pinnedIDs  []AgentID
	liveActive int
	invIDs     []AgentID
	invAgents  []Agent
	advanceTo  simtime.Tick         // current window's landing tick (sweep target)
	advanceFn  func(Agent)          // advanceInvolved, bound once (no per-sweep closure)
	drainFn    func(*queueing.Task) // onTaskDone, bound once (no per-drain closure)

	// srcDue caches each source's due tick (first tick whose Poll may have
	// an observable effect); srcMin is their minimum. Sources reporting
	// +Inf are parked until Simulation.RearmSource re-consults them — a
	// completion callback that re-arms a dormant source must notify the
	// simulation explicitly. srcDC names, per source, the data center a
	// lane-confined source (AddLaneSource) injects into — "" for global
	// sources, whose due ticks bound every stretched span.
	srcDue []simtime.Tick
	srcMin simtime.Tick
	srcDC  []string

	// crossFlows counts the in-flight flows that are not shard-confined:
	// non-Local cascades (cross-DC hops) and flows carrying an OnComplete
	// callback (sequential-phase control transfers, e.g. daemon re-arms).
	// Under Config.NoCrossStretch the stretched-span scheduler only forms
	// spans while this is zero; by default it instead walks crossToks — the
	// live message tokens of those flows — and bounds each span by every
	// token's conservative chain-completion bound plus the WAN lookahead,
	// so spans survive live cross-DC cascades (see trySpan).
	crossFlows int

	// crossToks registers every live token of a cross-capable flow
	// (Flow.global). Tokens register at creation and unregister at
	// tokenDone, both sequential phases; token.reg holds the index for
	// swap-removal. trySpan derives, per token, a lower bound on the tick
	// its final stage can complete — chain-end completion re-enters
	// non-lane-safe code (step expansion, load balancing, RNG), so spans
	// must end strictly before the earliest such bound.
	crossToks []*token

	// barriers counts global synchronization points of the sharded loop
	// (one per classic window, one per stretched span); stretched counts
	// the shard-local windows executed inside spans. Their ratio is the
	// headline win of spending the WAN lookahead.
	barriers  uint64
	stretched uint64

	// sh is the sharded-runtime state, non-nil only when the engine is a
	// ShardRunner, the bulk-dense loop is on and Config.NoShards is off.
	sh *shardState

	// hMemo/hMemoTick memoize each agent's last computed Horizon together
	// with the basis tick (the tick the agent's state was stepped through
	// when the horizon was read). A horizon is a pure function of agent
	// state, which only changes when the agent steps (the basis advances)
	// or work arrives (the invalidation hooks reset the entry), so a
	// basis-matched memo read is bitwise-exact — rekeyDirty and the bulk
	// chunk sizing share one computation instead of re-reading the queue.
	hMemo     []float64
	hMemoTick []simtime.Tick

	gaugeIdx  map[string]Gauge
	gaugeVals []float64
	tokenPool []*token // finished message tokens, reused by advanceFlow

	nextFlowID   uint64
	nextTaskID   uint64
	activeFlows  int
	completedOps uint64
}

// NewSimulation builds a simulation from the configuration, applying
// defaults: 10 ms step, snapshot every 100 ticks, sequential engine.
func NewSimulation(cfg Config) *Simulation {
	if cfg.Step <= 0 {
		cfg.Step = 0.01
	}
	if cfg.CollectEvery <= 0 {
		cfg.CollectEvery = 100
	}
	eng := cfg.Engine
	if eng == nil {
		eng = &SequentialEngine{}
	}
	s := &Simulation{
		clock:        simtime.NewClock(cfg.Step),
		engine:       eng,
		Collector:    metrics.NewCollector(),
		Responses:    metrics.NewResponses(),
		collectEvery: simtime.Tick(cfg.CollectEvery),
		seed:         cfg.Seed,
		rng:          rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		gaugeIdx:     make(map[string]Gauge),
		fastForward:  !cfg.NoFastForward,
		useCalendar:  !cfg.NoCalendar && !cfg.NoFastForward,
		bulkDense:    !cfg.NoBulkDense && !cfg.NoCalendar && !cfg.NoFastForward,
		thinning:     !cfg.NoThinning,
		noFaults:     cfg.NoFaults,
		activeSorted: true,
		srcMin:       neverTick,
	}
	s.advanceFn = s.advanceInvolved
	s.drainFn = s.onTaskDone
	// The sharded runtime needs the bulk-dense window structure: its
	// barriers are the window boundaries, so the lock-step loops run any
	// engine — including a ShardRunner — through plain Sweep calls.
	if sr, ok := eng.(ShardRunner); ok && s.bulkDense && !cfg.NoShards {
		s.sh = newShardState(s, sr, cfg.Seed)
		s.sh.stretch = !cfg.NoStretch
		s.sh.noCross = cfg.NoCrossStretch
	}
	return s
}

// Clock exposes the simulation clock (read-only use by callers).
func (s *Simulation) Clock() *simtime.Clock { return s.clock }

// RNG returns the simulation's deterministic random stream. It must only be
// used from sequential phases (sources, expansion, completion callbacks).
// Components that need their own stream should not consume draws from it —
// that couples them to every other consumer's draw count; they derive an
// independent seed with DeriveSeed(Seed(), stream) instead.
func (s *Simulation) RNG() *rand.Rand { return s.rng }

// Seed returns the seed the simulation was configured with — the base that
// sub-RNG creation sites pass to DeriveSeed.
func (s *Simulation) Seed() uint64 { return s.seed }

// Thinning reports whether arrival thinning is enabled (Config.NoThinning
// off). Sources that can trade per-tick draws for sampled inter-arrival
// gaps (workload.AppWorkload) consult it so one simulation-level flag
// restores the bit-identity guarantee.
func (s *Simulation) Thinning() bool { return s.thinning }

// FaultsEnabled reports whether fault injection may attach (Config.NoFaults
// off). Layers that schedule fault controllers consult it before adding
// any source or probe, so a NoFaults run is structurally — and therefore
// bit — identical to a fault-free one.
func (s *Simulation) FaultsEnabled() bool { return !s.noFaults }

// NextAgentID reserves the next agent identifier.
func (s *Simulation) NextAgentID() AgentID { return AgentID(len(s.agents)) }

// AddAgent registers an agent. The agent must have been initialized with
// the ID returned by the immediately preceding NextAgentID call.
func (s *Simulation) AddAgent(a Agent) {
	if s.sh != nil && s.sh.inSpan {
		panic(fmt.Sprintf("core: agent %q registered inside a stretched span", a.Name()))
	}
	if got, want := a.ID(), AgentID(len(s.agents)); got != want {
		panic(fmt.Sprintf("core: agent %q registered with ID %d, want %d", a.Name(), got, want))
	}
	s.agents = append(s.agents, a)
	s.cal.grow(len(s.agents))
	for len(s.agentTick) < len(s.agents) {
		s.agentTick = append(s.agentTick, 0)
	}
	for len(s.hMemoTick) < len(s.agents) {
		s.hMemoTick = append(s.hMemoTick, hMemoUnset)
		s.hMemo = append(s.hMemo, 0)
	}
	b := a.Base()
	b.sim = s
	if b.pinned || !a.Idle() {
		b.MarkActive() // pinned (or pre-loaded) before registration
		if b.pinned && !b.inPinned {
			b.inPinned = true
			s.pinnedIDs = append(s.pinnedIDs, b.id)
		}
	}
	s.rebind = true
}

// activate records an agent ID in the active set. Callers go through
// AgentBase.MarkActive, which guarantees duplicate-free O(1) insertion.
// An append below the current tail breaks sortedness; any append
// invalidates the materialized sweep. Under the bulk-dense loop an agent
// activates "current": its state has trivially been stepped through the
// present tick, so lazy catch-up starts from here; a tombstoned entry
// (deactivated but not yet compacted away) is revived in place.
func (s *Simulation) activate(id AgentID) {
	if s.sh != nil {
		if s.sh.applying {
			s.sh.activateLocal(s, id)
			return
		}
		if s.sh.inSpan {
			// Stretched span: the activation happened on a shard lane (an
			// enqueue from that lane's own flows — spans only run
			// shard-confined work), so it books onto the lane's active list
			// at the lane's local tick and merges at the exit barrier.
			ln := &s.sh.lanes[s.sh.shard(id)]
			ln.liveDelta++
			s.agentTick[id] = ln.tick
			b := s.agents[id].Base()
			if b.listed {
				return
			}
			b.listed = true
			ln.active = append(ln.active, id)
			return
		}
	}
	s.liveActive++
	s.agentTick[id] = s.clock.Now()
	b := s.agents[id].Base()
	if b.listed {
		return // bulk-dense tombstone: the slice entry is still there
	}
	b.listed = true
	if n := len(s.active); n > 0 && id < s.active[n-1] {
		s.activeSorted = false
	}
	s.active = append(s.active, id)
	s.sweepStale = true
}

// invalidate queues an agent for a calendar rekey and, under the
// bulk-dense loop, for the next calendar-driven drain. Callers go through
// AgentBase.MarkActive/MarkDirty, which gate duplicates; it must only run
// in sequential phases.
func (s *Simulation) invalidate(id AgentID) {
	if !s.useCalendar {
		return
	}
	if s.sh != nil {
		if s.sh.applying {
			s.sh.invalidateLocal(s, id)
			return
		}
		if s.sh.inSpan {
			// Stretched span: the invalidation came from the agent's own
			// lane, so it joins that lane's dirty and drain sets — the lane
			// window loop rekeys and drains with the same gating the global
			// loop uses.
			ln := &s.sh.lanes[s.sh.shard(id)]
			ln.dirty = append(ln.dirty, id)
			s.hMemoTick[id] = hMemoUnset
			if b := s.agents[id].Base(); !b.pendDrain {
				b.pendDrain = true
				ln.drainPend = append(ln.drainPend, id)
			}
			return
		}
	}
	s.dirty = append(s.dirty, id)
	s.hMemoTick[id] = hMemoUnset
	if s.bulkDense {
		if b := s.agents[id].Base(); !b.pendDrain {
			b.pendDrain = true
			s.drainPend = append(s.drainPend, id)
		}
	}
}

// hMemoUnset marks a horizon memo entry invalid. Basis ticks are clock
// ticks and therefore never negative.
const hMemoUnset = simtime.Tick(-1)

// agentHorizon returns the agent's horizon as observed at the given basis
// tick (the tick its state has been stepped through), memoizing the
// computation. Between invalidations an agent's state is a pure function
// of its basis, so a basis match returns the bitwise-identical value the
// direct call would produce. Callers in parallel phases are safe as long
// as each agent is read by its owning worker only — the memo slots are
// per-agent.
func (s *Simulation) agentHorizon(a Agent, basis simtime.Tick) float64 {
	id := a.ID()
	if s.hMemoTick[id] == basis {
		return s.hMemo[id]
	}
	h := a.Horizon()
	s.hMemo[id] = h
	s.hMemoTick[id] = basis
	return h
}

// ActiveAgents reports the current size of the active set.
func (s *Simulation) ActiveAgents() int { return s.liveActive }

// SourceHandle identifies a registered source. Handles are 1-based so the
// zero value means "none"; they are returned by AddSource and consumed by
// RearmSource.
type SourceHandle int

// AddSource registers a work source and returns its handle. The scan loop
// polls every source every tick; the calendar loop polls a source whenever
// its NextPoll schedule is due, starting at the next tick boundary. A
// source whose NextPoll returns +Inf is parked: it is not re-consulted
// until RearmSource is called with its handle, so a source that goes
// dormant and is re-armed by a completion callback must notify the
// simulation from that callback.
func (s *Simulation) AddSource(src Source) SourceHandle {
	if s.sh != nil && s.sh.inSpan {
		panic("core: source registered inside a stretched span")
	}
	s.sources = append(s.sources, src)
	due := s.clock.Now()
	s.srcDue = append(s.srcDue, due)
	s.srcDC = append(s.srcDC, "")
	if due < s.srcMin {
		s.srcMin = due
	}
	return SourceHandle(len(s.sources))
}

// AddLaneSource registers a work source that is confined to one data
// center: everything it launches is a Local (shard-confined) cascade on
// dc's agents, it draws randomness only from its own streams, and it never
// touches cross-DC state. That declaration lets the stretched-span
// scheduler poll the source from dc's shard lane between barriers instead
// of treating its due ticks as span bounds. A source registered this way
// must be fully initialized — its first in-lane Poll cannot intern gauges
// or otherwise mutate shared simulation state.
func (s *Simulation) AddLaneSource(src Source, dc string) SourceHandle {
	if dc == "" {
		panic("core: lane-confined source registered with an empty data-center name")
	}
	if s.sh != nil && len(s.sh.dcLane) > 0 {
		if _, ok := s.sh.dcLane[dc]; !ok {
			panic(fmt.Sprintf("core: lane-confined source bound to data center %q, which the shard plan does not partition (have %s)",
				dc, dcNames(s.sh.dcLane)))
		}
	}
	h := s.AddSource(src)
	s.srcDC[h-1] = dc
	return h
}

// RearmSource re-consults a parked source's NextPoll schedule. Completion
// callbacks that re-arm a dormant (+Inf-schedule) source call it so the
// calendar loop picks the new schedule up without re-polling every dormant
// source on every iteration; it is harmless (and cheap) to call for a
// source that never went dormant. The zero handle is a no-op, and the scan
// loop — which re-consults everything every tick anyway — ignores it.
func (s *Simulation) RearmSource(h SourceHandle) {
	if h <= 0 || int(h) > len(s.sources) || !s.useCalendar {
		return
	}
	if s.sh != nil && s.sh.inSpan {
		// Unreachable by construction: re-arms come from OnComplete
		// callbacks, OnComplete-bearing flows are cross-capable, and the
		// span scheduler ends every span strictly before any cross-capable
		// chain can complete (trySpan's tokenGuard bound).
		panic("core: RearmSource inside a stretched span")
	}
	i := int(h) - 1
	due := s.srcDueTick(s.sources[i].NextPoll(s.clock.NowSeconds()), s.clock.Now())
	s.srcDue[i] = due
	if due < s.srcMin {
		s.srcMin = due
	}
}

// StartOp launches an operation instance now. Must be called from a
// sequential phase (a Source poll or a completion callback).
func (s *Simulation) StartOp(op OpRun) { s.startOp(op) }

// ActiveFlows reports the number of in-flight operations.
func (s *Simulation) ActiveFlows() int { return s.activeFlows }

// CompletedOps reports the total number of finished operations.
func (s *Simulation) CompletedOps() uint64 { return s.completedOps }

// Gauge is an interned handle to a named simulation gauge: an index into a
// dense value slice, so per-flow accounting on the hot path avoids the map
// lookup of the string-keyed API. The zero value is "no gauge".
type Gauge int

// GaugeHandle interns key and returns its handle. Handles are stable for
// the simulation's lifetime; interning the same key twice returns the same
// handle. Hot paths should intern once and use the handle-based methods.
func (s *Simulation) GaugeHandle(key string) Gauge {
	if key == "" {
		return 0
	}
	if g, ok := s.gaugeIdx[key]; ok {
		return g
	}
	if s.sh != nil && s.sh.inSpan {
		panic(fmt.Sprintf("core: gauge %q interned inside a stretched span", key))
	}
	s.gaugeVals = append(s.gaugeVals, 0)
	g := Gauge(len(s.gaugeVals)) // 1-based so the zero Gauge means "none"
	s.gaugeIdx[key] = g
	return g
}

// AddGaugeBy adjusts the gauge behind a handle by delta. A zero handle is a
// no-op, so callers can pass an unset optional gauge unconditionally.
func (s *Simulation) AddGaugeBy(g Gauge, delta float64) {
	if g != 0 {
		s.gaugeVals[g-1] += delta
	}
}

// GaugeValueBy reads the gauge behind a handle (0 for the zero handle).
func (s *Simulation) GaugeValueBy(g Gauge) float64 {
	if g == 0 {
		return 0
	}
	return s.gaugeVals[g-1]
}

// AddGauge adjusts a named gauge by delta — the string-keyed wrapper around
// GaugeHandle/AddGaugeBy for probes and infrequent callers.
func (s *Simulation) AddGauge(key string, delta float64) { s.AddGaugeBy(s.GaugeHandle(key), delta) }

// GaugeValue reads a named gauge (0 when never set).
func (s *Simulation) GaugeValue(key string) float64 { return s.GaugeValueBy(s.GaugeHandle(key)) }

// GaugeProbe returns a collector probe sampling the named gauge, for
// concurrent-client series (Fig. 5-6). The handle is resolved once.
func (s *Simulation) GaugeProbe(key string) metrics.Probe {
	g := s.GaugeHandle(key)
	return metrics.Probe{Key: key, Sample: func(float64) float64 { return s.GaugeValueBy(g) }}
}

// Tick advances the simulation by exactly one step, executing the three
// phases described in the package documentation. Direct callers always get
// a single step; the event-horizon fast-forward only engages inside
// RunFor/RunUntilIdle, which pass their end tick as the jump bound.
func (s *Simulation) Tick() { s.tick(s.clock.Now() + 1) }

// tick advances the simulation by one step or, when the event horizon
// allows, by a jump of whole ticks landing no later than limit.
func (s *Simulation) tick(limit simtime.Tick) {
	if s.bulkDense {
		s.tickBulk(limit)
		return
	}
	step := s.clock.Step()
	now := s.clock.NowSeconds()

	// Phase 0 (sequential): sources inject new work for this tick,
	// activating the agents they enqueue on. The calendar loop polls only
	// the sources whose schedule is due — skipped polls are no-ops by the
	// NextPoll contract; the scan loop polls everything every tick.
	if s.useCalendar {
		s.pollDue(now)
	} else {
		for _, src := range s.sources {
			src.Poll(s, now)
		}
	}

	// Rebind after the polls: sources may register agents that are
	// activated into this very tick's sweep, and engines size per-agent
	// resources (ScatterGather's port table) from the bound population.
	if s.rebind {
		s.engine.Bind(s.agents)
		s.rebind = false
	}

	// Materialize this tick's active agents in ascending ID order — the
	// drain order contract that keeps every engine deterministic. Ticks
	// with an unchanged active set skip both the sort and the re-slice:
	// activation invalidates them, deactivation compaction preserves order
	// but invalidates the materialized sweep.
	if !s.activeSorted {
		slices.Sort(s.active)
		s.activeSorted = true
		s.sweepStale = true
	}
	if s.sweepStale {
		s.sweep = s.sweep[:0]
		for _, id := range s.active {
			s.sweep = append(s.sweep, s.agents[id])
		}
		s.sweepStale = false
	}

	// Fold this tick's invalidations — source enqueues, fresh
	// registrations — into the calendar before reading its head.
	if s.useCalendar {
		s.rekeyDirty()
	}

	jump := simtime.Tick(1)
	if s.fastForward && limit > s.clock.Now()+1 {
		if s.useCalendar {
			jump = s.quietTicksCal(limit)
		} else {
			jump = s.quietTicks(limit)
		}
	}

	// Phase 1 (parallel): time increment over the active agents only.
	if jump == 1 {
		s.engine.Sweep(s.sweep, func(a Agent) { a.Step(step) })
	} else {
		// Event-horizon fast-forward: no source fires and no agent event
		// falls within the next jump ticks, so the skipped polls, drains
		// and bookkeeping are all no-ops. Each active agent still advances
		// through the elapsed ticks with the same fixed step the plain
		// loop would use — one large dt would change float accumulation
		// order and break bit-identity — but agent-locally, without the
		// per-tick loop machinery: bulk-stepping agents collapse the
		// window into tight per-accumulator loops, the rest replay Step
		// tick by tick, and an empty active set jumps in O(1).
		n := int(jump)
		s.engine.Sweep(s.sweep, func(a Agent) {
			if bs, ok := a.(BulkStepper); ok {
				bs.StepN(n, step)
				return
			}
			for i := 0; i < n; i++ {
				a.Step(step)
			}
		})
		s.jumps++
		s.skipped += uint64(jump - 1)
	}

	tick := s.clock.AdvanceBy(jump)

	// Agents whose scheduled event tick has arrived may have acted during
	// the sweep; pop them off the calendar and queue them for a rekey once
	// the drain has settled their state.
	if s.useCalendar {
		s.popDue(tick)
	}

	// Phase 3 (sequential): interaction — completed tasks advance flows.
	// Downstream agents activated here join s.active beyond this tick's
	// sweep slice and are first served next tick (§4.3.3 timestamp rule).
	for _, a := range s.sweep {
		a.Drain(s.drainFn)
	}

	// Deactivation: drop swept agents that went idle, keeping relative
	// order, then re-append agents activated during the drain. Writes into
	// the kept prefix never overtake the reads: kept grows at most as fast
	// as the loop index.
	kept := s.active[:0]
	for i, a := range s.sweep {
		b := a.Base()
		if b.pinned || !a.Idle() {
			kept = append(kept, s.active[i])
		} else {
			b.active = false
			b.listed = false
			s.liveActive--
			if s.useCalendar {
				s.cal.remove(b.id)
			}
		}
	}
	if len(kept) != len(s.sweep) {
		s.sweepStale = true
	}
	s.active = append(kept, s.active[len(s.sweep):]...)

	// Rekey everything invalidated since the jump was sized: agents past
	// their event tick, downstream agents enqueued during the drain.
	if s.useCalendar {
		s.rekeyDirty()
	}

	// Phase 2: measurement collection at snapshot boundaries.
	if tick%s.collectEvery == 0 {
		s.Collector.Snapshot(s.clock.NowSeconds())
	}
}

// tickBulk is the bulk-dense variant of tick: instead of sweeping and
// draining every active agent in lock step, each iteration globally steps
// only the agents that can act within the window — the calendar entries
// due by the landing tick plus the pinned set — and every other active
// agent advances agent-locally: it is left untouched now and caught up in
// one horizon-bounded bulk replay when it next matters (it is enqueued on,
// pops due, or a collector boundary / run end lands). The drain walks the
// popped-due set plus the agents whose queues fired SetNotify since the
// last drain, instead of the whole sweep. Jump sizing, poll scheduling and
// per-agent arithmetic are identical to the calendar loop, so results stay
// bit-identical (Config.NoBulkDense restores the lock-step loop for A/B).
//
// The invariants that make laziness exact:
//
//   - An active agent's calendar key is the first tick it may act,
//     computed relative to agentTick (the tick its state has advanced
//     through). While its key lies beyond the clock it has no event in the
//     trailing window, so a bulk replay of the deficit is bit-identical to
//     having stepped it every iteration — the same per-accumulator
//     operation sequence, merely batched.
//   - Mutating or reading an agent's tick-dependent state from a
//     sequential phase is always preceded by a catch-up (AgentBase.Sync in
//     hardware Enqueues, syncAgent in the flow router), so enqueues land
//     on state identical to the lock-step loop's.
//   - Only agents at their event tick can buffer completions, and those
//     are exactly the popped-due set; enqueued-on agents are in the drain
//     set via their SetNotify invalidation. Lazy agents therefore never
//     hold completions, and skipping their Drain is exact.
func (s *Simulation) tickBulk(limit simtime.Tick) {
	// Spend the lookahead first: when the sharded runtime is on, no
	// cross-shard flow is in flight and no global source is due before the
	// next synchronization point, the shards can run a stretched span —
	// many consecutive windows each, meeting only at the exit barrier —
	// instead of barriering this window.
	if s.sh != nil {
		if s.sh.stretch && s.trySpan(limit) {
			return
		}
		s.barriers++
		// Entries a lane posted mid-span and no later span consumed apply
		// now, before the sources poll: fault callbacks and probes sample
		// queue counters, so the in-flight cross-shard work must be in its
		// queues by the time anything sequential reads them.
		s.sh.flushInbox(s)
	}
	now := s.clock.NowSeconds()

	// Phase 0 (sequential): due sources inject work. Enqueues catch the
	// target agents up to the current tick before mutating their queues,
	// then mark them dirty (and into the drain set).
	s.pollDue(now)

	if s.rebind {
		s.engine.Bind(s.agents)
		s.rebind = false
	}

	// Fold this tick's invalidations into the calendar before reading its
	// head. Every dirty agent is current (caught up by its invalidation
	// hook), so its horizon is relative to the present tick.
	s.rekeyDirty()

	jump := simtime.Tick(1)
	if s.fastForward && limit > s.clock.Now()+1 {
		jump = s.quietTicksCal(limit)
	}
	landing := s.clock.Now() + jump

	// The involved set: agents whose scheduled event tick falls within the
	// window (by jump construction that means exactly at the landing tick),
	// plus every pinned agent. Popping marks them dirty — their horizon
	// changes as they act — and into the drain set. rekeyDirty just ran, so
	// the dirty flag doubles as the involved-set dedup gate.
	s.invIDs = s.invIDs[:0]
	for s.cal.len() > 0 && s.cal.minKey() <= landing {
		id := s.cal.popMin()
		b := s.agents[id].Base()
		b.dirty = true
		s.dirty = append(s.dirty, id)
		if !b.pendDrain {
			b.pendDrain = true
			s.drainPend = append(s.drainPend, id)
		}
		s.invIDs = append(s.invIDs, id)
	}
	for _, id := range s.pinnedIDs {
		b := s.agents[id].Base()
		if !b.dirty {
			b.dirty = true
			s.dirty = append(s.dirty, id)
			s.invIDs = append(s.invIDs, id)
		}
		if !b.pendDrain {
			b.pendDrain = true
			s.drainPend = append(s.drainPend, id)
		}
	}

	// Synchronization points gather everyone: collector boundaries need
	// exact busy accumulators for every probe, and a landing on the run
	// end hands callers a fully-advanced simulation. Compaction drops the
	// tombstones deactivation left behind.
	fullSync := landing%s.collectEvery == 0 || landing == limit
	if fullSync {
		s.compactActive()
		s.invIDs = append(s.invIDs[:0], s.active...)
	} else if len(s.invIDs) > 1 {
		slices.Sort(s.invIDs)
	}
	s.invAgents = s.invAgents[:0]
	for _, id := range s.invIDs {
		s.invAgents = append(s.invAgents, s.agents[id])
	}

	// Phase 1 (parallel): advance the involved agents through the window —
	// catching up any lazy deficit first — in horizon-bounded bulk chunks
	// with single steps at event ticks. Iterations with nothing involved
	// (mid-jump landings) skip the engine round-trip entirely. Under the
	// sharded runtime each shard's worker advances exactly its own agents;
	// otherwise the engine sweeps the sorted involved set.
	if len(s.invAgents) > 0 {
		s.advanceTo = landing
		if s.sh != nil {
			s.sh.sweepInvolved(s)
		} else {
			s.engine.Sweep(s.invAgents, s.advanceFn)
		}
	}
	if jump > 1 {
		s.jumps++
		s.skipped += uint64(jump - 1)
	}

	tick := s.clock.AdvanceBy(jump)

	// Phase 3 (sequential): calendar-driven drain in ascending agent-ID
	// order — the same order the lock-step loop drains, restricted to the
	// only agents that can hold completions or fresh work. Invalidations
	// fired during the drain (downstream enqueues) accumulate for the next
	// iteration's drain set.
	// Under the sharded runtime the drain defers its enqueues: flow
	// routing, RNG draws and response accounting run sequentially as
	// always, but each task hand-off is posted to the target shard's
	// mailbox instead of touching the queue, and the mailboxes are applied
	// shard-parallel at the end-of-drain barrier. Deferral is exact
	// because nothing in the drain residue reads a target queue's state:
	// completions only exist on popped-due agents, route picking is
	// round-robin, and the idle checks below run after the apply.
	pend := s.drainPend
	s.drainPend = s.drainSpare[:0]
	if len(pend) > 1 {
		slices.Sort(pend)
	}
	if s.sh != nil {
		s.sh.deferring = true
	}
	for _, id := range pend {
		s.agents[id].Base().pendDrain = false
		s.agents[id].Drain(s.drainFn)
	}
	if s.sh != nil {
		s.sh.deferring = false
		s.sh.applyMail(s)
	}
	s.drainSpare = pend[:0]

	// Deactivation: only involved agents can have gone idle (a lazy agent
	// still holds the work that parked its calendar entry). Tombstones
	// remain in the active slice until the next full-sync compaction.
	for _, id := range s.invIDs {
		a := s.agents[id]
		b := a.Base()
		if b.active && !b.pinned && a.Idle() {
			b.active = false
			s.liveActive--
			s.cal.remove(id)
		}
	}

	// Rekey everything invalidated since the jump was sized: agents past
	// their event tick, downstream agents enqueued during the drain. The
	// sharded runtime pre-warms the horizon memo shard-locally first, so
	// the sequential rekey mostly reads memoized values.
	if s.sh != nil {
		s.sh.precomputeHorizons(s)
	}
	s.rekeyDirty()

	// Phase 2: measurement collection at snapshot boundaries; fullSync
	// above already advanced every active agent to this tick.
	if tick%s.collectEvery == 0 {
		s.Collector.Snapshot(s.clock.NowSeconds())
	}
}

// compactActive drops tombstoned entries from the active slice and restores
// ascending ID order, so full-sync sweeps serve the engine the sorted live
// set. Only the bulk-dense loop leaves tombstones; under the lock-step
// loops this reduces to the sort the per-tick path performs itself.
func (s *Simulation) compactActive() {
	kept := s.active[:0]
	for _, id := range s.active {
		b := s.agents[id].Base()
		if b.active {
			kept = append(kept, id)
		} else {
			b.listed = false
		}
	}
	s.active = kept
	slices.Sort(s.active)
	s.activeSorted = true
	s.sweepStale = true
}

// syncAgent catches a lazily-stepped active agent up to the current tick.
// It is the sequential-phase entry point of the bulk-dense loop (reached
// through AgentBase.Sync and the flow router): any enqueue or
// tick-dependent read must first replay the ticks the involved-only sweeps
// skipped, on state that — by the calendar invariant — holds no event in
// the trailing window. Inactive agents have no queue state evolving, so
// they are left alone (activation re-bases agentTick). The common
// already-current case exits on one comparison, before any dynamic
// dispatch — the hook sits on every enqueue.
func (s *Simulation) syncAgent(id AgentID) {
	if !s.bulkDense {
		return
	}
	now := s.clock.Now()
	if s.sh != nil && s.sh.inSpan {
		// Inside a stretched span "now" is the lane's local tick — the
		// global clock is parked at the span entry barrier. Lanes only ever
		// touch their own agents, so the lane of the target is the caller.
		now = s.sh.lanes[s.sh.shard(id)].tick
	}
	n := now - s.agentTick[id]
	if n <= 0 {
		return
	}
	a := s.agents[id]
	if !a.Base().active {
		return // stale deficit: re-based on the next activation
	}
	s.agentTick[id] = now
	s.advanceAgent(a, now-n, n)
}

// advanceInvolved is the engine-sweep callback of the bulk-dense loop:
// advance one involved agent through any lazy deficit up to the window's
// landing tick (s.advanceTo). It is installed once so per-iteration sweeps
// need no fresh closure; agentTick writes are per-agent and therefore safe
// under parallel engines.
func (s *Simulation) advanceInvolved(a Agent) {
	id := a.ID()
	if n := s.advanceTo - s.agentTick[id]; n > 0 {
		base := s.agentTick[id]
		s.agentTick[id] = s.advanceTo
		s.advanceAgent(a, base, n)
	}
}

// advanceAgent replays n ticks on one agent starting from the base tick
// (the tick its state is currently stepped through), bulk-collapsing
// quiet stretches: each chunk is bounded by the agent's own horizon (the
// same guarded whole-tick conversion the calendar keys use, so the chunk
// can never swallow an event), with single steps resolving the event
// ticks in between — a final single tick skips the horizon scan entirely,
// which is the dominant case in event-dense stretches. The horizon reads
// go through the memo keyed at base, so the first chunk of a window
// reuses the value the preceding rekey computed. Agents without the
// BulkStepper capability replay tick by tick. It runs inside the parallel
// sweep as well as from sequential catch-ups; it only touches the agent's
// own state (including its memo slots).
func (s *Simulation) advanceAgent(a Agent, base, n simtime.Tick) {
	step := s.clock.Step()
	if n == 1 {
		a.Step(step)
		return
	}
	bs, canBulk := a.(BulkStepper)
	for n > 0 {
		if n == 1 {
			a.Step(step)
			return
		}
		if !canBulk {
			a.Step(step)
			n--
			base++
			continue
		}
		k := n
		if h := s.agentHorizon(a, base); !math.IsInf(h, 1) {
			if k = s.clock.WholeTicksBefore(h - ffGuard); k > n {
				k = n
			}
		}
		if k < 1 {
			a.Step(step)
			n--
			base++
			continue
		}
		bs.StepN(int(k), step)
		n -= k
		base += k
	}
}

// ffGuard is the safety margin, in seconds, subtracted from agent horizons
// before converting them to whole ticks. Queue models complete work within
// a sub-epsilon of the exact instant (the eps thresholds in
// internal/queueing and the delay heap), and a replayed jump accumulates
// per-step float error; the guard absorbs both so an event can never fire
// inside the ticks a jump skips. It is orders of magnitude below any
// realistic step size, so it almost never shortens a jump.
const ffGuard = 1e-6

// quietTicks returns how many whole ticks the clock may advance in one
// jump, in [1, limit-now]: the stretch strictly before the earliest
// observable event — a source's next effective poll, an active agent's next
// completion or internal handoff — additionally capped at the next
// collector boundary so snapshots sample (and reset) busy accumulators at
// exactly the ticks the plain loop would.
func (s *Simulation) quietTicks(limit simtime.Tick) simtime.Tick {
	now := s.clock.Now()
	max := limit - now
	if b := nextCollectBoundary(now, s.collectEvery) - now; b < max {
		max = b
	}
	if max <= 1 {
		return 1
	}
	nowSec := s.clock.NowSeconds()
	step := s.clock.Step()

	// Sources first: they are few, and a due source (an active Poisson
	// workload, any SourceFunc) vetoes the jump before the active set is
	// scanned at all.
	pmin := math.Inf(1)
	for _, src := range s.sources {
		if p := src.NextPoll(nowSec); p < pmin {
			pmin = p
		}
	}
	if pmin <= nowSec+step {
		return 1
	}

	// Earliest event on any active agent, bailing out as soon as one is
	// due within the next tick — in busy stretches that is the common case
	// and keeps the scan cheap.
	h := math.Inf(1)
	for _, a := range s.sweep {
		if ah := a.Horizon(); ah < h {
			h = ah
			if h <= step+ffGuard {
				return 1
			}
		}
	}

	k := max
	if !math.IsInf(h, 1) {
		// The event tick itself is single-stepped by a later iteration:
		// the jump must land strictly before it.
		if ke := s.clock.WholeTicksBefore(h - ffGuard); ke < k {
			k = ke
		}
	}
	if !math.IsInf(pmin, 1) {
		// Skipped polls sit at ticks now+1 .. now+k-1; every one must land
		// strictly before the earliest due poll. The jump itself may land
		// on the poll tick — that tick polls normally. The float estimate
		// is corrected against the exact tick-time arithmetic the plain
		// loop uses for its poll timestamps.
		if kp := s.clock.WholeTicksBefore(pmin-nowSec) + 1; kp < k {
			k = kp
		}
		for k > 1 && s.clock.SecondsAt(now+k-1) >= pmin {
			k--
		}
	}
	if k < 1 {
		k = 1
	}
	return k
}

// pollDue runs the due sources' polls and refreshes their schedules. A
// source is due when the current tick has reached its cached due tick; by
// the NextPoll contract every poll strictly before that instant is a no-op,
// so skipping it is exact. Dormant sources (+Inf schedules) stay parked —
// they are re-consulted only through an explicit RearmSource notification
// from whichever callback re-arms them, never by per-iteration polling —
// so iterations where nothing is due cost O(1) regardless of how many
// sources sleep.
func (s *Simulation) pollDue(nowSec float64) {
	now := s.clock.Now()
	if s.srcMin > now {
		return
	}
	n := len(s.sources) // sources added by a poll are first polled next tick
	for i := 0; i < n; i++ {
		if s.srcDue[i] <= now {
			s.sources[i].Poll(s, nowSec)
			s.srcDue[i] = s.srcDueTick(s.sources[i].NextPoll(nowSec), now)
		}
	}
	min := neverTick
	for _, due := range s.srcDue {
		if due < min {
			min = due
		}
	}
	s.srcMin = min
}

// srcDueTick converts a NextPoll instant into the first tick whose poll may
// matter: the first tick at or after p in the exact tick-time arithmetic
// the loop uses for poll timestamps. A source reporting now or earlier
// wants classic per-tick polling and is due again at the next tick; +Inf
// (and schedules beyond any representable run) map to neverTick.
func (s *Simulation) srcDueTick(p float64, now simtime.Tick) simtime.Tick {
	if math.IsInf(p, 1) {
		return neverTick
	}
	nowSec := s.clock.SecondsAt(now)
	if p <= nowSec {
		return now + 1
	}
	k := s.clock.WholeTicksBefore(p - nowSec)
	if k >= 1<<62 {
		return neverTick
	}
	n := now + k + 1
	// Correct the float estimate in both directions: the due tick is the
	// first tick landing at or after p, and every earlier tick must fall
	// strictly before p (those are the polls a jump skips).
	for n > now+1 && s.clock.SecondsAt(n-1) >= p {
		n--
	}
	for s.clock.SecondsAt(n) < p {
		n++
	}
	return n
}

// agentKey converts an agent horizon, observed at tick now, into the
// calendar key: the first tick at which the agent may act. Jumps land
// strictly before it, exactly reproducing the scan loop's per-iteration
// bound (WholeTicksBefore of the guarded horizon).
func (s *Simulation) agentKey(h float64, now simtime.Tick) simtime.Tick {
	if math.IsInf(h, 1) {
		return neverTick
	}
	return now + s.clock.WholeTicksBefore(h-ffGuard) + 1
}

// rekeyDirty recomputes the calendar entry of every agent whose horizon was
// invalidated — enqueued on, drained into, past its event tick, or
// deactivated — and clears the dirty set. This is the O(changed) core of
// the calendar loop: only these agents pay a Horizon call per iteration.
// An agent's horizon is relative to the tick its state has been stepped
// through, so under the bulk-dense loop the key is based at agentTick — for
// agents invalidated through the usual hooks that equals the current tick
// (enqueues sync first, popped-due agents were swept to the landing), but
// a bare MarkDirty on a lazily-stepped agent re-bases correctly too.
func (s *Simulation) rekeyDirty() {
	if len(s.dirty) == 0 {
		return
	}
	now := s.clock.Now()
	for _, id := range s.dirty {
		a := s.agents[id]
		b := a.Base()
		b.dirty = false
		if !b.active {
			s.cal.remove(id)
			continue
		}
		base := now
		if s.bulkDense {
			base = s.agentTick[id]
		}
		s.cal.set(id, s.agentKey(s.agentHorizon(a, base), base))
	}
	s.dirty = s.dirty[:0]
}

// popDue moves every agent whose scheduled event tick has arrived from the
// calendar into the dirty set. Between invalidations an agent's state
// evolves deterministically under Step, so its absolute event tick stays
// valid however far the clock advanced — only agents at (or past, after a
// forced single step) their key can have acted.
func (s *Simulation) popDue(now simtime.Tick) {
	for s.cal.len() > 0 && s.cal.minKey() <= now {
		id := s.cal.popMin()
		b := s.agents[id].Base()
		if !b.dirty {
			b.dirty = true
			s.dirty = append(s.dirty, id)
		}
	}
}

// nextCollectBoundary returns the first collector-snapshot tick strictly
// after now: a window or span standing exactly on a boundary has already
// snapshotted it, so the next synchronization point is one full period
// ahead, never the current tick. The sequential jump sizers (quietTicks,
// quietTicksCal) and the span scheduler (trySpan) must share this
// arithmetic — a drifted bound would let a span swallow a snapshot tick or
// truncate a jump a boundary early.
func nextCollectBoundary(now, every simtime.Tick) simtime.Tick {
	return now + (every - now%every)
}

// quietTicksCal is the calendar-indexed replacement for quietTicks: the
// same jump bound — strictly before the earliest agent event, at or before
// the earliest due poll, capped at the collector boundary and limit — read
// off the calendar head and the cached source schedule in O(1) instead of
// re-scanning every source and active agent.
func (s *Simulation) quietTicksCal(limit simtime.Tick) simtime.Tick {
	now := s.clock.Now()
	max := limit - now
	if b := nextCollectBoundary(now, s.collectEvery) - now; b < max {
		max = b
	}
	if max <= 1 {
		return 1
	}
	// The jump may land exactly on the earliest due poll tick — that tick
	// polls normally; all skipped ticks fall strictly before the schedule.
	if s.srcMin != neverTick {
		if k := s.srcMin - now; k < max {
			max = k
		}
	}
	// The earliest agent event tick itself is single-stepped by a later
	// iteration: the jump lands strictly before it.
	if h := s.cal.minKey(); h != neverTick {
		if k := h - 1 - now; k < max {
			max = k
		}
	}
	if max < 1 {
		return 1
	}
	return max
}

// FastForwardStats reports how many event-horizon jumps the loop has taken
// and how many whole ticks those jumps skipped (beyond the one tick each
// loop iteration always advances).
func (s *Simulation) FastForwardStats() (jumps, skippedTicks uint64) {
	return s.jumps, s.skipped
}

// RunStats is a point-in-time snapshot of a simulation's run counters — the
// uniform harvest the experiment layer folds into every Result so scenario
// code stops re-assembling the numbers from individual accessors.
type RunStats struct {
	// Seconds is the simulated time reached; Ticks the whole steps taken.
	Seconds float64 `json:"seconds"`
	Ticks   int64   `json:"ticks"`
	// CompletedOps counts finished operations — the headline number of the
	// engine determinism contract.
	CompletedOps uint64 `json:"completed_ops"`
	// ActiveFlows / ActiveAgents describe the in-flight state at snapshot
	// time (zero after a drained run).
	ActiveFlows  int `json:"active_flows"`
	ActiveAgents int `json:"active_agents"`
	// Agents is the registered agent population.
	Agents int `json:"agents"`
	// Jumps / SkippedTicks are the event-horizon fast-forward statistics:
	// how many jumps the loop took and how many whole ticks they skipped.
	Jumps        uint64 `json:"jumps"`
	SkippedTicks uint64 `json:"skipped_ticks"`
	// Barriers counts global synchronization points of the sharded run
	// loop: one per classic window, one per stretched span. Zero for
	// non-sharded runs. WindowsStretched counts the shard-local windows
	// executed inside stretched spans — the windows that did NOT pay a
	// barrier; ShardStretch breaks them down per shard. The stretch ratio
	// (WindowsStretched+Barriers)/Barriers is the windows-per-barrier win
	// of spending the WAN lookahead.
	Barriers         uint64   `json:"barriers,omitempty"`
	WindowsStretched uint64   `json:"windows_stretched,omitempty"`
	ShardStretch     []uint64 `json:"shard_stretch,omitempty"`
	// MailboxApplied / MailboxMinSlack mirror MailboxAudit: cross-shard
	// hand-offs applied through the shard mailboxes, and the minimum slack
	// (due tick minus apply tick) observed across them. MailboxMinSlack is
	// meaningful only when MailboxApplied > 0.
	MailboxApplied  uint64 `json:"mailbox_applied,omitempty"`
	MailboxMinSlack int64  `json:"mailbox_min_slack,omitempty"`
}

// Stats snapshots the simulation's run counters.
func (s *Simulation) Stats() RunStats {
	st := RunStats{
		Seconds:      s.clock.NowSeconds(),
		Ticks:        int64(s.clock.Now()),
		CompletedOps: s.completedOps,
		ActiveFlows:  s.activeFlows,
		ActiveAgents: s.liveActive,
		Agents:       len(s.agents),
		Jumps:        s.jumps,
		SkippedTicks: s.skipped,
		Barriers:     s.barriers,
	}
	if s.sh != nil {
		st.WindowsStretched = s.stretched
		if s.stretched > 0 {
			st.ShardStretch = slices.Clone(s.sh.shardWindows)
		}
		if applied, minSlack, ok := s.MailboxAudit(); ok {
			st.MailboxApplied = applied
			st.MailboxMinSlack = int64(minSlack)
		}
	}
	return st
}

// MailboxAudit reports the cross-shard delivery telemetry of the sharded
// runtime: how many hand-offs were applied through the shard mailboxes —
// barrier-drain deferrals and mid-span cross-shard posts alike — and the
// minimum slack (due tick minus the tick the entry was applied at, in
// ticks) observed across all of them. A negative minimum would mean a
// message was applied after its WAN-delayed due instant — past the point
// where its absence could have changed the receiver's state — the
// conservative-synchronization violation the property tests pin.
//
// The contract is exactly two shapes: (0, 0, false) when the sharded
// runtime is off or no message was ever applied, and
// (applied, minSlack, true) otherwise. The minimum folds only shards that
// applied at least one message — a shard that received no traffic has no
// slack sample and must not drag the minimum to its zero-initialized
// counter; TestMailboxAuditContract pins both shapes.
func (s *Simulation) MailboxAudit() (applied uint64, minSlack simtime.Tick, ok bool) {
	if s.sh == nil {
		return 0, 0, false
	}
	minSlack = neverTick
	for i := range s.sh.bufs {
		b := &s.sh.bufs[i]
		applied += b.mailApplied
		if b.mailApplied > 0 && b.mailMinSlack < minSlack {
			minSlack = b.mailMinSlack
		}
	}
	if applied == 0 {
		return 0, 0, false
	}
	return applied, minSlack, true
}

// RunFor advances the simulation by d simulated seconds.
func (s *Simulation) RunFor(d float64) {
	end := s.clock.Now() + s.clock.TicksIn(d)
	for s.clock.Now() < end {
		s.tick(end)
	}
}

// RunUntilIdle runs until no flows remain in flight and all agents are
// idle, or maxSeconds of simulated time elapse. It returns an error on
// timeout so stuck cascades surface in tests instead of hanging.
func (s *Simulation) RunUntilIdle(maxSeconds float64) error {
	deadline := s.clock.Now() + s.clock.TicksIn(maxSeconds)
	for s.clock.Now() < deadline {
		s.tick(deadline)
		if s.activeFlows == 0 && s.agentsIdle() {
			return nil
		}
	}
	return fmt.Errorf("core: %d flows still active after %v simulated seconds", s.activeFlows, maxSeconds)
}

// agentsIdle reports whether no agent holds in-flight work. Deactivation
// keeps every non-idle agent in the active set, so only that set — after a
// tick, just the pinned agents plus drain-phase activations — needs
// checking, replacing the full-population scan. Tombstones the bulk-dense
// loop leaves between compactions are skipped.
func (s *Simulation) agentsIdle() bool {
	for _, id := range s.active {
		if s.agents[id].Base().active && !s.agents[id].Idle() {
			return false
		}
	}
	return true
}

// Shutdown releases engine resources. The simulation must not tick after.
func (s *Simulation) Shutdown() { s.engine.Shutdown() }
