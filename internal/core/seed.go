package core

// DeriveSeed returns stream'th output of a SplitMix64 generator seeded with
// base: the canonical way to derive an independent sub-RNG seed from a
// simulation seed. Every component that creates its own random stream (a
// workload's arrival sampler, a cache's hit decisions, a disk array's
// service jitter) seeds it with DeriveSeed(base, stream) under a stream
// identifier that is stable for that component — a name hash, an agent
// identity — never by consuming draws from a shared stream. Consuming a
// shared stream couples every component to the registration order and draw
// count of all the others: adding one workload would perturb every later
// workload's arrivals. Derived seeds depend only on (base, stream), so
// sub-streams are reproducible in isolation — the property the sweep runner
// relies on to make per-point results independent of worker count and
// completion order.
//
// SplitMix64 (Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
// Generators", OOPSLA 2014) is the standard seed-derivation mixer: a Weyl
// sequence with increment 0x9e3779b97f4a7c15 pushed through an
// avalanche finalizer, so consecutive streams yield statistically
// independent seeds even though the inputs differ by one bit.
func DeriveSeed(base, stream uint64) uint64 {
	z := base + (stream+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
