package core

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/queueing"
	"repro/internal/simtime"
)

// TestCalendarHeapOrdering drives the indexed heap through inserts,
// decrease/increase rekeys and removals, checking the head always reports
// the minimum with ties broken by AgentID.
func TestCalendarHeapOrdering(t *testing.T) {
	var c calendar
	c.grow(64)
	rng := rand.New(rand.NewPCG(1, 2))
	keys := make(map[AgentID]simtime.Tick)
	for id := AgentID(0); id < 64; id++ {
		k := simtime.Tick(rng.Int64N(1000))
		c.set(id, k)
		keys[id] = k
	}
	// Rekey half the entries in both directions, remove a few.
	for id := AgentID(0); id < 64; id += 2 {
		k := simtime.Tick(rng.Int64N(1000))
		c.set(id, k)
		keys[id] = k
	}
	for id := AgentID(5); id < 64; id += 13 {
		c.remove(id)
		delete(keys, id)
	}
	if c.len() != len(keys) {
		t.Fatalf("heap size %d, want %d", c.len(), len(keys))
	}
	prevKey, prevID := simtime.Tick(-1), AgentID(-1)
	for c.len() > 0 {
		k := c.minKey()
		id := c.popMin()
		if want, ok := keys[id]; !ok || want != k {
			t.Fatalf("popped (%d, %d), want key %d", id, k, keys[id])
		}
		if k < prevKey || (k == prevKey && id < prevID) {
			t.Fatalf("pop order violated: (%d, %d) after (%d, %d)", k, id, prevKey, prevID)
		}
		prevKey, prevID = k, id
		delete(keys, id)
		if c.contains(id) {
			t.Fatalf("agent %d still present after pop", id)
		}
	}
	// Removing an absent entry is a no-op.
	c.remove(3)
}

// TestSrcDueTickBoundaries pins the poll-schedule conversion: the due tick
// is the first tick landing at or after the NextPoll instant in the exact
// tick-time arithmetic, instants at or before now mean per-tick polling,
// and +Inf parks the source.
func TestSrcDueTickBoundaries(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	cases := []struct {
		p    float64
		now  simtime.Tick
		want simtime.Tick
	}{
		{math.Inf(1), 0, neverTick},
		{0, 0, 1},     // "poll me now" => next tick
		{0.05, 0, 5},  // exactly on a tick boundary
		{0.051, 0, 6}, // just past a boundary
		{0.049999999, 0, 5},
		{1.00, 50, 100},  // from a later origin
		{0.5001, 50, 51}, // due within the next tick
	}
	for _, tc := range cases {
		if got := s.srcDueTick(tc.p, tc.now); got != tc.want {
			t.Errorf("srcDueTick(%v, %d) = %d, want %d", tc.p, tc.now, got, tc.want)
		}
		// Contract: every tick strictly before the due tick falls strictly
		// before p, so its skipped poll is a no-op by the Source contract.
		got := s.srcDueTick(tc.p, tc.now)
		if got != neverTick {
			for n := tc.now + 1; n < got; n++ {
				if s.clock.SecondsAt(n) >= tc.p {
					t.Errorf("tick %d lands at %v, at or past p=%v", n, s.clock.SecondsAt(n), tc.p)
					break
				}
			}
		}
	}
}

// countingSource reports a fixed-interval schedule and counts its polls.
type countingSource struct {
	interval float64
	next     float64
	polls    int
}

func (cs *countingSource) Poll(s *Simulation, now float64) {
	cs.polls++
	for now >= cs.next {
		cs.next += cs.interval
	}
}
func (cs *countingSource) NextPoll(now float64) float64 { return cs.next }

// vetoAgent is a pinned agent with the conservative default horizon (0):
// while registered it vetoes every fast-forward jump.
type vetoAgent struct{ AgentBase }

func (v *vetoAgent) Step(dt float64)                 {}
func (v *vetoAgent) Enqueue(t *queueing.Task)        {}
func (v *vetoAgent) Drain(fn func(t *queueing.Task)) {}
func (v *vetoAgent) Idle() bool                      { return true }

// TestCalendarSkipsNotDuePolls checks the poll scheduler: a source with a
// 50 ms schedule under a 10 ms step must be polled on roughly every fifth
// tick by the calendar loop, while the scan loop polls it every tick. A
// pinned default-horizon agent pins the clock to single steps, so the
// difference comes from poll scheduling alone, not from jumps.
func TestCalendarSkipsNotDuePolls(t *testing.T) {
	run := func(noCal bool) int {
		s := NewSimulation(Config{Step: 0.01, Seed: 1, NoCalendar: noCal})
		v := &vetoAgent{}
		v.InitAgent(s.NextAgentID(), "veto")
		s.AddAgent(v)
		v.Pin()
		src := &countingSource{interval: 0.05}
		s.AddSource(src)
		s.RunFor(10) // 1000 ticks
		if j, _ := s.FastForwardStats(); j != 0 {
			t.Fatalf("pinned run took %d jumps", j)
		}
		return src.polls
	}
	scan := run(true)
	cal := run(false)
	if scan != 1000 {
		t.Errorf("scan loop polled %d times, want 1000", scan)
	}
	if cal < 198 || cal > 202 {
		t.Errorf("calendar loop polled %d times, want ~200 (every 5th tick)", cal)
	}
}

// TestCalendarRekeysOnEnqueue checks the invalidation path end to end at
// the core layer: work enqueued on an agent with a far-future calendar
// entry must pull its event earlier, not wait for the stale key.
func TestCalendarRekeysOnEnqueue(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, CollectEvery: 10000, Seed: 1})
	dl := NewDelayLine(s, "line")
	enq := func(delay float64) {
		s.StartOp(OpRun{
			Name: "D", DC: "NA", NumSteps: 1,
			Expand: func(int) []MessagePlan {
				return []MessagePlan{{Stages: []Stage{{Queue: dl, Delay: delay}}}}
			},
		})
	}
	// A long delay parks the line's calendar entry far in the future...
	s.AddSource(&timedSource{at: 0, launch: func(*Simulation) { enq(50) }})
	// ...then a short delay enqueued later must complete on time anyway.
	s.AddSource(&timedSource{at: 1, launch: func(*Simulation) { enq(0.5) }})
	s.RunFor(60)
	if s.CompletedOps() != 2 {
		t.Fatalf("completed %d ops, want 2", s.CompletedOps())
	}
	ts := s.Responses.Series("D", "NA").T
	if math.Abs(ts[0]-1.51) > 0.02 {
		t.Errorf("short delay completed at %v, want ~1.51 (stale calendar entry?)", ts[0])
	}
	if math.Abs(ts[1]-50.01) > 0.02 {
		t.Errorf("long delay completed at %v, want ~50.01", ts[1])
	}
	if _, skipped := s.FastForwardStats(); skipped < 4000 {
		t.Errorf("skipped only %d ticks; the schedule holds ~48 s of quiet", skipped)
	}
}

// orderAgent records the drain order of completions across agents.
type orderAgent struct {
	AgentBase
	order *[]AgentID
	queue []*queueing.Task
}

func (o *orderAgent) Enqueue(t *queueing.Task) {
	o.MarkDirty()
	o.queue = append(o.queue, t)
}
func (o *orderAgent) Step(dt float64) {
	for _, t := range o.queue {
		o.BufferDone(t)
	}
	o.queue = o.queue[:0]
}
func (o *orderAgent) Idle() bool { return len(o.queue) == 0 }

// Drain records the agent's position in the sequential drain phase; the
// buffered tasks are not flow tokens, so the flow callback is bypassed.
func (o *orderAgent) Drain(fn func(*queueing.Task)) {
	o.AgentBase.Drain(func(*queueing.Task) {
		*o.order = append(*o.order, o.ID())
	})
}

// TestActivationOrderIndependence pins the sort-skip bookkeeping: agents
// activated in descending ID order must still drain in ascending ID order,
// and ticks with an unchanged active set (which skip the sort and the
// sweep re-slice) must keep that order.
func TestActivationOrderIndependence(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	var order []AgentID
	agents := make([]*orderAgent, 4)
	for i := range agents {
		a := &orderAgent{order: &order}
		a.InitAgent(s.NextAgentID(), "oa")
		s.AddAgent(a)
		agents[i] = a
	}
	// Activate in descending ID order within one sequential phase.
	for i := len(agents) - 1; i >= 0; i-- {
		tk := &queueing.Task{ID: uint64(i)}
		agents[i].Enqueue(tk)
	}
	s.Tick()
	if len(order) != 4 {
		t.Fatalf("drained %d completions, want 4", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("drain order not ascending: %v", order)
		}
	}
	// A second tick with the unchanged (now empty) active set must not
	// disturb anything — the sort/re-slice skip path.
	order = order[:0]
	s.Tick()
	if len(order) != 0 {
		t.Fatalf("idle tick drained %v", order)
	}
}
