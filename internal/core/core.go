// Package core implements the simulation heart of GDISim: the agent
// abstraction of the Holonic Multi-Agent System (§3.3), the flow machinery
// that executes message cascades across hardware agents (§3.5.2), and the
// centralized discrete time loop with its three control phases (§4.3):
//
//  1. Time increment — every *active* agent (one with in-flight work or a
//     pin) advances its queues by one step. Idle agents are skipped: an
//     agent joins the active set when work is enqueued on it and leaves it
//     when a post-drain scan finds it idle, so the sweep cost scales with
//     utilization rather than topology size. The phase is parallelized by
//     a pluggable Engine (sequential here; Scatter-Gather and H-Dispatch
//     live in internal/dispatch).
//  2. Measurement collection — every collect-interval, probes snapshot
//     integrated busy time into time series.
//  3. Agent interaction — tasks that completed during the step advance
//     their flows and enqueue work on downstream agents. Work forwarded
//     during tick t is first served at tick t+1, enforcing the timestamp
//     consistency rule of §4.3.3.
//
// On top of the per-tick phases, RunFor and RunUntilIdle fast-forward the
// clock across provably quiet stretches: every agent and source reports an
// event horizon (Agent.Horizon, Source.NextPoll) and the loop jumps to
// just before the earliest one, bit-identical to ticking through (see
// DESIGN.md, "Event-horizon time loop").
package core

import (
	"fmt"

	"repro/internal/queueing"
)

// AgentID identifies an agent. IDs are assigned densely by the Simulation
// in registration order; draining completions in ID order is what makes
// parallel engines deterministic.
type AgentID int32

// Agent is a hardware component of the infrastructure — the lowest-level
// holon member (CPU, NIC, switch, link, RAID, SAN, delay line). Agents are
// stepped in parallel by the engine; they must only touch their own state
// during Step and buffer completed tasks until Drain, which the simulation
// calls sequentially.
//
// The simulation only sweeps *active* agents: an agent joins the active set
// when work is enqueued on it (MarkActive) and leaves it when a post-drain
// scan finds it Idle. Agents that must be stepped every tick regardless of
// queued work (synthetic load generators, polling components) opt out of
// deactivation with Pin.
type Agent interface {
	ID() AgentID
	Name() string
	// Base exposes the embedded AgentBase for activation bookkeeping. Every
	// agent obtains this method by embedding AgentBase.
	Base() *AgentBase
	// Step advances the agent's internal queues by dt simulated seconds.
	Step(dt float64)
	// Drain invokes fn for every task completed since the previous Drain,
	// in completion order, and clears the buffer.
	Drain(fn func(*queueing.Task))
	// Idle reports whether the agent holds no in-flight work.
	Idle() bool
	// Horizon reports the time in seconds until the agent's next observable
	// event — a task completion or any internal state change that requires
	// per-tick stepping — assuming no new work arrives; +Inf when nothing
	// is scheduled. The fast-forward loop jumps the clock across quiet
	// ticks strictly before the earliest horizon, so undershooting is
	// always safe while overshooting would skip an event. AgentBase
	// supplies a conservative 0 ("I may act next tick") for agents that do
	// not override it. It is called from sequential phases and, under the
	// bulk-dense loop, from inside the parallel sweep (advanceAgent sizes
	// bulk chunks with it), so like Step it must only touch the agent's
	// own state.
	Horizon() float64
}

// BulkStepper is an optional agent capability: advancing through n
// consecutive quiet ticks of dt seconds more cheaply than n Step calls,
// with bit-identical resulting state. The fast-forward loop only invokes it
// inside a jump, whose event horizon guarantees no observable event within
// the window; implementations re-verify that guarantee cheaply (it costs
// one scan) and fall back to per-tick stepping when it does not hold, so a
// StepN call is always safe. Agents without the capability are stepped
// tick by tick through the jump.
type BulkStepper interface {
	StepN(n int, dt float64)
}

// QueueAgent is an agent that accepts work: a flow stage can target it.
type QueueAgent interface {
	Agent
	Enqueue(*queueing.Task)
}

// AgentBase supplies the bookkeeping shared by all agents: identity, the
// completion buffer and active-set membership. Embed it and call InitAgent
// from the constructor.
type AgentBase struct {
	id   AgentID
	name string
	done []*queueing.Task

	sim       *Simulation // set by AddAgent; nil until registered
	active    bool        // currently a member of the simulation's active set
	pinned    bool        // never deactivated (swept every tick/window)
	dirty     bool        // horizon invalidated; queued for a calendar rekey
	listed    bool        // holds an entry in the simulation's active slice
	pendDrain bool        // queued in the drain set since the last drain
	inPinned  bool        // registered in the simulation's pinned list
}

// InitAgent sets the agent identity. It panics when called twice: an agent
// registered with two simulations is a wiring bug.
func (b *AgentBase) InitAgent(id AgentID, name string) {
	if b.name != "" {
		panic(fmt.Sprintf("core: agent %q re-initialized as %q", b.name, name))
	}
	if name == "" {
		panic("core: agent needs a non-empty name")
	}
	b.id = id
	b.name = name
}

// ID returns the agent's identifier.
func (b *AgentBase) ID() AgentID { return b.id }

// Name returns the agent's human-readable name.
func (b *AgentBase) Name() string { return b.name }

// Base returns the embedded bookkeeping, satisfying the Agent interface.
func (b *AgentBase) Base() *AgentBase { return b }

// MarkActive joins the simulation's active set, making the agent eligible
// for the next sweep, and invalidates the agent's event-calendar entry —
// every activation is also an invalidation: new work may move the agent's
// next event earlier. It is O(1), idempotent, and must only be called from
// sequential phases (Enqueue during source polls or interaction callbacks).
// Hardware queues forward it through their Notify hooks; flow routing calls
// it as well, so custom agents driven through Stage.Queue need no explicit
// call.
func (b *AgentBase) MarkActive() {
	if b.sim == nil {
		return
	}
	if !b.active {
		b.active = true
		b.sim.activate(b.id)
	}
	if !b.dirty {
		b.dirty = true
		b.sim.invalidate(b.id)
	}
}

// MarkDirty is the invalidation hook of the event calendar: it records that
// the agent's state changed in a way that may move its next observable
// event, so the simulation recomputes its horizon before the next jump
// instead of trusting the cached calendar entry. Activation implies
// invalidation, so MarkDirty and MarkActive are the same operation — the
// two names exist because call sites mean different things: queues notify
// transitions (dirty), sources and routers hand over work (active). Like
// MarkActive it must only be called from sequential phases; state changes
// inside the parallel Step phase need no hook, because they can only occur
// at an agent's scheduled event tick, where the calendar rekeys the agent
// anyway.
func (b *AgentBase) MarkDirty() { b.MarkActive() }

// Pin keeps the agent in the active set permanently: it is swept every tick
// and never deactivated, restoring the pre-active-set full-sweep behavior
// for agents whose Step does work without queued tasks.
func (b *AgentBase) Pin() {
	b.pinned = true
	b.MarkActive()
	if b.sim != nil && !b.inPinned {
		b.inPinned = true
		b.sim.pinnedIDs = append(b.sim.pinnedIDs, b.id)
	}
}

// Pinned reports whether the agent opted out of deactivation.
func (b *AgentBase) Pinned() bool { return b.pinned }

// Horizon returns 0 — the conservative default that keeps an agent stepped
// every tick while it is active. Agents whose next event is knowable
// (hardware queues, delay lines) shadow this with an exact horizon so the
// fast-forward loop can jump quiet stretches; agents whose Step has
// per-tick side effects regardless of queued work (synthetic load
// generators) keep the default and thereby veto jumps while active.
func (b *AgentBase) Horizon() float64 { return 0 }

// Sync catches the agent up to the current simulation tick. Under the
// bulk-dense loop an active agent may be stepped lazily — advanced in bulk
// only when it next matters — so any operation that mutates or reads
// tick-dependent agent state from a sequential phase (an Enqueue, a local
// clock read) must first replay the ticks the involved-only sweeps skipped.
// Hardware agents call it at the top of Enqueue, and the flow router calls
// it before handing a stage to its queue; it is an O(1) no-op when the
// agent is current, inactive, unregistered, or the bulk-dense loop is off.
func (b *AgentBase) Sync() {
	if b.sim != nil {
		b.sim.syncAgent(b.id)
	}
}

// BufferDone records a completed task for the next Drain. Hardware agents
// pass this method as the DoneFunc of their internal queues.
func (b *AgentBase) BufferDone(t *queueing.Task) { b.done = append(b.done, t) }

// Drain hands buffered completions to fn in completion order and resets the
// buffer, retaining capacity.
func (b *AgentBase) Drain(fn func(*queueing.Task)) {
	for i, t := range b.done {
		b.done[i] = nil
		fn(t)
	}
	b.done = b.done[:0]
}

// Engine parallelizes the per-tick sweep over the active agents.
// Implementations: SequentialEngine (here), ScatterGather and HDispatch
// (internal/dispatch).
type Engine interface {
	// Bind hands the engine the full agent population so it can size
	// per-agent resources (ports, partitions). Called once before the first
	// sweep and again whenever the population changes.
	Bind(agents []Agent)
	// Sweep applies fn to every agent in active — the simulation's current
	// active set, always a subset of the bound population in ascending
	// AgentID order. fn is safe to run in parallel for distinct agents.
	Sweep(active []Agent, fn func(Agent))
	// Shutdown releases engine resources (worker pools).
	Shutdown()
}

// SequentialEngine applies the sweep on the calling goroutine. It is the
// reference implementation that the parallel engines must match exactly.
type SequentialEngine struct{}

// Bind is a no-op: the sequential engine needs no per-agent resources.
func (e *SequentialEngine) Bind(agents []Agent) {}

// Sweep applies fn to each active agent in order.
func (e *SequentialEngine) Sweep(active []Agent, fn func(Agent)) {
	for _, a := range active {
		fn(a)
	}
}

// Shutdown is a no-op for the sequential engine.
func (e *SequentialEngine) Shutdown() {}
