// Package core implements the simulation heart of GDISim: the agent
// abstraction of the Holonic Multi-Agent System (§3.3), the flow machinery
// that executes message cascades across hardware agents (§3.5.2), and the
// centralized discrete time loop with its three control phases (§4.3):
//
//  1. Time increment — every agent advances its queues by one step. This
//     phase is parallelized by a pluggable Engine (sequential here;
//     Scatter-Gather and H-Dispatch live in internal/dispatch).
//  2. Measurement collection — every collect-interval, probes snapshot
//     integrated busy time into time series.
//  3. Agent interaction — tasks that completed during the step advance
//     their flows and enqueue work on downstream agents. Work forwarded
//     during tick t is first served at tick t+1, enforcing the timestamp
//     consistency rule of §4.3.3.
package core

import (
	"fmt"

	"repro/internal/queueing"
)

// AgentID identifies an agent. IDs are assigned densely by the Simulation
// in registration order; draining completions in ID order is what makes
// parallel engines deterministic.
type AgentID int32

// Agent is a hardware component of the infrastructure — the lowest-level
// holon member (CPU, NIC, switch, link, RAID, SAN, delay line). Agents are
// stepped in parallel by the engine; they must only touch their own state
// during Step and buffer completed tasks until Drain, which the simulation
// calls sequentially.
type Agent interface {
	ID() AgentID
	Name() string
	// Step advances the agent's internal queues by dt simulated seconds.
	Step(dt float64)
	// Drain invokes fn for every task completed since the previous Drain,
	// in completion order, and clears the buffer.
	Drain(fn func(*queueing.Task))
	// Idle reports whether the agent holds no in-flight work.
	Idle() bool
}

// QueueAgent is an agent that accepts work: a flow stage can target it.
type QueueAgent interface {
	Agent
	Enqueue(*queueing.Task)
}

// AgentBase supplies the bookkeeping shared by all agents: identity and the
// completion buffer. Embed it and call InitAgent from the constructor.
type AgentBase struct {
	id   AgentID
	name string
	done []*queueing.Task
}

// InitAgent sets the agent identity. It panics when called twice: an agent
// registered with two simulations is a wiring bug.
func (b *AgentBase) InitAgent(id AgentID, name string) {
	if b.name != "" {
		panic(fmt.Sprintf("core: agent %q re-initialized as %q", b.name, name))
	}
	if name == "" {
		panic("core: agent needs a non-empty name")
	}
	b.id = id
	b.name = name
}

// ID returns the agent's identifier.
func (b *AgentBase) ID() AgentID { return b.id }

// Name returns the agent's human-readable name.
func (b *AgentBase) Name() string { return b.name }

// BufferDone records a completed task for the next Drain. Hardware agents
// pass this method as the DoneFunc of their internal queues.
func (b *AgentBase) BufferDone(t *queueing.Task) { b.done = append(b.done, t) }

// Drain hands buffered completions to fn in completion order and resets the
// buffer, retaining capacity.
func (b *AgentBase) Drain(fn func(*queueing.Task)) {
	for i, t := range b.done {
		b.done[i] = nil
		fn(t)
	}
	b.done = b.done[:0]
}

// Engine parallelizes the per-tick sweep over all agents. Implementations:
// SequentialEngine (here), ScatterGather and HDispatch (internal/dispatch).
type Engine interface {
	// Bind hands the engine the full agent population. Called once before
	// the first sweep and again if the population changes.
	Bind(agents []Agent)
	// Sweep applies fn to every bound agent; fn is safe to run in parallel
	// for distinct agents.
	Sweep(fn func(Agent))
	// Shutdown releases engine resources (worker pools).
	Shutdown()
}

// SequentialEngine applies the sweep on the calling goroutine. It is the
// reference implementation that the parallel engines must match exactly.
type SequentialEngine struct {
	agents []Agent
}

// Bind stores the agent population.
func (e *SequentialEngine) Bind(agents []Agent) { e.agents = agents }

// Sweep applies fn to each agent in order.
func (e *SequentialEngine) Sweep(fn func(Agent)) {
	for _, a := range e.agents {
		fn(a)
	}
}

// Shutdown is a no-op for the sequential engine.
func (e *SequentialEngine) Shutdown() {}
