package core

import "repro/internal/simtime"

// neverTick is the calendar key of an entry with nothing scheduled (+Inf
// horizons, dormant sources). It sorts after every reachable tick, so such
// entries never bound a jump, while staying in the structure so membership
// checks remain O(1).
const neverTick = simtime.Tick(1<<63 - 1)

// calEntry is one event-calendar entry: the absolute tick at which its
// agent may next act.
type calEntry struct {
	key simtime.Tick
	id  AgentID
}

// calendar is an indexed binary min-heap of agent due ticks — the
// pending-event set of the simulation. Position indexing by AgentID makes
// update and removal O(log n) without search, so the time loop can rekey
// exactly the agents whose state changed (the dirty set) and read the
// earliest event in O(1). Ties break on AgentID so the heap layout is
// deterministic; layout never affects results (only jump sizes derive from
// it, and any valid jump is equivalence-safe), determinism just keeps runs
// reproducible to inspect.
type calendar struct {
	entries []calEntry
	pos     []int32 // AgentID -> heap index, -1 when absent
}

// grow extends the position index to cover n agents.
func (c *calendar) grow(n int) {
	for len(c.pos) < n {
		c.pos = append(c.pos, -1)
	}
}

// len reports the number of scheduled entries.
func (c *calendar) len() int { return len(c.entries) }

// contains reports whether the agent has an entry.
func (c *calendar) contains(id AgentID) bool { return c.pos[id] >= 0 }

// minKey returns the earliest due tick, or neverTick when empty.
func (c *calendar) minKey() simtime.Tick {
	if len(c.entries) == 0 {
		return neverTick
	}
	return c.entries[0].key
}

// set inserts or updates the agent's entry to the given due tick.
func (c *calendar) set(id AgentID, key simtime.Tick) {
	if i := c.pos[id]; i >= 0 {
		old := c.entries[i].key
		c.entries[i].key = key
		if key < old {
			c.up(int(i))
		} else if key > old {
			c.down(int(i))
		}
		return
	}
	c.entries = append(c.entries, calEntry{key: key, id: id})
	c.pos[id] = int32(len(c.entries) - 1)
	c.up(len(c.entries) - 1)
}

// remove drops the agent's entry if present.
func (c *calendar) remove(id AgentID) {
	i := c.pos[id]
	if i < 0 {
		return
	}
	last := len(c.entries) - 1
	c.swap(int(i), last)
	c.entries = c.entries[:last]
	c.pos[id] = -1
	if int(i) < last {
		c.down(int(i))
		c.up(int(i))
	}
}

// clear drops every entry while keeping the position index allocated —
// the span partition primitive: the global calendar is dealt into per-lane
// calendars at span entry and rebuilt from them at the exit barrier, so
// emptying must not thrash the pos slice.
func (c *calendar) clear() {
	for _, e := range c.entries {
		c.pos[e.id] = -1
	}
	c.entries = c.entries[:0]
}

// popMin removes and returns the head agent; callers must check len first.
func (c *calendar) popMin() AgentID {
	id := c.entries[0].id
	c.remove(id)
	return id
}

func (c *calendar) less(i, j int) bool {
	if c.entries[i].key != c.entries[j].key {
		return c.entries[i].key < c.entries[j].key
	}
	return c.entries[i].id < c.entries[j].id
}

func (c *calendar) swap(i, j int) {
	c.entries[i], c.entries[j] = c.entries[j], c.entries[i]
	c.pos[c.entries[i].id] = int32(i)
	c.pos[c.entries[j].id] = int32(j)
}

func (c *calendar) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *calendar) down(i int) {
	n := len(c.entries)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && c.less(l, smallest) {
			smallest = l
		}
		if r < n && c.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		c.swap(i, smallest)
		i = smallest
	}
}
