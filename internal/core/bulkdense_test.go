package core

import (
	"fmt"
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/queueing"
)

// hzAgent is a horizon-aware, bulk-capable queue agent — the minimal
// hardware-like agent for core-layer tests. It reports exact horizons so
// the bulk-dense loop can step it lazily, and counts Step invocations and
// total ticks advanced so tests can assert both that laziness engaged and
// that no tick was lost.
type hzAgent struct {
	AgentBase
	q       *queueing.FCFS
	steps   int   // Step invocations (per-tick work)
	stepped int64 // total ticks advanced, bulk or not
}

func newHzAgent(s *Simulation, name string, rate float64) *hzAgent {
	a := &hzAgent{q: queueing.NewFCFS(1, rate)}
	a.q.SetNotify(a.MarkDirty)
	a.InitAgent(s.NextAgentID(), name)
	s.AddAgent(a)
	return a
}

func (a *hzAgent) Enqueue(t *queueing.Task) {
	a.Sync()
	a.q.Enqueue(t)
}

func (a *hzAgent) Step(dt float64) {
	a.steps++
	a.stepped++
	a.q.Step(dt, a.BufferDone)
}

func (a *hzAgent) StepN(n int, dt float64) {
	if a.q.CanBulk(float64(n) * dt) {
		a.stepped += int64(n)
		a.q.BulkStep(n, dt)
		return
	}
	for i := 0; i < n; i++ {
		a.Step(dt)
	}
}

func (a *hzAgent) Idle() bool       { return a.q.Idle() }
func (a *hzAgent) Horizon() float64 { return a.q.Horizon() }

// TestBulkDrainReachesArmedCompletion is the drain-set correctness case:
// a completion armed at t=0 that fires only after a long stretch, on an
// agent that is neither due nor notified at any intermediate iteration —
// a naive drain set built only from SetNotify firings would never reach
// it. A busy neighbor keeps the loop iterating every tick, so the armed
// agent is skipped by the involved-only sweep the whole way; the due-pop
// at its event tick must still step and drain it at exactly the instant
// the lock-step loop would.
func TestBulkDrainReachesArmedCompletion(t *testing.T) {
	run := func(noBulk bool) (*Simulation, *hzAgent, *hzAgent) {
		s := NewSimulation(Config{Step: 0.01, Seed: 1, CollectEvery: 1 << 30, NoBulkDense: noBulk})
		slow := newHzAgent(s, "slow", 100) // demand 100 => 1 s = 100 ticks
		fast := newHzAgent(s, "fast", 100)
		armed := false
		s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
			if !armed {
				armed = true
				sim.StartOp(singleStageOp("ARMED", "NA", slow, 100))
			}
			// One short op per tick keeps events firing on the neighbor, so
			// the loop single-steps densely while the armed agent waits.
			sim.StartOp(singleStageOp("NOISE", "NA", fast, 2))
		}))
		s.RunFor(1.5)
		return s, slow, fast
	}
	bulk, bulkSlow, _ := run(false)
	plain, plainSlow, _ := run(true)

	// The armed completion must be drained at the exact tick it fires.
	bs, ps := bulk.Responses.Series("ARMED", "NA"), plain.Responses.Series("ARMED", "NA")
	if bs == nil || bs.Len() != 1 || ps.Len() != 1 {
		t.Fatalf("armed op completions: bulk %v plain %v, want 1 each", bs, ps)
	}
	if bs.T[0] != ps.T[0] || bs.V[0] != ps.V[0] {
		t.Fatalf("armed completion diverged: (%v, %v) vs (%v, %v)", bs.T[0], bs.V[0], ps.T[0], ps.V[0])
	}
	if math.Abs(bs.T[0]-1.01) > 0.011 {
		t.Errorf("armed completion at %v, want ~1.01 (100 ticks service + forwarding tick)", bs.T[0])
	}
	// Noise traffic must match bit for bit too.
	bn, pn := bulk.Responses.Series("NOISE", "NA"), plain.Responses.Series("NOISE", "NA")
	if bn.Len() != pn.Len() {
		t.Fatalf("noise completions: %d vs %d", bn.Len(), pn.Len())
	}
	for i := range pn.V {
		if bn.T[i] != pn.T[i] || bn.V[i] != pn.V[i] {
			t.Fatalf("noise completion %d diverged: (%v, %v) vs (%v, %v)", i, bn.T[i], bn.V[i], pn.T[i], pn.V[i])
		}
	}
	// Both loops advanced the armed agent through the same ticks, but the
	// bulk-dense loop must have done so lazily: a handful of Step calls
	// (the event tick plus catch-up remainders) instead of one per tick.
	if bulkSlow.stepped != plainSlow.stepped {
		t.Errorf("ticks advanced diverged: bulk %d vs plain %d", bulkSlow.stepped, plainSlow.stepped)
	}
	if plainSlow.steps < 90 {
		t.Errorf("lock-step loop stepped the armed agent %d times, want ~100 (every tick)", plainSlow.steps)
	}
	if bulkSlow.steps > 10 {
		t.Errorf("bulk-dense loop stepped the armed agent %d times, want <= 10 (lazy catch-up)", bulkSlow.steps)
	}
}

// TestBulkQuietArmedCompletion is the jump variant of the drain-set case:
// nothing else happens, so the loop takes one long jump to just before the
// armed event tick and a single step onto it — the completion must still
// be found and drained on time.
func TestBulkQuietArmedCompletion(t *testing.T) {
	run := func(noBulk bool) *Simulation {
		s := NewSimulation(Config{Step: 0.01, Seed: 1, CollectEvery: 1 << 30, NoBulkDense: noBulk})
		slow := newHzAgent(s, "slow", 100)
		s.AddSource(&timedSource{at: 0, launch: func(sim *Simulation) {
			sim.StartOp(singleStageOp("ARMED", "NA", slow, 500)) // 5 s
		}})
		s.RunFor(10)
		return s
	}
	bulk, plain := run(false), run(true)
	bs, ps := bulk.Responses.Series("ARMED", "NA"), plain.Responses.Series("ARMED", "NA")
	if bs == nil || bs.Len() != 1 || ps.Len() != 1 {
		t.Fatalf("completions: bulk %v plain %v, want 1 each", bs, ps)
	}
	if bs.T[0] != ps.T[0] || bs.V[0] != ps.V[0] {
		t.Fatalf("completion diverged: (%v, %v) vs (%v, %v)", bs.T[0], bs.V[0], ps.T[0], ps.V[0])
	}
	bj, bskip := bulk.FastForwardStats()
	pj, pskip := plain.FastForwardStats()
	if bj != pj || bskip != pskip {
		t.Errorf("jump stats diverged: %d/%d vs %d/%d (jump sizing must be unchanged)", bj, bskip, pj, pskip)
	}
	if bskip < 900 {
		t.Errorf("skipped only %d ticks; the quiet schedule holds ~9.5 s", bskip)
	}
}

// TestBulkLazyEnqueueSyncsFirst pins the catch-up-before-enqueue contract:
// work arriving on a lazily-stepped agent must land on state that has been
// replayed to the present tick, so in-progress service keeps its exact
// completion instant and the new work queues behind it identically to the
// lock-step loop.
func TestBulkLazyEnqueueSyncsFirst(t *testing.T) {
	run := func(noBulk bool) *Simulation {
		s := NewSimulation(Config{Step: 0.01, Seed: 1, CollectEvery: 1 << 30, NoBulkDense: noBulk})
		ag := newHzAgent(s, "srv", 100)
		fast := newHzAgent(s, "fast", 100)
		// Long service armed at t=0; a second task lands mid-service at
		// t=0.4 while the agent is lazy; noise keeps the loop dense.
		s.AddSource(&timedSource{at: 0, launch: func(sim *Simulation) {
			sim.StartOp(singleStageOp("LONG", "NA", ag, 80)) // 0.8 s
		}})
		s.AddSource(&timedSource{at: 0.4, launch: func(sim *Simulation) {
			sim.StartOp(singleStageOp("TAIL", "NA", ag, 30)) // 0.3 s after LONG
		}})
		n := 0
		s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
			n++
			if n%3 == 0 {
				sim.StartOp(singleStageOp("NOISE", "NA", fast, 3))
			}
		}))
		s.RunFor(2)
		return s
	}
	bulk, plain := run(false), run(true)
	for _, op := range []string{"LONG", "TAIL", "NOISE"} {
		bs, ps := bulk.Responses.Series(op, "NA"), plain.Responses.Series(op, "NA")
		if bs == nil || ps == nil || bs.Len() != ps.Len() {
			t.Fatalf("%s: completions %v vs %v", op, bs, ps)
		}
		for i := range ps.V {
			if bs.T[i] != ps.T[i] || bs.V[i] != ps.V[i] {
				t.Fatalf("%s completion %d diverged: (%v, %v) vs (%v, %v)", op, i, bs.T[i], bs.V[i], ps.T[i], ps.V[i])
			}
		}
	}
}

// parkingSource launches once and then parks its schedule at +Inf,
// counting Poll and NextPoll invocations — the instrument for pinning the
// dormant-source contract: a parked source must not be re-consulted until
// an explicit RearmSource notification.
type parkingSource struct {
	at        float64
	fired     int
	polls     int
	nextPolls int
}

func (p *parkingSource) Poll(s *Simulation, now float64) {
	p.polls++
	if now >= p.at {
		p.fired++
		p.at = math.Inf(1)
	}
}

func (p *parkingSource) NextPoll(now float64) float64 {
	p.nextPolls++
	return p.at
}

// TestDormantSourceNotReconsulted pins the explicit re-arm contract: a
// source whose NextPoll returns +Inf is parked — zero Poll or NextPoll
// calls while dormant, however many iterations pass — and RearmSource is
// what wakes it. The pinned veto agent forces an iteration per tick, so
// the old per-iteration reconsult would have produced hundreds of
// NextPoll calls.
func TestDormantSourceNotReconsulted(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	v := &vetoAgent{}
	v.InitAgent(s.NextAgentID(), "veto")
	s.AddAgent(v)
	v.Pin()
	src := &parkingSource{at: 0.1}
	h := s.AddSource(src)

	s.RunFor(5) // 500 per-tick iterations
	if src.fired != 1 || src.polls != 2 {
		t.Fatalf("fired %d times in %d polls, want 1 in 2 (registration tick + due tick)", src.fired, src.polls)
	}
	// One NextPoll per executed poll — and none across the ~490 dormant
	// iterations, which the per-iteration reconsult would each have paid.
	if src.nextPolls != src.polls {
		t.Errorf("NextPoll consulted %d times for %d polls; dormant stretch must add none", src.nextPolls, src.polls)
	}

	// Re-arm mid-run: the source schedules a second launch and notifies.
	src.at = s.Clock().NowSeconds() + 0.5
	s.RearmSource(h)
	consulted := src.nextPolls
	if consulted != src.polls+1 {
		t.Fatalf("RearmSource consulted NextPoll %d times, want exactly once", consulted-src.polls)
	}
	s.RunFor(1)
	if src.fired != 2 {
		t.Errorf("re-armed source fired %d times, want 2", src.fired)
	}
	if src.polls != 3 {
		t.Errorf("re-armed source polled %d times, want 3 (exactly one new due poll)", src.polls)
	}
	if src.nextPolls != src.polls+1 {
		t.Errorf("NextPoll consulted %d times total, want %d (no reconsult after re-parking)", src.nextPolls, src.polls+1)
	}
}

// TestCalendarInvalidationProperty drives a random interleaving of every
// operation that can move an agent's next event — enqueues, ticks (due
// pops and completions), jumps, bare MarkDirty/MarkActive — and after each
// operation folds the dirty set and checks the full calendar invariant:
// the heap is a valid min-heap with a consistent position index, every
// active agent has exactly one entry whose key equals the agent's freshly
// recomputed due tick (based at the tick its state has advanced through),
// and no inactive agent lingers.
func TestCalendarInvalidationProperty(t *testing.T) {
	for _, seed := range []uint64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			calendarProperty(t, seed, 10000, false)
		})
	}
	// The lock-step calendar loop upholds the same invariant with keys
	// based at the clock (every active agent is swept every iteration).
	t.Run("seed-7-lockstep", func(t *testing.T) { calendarProperty(t, 7, 10000, true) })
}

func calendarProperty(t *testing.T, seed uint64, nops int, noBulk bool) {
	t.Helper()
	s := NewSimulation(Config{Step: 0.01, Seed: seed, CollectEvery: 1 << 30, NoBulkDense: noBulk})
	rng := rand.New(rand.NewPCG(seed, seed^0xabcdef))
	agents := make([]*hzAgent, 8)
	for i := range agents {
		agents[i] = newHzAgent(s, fmt.Sprintf("prop-%d", i), 100*float64(i+1))
	}

	verify := func(op string) {
		s.rekeyDirty() // fold pending invalidations, as the loop would before reading the head
		now := s.clock.Now()
		for i, e := range s.cal.entries {
			if s.cal.pos[e.id] != int32(i) {
				t.Fatalf("after %s: pos[%d] = %d, entry at %d", op, e.id, s.cal.pos[e.id], i)
			}
			if i > 0 {
				if parent := (i - 1) / 2; s.cal.less(i, parent) {
					t.Fatalf("after %s: heap violated at %d (key %d) under parent %d (key %d)",
						op, i, e.key, parent, s.cal.entries[parent].key)
				}
			}
		}
		active := 0
		for _, a := range agents {
			b := a.Base()
			if !b.active {
				if s.cal.contains(b.id) {
					t.Fatalf("after %s: inactive agent %d still in calendar", op, b.id)
				}
				continue
			}
			active++
			if !s.cal.contains(b.id) {
				t.Fatalf("after %s: active agent %d missing from calendar", op, b.id)
			}
			base := now
			if s.bulkDense {
				base = s.agentTick[b.id]
			}
			want := s.agentKey(a.Horizon(), base)
			if got := s.cal.entries[s.cal.pos[b.id]].key; got != want {
				t.Fatalf("after %s: agent %d key %d, want %d (horizon %v based at tick %d)",
					op, b.id, got, want, a.Horizon(), base)
			}
		}
		if s.cal.len() != active {
			t.Fatalf("after %s: %d calendar entries for %d active agents", op, s.cal.len(), active)
		}
	}

	for i := 0; i < nops; i++ {
		a := agents[rng.IntN(len(agents))]
		var op string
		switch rng.IntN(10) {
		case 0, 1, 2, 3: // enqueue work (flows exercise Sync + SetNotify)
			demand := (0.2 + 5*rng.Float64()) * a.q.Rate() * s.clock.Step()
			s.StartOp(singleStageOp("P", "NA", a, demand))
			op = "enqueue"
		case 4, 5, 6: // advance one tick: pops due entries, completes work
			s.Tick()
			op = "tick"
		case 7: // multi-tick run: jumps, pops, drains, deactivations
			s.RunFor(float64(1+rng.IntN(20)) * s.clock.Step())
			op = "run"
		case 8:
			a.MarkDirty()
			op = "markdirty"
		default:
			a.MarkActive()
			op = "markactive"
		}
		verify(op)
	}
}

// TestBulkDirectTickMatchesLockStep runs the same random traffic under
// direct Tick calls — where every landing is a full-sync — and under the
// jumping run loop, in bulk and lock-step modes, asserting identical
// responses. It complements the scenario-level equivalence suite with a
// core-only harness that is cheap enough for -short.
func TestBulkDirectTickMatchesLockStep(t *testing.T) {
	run := func(noBulk bool, direct bool) *Simulation {
		s := NewSimulation(Config{Step: 0.01, Seed: 9, CollectEvery: 50, NoBulkDense: noBulk})
		ag := newHzAgent(s, "srv", 200)
		dl := NewDelayLine(s, "think")
		count := 0
		s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
			if count < 40 && sim.Clock().Now()%7 == 0 {
				count++
				d := 1 + sim.RNG().Float64()*20
				sim.StartOp(OpRun{
					Name: "MIX", DC: "NA", NumSteps: 2,
					Expand: func(step int) []MessagePlan {
						if step == 0 {
							return []MessagePlan{{Stages: []Stage{{Queue: ag, Demand: d}}}}
						}
						return []MessagePlan{{Stages: []Stage{{Queue: dl, Delay: 0.13}}}}
					},
				})
			}
		}))
		if direct {
			for i := 0; i < 600; i++ {
				s.Tick()
			}
		} else {
			s.RunFor(6)
		}
		return s
	}
	ref := run(true, false)
	for _, tc := range []struct {
		name   string
		noBulk bool
		direct bool
	}{{"bulk-run", false, false}, {"bulk-direct-tick", false, true}, {"lockstep-direct-tick", true, true}} {
		got := run(tc.noBulk, tc.direct)
		if ref.CompletedOps() != got.CompletedOps() {
			t.Errorf("%s: completed ops %d vs %d", tc.name, ref.CompletedOps(), got.CompletedOps())
		}
		rs, gs := ref.Responses.Series("MIX", "NA"), got.Responses.Series("MIX", "NA")
		if rs.Len() != gs.Len() {
			t.Fatalf("%s: %d vs %d completions", tc.name, rs.Len(), gs.Len())
		}
		for i := range rs.V {
			if rs.T[i] != gs.T[i] || rs.V[i] != gs.V[i] {
				t.Fatalf("%s: completion %d diverged: (%v, %v) vs (%v, %v)",
					tc.name, i, rs.T[i], rs.V[i], gs.T[i], gs.V[i])
			}
		}
	}
}
