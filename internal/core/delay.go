package core

import (
	"container/heap"
	"math"

	"repro/internal/queueing"
)

// DelayLine is a pseudo-agent that holds tasks for a fixed delay without
// contention. It models client-side time (think time, local rendering) and
// any stage where elapsed time matters but no shared resource is consumed.
// The delay is carried in Task.Delay, in seconds.
type DelayLine struct {
	AgentBase
	now  float64
	heap delayHeap
	seq  uint64
}

// NewDelayLine creates and registers a delay line with the simulation.
func NewDelayLine(sim *Simulation, name string) *DelayLine {
	d := &DelayLine{}
	d.InitAgent(sim.NextAgentID(), name)
	sim.AddAgent(d)
	return d
}

// Enqueue admits a task; it will complete after task.Delay seconds. The
// line's local clock only advances while it is active, which is safe: the
// expiry of every held task is relative to that same local clock. Sync
// first replays any ticks the bulk-dense loop deferred, so the local clock
// is current before the expiry is computed against it. The admission both
// activates the line and invalidates its calendar entry — the new expiry
// may precede the cached earliest one.
func (d *DelayLine) Enqueue(t *queueing.Task) {
	d.Sync()
	d.MarkDirty()
	d.seq++
	heap.Push(&d.heap, delayEntry{expiry: d.now + t.Delay, seq: d.seq, task: t})
}

// Step advances local time and buffers expired tasks in expiry order (ties
// broken by admission order for determinism).
func (d *DelayLine) Step(dt float64) {
	d.now += dt
	for d.heap.Len() > 0 && d.heap[0].expiry <= d.now+1e-12 {
		e := heap.Pop(&d.heap).(delayEntry)
		d.BufferDone(e.task)
	}
}

// StepN advances local time through n quiet ticks. The local clock must
// still accumulate tick by tick — expiries compare against it, so a single
// large addition would shift them by ulps — but when no expiry can fall in
// the window the per-tick heap inspection is elided.
func (d *DelayLine) StepN(n int, dt float64) {
	if d.heap.Len() == 0 || d.heap[0].expiry-d.now > float64(n)*dt+1e-7 {
		now := d.now
		for i := 0; i < n; i++ {
			now += dt
		}
		d.now = now
		return
	}
	for i := 0; i < n; i++ {
		d.Step(dt)
	}
}

// Idle reports whether no tasks are waiting.
func (d *DelayLine) Idle() bool { return d.heap.Len() == 0 }

// Horizon returns the time until the earliest held task expires, measured
// against the line's local clock — which is exactly the simulated time the
// line will accumulate across a fast-forward replay — or +Inf when empty.
func (d *DelayLine) Horizon() float64 {
	if d.heap.Len() == 0 {
		return math.Inf(1)
	}
	return d.heap[0].expiry - d.now
}

type delayEntry struct {
	expiry float64
	seq    uint64
	task   *queueing.Task
}

type delayHeap []delayEntry

func (h delayHeap) Len() int { return len(h) }
func (h delayHeap) Less(i, j int) bool {
	if h[i].expiry != h[j].expiry {
		return h[i].expiry < h[j].expiry
	}
	return h[i].seq < h[j].seq
}
func (h delayHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *delayHeap) Push(x any)   { *h = append(*h, x.(delayEntry)) }
func (h *delayHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
