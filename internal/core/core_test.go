package core

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/queueing"
)

// testQueueAgent wraps an FCFS queue, standing in for a hardware component.
type testQueueAgent struct {
	AgentBase
	q *queueing.FCFS
}

func newTestQueueAgent(s *Simulation, name string, servers int, rate float64) *testQueueAgent {
	a := &testQueueAgent{q: queueing.NewFCFS(servers, rate)}
	a.InitAgent(s.NextAgentID(), name)
	s.AddAgent(a)
	return a
}

func (a *testQueueAgent) Enqueue(t *queueing.Task) { a.q.Enqueue(t) }
func (a *testQueueAgent) Step(dt float64)          { a.q.Step(dt, a.BufferDone) }
func (a *testQueueAgent) Idle() bool               { return a.q.Idle() }

func singleStageOp(name, dc string, agent QueueAgent, demand float64) OpRun {
	return OpRun{
		Name:     name,
		DC:       dc,
		NumSteps: 1,
		Expand: func(int) []MessagePlan {
			return []MessagePlan{{Stages: []Stage{{Queue: agent, Demand: demand}}}}
		},
	}
}

func TestAgentBaseInitPanics(t *testing.T) {
	var b AgentBase
	defer func() {
		if recover() == nil {
			t.Error("empty name did not panic")
		}
	}()
	b.InitAgent(0, "")
}

func TestAgentBaseDoubleInitPanics(t *testing.T) {
	var b AgentBase
	b.InitAgent(0, "a")
	defer func() {
		if recover() == nil {
			t.Error("double init did not panic")
		}
	}()
	b.InitAgent(1, "b")
}

func TestAddAgentIDMismatchPanics(t *testing.T) {
	s := NewSimulation(Config{})
	var b struct {
		AgentBase
	}
	_ = b
	a := &testQueueAgent{q: queueing.NewFCFS(1, 1)}
	a.InitAgent(5, "wrong") // simulation expects ID 0
	defer func() {
		if recover() == nil {
			t.Error("ID mismatch did not panic")
		}
	}()
	s.AddAgent(a)
}

func TestSingleStageOpCompletes(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	cpu := newTestQueueAgent(s, "cpu", 1, 100) // 100 units/s
	launched := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !launched {
			launched = true
			sim.StartOp(singleStageOp("OP", "NA", cpu, 50)) // 0.5s of service
		}
	}))
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	mean, ok := s.Responses.MeanAll("OP", "NA")
	if !ok {
		t.Fatal("no response recorded")
	}
	// 0.5 s service, plus up to a couple of ticks of phase quantization.
	if mean < 0.5-1e-9 || mean > 0.53 {
		t.Errorf("response = %v, want ~0.5", mean)
	}
	if s.CompletedOps() != 1 {
		t.Errorf("completedOps = %d", s.CompletedOps())
	}
}

func TestForkJoinStepWaitsForAllMessages(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	fast := newTestQueueAgent(s, "fast", 1, 100)
	slow := newTestQueueAgent(s, "slow", 1, 10)
	var secondStepStarted float64 = -1
	op := OpRun{
		Name: "FJ", DC: "NA", NumSteps: 2,
		Expand: func(step int) []MessagePlan {
			if step == 0 {
				return []MessagePlan{
					{Stages: []Stage{{Queue: fast, Demand: 10}}},  // 0.1s
					{Stages: []Stage{{Queue: slow, Demand: 100}}}, // 10s
				}
			}
			secondStepStarted = s.Clock().NowSeconds()
			return []MessagePlan{{Stages: []Stage{{Queue: fast, Demand: 1}}}}
		},
	}
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(op)
		}
	}))
	if err := s.RunUntilIdle(30); err != nil {
		t.Fatal(err)
	}
	if secondStepStarted < 10 {
		t.Errorf("second step started at %v, before slow branch finished (10s)", secondStepStarted)
	}
}

func TestInstantStagesRunHooksInOrder(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	cpu := newTestQueueAgent(s, "cpu", 1, 100)
	var events []string
	op := OpRun{
		Name: "HOOKS", DC: "NA", NumSteps: 1,
		Expand: func(int) []MessagePlan {
			return []MessagePlan{{Stages: []Stage{
				{Begin: func() { events = append(events, "acquire") }},
				{Queue: cpu, Demand: 10,
					Begin: func() { events = append(events, "work-begin") },
					End:   func() { events = append(events, "work-end") }},
				{End: func() { events = append(events, "release") }},
			}}}
		},
	}
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(op)
		}
	}))
	if err := s.RunUntilIdle(5); err != nil {
		t.Fatal(err)
	}
	want := []string{"acquire", "work-begin", "work-end", "release"}
	if len(events) != len(want) {
		t.Fatalf("events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events = %v, want %v", events, want)
		}
	}
}

func TestGaugeTracksConcurrentOps(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	cpu := newTestQueueAgent(s, "cpu", 4, 100)
	n := 0
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if n < 3 {
			n++
			op := singleStageOp("G", "NA", cpu, 100) // 1s each
			op.GaugeKey = "clients"
			sim.StartOp(op)
		}
	}))
	s.RunFor(0.5)
	if g := s.GaugeValue("clients"); g != 3 {
		t.Errorf("gauge mid-flight = %v, want 3", g)
	}
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if g := s.GaugeValue("clients"); g != 0 {
		t.Errorf("gauge after completion = %v, want 0", g)
	}
}

func TestDelayLineHoldsExactDelay(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	dl := NewDelayLine(s, "think")
	op := OpRun{
		Name: "THINK", DC: "NA", NumSteps: 1,
		Expand: func(int) []MessagePlan {
			return []MessagePlan{{Stages: []Stage{{Queue: dl, Delay: 1.5}}}}
		},
	}
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(op)
		}
	}))
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	mean, _ := s.Responses.MeanAll("THINK", "NA")
	if math.Abs(mean-1.5) > 0.03 {
		t.Errorf("delay response = %v, want ~1.5", mean)
	}
}

func TestDelayLineOrdering(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	dl := NewDelayLine(s, "dl")
	var order []string
	mk := func(name string, d float64) OpRun {
		return OpRun{
			Name: name, DC: "NA", NumSteps: 1,
			Expand: func(int) []MessagePlan {
				return []MessagePlan{{Stages: []Stage{{Queue: dl, Delay: d}}}}
			},
			OnComplete: func(now, dur float64) { order = append(order, name) },
		}
	}
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(mk("slow", 2))
			sim.StartOp(mk("quick", 1))
		}
	}))
	if err := s.RunUntilIdle(10); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "quick" || order[1] != "slow" {
		t.Errorf("completion order = %v", order)
	}
}

func TestTimestampConsistencyAcrossStages(t *testing.T) {
	// A task forwarded during tick t must not be served before tick t+1
	// (§4.3.3), so a 2-stage zero-ish-demand flow takes at least 2 ticks.
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	a := newTestQueueAgent(s, "a", 1, 1e9)
	b := newTestQueueAgent(s, "b", 1, 1e9)
	op := OpRun{
		Name: "2STAGE", DC: "NA", NumSteps: 1,
		Expand: func(int) []MessagePlan {
			return []MessagePlan{{Stages: []Stage{
				{Queue: a, Demand: 1},
				{Queue: b, Demand: 1},
			}}}
		},
	}
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(op)
		}
	}))
	if err := s.RunUntilIdle(1); err != nil {
		t.Fatal(err)
	}
	mean, _ := s.Responses.MeanAll("2STAGE", "NA")
	if mean < 2*s.Clock().Step()-1e-9 {
		t.Errorf("2-stage flow finished in %v, violating per-tick forwarding", mean)
	}
}

func TestActiveSetJoinAndLeave(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	a := newTestQueueAgent(s, "a", 1, 100)
	idle := newTestQueueAgent(s, "idle", 1, 100)
	_ = idle
	if n := s.ActiveAgents(); n != 0 {
		t.Fatalf("fresh simulation has %d active agents, want 0", n)
	}
	launched := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !launched {
			launched = true
			sim.StartOp(singleStageOp("A", "NA", a, 50)) // 0.5 s of service
		}
	}))
	s.RunFor(0.1)
	if n := s.ActiveAgents(); n != 1 {
		t.Errorf("mid-flight active set size = %d, want 1 (only the serving agent)", n)
	}
	if err := s.RunUntilIdle(5); err != nil {
		t.Fatal(err)
	}
	if n := s.ActiveAgents(); n != 0 {
		t.Errorf("post-completion active set size = %d, want 0", n)
	}
}

func TestActiveSetDuplicateEnqueueSingleEntry(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	a := newTestQueueAgent(s, "a", 1, 100)
	launched := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !launched {
			launched = true
			for i := 0; i < 5; i++ {
				sim.StartOp(singleStageOp("D", "NA", a, 10))
			}
		}
	}))
	s.RunFor(0.05)
	if n := s.ActiveAgents(); n != 1 {
		t.Errorf("5 enqueues on one agent produced active set size %d, want 1", n)
	}
	if err := s.RunUntilIdle(5); err != nil {
		t.Fatal(err)
	}
	if s.CompletedOps() != 5 {
		t.Errorf("completedOps = %d, want 5", s.CompletedOps())
	}
}

// stepCounter counts sweeps; it never holds work, so without a pin it would
// leave the active set immediately.
type stepCounter struct {
	AgentBase
	steps int
}

func (a *stepCounter) Step(dt float64) { a.steps++ }
func (a *stepCounter) Idle() bool      { return true }

func TestPinnedAgentSweptEveryTick(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	pinned := &stepCounter{}
	pinned.InitAgent(s.NextAgentID(), "pinned")
	s.AddAgent(pinned)
	pinned.Pin()
	loose := &stepCounter{}
	loose.InitAgent(s.NextAgentID(), "loose")
	s.AddAgent(loose)
	s.RunFor(0.1) // 10 ticks
	if pinned.steps != 10 {
		t.Errorf("pinned agent stepped %d times, want 10", pinned.steps)
	}
	if loose.steps != 0 {
		t.Errorf("unpinned idle agent stepped %d times, want 0", loose.steps)
	}
}

func TestMarkActiveBeforeRegistrationIsSafe(t *testing.T) {
	var a stepCounter
	a.MarkActive() // not registered: must be a no-op, not a panic
	a.Pin()
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	a.InitAgent(s.NextAgentID(), "early")
	s.AddAgent(&a)
	s.RunFor(0.02)
	if a.steps != 2 {
		t.Errorf("pre-registration Pin: stepped %d times, want 2", a.steps)
	}
}

func TestGaugeHandleInterning(t *testing.T) {
	s := NewSimulation(Config{})
	g1 := s.GaugeHandle("x")
	g2 := s.GaugeHandle("x")
	if g1 != g2 {
		t.Errorf("interning returned distinct handles %d, %d", g1, g2)
	}
	if g := s.GaugeHandle(""); g != 0 {
		t.Errorf("empty key interned to %d, want 0", g)
	}
	s.AddGaugeBy(g1, 2.5)
	s.AddGauge("x", 1.5)
	if v := s.GaugeValue("x"); v != 4 {
		t.Errorf("gauge = %v, want 4 (handle and string APIs share storage)", v)
	}
	if v := s.GaugeValueBy(0); v != 0 {
		t.Errorf("zero handle read %v, want 0", v)
	}
	s.AddGaugeBy(0, 99) // no-op, must not panic
}

func TestRunUntilIdleTimesOut(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	slow := newTestQueueAgent(s, "slow", 1, 1)
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(singleStageOp("SLOW", "NA", slow, 1e6))
		}
	}))
	if err := s.RunUntilIdle(0.5); err == nil {
		t.Error("RunUntilIdle should time out on a stuck flow")
	}
}

func TestStartOpValidation(t *testing.T) {
	s := NewSimulation(Config{})
	defer func() {
		if recover() == nil {
			t.Error("invalid OpRun did not panic")
		}
	}()
	s.StartOp(OpRun{Name: "bad"})
}

func TestDeterminismSameSeed(t *testing.T) {
	run := func() (uint64, float64) {
		s := NewSimulation(Config{Step: 0.01, Seed: 99})
		cpu := newTestQueueAgent(s, "cpu", 2, 100)
		count := 0
		s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
			if count < 50 && sim.Clock().Now()%10 == 0 {
				count++
				d := 10 + sim.RNG().Float64()*90
				sim.StartOp(singleStageOp("R", "NA", cpu, d))
			}
		}))
		if err := s.RunUntilIdle(120); err != nil {
			t.Fatal(err)
		}
		m, _ := s.Responses.MeanAll("R", "NA")
		return s.CompletedOps(), m
	}
	n1, m1 := run()
	n2, m2 := run()
	if n1 != n2 || m1 != m2 {
		t.Errorf("non-deterministic: (%d,%v) vs (%d,%v)", n1, m1, n2, m2)
	}
}

func TestSilentOpsSkipResponseRecording(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	cpu := newTestQueueAgent(s, "cpu", 1, 100)
	op := singleStageOp("WARM", "NA", cpu, 10)
	op.Silent = true
	started := false
	s.AddSource(SourceFunc(func(sim *Simulation, now float64) {
		if !started {
			started = true
			sim.StartOp(op)
		}
	}))
	if err := s.RunUntilIdle(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Responses.MeanAll("WARM", "NA"); ok {
		t.Error("silent op recorded a response")
	}
	if s.CompletedOps() != 1 {
		t.Error("silent op not counted as completed")
	}
}

// timedSource launches once at a scheduled instant and reports it through
// NextPoll, so the event-horizon loop can skip the quiet polls before it.
type timedSource struct {
	at     float64
	fired  bool
	launch func(s *Simulation)
}

func (ts *timedSource) Poll(s *Simulation, now float64) {
	if !ts.fired && now >= ts.at {
		ts.fired = true
		ts.launch(s)
	}
}

func (ts *timedSource) NextPoll(now float64) float64 {
	if ts.fired {
		return math.Inf(1)
	}
	return ts.at
}

// fastForwardFixture runs a sparse schedule — two delay-line operations
// separated by long quiet stretches — and returns the simulation for
// inspection. The completion instants land mid-stretch, so both the
// source-poll and the agent-horizon jump bounds are exercised.
func fastForwardFixture(noFF bool) *Simulation {
	s := NewSimulation(Config{Step: 0.01, CollectEvery: 500, Seed: 3, NoFastForward: noFF})
	s.Collector.Register(metrics.Probe{Key: "flows", Sample: func(float64) float64 {
		return float64(s.ActiveFlows())
	}})
	dl := NewDelayLine(s, "think")
	for _, at := range []float64{0.5, 31.07} {
		s.AddSource(&timedSource{at: at, launch: func(s *Simulation) {
			s.StartOp(OpRun{
				Name: "THINK", DC: "NA", NumSteps: 1,
				Expand: func(int) []MessagePlan {
					return []MessagePlan{{Stages: []Stage{{Queue: dl, Delay: 7.301}}}}
				},
			})
		}})
	}
	s.RunFor(60)
	return s
}

// TestFastForwardDelayLine checks the event-horizon loop end to end at the
// core layer: the fast-forwarded run must jump across the quiet stretches
// yet record completion timestamps bit-identical to the plain loop.
func TestFastForwardDelayLine(t *testing.T) {
	ff := fastForwardFixture(false)
	plain := fastForwardFixture(true)

	if j, skipped := plain.FastForwardStats(); j != 0 || skipped != 0 {
		t.Fatalf("plain loop jumped: %d jumps, %d ticks", j, skipped)
	}
	jumps, skipped := ff.FastForwardStats()
	if jumps == 0 || skipped < 3000 {
		t.Errorf("fast-forward skipped %d ticks in %d jumps; the 60 s schedule holds ~45 s of quiet", skipped, jumps)
	}
	if ff.Clock().Now() != plain.Clock().Now() {
		t.Errorf("final tick: %d vs %d", ff.Clock().Now(), plain.Clock().Now())
	}
	if ff.CompletedOps() != 2 || plain.CompletedOps() != 2 {
		t.Fatalf("completed ops: ff %d plain %d, want 2", ff.CompletedOps(), plain.CompletedOps())
	}
	fs, ps := ff.Responses.Series("THINK", "NA"), plain.Responses.Series("THINK", "NA")
	for i := range ps.V {
		if fs.T[i] != ps.T[i] || fs.V[i] != ps.V[i] {
			t.Errorf("completion %d: (%v, %v) vs (%v, %v)", i, fs.T[i], fs.V[i], ps.T[i], ps.V[i])
		}
	}
}

// TestFastForwardSnapshotBoundaries asserts that jumps never skip a
// collector boundary: the snapshot timeline must be identical to the
// plain loop's even when the platform is quiet for many windows.
func TestFastForwardSnapshotBoundaries(t *testing.T) {
	ff := fastForwardFixture(false)
	plain := fastForwardFixture(true)
	fs, ps := ff.Collector.MustSeries("flows"), plain.Collector.MustSeries("flows")
	if fs.Len() != ps.Len() || fs.Len() != 12 {
		t.Fatalf("snapshots: ff %d plain %d, want 12 (every 5 s over 60 s)", fs.Len(), ps.Len())
	}
	for i := range ps.V {
		if fs.T[i] != ps.T[i] || fs.V[i] != ps.V[i] {
			t.Errorf("snapshot %d: (%v, %v) vs (%v, %v)", i, fs.T[i], fs.V[i], ps.T[i], ps.V[i])
		}
	}
}

// TestDirectTickNeverJumps pins the Tick contract: manual single-stepping
// stays single-stepping, however quiet the simulation is.
func TestDirectTickNeverJumps(t *testing.T) {
	s := NewSimulation(Config{Step: 0.01, Seed: 1})
	NewDelayLine(s, "idle")
	for i := 0; i < 1000; i++ {
		s.Tick()
	}
	if j, skipped := s.FastForwardStats(); j != 0 || skipped != 0 {
		t.Errorf("direct Tick jumped: %d jumps, %d ticks", j, skipped)
	}
	if s.Clock().Now() != 1000 {
		t.Errorf("clock at %d, want 1000", s.Clock().Now())
	}
}
