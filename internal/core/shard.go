package core

import (
	"fmt"

	"repro/internal/queueing"
)

// ShardRunner is the engine capability that unlocks the sharded PDES
// runtime: an engine that owns a fixed set of shard-pinned workers and can
// run one function on every shard concurrently. When the configured engine
// implements it (dispatch.Sharded does) and the bulk-dense loop is on, the
// simulation partitions its agents across the shards and executes the
// parallel phases of each window — involved-agent advancement, mailbox
// application, horizon precomputation — shard-locally, with all flow
// routing, RNG draws and metric writes staying in the sequential residue
// between barriers. Config.NoShards turns the runtime off for A/B
// comparison while keeping the same engine.
type ShardRunner interface {
	Engine
	// ShardCount reports the number of shards the engine runs.
	ShardCount() int
	// RunShards invokes fn(shard) once per shard, concurrently, and
	// returns after every invocation finished. Calls never overlap: the
	// simulation is single-threaded between parallel phases.
	RunShards(fn func(shard int))
}

// mailEntry is one deferred cross-phase enqueue: a task handed to a queue
// agent during the sequential drain, buffered into the owning shard's
// timestamped mailbox and applied at the end-of-drain barrier. The
// timestamp is implicit — every entry in a window's mailbox carries the
// window's landing tick, the only tick at which drains run.
type mailEntry struct {
	q QueueAgent
	t *queueing.Task
}

// shardBuf collects the activation/invalidation side effects a shard's
// worker produces while applying its mailbox, so the global active, dirty
// and drain sets are only touched by the deterministic sequential merge.
// The trailing pad keeps adjacent shards' buffers off one cache line.
type shardBuf struct {
	activated []AgentID
	dirty     []AgentID
	drain     []AgentID
	liveDelta int
	_         [64]byte
}

// shardState is the sharded-runtime extension of a Simulation: the shard
// map, per-shard mailboxes and scratch, and the per-shard RNG seeds. It
// exists only when the configured engine is a ShardRunner, the bulk-dense
// loop is enabled and Config.NoShards is off.
type shardState struct {
	runner ShardRunner
	n      int
	// seeds[w] = DeriveSeed(Config.Seed, w): an independent stream root
	// per shard, for shard-resident stochastic components. The stock
	// cascade machinery draws all randomness in the sequential residue
	// (that is what keeps results bit-identical across shard counts), so
	// these streams are reserved capacity, exposed via ShardSeed.
	seeds []uint64
	// shardOf maps AgentID to owning shard; agents beyond its length (or
	// an unconfigured map) fall back to ID modulo n. Any assignment is
	// bit-identical — ownership only decides which worker executes an
	// agent's arithmetic — so the fallback is a correctness-neutral
	// default and topology.PartitionByDC a locality optimization.
	shardOf []int32

	// deferring routes flow-router enqueues into the mailboxes (drain
	// phase only); applying routes activate/invalidate into the per-shard
	// buffers (mailbox application only).
	deferring bool
	applying  bool

	mail [][]mailEntry
	bufs []shardBuf
	inv  [][]Agent   // involved-sweep partition scratch
	pre  [][]AgentID // horizon-precompute partition scratch

	// Per-phase worker functions, bound once so the three RunShards calls
	// a window makes allocate no closures.
	sweepFn func(int)
	applyFn func(int)
	preFn   func(int)
}

func newShardState(s *Simulation, runner ShardRunner, seed uint64) *shardState {
	n := runner.ShardCount()
	st := &shardState{
		runner: runner,
		n:      n,
		seeds:  make([]uint64, n),
		mail:   make([][]mailEntry, n),
		bufs:   make([]shardBuf, n),
		inv:    make([][]Agent, n),
		pre:    make([][]AgentID, n),
	}
	for w := 0; w < n; w++ {
		st.seeds[w] = DeriveSeed(seed, uint64(w))
	}
	st.sweepFn = func(w int) {
		for _, a := range st.inv[w] {
			s.advanceFn(a)
		}
	}
	st.applyFn = func(w int) {
		box := st.mail[w]
		for i := range box {
			e := &box[i]
			s.syncAgent(e.q.ID())
			e.q.Enqueue(e.t)
			e.q.Base().MarkActive()
			box[i] = mailEntry{}
		}
		st.mail[w] = box[:0]
	}
	st.preFn = func(w int) {
		for _, id := range st.pre[w] {
			s.agentHorizon(s.agents[id], s.agentTick[id])
		}
	}
	return st
}

// shard returns the owning shard of an agent.
func (st *shardState) shard(id AgentID) int32 {
	if int(id) < len(st.shardOf) {
		return st.shardOf[id]
	}
	return int32(int(id) % st.n)
}

// post buffers a drain-phase enqueue into the target agent's shard
// mailbox. The sequential drain is the only writer, so entries land in
// global drain order — each mailbox preserves the relative order of
// enqueues onto any one queue, which is the arrival-order contract FCFS,
// PS and delay-line queues key their determinism on.
func (st *shardState) post(q QueueAgent, t *queueing.Task) {
	w := st.shard(q.ID())
	st.mail[w] = append(st.mail[w], mailEntry{q: q, t: t})
}

// sweepInvolved advances the window's involved agents shard-locally:
// each worker replays exactly its own agents, in ascending ID order
// within the shard (the involved set arrives sorted). Per-agent
// arithmetic is identical to the engine-sweep path, so the result is
// bit-identical to any other execution order.
func (st *shardState) sweepInvolved(s *Simulation) {
	for w := range st.inv {
		st.inv[w] = st.inv[w][:0]
	}
	for _, a := range s.invAgents {
		w := st.shard(a.ID())
		st.inv[w] = append(st.inv[w], a)
	}
	st.runner.RunShards(st.sweepFn)
}

// applyMail drains every shard's mailbox concurrently — sync the target,
// enqueue, mark active, exactly the inline sequence the flow router
// deferred — then merges the buffered side effects into the global sets
// in ascending shard order. Within a shard, entries apply in mailbox
// (global drain) order; across shards the entries touch disjoint agents,
// so the merge order is observationally irrelevant and fixed anyway to
// keep runs reproducible under inspection.
func (st *shardState) applyMail(s *Simulation) {
	total := 0
	for w := range st.mail {
		total += len(st.mail[w])
	}
	if total == 0 {
		return
	}
	st.applying = true
	st.runner.RunShards(st.applyFn)
	st.applying = false
	for w := range st.bufs {
		b := &st.bufs[w]
		s.liveActive += b.liveDelta
		b.liveDelta = 0
		for _, id := range b.activated {
			if n := len(s.active); n > 0 && id < s.active[n-1] {
				s.activeSorted = false
			}
			s.active = append(s.active, id)
			s.sweepStale = true
		}
		b.activated = b.activated[:0]
		s.dirty = append(s.dirty, b.dirty...)
		b.dirty = b.dirty[:0]
		s.drainPend = append(s.drainPend, b.drain...)
		b.drain = b.drain[:0]
	}
}

// activateLocal is the applying-phase form of Simulation.activate: the
// same bookkeeping, buffered into the owning shard instead of written to
// the global sets. agentTick and the AgentBase flags are per-agent state
// owned by exactly one shard, so the direct writes are race-free.
func (st *shardState) activateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.liveDelta++
	s.agentTick[id] = s.clock.Now()
	ab := s.agents[id].Base()
	if ab.listed {
		return // tombstone revived in place, same as the global path
	}
	ab.listed = true
	b.activated = append(b.activated, id)
}

// invalidateLocal is the applying-phase form of Simulation.invalidate.
func (st *shardState) invalidateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.dirty = append(b.dirty, id)
	s.hMemoTick[id] = hMemoUnset
	if ab := s.agents[id].Base(); !ab.pendDrain {
		ab.pendDrain = true
		b.drain = append(b.drain, id)
	}
}

// precomputeHorizons warms the horizon memo for the dirty set
// shard-locally, so the sequential rekey that follows reads memoized
// values instead of paying every Horizon call on one core. Skipping an
// agent is always safe — rekeyDirty recomputes on a memo miss — so the
// filter mirrors rekey's own active check without having to be exact.
func (st *shardState) precomputeHorizons(s *Simulation) {
	if len(s.dirty) < st.n {
		return
	}
	for w := range st.pre {
		st.pre[w] = st.pre[w][:0]
	}
	for _, id := range s.dirty {
		if !s.agents[id].Base().active {
			continue
		}
		w := st.shard(id)
		st.pre[w] = append(st.pre[w], id)
	}
	st.runner.RunShards(st.preFn)
}

// Sharded reports the shard count when the sharded runtime is engaged
// (ShardRunner engine, bulk-dense loop on, Config.NoShards off).
func (s *Simulation) Sharded() (int, bool) {
	if s.sh == nil {
		return 0, false
	}
	return s.sh.n, true
}

// ShardSeed returns the derived RNG stream root of one shard
// (DeriveSeed(Config.Seed, shard)) — the seed shard-resident stochastic
// components draw from so their streams are independent of the
// sequential simulation RNG and of every other shard.
func (s *Simulation) ShardSeed(shard int) uint64 {
	if s.sh == nil || shard < 0 || shard >= s.sh.n {
		panic(fmt.Sprintf("core: shard %d out of range", shard))
	}
	return s.sh.seeds[shard]
}

// SetShardAssignment installs the AgentID-to-shard map, normally the
// per-datacenter partition from topology.PartitionByDC. Agents beyond the
// slice (registered later) fall back to ID modulo the shard count. The
// assignment affects locality only, never results; it is a no-op when the
// sharded runtime is not engaged.
func (s *Simulation) SetShardAssignment(assign []int32) {
	if s.sh == nil {
		return
	}
	for i, w := range assign {
		if w < 0 || int(w) >= s.sh.n {
			panic(fmt.Sprintf("core: agent %d assigned to shard %d, have %d shards", i, w, s.sh.n))
		}
	}
	s.sh.shardOf = append(s.sh.shardOf[:0], assign...)
}

// AgentCount reports the registered agent population, sizing external
// per-agent tables such as shard assignments.
func (s *Simulation) AgentCount() int { return len(s.agents) }
