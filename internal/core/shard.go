package core

import (
	"fmt"
	"math"
	"slices"
	"sync"

	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/simtime"
)

// ShardRunner is the engine capability that unlocks the sharded PDES
// runtime: an engine that owns a fixed set of shard-pinned workers and can
// run one function on every shard concurrently. When the configured engine
// implements it (dispatch.Sharded does) and the bulk-dense loop is on, the
// simulation partitions its agents across the shards and executes the
// parallel phases of each window — involved-agent advancement, mailbox
// application, horizon precomputation — shard-locally, with all flow
// routing, RNG draws and metric writes staying in the sequential residue
// between barriers. Config.NoShards turns the runtime off for A/B
// comparison while keeping the same engine.
type ShardRunner interface {
	Engine
	// ShardCount reports the number of shards the engine runs.
	ShardCount() int
	// RunShards invokes fn(shard) once per shard, concurrently, and
	// returns after every invocation finished. Calls never overlap: the
	// simulation is single-threaded between parallel phases.
	RunShards(fn func(shard int))
}

// mailEntry is one deferred cross-phase enqueue: a task handed to a queue
// agent either during the sequential drain (buffered into the owning
// shard's mailbox, applied at the end-of-drain barrier) or mid-span from a
// shard lane (posted into the target shard's inbox, applied at the next
// application point — span entry, collector-boundary span exit, or the
// next barrier window). due is the earliest tick at which the task can
// have an observable effect on the receiver: the posting tick plus the
// whole ticks covered by the task's fixed delay (for WAN-link hops, the
// link latency — the lookahead of the conservative protocol). post is the
// tick the enqueue happened at in sequential terms; lat snapshots the
// target link's latency then, so a late application can reconstruct the
// latency countdown bit-exactly (queueing.ReplayLatency). src and seq
// order concurrent posts the way the sequential drain would have: the
// drain visits agents in ascending ID at each tick, and seq preserves the
// completion order within one agent's drain. The apply phase audits that
// no replayed entry is ever applied at or past its due tick; the property
// tests pin the audit.
type mailEntry struct {
	q    QueueAgent
	t    *queueing.Task
	due  simtime.Tick
	post simtime.Tick
	lat  float64
	src  AgentID
	seq  uint64
}

// cmpMail orders inbox entries the way the sequential drain enqueued them:
// by tick, then by the draining agent's ID (the drain visits agents in
// ascending ID order), then by the per-lane post sequence (completion
// order within one agent's drain — one lane per agent makes it a valid
// global tiebreak). Due-time order would be wrong: a degraded link's
// longer latency can invert due order against post order.
func cmpMail(a, b mailEntry) int {
	switch {
	case a.post != b.post:
		if a.post < b.post {
			return -1
		}
		return 1
	case a.src != b.src:
		if a.src < b.src {
			return -1
		}
		return 1
	case a.seq != b.seq:
		if a.seq < b.seq {
			return -1
		}
		return 1
	}
	return 0
}

// shardInbox is one shard's mid-span inbound mailbox: cross-shard posts
// from any lane land here under the mutex (the only lock in the span path;
// posts are rare — one per WAN hop — and never contend with the owner,
// which only drains the inbox at sequential application points). The
// trailing pad keeps adjacent inboxes off one cache line.
type shardInbox struct {
	mu   sync.Mutex
	pend []mailEntry
	_    [64]byte
}

// shardBuf collects the activation/invalidation side effects a shard's
// worker produces while applying its mailbox, so the global active, dirty
// and drain sets are only touched by the deterministic sequential merge.
// mailApplied/mailMinSlack accumulate the shard's mailbox-safety audit
// (entries applied; minimum due-minus-horizon slack in ticks). The
// trailing pad keeps adjacent shards' buffers off one cache line.
type shardBuf struct {
	activated    []AgentID
	dirty        []AgentID
	drain        []AgentID
	liveDelta    int
	mailApplied  uint64
	mailMinSlack simtime.Tick
	_            [64]byte
}

// shardState is the sharded-runtime extension of a Simulation: the shard
// map, per-shard mailboxes and scratch, and the per-shard RNG seeds. It
// exists only when the configured engine is a ShardRunner, the bulk-dense
// loop is enabled and Config.NoShards is off.
type shardState struct {
	runner ShardRunner
	n      int
	// seeds[w] = DeriveSeed(Config.Seed, w): an independent stream root
	// per shard, for shard-resident stochastic components. The stock
	// cascade machinery draws all randomness in the sequential residue
	// (that is what keeps results bit-identical across shard counts), so
	// these streams are reserved capacity, exposed via ShardSeed.
	seeds []uint64
	// shardOf maps AgentID to owning shard; agents beyond its length (or
	// an unconfigured map) fall back to ID modulo n. Any assignment is
	// bit-identical — ownership only decides which worker executes an
	// agent's arithmetic — so the fallback is a correctness-neutral
	// default and topology.PartitionByDC a locality optimization.
	shardOf []int32

	// deferring routes flow-router enqueues into the mailboxes (drain
	// phase only); applying routes activate/invalidate into the per-shard
	// buffers (mailbox application only); inSpan routes the activation,
	// invalidation, sync and flow hooks onto the shard lanes (stretched
	// spans only). The three phases are mutually exclusive.
	deferring bool
	applying  bool
	inSpan    bool

	// stretch enables Chandy-Misra window stretching (Config.NoStretch
	// off): between global barriers each shard may run many consecutive
	// calendar windows on its own lane, bounded by the next collector
	// boundary, the run end and the earliest global-source due tick.
	stretch bool
	// noCross restores the PR 8 binary guard (Config.NoCrossStretch):
	// spans form only while no cross-capable flow is in flight. By default
	// spans instead bound themselves by the per-token chain-completion
	// guard plus the WAN lookahead and survive live cross-DC cascades.
	noCross bool
	// lookTicks is the installed WAN lookahead in ticks: the minimum over
	// all shards with a finite topology.ShardPlan.LookaheadSec of that
	// bound's TicksIn. Every mid-span cross-shard post targets a transit
	// link whose latency is at least the receiving shard's bound, so any
	// post made at lane tick p carries due >= p + lookTicks — capping a
	// span at entry+lookTicks keeps every post due strictly beyond the
	// span end. Zero means not installed (SetShardLookahead never called,
	// or some shard's inbound latency rounds to zero ticks): spans then
	// refuse to form while any token may still cross shards — the
	// conservative PR 8 behavior. neverTick means unbounded (no shard has
	// a finite bound, so no cross-shard edge exists at all).
	lookTicks simtime.Tick
	// dcLane maps each data-center name to its owning shard — the routing
	// table lane-confined flows and sources resolve through. Installed by
	// SetDCShards from the topology partition; spans never form while it
	// is empty.
	dcLane map[string]int
	// lanes is the per-shard span execution state; shardWindows counts the
	// lane windows each shard ran inside spans; committed[w] is the tick
	// shard w's agents are known to be advanced through at the last global
	// synchronization — the safe horizon the mailbox audit checks against.
	lanes        []laneState
	shardWindows []uint64
	committed    []simtime.Tick

	mail [][]mailEntry
	// inbox[w] receives mid-span cross-shard posts bound for shard w; mail
	// (above) receives the sequential drain's deferred enqueues. Both feed
	// applyEntry, but on different schedules: mail applies at the same tick
	// it was posted, inbox entries whole ticks later with a latency replay.
	inbox []shardInbox
	bufs  []shardBuf
	inv   [][]Agent   // involved-sweep partition scratch
	pre   [][]AgentID // horizon-precompute partition scratch

	// Per-phase worker functions, bound once so the RunShards calls a
	// window (or span) makes allocate no closures.
	sweepFn func(int)
	applyFn func(int)
	preFn   func(int)
	spanFn  func(int)
}

func newShardState(s *Simulation, runner ShardRunner, seed uint64) *shardState {
	n := runner.ShardCount()
	st := &shardState{
		runner:       runner,
		n:            n,
		seeds:        make([]uint64, n),
		shardWindows: make([]uint64, n),
		committed:    make([]simtime.Tick, n),
		mail:         make([][]mailEntry, n),
		inbox:        make([]shardInbox, n),
		bufs:         make([]shardBuf, n),
		inv:          make([][]Agent, n),
		pre:          make([][]AgentID, n),
	}
	for w := 0; w < n; w++ {
		st.seeds[w] = DeriveSeed(seed, uint64(w))
		st.bufs[w].mailMinSlack = neverTick
	}
	st.sweepFn = func(w int) {
		for _, a := range st.inv[w] {
			s.advanceFn(a)
		}
	}
	st.applyFn = func(w int) {
		box := st.mail[w]
		now := s.clock.Now()
		b := &st.bufs[w]
		for i := range box {
			st.applyEntry(s, &box[i], now, b)
			box[i] = mailEntry{}
		}
		st.mail[w] = box[:0]
	}
	st.preFn = func(w int) {
		for _, id := range st.pre[w] {
			s.agentHorizon(s.agents[id], s.agentTick[id])
		}
	}
	st.spanFn = func(w int) {
		ln := &st.lanes[w]
		for ln.tick < ln.spanEnd {
			s.laneWindow(ln)
		}
	}
	return st
}

// shard returns the owning shard of an agent.
func (st *shardState) shard(id AgentID) int32 {
	if int(id) < len(st.shardOf) {
		return st.shardOf[id]
	}
	return int32(int(id) % st.n)
}

// post buffers a drain-phase enqueue into the target agent's shard
// mailbox. The sequential drain is the only writer, so entries land in
// global drain order — each mailbox preserves the relative order of
// enqueues onto any one queue, which is the arrival-order contract FCFS,
// PS and delay-line queues key their determinism on. The due stamp is the
// posting tick plus the task's fixed delay in whole ticks: for a WAN-link
// hop that delay is the link latency, so a cross-shard message carries the
// WAN lookahead as its safety margin over the receiver's horizon.
func (st *shardState) post(s *Simulation, q QueueAgent, t *queueing.Task) {
	w := st.shard(q.ID())
	now := s.clock.Now()
	due := now
	if t.Delay > 0 {
		due += s.clock.TicksIn(t.Delay)
	}
	st.mail[w] = append(st.mail[w], mailEntry{q: q, t: t, due: due, post: now})
}

// applyEntry commits one deferred enqueue onto its target agent with the
// exact sync/enqueue/activate sequence the flow router would have run
// inline. Barrier-mail entries apply at their posting tick and reduce to
// that inline sequence verbatim. Inbox entries apply whole ticks after
// their post: the target is a latencied transit link whose task spends
// those ticks in its latency phase — consuming no bandwidth, holding only
// one of k connection slots — so the only state the late enqueue must
// reconstruct is the latency countdown, which ReplayLatency rebuilds
// bit-exactly from the snapshotted latency and the elapsed whole ticks.
// That reconstruction is only exact if the task would have held a slot
// from its posting instant, so a contended link is a loud protocol
// failure, never a silent divergence. The audit pins the conservative
// protocol: a replayed entry applied at or past its due tick would mean
// the receiver may already have advanced through state the message should
// have influenced.
func (st *shardState) applyEntry(s *Simulation, e *mailEntry, applyTick simtime.Tick, b *shardBuf) {
	if applyTick > e.post && applyTick >= e.due {
		panic(fmt.Sprintf("core: mailbox entry posted at tick %d, due at %d, applied at %d — past its due instant",
			e.post, e.due, applyTick))
	}
	if slack := e.due - applyTick; slack < b.mailMinSlack {
		b.mailMinSlack = slack
	}
	b.mailApplied++
	s.syncAgent(e.q.ID())
	replay := applyTick > e.post
	if replay {
		sf, ok := e.q.(interface{ FreeSlot() bool })
		if !ok || !sf.FreeSlot() {
			panic(fmt.Sprintf("core: replayed cross-shard delivery onto contended transit %T — latency replay would diverge", e.q))
		}
	}
	e.q.Enqueue(e.t)
	if replay {
		e.t.Delay = queueing.ReplayLatency(e.lat, int(applyTick-e.post), s.clock.Step())
	}
	e.q.Base().MarkActive()
	if tok, ok := e.t.Payload.(*token); ok {
		tok.parked = 0
		tok.stageTick = applyTick
		tok.home = st.shard(e.q.ID())
	}
}

// postInbox parks a mid-span cross-shard hand-off in the target shard's
// inbox. The posting lane stamps the entry with its own tick, the target
// link's latency (the entry's lookahead) and the sequential-order key; the
// token records its due tick so the span scheduler can bound later spans
// by the parked chain's earliest possible completion. The due assertion is
// the conservative protocol made executable: trySpan capped this span at
// entry+lookTicks, and every admissible target's latency covers at least
// that many ticks, so a post due inside its own span is a scheduler bug.
func (st *shardState) postInbox(s *Simulation, q QueueAgent, tok *token) {
	w := st.shard(q.ID())
	ln := &st.lanes[tok.home]
	lq, ok := q.(interface{ Latency() float64 })
	if !ok {
		panic(fmt.Sprintf("core: mid-span cross-shard hand-off to %T, want a latencied transit link", q))
	}
	if sg := &tok.stages[tok.idx]; sg.Begin != nil || sg.End != nil {
		panic(fmt.Sprintf("core: cross-shard stage on %s carries Begin/End hooks — those run on the wrong lane mid-span", q.Base().Name()))
	}
	lat := lq.Latency()
	post := ln.tick
	due := post + s.clock.TicksIn(lat)
	if due <= ln.spanEnd {
		panic(fmt.Sprintf("core: mid-span cross-shard post at tick %d due at %d, inside its own span (end %d) — lookahead bound violated",
			post, due, ln.spanEnd))
	}
	tok.parked = due
	ln.postSeq++
	e := mailEntry{q: q, t: &tok.task, due: due, post: post, lat: lat, src: ln.drainSrc, seq: ln.postSeq}
	ib := &st.inbox[w]
	ib.mu.Lock()
	ib.pend = append(ib.pend, e)
	ib.mu.Unlock()
}

// flushInbox applies every pending cross-shard inbox entry sequentially at
// the current tick, in sequential drain order. It runs at the application
// points outside lanes: the start of a barrier window (before the sources
// poll, so fault callbacks and probes read queues with all in-flight
// cross-shard work delivered) and a span exit that lands on a collector
// boundary or the run limit (before the snapshot, for the same reason).
// Every application point lies strictly before the earliest pending due
// tick — posts are due beyond their span's end, and these points are the
// first sequential instants after it — which the applyEntry audit checks.
func (st *shardState) flushInbox(s *Simulation) {
	now := s.clock.Now()
	for w := range st.inbox {
		ib := &st.inbox[w]
		if len(ib.pend) == 0 {
			continue
		}
		slices.SortFunc(ib.pend, cmpMail)
		b := &st.bufs[w]
		for i := range ib.pend {
			st.applyEntry(s, &ib.pend[i], now, b)
			ib.pend[i] = mailEntry{}
		}
		ib.pend = ib.pend[:0]
	}
}

// sweepInvolved advances the window's involved agents shard-locally:
// each worker replays exactly its own agents, in ascending ID order
// within the shard (the involved set arrives sorted). Per-agent
// arithmetic is identical to the engine-sweep path, so the result is
// bit-identical to any other execution order.
func (st *shardState) sweepInvolved(s *Simulation) {
	for w := range st.inv {
		st.inv[w] = st.inv[w][:0]
	}
	for _, a := range s.invAgents {
		w := st.shard(a.ID())
		st.inv[w] = append(st.inv[w], a)
	}
	st.runner.RunShards(st.sweepFn)
}

// applyMail drains every shard's mailbox concurrently — sync the target,
// enqueue, mark active, exactly the inline sequence the flow router
// deferred — then merges the buffered side effects into the global sets
// in ascending shard order. Within a shard, entries apply in mailbox
// (global drain) order; across shards the entries touch disjoint agents,
// so the merge order is observationally irrelevant and fixed anyway to
// keep runs reproducible under inspection.
func (st *shardState) applyMail(s *Simulation) {
	// The drain just ran at the current tick, so every shard's agents are
	// committed through it — the safe horizon the apply-phase audit checks
	// mailbox due stamps against.
	now := s.clock.Now()
	for w := range st.committed {
		if now > st.committed[w] {
			st.committed[w] = now
		}
	}
	total := 0
	for w := range st.mail {
		total += len(st.mail[w])
	}
	if total == 0 {
		return
	}
	st.applying = true
	st.runner.RunShards(st.applyFn)
	st.applying = false
	for w := range st.bufs {
		b := &st.bufs[w]
		s.liveActive += b.liveDelta
		b.liveDelta = 0
		for _, id := range b.activated {
			if n := len(s.active); n > 0 && id < s.active[n-1] {
				s.activeSorted = false
			}
			s.active = append(s.active, id)
			s.sweepStale = true
		}
		b.activated = b.activated[:0]
		s.dirty = append(s.dirty, b.dirty...)
		b.dirty = b.dirty[:0]
		s.drainPend = append(s.drainPend, b.drain...)
		b.drain = b.drain[:0]
	}
}

// activateLocal is the applying-phase form of Simulation.activate: the
// same bookkeeping, buffered into the owning shard instead of written to
// the global sets. agentTick and the AgentBase flags are per-agent state
// owned by exactly one shard, so the direct writes are race-free.
func (st *shardState) activateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.liveDelta++
	s.agentTick[id] = s.clock.Now()
	ab := s.agents[id].Base()
	if ab.listed {
		return // tombstone revived in place, same as the global path
	}
	ab.listed = true
	b.activated = append(b.activated, id)
}

// invalidateLocal is the applying-phase form of Simulation.invalidate.
func (st *shardState) invalidateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.dirty = append(b.dirty, id)
	s.hMemoTick[id] = hMemoUnset
	if ab := s.agents[id].Base(); !ab.pendDrain {
		ab.pendDrain = true
		b.drain = append(b.drain, id)
	}
}

// precomputeHorizons warms the horizon memo for the dirty set
// shard-locally, so the sequential rekey that follows reads memoized
// values instead of paying every Horizon call on one core. Skipping an
// agent is always safe — rekeyDirty recomputes on a memo miss — so the
// filter mirrors rekey's own active check without having to be exact.
func (st *shardState) precomputeHorizons(s *Simulation) {
	if len(s.dirty) < st.n {
		return
	}
	for w := range st.pre {
		st.pre[w] = st.pre[w][:0]
	}
	for _, id := range s.dirty {
		if !s.agents[id].Base().active {
			continue
		}
		w := st.shard(id)
		st.pre[w] = append(st.pre[w], id)
	}
	st.runner.RunShards(st.preFn)
}

// laneState is one shard's private slice of the simulation during a
// stretched span: its own clock position, event calendar, active/pinned
// sets, drain sets, source schedule view, flow bookkeeping and response
// buffer. A span partitions the corresponding global structures into the
// lanes at the entry barrier, lets every lane run the standard bulk-dense
// window loop privately — same jump sizing, same phase order, same
// per-agent arithmetic, so results are bit-identical — and merges the
// lanes back in ascending shard order at the exit barrier. Everything a
// lane touches between barriers is owned by exactly one shard: its agents
// (per the shard assignment), its DC's flows (Local cascades only), its
// DC-confined sources, gauges interned per DC, and per-agent memo slots.
// The trailing pad keeps adjacent lanes off one cache line.
type laneState struct {
	w       int32        // the lane's own shard index
	tick    simtime.Tick // the lane's local clock
	spanEnd simtime.Tick // the span's exit barrier tick
	limit   simtime.Tick // the run-level limit (full-sync detection)

	cal        calendar
	active     []AgentID
	pinned     []AgentID
	dirty      []AgentID
	drainPend  []AgentID
	drainSpare []AgentID
	invIDs     []AgentID

	// srcIdx indexes the lane's confined sources in s.sources/s.srcDue;
	// srcMin caches their minimum due tick, mirroring Simulation.srcMin.
	srcIdx []int
	srcMin simtime.Tick

	// inboxBatch holds the shard's pending inbox entries snapshotted at
	// span entry (already in sequential drain order); the lane applies
	// them first thing in its first window, at the span-entry tick —
	// always strictly before any entry's due tick, since every entry was
	// posted in an earlier span with due beyond that span's end. drainSrc
	// is the agent currently draining (the sequential-order key of any
	// cross-shard post its completions trigger) and postSeq the lane's
	// monotonic post counter.
	inboxBatch []mailEntry
	drainSrc   AgentID
	postSeq    uint64

	// Per-span deltas merged into the global counters at the exit barrier.
	liveDelta int
	flowDelta int
	completed uint64
	jumps     uint64
	skipped   uint64
	windows   uint64

	// Lane-local flow machinery: response buffer, token pool and ID
	// counters, so in-span launches never touch the shared ones.
	resp       *metrics.Responses
	tokenPool  []*token
	nextFlowID uint64
	nextTaskID uint64

	_ [64]byte
}

// newToken / freeToken are the lane-local forms of the Simulation token
// pool (flow.go): spans recycle message tokens per lane.
func (ln *laneState) newToken() *token {
	if n := len(ln.tokenPool); n > 0 {
		tok := ln.tokenPool[n-1]
		ln.tokenPool[n-1] = nil
		ln.tokenPool = ln.tokenPool[:n-1]
		return tok
	}
	return &token{}
}

func (ln *laneState) freeToken(tok *token) {
	*tok = token{}
	ln.tokenPool = append(ln.tokenPool, tok)
}

// trySpan decides whether the next window can instead run as a stretched
// span and, if so, executes it. The preconditions are exactly the cases
// where per-lane execution is provably equivalent to the barriered loop:
//
//   - a DC-to-shard routing table is installed (SetDCShards) — without it
//     nothing can be lane-confined;
//   - no agent registration is pending (rebind);
//   - no global source — a source not registered lane-confined, or
//     confined to an unmapped DC — comes due before the span would end;
//   - no cross-capable flow can complete a message chain inside the span:
//     chain-end completion re-enters non-lane-safe code (step expansion,
//     load balancing, RNG draws), so the span ends strictly before every
//     registered token's conservative chain-completion bound (tokenGuard);
//   - when any such token may still hop shards, the span additionally
//     stays within the installed WAN lookahead, so every mid-span post is
//     due beyond the span's end (see shardState.lookTicks).
//
// Under Config.NoCrossStretch the last two bounds collapse back to the
// binary guard: no span while any cross-capable flow is in flight.
//
// The span bound S is the earliest of: the run limit, the next collector
// boundary, the earliest global-source due tick, and the cross-token
// bounds. Spans must cover at least two ticks to beat the classic window;
// otherwise the caller falls back to the barriered path.
func (s *Simulation) trySpan(limit simtime.Tick) bool {
	sh := s.sh
	if len(sh.dcLane) == 0 || s.rebind {
		return false
	}
	if sh.noCross && s.crossFlows != 0 {
		return false
	}
	now := s.clock.Now()
	S := limit
	if b := nextCollectBoundary(now, s.collectEvery); b < S {
		S = b
	}
	for i, dc := range s.srcDC {
		if dc != "" {
			if _, ok := sh.dcLane[dc]; ok {
				continue // lane-confined: polled inside its lane
			}
		}
		if s.srcDue[i] < S {
			S = s.srcDue[i]
		}
	}
	if len(s.crossToks) > 0 {
		anyCross := false
		for _, tok := range s.crossToks {
			lb, mayCross := s.tokenGuard(tok)
			if lb-1 < S {
				S = lb - 1
			}
			anyCross = anyCross || mayCross
		}
		if anyCross {
			switch {
			case sh.lookTicks == 0:
				return false // lookahead not installed: PR 8 conservative blocking
			case sh.lookTicks < neverTick:
				if c := now + sh.lookTicks; c < S {
					S = c
				}
			}
		}
	}
	if S <= now+1 {
		return false
	}
	s.runSpan(S, limit)
	return true
}

// tokenGuard derives, for one live cross-capable message token, a
// conservative lower bound lb on the tick its final stage can complete
// (spans must end strictly before it — chain-end completion is not
// lane-safe) and whether any of its remaining stage transitions still
// crosses shards (only then does the WAN-lookahead cap apply; an
// all-local-remaining chain, e.g. a daemon's intra-DC tail, never posts).
//
// The bound is the fast-forward arithmetic run in reverse: an event at
// least rem seconds after real time anchor·step cannot be observed before
// anchor + 1 + WholeTicksBefore(rem − ffGuard). rem sums, per remaining
// stage, a lower bound on its residence time:
//
//   - the current stage uses live task state — the latency countdown plus
//     the transfer at full (uncontended) rate for a latencied PS link, the
//     task's own service demand for a known-rate FCFS queue, the unmutated
//     fixed delay for a delay line — anchored at the tick that state was
//     advanced through (agentTick, or the stage-entry tick for the delay
//     line, whose heap state is not readable per-task);
//   - a token parked in an inbox anchors at its due tick: the latency
//     countdown runs from the posting tick regardless of when the entry
//     applies, and cannot have expired before due, so only the transfer
//     and later stages remain (the loop discounts one tick against the
//     ceil-rounded due, hence no +1 on this anchor);
//   - future stages contribute their declared delay, service demand at the
//     target's current rate when it exposes one, and transit latency —
//     all valid through the span because rates and latencies change only
//     at fault ticks, and the fault controller is a global source whose
//     due tick already bounds every span.
//
// Queues exposing no rate contribute zero — conservative, shrinking the
// bound, never overshooting it.
func (s *Simulation) tokenGuard(tok *token) (lb simtime.Tick, mayCross bool) {
	sh := s.sh
	stages := tok.stages
	idx := tok.idx
	cur := stages[idx].Queue
	prevW := sh.shard(cur.ID())
	rem := 0.0
	for i := idx + 1; i < len(stages); i++ {
		st := &stages[i]
		if st.Queue == nil {
			continue
		}
		w := sh.shard(st.Queue.ID())
		if w != prevW {
			mayCross = true
		}
		prevW = w
		rem += st.Delay
		if r, ok := st.Queue.(interface{ Rate() float64 }); ok {
			rem += st.Demand / r.Rate()
		}
		if l, ok := st.Queue.(interface{ Latency() float64 }); ok {
			rem += l.Latency()
		}
	}
	t := &tok.task
	if tok.parked != 0 {
		if r, ok := cur.(interface{ Rate() float64 }); ok {
			rem += t.Demand / r.Rate()
		}
		return tok.parked + s.clock.WholeTicksBefore(rem-ffGuard), mayCross
	}
	var anchor simtime.Tick
	r, hasRate := cur.(interface{ Rate() float64 })
	_, hasLat := cur.(interface{ Latency() float64 })
	switch {
	case hasRate && hasLat: // latencied PS link: live countdown, full-rate transfer
		anchor = s.agentTick[cur.ID()]
		rem += t.Delay + t.Demand/r.Rate()
	case hasRate: // FCFS with a known per-server rate: own service time
		anchor = s.agentTick[cur.ID()]
		rem += t.Demand / r.Rate()
	default:
		// Anchored at stage entry: the tick the enqueue happened at. A
		// delay line holds the task exactly its unmutated fixed delay; a
		// rateless queue contributes nothing (its declared stage delay is
		// ignored by FCFS, so counting it would overshoot the bound).
		anchor = tok.stageTick
		if _, ok := cur.(*DelayLine); ok {
			rem += t.Delay
		}
	}
	return anchor + 1 + s.clock.WholeTicksBefore(rem-ffGuard), mayCross
}

// runSpan executes one stretched span [T, S): partition the global loop
// state into per-shard lanes, run every lane's window loop concurrently up
// to S, and merge the lanes back — the only global barrier the covered
// windows pay. The global clock is parked at T while lanes run (each lane
// carries its own tick) and commits to S at the exit barrier.
func (s *Simulation) runSpan(S, limit simtime.Tick) {
	sh := s.sh
	T := s.clock.Now()

	// Settle global state sequentially before partitioning: fold pending
	// invalidations into the calendar, drop active-set tombstones and
	// restore ascending order (lane active lists inherit sortedness).
	s.rekeyDirty()
	s.compactActive()

	// Partition. Lane calendars index the full agent population (cheap:
	// the pos slices persist across spans); entries, active IDs, drain
	// membership and pinned agents deal out by shard ownership.
	if sh.lanes == nil {
		sh.lanes = make([]laneState, sh.n)
		for w := range sh.lanes {
			ln := &sh.lanes[w]
			ln.w = int32(w)
			ln.resp = metrics.NewResponses()
			// Lane task/flow IDs live in a per-shard band so they never
			// collide with the sequential counters; IDs are bookkeeping
			// only (queueing is arrival-ordered), so the band choice is
			// behaviorally inert.
			ln.nextFlowID = uint64(w+1) << 48
			ln.nextTaskID = uint64(w+1) << 48
		}
	}
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		ln.tick = T
		ln.spanEnd = S
		ln.limit = limit
		ln.cal.grow(len(s.agents))
		ln.active = ln.active[:0]
		ln.pinned = ln.pinned[:0]
		ln.srcIdx = ln.srcIdx[:0]
		ln.liveDelta = 0
		ln.flowDelta = 0
		ln.completed = 0
		ln.jumps = 0
		ln.skipped = 0
		ln.windows = 0
	}
	for _, id := range s.active {
		ln := &sh.lanes[sh.shard(id)]
		ln.active = append(ln.active, id)
	}
	s.active = s.active[:0]
	for _, e := range s.cal.entries {
		sh.lanes[sh.shard(e.id)].cal.set(e.id, e.key)
	}
	s.cal.clear()
	for _, id := range s.drainPend {
		sh.lanes[sh.shard(id)].drainPend = append(sh.lanes[sh.shard(id)].drainPend, id)
	}
	s.drainPend = s.drainPend[:0]
	for _, id := range s.pinnedIDs {
		sh.lanes[sh.shard(id)].pinned = append(sh.lanes[sh.shard(id)].pinned, id)
	}
	for i, dc := range s.srcDC {
		if dc == "" {
			continue
		}
		if w, ok := sh.dcLane[dc]; ok {
			sh.lanes[w].srcIdx = append(sh.lanes[w].srcIdx, i)
		}
	}
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		min := neverTick
		for _, i := range ln.srcIdx {
			if s.srcDue[i] < min {
				min = s.srcDue[i]
			}
		}
		ln.srcMin = min
	}

	// Hand each shard's pending inbox entries to its lane, sorted into
	// sequential drain order; the lane applies them first thing in its
	// first window, at tick T — strictly before any entry's due tick,
	// since all of them were posted in an earlier span with due > T.
	// Mid-span posts land in the (empty again) inboxes for the next
	// application point.
	for w := range sh.inbox {
		ib := &sh.inbox[w]
		if len(ib.pend) == 0 {
			continue
		}
		slices.SortFunc(ib.pend, cmpMail)
		ln := &sh.lanes[w]
		ln.inboxBatch, ib.pend = ib.pend, ln.inboxBatch[:0]
	}

	// Run the lanes. Each executes the standard window loop privately up
	// to S; RunShards is the span's only barrier.
	sh.inSpan = true
	sh.runner.RunShards(sh.spanFn)
	sh.inSpan = false

	// Merge in ascending shard order — deterministic, and observationally
	// order-free anyway: lanes touch disjoint agents, flows and series.
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		s.liveActive += ln.liveDelta
		s.active = append(s.active, ln.active...)
		for _, e := range ln.cal.entries {
			s.cal.set(e.id, e.key)
		}
		ln.cal.clear()
		s.drainPend = append(s.drainPend, ln.drainPend...)
		ln.drainPend = ln.drainPend[:0]
		s.activeFlows += ln.flowDelta
		s.completedOps += ln.completed
		s.jumps += ln.jumps
		s.skipped += ln.skipped
		s.stretched += ln.windows
		sh.shardWindows[w] += ln.windows
		ln.resp.MergeInto(s.Responses)
		if S > sh.committed[w] {
			sh.committed[w] = S
		}
	}
	s.activeSorted = false
	s.sweepStale = true
	min := neverTick
	for _, due := range s.srcDue {
		if due < min {
			min = due
		}
	}
	s.srcMin = min

	s.clock.AdvanceBy(S - T)
	s.barriers++
	if S%s.collectEvery == 0 || S == limit {
		// The snapshot (and, at the limit, whatever runs after the loop)
		// reads queue counters, so in-flight cross-shard deliveries must
		// be in their queues first. Off-boundary span exits skip the
		// flush: pending entries carry into the next span's entry batch
		// or the next barrier window's flush, still ahead of their due
		// ticks.
		sh.flushInbox(s)
		if S%s.collectEvery == 0 {
			s.Collector.Snapshot(s.clock.NowSeconds())
		}
	}
}

// laneWindow runs one bulk-dense window on a single lane — a faithful
// per-shard transcription of Simulation.tickBulk, with the lane's tick,
// calendar, sets and counters standing in for the global ones. Keeping the
// phase order and the arithmetic identical is what makes a stretched span
// bit-identical to the barriered windows it replaces: a lane window's
// operations are the global window's operations restricted to one shard's
// agents, and operations on different shards' agents commute (disjoint
// per-agent state, per-DC round-robin/RNG/gauges, disjoint response keys).
func (s *Simulation) laneWindow(ln *laneState) {
	// Entry batch: cross-shard deliveries snapshotted at span entry apply
	// before anything else in the lane's first window, so they precede
	// every same-tick lane-local enqueue onto the same queues — the order
	// the sequential loop produced, where these tasks arrived whole ticks
	// ago. (Loaded only at span entry, so the batch is non-empty at most
	// in the first window.)
	if len(ln.inboxBatch) > 0 {
		sh := s.sh
		b := &sh.bufs[ln.w]
		for i := range ln.inboxBatch {
			sh.applyEntry(s, &ln.inboxBatch[i], ln.tick, b)
			ln.inboxBatch[i] = mailEntry{}
		}
		ln.inboxBatch = ln.inboxBatch[:0]
	}

	nowSec := s.clock.SecondsAt(ln.tick)

	// Phase 0: the lane's confined sources inject work.
	if ln.srcMin <= ln.tick {
		for _, i := range ln.srcIdx {
			if s.srcDue[i] <= ln.tick {
				s.sources[i].Poll(s, nowSec)
				s.srcDue[i] = s.srcDueTick(s.sources[i].NextPoll(nowSec), ln.tick)
			}
		}
		min := neverTick
		for _, i := range ln.srcIdx {
			if s.srcDue[i] < min {
				min = s.srcDue[i]
			}
		}
		ln.srcMin = min
	}

	s.laneRekey(ln)

	// Jump sizing — quietTicksCal against the lane's calendar and source
	// schedule, additionally capped at the span end.
	jump := simtime.Tick(1)
	if s.fastForward && ln.spanEnd > ln.tick+1 {
		max := ln.spanEnd - ln.tick
		if b := s.collectEvery - ln.tick%s.collectEvery; b < max {
			max = b
		}
		if max > 1 {
			if ln.srcMin != neverTick {
				if k := ln.srcMin - ln.tick; k < max {
					max = k
				}
			}
			if h := ln.cal.minKey(); h != neverTick {
				if k := h - 1 - ln.tick; k < max {
					max = k
				}
			}
		}
		if max > 1 {
			jump = max
		}
	}
	landing := ln.tick + jump

	// The involved set: due calendar entries plus the lane's pinned
	// agents; laneRekey just ran, so the dirty flag is the dedup gate.
	ln.invIDs = ln.invIDs[:0]
	for ln.cal.len() > 0 && ln.cal.minKey() <= landing {
		id := ln.cal.popMin()
		b := s.agents[id].Base()
		b.dirty = true
		ln.dirty = append(ln.dirty, id)
		if !b.pendDrain {
			b.pendDrain = true
			ln.drainPend = append(ln.drainPend, id)
		}
		ln.invIDs = append(ln.invIDs, id)
	}
	for _, id := range ln.pinned {
		b := s.agents[id].Base()
		if !b.dirty {
			b.dirty = true
			ln.dirty = append(ln.dirty, id)
			ln.invIDs = append(ln.invIDs, id)
		}
		if !b.pendDrain {
			b.pendDrain = true
			ln.drainPend = append(ln.drainPend, id)
		}
	}

	fullSync := landing%s.collectEvery == 0 || landing == ln.limit
	if fullSync {
		s.laneCompact(ln)
		ln.invIDs = append(ln.invIDs[:0], ln.active...)
	} else if len(ln.invIDs) > 1 {
		slices.Sort(ln.invIDs)
	}

	// Phase 1: advance the involved agents through the window, inline —
	// the per-agent arithmetic of advanceInvolved without the global
	// advanceTo rendezvous (each lane has its own landing).
	for _, id := range ln.invIDs {
		if n := landing - s.agentTick[id]; n > 0 {
			base := s.agentTick[id]
			s.agentTick[id] = landing
			s.advanceAgent(s.agents[id], base, n)
		}
	}
	if jump > 1 {
		ln.jumps++
		ln.skipped += uint64(jump - 1)
	}
	ln.tick = landing

	// Phase 3: calendar-driven drain in ascending agent-ID order. Lane
	// flows' enqueues stay inside the lane; a cross-capable token whose
	// next stage lives on another shard posts to that shard's inbox, with
	// the draining agent's ID recorded as the sequential-order key.
	pend := ln.drainPend
	ln.drainPend = ln.drainSpare[:0]
	if len(pend) > 1 {
		slices.Sort(pend)
	}
	for _, id := range pend {
		ln.drainSrc = id
		s.agents[id].Base().pendDrain = false
		s.agents[id].Drain(s.drainFn)
	}
	ln.drainSpare = pend[:0]

	// Deactivation: involved agents that went idle tombstone in place.
	for _, id := range ln.invIDs {
		a := s.agents[id]
		b := a.Base()
		if b.active && !b.pinned && a.Idle() {
			b.active = false
			ln.liveDelta--
			ln.cal.remove(id)
		}
	}

	s.laneRekey(ln)
	ln.windows++
}

// laneRekey is rekeyDirty restricted to a lane: recompute the calendar
// entry of every agent the lane invalidated, keyed at the agent's own
// stepped-through tick.
func (s *Simulation) laneRekey(ln *laneState) {
	if len(ln.dirty) == 0 {
		return
	}
	for _, id := range ln.dirty {
		a := s.agents[id]
		b := a.Base()
		b.dirty = false
		if !b.active {
			ln.cal.remove(id)
			continue
		}
		base := s.agentTick[id]
		ln.cal.set(id, s.agentKey(s.agentHorizon(a, base), base))
	}
	ln.dirty = ln.dirty[:0]
}

// laneCompact is compactActive restricted to a lane: drop tombstones and
// restore ascending ID order before a full-sync window serves the whole
// lane-active set.
func (s *Simulation) laneCompact(ln *laneState) {
	kept := ln.active[:0]
	for _, id := range ln.active {
		b := s.agents[id].Base()
		if b.active {
			kept = append(kept, id)
		} else {
			b.listed = false
		}
	}
	ln.active = kept
	slices.Sort(ln.active)
}

// SetDCShards installs the data-center-to-shard routing table (normally
// topology.ShardPlan.DCShard) that lets the stretched-span scheduler
// resolve lane-confined flows and sources to their owning shard. Without
// it spans never form and the loop barriers every window. It is a no-op
// when the sharded runtime is not engaged.
//
// Every lane-confined source (AddLaneSource) must name a data center in
// the table: an unmapped lane source would silently fall back to global
// treatment — its due ticks bounding every span — which is a wiring bug,
// not a tuning choice. SetDCShards validates the sources registered so
// far and AddLaneSource validates later registrations against the
// installed table, so the two orders of assembly are covered.
func (s *Simulation) SetDCShards(m map[string]int) {
	if s.sh == nil {
		return
	}
	t := make(map[string]int, len(m))
	for dc, w := range m {
		if w < 0 || w >= s.sh.n {
			panic(fmt.Sprintf("core: data center %q assigned to shard %d, have %d shards", dc, w, s.sh.n))
		}
		t[dc] = w
	}
	for i, dc := range s.srcDC {
		if dc == "" {
			continue
		}
		if _, ok := t[dc]; !ok {
			panic(fmt.Sprintf("core: lane-confined source %d bound to data center %q, which the shard plan does not partition (have %s)",
				i+1, dc, dcNames(t)))
		}
	}
	s.sh.dcLane = t
}

// dcNames renders the partitioned data-center names for error messages.
func dcNames(m map[string]int) string {
	names := make([]string, 0, len(m))
	for dc := range m {
		names = append(names, dc)
	}
	slices.Sort(names)
	return fmt.Sprintf("%v", names)
}

// SetShardLookahead installs the per-shard conservative lookahead bounds
// (normally topology.ShardPlan.LookaheadSec): for each shard, the minimum
// latency over all WAN links entering it from another shard. The runtime
// folds them to the global minimum in ticks — the span cap that keeps
// every mid-span cross-shard post due strictly beyond its span's end (see
// shardState.lookTicks). Shards with an infinite bound (nothing enters
// them) are skipped; with no finite bound at all, spans are uncapped
// because no cross-shard edge exists. Without this call, spans refuse to
// form while any cross-capable token may still hop shards — the
// conservative pre-lookahead behavior. It is a no-op when the sharded
// runtime is not engaged.
func (s *Simulation) SetShardLookahead(sec []float64) {
	if s.sh == nil {
		return
	}
	min := simtime.Tick(neverTick)
	for _, l := range sec {
		if math.IsInf(l, 1) {
			continue
		}
		if k := s.clock.TicksIn(l); k < min {
			min = k
		}
	}
	s.sh.lookTicks = min
}

// Sharded reports the shard count when the sharded runtime is engaged
// (ShardRunner engine, bulk-dense loop on, Config.NoShards off).
func (s *Simulation) Sharded() (int, bool) {
	if s.sh == nil {
		return 0, false
	}
	return s.sh.n, true
}

// ShardSeed returns the derived RNG stream root of one shard
// (DeriveSeed(Config.Seed, shard)) — the seed shard-resident stochastic
// components draw from so their streams are independent of the
// sequential simulation RNG and of every other shard.
func (s *Simulation) ShardSeed(shard int) uint64 {
	if s.sh == nil || shard < 0 || shard >= s.sh.n {
		panic(fmt.Sprintf("core: shard %d out of range", shard))
	}
	return s.sh.seeds[shard]
}

// SetShardAssignment installs the AgentID-to-shard map, normally the
// per-datacenter partition from topology.PartitionByDC. Agents beyond the
// slice (registered later) fall back to ID modulo the shard count. The
// assignment affects locality only, never results; it is a no-op when the
// sharded runtime is not engaged.
func (s *Simulation) SetShardAssignment(assign []int32) {
	if s.sh == nil {
		return
	}
	for i, w := range assign {
		if w < 0 || int(w) >= s.sh.n {
			panic(fmt.Sprintf("core: agent %d assigned to shard %d, have %d shards", i, w, s.sh.n))
		}
	}
	s.sh.shardOf = append(s.sh.shardOf[:0], assign...)
}

// AgentCount reports the registered agent population, sizing external
// per-agent tables such as shard assignments.
func (s *Simulation) AgentCount() int { return len(s.agents) }
