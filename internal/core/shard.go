package core

import (
	"fmt"
	"slices"

	"repro/internal/metrics"
	"repro/internal/queueing"
	"repro/internal/simtime"
)

// ShardRunner is the engine capability that unlocks the sharded PDES
// runtime: an engine that owns a fixed set of shard-pinned workers and can
// run one function on every shard concurrently. When the configured engine
// implements it (dispatch.Sharded does) and the bulk-dense loop is on, the
// simulation partitions its agents across the shards and executes the
// parallel phases of each window — involved-agent advancement, mailbox
// application, horizon precomputation — shard-locally, with all flow
// routing, RNG draws and metric writes staying in the sequential residue
// between barriers. Config.NoShards turns the runtime off for A/B
// comparison while keeping the same engine.
type ShardRunner interface {
	Engine
	// ShardCount reports the number of shards the engine runs.
	ShardCount() int
	// RunShards invokes fn(shard) once per shard, concurrently, and
	// returns after every invocation finished. Calls never overlap: the
	// simulation is single-threaded between parallel phases.
	RunShards(fn func(shard int))
}

// mailEntry is one deferred cross-phase enqueue: a task handed to a queue
// agent during the sequential drain, buffered into the owning shard's
// timestamped mailbox and applied at the end-of-drain barrier. due is the
// earliest tick at which the task can have an observable effect on the
// receiver: the posting window's landing tick plus the whole ticks covered
// by the task's fixed delay (for WAN-link hops, the link latency — the
// lookahead of the conservative protocol). The apply phase audits that no
// entry is ever applied past-due relative to the receiving shard's
// committed horizon; the property tests pin the audit.
type mailEntry struct {
	q   QueueAgent
	t   *queueing.Task
	due simtime.Tick
}

// shardBuf collects the activation/invalidation side effects a shard's
// worker produces while applying its mailbox, so the global active, dirty
// and drain sets are only touched by the deterministic sequential merge.
// mailApplied/mailMinSlack accumulate the shard's mailbox-safety audit
// (entries applied; minimum due-minus-horizon slack in ticks). The
// trailing pad keeps adjacent shards' buffers off one cache line.
type shardBuf struct {
	activated    []AgentID
	dirty        []AgentID
	drain        []AgentID
	liveDelta    int
	mailApplied  uint64
	mailMinSlack simtime.Tick
	_            [64]byte
}

// shardState is the sharded-runtime extension of a Simulation: the shard
// map, per-shard mailboxes and scratch, and the per-shard RNG seeds. It
// exists only when the configured engine is a ShardRunner, the bulk-dense
// loop is enabled and Config.NoShards is off.
type shardState struct {
	runner ShardRunner
	n      int
	// seeds[w] = DeriveSeed(Config.Seed, w): an independent stream root
	// per shard, for shard-resident stochastic components. The stock
	// cascade machinery draws all randomness in the sequential residue
	// (that is what keeps results bit-identical across shard counts), so
	// these streams are reserved capacity, exposed via ShardSeed.
	seeds []uint64
	// shardOf maps AgentID to owning shard; agents beyond its length (or
	// an unconfigured map) fall back to ID modulo n. Any assignment is
	// bit-identical — ownership only decides which worker executes an
	// agent's arithmetic — so the fallback is a correctness-neutral
	// default and topology.PartitionByDC a locality optimization.
	shardOf []int32

	// deferring routes flow-router enqueues into the mailboxes (drain
	// phase only); applying routes activate/invalidate into the per-shard
	// buffers (mailbox application only); inSpan routes the activation,
	// invalidation, sync and flow hooks onto the shard lanes (stretched
	// spans only). The three phases are mutually exclusive.
	deferring bool
	applying  bool
	inSpan    bool

	// stretch enables Chandy-Misra window stretching (Config.NoStretch
	// off): between global barriers each shard may run many consecutive
	// calendar windows on its own lane, bounded by the next collector
	// boundary, the run end and the earliest global-source due tick.
	stretch bool
	// dcLane maps each data-center name to its owning shard — the routing
	// table lane-confined flows and sources resolve through. Installed by
	// SetDCShards from the topology partition; spans never form while it
	// is empty.
	dcLane map[string]int
	// lanes is the per-shard span execution state; shardWindows counts the
	// lane windows each shard ran inside spans; committed[w] is the tick
	// shard w's agents are known to be advanced through at the last global
	// synchronization — the safe horizon the mailbox audit checks against.
	lanes        []laneState
	shardWindows []uint64
	committed    []simtime.Tick

	mail [][]mailEntry
	bufs []shardBuf
	inv  [][]Agent   // involved-sweep partition scratch
	pre  [][]AgentID // horizon-precompute partition scratch

	// Per-phase worker functions, bound once so the RunShards calls a
	// window (or span) makes allocate no closures.
	sweepFn func(int)
	applyFn func(int)
	preFn   func(int)
	spanFn  func(int)
}

func newShardState(s *Simulation, runner ShardRunner, seed uint64) *shardState {
	n := runner.ShardCount()
	st := &shardState{
		runner:       runner,
		n:            n,
		seeds:        make([]uint64, n),
		shardWindows: make([]uint64, n),
		committed:    make([]simtime.Tick, n),
		mail:         make([][]mailEntry, n),
		bufs:         make([]shardBuf, n),
		inv:          make([][]Agent, n),
		pre:          make([][]AgentID, n),
	}
	for w := 0; w < n; w++ {
		st.seeds[w] = DeriveSeed(seed, uint64(w))
		st.bufs[w].mailMinSlack = neverTick
	}
	st.sweepFn = func(w int) {
		for _, a := range st.inv[w] {
			s.advanceFn(a)
		}
	}
	st.applyFn = func(w int) {
		box := st.mail[w]
		horizon := st.committed[w]
		b := &st.bufs[w]
		for i := range box {
			e := &box[i]
			// Conservative-synchronization audit: an entry applied with a
			// due tick behind the receiver's committed horizon would mean
			// the message should already have influenced state the shard
			// advanced past — a protocol violation, never a recoverable
			// condition.
			if e.due < horizon {
				panic(fmt.Sprintf("core: shard %d mailbox entry due at tick %d applied past the committed horizon %d",
					w, e.due, horizon))
			}
			if slack := e.due - horizon; slack < b.mailMinSlack {
				b.mailMinSlack = slack
			}
			b.mailApplied++
			s.syncAgent(e.q.ID())
			e.q.Enqueue(e.t)
			e.q.Base().MarkActive()
			box[i] = mailEntry{}
		}
		st.mail[w] = box[:0]
	}
	st.preFn = func(w int) {
		for _, id := range st.pre[w] {
			s.agentHorizon(s.agents[id], s.agentTick[id])
		}
	}
	st.spanFn = func(w int) {
		ln := &st.lanes[w]
		for ln.tick < ln.spanEnd {
			s.laneWindow(ln)
		}
	}
	return st
}

// shard returns the owning shard of an agent.
func (st *shardState) shard(id AgentID) int32 {
	if int(id) < len(st.shardOf) {
		return st.shardOf[id]
	}
	return int32(int(id) % st.n)
}

// post buffers a drain-phase enqueue into the target agent's shard
// mailbox. The sequential drain is the only writer, so entries land in
// global drain order — each mailbox preserves the relative order of
// enqueues onto any one queue, which is the arrival-order contract FCFS,
// PS and delay-line queues key their determinism on. The due stamp is the
// posting tick plus the task's fixed delay in whole ticks: for a WAN-link
// hop that delay is the link latency, so a cross-shard message carries the
// WAN lookahead as its safety margin over the receiver's horizon.
func (st *shardState) post(s *Simulation, q QueueAgent, t *queueing.Task) {
	w := st.shard(q.ID())
	due := s.clock.Now()
	if t.Delay > 0 {
		due += s.clock.TicksIn(t.Delay)
	}
	st.mail[w] = append(st.mail[w], mailEntry{q: q, t: t, due: due})
}

// sweepInvolved advances the window's involved agents shard-locally:
// each worker replays exactly its own agents, in ascending ID order
// within the shard (the involved set arrives sorted). Per-agent
// arithmetic is identical to the engine-sweep path, so the result is
// bit-identical to any other execution order.
func (st *shardState) sweepInvolved(s *Simulation) {
	for w := range st.inv {
		st.inv[w] = st.inv[w][:0]
	}
	for _, a := range s.invAgents {
		w := st.shard(a.ID())
		st.inv[w] = append(st.inv[w], a)
	}
	st.runner.RunShards(st.sweepFn)
}

// applyMail drains every shard's mailbox concurrently — sync the target,
// enqueue, mark active, exactly the inline sequence the flow router
// deferred — then merges the buffered side effects into the global sets
// in ascending shard order. Within a shard, entries apply in mailbox
// (global drain) order; across shards the entries touch disjoint agents,
// so the merge order is observationally irrelevant and fixed anyway to
// keep runs reproducible under inspection.
func (st *shardState) applyMail(s *Simulation) {
	// The drain just ran at the current tick, so every shard's agents are
	// committed through it — the safe horizon the apply-phase audit checks
	// mailbox due stamps against.
	now := s.clock.Now()
	for w := range st.committed {
		if now > st.committed[w] {
			st.committed[w] = now
		}
	}
	total := 0
	for w := range st.mail {
		total += len(st.mail[w])
	}
	if total == 0 {
		return
	}
	st.applying = true
	st.runner.RunShards(st.applyFn)
	st.applying = false
	for w := range st.bufs {
		b := &st.bufs[w]
		s.liveActive += b.liveDelta
		b.liveDelta = 0
		for _, id := range b.activated {
			if n := len(s.active); n > 0 && id < s.active[n-1] {
				s.activeSorted = false
			}
			s.active = append(s.active, id)
			s.sweepStale = true
		}
		b.activated = b.activated[:0]
		s.dirty = append(s.dirty, b.dirty...)
		b.dirty = b.dirty[:0]
		s.drainPend = append(s.drainPend, b.drain...)
		b.drain = b.drain[:0]
	}
}

// activateLocal is the applying-phase form of Simulation.activate: the
// same bookkeeping, buffered into the owning shard instead of written to
// the global sets. agentTick and the AgentBase flags are per-agent state
// owned by exactly one shard, so the direct writes are race-free.
func (st *shardState) activateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.liveDelta++
	s.agentTick[id] = s.clock.Now()
	ab := s.agents[id].Base()
	if ab.listed {
		return // tombstone revived in place, same as the global path
	}
	ab.listed = true
	b.activated = append(b.activated, id)
}

// invalidateLocal is the applying-phase form of Simulation.invalidate.
func (st *shardState) invalidateLocal(s *Simulation, id AgentID) {
	b := &st.bufs[st.shard(id)]
	b.dirty = append(b.dirty, id)
	s.hMemoTick[id] = hMemoUnset
	if ab := s.agents[id].Base(); !ab.pendDrain {
		ab.pendDrain = true
		b.drain = append(b.drain, id)
	}
}

// precomputeHorizons warms the horizon memo for the dirty set
// shard-locally, so the sequential rekey that follows reads memoized
// values instead of paying every Horizon call on one core. Skipping an
// agent is always safe — rekeyDirty recomputes on a memo miss — so the
// filter mirrors rekey's own active check without having to be exact.
func (st *shardState) precomputeHorizons(s *Simulation) {
	if len(s.dirty) < st.n {
		return
	}
	for w := range st.pre {
		st.pre[w] = st.pre[w][:0]
	}
	for _, id := range s.dirty {
		if !s.agents[id].Base().active {
			continue
		}
		w := st.shard(id)
		st.pre[w] = append(st.pre[w], id)
	}
	st.runner.RunShards(st.preFn)
}

// laneState is one shard's private slice of the simulation during a
// stretched span: its own clock position, event calendar, active/pinned
// sets, drain sets, source schedule view, flow bookkeeping and response
// buffer. A span partitions the corresponding global structures into the
// lanes at the entry barrier, lets every lane run the standard bulk-dense
// window loop privately — same jump sizing, same phase order, same
// per-agent arithmetic, so results are bit-identical — and merges the
// lanes back in ascending shard order at the exit barrier. Everything a
// lane touches between barriers is owned by exactly one shard: its agents
// (per the shard assignment), its DC's flows (Local cascades only), its
// DC-confined sources, gauges interned per DC, and per-agent memo slots.
// The trailing pad keeps adjacent lanes off one cache line.
type laneState struct {
	tick    simtime.Tick // the lane's local clock
	spanEnd simtime.Tick // the span's exit barrier tick
	limit   simtime.Tick // the run-level limit (full-sync detection)

	cal       calendar
	active    []AgentID
	pinned    []AgentID
	dirty     []AgentID
	drainPend []AgentID
	drainSpare []AgentID
	invIDs    []AgentID

	// srcIdx indexes the lane's confined sources in s.sources/s.srcDue;
	// srcMin caches their minimum due tick, mirroring Simulation.srcMin.
	srcIdx []int
	srcMin simtime.Tick

	// Per-span deltas merged into the global counters at the exit barrier.
	liveDelta int
	flowDelta int
	completed uint64
	jumps     uint64
	skipped   uint64
	windows   uint64

	// Lane-local flow machinery: response buffer, token pool and ID
	// counters, so in-span launches never touch the shared ones.
	resp       *metrics.Responses
	tokenPool  []*token
	nextFlowID uint64
	nextTaskID uint64

	_ [64]byte
}

// newToken / freeToken are the lane-local forms of the Simulation token
// pool (flow.go): spans recycle message tokens per lane.
func (ln *laneState) newToken() *token {
	if n := len(ln.tokenPool); n > 0 {
		tok := ln.tokenPool[n-1]
		ln.tokenPool[n-1] = nil
		ln.tokenPool = ln.tokenPool[:n-1]
		return tok
	}
	return &token{}
}

func (ln *laneState) freeToken(tok *token) {
	*tok = token{}
	ln.tokenPool = append(ln.tokenPool, tok)
}

// trySpan decides whether the next window can instead run as a stretched
// span and, if so, executes it. The preconditions are exactly the cases
// where per-lane execution is provably equivalent to the barriered loop:
//
//   - a DC-to-shard routing table is installed (SetDCShards) — without it
//     nothing can be lane-confined;
//   - no cross-shard flow is in flight (crossFlows == 0): every live flow
//     is Local with no completion callback, so all of its remaining work
//     stays inside one shard;
//   - no agent registration is pending (rebind);
//   - no global source — a source not registered lane-confined, or
//     confined to an unmapped DC — comes due before the span would end.
//
// The span bound S is the earliest of: the run limit, the next collector
// boundary, and the earliest global-source due tick. Spans must cover at
// least two ticks to beat the classic window; otherwise the caller falls
// back to the barriered path.
func (s *Simulation) trySpan(limit simtime.Tick) bool {
	sh := s.sh
	if len(sh.dcLane) == 0 || s.crossFlows != 0 || s.rebind {
		return false
	}
	now := s.clock.Now()
	S := limit
	if b := now + s.collectEvery - now%s.collectEvery; b < S {
		S = b
	}
	for i, dc := range s.srcDC {
		if dc != "" {
			if _, ok := sh.dcLane[dc]; ok {
				continue // lane-confined: polled inside its lane
			}
		}
		if s.srcDue[i] < S {
			S = s.srcDue[i]
		}
	}
	if S <= now+1 {
		return false
	}
	s.runSpan(S, limit)
	return true
}

// runSpan executes one stretched span [T, S): partition the global loop
// state into per-shard lanes, run every lane's window loop concurrently up
// to S, and merge the lanes back — the only global barrier the covered
// windows pay. The global clock is parked at T while lanes run (each lane
// carries its own tick) and commits to S at the exit barrier.
func (s *Simulation) runSpan(S, limit simtime.Tick) {
	sh := s.sh
	T := s.clock.Now()

	// Settle global state sequentially before partitioning: fold pending
	// invalidations into the calendar, drop active-set tombstones and
	// restore ascending order (lane active lists inherit sortedness).
	s.rekeyDirty()
	s.compactActive()

	// Partition. Lane calendars index the full agent population (cheap:
	// the pos slices persist across spans); entries, active IDs, drain
	// membership and pinned agents deal out by shard ownership.
	if sh.lanes == nil {
		sh.lanes = make([]laneState, sh.n)
		for w := range sh.lanes {
			ln := &sh.lanes[w]
			ln.resp = metrics.NewResponses()
			// Lane task/flow IDs live in a per-shard band so they never
			// collide with the sequential counters; IDs are bookkeeping
			// only (queueing is arrival-ordered), so the band choice is
			// behaviorally inert.
			ln.nextFlowID = uint64(w+1) << 48
			ln.nextTaskID = uint64(w+1) << 48
		}
	}
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		ln.tick = T
		ln.spanEnd = S
		ln.limit = limit
		ln.cal.grow(len(s.agents))
		ln.active = ln.active[:0]
		ln.pinned = ln.pinned[:0]
		ln.srcIdx = ln.srcIdx[:0]
		ln.liveDelta = 0
		ln.flowDelta = 0
		ln.completed = 0
		ln.jumps = 0
		ln.skipped = 0
		ln.windows = 0
	}
	for _, id := range s.active {
		ln := &sh.lanes[sh.shard(id)]
		ln.active = append(ln.active, id)
	}
	s.active = s.active[:0]
	for _, e := range s.cal.entries {
		sh.lanes[sh.shard(e.id)].cal.set(e.id, e.key)
	}
	s.cal.clear()
	for _, id := range s.drainPend {
		sh.lanes[sh.shard(id)].drainPend = append(sh.lanes[sh.shard(id)].drainPend, id)
	}
	s.drainPend = s.drainPend[:0]
	for _, id := range s.pinnedIDs {
		sh.lanes[sh.shard(id)].pinned = append(sh.lanes[sh.shard(id)].pinned, id)
	}
	for i, dc := range s.srcDC {
		if dc == "" {
			continue
		}
		if w, ok := sh.dcLane[dc]; ok {
			sh.lanes[w].srcIdx = append(sh.lanes[w].srcIdx, i)
		}
	}
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		min := neverTick
		for _, i := range ln.srcIdx {
			if s.srcDue[i] < min {
				min = s.srcDue[i]
			}
		}
		ln.srcMin = min
	}

	// Run the lanes. Each executes the standard window loop privately up
	// to S; RunShards is the span's only barrier.
	sh.inSpan = true
	sh.runner.RunShards(sh.spanFn)
	sh.inSpan = false

	// Merge in ascending shard order — deterministic, and observationally
	// order-free anyway: lanes touch disjoint agents, flows and series.
	for w := range sh.lanes {
		ln := &sh.lanes[w]
		s.liveActive += ln.liveDelta
		s.active = append(s.active, ln.active...)
		for _, e := range ln.cal.entries {
			s.cal.set(e.id, e.key)
		}
		ln.cal.clear()
		s.drainPend = append(s.drainPend, ln.drainPend...)
		ln.drainPend = ln.drainPend[:0]
		s.activeFlows += ln.flowDelta
		s.completedOps += ln.completed
		s.jumps += ln.jumps
		s.skipped += ln.skipped
		s.stretched += ln.windows
		sh.shardWindows[w] += ln.windows
		ln.resp.MergeInto(s.Responses)
		if S > sh.committed[w] {
			sh.committed[w] = S
		}
	}
	s.activeSorted = false
	s.sweepStale = true
	min := neverTick
	for _, due := range s.srcDue {
		if due < min {
			min = due
		}
	}
	s.srcMin = min

	s.clock.AdvanceBy(S - T)
	s.barriers++
	if S%s.collectEvery == 0 {
		s.Collector.Snapshot(s.clock.NowSeconds())
	}
}

// laneWindow runs one bulk-dense window on a single lane — a faithful
// per-shard transcription of Simulation.tickBulk, with the lane's tick,
// calendar, sets and counters standing in for the global ones. Keeping the
// phase order and the arithmetic identical is what makes a stretched span
// bit-identical to the barriered windows it replaces: a lane window's
// operations are the global window's operations restricted to one shard's
// agents, and operations on different shards' agents commute (disjoint
// per-agent state, per-DC round-robin/RNG/gauges, disjoint response keys).
func (s *Simulation) laneWindow(ln *laneState) {
	nowSec := s.clock.SecondsAt(ln.tick)

	// Phase 0: the lane's confined sources inject work.
	if ln.srcMin <= ln.tick {
		for _, i := range ln.srcIdx {
			if s.srcDue[i] <= ln.tick {
				s.sources[i].Poll(s, nowSec)
				s.srcDue[i] = s.srcDueTick(s.sources[i].NextPoll(nowSec), ln.tick)
			}
		}
		min := neverTick
		for _, i := range ln.srcIdx {
			if s.srcDue[i] < min {
				min = s.srcDue[i]
			}
		}
		ln.srcMin = min
	}

	s.laneRekey(ln)

	// Jump sizing — quietTicksCal against the lane's calendar and source
	// schedule, additionally capped at the span end.
	jump := simtime.Tick(1)
	if s.fastForward && ln.spanEnd > ln.tick+1 {
		max := ln.spanEnd - ln.tick
		if b := s.collectEvery - ln.tick%s.collectEvery; b < max {
			max = b
		}
		if max > 1 {
			if ln.srcMin != neverTick {
				if k := ln.srcMin - ln.tick; k < max {
					max = k
				}
			}
			if h := ln.cal.minKey(); h != neverTick {
				if k := h - 1 - ln.tick; k < max {
					max = k
				}
			}
		}
		if max > 1 {
			jump = max
		}
	}
	landing := ln.tick + jump

	// The involved set: due calendar entries plus the lane's pinned
	// agents; laneRekey just ran, so the dirty flag is the dedup gate.
	ln.invIDs = ln.invIDs[:0]
	for ln.cal.len() > 0 && ln.cal.minKey() <= landing {
		id := ln.cal.popMin()
		b := s.agents[id].Base()
		b.dirty = true
		ln.dirty = append(ln.dirty, id)
		if !b.pendDrain {
			b.pendDrain = true
			ln.drainPend = append(ln.drainPend, id)
		}
		ln.invIDs = append(ln.invIDs, id)
	}
	for _, id := range ln.pinned {
		b := s.agents[id].Base()
		if !b.dirty {
			b.dirty = true
			ln.dirty = append(ln.dirty, id)
			ln.invIDs = append(ln.invIDs, id)
		}
		if !b.pendDrain {
			b.pendDrain = true
			ln.drainPend = append(ln.drainPend, id)
		}
	}

	fullSync := landing%s.collectEvery == 0 || landing == ln.limit
	if fullSync {
		s.laneCompact(ln)
		ln.invIDs = append(ln.invIDs[:0], ln.active...)
	} else if len(ln.invIDs) > 1 {
		slices.Sort(ln.invIDs)
	}

	// Phase 1: advance the involved agents through the window, inline —
	// the per-agent arithmetic of advanceInvolved without the global
	// advanceTo rendezvous (each lane has its own landing).
	for _, id := range ln.invIDs {
		if n := landing - s.agentTick[id]; n > 0 {
			base := s.agentTick[id]
			s.agentTick[id] = landing
			s.advanceAgent(s.agents[id], base, n)
		}
	}
	if jump > 1 {
		ln.jumps++
		ln.skipped += uint64(jump - 1)
	}
	ln.tick = landing

	// Phase 3: calendar-driven drain in ascending agent-ID order. Enqueues
	// stay inside the lane (Local flows only), so no mailbox deferral.
	pend := ln.drainPend
	ln.drainPend = ln.drainSpare[:0]
	if len(pend) > 1 {
		slices.Sort(pend)
	}
	for _, id := range pend {
		s.agents[id].Base().pendDrain = false
		s.agents[id].Drain(s.drainFn)
	}
	ln.drainSpare = pend[:0]

	// Deactivation: involved agents that went idle tombstone in place.
	for _, id := range ln.invIDs {
		a := s.agents[id]
		b := a.Base()
		if b.active && !b.pinned && a.Idle() {
			b.active = false
			ln.liveDelta--
			ln.cal.remove(id)
		}
	}

	s.laneRekey(ln)
	ln.windows++
}

// laneRekey is rekeyDirty restricted to a lane: recompute the calendar
// entry of every agent the lane invalidated, keyed at the agent's own
// stepped-through tick.
func (s *Simulation) laneRekey(ln *laneState) {
	if len(ln.dirty) == 0 {
		return
	}
	for _, id := range ln.dirty {
		a := s.agents[id]
		b := a.Base()
		b.dirty = false
		if !b.active {
			ln.cal.remove(id)
			continue
		}
		base := s.agentTick[id]
		ln.cal.set(id, s.agentKey(s.agentHorizon(a, base), base))
	}
	ln.dirty = ln.dirty[:0]
}

// laneCompact is compactActive restricted to a lane: drop tombstones and
// restore ascending ID order before a full-sync window serves the whole
// lane-active set.
func (s *Simulation) laneCompact(ln *laneState) {
	kept := ln.active[:0]
	for _, id := range ln.active {
		b := s.agents[id].Base()
		if b.active {
			kept = append(kept, id)
		} else {
			b.listed = false
		}
	}
	ln.active = kept
	slices.Sort(ln.active)
}

// SetDCShards installs the data-center-to-shard routing table (normally
// topology.ShardPlan.DCShard) that lets the stretched-span scheduler
// resolve lane-confined flows and sources to their owning shard. Without
// it spans never form and the loop barriers every window. It is a no-op
// when the sharded runtime is not engaged.
func (s *Simulation) SetDCShards(m map[string]int) {
	if s.sh == nil {
		return
	}
	t := make(map[string]int, len(m))
	for dc, w := range m {
		if w < 0 || w >= s.sh.n {
			panic(fmt.Sprintf("core: data center %q assigned to shard %d, have %d shards", dc, w, s.sh.n))
		}
		t[dc] = w
	}
	s.sh.dcLane = t
}

// Sharded reports the shard count when the sharded runtime is engaged
// (ShardRunner engine, bulk-dense loop on, Config.NoShards off).
func (s *Simulation) Sharded() (int, bool) {
	if s.sh == nil {
		return 0, false
	}
	return s.sh.n, true
}

// ShardSeed returns the derived RNG stream root of one shard
// (DeriveSeed(Config.Seed, shard)) — the seed shard-resident stochastic
// components draw from so their streams are independent of the
// sequential simulation RNG and of every other shard.
func (s *Simulation) ShardSeed(shard int) uint64 {
	if s.sh == nil || shard < 0 || shard >= s.sh.n {
		panic(fmt.Sprintf("core: shard %d out of range", shard))
	}
	return s.sh.seeds[shard]
}

// SetShardAssignment installs the AgentID-to-shard map, normally the
// per-datacenter partition from topology.PartitionByDC. Agents beyond the
// slice (registered later) fall back to ID modulo the shard count. The
// assignment affects locality only, never results; it is a no-op when the
// sharded runtime is not engaged.
func (s *Simulation) SetShardAssignment(assign []int32) {
	if s.sh == nil {
		return
	}
	for i, w := range assign {
		if w < 0 || int(w) >= s.sh.n {
			panic(fmt.Sprintf("core: agent %d assigned to shard %d, have %d shards", i, w, s.sh.n))
		}
	}
	s.sh.shardOf = append(s.sh.shardOf[:0], assign...)
}

// AgentCount reports the registered agent population, sizing external
// per-agent tables such as shard assignments.
func (s *Simulation) AgentCount() int { return len(s.agents) }
