package apps

import "repro/internal/cascade"

// VISFileMB is the payload moved by VIS OPEN/SAVE — §6.3.2: "the volume of
// the data manipulated during file opening and saving is considerably
// smaller" than CAD.
const VISFileMB = 250

// VISOps returns the Visualization application: the same eight operations
// as CAD (§6.3.2) with lighter payloads and lighter server work —
// visualization serves derived, pre-tessellated models.
func VISOps() []cascade.Op {
	ops := CADOps(VISFileMB)
	out := make([]cascade.Op, len(ops))
	for i, op := range ops {
		scaled := op.Scale(op.Name, 1) // deep copy
		for si := range scaled.Steps {
			for mi := range scaled.Steps[si] {
				c := &scaled.Steps[si][mi].Cost
				c.CPUCycles *= 0.5
				c.MemBytes *= 0.5
				c.NetBytes *= 0.5
			}
		}
		out[i] = scaled
	}
	return out
}

// pdmMsg builds the repeated app<->db transaction block of PDM operations.
func pdmRoundTrips(name string, trips int, dbSec, appSec float64, rowBytes float64, diskMB float64) cascade.Op {
	op := cascade.Op{Name: name}
	op.Steps = append(op.Steps,
		[]cascade.Msg{msg(eC, eApp, cascade.R{CPUCycles: cyc(appSec), NetBytes: 20e3, MemBytes: 50 * mb})},
	)
	for i := 0; i < trips; i++ {
		op.Steps = append(op.Steps,
			[]cascade.Msg{msg(eApp, eDB, cascade.R{CPUCycles: cyc(dbSec), NetBytes: 15e3, DiskBytes: diskMB * mb})},
			[]cascade.Msg{msg(eDB, eApp, cascade.R{CPUCycles: cyc(appSec / 2), NetBytes: rowBytes})},
		)
	}
	op.Steps = append(op.Steps,
		[]cascade.Msg{msg(eApp, eC, cascade.R{NetBytes: 120e3, CPUCycles: cyc(0.4)})},
	)
	return op
}

// PDMOps returns the Product Data Management application (§6.3.2):
// database-transaction sequences between clients, the application tier and
// the database tier — "long sequences of interactions between clients C and
// Tdb via Tapp. No other tiers are involved" (§6.4.2).
func PDMOps() []cascade.Op {
	return []cascade.Op{
		pdmRoundTrips("BILL-OF-MATERIALS", 6, 0.5, 0.3, 150e3, 10),
		pdmRoundTrips("EXPAND", 4, 0.35, 0.25, 100e3, 5),
		pdmRoundTrips("PROMOTE", 3, 0.6, 0.3, 100e3, 15),
		pdmRoundTrips("UPDATE", 2, 0.5, 0.25, 80e3, 12),
		pdmRoundTrips("EDIT", 2, 0.4, 0.3, 120e3, 8),
		// DOWNLOAD and EXPORT move report payloads to the client.
		cascade.Seq("DOWNLOAD",
			msg(eC, eApp, cascade.R{CPUCycles: cyc(0.5), NetBytes: 20e3}),
			msg(eApp, eDB, cascade.R{CPUCycles: cyc(0.8), NetBytes: 15e3, DiskBytes: 60 * mb}),
			msg(eDB, eApp, cascade.R{CPUCycles: cyc(0.4), NetBytes: 3 * mb}),
			msg(eApp, eC, cascade.R{NetBytes: 3 * mb}),
		),
		cascade.Seq("EXPORT",
			msg(eC, eApp, cascade.R{CPUCycles: cyc(0.8), NetBytes: 20e3, MemBytes: 200 * mb}),
			msg(eApp, eDB, cascade.R{CPUCycles: cyc(1.2), NetBytes: 15e3, DiskBytes: 100 * mb}),
			msg(eDB, eApp, cascade.R{CPUCycles: cyc(0.8), NetBytes: 5 * mb}),
			msg(eApp, eC, cascade.R{NetBytes: 5 * mb, CPUCycles: cyc(1.0)}),
		),
	}
}
