package apps

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/refdata"
	"repro/internal/topology"
	"repro/internal/workload"
)

// CalibratedCADSeries builds the Light/Average/Heavy validation series
// (§5.2.2) on the given infrastructure, calibrating every operation's
// client-side work so its isolated duration matches Table 5.1. Returned
// series carry the published names; per-series operation names are suffixed
// with the series tag so response populations stay separable (the paper
// reports timings "by type and series").
func CalibratedCADSeries(inf *topology.Infrastructure, local, master *topology.DataCenter,
	step float64) (map[refdata.SeriesType]workload.Series, error) {

	out := make(map[refdata.SeriesType]workload.Series, len(refdata.SeriesTypes))
	for _, st := range refdata.SeriesTypes {
		ops := CADOpsBySeries(st)
		series := workload.Series{Name: string(st)}
		for i, op := range ops {
			target, ok := refdata.Table51Durations[st][op.Name]
			if !ok {
				return nil, fmt.Errorf("apps: no Table 5.1 target for %s", op.Name)
			}
			calibrated, err := cascade.CalibrateClientWork(op,
				cascade.NewBinding(inf, local, master), step, target)
			if err != nil {
				return nil, fmt.Errorf("apps: calibrating %s/%s: %w", st, op.Name, err)
			}
			calibrated.Name = op.Name + " [" + string(st) + "]"
			series.Ops = append(series.Ops, calibrated)
			_ = i
		}
		out[st] = series
	}
	return out, nil
}

// CalibratedCADOps builds a single calibrated CAD operation set against
// the Average-series targets, used by the Chapter 6-7 case studies where
// clients manipulate average-sized models.
func CalibratedCADOps(inf *topology.Infrastructure, local, master *topology.DataCenter,
	step float64) ([]cascade.Op, error) {

	ops := CADOpsBySeries(refdata.Average)
	out := make([]cascade.Op, 0, len(ops))
	for _, op := range ops {
		target := refdata.Table51Durations[refdata.Average][op.Name]
		calibrated, err := cascade.CalibrateClientWork(op,
			cascade.NewBinding(inf, local, master), step, target)
		if err != nil {
			return nil, fmt.Errorf("apps: calibrating %s: %w", op.Name, err)
		}
		out = append(out, calibrated)
	}
	return out, nil
}
