package apps

import (
	"math"
	"testing"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/refdata"
	"repro/internal/topology"
)

// validationLikeInfra mirrors the Chapter 5 downscaled lab: 4-core app, db,
// fs and idx tiers at 2.5 GHz, SAN-backed db and fs, 10G LAN, 1G clients.
func validationLikeInfra(t *testing.T) (*core.Simulation, *topology.Infrastructure) {
	t.Helper()
	raid := &hardware.RAIDSpec{
		Disks: 4, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
		CtrlGbps: 4, HitRate: 0,
	}
	san := &hardware.SANSpec{
		Disks: 20, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
		FCSwitchGbps: 8, CtrlGbps: 8, FCALGbps: 8, HitRate: 0,
	}
	mkSrv := func(cores int, memGB float64, withRAID bool) topology.ServerSpec {
		s := topology.ServerSpec{
			CPU:     hardware.CPUSpec{Sockets: 1, Cores: cores, GHz: ServerGHz},
			MemGB:   memGB,
			NICGbps: 10,
		}
		if withRAID {
			s.RAID = raid
		}
		return s
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	sanLink := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{{
			Name: "NA", SwitchGbps: 20,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 2, Server: mkSrv(16, 32, true), LocalLink: local},
				{Name: "db", Servers: 1, Server: mkSrv(32, 32, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				{Name: "fs", Servers: 1, Server: mkSrv(16, 16, false), LocalLink: local, SAN: san, SANLink: &sanLink},
				{Name: "idx", Servers: 1, Server: mkSrv(16, 16, true), LocalLink: local},
			},
		}},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 64, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.005, Seed: 2, CollectEvery: 200})
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func TestCADOpsOrderAndValidity(t *testing.T) {
	ops := CADOps(2000)
	if len(ops) != len(refdata.CADOperations) {
		t.Fatalf("op count = %d", len(ops))
	}
	for i, op := range ops {
		if op.Name != refdata.CADOperations[i] {
			t.Errorf("op %d = %s, want %s", i, op.Name, refdata.CADOperations[i])
		}
		if err := op.Validate(); err != nil {
			t.Errorf("op %s invalid: %v", op.Name, err)
		}
	}
}

// TestCADTierBudgets pins the server-side CPU budgets that reproduce the
// Table 5.2 utilizations (see the package comment's derivation).
func TestCADTierBudgets(t *testing.T) {
	totals := map[cascade.Role]float64{}
	for _, op := range CADOps(2000) {
		for role, c := range op.CostToTier() {
			totals[role] += c.CPUCycles / (ServerGHz * 1e9)
		}
	}
	want := map[cascade.Role]float64{
		cascade.App: 165.28,
		cascade.DB:  113.60,
		cascade.FS:  57.60,
		cascade.Idx: 33.68,
	}
	for role, budget := range want {
		if got := totals[role]; math.Abs(got-budget) > 0.2 {
			t.Errorf("per-series %s CPU = %.2f core-s, want %.2f", role, got, budget)
		}
	}
}

// TestCADRoundTripShape checks the client<->master crossing counts that
// drive the Table 6.2 latency penalties: metadata-chatty operations cross
// many times, payload operations barely.
func TestCADRoundTripShape(t *testing.T) {
	trips := map[string]int{}
	for _, op := range CADOps(2000) {
		trips[op.Name] = op.RoundTrips()
	}
	if trips["EXPLORE"] <= trips["LOGIN"] {
		t.Errorf("EXPLORE trips (%d) should exceed LOGIN (%d)", trips["EXPLORE"], trips["LOGIN"])
	}
	if trips["SPATIAL-SEARCH"] <= trips["TEXT-SEARCH"] {
		t.Error("SPATIAL-SEARCH should be chattier than TEXT-SEARCH")
	}
	// OPEN/SAVE only cross for the token/grant; the payload stays local.
	if trips["OPEN"] > 4 || trips["SAVE"] > 6 {
		t.Errorf("payload ops too chatty: OPEN=%d SAVE=%d", trips["OPEN"], trips["SAVE"])
	}
}

func TestFileSizesGrowAcrossSeries(t *testing.T) {
	if !(FileSizeMB[refdata.Light] < FileSizeMB[refdata.Average] &&
		FileSizeMB[refdata.Average] < FileSizeMB[refdata.Heavy]) {
		t.Error("file sizes not increasing Light < Average < Heavy")
	}
	light := CADOpsBySeries(refdata.Light)
	heavy := CADOpsBySeries(refdata.Heavy)
	if light[6].TotalCost().NetBytes >= heavy[6].TotalCost().NetBytes {
		t.Error("heavy OPEN should move more bytes than light OPEN")
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown series type did not panic")
		}
	}()
	CADOpsBySeries("Gigantic")
}

func TestCalibratedCADSeriesMatchesTable51(t *testing.T) {
	sim, inf := validationLikeInfra(t)
	na := inf.DC("NA")
	series, err := CalibratedCADSeries(inf, na, na, sim.Clock().Step())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range refdata.SeriesTypes {
		s := series[st]
		if len(s.Ops) != 8 {
			t.Fatalf("%s series has %d ops", st, len(s.Ops))
		}
		for i, op := range s.Ops {
			target := refdata.Table51Durations[st][refdata.CADOperations[i]]
			est, err := cascade.Estimate(op, cascade.NewBinding(inf, na, na), sim.Clock().Step())
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(est-target) / target; rel > 0.06 {
				t.Errorf("%s %s isolated estimate %.2fs vs Table 5.1 %.2fs (%.1f%%)",
					st, op.Name, est, target, rel*100)
			}
		}
	}
}

// TestCalibratedOpenSimulates runs one calibrated OPEN through the
// simulator and checks the end-to-end duration against Table 5.1.
func TestCalibratedOpenSimulates(t *testing.T) {
	sim, inf := validationLikeInfra(t)
	na := inf.DC("NA")
	series, err := CalibratedCADSeries(inf, na, na, sim.Clock().Step())
	if err != nil {
		t.Fatal(err)
	}
	open := series[refdata.Average].Ops[6]
	b := cascade.NewBinding(inf, na, na)
	run, err := cascade.Instantiate(open, b)
	if err != nil {
		t.Fatal(err)
	}
	launched := false
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {
		if !launched {
			launched = true
			s.StartOp(run)
		}
	}))
	if err := sim.RunUntilIdle(200); err != nil {
		t.Fatal(err)
	}
	got, _ := sim.Responses.MeanAll(open.Name, "NA")
	want := refdata.Table51Durations[refdata.Average]["OPEN"]
	if rel := math.Abs(got-want) / want; rel > 0.08 {
		t.Errorf("simulated OPEN = %.2fs, Table 5.1 = %.2fs (%.1f%%)", got, want, rel*100)
	}
}

func TestVISLighterThanCAD(t *testing.T) {
	visOps := VISOps()
	cadOps := CADOps(FileSizeMB[refdata.Average])
	if len(visOps) != len(cadOps) {
		t.Fatalf("VIS op count = %d", len(visOps))
	}
	for i := range visOps {
		if err := visOps[i].Validate(); err != nil {
			t.Errorf("VIS %s invalid: %v", visOps[i].Name, err)
		}
		v := visOps[i].TotalCost()
		c := cadOps[i].TotalCost()
		if v.CPUCycles >= c.CPUCycles {
			t.Errorf("VIS %s CPU (%v) not lighter than CAD (%v)", visOps[i].Name, v.CPUCycles, c.CPUCycles)
		}
		if v.NetBytes > c.NetBytes {
			t.Errorf("VIS %s moves more bytes than CAD", visOps[i].Name)
		}
	}
}

func TestPDMOpsAreDBHeavy(t *testing.T) {
	for _, op := range PDMOps() {
		if err := op.Validate(); err != nil {
			t.Fatalf("PDM %s invalid: %v", op.Name, err)
		}
		per := op.CostToTier()
		if per[cascade.FS].CPUCycles != 0 || per[cascade.Idx].CPUCycles != 0 {
			t.Errorf("PDM %s touches fs/idx tiers; §6.4.2 says only app and db", op.Name)
		}
		if per[cascade.DB].CPUCycles == 0 {
			t.Errorf("PDM %s has no database work", op.Name)
		}
	}
	if n := len(PDMOps()); n != 7 {
		t.Errorf("PDM op count = %d, want 7", n)
	}
}
