// Package apps defines the software applications of the case studies —
// Computer-Aided Design (CAD), Visualization (VIS) and Product Data
// Management (PDM) — as message cascades with canonical cost tables
// (Figs. 5-2..5-5, §6.3.2).
//
// # Cost calibration
//
// The thesis profiled canonical costs on the physical infrastructure and
// reported the resulting isolated durations (Table 5.1) and steady-state
// tier utilizations (Table 5.2). This package inverts that: server-side CPU
// budgets are chosen so the offered load reproduces Table 5.2, and the
// client-side remainder of each operation is calibrated so the isolated
// duration reproduces Table 5.1.
//
// Derivation of the tier budgets (experiment 2, series rate 1/12+1/29+1/48
// = 0.1386 series/s, target utilizations 71.6/49.2/49.9/29.2 % from Table
// 5.2, reconstructed tier sizes 32/32/16/16 cores):
//
//	app: 0.716*32/0.1386 = 165.28 core-s per series
//	db:  0.492*32/0.1386 = 113.60
//	fs:  0.499*16/0.1386 = 57.60
//	idx: 0.292*16/0.1386 = 33.68
//
// A single task occupies one core, so an operation could never burn 15
// core-seconds at a tier within a 5-second wall time through one message.
// The cascades of Figs. 5-2..5-5 carry x4/x10/x12 repetition marks: batches
// of messages issued in parallel. Fan-out steps of width 4 below reproduce
// that — they let the per-series tier demand exceed the series wall time
// while individual tasks stay sub-second, which also keeps queueing delay
// small below saturation (the "linear operation zone" of §5.2.4).
package apps

import (
	"fmt"

	"repro/internal/cascade"
	"repro/internal/refdata"
)

// ServerGHz is the core frequency used across all scenario servers; CPU
// budgets below are expressed in seconds at this frequency.
const ServerGHz = 2.5

// FanOut is the parallel batch width of fan-out steps (the x4 marks of
// Figs. 5-2..5-5).
const FanOut = 8

// cyc converts CPU-seconds at ServerGHz into a cycle demand.
func cyc(seconds float64) float64 { return seconds * ServerGHz * 1e9 }

// FileSizeMB gives the CAD model payload moved by OPEN and SAVE per series
// type, sized so the Table 5.1 OPEN/SAVE durations leave a plausible
// client-parse remainder after transfer and server costs.
var FileSizeMB = map[refdata.SeriesType]float64{
	refdata.Light:   700,
	refdata.Average: 2000,
	refdata.Heavy:   3200,
}

const mb = 1e6

// Endpoint shorthands for cascade construction.
var (
	eC   = cascade.End{Role: cascade.Client}
	eApp = cascade.End{Role: cascade.App, Site: cascade.SiteMaster}
	eDB  = cascade.End{Role: cascade.DB, Site: cascade.SiteMaster}
	eIdx = cascade.End{Role: cascade.Idx, Site: cascade.SiteMaster}
	eFS  = cascade.End{Role: cascade.FS, Site: cascade.SiteLocal}
)

func msg(from, to cascade.End, c cascade.R) cascade.Msg {
	return cascade.Msg{From: from, To: to, Cost: c}
}

// fan builds a parallel batch of FanOut identical messages.
func fan(from, to cascade.End, c cascade.R) []cascade.Msg {
	batch := make([]cascade.Msg, FanOut)
	for i := range batch {
		batch[i] = msg(from, to, c)
	}
	return batch
}

// fanChunks splits a heavy fan-out exchange into n sequential fan-out
// steps, dividing the whole cost array evenly. Total demand and wall time
// are unchanged; individual task sizes shrink, which keeps head-of-line
// blocking in the FCFS core queues small below saturation — large transfers
// and long computations are chunked in real middleware for the same reason.
func fanChunks(from, to cascade.End, c cascade.R, n int) [][]cascade.Msg {
	chunk := c.Scale(1 / float64(n))
	steps := make([][]cascade.Msg, n)
	for i := range steps {
		steps[i] = fan(from, to, chunk)
	}
	return steps
}

// single wraps one message as a step.
func single(from, to cascade.End, c cascade.R) []cascade.Msg {
	return []cascade.Msg{msg(from, to, c)}
}

// CADOps returns the eight CAD operations (§5.2.2) for a given payload
// size, in the canonical order of refdata.CADOperations. Per-operation
// tier budgets (core-seconds at ServerGHz, summing to the tier budgets in
// the package comment):
//
//	op              app    db    fs    idx
//	LOGIN           4.80   2.00   -     -
//	TEXT-SEARCH    15.20   3.20   -     -
//	FILTER          6.40   1.60   -     -
//	EXPLORE         8.00  10.00   -     -
//	SPATIAL-SEARCH  8.40   3.20   -   14.84
//	SELECT          6.00  10.20   -     -
//	OPEN           18.40  12.20 12.80   -
//	SAVE           15.44  14.40 16.00  2.00
func CADOps(fileMB float64) []cascade.Op {
	fileBytes := fileMB * mb
	stripe := fileBytes / FanOut

	login := cascade.Op{Name: "LOGIN", Steps: [][]cascade.Msg{
		fan(eC, eApp, cascade.R{CPUCycles: cyc(1.2), NetBytes: 8e3, MemBytes: 5 * mb}),
		fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.5), NetBytes: 10e3}),
		single(eDB, eApp, cascade.R{NetBytes: 50e3}),
		single(eApp, eC, cascade.R{NetBytes: 100e3}),
	}}

	textSearch := cascade.Op{Name: "TEXT-SEARCH"}
	// Query against the text index previously created by Tidx and hosted
	// by Tapp (§5.2.2), hence the app-side disk reads.
	textSearch.Steps = append(textSearch.Steps,
		fanChunks(eC, eApp, cascade.R{CPUCycles: cyc(1.9), NetBytes: 5e3, MemBytes: 50 * mb, DiskBytes: 8 * mb}, 2)...)
	textSearch.Steps = append(textSearch.Steps,
		fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.8), NetBytes: 10e3}))
	textSearch.Steps = append(textSearch.Steps,
		fanChunks(eDB, eApp, cascade.R{CPUCycles: cyc(1.9), NetBytes: 100e3}, 2)...)
	textSearch.Steps = append(textSearch.Steps,
		single(eApp, eC, cascade.R{NetBytes: 150e3}))

	filter := cascade.Op{Name: "FILTER", Steps: [][]cascade.Msg{
		fan(eC, eApp, cascade.R{CPUCycles: cyc(0.8), NetBytes: 5e3, MemBytes: 25 * mb}),
		fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.4), NetBytes: 10e3}),
		fan(eDB, eApp, cascade.R{CPUCycles: cyc(0.8), NetBytes: 80e3}),
		single(eApp, eC, cascade.R{NetBytes: 80e3}),
	}}

	explore := cascade.Op{Name: "EXPLORE"}
	for i := 0; i < 5; i++ { // five round trips navigating the tree (Fig. 5-3, x12)
		explore.Steps = append(explore.Steps,
			fan(eC, eApp, cascade.R{CPUCycles: cyc(0.4), NetBytes: 4e3}),
			fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.5), NetBytes: 20e3, DiskBytes: 2 * mb}),
			single(eApp, eC, cascade.R{NetBytes: 60e3}),
		)
	}

	spatial := cascade.Op{Name: "SPATIAL-SEARCH", Steps: [][]cascade.Msg{
		fan(eC, eApp, cascade.R{CPUCycles: cyc(0.5), NetBytes: 5e3}),
		fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.8), NetBytes: 20e3}),
		fan(eDB, eApp, cascade.R{CPUCycles: cyc(0.4), NetBytes: 100e3}),
		fan(eC, eApp, cascade.R{CPUCycles: cyc(1.2), NetBytes: 10e3, MemBytes: 125 * mb}),
		single(eApp, eC, cascade.R{NetBytes: 200e3}),
	}}
	for i := 0; i < 5; i++ { // navigating the 3D snapshot served by Tidx (Fig. 5-4, x10)
		spatial.Steps = append(spatial.Steps,
			fan(eC, eIdx, cascade.R{CPUCycles: cyc(0.742), NetBytes: 20e3, MemBytes: 125 * mb, DiskBytes: 5 * mb}),
			single(eIdx, eC, cascade.R{NetBytes: 250e3}),
		)
	}

	sel := cascade.Op{Name: "SELECT"}
	for i := 0; i < 3; i++ { // three spatial-area queries (Fig. 5-4, x4)
		sel.Steps = append(sel.Steps,
			fan(eC, eApp, cascade.R{CPUCycles: cyc(0.25), NetBytes: 5e3}),
			fan(eApp, eDB, cascade.R{CPUCycles: cyc(0.85), NetBytes: 30e3, DiskBytes: 5 * mb}),
			fan(eDB, eApp, cascade.R{CPUCycles: cyc(0.25), NetBytes: 200e3}),
			single(eApp, eC, cascade.R{NetBytes: 80e3}),
		)
	}

	open := cascade.Op{Name: "OPEN"}
	// Token segment (Fig. 3-12, segment 1): version check at the master,
	// then the download token returns to the client.
	open.Steps = append(open.Steps,
		fan(eC, eApp, cascade.R{CPUCycles: cyc(1.15), NetBytes: 6e3, MemBytes: 75 * mb}))
	open.Steps = append(open.Steps,
		fanChunks(eApp, eDB, cascade.R{CPUCycles: cyc(3.05), NetBytes: 20e3, DiskBytes: 8 * mb}, 3)...)
	open.Steps = append(open.Steps,
		fanChunks(eDB, eApp, cascade.R{CPUCycles: cyc(3.45), NetBytes: 60e3}, 3)...)
	open.Steps = append(open.Steps,
		single(eApp, eC, cascade.R{NetBytes: 60e3}))
	// Download segment (segment 2): the local file servers read the
	// striped payload from storage, then stream it to the client.
	open.Steps = append(open.Steps,
		fanChunks(eC, eFS, cascade.R{CPUCycles: cyc(3.2), NetBytes: 30e3, MemBytes: 250 * mb, DiskBytes: stripe}, 3)...)
	open.Steps = append(open.Steps,
		single(eFS, eC, cascade.R{NetBytes: fileBytes, DiskBytes: fileBytes}))

	save := cascade.Op{Name: "SAVE"}
	// Write grant: version registration at the master database.
	save.Steps = append(save.Steps,
		fan(eC, eApp, cascade.R{CPUCycles: cyc(1.0), NetBytes: 8e3, MemBytes: 75 * mb}))
	save.Steps = append(save.Steps,
		fanChunks(eApp, eDB, cascade.R{CPUCycles: cyc(3.6), NetBytes: 30e3, DiskBytes: 10 * mb}, 3)...)
	save.Steps = append(save.Steps,
		fanChunks(eDB, eApp, cascade.R{CPUCycles: cyc(2.86), NetBytes: 60e3}, 3)...)
	save.Steps = append(save.Steps,
		single(eApp, eC, cascade.R{NetBytes: 100e3}))
	// Upload: the client streams the payload to its local file server,
	// which writes the stripes through to storage.
	save.Steps = append(save.Steps,
		single(eC, eFS, cascade.R{NetBytes: fileBytes, MemBytes: 375 * mb}))
	save.Steps = append(save.Steps,
		fanChunks(eC, eFS, cascade.R{CPUCycles: cyc(4.0), NetBytes: 20e3, DiskBytes: stripe}, 4)...)
	save.Steps = append(save.Steps,
		single(eFS, eC, cascade.R{NetBytes: 50e3}))
	// Flag the new version for the index-build process (§6.3.2).
	save.Steps = append(save.Steps,
		fan(eC, eIdx, cascade.R{CPUCycles: cyc(0.5), NetBytes: 30e3}))
	save.Steps = append(save.Steps,
		single(eIdx, eC, cascade.R{NetBytes: 10e3}))

	ops := []cascade.Op{login, textSearch, filter, explore, spatial, sel, open, save}
	for i := range ops {
		ops[i] = ChunkHeavySteps(ops[i], maxTaskSec)
	}
	return ops
}

// maxTaskSec caps the per-task CPU service time after chunking. Small
// tasks keep FCFS head-of-line blocking — and with it the response-time
// inflation under load — proportional to the cap.
const maxTaskSec = 0.65

// ChunkHeavySteps splits every step whose largest CPU demand exceeds
// maxSec seconds (at ServerGHz) into equal sequential copies with the cost
// divided evenly. Total demand and isolated wall time are preserved.
func ChunkHeavySteps(op cascade.Op, maxSec float64) cascade.Op {
	out := cascade.Op{Name: op.Name}
	for _, step := range op.Steps {
		maxCPU := 0.0
		for _, m := range step {
			if s := m.Cost.CPUCycles / (ServerGHz * 1e9); s > maxCPU {
				maxCPU = s
			}
		}
		n := 1
		if maxCPU > maxSec {
			n = int(maxCPU/maxSec) + 1
		}
		if n == 1 {
			out.Steps = append(out.Steps, step)
			continue
		}
		chunk := make([]cascade.Msg, len(step))
		for i, m := range step {
			m.Cost = m.Cost.Scale(1 / float64(n))
			chunk[i] = m
		}
		for i := 0; i < n; i++ {
			out.Steps = append(out.Steps, chunk)
		}
	}
	return out
}

// CADOpsBySeries returns the CAD operation set for a series type, using
// that series' payload size.
func CADOpsBySeries(s refdata.SeriesType) []cascade.Op {
	size, ok := FileSizeMB[s]
	if !ok {
		panic(fmt.Sprintf("apps: unknown series type %q", s))
	}
	return CADOps(size)
}
