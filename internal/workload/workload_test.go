package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/topology"
)

func TestCurveAtInterpolates(t *testing.T) {
	var c Curve
	c[0], c[1] = 100, 200
	if got := c.At(0); got != 100 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(1800); got != 150 {
		t.Errorf("At(30min) = %v, want 150", got)
	}
	if got := c.At(24*3600 + 1800); got != 150 {
		t.Errorf("wrap At = %v, want 150", got)
	}
}

func TestCurvePeakScaleSum(t *testing.T) {
	c := BusinessDay(1000, 13, 22, 50)
	if p := c.Peak(); p != 1000 {
		t.Errorf("Peak = %v", p)
	}
	if p := c.Scale(2).Peak(); p != 2000 {
		t.Errorf("Scale Peak = %v", p)
	}
	d := BusinessDay(500, 8, 17, 0)
	if got := c.Sum(d).At(14 * 3600); got != 1500 {
		t.Errorf("Sum overlap = %v, want 1500", got)
	}
}

func TestBusinessDayWindow(t *testing.T) {
	c := BusinessDay(1000, 13, 22, 50)
	if c.At(15*3600) != 1000 {
		t.Errorf("inside window = %v", c.At(15*3600))
	}
	if got := c.At(4 * 3600); got != 50 {
		t.Errorf("night floor = %v", got)
	}
	// Ramp shoulders sit between floor and peak.
	if v := c[12]; v <= 50 || v >= 1000 {
		t.Errorf("ramp-up shoulder = %v", v)
	}
}

func TestBusinessDayWrapsMidnight(t *testing.T) {
	aus := BusinessDay(120, 23, 8, 5)
	if aus.At(2*3600) != 120 {
		t.Errorf("AUS 02:00 GMT = %v, want peak", aus.At(2*3600))
	}
	if aus.At(15*3600) != 5 {
		t.Errorf("AUS 15:00 GMT = %v, want floor", aus.At(15*3600))
	}
}

func TestAccessMatrixValidate(t *testing.T) {
	good := SingleMaster([]string{"NA", "EU"}, "NA")
	if err := good.Validate(); err != nil {
		t.Errorf("SingleMaster invalid: %v", err)
	}
	bad := AccessMatrix{"NA": {"NA": 0.5, "EU": 0.4}}
	if err := bad.Validate(); err == nil {
		t.Error("non-stochastic row accepted")
	}
	neg := AccessMatrix{"NA": {"NA": 1.5, "EU": -0.5}}
	if err := neg.Validate(); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestAccessMatrixOwnerDistribution(t *testing.T) {
	m := AccessMatrix{"AUS": {"EU": 0.3, "NA": 0.2, "AUS": 0.5}}
	rng := rand.New(rand.NewPCG(1, 2))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[m.Owner("AUS", rng)]++
	}
	for owner, want := range map[string]float64{"EU": 0.3, "NA": 0.2, "AUS": 0.5} {
		got := float64(counts[owner]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("owner %s frequency = %v, want ~%v", owner, got, want)
		}
	}
}

func TestAccessMatrixUnknownRowPanics(t *testing.T) {
	m := SingleMaster([]string{"NA"}, "NA")
	defer func() {
		if recover() == nil {
			t.Error("unknown APM row did not panic")
		}
	}()
	m.Owner("MARS", rand.New(rand.NewPCG(1, 1)))
}

// Property: Owner always returns a DC present in the row.
func TestAccessMatrixOwnerMembership(t *testing.T) {
	m := AccessMatrix{"X": {"A": 0.6, "B": 0.25, "C": 0.15}}
	rng := rand.New(rand.NewPCG(9, 9))
	f := func(uint8) bool {
		o := m.Owner("X", rng)
		return o == "A" || o == "B" || o == "C"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// miniInfra builds a one-DC infrastructure for launcher tests.
func miniInfra(t *testing.T, seed uint64) (*core.Simulation, *topology.Infrastructure) {
	t.Helper()
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 4, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
			CtrlGbps: 4, HitRate: 0,
		},
	}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{
			{Name: "NA", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []topology.TierSpec{
					{Name: "app", Servers: 2, Server: srv, LocalLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}},
				}},
		},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 64, NICGbps: 1, GHz: 2, DiskMBs: 100},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.01, Seed: seed, CollectEvery: 100})
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func quickOp(name string, cycles float64) cascade.Op {
	return cascade.Seq(name,
		cascade.Msg{From: cascade.End{Role: cascade.Client},
			To:   cascade.End{Role: cascade.App, Site: cascade.SiteMaster},
			Cost: cascade.R{CPUCycles: cycles, NetBytes: 1e4}},
		cascade.Msg{From: cascade.End{Role: cascade.App, Site: cascade.SiteMaster},
			To:   cascade.End{Role: cascade.Client},
			Cost: cascade.R{CPUCycles: 1e7, NetBytes: 1e4}},
	)
}

func TestSeriesLauncherLaunchesAtInterval(t *testing.T) {
	sim, inf := miniInfra(t, 3)
	na := inf.DC("NA")
	series := Series{Name: "test", Ops: []cascade.Op{
		quickOp("OP1", 5e8), quickOp("OP2", 5e8),
	}}
	var completed int
	launcher := &SeriesLauncher{
		Series:   series,
		Interval: 5,
		Until:    19, // launches at 0, 5, 10, 15 => 4 series
		GaugeKey: "clients",
		NewBinding: func() *cascade.Binding {
			return cascade.NewBinding(inf, na, na)
		},
		OnSeriesDone: func(now float64) { completed++ },
	}
	sim.AddSource(launcher)
	sim.RunFor(15.5) // cover the launch window; series drain afterwards
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	if completed != 4 {
		t.Errorf("series completed = %d, want 4", completed)
	}
	if n := sim.Responses.Count("OP1", "NA"); n != 4 {
		t.Errorf("OP1 completions = %d, want 4", n)
	}
	if g := sim.GaugeValue("clients"); g != 0 {
		t.Errorf("concurrent gauge after drain = %v", g)
	}
}

func TestSeriesLauncherSequencesOps(t *testing.T) {
	sim, inf := miniInfra(t, 4)
	na := inf.DC("NA")
	var order []string
	ops := []cascade.Op{quickOp("A", 2e8), quickOp("B", 2e8), quickOp("C", 2e8)}
	launcher := &SeriesLauncher{
		Series:   Series{Name: "seq", Ops: ops},
		Interval: 1000, Until: 1, // exactly one series
		NewBinding: func() *cascade.Binding { return cascade.NewBinding(inf, na, na) },
	}
	sim.AddSource(launcher)
	track := core.SourceFunc(func(s *core.Simulation, now float64) {})
	_ = track
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {}))
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		s := sim.Responses.Series(name, "NA")
		if s == nil || s.Len() != 1 {
			t.Fatalf("op %s did not complete exactly once", name)
		}
		order = append(order, name)
		_ = order
	}
	// Completion times must be strictly increasing A < B < C.
	ta := sim.Responses.Series("A", "NA").T[0]
	tb := sim.Responses.Series("B", "NA").T[0]
	tc := sim.Responses.Series("C", "NA").T[0]
	if !(ta < tb && tb < tc) {
		t.Errorf("series order violated: %v %v %v", ta, tb, tc)
	}
}

func TestPoissonLauncherRateTracksCurve(t *testing.T) {
	sim, inf := miniInfra(t, 5)
	users := Curve{}
	for h := 0; h < 24; h++ {
		users[h] = 360 // constant: 360 users x 10 ops/h = 1 op/s
	}
	w := &AppWorkload{
		App: "CAD", DC: "NA",
		Users:          users,
		OpsPerUserHour: 10,
		Ops:            []cascade.Op{quickOp("PING", 1e7)},
		APM:            SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
		GaugePrefix:    "cad:NA",
	}
	sim.AddSource(w)
	sim.RunFor(120)
	n := sim.Responses.Count("CAD PING", "NA")
	// Expect ~120 completions (1/s); allow generous stochastic slack.
	if n < 80 || n > 160 {
		t.Errorf("completions = %d, want ~120", n)
	}
	if g := sim.GaugeValue("cad:NA:loggedin"); math.Abs(g-360) > 1 {
		t.Errorf("loggedin gauge = %v, want 360", g)
	}
}

func TestPoissonLauncherMixWeights(t *testing.T) {
	sim, inf := miniInfra(t, 6)
	users := Curve{}
	for h := range users {
		users[h] = 720
	}
	w := &AppWorkload{
		App: "X", DC: "NA",
		Users:          users,
		OpsPerUserHour: 20,
		Ops:            []cascade.Op{quickOp("COMMON", 1e7), quickOp("RARE", 1e7)},
		Weights:        []float64{9, 1},
		APM:            SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
	}
	sim.AddSource(w)
	sim.RunFor(150)
	common := sim.Responses.Count("X COMMON", "NA")
	rare := sim.Responses.Count("X RARE", "NA")
	if common == 0 || rare == 0 {
		t.Fatalf("mix starved an op: common=%d rare=%d", common, rare)
	}
	ratio := float64(common) / float64(rare)
	if ratio < 5 || ratio > 16 {
		t.Errorf("mix ratio = %.1f, want ~9", ratio)
	}
}

// TestPoissonSamplerMoments checks the sampler's first two moments with a
// fixed seed: a Poisson distribution has variance equal to its mean, on
// both sides of the sampler's normal-approximation switch at 30.
func TestPoissonSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, mean := range []float64{0.1, 1, 5, 40} {
		sum, sumSq := 0.0, 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			x := float64(poisson(rng, mean))
			sum += x
			sumSq += x * x
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("poisson(%v) empirical mean %v", mean, got)
		}
		variance := sumSq/n - got*got
		// Var of the variance estimator for Poisson is ~(mean + 2 mean^2)/n;
		// 5 sigma plus a small absolute floor for the tiny means.
		tol := 5*math.Sqrt((mean+2*mean*mean)/n) + 0.01
		if math.Abs(variance-mean) > tol {
			t.Errorf("poisson(%v) empirical variance %v, want %v +- %v", mean, variance, mean, tol)
		}
	}
}

// TestThinnedArrivalsMatchPerTickDraws is the law-preservation check for
// the exponential-gap sampler: over many simulated days of a business-day
// curve, per-hour arrival counts from thinning must agree with per-tick
// Poisson draws. Both are Poisson counts with the same per-hour mean, so
// the difference normalized by sqrt(sum) is a z-score; five sigma bounds
// it with a fixed seed.
func TestThinnedArrivalsMatchPerTickDraws(t *testing.T) {
	users := BusinessDay(800, 9, 17, 40)
	const oph, step = 2.0, 0.5
	const days = 20
	const horizon = days * 24 * 3600.0

	w := &AppWorkload{Users: users, OpsPerUserHour: oph}
	w.rng = rand.New(rand.NewPCG(101, 202))
	w.step = step
	w.thinBelow = math.Inf(1) // stay in the sparse regime at every rate
	var thinned [24]float64
	for w.sampleNext(0); w.pending < horizon; w.sampleNext(w.pending) {
		thinned[int(w.pending/3600)%24]++
	}

	rng := rand.New(rand.NewPCG(303, 404))
	var perTick [24]float64
	for tick := 0; float64(tick)*step < horizon; tick++ {
		now := float64(tick) * step
		if lambda := users.At(now) * oph / 3600 * step; lambda > 0 {
			perTick[int(now/3600)%24] += float64(poisson(rng, lambda))
		}
	}

	for h := 0; h < 24; h++ {
		a, b := thinned[h], perTick[h]
		if a+b == 0 {
			t.Errorf("hour %d: no arrivals in either sampler", h)
			continue
		}
		if z := (a - b) / math.Sqrt(a+b); math.Abs(z) > 5 {
			t.Errorf("hour %d: thinned %v vs per-tick %v (z=%.1f)", h, a, b, z)
		}
	}
}

// TestCurveCeiling pins the dominating-rate helper the thinned sampler
// relies on: the ceiling must bound the curve over the whole span (the
// thinning acceptance ratio must never exceed 1) and be exact for spans
// within one linear segment.
func TestCurveCeiling(t *testing.T) {
	c := BusinessDay(1000, 9, 17, 50)
	// Within one segment the curve is linear: the ceiling is the larger
	// endpoint, here inside the ramp-up hour [8, 9).
	lo, hi := 8.25*3600, 8.75*3600
	if got, want := c.Ceiling(lo, hi), math.Max(c.At(lo), c.At(hi)); got != want {
		t.Errorf("segment ceiling = %v, want %v", got, want)
	}
	// Spanning the business window must see the plateau.
	if got := c.Ceiling(7*3600, 12*3600); got != 1000 {
		t.Errorf("window ceiling = %v, want 1000", got)
	}
	// A day or longer sees the whole curve.
	if got := c.Ceiling(0, 48*3600); got != c.Peak() {
		t.Errorf("two-day ceiling = %v, want peak %v", got, c.Peak())
	}
	// Degenerate span falls back to the point value.
	if got := c.Ceiling(10*3600, 9*3600); got != c.At(10*3600) {
		t.Errorf("inverted span ceiling = %v, want %v", got, c.At(10*3600))
	}
	// Domination property across random spans.
	rng := rand.New(rand.NewPCG(5, 6))
	for i := 0; i < 200; i++ {
		t0 := rng.Float64() * 24 * 3600
		t1 := t0 + rng.Float64()*6*3600
		ceil := c.Ceiling(t0, t1)
		for j := 0; j <= 20; j++ {
			x := t0 + (t1-t0)*float64(j)/20
			if v := c.At(x); v > ceil+1e-9 {
				t.Fatalf("Ceiling(%v, %v) = %v < At(%v) = %v", t0, t1, ceil, x, v)
			}
		}
	}
}

// TestCurveNextPositiveBoundaries covers the piecewise boundaries the
// original test table skirts: instants exactly on hour points, a curve
// positive at a single hour point (both adjacent segments ramp), and the
// midnight wrap out of a trailing zero stretch.
func TestCurveNextPositiveBoundaries(t *testing.T) {
	var spike Curve
	spike[10] = 5 // positive only at the 10:00 hour point
	cases := []struct {
		name string
		t    float64
		want float64
	}{
		// Inside [9,10) the segment ramps toward c[10]>0: positive
		// immediately after t, so NextPositive must not skip.
		{"ramp-into-spike", 9.5 * 3600, 9.5 * 3600},
		{"exactly-at-segment-start", 9 * 3600, 9 * 3600},
		{"exactly-at-spike", 10 * 3600, 10 * 3600},
		// Inside [10,11) the segment ramps down from the spike: still
		// positive until the 11:00 point.
		{"ramp-out-of-spike", 10.5 * 3600, 10.5 * 3600},
		// At exactly 11:00 the curve is zero and stays zero until the
		// ramp-in segment starts next day at 9:00.
		{"exactly-at-zero-start", 11 * 3600, (24 + 9) * 3600},
		{"deep-zero-wraps", 20 * 3600, (24 + 9) * 3600},
		{"second-day", (24 + 11) * 3600, (48 + 9) * 3600},
	}
	for _, tc := range cases {
		if got := spike.NextPositive(tc.t); got != tc.want {
			t.Errorf("%s: NextPositive(%v) = %v, want %v", tc.name, tc.t, got, tc.want)
		}
	}
	// Contract sweep on a fine grid: the curve is zero at every instant
	// strictly before the returned time.
	for x := 0.0; x < 48*3600; x += 97 {
		np := spike.NextPositive(x)
		for probe := x; probe < np && probe < x+12*3600; probe += 61 {
			if spike.At(probe) != 0 {
				t.Fatalf("NextPositive(%v) = %v but curve positive at %v", x, np, probe)
			}
		}
	}
}

// TestCurveNextPositive pins the fast-forward scheduling contract: the
// curve is guaranteed zero at every instant strictly before the returned
// time.
func TestCurveNextPositive(t *testing.T) {
	var zero Curve
	if got := zero.NextPositive(12345); !math.IsInf(got, 1) {
		t.Errorf("all-zero curve: NextPositive = %v, want +Inf", got)
	}
	// Business window 9-17 with a hard-zero night.
	var c Curve
	for h := 9; h < 17; h++ {
		c[h] = 100
	}
	cases := []struct {
		name string
		t    float64
		want float64
	}{
		{"inside-window", 10 * 3600, 10 * 3600},
		{"segment-before-window", 8.5 * 3600, 8.5 * 3600}, // c[9]>0: ramps up within [8,9)
		{"deep-night", 2 * 3600, 8 * 3600},
		{"after-window-wraps", 20 * 3600, (24 + 8) * 3600},
		{"next-day", (24 + 2) * 3600, (24 + 8) * 3600},
	}
	for _, tc := range cases {
		if got := c.NextPositive(tc.t); got != tc.want {
			t.Errorf("%s: NextPositive(%v) = %v, want %v", tc.name, tc.t, got, tc.want)
		}
		// Contract check: zero everywhere strictly before the returned time.
		got := c.NextPositive(tc.t)
		if math.IsInf(got, 1) {
			continue
		}
		for x := tc.t; x < got; x += 300 {
			if c.At(x) != 0 {
				t.Errorf("%s: curve positive at %v, before NextPositive=%v", tc.name, x, got)
				break
			}
		}
	}
}

// TestSeriesLauncherNextPoll checks the launcher reports its schedule:
// the next launch while armed, +Inf once exhausted.
func TestSeriesLauncherNextPoll(t *testing.T) {
	sim, inf := miniInfra(t, 1)
	na := inf.DC("NA")
	l := &SeriesLauncher{
		Series:     Series{Name: "s", Ops: []cascade.Op{quickOp("OP1", 5e8)}},
		Interval:   30,
		FirstAt:    5,
		Until:      40,
		NewBinding: func() *cascade.Binding { return cascade.NewBinding(inf, na, na) },
	}
	if got := l.NextPoll(0); got != 0 {
		t.Errorf("uninitialized NextPoll(0) = %v, want 0 (poll every tick)", got)
	}
	l.Poll(sim, 0)
	if got := l.NextPoll(0); got != 5 {
		t.Errorf("NextPoll before first launch = %v, want 5", got)
	}
	l.Poll(sim, 5)
	if got := l.NextPoll(5); got != 35 {
		t.Errorf("NextPoll after first launch = %v, want 35", got)
	}
	l.Poll(sim, 35)
	if got := l.NextPoll(35); !math.IsInf(got, 1) {
		t.Errorf("NextPoll after Until = %v, want +Inf", got)
	}
}
