package workload

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/topology"
)

func TestCurveAtInterpolates(t *testing.T) {
	var c Curve
	c[0], c[1] = 100, 200
	if got := c.At(0); got != 100 {
		t.Errorf("At(0) = %v", got)
	}
	if got := c.At(1800); got != 150 {
		t.Errorf("At(30min) = %v, want 150", got)
	}
	if got := c.At(24*3600 + 1800); got != 150 {
		t.Errorf("wrap At = %v, want 150", got)
	}
}

func TestCurvePeakScaleSum(t *testing.T) {
	c := BusinessDay(1000, 13, 22, 50)
	if p := c.Peak(); p != 1000 {
		t.Errorf("Peak = %v", p)
	}
	if p := c.Scale(2).Peak(); p != 2000 {
		t.Errorf("Scale Peak = %v", p)
	}
	d := BusinessDay(500, 8, 17, 0)
	if got := c.Sum(d).At(14 * 3600); got != 1500 {
		t.Errorf("Sum overlap = %v, want 1500", got)
	}
}

func TestBusinessDayWindow(t *testing.T) {
	c := BusinessDay(1000, 13, 22, 50)
	if c.At(15*3600) != 1000 {
		t.Errorf("inside window = %v", c.At(15*3600))
	}
	if got := c.At(4 * 3600); got != 50 {
		t.Errorf("night floor = %v", got)
	}
	// Ramp shoulders sit between floor and peak.
	if v := c[12]; v <= 50 || v >= 1000 {
		t.Errorf("ramp-up shoulder = %v", v)
	}
}

func TestBusinessDayWrapsMidnight(t *testing.T) {
	aus := BusinessDay(120, 23, 8, 5)
	if aus.At(2*3600) != 120 {
		t.Errorf("AUS 02:00 GMT = %v, want peak", aus.At(2*3600))
	}
	if aus.At(15*3600) != 5 {
		t.Errorf("AUS 15:00 GMT = %v, want floor", aus.At(15*3600))
	}
}

func TestAccessMatrixValidate(t *testing.T) {
	good := SingleMaster([]string{"NA", "EU"}, "NA")
	if err := good.Validate(); err != nil {
		t.Errorf("SingleMaster invalid: %v", err)
	}
	bad := AccessMatrix{"NA": {"NA": 0.5, "EU": 0.4}}
	if err := bad.Validate(); err == nil {
		t.Error("non-stochastic row accepted")
	}
	neg := AccessMatrix{"NA": {"NA": 1.5, "EU": -0.5}}
	if err := neg.Validate(); err == nil {
		t.Error("negative entry accepted")
	}
}

func TestAccessMatrixOwnerDistribution(t *testing.T) {
	m := AccessMatrix{"AUS": {"EU": 0.3, "NA": 0.2, "AUS": 0.5}}
	rng := rand.New(rand.NewPCG(1, 2))
	counts := map[string]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[m.Owner("AUS", rng)]++
	}
	for owner, want := range map[string]float64{"EU": 0.3, "NA": 0.2, "AUS": 0.5} {
		got := float64(counts[owner]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("owner %s frequency = %v, want ~%v", owner, got, want)
		}
	}
}

func TestAccessMatrixUnknownRowPanics(t *testing.T) {
	m := SingleMaster([]string{"NA"}, "NA")
	defer func() {
		if recover() == nil {
			t.Error("unknown APM row did not panic")
		}
	}()
	m.Owner("MARS", rand.New(rand.NewPCG(1, 1)))
}

// Property: Owner always returns a DC present in the row.
func TestAccessMatrixOwnerMembership(t *testing.T) {
	m := AccessMatrix{"X": {"A": 0.6, "B": 0.25, "C": 0.15}}
	rng := rand.New(rand.NewPCG(9, 9))
	f := func(uint8) bool {
		o := m.Owner("X", rng)
		return o == "A" || o == "B" || o == "C"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// miniInfra builds a one-DC infrastructure for launcher tests.
func miniInfra(t *testing.T, seed uint64) (*core.Simulation, *topology.Infrastructure) {
	t.Helper()
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 4, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0},
			CtrlGbps: 4, HitRate: 0,
		},
	}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{
			{Name: "NA", SwitchGbps: 20, ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
				Tiers: []topology.TierSpec{
					{Name: "app", Servers: 2, Server: srv, LocalLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}},
				}},
		},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 64, NICGbps: 1, GHz: 2, DiskMBs: 100},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.01, Seed: seed, CollectEvery: 100})
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	return sim, inf
}

func quickOp(name string, cycles float64) cascade.Op {
	return cascade.Seq(name,
		cascade.Msg{From: cascade.End{Role: cascade.Client},
			To:   cascade.End{Role: cascade.App, Site: cascade.SiteMaster},
			Cost: cascade.R{CPUCycles: cycles, NetBytes: 1e4}},
		cascade.Msg{From: cascade.End{Role: cascade.App, Site: cascade.SiteMaster},
			To:   cascade.End{Role: cascade.Client},
			Cost: cascade.R{CPUCycles: 1e7, NetBytes: 1e4}},
	)
}

func TestSeriesLauncherLaunchesAtInterval(t *testing.T) {
	sim, inf := miniInfra(t, 3)
	na := inf.DC("NA")
	series := Series{Name: "test", Ops: []cascade.Op{
		quickOp("OP1", 5e8), quickOp("OP2", 5e8),
	}}
	var completed int
	launcher := &SeriesLauncher{
		Series:   series,
		Interval: 5,
		Until:    19, // launches at 0, 5, 10, 15 => 4 series
		GaugeKey: "clients",
		NewBinding: func() *cascade.Binding {
			return cascade.NewBinding(inf, na, na)
		},
		OnSeriesDone: func(now float64) { completed++ },
	}
	sim.AddSource(launcher)
	sim.RunFor(15.5) // cover the launch window; series drain afterwards
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	if completed != 4 {
		t.Errorf("series completed = %d, want 4", completed)
	}
	if n := sim.Responses.Count("OP1", "NA"); n != 4 {
		t.Errorf("OP1 completions = %d, want 4", n)
	}
	if g := sim.GaugeValue("clients"); g != 0 {
		t.Errorf("concurrent gauge after drain = %v", g)
	}
}

func TestSeriesLauncherSequencesOps(t *testing.T) {
	sim, inf := miniInfra(t, 4)
	na := inf.DC("NA")
	var order []string
	ops := []cascade.Op{quickOp("A", 2e8), quickOp("B", 2e8), quickOp("C", 2e8)}
	launcher := &SeriesLauncher{
		Series:   Series{Name: "seq", Ops: ops},
		Interval: 1000, Until: 1, // exactly one series
		NewBinding: func() *cascade.Binding { return cascade.NewBinding(inf, na, na) },
	}
	sim.AddSource(launcher)
	track := core.SourceFunc(func(s *core.Simulation, now float64) {})
	_ = track
	sim.AddSource(core.SourceFunc(func(s *core.Simulation, now float64) {}))
	if err := sim.RunUntilIdle(60); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"A", "B", "C"} {
		s := sim.Responses.Series(name, "NA")
		if s == nil || s.Len() != 1 {
			t.Fatalf("op %s did not complete exactly once", name)
		}
		order = append(order, name)
		_ = order
	}
	// Completion times must be strictly increasing A < B < C.
	ta := sim.Responses.Series("A", "NA").T[0]
	tb := sim.Responses.Series("B", "NA").T[0]
	tc := sim.Responses.Series("C", "NA").T[0]
	if !(ta < tb && tb < tc) {
		t.Errorf("series order violated: %v %v %v", ta, tb, tc)
	}
}

func TestPoissonLauncherRateTracksCurve(t *testing.T) {
	sim, inf := miniInfra(t, 5)
	users := Curve{}
	for h := 0; h < 24; h++ {
		users[h] = 360 // constant: 360 users x 10 ops/h = 1 op/s
	}
	w := &AppWorkload{
		App: "CAD", DC: "NA",
		Users:          users,
		OpsPerUserHour: 10,
		Ops:            []cascade.Op{quickOp("PING", 1e7)},
		APM:            SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
		GaugePrefix:    "cad:NA",
	}
	sim.AddSource(w)
	sim.RunFor(120)
	n := sim.Responses.Count("CAD PING", "NA")
	// Expect ~120 completions (1/s); allow generous stochastic slack.
	if n < 80 || n > 160 {
		t.Errorf("completions = %d, want ~120", n)
	}
	if g := sim.GaugeValue("cad:NA:loggedin"); math.Abs(g-360) > 1 {
		t.Errorf("loggedin gauge = %v, want 360", g)
	}
}

func TestPoissonLauncherMixWeights(t *testing.T) {
	sim, inf := miniInfra(t, 6)
	users := Curve{}
	for h := range users {
		users[h] = 720
	}
	w := &AppWorkload{
		App: "X", DC: "NA",
		Users:          users,
		OpsPerUserHour: 20,
		Ops:            []cascade.Op{quickOp("COMMON", 1e7), quickOp("RARE", 1e7)},
		Weights:        []float64{9, 1},
		APM:            SingleMaster([]string{"NA"}, "NA"),
		Inf:            inf,
	}
	sim.AddSource(w)
	sim.RunFor(150)
	common := sim.Responses.Count("X COMMON", "NA")
	rare := sim.Responses.Count("X RARE", "NA")
	if common == 0 || rare == 0 {
		t.Fatalf("mix starved an op: common=%d rare=%d", common, rare)
	}
	ratio := float64(common) / float64(rare)
	if ratio < 5 || ratio > 16 {
		t.Errorf("mix ratio = %.1f, want ~9", ratio)
	}
}

func TestPoissonSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for _, mean := range []float64{0.1, 1, 5, 40} {
		sum := 0.0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, mean))
		}
		got := sum / n
		if math.Abs(got-mean)/mean > 0.05 {
			t.Errorf("poisson(%v) empirical mean %v", mean, got)
		}
	}
}

// TestCurveNextPositive pins the fast-forward scheduling contract: the
// curve is guaranteed zero at every instant strictly before the returned
// time.
func TestCurveNextPositive(t *testing.T) {
	var zero Curve
	if got := zero.NextPositive(12345); !math.IsInf(got, 1) {
		t.Errorf("all-zero curve: NextPositive = %v, want +Inf", got)
	}
	// Business window 9-17 with a hard-zero night.
	var c Curve
	for h := 9; h < 17; h++ {
		c[h] = 100
	}
	cases := []struct {
		name string
		t    float64
		want float64
	}{
		{"inside-window", 10 * 3600, 10 * 3600},
		{"segment-before-window", 8.5 * 3600, 8.5 * 3600}, // c[9]>0: ramps up within [8,9)
		{"deep-night", 2 * 3600, 8 * 3600},
		{"after-window-wraps", 20 * 3600, (24 + 8) * 3600},
		{"next-day", (24 + 2) * 3600, (24 + 8) * 3600},
	}
	for _, tc := range cases {
		if got := c.NextPositive(tc.t); got != tc.want {
			t.Errorf("%s: NextPositive(%v) = %v, want %v", tc.name, tc.t, got, tc.want)
		}
		// Contract check: zero everywhere strictly before the returned time.
		got := c.NextPositive(tc.t)
		if math.IsInf(got, 1) {
			continue
		}
		for x := tc.t; x < got; x += 300 {
			if c.At(x) != 0 {
				t.Errorf("%s: curve positive at %v, before NextPositive=%v", tc.name, x, got)
				break
			}
		}
	}
}

// TestSeriesLauncherNextPoll checks the launcher reports its schedule:
// the next launch while armed, +Inf once exhausted.
func TestSeriesLauncherNextPoll(t *testing.T) {
	sim, inf := miniInfra(t, 1)
	na := inf.DC("NA")
	l := &SeriesLauncher{
		Series:     Series{Name: "s", Ops: []cascade.Op{quickOp("OP1", 5e8)}},
		Interval:   30,
		FirstAt:    5,
		Until:      40,
		NewBinding: func() *cascade.Binding { return cascade.NewBinding(inf, na, na) },
	}
	if got := l.NextPoll(0); got != 0 {
		t.Errorf("uninitialized NextPoll(0) = %v, want 0 (poll every tick)", got)
	}
	l.Poll(sim, 0)
	if got := l.NextPoll(0); got != 5 {
		t.Errorf("NextPoll before first launch = %v, want 5", got)
	}
	l.Poll(sim, 5)
	if got := l.NextPoll(5); got != 35 {
		t.Errorf("NextPoll after first launch = %v, want 35", got)
	}
	l.Poll(sim, 35)
	if got := l.NextPoll(35); !math.IsInf(got, 1) {
		t.Errorf("NextPoll after Until = %v, want +Inf", got)
	}
}
