package workload

// Shift returns the curve re-based so that index 0 corresponds to
// startHour of the original curve: shifted.At(t) == original.At(t +
// startHour*3600). Case-study runs covering a window of the day start
// their simulation clock at the window's first hour and shift all curves
// accordingly.
func (c Curve) Shift(startHour int) Curve {
	var out Curve
	for h := 0; h < 24; h++ {
		out[h] = c[((h+startHour)%24+24)%24]
	}
	return out
}
