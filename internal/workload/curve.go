// Package workload implements the application-workload model of GDISim
// (§3.5.1): hourly client-population curves per data center, operation
// mixes, the timed series launcher used by the Chapter 5 validation
// experiments, and the Poisson operation launcher driving the Chapter 6-7
// case studies. It also provides the Access Pattern Matrix of §7.3.2 that
// maps client locations to file-owner data centers.
package workload

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Curve is a 24-hour concurrent-user curve indexed by hour of day (GMT).
type Curve [24]float64

// At returns the population at a simulated instant (seconds since
// midnight, wrapping daily) with piecewise-linear interpolation between
// hour points.
func (c Curve) At(seconds float64) float64 {
	day := math.Mod(seconds, 24*3600)
	if day < 0 {
		day += 24 * 3600
	}
	h := day / 3600
	lo := int(h) % 24
	hi := (lo + 1) % 24
	frac := h - math.Floor(h)
	return c[lo]*(1-frac) + c[hi]*frac
}

// NextPositive returns the earliest instant at or after t from which the
// curve stops being identically zero: t itself when the segment containing
// t has a positive endpoint (the value is positive at t or immediately
// after), otherwise the start of the first later hour segment with a
// positive endpoint, or +Inf for the all-zero curve. The result is
// conservative for fast-forward scheduling: the curve is guaranteed zero at
// every instant strictly before it, so skipped workload polls in that
// stretch are no-ops.
func (c Curve) NextPositive(t float64) float64 {
	const day = 24 * 3600
	base := math.Floor(t/day) * day
	hour := int((t - base) / 3600) // 0..23
	if c[hour%24] > 0 || c[(hour+1)%24] > 0 {
		return t
	}
	for i := 1; i <= 24; i++ {
		lo := (hour + i) % 24
		hi := (lo + 1) % 24
		if c[lo] > 0 || c[hi] > 0 {
			return base + float64(hour+i)*3600
		}
	}
	return math.Inf(1)
}

// Ceiling returns the maximum curve value over [t0, t1]. The curve is
// piecewise linear between hour points, so the maximum over any span is
// attained at the span's endpoints or at an interior hour point; spans of a
// day or longer see the whole curve. Thinned arrival sampling uses it as
// the dominating rate of a lookahead window (Lewis-Shedler thinning needs
// rate(t) <= ceiling over the whole window). t1 < t0 yields At(t0).
func (c Curve) Ceiling(t0, t1 float64) float64 {
	p := c.At(t0)
	if v := c.At(t1); v > p {
		p = v
	}
	if t1-t0 >= 24*3600 {
		return math.Max(p, c.Peak())
	}
	// Interior hour points: the first boundary strictly after t0 through
	// the last strictly before t1.
	for b := math.Floor(t0/3600)*3600 + 3600; b < t1; b += 3600 {
		if v := c.At(b); v > p {
			p = v
		}
	}
	return p
}

// Peak returns the maximum hourly value.
func (c Curve) Peak() float64 {
	p := c[0]
	for _, v := range c[1:] {
		if v > p {
			p = v
		}
	}
	return p
}

// Scale returns the curve multiplied by f.
func (c Curve) Scale(f float64) Curve {
	var out Curve
	for i, v := range c {
		out[i] = v * f
	}
	return out
}

// Sum adds two curves point-wise (global population across DCs).
func (c Curve) Sum(o Curve) Curve {
	var out Curve
	for i := range c {
		out[i] = c[i] + o[i]
	}
	return out
}

// BusinessDay builds the diurnal trapezoid behind Figs. 6-5..6-7: a night
// floor, a ramp-up hour into the business window [startGMT, endGMT), a
// plateau at peak, and a ramp-down hour. Windows may wrap midnight
// (Australia's business day spans 23:00-08:00 GMT).
func BusinessDay(peak float64, startGMT, endGMT int, nightFloor float64) Curve {
	var c Curve
	inWindow := func(h int) bool {
		if startGMT <= endGMT {
			return h >= startGMT && h < endGMT
		}
		return h >= startGMT || h < endGMT
	}
	for h := 0; h < 24; h++ {
		switch {
		case inWindow(h):
			c[h] = peak
		case inWindow((h + 1) % 24):
			c[h] = nightFloor + (peak-nightFloor)*0.4 // ramp-up shoulder
		case inWindow((h + 23) % 24):
			c[h] = nightFloor + (peak-nightFloor)*0.4 // ramp-down shoulder
		default:
			c[h] = nightFloor
		}
	}
	return c
}

// AccessMatrix is the Access Pattern Matrix (Tables 7.1, 7.2): for each
// client data center, the fraction of requests addressed to files owned by
// each data center. Rows must sum to 1.
type AccessMatrix map[string]map[string]float64

// Validate checks that every row is a probability distribution.
func (m AccessMatrix) Validate() error {
	for from, row := range m {
		sum := 0.0
		for _, p := range row {
			if p < 0 {
				return fmt.Errorf("workload: APM row %s has negative entry", from)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("workload: APM row %s sums to %v, want 1", from, sum)
		}
	}
	return nil
}

// SingleMaster returns the Chapter 6 matrix: every request from every DC
// goes to files owned by the master (Table 7.1).
func SingleMaster(dcs []string, master string) AccessMatrix {
	m := make(AccessMatrix, len(dcs))
	for _, dc := range dcs {
		m[dc] = map[string]float64{master: 1}
	}
	return m
}

// Owner samples the owner data center for a request from the given client
// DC. It panics on an unknown row — a scenario wiring bug.
func (m AccessMatrix) Owner(clientDC string, rng *rand.Rand) string {
	row, ok := m[clientDC]
	if !ok {
		panic(fmt.Sprintf("workload: APM has no row for %s", clientDC))
	}
	u := rng.Float64()
	acc := 0.0
	last := ""
	// Iterate in stable order for determinism.
	for _, owner := range stableKeys(row) {
		acc += row[owner]
		last = owner
		if u < acc {
			return owner
		}
	}
	return last
}

func stableKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion sort: tiny maps, no need for sort import here.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
