package workload

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/topology"
)

// AppWorkload drives one software application at one data center with an
// open Poisson arrival process: the launch rate at time t is
//
//	Users.At(t) x OpsPerUserHour / 3600
//
// and each launch draws an operation from the mix. The master data center
// for each operation — the owner of the manipulated file — is sampled from
// the Access Pattern Matrix, which reduces to "always the MDC" in the
// consolidated platform of Chapter 6.
type AppWorkload struct {
	App            string
	DC             string
	Users          Curve
	OpsPerUserHour float64
	Ops            []cascade.Op
	Weights        []float64 // nil selects a uniform mix
	APM            AccessMatrix
	Inf            *topology.Infrastructure
	// GaugePrefix, when set, maintains gauges "<prefix>:active" (operations
	// in flight) and "<prefix>:loggedin" (population curve sample).
	GaugePrefix string

	cum      []float64
	rng      *rand.Rand
	active   core.Gauge // interned "<prefix>:active"
	loggedin core.Gauge // interned "<prefix>:loggedin"
}

// init prepares the cumulative mix distribution.
func (w *AppWorkload) initialize(s *core.Simulation) {
	if len(w.Ops) == 0 {
		panic(fmt.Sprintf("workload: app %s at %s has no operations", w.App, w.DC))
	}
	if w.Weights != nil && len(w.Weights) != len(w.Ops) {
		panic(fmt.Sprintf("workload: app %s has %d weights for %d ops", w.App, len(w.Weights), len(w.Ops)))
	}
	if err := w.APM.Validate(); err != nil {
		panic(err)
	}
	w.cum = make([]float64, len(w.Ops))
	total := 0.0
	for i := range w.Ops {
		wgt := 1.0
		if w.Weights != nil {
			wgt = w.Weights[i]
		}
		total += wgt
		w.cum[i] = total
	}
	for i := range w.cum {
		w.cum[i] /= total
	}
	// Derive an independent deterministic stream from the simulation RNG so
	// multiple workloads stay decoupled.
	w.rng = rand.New(rand.NewPCG(s.RNG().Uint64(), s.RNG().Uint64()))
	if w.GaugePrefix != "" {
		w.active = s.GaugeHandle(w.GaugePrefix + ":active")
		w.loggedin = s.GaugeHandle(w.GaugePrefix + ":loggedin")
	}
}

// Poll launches a Poisson number of operations for this tick.
func (w *AppWorkload) Poll(s *core.Simulation, now float64) {
	if w.rng == nil {
		w.initialize(s)
	}
	users := w.Users.At(now)
	s.AddGaugeBy(w.loggedin, users-s.GaugeValueBy(w.loggedin))
	lambda := users * w.OpsPerUserHour / 3600 * s.Clock().Step()
	if lambda <= 0 {
		return
	}
	n := poisson(w.rng, lambda)
	for i := 0; i < n; i++ {
		w.launch(s)
	}
}

// NextPoll keeps per-tick polling while the population curve is positive —
// every such poll draws from the Poisson stream and refreshes the loggedin
// gauge — and, once the curve reaches zero (the gauge was just written to
// zero and no arrivals can occur), skips ahead to the instant it can turn
// positive again. Curves with a non-zero night floor simply never skip.
func (w *AppWorkload) NextPoll(now float64) float64 {
	if w.rng == nil || w.Users.At(now) > 0 {
		return now
	}
	return w.Users.NextPositive(now)
}

func (w *AppWorkload) launch(s *core.Simulation) {
	op := w.Ops[w.pickOp()]
	local := w.Inf.DC(w.DC)
	master := w.Inf.DC(w.APM.Owner(w.DC, w.rng))
	b := cascade.NewBinding(w.Inf, local, master)
	run, err := cascade.Instantiate(op, b)
	if err != nil {
		panic(err)
	}
	run.Name = w.App + " " + op.Name
	run.Gauge = w.active
	s.StartOp(run)
}

func (w *AppWorkload) pickOp() int {
	u := w.rng.Float64()
	for i, c := range w.cum {
		if u < c {
			return i
		}
	}
	return len(w.cum) - 1
}

// poisson draws from Poisson(mean) — Knuth's method for the small means a
// tick produces, with a normal approximation above 30 to bound the loop.
func poisson(rng *rand.Rand, mean float64) int {
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

var _ core.Source = (*AppWorkload)(nil)
