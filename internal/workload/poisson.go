package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"

	"repro/internal/cascade"
	"repro/internal/core"
	"repro/internal/topology"
)

// DefaultThinBelow is the per-tick expected-arrival threshold under which
// AppWorkload trades per-tick Poisson draws for sampled inter-arrival gaps:
// below 0.1 expected arrivals per tick, at least ~10 of every 11 polls draw
// zero and exist only to consume randomness, so sampling the gap directly
// is both cheaper and lets the time loop fast-forward to the next arrival.
const DefaultThinBelow = 0.1

// AppWorkload drives one software application at one data center with an
// open Poisson arrival process: the launch rate at time t is
//
//	Users.At(t) x OpsPerUserHour / 3600
//
// and each launch draws an operation from the mix. The master data center
// for each operation — the owner of the manipulated file — is sampled from
// the Access Pattern Matrix, which reduces to "always the MDC" in the
// consolidated platform of Chapter 6.
type AppWorkload struct {
	App            string
	DC             string
	Users          Curve
	OpsPerUserHour float64
	Ops            []cascade.Op
	Weights        []float64 // nil selects a uniform mix
	APM            AccessMatrix
	Inf            *topology.Infrastructure
	// GaugePrefix, when set, maintains gauges "<prefix>:active" (operations
	// in flight) and "<prefix>:loggedin" (population curve sample). The
	// loggedin gauge is refreshed on due polls only; under thinning those
	// are the arrival instants, so probes wanting the exact population
	// between arrivals should sample Users.At directly.
	GaugePrefix string
	// ThinBelow overrides the per-tick expected-arrival threshold below
	// which arrivals are sampled by exponential-gap thinning instead of
	// per-tick Poisson draws. 0 selects DefaultThinBelow; a negative value
	// disables thinning for this workload regardless of the simulation
	// flag. Thinning preserves the arrival law (same nonhomogeneous
	// Poisson process) but changes the RNG draw sequence, so results are
	// distribution-identical, not bit-identical; core.Config.NoThinning
	// restores bit-identity globally.
	ThinBelow float64
	// Stream identifies this workload's RNG stream. The workload's arrival
	// randomness is seeded with core.DeriveSeed(simulation seed, Stream), so
	// its draws depend only on the simulation seed and its own identity —
	// never on how many draws other workloads made, which is what used to
	// happen when sub-RNGs were seeded by consuming the shared simulation
	// stream (adding one workload perturbed every later workload's
	// arrivals). 0 derives the stream from an FNV-1a hash of "App@DC";
	// set it explicitly when two workloads share that identity.
	Stream uint64

	cum      []float64
	rng      *rand.Rand
	active   core.Gauge // interned "<prefix>:active"
	loggedin core.Gauge // interned "<prefix>:loggedin"

	step      float64 // tick size, cached at initialize
	thinBelow float64 // resolved threshold (0 when thinning disabled)
	pending   float64 // next committed arrival instant; NaN in per-tick mode
}

// EffectiveStream resolves a workload's RNG stream identity: the explicit
// stream when non-zero, otherwise an FNV-1a hash of "app@dc". Callers that
// must detect stream collisions (the experiment assembly validation)
// compare effective streams, not raw Stream fields — an explicit Stream
// equal to another workload's derived hash collides all the same.
func EffectiveStream(app, dc string, stream uint64) uint64 {
	if stream != 0 {
		return stream
	}
	h := fnv.New64a()
	h.Write([]byte(app))
	h.Write([]byte{'@'})
	h.Write([]byte(dc))
	return h.Sum64()
}

// init prepares the cumulative mix distribution.
func (w *AppWorkload) initialize(s *core.Simulation) {
	if len(w.Ops) == 0 {
		panic(fmt.Sprintf("workload: app %s at %s has no operations", w.App, w.DC))
	}
	if w.Weights != nil && len(w.Weights) != len(w.Ops) {
		panic(fmt.Sprintf("workload: app %s has %d weights for %d ops", w.App, len(w.Weights), len(w.Ops)))
	}
	if err := w.APM.Validate(); err != nil {
		panic(err)
	}
	w.cum = make([]float64, len(w.Ops))
	total := 0.0
	for i := range w.Ops {
		wgt := 1.0
		if w.Weights != nil {
			wgt = w.Weights[i]
		}
		total += wgt
		w.cum[i] = total
	}
	for i := range w.cum {
		w.cum[i] /= total
	}
	// Derive an independent deterministic stream from the simulation seed
	// and this workload's identity, so multiple workloads stay decoupled
	// and adding or removing one never perturbs another's draws.
	stream := EffectiveStream(w.App, w.DC, w.Stream)
	// The second PCG word chains through the first, so adjacent explicit
	// streams never share a word.
	seed1 := core.DeriveSeed(s.Seed(), stream)
	w.rng = rand.New(rand.NewPCG(seed1, core.DeriveSeed(seed1, stream)))
	if w.GaugePrefix != "" {
		w.active = s.GaugeHandle(w.GaugePrefix + ":active")
		w.loggedin = s.GaugeHandle(w.GaugePrefix + ":loggedin")
	}
	w.step = s.Clock().Step()
	w.pending = math.NaN()
	if s.Thinning() && w.ThinBelow >= 0 {
		w.thinBelow = w.ThinBelow
		if w.thinBelow == 0 {
			w.thinBelow = DefaultThinBelow
		}
	}
}

// InitSource eagerly runs the lazy first-poll initialization: mix
// distribution, RNG stream, gauge interning, cached step. It makes no RNG
// draws, so eager and lazy initialization are bit-identical. Callers that
// register the workload as a lane-confined source (core.AddLaneSource)
// must call it first — an in-lane first poll would otherwise intern gauges
// mid-span, and an uninitialized NextPoll pessimistically reports "now",
// which would veto every span.
func (w *AppWorkload) InitSource(s *core.Simulation) {
	if w.rng == nil {
		w.initialize(s)
	}
}

// LaneSafe reports whether the workload is confined to its own data
// center: its access-matrix row exists and places every bit of ownership
// mass on w.DC, so each launch binds local == master, producing only Local
// (shard-confined) cascades, and the owner draw never needs another DC.
// Lane-safe workloads may be registered with core.AddLaneSource and polled
// inside stretched spans.
func (w *AppWorkload) LaneSafe() bool {
	row, ok := w.APM[w.DC]
	if !ok {
		return false
	}
	for owner, p := range row {
		if owner != w.DC && p > 0 {
			return false
		}
	}
	_, self := row[w.DC]
	return self
}

// Poll launches the tick's arrivals. In the dense regime (expected
// arrivals per tick at or above the thinning threshold) it draws a Poisson
// count per tick; in the sparse regime it launches the committed thinned
// arrivals that have come due and samples their successors, so quiet
// stretches need no polls at all.
func (w *AppWorkload) Poll(s *core.Simulation, now float64) {
	if w.rng == nil {
		w.initialize(s)
	}
	users := w.Users.At(now)
	s.AddGaugeBy(w.loggedin, users-s.GaugeValueBy(w.loggedin))
	if !math.IsNaN(w.pending) {
		// Thinned mode: every committed arrival at or before now launches,
		// each successor sampled from its predecessor's instant so the
		// arrival process is covered continuously.
		for w.pending <= now {
			at := w.pending
			w.launch(s)
			if w.Users.At(at)*w.OpsPerUserHour/3600*w.step >= w.thinBelow {
				// The rate climbed back into the dense regime: resume
				// per-tick draws from the next poll.
				w.pending = math.NaN()
				return
			}
			w.sampleNext(at)
		}
		return
	}
	lambda := users * w.OpsPerUserHour / 3600 * w.step
	if lambda <= 0 {
		return
	}
	if w.thinBelow > 0 && lambda < w.thinBelow {
		// Sparse regime: hand over to the gap sampler from this instant;
		// the per-tick draw is subsumed by the sampled gap.
		w.sampleNext(now)
		return
	}
	n := poisson(w.rng, lambda)
	for i := 0; i < n; i++ {
		w.launch(s)
	}
}

// sampleNext samples the next arrival instant strictly after from by
// exponential-gap thinning (Lewis & Shedler): candidate points arrive at
// the curve's ceiling rate over a lookahead window bounded by the next hour
// point — the curve is linear inside it, so the ceiling is exact and tight
// — and each candidate is accepted with probability rate(t)/ceiling, which
// reproduces the nonhomogeneous Poisson law exactly. A candidate past the
// window restarts at the boundary (the exponential's memorylessness makes
// the restart exact); hard-zero stretches are skipped via NextPositive, and
// an all-zero curve parks the workload at +Inf.
func (w *AppWorkload) sampleNext(from float64) {
	perUser := w.OpsPerUserHour / 3600
	t := from
	for {
		if next := w.Users.NextPositive(t); next > t {
			if math.IsInf(next, 1) {
				w.pending = next
				return
			}
			t = next
		}
		winEnd := math.Floor(t/3600)*3600 + 3600
		ceil := w.Users.Ceiling(t, winEnd) * perUser
		if ceil <= 0 {
			t = winEnd
			continue
		}
		t += w.rng.ExpFloat64() / ceil
		if t >= winEnd {
			t = winEnd
			continue
		}
		if w.rng.Float64()*ceil < w.Users.At(t)*perUser {
			w.pending = t
			return
		}
	}
}

// ResetPending discards any committed thinned arrival, returning the
// workload to per-tick mode from its next poll (which re-enters gap
// sampling from the poll instant when the rate is sparse). The fluid tier
// calls it when a workload re-crosses from analytic back to discrete
// sampling: a pending instant committed before the fluid window would
// otherwise replay a stale arrival. No RNG draws are made, so the call is
// span-safe.
func (w *AppWorkload) ResetPending() {
	if w.rng != nil {
		w.pending = math.NaN()
	}
}

// NextPoll reports the workload's real schedule. Per-tick (dense) mode
// polls every tick while the population curve is positive and skips
// hard-zero stretches via NextPositive; thinned (sparse) mode reports the
// committed arrival instant, so a 5% night floor no longer pins the loop
// to tick-by-tick stepping — the classic quiet-hour veto this sampler
// removes.
func (w *AppWorkload) NextPoll(now float64) float64 {
	if w.rng == nil {
		return now
	}
	if !math.IsNaN(w.pending) {
		return w.pending
	}
	if w.Users.At(now) > 0 {
		return now
	}
	return w.Users.NextPositive(now)
}

func (w *AppWorkload) launch(s *core.Simulation) {
	op := w.Ops[w.pickOp()]
	local := w.Inf.DC(w.DC)
	master := w.Inf.DC(w.APM.Owner(w.DC, w.rng))
	b := cascade.NewBinding(w.Inf, local, master)
	run, err := cascade.Instantiate(op, b)
	if err != nil {
		panic(err)
	}
	run.Name = w.App + " " + op.Name
	run.Gauge = w.active
	s.StartOp(run)
}

// pickOp samples the operation mix: the first cumulative weight exceeding
// the draw, by binary search — consolidation scenarios can carry large
// mixes, and the search is bit-identical to the linear scan it replaced.
func (w *AppWorkload) pickOp() int {
	u := w.rng.Float64()
	if i := sort.Search(len(w.cum), func(i int) bool { return w.cum[i] > u }); i < len(w.cum) {
		return i
	}
	return len(w.cum) - 1
}

// poisson draws from Poisson(mean) — Knuth's method for the small means a
// tick produces, with a normal approximation above 30 to bound the loop.
func poisson(rng *rand.Rand, mean float64) int {
	if mean > 30 {
		n := int(mean + math.Sqrt(mean)*rng.NormFloat64() + 0.5)
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

var _ core.Source = (*AppWorkload)(nil)
