package workload

import (
	"fmt"
	"math"

	"repro/internal/cascade"
	"repro/internal/core"
)

// Series is a sequential concatenation of operations preserving order
// (§5.2.2) — the validation experiments launch Light, Average and Heavy
// series at fixed intervals.
type Series struct {
	Name string
	Ops  []cascade.Op
}

// Duration sums the per-operation targets; exposed for experiment sizing.
func (s Series) Duration(estimate func(cascade.Op) float64) float64 {
	total := 0.0
	for _, op := range s.Ops {
		total += estimate(op)
	}
	return total
}

// SeriesLauncher starts one series every Interval seconds, from FirstAt
// until Until (exclusive; 0 means forever). Each series gets a fresh
// binding (client slot and server choices), runs its operations
// back-to-back and maintains GaugeKey as the number of series in flight —
// the "concurrent clients" metric of Fig. 5-6.
type SeriesLauncher struct {
	Series   Series
	Interval float64
	FirstAt  float64
	Until    float64
	GaugeKey string
	// NewBinding supplies the per-series binding (client slot, DCs).
	NewBinding func() *cascade.Binding
	// OnSeriesDone, when non-nil, is invoked when a whole series ends.
	OnSeriesDone func(now float64)

	next        float64
	gauge       core.Gauge
	initialized bool
}

// Poll launches due series. It implements core.Source.
func (l *SeriesLauncher) Poll(s *core.Simulation, now float64) {
	if !l.initialized {
		if l.Interval <= 0 {
			panic(fmt.Sprintf("workload: series %s needs a positive interval", l.Series.Name))
		}
		if len(l.Series.Ops) == 0 {
			panic(fmt.Sprintf("workload: series %s has no operations", l.Series.Name))
		}
		l.next = l.FirstAt
		l.gauge = s.GaugeHandle(l.GaugeKey)
		l.initialized = true
	}
	for now >= l.next && (l.Until <= 0 || l.next < l.Until) {
		l.launch(s)
		l.next += l.Interval
	}
}

// NextPoll reports the next scheduled launch instant; polls before it do
// nothing (the chained per-series operations advance through completion
// callbacks, not polls). An exhausted launcher reports +Inf.
func (l *SeriesLauncher) NextPoll(now float64) float64 {
	if !l.initialized {
		return now
	}
	if l.Until > 0 && l.next >= l.Until {
		return math.Inf(1)
	}
	return l.next
}

func (l *SeriesLauncher) launch(s *core.Simulation) {
	b := l.NewBinding()
	s.AddGaugeBy(l.gauge, 1)
	l.startOp(s, b, 0)
}

// startOp chains the series' operations: completion of op i starts op i+1.
func (l *SeriesLauncher) startOp(s *core.Simulation, b *cascade.Binding, i int) {
	run, err := cascade.Instantiate(l.Series.Ops[i], b)
	if err != nil {
		panic(fmt.Sprintf("workload: series %s op %d: %v", l.Series.Name, i, err))
	}
	run.OnComplete = func(now, dur float64) {
		if i+1 < len(l.Series.Ops) {
			l.startOp(s, b, i+1)
			return
		}
		s.AddGaugeBy(l.gauge, -1)
		if l.OnSeriesDone != nil {
			l.OnSeriesDone(now)
		}
	}
	s.StartOp(run)
}

var _ core.Source = (*SeriesLauncher)(nil)
