package fluid

import (
	"fmt"
	"sort"

	"repro/internal/cascade"
	"repro/internal/topology"
)

// TierLoad is the CPU demand one operation of the mix places on one server
// tier — the per-tier accounting behind both the bottleneck choice and the
// utilization reservations.
type TierLoad struct {
	DC, Tier string
	Cores    int
	// SvcPerOp is the weighted core-seconds one operation demands on this
	// tier at the healthy core rate.
	SvcPerOp float64
}

// Station is the single-bottleneck M/M/c abstraction of a workload's
// cascade: the tier with the highest utilization per unit arrival rate
// provides c and mu, while Base/BaseP90 carry the isolated (zero-load)
// cascade duration so the analytic response composes "measured base plus
// queueing delay at the bottleneck" — comparable with the simulated
// response times, which include client and network time the M/M/c model
// alone would miss.
type Station struct {
	DC, Tier string  // bottleneck tier identity
	Cores    int     // c
	Mu       float64 // per-core service rate at the bottleneck, ops/second
	Base     float64 // weighted mean isolated cascade duration, seconds
	BaseP90  float64 // weighted p90 isolated cascade duration, seconds
	Tiers    []TierLoad
}

// reserveFracs sizes the per-tier capacity reservations for a segment's
// ceiling arrival rate. The bottleneck fraction equals the segment's
// ceiling utilization, which the saturation guard keeps strictly below
// one; every other tier's fraction is smaller by construction.
func (st Station) reserveFracs(lamCeil float64) []float64 {
	fr := make([]float64, len(st.Tiers))
	for i, tl := range st.Tiers {
		fr[i] = lamCeil * tl.SvcPerOp / float64(tl.Cores)
	}
	return fr
}

// DeriveStation reduces an operation mix under a (local, master) binding to
// its Station: per-tier CPU demands resolved the way cascade bindings
// resolve sites (master-tier fallback for tiers the chosen site lacks),
// isolated durations from cascade.Estimate. Weights follow the workload
// convention (nil selects a uniform mix). Like a real expansion, Estimate
// consumes cache hit-decision randomness and advances the balancer
// cursors; DeriveStation therefore runs at compile time, where the
// consumption is deterministic.
func DeriveStation(inf *topology.Infrastructure, local, master *topology.DataCenter,
	ops []cascade.Op, weights []float64, step float64) (Station, error) {
	if len(ops) == 0 {
		return Station{}, fmt.Errorf("fluid: empty operation mix")
	}
	if weights != nil && len(weights) != len(ops) {
		return Station{}, fmt.Errorf("fluid: %d weights for %d operations", len(weights), len(ops))
	}
	wts := make([]float64, len(ops))
	total := 0.0
	for i := range ops {
		w := 1.0
		if weights != nil {
			w = weights[i]
		}
		wts[i] = w
		total += w
	}
	if total <= 0 {
		return Station{}, fmt.Errorf("fluid: operation weights sum to zero")
	}
	for i := range wts {
		wts[i] /= total
	}

	type key struct{ dc, tier string }
	demand := map[key]float64{}
	for i, op := range ops {
		for _, stp := range op.Steps {
			for _, m := range stp {
				role := m.To.Role
				if role == cascade.Client || role == cascade.Daemon {
					// Client cores scale with the population and daemon work
					// is not driven by this flow — neither is shared tier
					// capacity to reserve.
					continue
				}
				name := string(role)
				dc := local
				if m.To.Site == cascade.SiteMaster {
					dc = master
				}
				if !dc.HasTier(name) {
					dc = master
				}
				if !dc.HasTier(name) {
					return Station{}, fmt.Errorf("fluid: operation %s needs tier %q at %s or %s",
						op.Name, name, local.Name, master.Name)
				}
				tier := dc.Tier(name)
				rate := tier.Servers[0].CPU.Rate()
				demand[key{dc.Name, name}] += wts[i] * m.Cost.CPUCycles / rate
			}
		}
	}
	if len(demand) == 0 {
		return Station{}, fmt.Errorf("fluid: operation mix places no CPU demand on any server tier")
	}

	keys := make([]key, 0, len(demand))
	for k := range demand {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].dc != keys[j].dc {
			return keys[i].dc < keys[j].dc
		}
		return keys[i].tier < keys[j].tier
	})
	st := Station{}
	bottleneck := -1.0
	for _, k := range keys {
		tl := TierLoad{
			DC: k.dc, Tier: k.tier,
			Cores:    inf.DC(k.dc).Tier(k.tier).TotalCores(),
			SvcPerOp: demand[k],
		}
		st.Tiers = append(st.Tiers, tl)
		if u := tl.SvcPerOp / float64(tl.Cores); u > bottleneck {
			bottleneck = u
			st.DC, st.Tier = tl.DC, tl.Tier
			st.Cores = tl.Cores
			st.Mu = 1 / tl.SvcPerOp
		}
	}

	durs := make([]float64, len(ops))
	for i := range ops {
		b := cascade.NewBinding(inf, local, master)
		d, err := cascade.Estimate(ops[i], b, step)
		if err != nil {
			return Station{}, fmt.Errorf("fluid: estimating %s: %w", ops[i].Name, err)
		}
		durs[i] = d
		st.Base += wts[i] * d
	}
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return durs[idx[a]] < durs[idx[b]] })
	cum := 0.0
	st.BaseP90 = durs[idx[len(idx)-1]]
	for _, i := range idx {
		cum += wts[i]
		if cum >= 0.90 {
			st.BaseP90 = durs[i]
			break
		}
	}
	return st, nil
}
