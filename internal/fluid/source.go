package fluid

import (
	"math"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Flow wraps a discrete AppWorkload with the precomputed mode schedule:
// inside fluid segments it emits nothing (the analytic series carry the
// traffic) and parks its due time at the segment end, so the clock
// fast-forwards straight across; inside discrete segments it delegates to
// the wrapped workload. It preserves the inner workload's lane-safety —
// mode lookups touch only the precomputed segments and a monotonic cursor,
// no RNG and no gauge interning, so a lane may poll it inside stretched
// spans exactly like the plain workload.
type Flow struct {
	Inner    *workload.AppWorkload
	Segments []Segment

	idx int
}

// InitSource eagerly initializes the wrapped workload — required before
// core.AddLaneSource, same contract as AppWorkload.InitSource.
func (f *Flow) InitSource(s *core.Simulation) { f.Inner.InitSource(s) }

// LaneSafe reports whether the wrapped workload is confined to its own DC.
func (f *Flow) LaneSafe() bool { return f.Inner.LaneSafe() }

// advance moves the segment cursor up to the segment containing now. When
// the walk crosses a fluid segment, any thinned arrival the inner workload
// committed before that segment is stale — the analytic flow covered the
// interim — so it is discarded and the sampler re-enters from the next
// discrete poll. Crossing only discrete segments keeps the pending arrival:
// those boundaries are artificial hour marks, and dropping it would change
// the draw sequence of a run that never went fluid.
func (f *Flow) advance(now float64) {
	crossedFluid := false
	for now >= f.Segments[f.idx].End {
		if f.Segments[f.idx].Fluid {
			crossedFluid = true
		}
		f.idx++
	}
	if crossedFluid {
		f.Inner.ResetPending()
	}
}

// Poll launches the tick's arrivals in discrete segments and is a no-op in
// fluid segments.
func (f *Flow) Poll(s *core.Simulation, now float64) {
	f.advance(now)
	if f.Segments[f.idx].Fluid {
		return
	}
	f.Inner.Poll(s, now)
}

// NextPoll reports the crossover instant while fluid (making the crossover
// a calendar event the fast-forward and span machinery schedule around)
// and the inner schedule bounded by the segment end while discrete.
func (f *Flow) NextPoll(now float64) float64 {
	f.advance(now)
	seg := &f.Segments[f.idx]
	if seg.Fluid {
		return seg.End
	}
	return math.Min(f.Inner.NextPoll(now), seg.End)
}

var _ core.Source = (*Flow)(nil)

// Controller is the global source that applies and releases the fluid
// tier's capacity reservations at segment boundaries. Being a global
// source, its due times bound fast-forward jumps and stretched spans, so
// every reservation change — a service-rate change on shared CPU agents,
// including rate *increases*, which must never happen mid-span — executes
// in a sequential phase at an exact barrier tick, the same discipline the
// fault controller follows.
type Controller struct {
	Segments []Segment
	// Tiers are the reservation targets, parallel to the station's Tiers
	// (and to each segment's Reserve fractions).
	Tiers []*topology.Tier

	idx     int
	applied []float64
}

// Poll advances to the segment containing now and reconciles the per-tier
// reservations with the segment's schedule.
func (c *Controller) Poll(s *core.Simulation, now float64) {
	for now >= c.Segments[c.idx].End {
		c.idx++
	}
	if c.applied == nil {
		c.applied = make([]float64, len(c.Tiers))
	}
	seg := &c.Segments[c.idx]
	for i, t := range c.Tiers {
		want := 0.0
		if seg.Fluid {
			want = seg.Reserve[i]
		}
		if want != c.applied[i] {
			t.ReserveCPU(want)
			c.applied[i] = want
		}
	}
}

// NextPoll reports the next segment boundary; the trailing segment's +Inf
// end parks the controller once the run window is covered.
func (c *Controller) NextPoll(now float64) float64 {
	i := c.idx
	for now >= c.Segments[i].End {
		i++
	}
	return c.Segments[i].End
}

var _ core.Source = (*Controller)(nil)
