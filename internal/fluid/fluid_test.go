package fluid

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/hardware"
	"repro/internal/topology"
	"repro/internal/workload"
)

// testStation is a hand-built station for schedule tests: 8 cores at one
// op/second per core, with a single reservation target mirroring the
// bottleneck exactly.
func testStation(cores int, mu float64) Station {
	return Station{
		DC: "NA", Tier: "app", Cores: cores, Mu: mu,
		Base: 1.0, BaseP90: 2.0,
		Tiers: []TierLoad{{DC: "NA", Tier: "app", Cores: cores, SvcPerOp: 1 / mu}},
	}
}

// TestBuildSegmentsSchedule pins the segment structure on a business-day
// curve that crosses the threshold twice: contiguous hour-aligned segments,
// exactly two crossovers (into the business window and out of it), the
// trailing parked segment, and an ops integral matching the curve.
func TestBuildSegmentsSchedule(t *testing.T) {
	const (
		step  = 0.01
		dur   = 24 * 3600.0
		peak  = 3600.0
		floor = 360.0
	)
	users := workload.BusinessDay(peak, 9, 17, floor)
	// One op per user-hour: the plateau offers 1 op/s = 0.01 per tick, the
	// night floor 0.001 per tick; Above = 0.005 splits them.
	cfg := Config{Above: 0.005}
	segs, err := BuildSegments(users, 1, step, dur, cfg, testStation(8, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 25 {
		t.Fatalf("got %d segments, want 24 hourly + 1 trailing", len(segs))
	}
	for i := 0; i < 24; i++ {
		if segs[i].Start != float64(i)*3600 || segs[i].End != float64(i+1)*3600 {
			t.Fatalf("segment %d spans [%v, %v), want hour-aligned", i, segs[i].Start, segs[i].End)
		}
	}
	last := segs[24]
	if last.Start != dur || !math.IsInf(last.End, 1) || last.Fluid || last.Crossover {
		t.Fatalf("trailing segment %+v, want parked discrete [duration, +Inf)", last)
	}

	// Modes must match the compile-time predicate recomputed independently.
	perUser := 1.0 / 3600
	for i, s := range segs[:24] {
		wantFluid := users.Ceiling(s.Start, s.End)*perUser*step >= cfg.Above
		if s.Fluid != wantFluid {
			t.Errorf("hour %d: fluid=%v, want %v", i, s.Fluid, wantFluid)
		}
	}
	if !At(segs, 12*3600).Fluid {
		t.Error("noon plateau should be fluid")
	}
	if At(segs, 3*3600).Fluid {
		t.Error("night floor should be discrete")
	}

	crossings := 0
	for i, s := range segs {
		if s.Crossover {
			crossings++
			if i == 0 || segs[i-1].Fluid == s.Fluid {
				t.Errorf("segment %d marked crossover without a mode flip", i)
			}
		}
	}
	if crossings != 2 {
		t.Fatalf("got %d crossovers, want 2 (into and out of the business window)", crossings)
	}
	if got := last.CrossBefore; got != 2 {
		t.Errorf("trailing CrossBefore = %d, want 2", got)
	}

	// The analytic ops integral: fluid segments accumulate the exact
	// trapezoid of the linear curve; discrete segments contribute nothing.
	want := 0.0
	for _, s := range segs[:24] {
		if s.Fluid {
			want += (users.At(s.Start) + users.At(s.End)) / 2 * perUser * (s.End - s.Start)
		}
	}
	if got := OpsAt(segs, dur); math.Abs(got-want) > 1e-6*want {
		t.Errorf("OpsAt(duration) = %v, want %v", got, want)
	}
	// Inside a fluid segment the count grows linearly at the segment rate.
	mid := At(segs, 12*3600+1800)
	if !mid.Fluid {
		t.Fatal("12:30 segment not fluid")
	}
	if got, want := OpsAt(segs, 12*3600+1800), mid.OpsStart+mid.Lambda*1800; math.Abs(got-want) > 1e-9 {
		t.Errorf("mid-segment OpsAt = %v, want %v", got, want)
	}

	// Fluid analytics: rate 1 op/s on 8 unit-rate cores is nearly waitless,
	// so occupancy ≈ lambda/mu and the responses sit just above the base.
	noon := At(segs, 12*3600)
	if noon.Lambda != 1 {
		t.Errorf("plateau lambda = %v, want 1", noon.Lambda)
	}
	if noon.Rho >= 0.9 || noon.Rho <= 0 {
		t.Errorf("plateau rho = %v, want in (0, 0.9)", noon.Rho)
	}
	if noon.Occupancy < 1 || noon.Occupancy > 1.01 {
		t.Errorf("plateau occupancy = %v, want ~lambda/mu = 1", noon.Occupancy)
	}
	if noon.RespMean < 1 || noon.RespP90 < 2 {
		t.Errorf("responses (%v, %v) below the station base (1, 2)", noon.RespMean, noon.RespP90)
	}
	if len(noon.Reserve) != 1 || noon.Reserve[0] != noon.Rho {
		t.Errorf("reserve %v, want exactly the ceiling utilization %v at the bottleneck", noon.Reserve, noon.Rho)
	}
}

// TestBuildSegmentsFaultWindows pins the fallback contract: segments
// overlapping an effective fault window are discrete, the window edges
// become segment boundaries, and the crossovers land exactly there.
func TestBuildSegmentsFaultWindows(t *testing.T) {
	users := workload.BusinessDay(100, 0, 24, 100) // flat: always above threshold
	segs, err := BuildSegments(users, 36, 0.01, 4*3600, Config{Above: 0.001},
		testStation(8, 1), []Window{{Start: 5400, End: 9000}})
	if err != nil {
		t.Fatal(err)
	}
	wantEdges := []float64{0, 3600, 5400, 7200, 9000, 10800, 14400}
	if len(segs) != len(wantEdges) { // len-1 real + 1 trailing
		t.Fatalf("got %d segments, want %d", len(segs), len(wantEdges))
	}
	for i, e := range wantEdges[:len(wantEdges)-1] {
		if segs[i].Start != e {
			t.Errorf("segment %d starts at %v, want %v", i, segs[i].Start, e)
		}
	}
	for _, tc := range []struct {
		t     float64
		fluid bool
	}{
		{0, true}, {4000, true}, {5400, false}, {7200, false}, {8999, false},
		{9000, true}, {12000, true},
	} {
		if got := At(segs, tc.t).Fluid; got != tc.fluid {
			t.Errorf("t=%v: fluid=%v, want %v", tc.t, got, tc.fluid)
		}
	}
	for _, s := range segs {
		if s.Crossover && s.Start != 5400 && s.Start != 9000 {
			t.Errorf("unexpected crossover at %v", s.Start)
		}
	}
	if At(segs, 9000).CrossBefore != 2 {
		t.Errorf("CrossBefore at recovery = %d, want 2", At(segs, 9000).CrossBefore)
	}
}

// TestBuildSegmentsSaturationGuard pins the guard ordering: a rate whose
// ceiling utilization reaches RhoMax stays discrete — BuildSegments returns
// no error, because the analytic model is never consulted past the guard.
func TestBuildSegmentsSaturationGuard(t *testing.T) {
	st := testStation(1, 1)
	flat := func(users float64) workload.Curve {
		return workload.BusinessDay(users, 0, 24, users)
	}
	// 3600 users at 1 op/user-hour = 1 op/s on a 1-core unit-rate station:
	// rho ceiling 1.0 — at the stability boundary, guarded to discrete.
	segs, err := BuildSegments(flat(3600), 1, 0.01, 7200, Config{Above: 0.001}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Fluid {
			t.Fatalf("segment [%v, %v) fluid at rho ceiling 1.0", s.Start, s.End)
		}
	}
	// A tighter guard rejects loads the default accepts.
	segs, err = BuildSegments(flat(2160), 1, 0.01, 7200, Config{Above: 0.001, RhoMax: 0.5}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if At(segs, 0).Fluid {
		t.Error("rho 0.6 fluid under a 0.5 guard")
	}
	segs, err = BuildSegments(flat(1440), 1, 0.01, 7200, Config{Above: 0.001, RhoMax: 0.5}, st, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !At(segs, 0).Fluid {
		t.Error("rho 0.4 discrete under a 0.5 guard")
	}
}

// TestBuildSegmentsValidation pins the assembly errors.
func TestBuildSegmentsValidation(t *testing.T) {
	users := workload.BusinessDay(100, 0, 24, 100)
	st := testStation(8, 1)
	if _, err := BuildSegments(users, 1, 0.01, 3600, Config{}, st, nil); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := BuildSegments(users, 1, 0.01, 3600, Config{Above: 1, RhoMax: 1}, st, nil); err == nil {
		t.Error("RhoMax 1 accepted")
	}
	if _, err := BuildSegments(users, 1, 0, 3600, Config{Above: 1}, st, nil); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := BuildSegments(users, 1, 0.01, 3600, Config{Above: 1}, Station{}, nil); err == nil {
		t.Error("empty station accepted")
	}
}

// TestDeriveStationPDM derives the station of the PDM mix on a two-tier
// platform and checks the accounting: one TierLoad per loaded tier in
// sorted order, the bottleneck maximizing utilization per unit rate, and
// reservations proportional to per-tier demand.
func TestDeriveStationPDM(t *testing.T) {
	srv := topology.ServerSpec{
		CPU:     hardware.CPUSpec{Sockets: 1, Cores: 8, GHz: 2.5},
		MemGB:   32,
		NICGbps: 10,
		RAID: &hardware.RAIDSpec{
			Disks: 2, Disk: hardware.DiskSpec{CtrlGbps: 4, MBps: 150, HitRate: 0.1},
			CtrlGbps: 4, HitRate: 0.05,
		},
	}
	local := hardware.LinkSpec{Gbps: 10, LatencyMS: 0.45}
	spec := topology.InfraSpec{
		DCs: []topology.DCSpec{{
			Name: "NA", SwitchGbps: 20,
			ClientLink: hardware.LinkSpec{Gbps: 10, LatencyMS: 0.5},
			Tiers: []topology.TierSpec{
				{Name: "app", Servers: 2, Server: srv, LocalLink: local},
				{Name: "db", Servers: 1, Server: srv, LocalLink: local},
			},
		}},
		Clients: map[string]topology.ClientSpec{
			"NA": {Slots: 8, NICGbps: 1, GHz: 2.5, DiskMBs: 120},
		},
	}
	sim := core.NewSimulation(core.Config{Step: 0.01, Seed: 1})
	defer sim.Shutdown()
	inf, err := topology.Build(sim, spec)
	if err != nil {
		t.Fatal(err)
	}
	na := inf.DC("NA")
	st, err := DeriveStation(inf, na, na, apps.PDMOps(), nil, 0.01)
	if err != nil {
		t.Fatal(err)
	}

	if len(st.Tiers) != 2 {
		t.Fatalf("got %d tier loads %+v, want app and db", len(st.Tiers), st.Tiers)
	}
	if st.Tiers[0].Tier != "app" || st.Tiers[1].Tier != "db" {
		t.Fatalf("tier order %+v, want sorted [app db]", st.Tiers)
	}
	for _, tl := range st.Tiers {
		if tl.SvcPerOp <= 0 {
			t.Errorf("tier %s/%s: non-positive demand %v", tl.DC, tl.Tier, tl.SvcPerOp)
		}
	}
	// Bottleneck = argmax demand per core; Mu is its inverse demand.
	best, bestU := -1, -1.0
	for i, tl := range st.Tiers {
		if u := tl.SvcPerOp / float64(tl.Cores); u > bestU {
			best, bestU = i, u
		}
	}
	bl := st.Tiers[best]
	if st.DC != bl.DC || st.Tier != bl.Tier || st.Cores != bl.Cores {
		t.Errorf("bottleneck %s/%s c=%d, want %s/%s c=%d", st.DC, st.Tier, st.Cores, bl.DC, bl.Tier, bl.Cores)
	}
	if got, want := st.Mu, 1/bl.SvcPerOp; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mu = %v, want %v", got, want)
	}
	if st.Base <= 0 || st.BaseP90 < st.Base {
		t.Errorf("base durations (%v, %v): want positive mean and p90 >= mean-ish ordering", st.Base, st.BaseP90)
	}

	fr := st.reserveFracs(0.5)
	for i, tl := range st.Tiers {
		if want := 0.5 * tl.SvcPerOp / float64(tl.Cores); math.Abs(fr[i]-want) > 1e-12 {
			t.Errorf("reserve[%d] = %v, want %v", i, fr[i], want)
		}
	}
	if fr[best] != 0.5/(float64(st.Cores)*st.Mu) {
		t.Errorf("bottleneck reserve %v != lambda/(c*mu) %v", fr[best], 0.5/(float64(st.Cores)*st.Mu))
	}

	// Weighted derivation: putting all mass on one op must move the demand
	// accounting with it.
	w := make([]float64, len(apps.PDMOps()))
	w[0] = 1
	st2, err := DeriveStation(inf, na, na, apps.PDMOps(), w, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Tiers[1].SvcPerOp == st.Tiers[1].SvcPerOp {
		t.Error("degenerate weights left the db demand at the uniform mix value")
	}

	if _, err := DeriveStation(inf, na, na, nil, nil, 0.01); err == nil {
		t.Error("empty mix accepted")
	}
	if _, err := DeriveStation(inf, na, na, apps.PDMOps(), []float64{1}, 0.01); err == nil {
		t.Error("mismatched weights accepted")
	}
}
